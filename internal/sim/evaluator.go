package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/profile"
	"repro/internal/trace"
)

// Evaluator is the allocation-free fast path for repeated static-schedule
// simulation over one (trace, profile) pair — the inner loop behind IAR's
// passes, the beam/A* searches, and the experiment harnesses, all of which
// evaluate thousands of schedules against the same workload.
//
// Construction precomputes everything derivable from the trace and profile
// alone: the flattened per-function/per-level compile and exec time tables
// (one slice index instead of two pointer hops), and the trace's memoized
// indices. Run then reuses zeroed scratch buffers — version lists, the
// compile worker pool, the per-call records, the Result itself — so that
// after the first call (the warm-up that sizes the arenas) a Run performs no
// heap allocation at all. TestEvaluatorZeroAlloc holds it to that.
//
// # Identical-results contract
//
// Evaluator.Run computes exactly what sim.Run computes: same Result fields,
// same error values, same Recorder event stream, tick for tick. The fast
// path changes how the numbers are computed, never which numbers. The
// differential tests in evaluator_test.go pin this across the fuzz seed
// corpus.
//
// # Delta evaluation
//
// After a successful Run (the baseline), the two schedule edits the search
// algorithms actually make — upgrade one event's level in place, append one
// event at the tail — can be scored without replaying the whole run:
// UpgradedMakeSpan and AppendedMakeSpan rebuild only the compile side (O(M)
// for M events) and resume the execution loop at the first call the edit can
// possibly affect, found by binary search over the baseline call starts.
// MakeSpanOf is the transparent entry point: it diffs a candidate schedule
// against the baseline and takes the incremental path when the candidate is
// one supported edit away, falling back to a full (still allocation-free)
// simulation otherwise.
//
// An Evaluator is not safe for concurrent use; parallel harnesses use one
// evaluator per worker. Results returned by Run alias the evaluator's arena
// and are valid only until the next Run/MakeSpanOf call.
type Evaluator struct {
	tr     *trace.Trace
	p      *profile.Profile
	nf     int
	levels int
	// compile[f*levels+l] and exec[f*levels+l] flatten the profile tables.
	compile []int64
	exec    []int64

	// Per-run scratch, reused across Run calls.
	versions   []versionList
	pool       workerPool
	res        Result
	compiles   []CompileRecord
	firstReady []int64
	compiled   []bool

	// Per-call records of the last Run; always filled (they double as the
	// delta baseline), exposed on the Result only under Options.RecordCalls.
	callStarts []int64
	callEnds   []int64
	callLevels []profile.Level

	// Baseline of the last successful Run, for delta evaluation.
	baseValid bool
	baseSched Schedule
	baseCfg   Config
	baseOpts  Options
	baseSpan  int64

	// Delta scratch: the edited schedule's compile side is rebuilt here so
	// the baseline's version lists stay untouched.
	dVersions []versionList
	dPool     workerPool

	runs int64
}

// NewEvaluator builds an evaluator for the trace/profile pair. The trace is
// treated as immutable from here on (its derived indices are memoized).
func NewEvaluator(tr *trace.Trace, p *profile.Profile) (*Evaluator, error) {
	e := &Evaluator{}
	if err := e.Reset(tr, p); err != nil {
		return nil, err
	}
	evalCounters.evaluators.Add(1)
	return e, nil
}

// Reset rebinds the evaluator to a new (trace, profile) pair, reusing every
// arena whose capacity already suffices — the flattened time tables, the
// version lists (including their inner storage), the per-call records, and
// the worker pools. It performs the same validation, with the same error
// strings, as NewEvaluator; on error the evaluator is left unusable until a
// successful Reset. Any delta baseline is discarded. This is what lets a
// long-lived arena (e.g. core's IAR arena, the online replanner) follow a
// growing visible prefix without reallocating its buffers each rebind.
func (e *Evaluator) Reset(tr *trace.Trace, p *profile.Profile) error {
	nf, levels := p.NumFuncs(), p.Levels
	e.baseValid = false
	if levels <= 0 {
		return fmt.Errorf("sim: evaluator needs a profile with positive Levels, got %d", levels)
	}
	for f := range p.Funcs {
		ft := &p.Funcs[f]
		if len(ft.Compile) != levels || len(ft.Exec) != levels {
			return fmt.Errorf("sim: evaluator: function %d has %d compile / %d exec levels, want %d",
				f, len(ft.Compile), len(ft.Exec), levels)
		}
	}
	e.tr, e.p, e.nf, e.levels = tr, p, nf, levels
	e.compile = growN(e.compile, nf*levels)
	e.exec = growN(e.exec, nf*levels)
	e.firstReady = growN(e.firstReady, nf)
	e.compiled = growN(e.compiled, nf)
	// Version lists keep their inner done/levels storage when the slice only
	// changes length; Run truncates each list before use.
	e.versions = growKeep(e.versions, nf)
	e.dVersions = growKeep(e.dVersions, nf)
	if cap(e.callStarts) < tr.Len() {
		e.callStarts = make([]int64, 0, tr.Len())
		e.callEnds = make([]int64, 0, tr.Len())
		e.callLevels = make([]profile.Level, 0, tr.Len())
	} else {
		e.callStarts = e.callStarts[:0]
		e.callEnds = e.callEnds[:0]
		e.callLevels = e.callLevels[:0]
	}
	for f := 0; f < nf; f++ {
		ft := &p.Funcs[f]
		for l := 0; l < levels; l++ {
			e.compile[f*levels+l] = ft.Compile[l]
			e.exec[f*levels+l] = ft.Exec[l]
		}
	}
	return nil
}

// growN resizes a scratch slice to n elements, reusing the backing array when
// it is large enough. Callers overwrite (or clear) the contents themselves.
func growN[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growKeep resizes a slice of version lists, preserving surviving elements'
// inner storage (growN would do the same via the backing array; this variant
// exists to copy the old elements when the backing array must be replaced).
func growKeep(s []versionList, n int) []versionList {
	if cap(s) < n {
		ns := make([]versionList, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// Run replays a static compilation schedule exactly as sim.Run does,
// reusing the evaluator's arenas. The returned Result is valid until the
// next call on this evaluator.
func (e *Evaluator) Run(sched Schedule, cfg Config, opts Options) (*Result, error) {
	e.baseValid = false
	if cfg.CompileWorkers < 1 {
		return nil, fmt.Errorf("sim: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Inline schedule validation: the same checks, in the same order, with
	// the same messages as Schedule.Validate, against the reusable buffer.
	clear(e.compiled)
	for i, ev := range sched {
		if ev.Func < 0 || int(ev.Func) >= e.nf {
			return nil, fmt.Errorf("sim: schedule event %d references unknown function %d", i, ev.Func)
		}
		if ev.Level < 0 || int(ev.Level) >= e.levels {
			return nil, fmt.Errorf("sim: schedule event %d uses level %d outside [0,%d)", i, ev.Level, e.levels)
		}
		e.compiled[ev.Func] = true
	}
	for i, f := range e.tr.Calls {
		if int(f) >= len(e.compiled) || !e.compiled[f] {
			return nil, fmt.Errorf("sim: call %d invokes function %d which the schedule never compiles", i, f)
		}
	}

	res := &e.res
	*res = Result{Compiles: e.compiles[:0], FirstReady: e.firstReady}
	for f := range e.versions {
		e.versions[f].done = e.versions[f].done[:0]
		e.versions[f].levels = e.versions[f].levels[:0]
	}
	if cap(e.pool.free) < cfg.CompileWorkers {
		e.pool.free = make([]int64, cfg.CompileWorkers)
	} else {
		e.pool.free = e.pool.free[:cfg.CompileWorkers]
		clear(e.pool.free)
	}

	rec := opts.Recorder
	for si, ev := range sched {
		w, start, done := e.pool.assign(0, e.compile[int(ev.Func)*e.levels+int(ev.Level)])
		res.Compiles = append(res.Compiles, CompileRecord{Event: ev, Start: start, Done: done, Worker: w})
		rec.CompileStart(start, int32(ev.Func), int32(ev.Level), int32(w), int32(si))
		rec.CompileEnd(done, int32(ev.Func), int32(ev.Level), int32(w), int32(si))
		e.versions[ev.Func].insert(done, ev.Level)
		res.CompileBusy += done - start
		if done > res.CompileEnd {
			res.CompileEnd = done
		}
	}
	e.compiles = res.Compiles
	for f := range e.versions {
		e.firstReady[f] = e.versions[f].firstReady()
	}

	starts, ends, lvls := e.callStarts[:0], e.callEnds[:0], e.callLevels[:0]
	var execT int64
	for i, f := range e.tr.Calls {
		start := execT
		if ready := e.versions[f].firstReady(); ready > start {
			start = ready
		}
		if start > execT {
			res.TotalBubble += start - execT
			res.BubbleCount++
			rec.Stall(execT, start-execT, int32(f), int32(i))
		}
		level, ok := e.versions[f].latestAt(start)
		if !ok {
			e.callStarts, e.callEnds, e.callLevels = starts, ends, lvls
			return nil, &ErrNoReadyVersion{Func: f, Time: start}
		}
		dur := e.exec[int(f)*e.levels+int(level)]
		if opts.ExecVariation > 0 {
			dur = scaleDuration(dur, CallFactor(opts.ExecVariationSeed, i, opts.ExecVariation))
		}
		starts = append(starts, start)
		ends = append(ends, start+dur)
		lvls = append(lvls, level)
		rec.ExecStart(start, int32(f), int32(level), int32(i))
		rec.ExecEnd(start+dur, int32(f), int32(level), int32(i))
		res.TotalExec += dur
		execT = start + dur
	}
	res.MakeSpan = execT
	e.callStarts, e.callEnds, e.callLevels = starts, ends, lvls
	if opts.RecordCalls {
		res.CallStarts = starts
		res.CallLevels = lvls
	}

	e.runs++
	evalCounters.runs.Add(1)
	if e.runs > 1 {
		evalCounters.warmRuns.Add(1)
	}
	if opts.Recorder == nil {
		// A recorded run cannot serve as a delta baseline: the incremental
		// path emits no span events, so it would silently drop them.
		e.baseValid = true
		e.baseSched = append(e.baseSched[:0], sched...)
		e.baseCfg = cfg
		e.baseOpts = opts
		e.baseSpan = res.MakeSpan
	}
	return res, nil
}

// EditKind selects one of the two schedule edits with an incremental path.
type EditKind int

const (
	// EditUpgrade changes the level of one existing event in place.
	EditUpgrade EditKind = iota
	// EditAppend adds one event at the tail of the schedule.
	EditAppend
)

// Edit describes a single-event schedule edit relative to the baseline.
type Edit struct {
	Kind EditKind
	// Pos is the edited event's index (EditUpgrade only).
	Pos int
	// Event is the new event: for EditUpgrade its Func must match the
	// baseline event at Pos.
	Event CompileEvent
}

// MakeSpanOf evaluates a candidate schedule's make-span, taking the
// incremental delta path when the candidate differs from the last Run's
// schedule by exactly one supported edit (one in-place level change, or one
// appended tail event) under the same configuration, and transparently
// falling back to a full — still allocation-free — simulation otherwise.
// The fallback replaces the baseline with the candidate run.
func (e *Evaluator) MakeSpanOf(sched Schedule, cfg Config, opts Options) (int64, error) {
	if e.baseValid && cfg == e.baseCfg && opts.Recorder == nil &&
		opts.ExecVariation == e.baseOpts.ExecVariation &&
		opts.ExecVariationSeed == e.baseOpts.ExecVariationSeed {
		if ed, kind := e.diff(sched); kind != diffFar {
			evalCounters.deltaFast.Add(1)
			if kind == diffSame {
				return e.baseSpan, nil
			}
			return e.editedMakeSpan(ed)
		}
	}
	evalCounters.deltaFull.Add(1)
	res, err := e.Run(sched, cfg, opts)
	if err != nil {
		return 0, err
	}
	return res.MakeSpan, nil
}

const (
	diffSame = iota // identical to the baseline schedule
	diffEdit        // exactly one supported edit away
	diffFar         // anything else: full simulation required
)

// diff classifies a candidate schedule against the baseline.
func (e *Evaluator) diff(sched Schedule) (Edit, int) {
	base := e.baseSched
	switch {
	case len(sched) == len(base):
		pos := -1
		for i := range sched {
			if sched[i] != base[i] {
				if pos >= 0 || sched[i].Func != base[i].Func {
					return Edit{}, diffFar
				}
				pos = i
			}
		}
		if pos < 0 {
			return Edit{}, diffSame
		}
		if sched[pos].Level < 0 || int(sched[pos].Level) >= e.levels {
			return Edit{}, diffFar
		}
		return Edit{Kind: EditUpgrade, Pos: pos, Event: sched[pos]}, diffEdit
	case len(sched) == len(base)+1:
		for i := range base {
			if sched[i] != base[i] {
				return Edit{}, diffFar
			}
		}
		ev := sched[len(base)]
		if ev.Func < 0 || int(ev.Func) >= e.nf || ev.Level < 0 || int(ev.Level) >= e.levels {
			return Edit{}, diffFar
		}
		return Edit{Kind: EditAppend, Event: ev}, diffEdit
	}
	return Edit{}, diffFar
}

// UpgradedMakeSpan returns the make-span of the baseline schedule with event
// pos's level changed to level, computed incrementally. It requires a prior
// successful Run on this evaluator.
func (e *Evaluator) UpgradedMakeSpan(pos int, level profile.Level) (int64, error) {
	if !e.baseValid {
		return 0, fmt.Errorf("sim: evaluator has no baseline run for delta evaluation")
	}
	if pos < 0 || pos >= len(e.baseSched) {
		return 0, fmt.Errorf("sim: delta upgrade position %d outside schedule of %d events", pos, len(e.baseSched))
	}
	if level < 0 || int(level) >= e.levels {
		return 0, fmt.Errorf("sim: delta upgrade level %d outside [0,%d)", level, e.levels)
	}
	evalCounters.deltaFast.Add(1)
	return e.editedMakeSpan(Edit{Kind: EditUpgrade, Pos: pos,
		Event: CompileEvent{Func: e.baseSched[pos].Func, Level: level}})
}

// AppendedMakeSpan returns the make-span of the baseline schedule with ev
// appended at the tail, computed incrementally. It requires a prior
// successful Run on this evaluator.
func (e *Evaluator) AppendedMakeSpan(ev CompileEvent) (int64, error) {
	if !e.baseValid {
		return 0, fmt.Errorf("sim: evaluator has no baseline run for delta evaluation")
	}
	if ev.Func < 0 || int(ev.Func) >= e.nf {
		return 0, fmt.Errorf("sim: delta append references unknown function %d", ev.Func)
	}
	if ev.Level < 0 || int(ev.Level) >= e.levels {
		return 0, fmt.Errorf("sim: delta append uses level %d outside [0,%d)", ev.Level, e.levels)
	}
	evalCounters.deltaFast.Add(1)
	return e.editedMakeSpan(Edit{Kind: EditAppend, Event: ev})
}

// editedMakeSpan computes the edited schedule's make-span by rebuilding the
// compile side in the delta scratch and resuming the execution loop at the
// first call the edit can affect.
//
// Correctness: let tAffect be the minimum over all events whose finished
// version changed of min(old finish, new finish). Every recorded call start
// is >= its function's first-ready time, so a call with start < tAffect saw
// only versions finishing at or before its start — all unchanged — and its
// start, level, and end are identical in the edited run. The loop therefore
// resumes at the first baseline call start >= tAffect (binary search; starts
// are non-decreasing) with the predecessor's end as the exec clock.
func (e *Evaluator) editedMakeSpan(ed Edit) (int64, error) {
	w := e.baseCfg.CompileWorkers
	for f := range e.dVersions {
		e.dVersions[f].done = e.dVersions[f].done[:0]
		e.dVersions[f].levels = e.dVersions[f].levels[:0]
	}
	if cap(e.dPool.free) < w {
		e.dPool.free = make([]int64, w)
	} else {
		e.dPool.free = e.dPool.free[:w]
		clear(e.dPool.free)
	}

	const inf = int64(1) << 62
	tAffect := inf
	for j, ev := range e.baseSched {
		level := ev.Level
		if ed.Kind == EditUpgrade && j == ed.Pos {
			level = ed.Event.Level
		}
		_, _, done := e.dPool.assign(0, e.compile[int(ev.Func)*e.levels+int(level)])
		e.dVersions[ev.Func].insert(done, level)
		old := e.compiles[j].Done
		// A shifted finish time affects calls from min(old, new) on; a level
		// change with an unshifted finish still swaps the version visible
		// from that finish time on.
		if done != old || level != ev.Level {
			m := done
			if old < m {
				m = old
			}
			if m < tAffect {
				tAffect = m
			}
		}
	}
	if ed.Kind == EditAppend {
		_, _, done := e.dPool.assign(0, e.compile[int(ed.Event.Func)*e.levels+int(ed.Event.Level)])
		e.dVersions[ed.Event.Func].insert(done, ed.Event.Level)
		if done < tAffect {
			tAffect = done
		}
	}
	if tAffect == inf {
		return e.baseSpan, nil
	}

	n := len(e.tr.Calls)
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.callStarts[mid] >= tAffect {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	idx := lo
	if idx == n {
		return e.baseSpan, nil
	}
	var execT int64
	if idx > 0 {
		execT = e.callEnds[idx-1]
	}
	mag, seed := e.baseOpts.ExecVariation, e.baseOpts.ExecVariationSeed
	for i := idx; i < n; i++ {
		f := e.tr.Calls[i]
		start := execT
		if ready := e.dVersions[f].firstReady(); ready > start {
			start = ready
		}
		level, ok := e.dVersions[f].latestAt(start)
		if !ok {
			return 0, &ErrNoReadyVersion{Func: f, Time: start}
		}
		dur := e.exec[int(f)*e.levels+int(level)]
		if mag > 0 {
			dur = scaleDuration(dur, CallFactor(seed, i, mag))
		}
		execT = start + dur
	}
	return execT, nil
}

// evalCounters aggregates evaluator activity process-wide; `jitsched exp
// -stats` reports them next to the runner's counters.
var evalCounters struct {
	evaluators atomic.Int64
	runs       atomic.Int64
	warmRuns   atomic.Int64
	deltaFast  atomic.Int64
	deltaFull  atomic.Int64
}

// EvalStats is a snapshot of the process-wide evaluator counters.
type EvalStats struct {
	// Evaluators counts NewEvaluator calls; Runs counts Evaluator.Run calls,
	// of which WarmRuns hit fully warmed arenas (every run after an
	// evaluator's first).
	Evaluators int64
	Runs       int64
	WarmRuns   int64
	// DeltaFast counts schedule evaluations answered by the incremental
	// delta path; DeltaFull counts MakeSpanOf calls that fell back to a full
	// simulation.
	DeltaFast int64
	DeltaFull int64
}

// ReadEvalStats snapshots the process-wide evaluator counters.
func ReadEvalStats() EvalStats {
	return EvalStats{
		Evaluators: evalCounters.evaluators.Load(),
		Runs:       evalCounters.runs.Load(),
		WarmRuns:   evalCounters.warmRuns.Load(),
		DeltaFast:  evalCounters.deltaFast.Load(),
		DeltaFull:  evalCounters.deltaFull.Load(),
	}
}

// Summary renders the stats as one line.
func (s EvalStats) Summary() string {
	return fmt.Sprintf("sim: %d evaluators, %d runs (%d warm), delta evals %d fast / %d full-fallback",
		s.Evaluators, s.Runs, s.WarmRuns, s.DeltaFast, s.DeltaFull)
}
