package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

// TestRunCallsNoReadyVersion is the regression test for the former
// latestAt panic: a schedule that executes before any compilation of the
// called function finishes must surface as a structured *ErrNoReadyVersion
// carrying the function and the time, not crash.
func TestRunCallsNoReadyVersion(t *testing.T) {
	p, err := profile.Synthesize(2, profile.DefaultTiming(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("inconsistent", []trace.FuncID{1, 0})
	// Function 1 has a version from tick 0 on; function 0 was never
	// compiled, so its call can never start.
	versions := make([]versionList, 2)
	versions[1].insert(0, 0)
	res := &Result{}
	err = runCalls(tr, p, versions, res, Options{})
	if err == nil {
		t.Fatal("runCalls accepted a call to a never-compiled function")
	}
	var nrv *ErrNoReadyVersion
	if !errors.As(err, &nrv) {
		t.Fatalf("error %T is not *ErrNoReadyVersion: %v", err, err)
	}
	if nrv.Func != 0 {
		t.Errorf("error names function %d, want 0", nrv.Func)
	}
	if nrv.Time < 0 {
		t.Errorf("error carries negative time %d", nrv.Time)
	}
	for _, want := range []string{"function 0", "no compiled version"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunRejectsUncompiledFunction pins down the public path: Run's
// validation refuses the same inconsistent schedule up front.
func TestRunRejectsUncompiledFunction(t *testing.T) {
	p, err := profile.Synthesize(2, profile.DefaultTiming(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("uncompiled", []trace.FuncID{0, 1})
	sched := Schedule{{Func: 0, Level: 0}} // function 1 never compiled
	if _, err := Run(tr, p, sched, DefaultConfig(), Options{}); err == nil {
		t.Fatal("Run accepted a schedule that never compiles a called function")
	}
}

// TestDrainUntilReadyDeadlock is the regression test for the former
// executor-blocked panic: a hand-built engine whose queue cannot ever
// produce a version of the blocked function returns a typed *DeadlockError
// instead of crashing the worker.
func TestDrainUntilReadyDeadlock(t *testing.T) {
	p, err := profile.Synthesize(2, profile.DefaultTiming(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng := &engine{
		p:        p,
		queue:    compileQueue{pool: newWorkerPool(1)},
		versions: make([]versionList, 2),
		res:      &Result{},
	}
	// One pending compilation of function 1; the executor blocks on
	// function 0, which nothing in the queue can ever satisfy.
	eng.queue.push(pendingReq{f: 1, level: 0, arrival: 0, first: true, seq: 1})
	err = eng.drainUntilReady(0, 37)
	if err == nil {
		t.Fatal("drainUntilReady returned nil for an unsatisfiable wait")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not *DeadlockError: %v", err, err)
	}
	if de.Func != 0 || de.Time != 37 {
		t.Errorf("deadlock names (func %d, time %d), want (0, 37)", de.Func, de.Time)
	}
	if !strings.Contains(err.Error(), "function 0") || !strings.Contains(err.Error(), "time 37") {
		t.Errorf("error %q does not name the blocked function and time", err)
	}
	// The unrelated compilation was drained before the deadlock was
	// detected, so the reported queue state is empty.
	if len(de.Pending) != 0 {
		t.Errorf("pending snapshot = %v, want empty", de.Pending)
	}
	if eng.versions[1].firstReady() < 0 {
		t.Error("the satisfiable request was not drained before reporting")
	}
}

func TestDeadlockErrorFormatsQueueState(t *testing.T) {
	de := &DeadlockError{Func: 3, Time: 9, Pending: []Request{{Func: 1, Level: 2}, {Func: 4, Level: 0}}}
	msg := de.Error()
	for _, want := range []string{"function 3", "time 9", "2 queued", "C2(f1)", "C0(f4)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("DeadlockError %q missing %q", msg, want)
		}
	}
	empty := &DeadlockError{Func: 0, Time: 0}
	if !strings.Contains(empty.Error(), "queue empty") {
		t.Errorf("empty-queue DeadlockError %q does not say so", empty.Error())
	}
}
