package sim

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

func TestMTValidation(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0})
	if _, _, err := RunPolicyMT(nil, p, levelZero{}, DefaultConfig(), Options{}); err == nil {
		t.Error("want error for no threads")
	}
	if _, _, err := RunPolicyMT([]*trace.Trace{tr}, p, nil, DefaultConfig(), Options{}); err == nil {
		t.Error("want error for nil policy")
	}
	if _, _, err := RunPolicyMT([]*trace.Trace{tr}, p, levelZero{}, Config{}, Options{}); err == nil {
		t.Error("want error for zero workers")
	}
	if _, _, err := RunPolicyMT([]*trace.Trace{tr}, p, levelZero{}, DefaultConfig(), Options{RecordCalls: true}); err == nil {
		t.Error("want error for RecordCalls")
	}
	if _, _, err := RunPolicyMT([]*trace.Trace{trace.New("bad", []trace.FuncID{99})}, p, levelZero{}, DefaultConfig(), Options{}); err == nil {
		t.Error("want error for out-of-range function")
	}
}

// TestMTSingleThreadMatchesRunPolicy: with one thread, the MT engine and the
// single-threaded engine agree on the make-span.
func TestMTSingleThreadMatchesRunPolicy(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "t", NumFuncs: 80, Length: 12000, Seed: 4,
		ZipfS: 1.5, Phases: 2, CoreFuncs: 12, CoreShare: 0.5, BurstMean: 2,
		WarmupFrac: 0.1, WarmupCoverage: 0.8,
	})
	p := testkit.Synth(80, profile.DefaultTiming(4, 5))
	for _, d := range []QueueDiscipline{FIFO, FirstCompileFirst} {
		for _, pol := range []func() Policy{
			func() Policy { return levelZero{} },
			func() Policy { return v8ish{high: 3} },
			func() Policy { return multiSampler{period: 5000} },
		} {
			single, err := RunPolicy(tr, p, pol(), Config{CompileWorkers: 1, Discipline: d}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			multi, perThread, err := RunPolicyMT([]*trace.Trace{tr}, p, pol(), Config{CompileWorkers: 1, Discipline: d}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if multi.MakeSpan != single.MakeSpan {
				t.Errorf("%v: MT(1 thread) make-span %d != single-threaded %d", d, multi.MakeSpan, single.MakeSpan)
			}
			if multi.TotalExec != single.TotalExec || multi.TotalBubble != single.TotalBubble {
				t.Errorf("%v: MT accounting differs: exec %d/%d bubble %d/%d",
					d, multi.TotalExec, single.TotalExec, multi.TotalBubble, single.TotalBubble)
			}
			if len(perThread) != 1 || perThread[0].Finish != multi.MakeSpan {
				t.Errorf("%v: per-thread detail inconsistent: %+v", d, perThread)
			}
		}
	}
}

// TestMTTwoThreadsShareCode: a function compiled for one thread is ready for
// the other, and invocation counts are global.
func TestMTTwoThreadsShareCode(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f", Compile: []int64{10, 30}, Exec: []int64{20, 2}},
		},
	}
	// Thread A calls f twice; thread B calls f twice. V8-ish promotion on
	// the global second invocation.
	a := trace.New("a", []trace.FuncID{0, 0})
	b := trace.New("b", []trace.FuncID{0, 0})
	res, perThread, err := RunPolicyMT([]*trace.Trace{a, b}, p, v8ish{high: 1},
		Config{CompileWorkers: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one first compile and one promotion, not per-thread copies.
	if len(res.Compiles) != 2 {
		t.Fatalf("%d compilations, want 2 (shared code cache)", len(res.Compiles))
	}
	if res.Compiles[0].Event.Level != 0 || res.Compiles[1].Event.Level != 1 {
		t.Errorf("compilation levels %v", res.Compiles)
	}
	// Both threads ran both their calls.
	for i, tr := range perThread {
		if tr.Calls != 2 {
			t.Errorf("thread %d ran %d calls", i, tr.Calls)
		}
	}
	if res.MakeSpan != res.Compiles[0].Done+20+2 && res.MakeSpan < 22 {
		t.Errorf("implausible make-span %d", res.MakeSpan)
	}
}

// TestMTParallelismHelps: two threads splitting a workload finish sooner
// than one thread running it all, but never faster than the exec-bound
// limit.
func TestMTParallelismHelps(t *testing.T) {
	full := testkit.Gen(trace.GenConfig{
		Name: "t", NumFuncs: 60, Length: 10000, Seed: 8,
		ZipfS: 1.6, Phases: 2, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2,
	})
	p := testkit.Synth(60, profile.DefaultTiming(4, 9))
	half1 := trace.New("h1", full.Calls[:full.Len()/2])
	half2 := trace.New("h2", full.Calls[full.Len()/2:])

	one, _, err := RunPolicyMT([]*trace.Trace{full}, p, levelZero{}, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, perThread, err := RunPolicyMT([]*trace.Trace{half1, half2}, p, levelZero{}, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if two.MakeSpan >= one.MakeSpan {
		t.Errorf("two threads (%d) not faster than one (%d)", two.MakeSpan, one.MakeSpan)
	}
	if two.MakeSpan < one.MakeSpan/3 {
		t.Errorf("two threads implausibly fast: %d vs %d", two.MakeSpan, one.MakeSpan)
	}
	for i, th := range perThread {
		if th.Finish != th.Exec+th.Bubble {
			t.Errorf("thread %d: accounting identity broken: %d != %d+%d", i, th.Finish, th.Exec, th.Bubble)
		}
	}
}

// TestMTDeterministic: repeated runs agree exactly.
func TestMTDeterministic(t *testing.T) {
	p := testkit.Synth(50, profile.DefaultTiming(4, 11))
	var threads []*trace.Trace
	for i := 0; i < 4; i++ {
		threads = append(threads, testkit.Gen(trace.GenConfig{
			Name: "t", NumFuncs: 50, Length: 3000, Seed: 20, DrawSeed: int64(21 + i),
			ZipfS: 1.5, Phases: 2, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2,
		}))
	}
	run := func() int64 {
		res, _, err := RunPolicyMT(threads, p, multiSampler{period: 4000},
			Config{CompileWorkers: 2, Discipline: FirstCompileFirst}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("MT run not deterministic: %d vs %d", a, b)
	}
}

// TestMTCompileRecordsConsistent: shared compile stream never overlaps per
// worker and respects durations, under contention from four threads.
func TestMTCompileRecordsConsistent(t *testing.T) {
	p := testkit.Synth(120, profile.DefaultTiming(4, 13))
	var threads []*trace.Trace
	for i := 0; i < 4; i++ {
		threads = append(threads, testkit.Gen(trace.GenConfig{
			Name: "t", NumFuncs: 120, Length: 6000, Seed: 30, DrawSeed: int64(31 + i),
			ZipfS: 1.4, Phases: 2, CoreFuncs: 15, CoreShare: 0.5, BurstMean: 2,
			WarmupFrac: 0.15, WarmupCoverage: 0.7,
		}))
	}
	res, _, err := RunPolicyMT(threads, p, multiSampler{period: 3000},
		Config{CompileWorkers: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perWorker := map[int]int64{}
	for i, c := range res.Compiles {
		if c.Start < perWorker[c.Worker] {
			t.Errorf("compile %d overlaps previous work on worker %d", i, c.Worker)
		}
		perWorker[c.Worker] = c.Done
		if c.Done-c.Start != p.CompileTime(c.Event.Func, c.Event.Level) {
			t.Errorf("compile %d has wrong duration", i)
		}
	}
}
