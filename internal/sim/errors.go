package sim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/trace"
)

// ErrInterrupted reports that a run was abandoned because Options.Interrupt
// fired. The simulated numbers accumulated so far are meaningless and are
// never returned — Run and RunPolicy yield a nil Result alongside this
// error.
var ErrInterrupted = errors.New("sim: run interrupted")

// ErrNoReadyVersion reports that execution reached a call at a time when no
// compiled version of the function existed — a schedule that executes before
// any compile finishes. The simulator's entry points validate their inputs,
// so seeing this error from Run or RunPolicy means the run's internal
// bookkeeping was handed an inconsistent state; it is returned (never
// panicked) so batch sweeps degrade to one failed job instead of crashing.
type ErrNoReadyVersion struct {
	// Func is the function the call needed.
	Func trace.FuncID
	// Time is the simulated tick at which the call tried to start.
	Time int64
}

// Error implements the error interface.
func (e *ErrNoReadyVersion) Error() string {
	return fmt.Sprintf("sim: no compiled version of function %d was ready at time %d", e.Func, e.Time)
}

// DeadlockError reports that the execution worker blocked waiting for a
// function while no pending compilation could ever produce a version of it:
// the simulated machine would hang forever. It carries the queue state at
// the moment of the deadlock for debugging.
type DeadlockError struct {
	// Func is the function the executor blocked on.
	Func trace.FuncID
	// Time is the simulated tick at which the executor blocked.
	Time int64
	// Pending is the compile queue's remaining requests (typically empty:
	// a non-empty queue can always drain).
	Pending []Request
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: executor blocked on function %d at time %d with no pending compilation of it", e.Func, e.Time)
	if len(e.Pending) == 0 {
		b.WriteString(" (compile queue empty)")
	} else {
		fmt.Fprintf(&b, " (%d queued:", len(e.Pending))
		for i, r := range e.Pending {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " C%d(f%d)", r.Level, r.Func)
		}
		b.WriteByte(')')
	}
	return b.String()
}
