package sim

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// v8ish promotes every function to the high level at its second invocation —
// enough policy to exercise the engine without importing internal/policy.
type v8ish struct{ high profile.Level }

func (v v8ish) FirstCall(trace.FuncID, int64) profile.Level { return 0 }
func (v v8ish) BeforeCall(f trace.FuncID, nth int64, now int64) []Request {
	if nth == 2 {
		return []Request{{Func: f, Level: v.high}}
	}
	return nil
}
func (v v8ish) Sample(trace.FuncID, int64) []Request { return nil }
func (v v8ish) SamplePeriod() int64                  { return 0 }

// levelZero compiles everything at level 0 on first call.
type levelZero struct{}

func (levelZero) FirstCall(trace.FuncID, int64) profile.Level     { return 0 }
func (levelZero) BeforeCall(trace.FuncID, int64, int64) []Request { return nil }
func (levelZero) Sample(trace.FuncID, int64) []Request            { return nil }
func (levelZero) SamplePeriod() int64                             { return 0 }

// multiSampler enqueues a level-1 recompile of whichever of functions 0 and
// 1 it samples.
type multiSampler struct{ period int64 }

func (m multiSampler) FirstCall(trace.FuncID, int64) profile.Level     { return 0 }
func (m multiSampler) BeforeCall(trace.FuncID, int64, int64) []Request { return nil }
func (m multiSampler) Sample(f trace.FuncID, now int64) []Request {
	if f <= 1 {
		return []Request{{Func: f, Level: 1}}
	}
	return nil
}
func (m multiSampler) SamplePeriod() int64 { return m.period }

// burstSampler floods the queue: its first sample enqueues recompilations of
// both hot functions at once, saturating the single worker.
type burstSampler struct {
	period int64
	fired  bool
}

func (b *burstSampler) FirstCall(trace.FuncID, int64) profile.Level     { return 0 }
func (b *burstSampler) BeforeCall(trace.FuncID, int64, int64) []Request { return nil }
func (b *burstSampler) Sample(f trace.FuncID, now int64) []Request {
	if b.fired {
		return nil
	}
	b.fired = true
	return []Request{{Func: 0, Level: 1}, {Func: 1, Level: 1}}
}
func (b *burstSampler) SamplePeriod() int64 { return b.period }

func TestDisciplineString(t *testing.T) {
	if FIFO.String() != "fifo" || FirstCompileFirst.String() != "first-compile-first" {
		t.Error("discipline names changed")
	}
	if QueueDiscipline(9).String() == "" {
		t.Error("unknown discipline should still stringify")
	}
}

func TestRunPolicyRejectsBadDiscipline(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0})
	_, err := RunPolicy(tr, p, levelZero{}, Config{CompileWorkers: 1, Discipline: QueueDiscipline(7)}, Options{})
	if err == nil {
		t.Error("want error for unknown discipline")
	}
}

// TestOnlineV8Timeline pins the engine's lazy queue down to exact ticks on a
// blocking scenario: the first call of a new function queues behind an
// in-flight recompilation (in-flight work is never preempted, under either
// discipline).
func TestOnlineV8Timeline(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "hot", Compile: []int64{1, 100}, Exec: []int64{10, 1}},
			{Name: "new", Compile: []int64{2, 50}, Exec: []int64{5, 5}},
		},
	}
	tr := trace.New("t", []trace.FuncID{0, 0, 1})
	for _, d := range []QueueDiscipline{FIFO, FirstCompileFirst} {
		res, err := RunPolicy(tr, p, v8ish{high: 1}, Config{CompileWorkers: 1, Discipline: d}, Options{RecordCalls: true})
		if err != nil {
			t.Fatal(err)
		}
		// c0l [0,1); e0 [1,11); 2nd call enqueues c0h at 11 (worker idle,
		// starts immediately, [11,111)); e0 [11,21); f1's first compile
		// arrives at 21 while c0h is IN FLIGHT -> starts 111, done 113;
		// e1 [113,118).
		if res.MakeSpan != 118 {
			t.Errorf("%v: make-span = %d, want 118 (no preemption of in-flight work)", d, res.MakeSpan)
		}
		if res.CallStarts[2] != 113 {
			t.Errorf("%v: blocked call starts at %d, want 113", d, res.CallStarts[2])
		}
	}
}

// TestPriorityTrueOvertake: two recompilations land in the queue at once —
// one goes in flight, one stays pending — and a later first-compilation
// must jump the pending one under FirstCompileFirst but not under FIFO.
//
// Timeline (ticks): c(h1,0) [0,10), h1 runs [10,40); h2's first compile
// [40,50), h2 runs [50,80); the sampler fires at 75 and enqueues both
// recompilations: c(h1,1) starts at 75 and runs to 275, c(h2,1) waits.
// h1 runs again [80,110) at level 0; then "new" is reached at 110 and its
// first compile is requested. FIFO serves c(h2,1) [275,475) first, so new
// compiles [475,480) and the three calls finish at 495. The priority
// discipline serves new at [275,280) and the run finishes at 295.
func TestPriorityTrueOvertake(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "h1", Compile: []int64{10, 200}, Exec: []int64{30, 1}},
			{Name: "h2", Compile: []int64{10, 200}, Exec: []int64{30, 1}},
			{Name: "new", Compile: []int64{5, 50}, Exec: []int64{5, 5}},
		},
	}
	seq := []trace.FuncID{0, 1, 0, 2, 2, 2}
	fifo, err := RunPolicy(trace.New("t", seq), p, &burstSampler{period: 75},
		Config{CompileWorkers: 1, Discipline: FIFO}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := RunPolicy(trace.New("t", seq), p, &burstSampler{period: 75},
		Config{CompileWorkers: 1, Discipline: FirstCompileFirst}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fifo.MakeSpan != 495 {
		t.Errorf("FIFO make-span = %d, want 495", fifo.MakeSpan)
	}
	if prio.MakeSpan != 295 {
		t.Errorf("priority make-span = %d, want 295", prio.MakeSpan)
	}
	// Under priority, new@0 must start compiling before the last queued
	// recompilation does.
	var newStart, lastRecompileStart int64 = -1, -1
	for _, c := range prio.Compiles {
		if c.Event.Func == 2 && c.Event.Level == 0 {
			newStart = c.Start
		}
		if c.Event.Level == 1 && c.Start > lastRecompileStart {
			lastRecompileStart = c.Start
		}
	}
	if newStart < 0 || lastRecompileStart < 0 || newStart >= lastRecompileStart {
		t.Errorf("no overtake observed: new@0 starts %d, last recompile starts %d",
			newStart, lastRecompileStart)
	}
	// FIFO must not have overtaken: requests start in arrival order.
	for i := 1; i < len(fifo.Compiles); i++ {
		if fifo.Compiles[i].Start < fifo.Compiles[i-1].Start {
			t.Errorf("FIFO compile %d starts before its predecessor", i)
		}
	}
}

// TestDisciplinesAgreeWithoutContention: when the queue never holds more
// than one request, the disciplines are indistinguishable.
func TestDisciplinesAgreeWithoutContention(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "t", NumFuncs: 50, Length: 4000, Seed: 5,
		ZipfS: 1.6, Phases: 2, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2,
	})
	p := testkit.Synth(50, profile.DefaultTiming(4, 6))
	a, err := RunPolicy(tr, p, levelZero{}, Config{CompileWorkers: 1, Discipline: FIFO}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPolicy(tr, p, levelZero{}, Config{CompileWorkers: 1, Discipline: FirstCompileFirst}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakeSpan != b.MakeSpan {
		t.Errorf("first-call-only policy: disciplines disagree (%d vs %d)", a.MakeSpan, b.MakeSpan)
	}
}

// TestOnlineMakeSpanIdentity: the accounting identity holds for the online
// engine under both disciplines and several worker counts.
func TestOnlineMakeSpanIdentity(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "t", NumFuncs: 120, Length: 20000, Seed: 9,
		ZipfS: 1.5, Phases: 3, CoreFuncs: 20, CoreShare: 0.5, BurstMean: 3,
		WarmupFrac: 0.1, WarmupCoverage: 0.8,
	})
	p := testkit.Synth(120, profile.DefaultTiming(4, 10))
	for _, d := range []QueueDiscipline{FIFO, FirstCompileFirst} {
		for _, workers := range []int{1, 3} {
			res, err := RunPolicy(tr, p, multiSampler{period: 5000},
				Config{CompileWorkers: workers, Discipline: d}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.MakeSpan != res.TotalExec+res.TotalBubble {
				t.Errorf("%v/%d workers: identity violated: %d != %d + %d",
					d, workers, res.MakeSpan, res.TotalExec, res.TotalBubble)
			}
			// Compile records are in start order and never overlap per
			// worker.
			perWorker := map[int]int64{}
			for i, c := range res.Compiles {
				if c.Start < perWorker[c.Worker] {
					t.Errorf("%v/%d: compile %d overlaps previous work on worker %d", d, workers, i, c.Worker)
				}
				perWorker[c.Worker] = c.Done
				if c.Done-c.Start != p.CompileTime(c.Event.Func, c.Event.Level) {
					t.Errorf("%v/%d: compile %d has wrong duration", d, workers, i)
				}
			}
		}
	}
}
