package sim

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// Multi-threaded execution. The paper's model — and RunPolicy — drive one
// execution worker, flattening even multithreaded benchmarks into a single
// call sequence (§6.1). RunPolicyMT lifts that restriction: each thread
// executes its own call sequence on its own core while all threads share
// the code cache, the policy (hotness is global), and the compilation
// workers. The §7 queue-discipline question only becomes substantive here:
// with several execution threads the compile queue has several request
// sources and genuinely backs up.

// ThreadResult reports one execution thread's outcome.
type ThreadResult struct {
	// Finish is when the thread's last call completed.
	Finish int64
	// Exec and Bubble split the thread's timeline into running and waiting.
	Exec, Bubble int64
	// Calls is the thread's call count.
	Calls int
}

// mtThread is one execution thread's engine state.
type mtThread struct {
	calls      []trace.FuncID
	idx        int
	clock      int64 // when the thread can issue its next call
	issued     bool  // the current call's requests have been emitted
	nextSample int64
	res        ThreadResult
}

// RunPolicyMT drives per-thread call sequences through an online policy on
// len(threads) execution cores and cfg.CompileWorkers compilation cores.
// Policy state (invocation counts, sampler hotness) is shared across
// threads, as it is in a JVM. Each thread carries its own sampling clock.
//
// The returned Result aggregates across threads: MakeSpan is the latest
// thread finish, TotalExec/TotalBubble are summed, and Compiles lists the
// shared compilation stream. Per-thread detail comes second.
func RunPolicyMT(threads []*trace.Trace, p *profile.Profile, pol Policy, cfg Config, opts Options) (*Result, []ThreadResult, error) {
	if len(threads) == 0 {
		return nil, nil, fmt.Errorf("sim: RunPolicyMT needs at least one thread")
	}
	if cfg.CompileWorkers < 1 {
		return nil, nil, fmt.Errorf("sim: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	if cfg.Discipline != FIFO && cfg.Discipline != FirstCompileFirst {
		return nil, nil, fmt.Errorf("sim: unknown queue discipline %d", cfg.Discipline)
	}
	if pol == nil {
		return nil, nil, fmt.Errorf("sim: RunPolicyMT needs a non-nil policy")
	}
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if opts.RecordCalls {
		return nil, nil, fmt.Errorf("sim: RecordCalls is not supported for multi-threaded runs")
	}
	if opts.Recorder != nil {
		// Event recording assumes a single execution lane; the MT engine's
		// interleaved threads would produce overlapping exec spans.
		return nil, nil, fmt.Errorf("sim: Options.Recorder is not supported for multi-threaded runs")
	}
	nf := p.NumFuncs()
	period := pol.SamplePeriod()
	if period < 0 {
		return nil, nil, fmt.Errorf("sim: policy sample period must be >= 0, got %d", period)
	}

	res := &Result{FirstReady: make([]int64, nf)}
	for f := range res.FirstReady {
		res.FirstReady[f] = -1
	}
	eng := &engine{
		p:        p,
		queue:    compileQueue{discipline: cfg.Discipline, pool: newWorkerPool(cfg.CompileWorkers)},
		versions: make([]versionList, nf),
		res:      res,
	}
	maxRequested := make([]profile.Level, nf)
	requested := make([]bool, nf)
	seq := 0
	enqueue := func(f trace.FuncID, l profile.Level, arrival int64) error {
		if l < 0 || int(l) >= p.Levels {
			return fmt.Errorf("sim: policy requested level %d for function %d outside [0,%d)", l, f, p.Levels)
		}
		if requested[f] && l <= maxRequested[f] {
			return nil
		}
		first := !requested[f]
		requested[f] = true
		maxRequested[f] = l
		seq++
		if first {
			for _, r := range eng.queue.pending {
				if !r.first {
					res.FirstBehindRecompiles++
					break
				}
			}
		}
		eng.queue.push(pendingReq{f: f, level: l, arrival: arrival, first: first, seq: seq})
		if n := len(eng.queue.pending); n > res.MaxPending {
			res.MaxPending = n
		}
		return nil
	}

	ts := make([]*mtThread, len(threads))
	callNum := make([]int64, nf) // global invocation counts, shared
	for i, tr := range threads {
		if err := tr.Validate(nf); err != nil {
			return nil, nil, err
		}
		ts[i] = &mtThread{calls: tr.Calls, nextSample: period}
	}

	const inf = int64(1)<<62 - 1
	for {
		// Candidate events: the next compile assignment and each thread's
		// next step (issue its call's requests, or start executing once a
		// version is ready). Assignments commit first on ties: they unblock.
		na, havePending := eng.nextAssignTime()
		bestThread := -1
		bestTime := inf
		bestIsIssue := false
		for i, t := range ts {
			if t.idx >= len(t.calls) {
				continue
			}
			f := t.calls[t.idx]
			switch {
			case !t.issued:
				if t.clock < bestTime {
					bestTime, bestThread, bestIsIssue = t.clock, i, true
				}
			case eng.versions[f].firstReady() >= 0:
				start := t.clock
				if r := eng.versions[f].firstReady(); r > start {
					start = r
				}
				if start < bestTime {
					bestTime, bestThread, bestIsIssue = start, i, false
				}
			}
			// Threads whose function is requested but unassigned wait for
			// an assignment event.
		}

		if havePending && (bestThread < 0 || na <= bestTime) {
			if !eng.drainOne() {
				return nil, nil, fmt.Errorf("sim: internal error: pending queue did not drain")
			}
			continue
		}
		if bestThread < 0 {
			break // every thread finished (blocked threads imply pending work)
		}
		t := ts[bestThread]
		f := t.calls[t.idx]
		if bestIsIssue {
			callNum[f]++
			for _, r := range pol.BeforeCall(f, callNum[f], t.clock) {
				if err := enqueue(r.Func, r.Level, t.clock); err != nil {
					return nil, nil, err
				}
			}
			if !requested[f] {
				if err := enqueue(f, pol.FirstCall(f, t.clock), t.clock); err != nil {
					return nil, nil, err
				}
			}
			t.issued = true
			continue
		}

		// Execute the call.
		start := bestTime
		if start > t.clock {
			t.res.Bubble += start - t.clock
		}
		eng.drainArrived(start)
		level, ok := eng.versions[f].latestAt(start)
		if !ok {
			return nil, nil, &ErrNoReadyVersion{Func: f, Time: start}
		}
		dur := p.ExecTime(f, level)
		if opts.ExecVariation > 0 {
			// Per-call factors key on a global, order-independent index:
			// thread id mixed with the thread-local call index.
			dur = scaleDuration(dur, CallFactor(opts.ExecVariationSeed+int64(bestThread)*1_000_003, t.idx, opts.ExecVariation))
		}
		end := start + dur
		if period > 0 {
			for t.nextSample < start {
				t.nextSample += period
			}
			for t.nextSample < end {
				for _, r := range pol.Sample(f, t.nextSample) {
					if err := enqueue(r.Func, r.Level, t.nextSample); err != nil {
						return nil, nil, err
					}
				}
				t.nextSample += period
			}
		}
		t.res.Exec += dur
		t.res.Calls++
		t.res.Finish = end
		t.clock = end
		t.idx++
		t.issued = false
	}

	eng.drainAll()
	for f := range eng.versions {
		res.FirstReady[f] = eng.versions[f].firstReady()
	}
	perThread := make([]ThreadResult, len(ts))
	for i, t := range ts {
		perThread[i] = t.res
		res.TotalExec += t.res.Exec
		res.TotalBubble += t.res.Bubble
		if t.res.Finish > res.MakeSpan {
			res.MakeSpan = t.res.Finish
		}
	}
	return res, perThread, nil
}
