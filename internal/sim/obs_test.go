package sim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// obsWorkload is a small two-function workload with a real warmup stall.
func obsWorkload(t testing.TB) (*trace.Trace, *profile.Profile, Schedule) {
	t.Helper()
	p, err := profile.Synthesize(2, profile.DefaultTiming(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("obs", []trace.FuncID{0, 1, 0, 0, 1})
	sched := Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 1}, {Func: 0, Level: 2}}
	return tr, p, sched
}

// TestRunRecordsConsistentEvents checks the recorder contract on the static
// path: events pair into spans, the compile spans reproduce Result.Compiles,
// every call appears as an exec span, and stalls sum to TotalBubble.
func TestRunRecordsConsistentEvents(t *testing.T) {
	tr, p, sched := obsWorkload(t)
	rec := obs.NewRecorder()
	res, err := Run(tr, p, sched, DefaultConfig(), Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(tr, p, sched, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan != base.MakeSpan || res.TotalBubble != base.TotalBubble {
		t.Errorf("recording changed the result: %d/%d vs %d/%d",
			res.MakeSpan, res.TotalBubble, base.MakeSpan, base.TotalBubble)
	}
	checkEventsMatch(t, rec.Events(), tr, res)
}

// TestRunPolicyRecordsConsistentEvents checks the same contract on the
// online path, where compiles are materialized lazily by the engine.
func TestRunPolicyRecordsConsistentEvents(t *testing.T) {
	tr, p, _ := obsWorkload(t)
	rec := obs.NewRecorder()
	res, err := RunPolicy(tr, p, onDemandPolicy{}, DefaultConfig(), Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunPolicy(tr, p, onDemandPolicy{}, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan != base.MakeSpan {
		t.Errorf("recording changed the make-span: %d vs %d", res.MakeSpan, base.MakeSpan)
	}
	checkEventsMatch(t, rec.Events(), tr, res)
}

// onDemandPolicy compiles every function at level 0 on first call.
type onDemandPolicy struct{}

func (onDemandPolicy) FirstCall(f trace.FuncID, now int64) profile.Level { return 0 }
func (onDemandPolicy) BeforeCall(trace.FuncID, int64, int64) []Request   { return nil }
func (onDemandPolicy) Sample(trace.FuncID, int64) []Request              { return nil }
func (onDemandPolicy) SamplePeriod() int64                               { return 0 }

func checkEventsMatch(t *testing.T, events []obs.Event, tr *trace.Trace, res *Result) {
	t.Helper()
	spans, err := obs.Spans(events)
	if err != nil {
		t.Fatalf("recorded events do not pair: %v", err)
	}
	var compiles, execs int
	var stallTotal int64
	for _, s := range spans {
		switch s.Kind {
		case obs.SpanCompile:
			c := res.Compiles[s.Seq]
			if int64(s.Start) != c.Start || int64(s.End) != c.Done ||
				int32(c.Worker) != s.Worker || int32(c.Event.Func) != s.Func {
				t.Errorf("compile span %+v disagrees with record %+v", s, c)
			}
			compiles++
		case obs.SpanExec:
			execs++
		case obs.SpanStall:
			stallTotal += s.End - s.Start
		}
	}
	if compiles != len(res.Compiles) {
		t.Errorf("recorded %d compile spans, result has %d", compiles, len(res.Compiles))
	}
	if execs != tr.Len() {
		t.Errorf("recorded %d exec spans for %d calls", execs, tr.Len())
	}
	if stallTotal != res.TotalBubble {
		t.Errorf("recorded stalls sum to %d, TotalBubble is %d", stallTotal, res.TotalBubble)
	}
}

// TestRunPolicyMTRejectsRecorder pins the documented restriction.
func TestRunPolicyMTRejectsRecorder(t *testing.T) {
	tr, p, _ := obsWorkload(t)
	_, _, err := RunPolicyMT([]*trace.Trace{tr}, p, onDemandPolicy{}, DefaultConfig(),
		Options{Recorder: obs.NewRecorder()})
	if err == nil {
		t.Fatal("RunPolicyMT accepted a recorder")
	}
}

// TestRecorderDisabledZeroAlloc is the acceptance gate for the overhead
// contract: with the recorder disabled the execution loop must not allocate
// at all. The Makefile bench-guard target runs this in CI.
func TestRecorderDisabledZeroAlloc(t *testing.T) {
	tr, p, sched := obsWorkload(t)
	versions := make([]versionList, p.NumFuncs())
	pool := newWorkerPool(1)
	for _, ev := range sched {
		_, _, done := pool.assign(0, p.CompileTime(ev.Func, ev.Level))
		versions[ev.Func].insert(done, ev.Level)
	}
	res := &Result{}
	allocs := testing.AllocsPerRun(200, func() {
		res.MakeSpan, res.TotalExec, res.TotalBubble, res.BubbleCount = 0, 0, 0, 0
		if err := runCalls(tr, p, versions, res, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("recorder-off execution loop allocates %v times per run, want 0", allocs)
	}
}

// benchWorkload builds a larger schedule/trace pair for the benchmarks.
func benchWorkload(b *testing.B) (*trace.Trace, *profile.Profile, []versionList) {
	b.Helper()
	const nf = 64
	p, err := profile.Synthesize(nf, profile.DefaultTiming(3, 11))
	if err != nil {
		b.Fatal(err)
	}
	calls := make([]trace.FuncID, 4096)
	for i := range calls {
		calls[i] = trace.FuncID(i % nf)
	}
	tr := trace.New("bench", calls)
	versions := make([]versionList, nf)
	pool := newWorkerPool(1)
	for f := 0; f < nf; f++ {
		_, _, done := pool.assign(0, p.CompileTime(trace.FuncID(f), 0))
		versions[f].insert(done, 0)
	}
	return tr, p, versions
}

// BenchmarkRunCallsRecorderOff measures the execution loop with recording
// disabled; it must report 0 allocs/op.
func BenchmarkRunCallsRecorderOff(b *testing.B) {
	tr, p, versions := benchWorkload(b)
	res := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.MakeSpan, res.TotalExec, res.TotalBubble, res.BubbleCount = 0, 0, 0, 0
		if err := runCalls(tr, p, versions, res, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCallsRecorderOn measures the same loop with a reused recorder,
// quantifying the per-event recording cost.
func BenchmarkRunCallsRecorderOn(b *testing.B) {
	tr, p, versions := benchWorkload(b)
	res := &Result{}
	rec := obs.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.MakeSpan, res.TotalExec, res.TotalBubble, res.BubbleCount = 0, 0, 0, 0
		rec.Reset()
		if err := runCalls(tr, p, versions, res, Options{Recorder: rec}); err != nil {
			b.Fatal(err)
		}
	}
}
