package sim

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// figure1Profile encodes the example of Figs. 1-2 of the paper:
// three functions, with f1 and f2 having a meaningful level-1 version.
//
//	          compile        exec
//	f0:  c00=1            e00=1
//	f1:  c10=1, c11=3     e10=3, e11=2
//	f2:  c20=3, c21=5     e20=3, e21=1
func figure1Profile() *profile.Profile {
	return &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f0", Size: 1, Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Name: "f1", Size: 1, Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Name: "f2", Size: 1, Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
}

func mustRun(t *testing.T, tr *trace.Trace, p *profile.Profile, s Schedule, cfg Config) *Result {
	t.Helper()
	res, err := Run(tr, p, s, cfg, Options{RecordCalls: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestPaperFigure1 replays the three schedules of Fig. 1 ("f0 f1 f2 f1") and
// checks the make-spans the paper's timelines show: 11, 12, and 10.
func TestPaperFigure1(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	cfg := DefaultConfig()

	s1 := Schedule{{0, 0}, {1, 0}, {2, 0}}
	s2 := Schedule{{0, 0}, {1, 1}, {2, 0}}
	s3 := Schedule{{0, 0}, {1, 0}, {2, 0}, {1, 1}}

	cases := []struct {
		name string
		s    Schedule
		want int64
	}{
		{"s1 all level0", s1, 11},
		{"s2 f1 at level1", s2, 12},
		{"s3 f1 twice", s3, 10},
	}
	for _, c := range cases {
		res := mustRun(t, tr, p, c.s, cfg)
		if res.MakeSpan != c.want {
			t.Errorf("%s: make-span = %d, want %d", c.name, res.MakeSpan, c.want)
		}
		if res.MakeSpan != res.TotalExec+res.TotalBubble {
			t.Errorf("%s: make-span %d != exec %d + bubble %d",
				c.name, res.MakeSpan, res.TotalExec, res.TotalBubble)
		}
	}
}

// TestPaperFigure1Detail checks the tick-level timeline of schedule s3 of
// Fig. 1: call starts 1, 2, 5, 8 and the second f1 call running at level 1.
func TestPaperFigure1Detail(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res := mustRun(t, tr, p, Schedule{{0, 0}, {1, 0}, {2, 0}, {1, 1}}, DefaultConfig())

	wantStarts := []int64{1, 2, 5, 8}
	wantLevels := []profile.Level{0, 0, 0, 1}
	for i := range wantStarts {
		if res.CallStarts[i] != wantStarts[i] {
			t.Errorf("call %d starts at %d, want %d", i, res.CallStarts[i], wantStarts[i])
		}
		if res.CallLevels[i] != wantLevels[i] {
			t.Errorf("call %d runs at level %d, want %d", i, res.CallLevels[i], wantLevels[i])
		}
	}
	// The initial wait for c00 is the only bubble: compile of f1/f2 hides
	// behind execution.
	if res.TotalBubble != 1 || res.BubbleCount != 1 {
		t.Errorf("bubbles = %d over %d calls, want 1 over 1", res.TotalBubble, res.BubbleCount)
	}
}

// TestPaperFigure2 extends the sequence with a second call to f2 and checks
// the paper's conclusion: appending c21 makes the previously-best schedule s3
// the worst (13) and the previously-worst s1 the best (12).
func TestPaperFigure2(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig2", []trace.FuncID{0, 1, 2, 1, 2})
	cfg := DefaultConfig()

	cases := []struct {
		name string
		s    Schedule
		want int64
	}{
		{"s1 + c21", Schedule{{0, 0}, {1, 0}, {2, 0}, {2, 1}}, 12},
		{"s2 + c21", Schedule{{0, 0}, {1, 1}, {2, 0}, {2, 1}}, 13},
		{"s3 unchanged", Schedule{{0, 0}, {1, 0}, {2, 0}, {1, 1}}, 13},
	}
	for _, c := range cases {
		res := mustRun(t, tr, p, c.s, cfg)
		if res.MakeSpan != c.want {
			t.Errorf("%s: make-span = %d, want %d", c.name, res.MakeSpan, c.want)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0, 1})

	if err := (Schedule{{0, 0}}).Validate(tr, p); err == nil {
		t.Error("want error for schedule missing a called function")
	}
	if err := (Schedule{{0, 0}, {1, 5}}).Validate(tr, p); err == nil {
		t.Error("want error for out-of-range level")
	}
	if err := (Schedule{{7, 0}}).Validate(nil, p); err == nil {
		t.Error("want error for out-of-range function")
	}
	if err := (Schedule{{0, 0}, {1, 1}}).Validate(tr, p); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0})
	if _, err := Run(tr, p, Schedule{{0, 0}}, Config{CompileWorkers: 0}, Options{}); err == nil {
		t.Error("want error for zero compile workers")
	}
}

func TestEmptyTrace(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("empty", nil)
	res := mustRun(t, tr, p, Schedule{{0, 0}}, DefaultConfig())
	if res.MakeSpan != 0 {
		t.Errorf("empty trace make-span = %d, want 0", res.MakeSpan)
	}
	if res.CompileEnd != 1 {
		t.Errorf("compile end = %d, want 1", res.CompileEnd)
	}
}

// TestLatestCompilationWins verifies the "code produced by the latest
// compilation is used" rule: a call starting exactly when a recompilation
// finishes uses the new version.
func TestLatestCompilationWins(t *testing.T) {
	p := figure1Profile()
	// Compiles: c00 done t=1, c20 done t=4, c21 done t=9. A call sequence
	// that busies the executor until exactly t=9 must run f2 at level 1.
	tr := trace.New("t", []trace.FuncID{0, 0, 0, 0, 0, 0, 0, 0, 2}) // 8 calls of e00 after start 1 → exec reaches 9
	s := Schedule{{0, 0}, {2, 0}, {2, 1}}
	res := mustRun(t, tr, p, s, DefaultConfig())
	last := len(tr.Calls) - 1
	if res.CallStarts[last] != 9 {
		t.Fatalf("last call starts at %d, want 9", res.CallStarts[last])
	}
	if res.CallLevels[last] != 1 {
		t.Errorf("last call level = %d, want 1 (recompile finished exactly at start)", res.CallLevels[last])
	}
}

// TestConcurrentCompileWorkers checks that two workers compile in parallel:
// with one worker c10 finishes at 2 (queued after c00); with two, at 1.
func TestConcurrentCompileWorkers(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{1})
	s := Schedule{{0, 0}, {1, 0}}

	res1 := mustRun(t, tr, p, s, Config{CompileWorkers: 1})
	if res1.MakeSpan != 2+3 {
		t.Errorf("1 worker: make-span = %d, want 5", res1.MakeSpan)
	}
	res2 := mustRun(t, tr, p, s, Config{CompileWorkers: 2})
	if res2.MakeSpan != 1+3 {
		t.Errorf("2 workers: make-span = %d, want 4", res2.MakeSpan)
	}
	if res2.Compiles[1].Worker == res2.Compiles[0].Worker {
		t.Error("2 workers: both events ran on the same worker")
	}
}

// TestMakeSpanIdentity fuzzes random schedules and checks the accounting
// identity MakeSpan == TotalExec + TotalBubble and that versions only come
// from finished compilations.
func TestMakeSpanIdentity(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "fuzz", NumFuncs: 40, Length: 3000, Seed: 7,
		ZipfS: 1.6, Phases: 3, CoreFuncs: 8, CoreShare: 0.4, BurstMean: 3,
	})
	p := testkit.Synth(40, profile.DefaultTiming(4, 11))

	// Build a haphazard but valid schedule: all functions at level 0 in
	// first-call order, then a few recompiles.
	var s Schedule
	for _, f := range tr.FirstCallOrder() {
		s = append(s, CompileEvent{f, 0})
	}
	for i, f := range tr.FirstCallOrder() {
		if i%3 == 0 {
			s = append(s, CompileEvent{f, profile.Level(1 + i%3)})
		}
	}
	for _, workers := range []int{1, 2, 4, 16} {
		res := mustRun(t, tr, p, s, Config{CompileWorkers: workers})
		if res.MakeSpan != res.TotalExec+res.TotalBubble {
			t.Errorf("%d workers: make-span %d != exec %d + bubble %d",
				workers, res.MakeSpan, res.TotalExec, res.TotalBubble)
		}
		if workers > 1 {
			ref := mustRun(t, tr, p, s, Config{CompileWorkers: 1})
			if res.MakeSpan > ref.MakeSpan {
				t.Errorf("%d workers made make-span worse: %d > %d", workers, res.MakeSpan, ref.MakeSpan)
			}
		}
	}
}
