package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// closedChan returns an already-fired interrupt signal.
func closedChan() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestRunInterrupted: a fired Options.Interrupt aborts a static replay with
// ErrInterrupted and no partial Result.
func TestRunInterrupted(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	sched := Schedule{{0, 0}, {1, 0}, {2, 0}}
	res, err := Run(tr, p, sched, DefaultConfig(), Options{Interrupt: closedChan()})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res != nil {
		t.Fatalf("interrupted Run returned a Result: %+v", res)
	}
}

// TestRunPolicyInterrupted: same contract for the online-policy engine.
func TestRunPolicyInterrupted(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res, err := RunPolicy(tr, p, levelZero{}, DefaultConfig(), Options{Interrupt: closedChan()})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res != nil {
		t.Fatalf("interrupted RunPolicy returned a Result: %+v", res)
	}
}

// TestRunNilInterruptIdentical: the zero Options (nil Interrupt) path is
// bit-identical to a run with a live, never-fired interrupt channel.
func TestRunNilInterruptIdentical(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	sched := Schedule{{0, 0}, {1, 0}, {2, 0}, {1, 1}}
	want, err1 := Run(tr, p, sched, DefaultConfig(), Options{})
	live := make(chan struct{})
	defer close(live)
	got, err2 := Run(tr, p, sched, DefaultConfig(), Options{Interrupt: live})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: plain=%v interruptible=%v", err1, err2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("interruptible run differs from plain:\n got %+v\nwant %+v", got, want)
	}
}
