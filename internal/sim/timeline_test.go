package sim

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRenderTimelineFig1(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res, err := Run(tr, p, Schedule{{0, 0}, {1, 0}, {2, 0}, {1, 1}}, DefaultConfig(),
		Options{RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTimeline(&b, tr, p, res, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"compile[0]", "execute", "legend", "C1(f1)", "f1 @8 level 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineNeedsRecordedCalls(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0})
	res, err := Run(tr, p, Schedule{{0, 0}}, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTimeline(&b, tr, p, res, 40); err == nil {
		t.Error("want error without RecordCalls")
	}
}

func TestRenderTimelineEmptyRun(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", nil)
	res, err := Run(tr, p, Schedule{}, DefaultConfig(), Options{RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTimeline(&b, tr, p, res, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty run") {
		t.Errorf("empty run output: %q", b.String())
	}
}

func TestRenderTimelineMultiWorker(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{1})
	res, err := Run(tr, p, Schedule{{0, 0}, {1, 0}}, Config{CompileWorkers: 2},
		Options{RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTimeline(&b, tr, p, res, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "compile[1]") {
		t.Errorf("second worker lane missing:\n%s", b.String())
	}
}
