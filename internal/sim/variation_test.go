package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

func TestCallFactorZeroMagnitude(t *testing.T) {
	for k := 0; k < 100; k++ {
		if f := CallFactor(3, k, 0); f != 1 {
			t.Fatalf("magnitude 0 gave factor %g at call %d", f, k)
		}
	}
}

func TestCallFactorRangeAndDeterminism(t *testing.T) {
	f := func(seed int64, k uint16, magRaw uint8) bool {
		m := float64(magRaw%90) / 100 // 0 .. 0.89
		a := CallFactor(seed, int(k), m)
		b := CallFactor(seed, int(k), m)
		return a == b && a >= 1-m-1e-9 && a <= 1+m+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCallFactorMeanPreserving(t *testing.T) {
	const n = 200000
	var sum float64
	for k := 0; k < n; k++ {
		sum += CallFactor(11, k, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean factor %.4f, want ~1.0", mean)
	}
}

func TestRunWithVariation(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "v", NumFuncs: 60, Length: 20000, Seed: 3,
		ZipfS: 1.5, Phases: 2, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2,
	})
	p := testkit.Synth(60, profile.DefaultTiming(4, 4))
	var s Schedule
	for _, f := range tr.FirstCallOrder() {
		s = append(s, CompileEvent{f, 0})
	}
	base, err := Run(tr, p, s, DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	varied, err := Run(tr, p, s, DefaultConfig(), Options{ExecVariation: 0.5, ExecVariationSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if varied.MakeSpan == base.MakeSpan {
		t.Error("variation had no effect")
	}
	// Mean-preserving: total execution stays within a few percent.
	ratio := float64(varied.TotalExec) / float64(base.TotalExec)
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("varied exec total off by %.3fx; variation not mean-preserving", ratio)
	}
	if varied.MakeSpan != varied.TotalExec+varied.TotalBubble {
		t.Error("accounting identity broken under variation")
	}

	// Same options, same result.
	again, err := Run(tr, p, s, DefaultConfig(), Options{ExecVariation: 0.5, ExecVariationSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if again.MakeSpan != varied.MakeSpan {
		t.Error("variation not deterministic")
	}

	// Different seed, different realization.
	other, err := Run(tr, p, s, DefaultConfig(), Options{ExecVariation: 0.5, ExecVariationSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other.MakeSpan == varied.MakeSpan {
		t.Error("different variation seeds produced identical runs")
	}
}

func TestVariationValidation(t *testing.T) {
	p := figure1Profile()
	tr := trace.New("t", []trace.FuncID{0})
	s := Schedule{{Func: 0, Level: 0}}
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		if _, err := Run(tr, p, s, DefaultConfig(), Options{ExecVariation: bad}); err == nil {
			t.Errorf("magnitude %g: want error", bad)
		}
		if _, err := RunPolicy(tr, p, levelZero{}, DefaultConfig(), Options{ExecVariation: bad}); err == nil {
			t.Errorf("policy magnitude %g: want error", bad)
		}
	}
}

func TestRunPolicyWithVariation(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "v", NumFuncs: 40, Length: 8000, Seed: 5,
		ZipfS: 1.5, Phases: 2, CoreFuncs: 8, CoreShare: 0.5, BurstMean: 2,
	})
	p := testkit.Synth(40, profile.DefaultTiming(4, 6))
	a, err := RunPolicy(tr, p, levelZero{}, DefaultConfig(), Options{ExecVariation: 0.4, ExecVariationSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPolicy(tr, p, levelZero{}, DefaultConfig(), Options{ExecVariation: 0.4, ExecVariationSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakeSpan != b.MakeSpan {
		t.Error("online variation not deterministic")
	}
	if a.MakeSpan != a.TotalExec+a.TotalBubble {
		t.Error("online accounting identity broken under variation")
	}
}
