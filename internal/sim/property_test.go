package sim_test

// Property-based tests for the simulator: for randomly generated traces,
// profiles, schedules, and machine configurations, the invariants the paper
// guarantees must hold on every run —
//
//   - the make-span is never below the §5 lower bound (each call at the
//     fastest level its function ever reaches), and exactly equals total
//     execution plus total bubble time;
//   - every call executes at the level of the most recently finished
//     compilation of its function at the call's start time, recomputed here
//     independently from the compile records;
//   - compilation workers never overlap jobs on one core, and every compile
//     record's span equals the profile's compile time.
//
// These are the invariants the parallel experiment runner leans on: they
// make a simulation a pure function of its inputs, so the differential
// tests in internal/runner can demand bit-identical parallel results.

import (
	"math/rand"
	"testing"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// randomProfile builds a Validate-clean profile: positive times, compile
// times nondecreasing and exec times nonincreasing with level.
func randomProfile(rng *rand.Rand, nf, levels int) *profile.Profile {
	p := &profile.Profile{Levels: levels, Funcs: make([]profile.FuncTimes, nf)}
	for i := range p.Funcs {
		compile := make([]int64, levels)
		exec := make([]int64, levels)
		c := int64(1 + rng.Intn(25))
		e := int64(5 + rng.Intn(60))
		for l := 0; l < levels; l++ {
			compile[l] = c
			exec[l] = e
			c += int64(rng.Intn(40))
			e -= int64(rng.Intn(20))
			if e < 1 {
				e = 1
			}
		}
		p.Funcs[i] = profile.FuncTimes{Size: int64(1 + rng.Intn(1000)), Compile: compile, Exec: exec}
	}
	return p
}

// randomTrace draws a call sequence with a mild hot/cold skew.
func randomTrace(rng *rand.Rand, nf, calls int) *trace.Trace {
	seq := make([]trace.FuncID, calls)
	for i := range seq {
		if rng.Intn(3) == 0 {
			seq[i] = trace.FuncID(rng.Intn(nf))
		} else {
			seq[i] = trace.FuncID(rng.Intn((nf + 2) / 3)) // hot third
		}
	}
	return trace.New("prop", seq)
}

// randomSchedule compiles every called function at least once (a validity
// requirement of static replay) and adds random extra recompilations, in
// shuffled order.
func randomSchedule(rng *rand.Rand, tr *trace.Trace, p *profile.Profile) sim.Schedule {
	var s sim.Schedule
	seen := make(map[trace.FuncID]bool)
	for _, f := range tr.Calls {
		if !seen[f] {
			seen[f] = true
			s = append(s, sim.CompileEvent{Func: f, Level: profile.Level(rng.Intn(p.Levels))})
		}
	}
	extra := rng.Intn(2 * len(s))
	for i := 0; i < extra; i++ {
		s = append(s, sim.CompileEvent{
			Func:  s[rng.Intn(len(s))].Func,
			Level: profile.Level(rng.Intn(p.Levels)),
		})
	}
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	return s
}

// sectionLowerBound is the §5 bound: every call runs at the fastest level
// its function ever reaches, with zero bubbles.
func sectionLowerBound(tr *trace.Trace, p *profile.Profile) int64 {
	var lb int64
	for _, f := range tr.Calls {
		lb += p.BestExecTime(f)
	}
	return lb
}

// checkInvariants verifies every paper invariant on one run result.
func checkInvariants(t *testing.T, tr *trace.Trace, p *profile.Profile, cfg sim.Config, res *sim.Result) {
	t.Helper()

	// Accounting: make-span decomposes exactly into execution and stalls.
	if res.MakeSpan != res.TotalExec+res.TotalBubble {
		t.Fatalf("MakeSpan %d != TotalExec %d + TotalBubble %d",
			res.MakeSpan, res.TotalExec, res.TotalBubble)
	}

	// §5 lower bound.
	if lb := sectionLowerBound(tr, p); res.MakeSpan < lb {
		t.Fatalf("MakeSpan %d below the §5 lower bound %d", res.MakeSpan, lb)
	}

	// Compile workers never overlap jobs on one core, record spans match the
	// profile, and no record uses an out-of-range worker.
	busyUntil := make(map[int]int64)
	for i, c := range res.Compiles {
		if c.Worker < 0 || c.Worker >= cfg.CompileWorkers {
			t.Fatalf("compile %d on worker %d outside [0,%d)", i, c.Worker, cfg.CompileWorkers)
		}
		if got, want := c.Done-c.Start, p.CompileTime(c.Event.Func, c.Event.Level); got != want {
			t.Fatalf("compile %d spans %d ticks, profile says %d", i, got, want)
		}
		if c.Start < busyUntil[c.Worker] {
			t.Fatalf("worker %d overlaps: compile %d starts at %d before previous job ends at %d",
				c.Worker, i, c.Start, busyUntil[c.Worker])
		}
		busyUntil[c.Worker] = c.Done
	}

	// Per-call checks against an independent reconstruction from the compile
	// records: each call must wait for its function's first version and then
	// run at the most recently finished level.
	if len(res.CallStarts) != tr.Len() || len(res.CallLevels) != tr.Len() {
		t.Fatalf("recorded %d starts / %d levels for %d calls",
			len(res.CallStarts), len(res.CallLevels), tr.Len())
	}
	prevEnd := int64(0)
	for i, f := range tr.Calls {
		start := res.CallStarts[i]
		if start < prevEnd {
			t.Fatalf("call %d starts at %d before call %d finished at %d", i, start, i-1, prevEnd)
		}
		// Latest compilation of f finished at or before start, recomputed
		// from scratch.
		latestDone := int64(-1)
		latestLevel := profile.Level(-1)
		for _, c := range res.Compiles {
			if c.Event.Func == f && c.Done <= start && c.Done >= latestDone {
				latestDone = c.Done
				latestLevel = c.Event.Level
			}
		}
		if latestDone < 0 {
			t.Fatalf("call %d of func %d started at %d before any compilation finished", i, f, start)
		}
		if res.CallLevels[i] != latestLevel {
			t.Fatalf("call %d of func %d ran at level %d, but the most recently finished compilation (t=%d) is level %d",
				i, f, res.CallLevels[i], latestDone, latestLevel)
		}
		prevEnd = start + p.ExecTime(f, res.CallLevels[i])
	}
	if tr.Len() > 0 && res.MakeSpan != prevEnd {
		t.Fatalf("MakeSpan %d != last call end %d", res.MakeSpan, prevEnd)
	}
}

func TestRunPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 60; trial++ {
		nf := 1 + rng.Intn(12)
		levels := 2 + rng.Intn(3)
		p := randomProfile(rng, nf, levels)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid profile: %v", trial, err)
		}
		tr := randomTrace(rng, nf, 1+rng.Intn(250))
		sched := randomSchedule(rng, tr, p)
		cfg := sim.Config{CompileWorkers: 1 + rng.Intn(4)}

		res, err := sim.Run(tr, p, sched, cfg, sim.Options{RecordCalls: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkInvariants(t, tr, p, cfg, res)
	}
}

// chaosPolicy is a deliberately erratic online policy: random first-call
// levels, random mid-run upgrade requests, sampling-driven promotions. If
// the engine's invariants survive this, they survive the structured
// policies.
type chaosPolicy struct {
	rng    *rand.Rand
	levels int
	period int64
}

func (c *chaosPolicy) FirstCall(f trace.FuncID, now int64) profile.Level {
	return profile.Level(c.rng.Intn(c.levels))
}

func (c *chaosPolicy) BeforeCall(f trace.FuncID, nth int64, now int64) []sim.Request {
	if c.rng.Intn(10) == 0 {
		return []sim.Request{{Func: f, Level: profile.Level(c.rng.Intn(c.levels))}}
	}
	return nil
}

func (c *chaosPolicy) Sample(f trace.FuncID, now int64) []sim.Request {
	if c.rng.Intn(3) == 0 {
		return []sim.Request{{Func: f, Level: profile.Level(c.levels - 1)}}
	}
	return nil
}

func (c *chaosPolicy) SamplePeriod() int64 { return c.period }

func TestRunPolicyPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77001))
	for trial := 0; trial < 40; trial++ {
		nf := 1 + rng.Intn(10)
		levels := 2 + rng.Intn(3)
		p := randomProfile(rng, nf, levels)
		tr := randomTrace(rng, nf, 1+rng.Intn(200))
		cfg := sim.Config{
			CompileWorkers: 1 + rng.Intn(3),
			Discipline:     sim.QueueDiscipline(rng.Intn(2)),
		}
		pol := &chaosPolicy{
			rng:    rand.New(rand.NewSource(int64(trial) * 7919)),
			levels: levels,
			period: int64(1 + rng.Intn(400)),
		}
		res, err := sim.RunPolicy(tr, p, pol, cfg, sim.Options{RecordCalls: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkInvariants(t, tr, p, cfg, res)
	}
}

// TestRunPropertyWithVariation repeats the static-schedule properties under
// per-call execution-time variation. The level-choice and worker-overlap
// invariants still hold; only per-call durations move, so the reconstruction
// uses the recorded starts rather than profile exec times.
func TestRunPropertyWithVariation(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 20; trial++ {
		nf := 1 + rng.Intn(8)
		p := randomProfile(rng, nf, 3)
		tr := randomTrace(rng, nf, 1+rng.Intn(150))
		sched := randomSchedule(rng, tr, p)
		cfg := sim.Config{CompileWorkers: 1 + rng.Intn(3)}
		res, err := sim.Run(tr, p, sched, cfg, sim.Options{
			RecordCalls:       true,
			ExecVariation:     0.4,
			ExecVariationSeed: int64(trial),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MakeSpan != res.TotalExec+res.TotalBubble {
			t.Fatalf("trial %d: MakeSpan %d != exec %d + bubble %d",
				trial, res.MakeSpan, res.TotalExec, res.TotalBubble)
		}
		// Level choice must still follow "most recently finished".
		for i, f := range tr.Calls {
			start := res.CallStarts[i]
			latestDone, latestLevel := int64(-1), profile.Level(-1)
			for _, c := range res.Compiles {
				if c.Event.Func == f && c.Done <= start && c.Done >= latestDone {
					latestDone, latestLevel = c.Done, c.Event.Level
				}
			}
			if res.CallLevels[i] != latestLevel {
				t.Fatalf("trial %d call %d: level %d, want %d", trial, i, res.CallLevels[i], latestLevel)
			}
		}
	}
}
