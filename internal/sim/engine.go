package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Request is a compilation request issued by an online policy during the
// simulated run.
type Request struct {
	Func  trace.FuncID
	Level profile.Level
}

// QueueDiscipline selects how compilation workers pick the next request
// from the pending queue.
type QueueDiscipline int

const (
	// FIFO serves requests strictly in arrival order — the discipline of
	// the runtime systems the paper evaluates (Jikes RVM enqueues
	// compilation tasks and processes them in order, §2).
	FIFO QueueDiscipline = iota
	// FirstCompileFirst lets first-time compilations overtake queued
	// recompilations. This implements the §7 insight: "the first-time
	// compilation of a method should generally get a higher priority than
	// recompilations of other methods", because execution blocks on first
	// compilations but merely slows down waiting for recompilations.
	FirstCompileFirst
)

// String implements fmt.Stringer.
func (d QueueDiscipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case FirstCompileFirst:
		return "first-compile-first"
	default:
		return fmt.Sprintf("QueueDiscipline(%d)", int(d))
	}
}

// Policy is an online compilation scheduler: the decision logic of a real
// runtime system (Jikes RVM's sampling-driven recompiler, V8's
// second-invocation promotion, plain on-demand compilation). Unlike a static
// Schedule, a Policy reacts to the execution as it unfolds, and its requests
// join the compile queue at the simulated time they are made.
//
// A Policy is single-use: the engine feeds one run through it. Implementations
// keep per-run state (hotness counters, invocation counts) internally.
// Requested levels must lie within the profile's level range.
type Policy interface {
	// FirstCall is invoked when execution reaches a function that has never
	// been requested. The returned level is compiled as a blocking request:
	// the call waits until the function is ready. now is the request time.
	FirstCall(f trace.FuncID, now int64) profile.Level

	// BeforeCall is invoked before every call, with nth the 1-based count of
	// this function's invocations so far (including this one). Returned
	// requests are enqueued at time now without blocking the call.
	BeforeCall(f trace.FuncID, nth int64, now int64) []Request

	// Sample is invoked at every sampling tick that lands during the
	// execution of a call, identifying the function on the (simulated) call
	// stack, as Jikes RVM's timer-based sampler does. Returned requests are
	// enqueued at time now.
	Sample(f trace.FuncID, now int64) []Request

	// SamplePeriod returns the wall-clock distance between sampling ticks in
	// ticks, or 0 to disable sampling.
	SamplePeriod() int64
}

// pendingReq is a compilation request waiting for a worker.
type pendingReq struct {
	f       trace.FuncID
	level   profile.Level
	arrival int64
	first   bool // a first-time compilation (execution blocks on it)
	seq     int  // arrival order tie-break
}

// compileQueue serves pending requests to workers under a discipline. The
// queue is resolved lazily: because policies only emit requests while
// execution progresses, all future arrivals are unknown until the execution
// side advances, so assignments are materialized on demand, never past the
// currently known arrivals.
type compileQueue struct {
	discipline QueueDiscipline
	pending    []pendingReq
	pool       *workerPool
}

// push adds a request. Arrivals are nondecreasing by construction.
func (q *compileQueue) push(r pendingReq) { q.pending = append(q.pending, r) }

// next picks the index of the request a worker idle at time t should take:
// among requests with arrival <= t, the highest-priority one; if none has
// arrived yet, the earliest-arriving (the worker waits for it). Returns -1
// if the queue is empty.
func (q *compileQueue) next(t int64) int {
	if len(q.pending) == 0 {
		return -1
	}
	best := -1
	for i, r := range q.pending {
		if r.arrival > t {
			continue
		}
		if best < 0 || q.higherPriority(r, q.pending[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	// Nothing has arrived yet: the worker idles until the earliest arrival.
	for i, r := range q.pending {
		if best < 0 || r.arrival < q.pending[best].arrival ||
			(r.arrival == q.pending[best].arrival && q.higherPriority(r, q.pending[best])) {
			best = i
		}
	}
	return best
}

// higherPriority reports whether a should be served before b when both are
// available. FIFO order is by arrival time (insertion order breaks ties);
// with one execution thread the two coincide, and with several they can
// differ because call events are processed at their start times while their
// sampling requests arrive mid-span.
func (q *compileQueue) higherPriority(a, b pendingReq) bool {
	if q.discipline == FirstCompileFirst && a.first != b.first {
		return a.first
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.seq < b.seq
}

// nextAssignTime returns when the next assignment would commit (the chosen
// worker's free time or the chosen request's arrival, whichever is later),
// or ok=false if nothing is pending.
func (e *engine) nextAssignTime() (int64, bool) {
	if len(e.queue.pending) == 0 {
		return 0, false
	}
	_, free := e.queue.pool.earliest()
	i := e.queue.next(free)
	if i < 0 {
		return 0, false
	}
	t := free
	if a := e.queue.pending[i].arrival; a > t {
		t = a
	}
	return t, true
}

func (q *compileQueue) remove(i int) pendingReq {
	r := q.pending[i]
	q.pending = append(q.pending[:i], q.pending[i+1:]...)
	return r
}

// engine couples the compile queue to the result bookkeeping.
type engine struct {
	p        *profile.Profile
	queue    compileQueue
	versions []versionList
	res      *Result
	rec      *obs.Recorder
}

// drainOne materializes the next assignment if any request is pending.
// Returns false when the queue is empty.
func (e *engine) drainOne() bool {
	w, free := e.queue.pool.earliest()
	i := e.queue.next(free)
	if i < 0 {
		return false
	}
	r := e.queue.remove(i)
	start := free
	if r.arrival > start {
		start = r.arrival
	}
	done := start + e.p.CompileTime(r.f, r.level)
	e.queue.pool.set(w, done)
	e.res.Compiles = append(e.res.Compiles, CompileRecord{
		Event: CompileEvent{Func: r.f, Level: r.level}, Start: start, Done: done, Worker: w,
	})
	e.rec.CompileStart(start, int32(r.f), int32(r.level), int32(w), int32(len(e.res.Compiles)-1))
	e.rec.CompileEnd(done, int32(r.f), int32(r.level), int32(w), int32(len(e.res.Compiles)-1))
	e.versions[r.f].insert(done, r.level)
	e.res.CompileBusy += done - start
	if done > e.res.CompileEnd {
		e.res.CompileEnd = done
	}
	return true
}

// drainUntilReady materializes assignments until function f has at least one
// finished-or-in-flight version, i.e. a known ready time. Sound while the
// execution side is blocked on f: a blocked executor generates no further
// arrivals, so the pending set is complete. If the queue runs dry before f
// has a version the simulated machine would hang forever; that inconsistency
// is reported as a *DeadlockError naming the blocked function and the queue
// state instead of crashing the worker.
func (e *engine) drainUntilReady(f trace.FuncID, now int64) error {
	for e.versions[f].firstReady() < 0 {
		if !e.drainOne() {
			return &DeadlockError{Func: f, Time: now, Pending: e.pendingRequests()}
		}
	}
	return nil
}

// pendingRequests snapshots the queue's outstanding requests for error
// reports.
func (e *engine) pendingRequests() []Request {
	if len(e.queue.pending) == 0 {
		return nil
	}
	out := make([]Request, len(e.queue.pending))
	for i, r := range e.queue.pending {
		out[i] = Request{Func: r.f, Level: r.level}
	}
	return out
}

// drainArrived materializes every assignment that can start at or before t,
// so that version lookups at time t see all relevant completions.
func (e *engine) drainArrived(t int64) {
	for {
		_, free := e.queue.pool.earliest()
		if free > t {
			return
		}
		i := e.queue.next(free)
		if i < 0 {
			return
		}
		r := e.queue.pending[i]
		start := free
		if r.arrival > start {
			start = r.arrival
		}
		if start > t {
			return
		}
		if !e.drainOne() {
			return
		}
	}
}

// drainAll materializes every remaining assignment (end of run).
func (e *engine) drainAll() {
	for e.drainOne() {
	}
}

// RunPolicy drives the trace through an online policy and returns the
// resulting make-span together with the compilation sequence the policy
// produced (available as Result.Compiles, in compilation-start order).
//
// Engine-side rules, matching the runtime systems the paper describes:
//
//   - Requests for a function at a level not above the highest level already
//     requested for it are dropped (a JIT never downgrades, and duplicate
//     requests coalesce in the queue).
//   - cfg.CompileWorkers workers serve the queue under cfg.Discipline; a
//     request may not start before its arrival time.
func RunPolicy(tr *trace.Trace, p *profile.Profile, pol Policy, cfg Config, opts Options) (*Result, error) {
	if cfg.CompileWorkers < 1 {
		return nil, fmt.Errorf("sim: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	if cfg.Discipline != FIFO && cfg.Discipline != FirstCompileFirst {
		return nil, fmt.Errorf("sim: unknown queue discipline %d", cfg.Discipline)
	}
	if pol == nil {
		return nil, fmt.Errorf("sim: RunPolicy needs a non-nil policy")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	nf := p.NumFuncs()
	if err := tr.Validate(nf); err != nil {
		return nil, err
	}

	res := &Result{FirstReady: make([]int64, nf)}
	for f := range res.FirstReady {
		res.FirstReady[f] = -1
	}
	if opts.RecordCalls {
		res.CallStarts = make([]int64, 0, tr.Len())
		res.CallLevels = make([]profile.Level, 0, tr.Len())
	}

	eng := &engine{
		p:        p,
		queue:    compileQueue{discipline: cfg.Discipline, pool: newWorkerPool(cfg.CompileWorkers)},
		versions: make([]versionList, nf),
		res:      res,
		rec:      opts.Recorder,
	}
	maxRequested := make([]profile.Level, nf)
	requested := make([]bool, nf)
	seq := 0

	enqueue := func(f trace.FuncID, l profile.Level, arrival int64) error {
		if l < 0 || int(l) >= p.Levels {
			return fmt.Errorf("sim: policy requested level %d for function %d outside [0,%d)", l, f, p.Levels)
		}
		if requested[f] && l <= maxRequested[f] {
			return nil
		}
		// Materialize everything startable by now so the pressure stats
		// below reflect what is genuinely still waiting.
		eng.drainArrived(arrival)
		first := !requested[f]
		requested[f] = true
		maxRequested[f] = l
		seq++
		if first {
			for _, r := range eng.queue.pending {
				if !r.first {
					res.FirstBehindRecompiles++
					break
				}
			}
		}
		eng.queue.push(pendingReq{f: f, level: l, arrival: arrival, first: first, seq: seq})
		if n := len(eng.queue.pending); n > res.MaxPending {
			res.MaxPending = n
		}
		return nil
	}

	period := pol.SamplePeriod()
	if period < 0 {
		return nil, fmt.Errorf("sim: policy sample period must be >= 0, got %d", period)
	}
	nextSample := period // first sampling tick fires at t = period

	callNum := make([]int64, nf)
	intr := opts.Interrupt
	var execT int64
	for i, f := range tr.Calls {
		if intr != nil && i%interruptStride == 0 && interrupted(intr) {
			return nil, ErrInterrupted
		}
		callNum[f]++
		for _, r := range pol.BeforeCall(f, callNum[f], execT) {
			if err := enqueue(r.Func, r.Level, execT); err != nil {
				return nil, err
			}
		}
		if !requested[f] {
			if err := enqueue(f, pol.FirstCall(f, execT), execT); err != nil {
				return nil, err
			}
		}
		if eng.versions[f].firstReady() < 0 {
			if err := eng.drainUntilReady(f, execT); err != nil {
				return nil, err
			}
		}
		start := execT
		if ready := eng.versions[f].firstReady(); ready > start {
			start = ready
		}
		if start > execT {
			res.TotalBubble += start - execT
			res.BubbleCount++
			eng.rec.Stall(execT, start-execT, int32(f), int32(i))
		}
		// Make sure every compilation that finishes by the call's start is
		// materialized, then pick the latest finished version.
		eng.drainArrived(start)
		level, ok := eng.versions[f].latestAt(start)
		if !ok {
			return nil, &ErrNoReadyVersion{Func: f, Time: start}
		}
		dur := p.ExecTime(f, level)
		if opts.ExecVariation > 0 {
			dur = scaleDuration(dur, CallFactor(opts.ExecVariationSeed, i, opts.ExecVariation))
		}
		end := start + dur
		eng.rec.ExecStart(start, int32(f), int32(level), int32(i))
		eng.rec.ExecEnd(end, int32(f), int32(level), int32(i))
		if period > 0 {
			// Sampling ticks that land during this call observe f on the
			// stack; ticks that land in a bubble observe nothing and pass.
			for nextSample < start {
				nextSample += period
			}
			for nextSample < end {
				for _, r := range pol.Sample(f, nextSample) {
					if err := enqueue(r.Func, r.Level, nextSample); err != nil {
						return nil, err
					}
				}
				nextSample += period
			}
		}
		if opts.RecordCalls {
			res.CallStarts = append(res.CallStarts, start)
			res.CallLevels = append(res.CallLevels, level)
		}
		res.TotalExec += dur
		execT = end
	}
	eng.drainAll()
	for f := range eng.versions {
		res.FirstReady[f] = eng.versions[f].firstReady()
	}
	res.MakeSpan = execT
	return res, nil
}

// ScheduleOf extracts the compilation sequence a run produced, in the order
// the events started compiling. Replaying it with Run generally gives a
// different (usually better) make-span, because replay makes all events
// available at time zero; the paper's comparison of scheduling schemes is
// about exactly this gap.
func (r *Result) ScheduleOf() Schedule {
	s := make(Schedule, len(r.Compiles))
	for i, c := range r.Compiles {
		s[i] = c.Event
	}
	return s
}
