package sim

// Per-call execution-time variation (§8 of the paper). OCSP assumes each
// e[i][j] is one number, but "the execution time e_ij may differ from one
// call of function m_i to another, thanks to the differences in calling
// parameters and contexts". The paper argues (and §8 spells out) that using
// per-call averages does not skew the lower bound or the single-core
// optimality, because total time is what both depend on; schedules computed
// from averages may lose a little when replayed against varying times.
//
// The simulator models this with a mean-preserving deterministic per-call
// factor: the duration of the k-th call in the trace is the profile's
// average scaled by 1 + m*(2u-1), where u is a uniform hash of (seed, k)
// and m the magnitude. The same (seed, k) always yields the same factor, so
// experiments are reproducible and bounds can be computed against the exact
// same realization.

// CallFactor returns the execution-time scale factor for call index k under
// the given variation magnitude (0 <= m < 1) and seed. Magnitude 0 returns
// exactly 1.
func CallFactor(seed int64, k int, magnitude float64) float64 {
	if magnitude == 0 {
		return 1
	}
	u := hashUnit(uint64(seed), uint64(k))
	return 1 + magnitude*(2*u-1)
}

// hashUnit maps (seed, k) to a uniform float in [0,1) via splitmix64.
func hashUnit(seed, k uint64) float64 {
	x := seed*0x9E3779B97F4A7C15 + k + 1
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// scaleDuration applies a call factor to an average duration, keeping the
// result at least one tick.
func scaleDuration(avg int64, factor float64) int64 {
	if factor == 1 {
		return avg
	}
	d := int64(float64(avg) * factor)
	if d < 1 {
		d = 1
	}
	return d
}
