package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/profile"
	"repro/internal/trace"
)

// RenderTimeline draws an ASCII Gantt chart of a simulated run in the style
// of the paper's Figs. 1-2: one lane per compilation worker and one for the
// execution core, time flowing left to right. It is meant for small runs
// (tens of events); wider runs are compressed to the given width in
// characters.
//
// The result must come from a Run/RunPolicy call with
// Options.RecordCalls set, against the same trace and profile.
func RenderTimeline(w io.Writer, tr *trace.Trace, p *profile.Profile, res *Result, width int) error {
	if res.CallStarts == nil {
		return fmt.Errorf("sim: RenderTimeline needs a result recorded with Options.RecordCalls")
	}
	if width < 20 {
		width = 80
	}
	span := res.MakeSpan
	if res.CompileEnd > span {
		span = res.CompileEnd
	}
	if span == 0 {
		_, err := fmt.Fprintln(w, "(empty run)")
		return err
	}
	scale := func(t int64) int {
		x := int(t * int64(width) / span)
		if x >= width {
			x = width - 1
		}
		return x
	}
	nameOf := func(f trace.FuncID) string {
		if int(f) < p.NumFuncs() && p.Funcs[f].Name != "" {
			return p.Funcs[f].Name
		}
		return fmt.Sprintf("f%d", f)
	}

	// Compile lanes, one per worker.
	workers := 0
	for _, c := range res.Compiles {
		if c.Worker+1 > workers {
			workers = c.Worker + 1
		}
	}
	paint := func(lane []byte, from, to int64, glyph byte) {
		a, b := scale(from), scale(to)
		if b <= a {
			b = a + 1
		}
		for x := a; x < b && x < len(lane); x++ {
			lane[x] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %d ticks, %d columns (~%d ticks each)\n", span, width, span/int64(width))
	for wk := 0; wk < workers; wk++ {
		lane := []byte(strings.Repeat(".", width))
		for _, c := range res.Compiles {
			if c.Worker != wk {
				continue
			}
			glyph := byte('0' + int(c.Event.Level)%10)
			paint(lane, c.Start, c.Done, glyph)
		}
		fmt.Fprintf(&b, "compile[%d] |%s|\n", wk, lane)
	}
	// Execution lane: level digits while running, spaces while stalled.
	lane := []byte(strings.Repeat(".", width))
	var execT int64
	for i := range tr.Calls {
		start := res.CallStarts[i]
		if start > execT {
			paint(lane, execT, start, '_') // bubble
		}
		var end int64
		if i+1 < len(res.CallStarts) && res.CallStarts[i+1] > start {
			end = res.CallStarts[i+1]
		} else {
			end = res.MakeSpan
		}
		paint(lane, start, end, byte('0'+int(res.CallLevels[i])%10))
		execT = end
	}
	fmt.Fprintf(&b, "execute    |%s|\n", lane)
	fmt.Fprintf(&b, "legend: digits = optimization level, _ = execution stall, . = idle\n")

	// Event list for truly tiny runs.
	if len(res.Compiles)+tr.Len() <= 24 {
		b.WriteString("compilations:\n")
		for _, c := range res.Compiles {
			fmt.Fprintf(&b, "  C%d(%s) [%d,%d) worker %d\n",
				c.Event.Level, nameOf(c.Event.Func), c.Start, c.Done, c.Worker)
		}
		b.WriteString("calls:\n")
		for i, f := range tr.Calls {
			fmt.Fprintf(&b, "  %s @%d level %d\n", nameOf(f), res.CallStarts[i], res.CallLevels[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
