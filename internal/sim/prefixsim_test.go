package sim

import (
	"math/rand"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

// randPrefixInstance builds a random profile and a trace whose functions
// appear in a randomized order with skewed call counts.
func randPrefixInstance(rng *rand.Rand, nf, levels, nCalls int) (*profile.Profile, []trace.FuncID) {
	p := &profile.Profile{Levels: levels}
	for f := 0; f < nf; f++ {
		ft := profile.FuncTimes{}
		c, e := int64(1+rng.Intn(50)), int64(5+rng.Intn(100))
		for l := 0; l < levels; l++ {
			ft.Compile = append(ft.Compile, c)
			ft.Exec = append(ft.Exec, e)
			c += int64(1 + rng.Intn(200)) // compile cost grows with level
			e -= e / int64(2+rng.Intn(3)) // exec cost shrinks
			if e < 1 {
				e = 1
			}
		}
		p.Funcs = append(p.Funcs, ft)
	}
	calls := make([]trace.FuncID, nCalls)
	for i := range calls {
		calls[i] = trace.FuncID(rng.Intn(nf))
	}
	return p, calls
}

// comparePrefix checks the resumable simulator against a from-scratch
// sim.Run of the same (schedule, calls) sub-instance.
func comparePrefix(t *testing.T, s *PrefixSim, p *profile.Profile, sched Schedule, calls []trace.FuncID, cfg Config) {
	t.Helper()
	// sim.Run validates that every called function is compiled; the
	// interleavings under test maintain that invariant by construction.
	res, err := Run(trace.New("ref", calls), p, sched, cfg, Options{RecordCalls: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if s.MakeSpan() != res.MakeSpan {
		t.Fatalf("at %d events/%d calls: MakeSpan %d, want %d",
			s.NumCompiles(), s.NumCalls(), s.MakeSpan(), res.MakeSpan)
	}
	if s.CompileEnd() != res.CompileEnd {
		t.Fatalf("at %d events/%d calls: CompileEnd %d, want %d",
			s.NumCompiles(), s.NumCalls(), s.CompileEnd(), res.CompileEnd)
	}
	starts := s.CallStarts()
	if len(starts) != len(res.CallStarts) {
		t.Fatalf("%d call starts, want %d", len(starts), len(res.CallStarts))
	}
	for i := range starts {
		if starts[i] != res.CallStarts[i] {
			t.Fatalf("call %d starts at %d, want %d", i, starts[i], res.CallStarts[i])
		}
	}
	dones := s.CompileDones()
	if len(dones) != len(res.Compiles) {
		t.Fatalf("%d compile dones, want %d", len(dones), len(res.Compiles))
	}
	for i := range dones {
		if dones[i] != res.Compiles[i].Done {
			t.Fatalf("event %d done at %d, want %d", i, dones[i], res.Compiles[i].Done)
		}
	}
}

// TestPrefixSimStaticSchedule: append the whole schedule up front, then
// execute the calls in random chunks — the step-2/step-3 usage — checking
// against a from-scratch run after every chunk.
func TestPrefixSimStaticSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(3)
		cfg := Config{CompileWorkers: workers}
		p, calls := randPrefixInstance(rng, 2+rng.Intn(10), 1+rng.Intn(4), 120)
		var sched Schedule
		for f := 0; f < p.NumFuncs(); f++ {
			sched = append(sched, CompileEvent{Func: trace.FuncID(f), Level: 0})
			if p.Levels > 1 && rng.Intn(2) == 0 {
				sched = append(sched, CompileEvent{Func: trace.FuncID(f), Level: profile.Level(1 + rng.Intn(p.Levels-1))})
			}
		}
		s, err := NewPrefixSim(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range sched {
			if err := s.AppendCompile(ev); err != nil {
				t.Fatal(err)
			}
		}
		done := 0
		for done < len(calls) {
			n := 1 + rng.Intn(40)
			if done+n > len(calls) {
				n = len(calls) - done
			}
			if err := s.ExecCalls(calls[done : done+n]); err != nil {
				t.Fatal(err)
			}
			done += n
			comparePrefix(t, s, p, sched, calls[:done], cfg)
		}
	}
}

// TestPrefixSimInterleaved: reveal functions as the stream reaches them —
// the init-schedule usage — appending each function's compile event just
// before its first call executes, and checking the full state against a
// from-scratch run of the appended-so-far schedule after every chunk.
func TestPrefixSimInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(2)
		cfg := Config{CompileWorkers: workers}
		p, calls := randPrefixInstance(rng, 2+rng.Intn(8), 2, 100)
		s, err := NewPrefixSim(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sched Schedule
		seen := make([]bool, p.NumFuncs())
		done := 0
		for done < len(calls) {
			n := 1 + rng.Intn(25)
			if done+n > len(calls) {
				n = len(calls) - done
			}
			chunk := calls[done : done+n]
			for _, f := range chunk {
				if !seen[f] {
					seen[f] = true
					ev := CompileEvent{Func: f, Level: 0}
					if err := s.AppendCompile(ev); err != nil {
						t.Fatal(err)
					}
					sched = append(sched, ev)
				}
			}
			if err := s.ExecCalls(chunk); err != nil {
				t.Fatal(err)
			}
			done += n
			comparePrefix(t, s, p, sched, calls[:done], cfg)
		}
	}
}

// TestPrefixSimReset: a Reset simulator replays a different schedule over
// the same arenas with from-scratch results.
func TestPrefixSimReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, calls := randPrefixInstance(rng, 6, 3, 80)
	cfg := Config{CompileWorkers: 1}
	s, err := NewPrefixSim(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		s.Reset()
		var sched Schedule
		for f := 0; f < p.NumFuncs(); f++ {
			sched = append(sched, CompileEvent{Func: trace.FuncID(f), Level: profile.Level(round % p.Levels)})
		}
		for _, ev := range sched {
			if err := s.AppendCompile(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.ExecCalls(calls); err != nil {
			t.Fatal(err)
		}
		comparePrefix(t, s, p, sched, calls, cfg)
	}
}

// TestPrefixSimRejectsHistoryRewrite: appending an event for an
// already-executed function that finishes before the exec clock is refused,
// leaving the state intact; one finishing after the clock is accepted.
func TestPrefixSimRejectsHistoryRewrite(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f", Compile: []int64{1, 3}, Exec: []int64{100, 10}},
		},
	}
	s, err := NewPrefixSim(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCompile(CompileEvent{Func: 0, Level: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.ExecCalls([]trace.FuncID{0, 0}); err != nil {
		t.Fatal(err)
	}
	// Exec clock is 201; a level-1 compile on the single worker would finish
	// at 1+3 = 4, i.e. inside executed history.
	if err := s.AppendCompile(CompileEvent{Func: 0, Level: 1}); err == nil {
		t.Fatal("history-rewriting append accepted")
	}
	if s.NumCompiles() != 1 || s.CompileEnd() != 1 || s.MakeSpan() != 201 {
		t.Fatalf("rejected append mutated state: %d events, compileEnd %d, makeSpan %d",
			s.NumCompiles(), s.CompileEnd(), s.MakeSpan())
	}
	// Out-of-range events are rejected too.
	if err := s.AppendCompile(CompileEvent{Func: 1, Level: 0}); err == nil {
		t.Fatal("unknown function accepted")
	}
	if err := s.AppendCompile(CompileEvent{Func: 0, Level: 9}); err == nil {
		t.Fatal("unknown level accepted")
	}
	// A call to a never-compiled function surfaces as ErrNoReadyVersion.
	s2, err := NewPrefixSim(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ExecCalls([]trace.FuncID{0}); err == nil {
		t.Fatal("call without any compilation accepted")
	}
}
