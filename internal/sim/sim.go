// Package sim is the make-span measurement framework of §6.1 of the paper:
// given a call sequence, the per-level compile/execute times of the involved
// functions, a compilation schedule, and the number of cores used for
// compilation, it computes the make-span of the execution.
//
// # Timing model
//
// Time is int64 ticks and starts at 0 with the first compilation event.
// One execution worker processes the trace's calls in order. W >= 1
// compilation workers process compile events in queue order (an event may not
// start before it is enqueued, and with several workers each event goes to
// the earliest-free worker). A call to function f:
//
//   - cannot start before some compilation of f has finished (the wait, if
//     any, is a "bubble" in the paper's terms);
//   - runs with the code version of the latest compilation of f that finished
//     at or before the call's start, taking e[f][level] ticks.
//
// The make-span is the finish time of the last call. Compilations still in
// flight at that point do not extend it (they could no longer help anyone),
// which matches the paper's Tgap reasoning in the IAR algorithm's step 4.
//
// These semantics reproduce the worked examples of Figs. 1 and 2 of the paper
// tick for tick; see TestPaperFigure1 and TestPaperFigure2.
package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// CompileEvent is one entry of a compilation schedule: compile Func at Level.
type CompileEvent struct {
	Func  trace.FuncID
	Level profile.Level
}

// Schedule is an ordered compilation sequence — the object OCSP optimizes.
type Schedule []CompileEvent

// Clone returns a copy of the schedule.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// TotalCompileTime sums the schedule's compile times under p.
func (s Schedule) TotalCompileTime(p *profile.Profile) int64 {
	var total int64
	for _, ev := range s {
		total += p.CompileTime(ev.Func, ev.Level)
	}
	return total
}

// Validate checks that every event references a valid function and level and
// that, if tr is non-nil, every called function is compiled at least once.
func (s Schedule) Validate(tr *trace.Trace, p *profile.Profile) error {
	compiled := make([]bool, p.NumFuncs())
	for i, ev := range s {
		if ev.Func < 0 || int(ev.Func) >= p.NumFuncs() {
			return fmt.Errorf("sim: schedule event %d references unknown function %d", i, ev.Func)
		}
		if ev.Level < 0 || int(ev.Level) >= p.Levels {
			return fmt.Errorf("sim: schedule event %d uses level %d outside [0,%d)", i, ev.Level, p.Levels)
		}
		compiled[ev.Func] = true
	}
	if tr != nil {
		for i, f := range tr.Calls {
			if int(f) >= len(compiled) || !compiled[f] {
				return fmt.Errorf("sim: call %d invokes function %d which the schedule never compiles", i, f)
			}
		}
	}
	return nil
}

// Config selects the machine configuration.
type Config struct {
	// CompileWorkers is the number of compilation threads/cores (>= 1).
	// The execution side is always one worker: the paper flattens even its
	// multithreaded benchmarks into a single call sequence.
	CompileWorkers int
	// Discipline selects how workers pick pending requests in RunPolicy
	// (static Run replays a fixed order and ignores it). The zero value is
	// FIFO, the behaviour of the systems the paper measures.
	Discipline QueueDiscipline
}

// DefaultConfig is the paper's base setting: execution on one core,
// compilation on one other core.
func DefaultConfig() Config { return Config{CompileWorkers: 1} }

// Options toggles optional result detail and per-call effects.
type Options struct {
	// RecordCalls captures per-call start times and code levels.
	RecordCalls bool
	// ExecVariation, when non-zero, scales each call's execution time by a
	// deterministic mean-preserving per-call factor of that magnitude
	// (see CallFactor), modeling the §8 observation that execution times
	// differ across calls. Must lie in [0, 1).
	ExecVariation float64
	// ExecVariationSeed selects the variation realization.
	ExecVariationSeed int64
	// Recorder, when non-nil, receives every compile-start/compile-end/
	// exec-start/exec-end/stall event of the run as a typed span event
	// (see internal/obs). A nil recorder costs nothing: the emit path is
	// allocation-free, held to by BenchmarkRunCallsRecorderOff and
	// TestRecorderDisabledZeroAlloc.
	Recorder *obs.Recorder
	// Interrupt, when non-nil, makes Run and RunPolicy abandon the
	// simulation once the channel is closed (or receives): the execution
	// loop polls it every interruptStride calls and returns ErrInterrupted.
	// This is how a serving layer cancels a long replay — typically wired
	// to a context's Done channel. A nil channel costs nothing; polling
	// never changes the numbers of a run that finishes.
	Interrupt <-chan struct{}
}

// interruptStride is how many calls the execution loop commits between
// Interrupt polls. Interruption only ever aborts a run, so the stride trades
// promptness against per-call overhead without affecting surviving runs.
const interruptStride = 1024

// interrupted is the non-blocking Interrupt poll (a nil channel is never
// ready).
func interrupted(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// validate reports the first Options error, or nil.
func (o Options) validate() error {
	if o.ExecVariation < 0 || o.ExecVariation >= 1 {
		return fmt.Errorf("sim: Options.ExecVariation must be in [0,1), got %g", o.ExecVariation)
	}
	return nil
}

// CompileRecord reports when one schedule event ran.
type CompileRecord struct {
	Event  CompileEvent
	Start  int64
	Done   int64
	Worker int
}

// Result reports a simulated execution.
type Result struct {
	// MakeSpan is the finish time of the last call (0 for an empty trace).
	MakeSpan int64
	// TotalExec is the sum of the executed calls' durations.
	TotalExec int64
	// TotalBubble is the total time the execution worker spent waiting for
	// compilations, including the initial wait before the first call.
	// MakeSpan == TotalExec + TotalBubble always holds.
	TotalBubble int64
	// BubbleCount is the number of calls that had to wait (plus one if the
	// first call waited at time zero, which it almost always does).
	BubbleCount int
	// CompileEnd is when the last compilation event finished; it may exceed
	// MakeSpan if compilations outlive the program.
	CompileEnd int64
	// CompileBusy is the summed busy time of all compilation workers.
	CompileBusy int64
	// Compiles records each schedule event's execution window, in schedule
	// order.
	Compiles []CompileRecord
	// FirstReady[f] is the earliest time any compilation of f finished, or -1
	// if f was never compiled.
	FirstReady []int64
	// CallStarts[i] and CallLevels[i] are per-call detail (only with
	// Options.RecordCalls).
	CallStarts []int64
	CallLevels []profile.Level
	// MaxPending is the largest number of requests simultaneously waiting
	// for a worker (online runs only); FirstBehindRecompiles counts
	// first-time compilation requests that arrived while at least one
	// recompilation was still waiting — the situations where the §7
	// first-compile-first discipline can act.
	MaxPending            int
	FirstBehindRecompiles int
}

// versionList tracks one function's finished compilations ordered by finish
// time, for "latest finished at or before t" lookups. Per-function lists stay
// tiny (one entry per compilation of that function), so linear operations are
// fine.
type versionList struct {
	done   []int64
	levels []profile.Level
}

func (v *versionList) insert(done int64, l profile.Level) {
	i := len(v.done)
	for i > 0 && v.done[i-1] > done {
		i--
	}
	v.done = append(v.done, 0)
	v.levels = append(v.levels, 0)
	copy(v.done[i+1:], v.done[i:])
	copy(v.levels[i+1:], v.levels[i:])
	v.done[i] = done
	v.levels[i] = l
}

// latestAt returns the level of the latest compilation finished at or before
// t, and whether any such version exists. Callers turn ok == false into a
// structured *ErrNoReadyVersion instead of crashing the run.
func (v *versionList) latestAt(t int64) (profile.Level, bool) {
	for i := len(v.done) - 1; i >= 0; i-- {
		if v.done[i] <= t {
			return v.levels[i], true
		}
	}
	return 0, false
}

func (v *versionList) firstReady() int64 {
	if len(v.done) == 0 {
		return -1
	}
	return v.done[0]
}

// workerPool assigns jobs to the earliest-free of w workers.
type workerPool struct {
	free []int64 // free[i] is when worker i becomes idle
}

func newWorkerPool(w int) *workerPool { return &workerPool{free: make([]int64, w)} }

// assign runs a job of the given duration arriving at the given time on the
// earliest-free worker and returns (worker, start, done).
func (p *workerPool) assign(arrival, duration int64) (int, int64, int64) {
	best, free := p.earliest()
	start := free
	if arrival > start {
		start = arrival
	}
	done := start + duration
	p.free[best] = done
	return best, start, done
}

// earliest returns the earliest-free worker and its free time.
func (p *workerPool) earliest() (worker int, free int64) {
	best := 0
	for i, f := range p.free {
		if f < p.free[best] {
			best = i
		}
	}
	return best, p.free[best]
}

// set records that worker w is busy until t.
func (p *workerPool) set(w int, t int64) { p.free[w] = t }

// Run replays a static compilation schedule against the trace and returns the
// resulting make-span. All compile events are available at time 0; this is
// the mode in which the paper evaluates IAR, the single-level schemes, and
// any precomputed schedule.
func Run(tr *trace.Trace, p *profile.Profile, sched Schedule, cfg Config, opts Options) (*Result, error) {
	if cfg.CompileWorkers < 1 {
		return nil, fmt.Errorf("sim: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(tr, p); err != nil {
		return nil, err
	}

	res := &Result{
		Compiles:   make([]CompileRecord, 0, len(sched)),
		FirstReady: make([]int64, p.NumFuncs()),
	}
	versions := make([]versionList, p.NumFuncs())
	pool := newWorkerPool(cfg.CompileWorkers)
	rec := opts.Recorder
	for si, ev := range sched {
		w, start, done := pool.assign(0, p.CompileTime(ev.Func, ev.Level))
		res.Compiles = append(res.Compiles, CompileRecord{Event: ev, Start: start, Done: done, Worker: w})
		rec.CompileStart(start, int32(ev.Func), int32(ev.Level), int32(w), int32(si))
		rec.CompileEnd(done, int32(ev.Func), int32(ev.Level), int32(w), int32(si))
		versions[ev.Func].insert(done, ev.Level)
		res.CompileBusy += done - start
		if done > res.CompileEnd {
			res.CompileEnd = done
		}
	}
	for f := range versions {
		res.FirstReady[f] = versions[f].firstReady()
	}

	if err := runCalls(tr, p, versions, res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// runCalls executes the trace against the prepared version lists, filling the
// execution-side fields of res. A call reached before any version of its
// function exists yields a *ErrNoReadyVersion.
func runCalls(tr *trace.Trace, p *profile.Profile, versions []versionList, res *Result, opts Options) error {
	if opts.RecordCalls {
		res.CallStarts = make([]int64, 0, tr.Len())
		res.CallLevels = make([]profile.Level, 0, tr.Len())
	}
	rec := opts.Recorder
	intr := opts.Interrupt
	var execT int64
	for i, f := range tr.Calls {
		if intr != nil && i%interruptStride == 0 && interrupted(intr) {
			return ErrInterrupted
		}
		start := execT
		if ready := versions[f].firstReady(); ready > start {
			start = ready
		}
		if start > execT {
			res.TotalBubble += start - execT
			res.BubbleCount++
			rec.Stall(execT, start-execT, int32(f), int32(i))
		}
		level, ok := versions[f].latestAt(start)
		if !ok {
			return &ErrNoReadyVersion{Func: f, Time: start}
		}
		dur := p.ExecTime(f, level)
		if opts.ExecVariation > 0 {
			dur = scaleDuration(dur, CallFactor(opts.ExecVariationSeed, i, opts.ExecVariation))
		}
		if opts.RecordCalls {
			res.CallStarts = append(res.CallStarts, start)
			res.CallLevels = append(res.CallLevels, level)
		}
		rec.ExecStart(start, int32(f), int32(level), int32(i))
		rec.ExecEnd(start+dur, int32(f), int32(level), int32(i))
		res.TotalExec += dur
		execT = start + dur
	}
	res.MakeSpan = execT
	return nil
}
