package sim

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// PrefixSim is a resumable simulation of a growing instance: compile events
// may be appended to the schedule tail and calls appended to the executed
// trace, in any interleaving, and the simulation advances by exactly the new
// work instead of replaying from time zero. It exists for the online
// replanner, whose per-stride state — the init schedule following a growing
// visible prefix, the step-2/step-3 schedules re-evaluated over ever more
// calls — is append-only between plan rebuilds, so each replan costs O(new
// calls) rather than O(prefix).
//
// # Exactness contract
//
// A PrefixSim that has appended compile events e1..eM (in that order) and
// executed calls c1..cN reports exactly what Evaluator.Run / sim.Run report
// for the static schedule [e1..eM] over the trace [c1..cN] (no arrival
// times, no variation, no recorder): the same call starts, the same
// make-span, the same compile-finish times, tick for tick. The differential
// tests in prefixsim_test.go pin this.
//
// The contract holds because appending never rewrites history: calls execute
// sequentially, so earlier starts cannot depend on later calls; and a
// compile event appended after some calls have executed is only admitted
// when no executed call could have used it — its function has never executed
// (the replanner's case: a function newly revealed by the stream), or its
// finish time is at or past the execution clock. AppendCompile rejects the
// one shape that would diverge (an already-executed function's event
// finishing in the past) instead of silently producing a non-replayable
// state.
//
// A PrefixSim is not safe for concurrent use. On any returned error other
// than AppendCompile's (which leaves the state untouched) the simulation is
// mid-step and must be Reset before reuse.
type PrefixSim struct {
	nf      int
	levels  int
	workers int
	// compile[f*levels+l] and exec[f*levels+l] flatten the profile tables,
	// as in Evaluator.
	compile []int64
	exec    []int64

	versions   []versionList
	pool       workerPool
	dones      []int64
	compileEnd int64
	starts     []int64
	execT      int64
	called     []bool
}

// NewPrefixSim builds a resumable simulator for the profile under the given
// machine configuration, with an empty schedule and no executed calls. The
// profile is validated exactly as sim.NewEvaluator validates it.
func NewPrefixSim(p *profile.Profile, cfg Config) (*PrefixSim, error) {
	if cfg.CompileWorkers < 1 {
		return nil, fmt.Errorf("sim: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	nf, levels := p.NumFuncs(), p.Levels
	if levels <= 0 {
		return nil, fmt.Errorf("sim: evaluator needs a profile with positive Levels, got %d", levels)
	}
	for f := range p.Funcs {
		ft := &p.Funcs[f]
		if len(ft.Compile) != levels || len(ft.Exec) != levels {
			return nil, fmt.Errorf("sim: evaluator: function %d has %d compile / %d exec levels, want %d",
				f, len(ft.Compile), len(ft.Exec), levels)
		}
	}
	s := &PrefixSim{
		nf: nf, levels: levels, workers: cfg.CompileWorkers,
		compile:  make([]int64, nf*levels),
		exec:     make([]int64, nf*levels),
		versions: make([]versionList, nf),
		pool:     workerPool{free: make([]int64, cfg.CompileWorkers)},
		called:   make([]bool, nf),
	}
	for f := 0; f < nf; f++ {
		ft := &p.Funcs[f]
		for l := 0; l < levels; l++ {
			s.compile[f*levels+l] = ft.Compile[l]
			s.exec[f*levels+l] = ft.Exec[l]
		}
	}
	return s, nil
}

// Reset discards the schedule and all executed calls, keeping the arenas, so
// the simulator can replay a different schedule from time zero without
// reallocating.
func (s *PrefixSim) Reset() {
	for f := range s.versions {
		s.versions[f].done = s.versions[f].done[:0]
		s.versions[f].levels = s.versions[f].levels[:0]
	}
	clear(s.pool.free)
	clear(s.called)
	s.dones = s.dones[:0]
	s.starts = s.starts[:0]
	s.compileEnd = 0
	s.execT = 0
}

// AppendCompile appends one compile event at the schedule tail, assigning it
// to the earliest-free worker with arrival time zero, exactly as the static
// simulators do. It rejects out-of-range events and — see the exactness
// contract — an event for an already-executed function that would have
// finished before the current execution clock. On error the state is
// unchanged.
func (s *PrefixSim) AppendCompile(ev CompileEvent) error {
	if ev.Func < 0 || int(ev.Func) >= s.nf {
		return fmt.Errorf("sim: prefix schedule event references unknown function %d", ev.Func)
	}
	if ev.Level < 0 || int(ev.Level) >= s.levels {
		return fmt.Errorf("sim: prefix schedule event uses level %d outside [0,%d)", ev.Level, s.levels)
	}
	best, free := s.pool.earliest()
	done := free + s.compile[int(ev.Func)*s.levels+int(ev.Level)]
	if s.called[ev.Func] && done < s.execT {
		return fmt.Errorf("sim: prefix append of function %d finishing at %d would rewrite history before exec clock %d",
			ev.Func, done, s.execT)
	}
	s.pool.free[best] = done
	s.versions[ev.Func].insert(done, ev.Level)
	s.dones = append(s.dones, done)
	if done > s.compileEnd {
		s.compileEnd = done
	}
	return nil
}

// ExecCalls executes the given calls in order, advancing the simulation
// clock. A call to a function with no appended compilation fails with
// *ErrNoReadyVersion, as in the static simulators.
func (s *PrefixSim) ExecCalls(calls []trace.FuncID) error {
	for _, f := range calls {
		if f < 0 || int(f) >= s.nf {
			return fmt.Errorf("sim: prefix call invokes unknown function %d", f)
		}
		start := s.execT
		if ready := s.versions[f].firstReady(); ready > start {
			start = ready
		}
		level, ok := s.versions[f].latestAt(start)
		if !ok {
			return &ErrNoReadyVersion{Func: f, Time: start}
		}
		s.starts = append(s.starts, start)
		s.execT = start + s.exec[int(f)*s.levels+int(level)]
		s.called[f] = true
	}
	return nil
}

// MakeSpan returns the execution clock: the end of the last executed call,
// or 0 before any call.
func (s *PrefixSim) MakeSpan() int64 { return s.execT }

// CompileEnd returns the finish time of the latest-finishing appended
// compile event, or 0 before any event.
func (s *PrefixSim) CompileEnd() int64 { return s.compileEnd }

// CallStarts returns the start time of every executed call, in execution
// order. The slice aliases the simulator and is valid (read-only) until the
// next ExecCalls or Reset.
func (s *PrefixSim) CallStarts() []int64 { return s.starts }

// CompileDones returns the finish time of every appended compile event, in
// append order. The slice aliases the simulator and is valid (read-only)
// until the next AppendCompile or Reset.
func (s *PrefixSim) CompileDones() []int64 { return s.dones }

// NumCalls returns how many calls have been executed.
func (s *PrefixSim) NumCalls() int { return len(s.starts) }

// NumCompiles returns how many compile events have been appended.
func (s *PrefixSim) NumCompiles() int { return len(s.dones) }
