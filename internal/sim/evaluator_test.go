package sim

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// corpusTraces decodes the trace fuzz seed corpus (both codecs) into traces
// usable as differential-test inputs, skipping entries the codecs reject.
func corpusTraces(t testing.TB) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, dir := range []string{"FuzzReadBinary", "FuzzReadText"} {
		root := filepath.Join("..", "trace", "testdata", "fuzz", dir)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading fuzz corpus %s: %v", root, err)
		}
		for _, ent := range entries {
			if ent.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(root, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			payload, ok := decodeCorpusEntry(string(data))
			if !ok {
				t.Fatalf("unparseable corpus file %s/%s", dir, ent.Name())
			}
			var tr *trace.Trace
			if dir == "FuzzReadBinary" {
				tr, err = trace.ReadBinary(bytes.NewReader([]byte(payload)))
			} else {
				tr, err = trace.ReadText(bytes.NewReader([]byte(payload)))
			}
			if err != nil || tr.Len() == 0 || tr.Len() > 1<<16 {
				continue
			}
			tr.Name = dir + "/" + ent.Name()
			out = append(out, tr)
		}
	}
	if len(out) == 0 {
		t.Fatal("fuzz corpus produced no decodable traces")
	}
	return out
}

// decodeCorpusEntry extracts the single []byte("...") or string("...")
// argument of a "go test fuzz v1" corpus file.
func decodeCorpusEntry(data string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return "", false
	}
	arg := strings.TrimSpace(lines[1])
	open := strings.Index(arg, "(")
	if open < 0 || !strings.HasSuffix(arg, ")") {
		return "", false
	}
	s, err := strconv.Unquote(arg[open+1 : len(arg)-1])
	if err != nil {
		return "", false
	}
	return s, true
}

// corpusSchedule builds a deterministic valid schedule for the trace: every
// called function at a pseudo-random level in first-call order, plus a few
// recompilations, mimicking the shapes IAR and the searches produce.
func corpusSchedule(tr *trace.Trace, p *profile.Profile, seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	order := tr.FirstCallOrder()
	sched := make(Schedule, 0, len(order)*2)
	for _, f := range order {
		sched = append(sched, CompileEvent{Func: f, Level: profile.Level(rng.Intn(p.Levels))})
	}
	for _, f := range order {
		if rng.Intn(3) == 0 {
			sched = append(sched, CompileEvent{Func: f, Level: profile.Level(rng.Intn(p.Levels))})
		}
	}
	return sched
}

// diffResults compares every field of two results, reporting the first
// mismatching field by name.
func diffResults(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
	for i := 0; i < wv.NumField(); i++ {
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s differs: sim.Run=%v evaluator=%v",
				tag, wv.Type().Field(i).Name, wv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
}

// TestEvaluatorMatchesRunOnCorpus pins the identical-results contract: over
// the whole fuzz seed corpus, every Result field the evaluator produces is
// bit-identical to sim.Run's, across worker counts, options, and repeated
// (warm) runs.
func TestEvaluatorMatchesRunOnCorpus(t *testing.T) {
	for _, tr := range corpusTraces(t) {
		nf := tr.NumFuncs()
		p, err := profile.Synthesize(nf, profile.DefaultTiming(4, 11))
		if err != nil {
			t.Fatalf("%s: synthesize: %v", tr.Name, err)
		}
		sched := corpusSchedule(tr, p, 5)
		eval, err := NewEvaluator(tr, p)
		if err != nil {
			t.Fatalf("%s: NewEvaluator: %v", tr.Name, err)
		}
		for _, cfg := range []Config{{CompileWorkers: 1}, {CompileWorkers: 2}, {CompileWorkers: 3}} {
			for _, opts := range []Options{
				{},
				{RecordCalls: true},
				{RecordCalls: true, ExecVariation: 0.3, ExecVariationSeed: 42},
			} {
				want, err := Run(tr, p, sched, cfg, opts)
				if err != nil {
					t.Fatalf("%s: sim.Run: %v", tr.Name, err)
				}
				for pass := 0; pass < 2; pass++ { // second pass runs warm
					got, err := eval.Run(sched, cfg, opts)
					if err != nil {
						t.Fatalf("%s: evaluator.Run: %v", tr.Name, err)
					}
					diffResults(t, tr.Name, want, got)
				}
			}
		}
	}
}

// TestEvaluatorMatchesRunErrors checks the failure paths return the same
// errors as sim.Run.
func TestEvaluatorMatchesRunErrors(t *testing.T) {
	tr := trace.New("err", []trace.FuncID{0, 1, 0})
	p := testkit.Synth(2, profile.DefaultTiming(3, 7))
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		sched Schedule
		cfg   Config
		opts  Options
	}{
		{"uncompiled call", Schedule{{Func: 0, Level: 0}}, DefaultConfig(), Options{}},
		{"unknown func", Schedule{{Func: 5, Level: 0}}, DefaultConfig(), Options{}},
		{"bad level", Schedule{{Func: 0, Level: 9}}, DefaultConfig(), Options{}},
		{"bad workers", Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 0}}, Config{}, Options{}},
		{"bad variation", Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 0}}, DefaultConfig(), Options{ExecVariation: 2}},
	}
	for _, tc := range cases {
		_, wantErr := Run(tr, p, tc.sched, tc.cfg, tc.opts)
		_, gotErr := eval.Run(tc.sched, tc.cfg, tc.opts)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("%s: expected both paths to fail, got sim.Run=%v evaluator=%v", tc.name, wantErr, gotErr)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Errorf("%s: error mismatch:\n  sim.Run:   %v\n  evaluator: %v", tc.name, wantErr, gotErr)
		}
	}
}

// deltaWorkload builds a generated trace with phases and bursts, its
// profile, and a baseline schedule for the delta property tests.
func deltaWorkload(t testing.TB, seed int64) (*trace.Trace, *profile.Profile, Schedule) {
	t.Helper()
	tr := testkit.Gen(trace.GenConfig{
		Name: "delta", NumFuncs: 30, Length: 2000, Seed: seed,
		ZipfS: 1.5, Phases: 3, CoreFuncs: 6, CoreShare: 0.4, BurstMean: 3,
	})
	p := testkit.Synth(30, profile.DefaultTiming(4, seed+1))
	return tr, p, corpusSchedule(tr, p, seed+2)
}

// TestEvaluatorDeltaMatchesResim is the delta-equals-resimulation property
// test: for randomized single-event edits (in-place level changes at any
// position, appends of any event), the incremental make-span equals a full
// re-simulation of the edited schedule, across worker counts and with
// execution-time variation on.
func TestEvaluatorDeltaMatchesResim(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		tr, p, sched := deltaWorkload(t, seed)
		rng := rand.New(rand.NewSource(seed * 101))
		for _, cfg := range []Config{{CompileWorkers: 1}, {CompileWorkers: 2}} {
			for _, opts := range []Options{{}, {ExecVariation: 0.25, ExecVariationSeed: 9}} {
				eval, err := NewEvaluator(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eval.Run(sched, cfg, opts); err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 60; trial++ {
					pos := rng.Intn(len(sched))
					level := profile.Level(rng.Intn(p.Levels))
					edited := sched.Clone()
					edited[pos].Level = level
					want, err := Run(tr, p, edited, cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := eval.UpgradedMakeSpan(pos, level)
					if err != nil {
						t.Fatal(err)
					}
					if got != want.MakeSpan {
						t.Fatalf("seed %d workers %d var %g: upgrade pos=%d level=%d: delta %d != resim %d",
							seed, cfg.CompileWorkers, opts.ExecVariation, pos, level, got, want.MakeSpan)
					}
				}
				for trial := 0; trial < 40; trial++ {
					ev := CompileEvent{
						Func:  trace.FuncID(rng.Intn(p.NumFuncs())),
						Level: profile.Level(rng.Intn(p.Levels)),
					}
					edited := append(sched.Clone(), ev)
					want, err := Run(tr, p, edited, cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := eval.AppendedMakeSpan(ev)
					if err != nil {
						t.Fatal(err)
					}
					if got != want.MakeSpan {
						t.Fatalf("seed %d workers %d var %g: append %+v: delta %d != resim %d",
							seed, cfg.CompileWorkers, opts.ExecVariation, ev, got, want.MakeSpan)
					}
				}
			}
		}
	}
}

// TestMakeSpanOfFallback checks the transparent entry point: one-edit
// candidates ride the fast path, anything else falls back to a full run, and
// both agree with sim.Run in every case.
func TestMakeSpanOfFallback(t *testing.T) {
	tr, p, sched := deltaWorkload(t, 29)
	cfg := DefaultConfig()
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.Run(sched, cfg, Options{}); err != nil {
		t.Fatal(err)
	}

	check := func(name string, cand Schedule, cfg Config, opts Options) {
		t.Helper()
		want, err := Run(tr, p, cand, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.MakeSpanOf(cand, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.MakeSpan {
			t.Errorf("%s: MakeSpanOf %d != sim.Run %d", name, got, want.MakeSpan)
		}
	}

	// bump changes a level for sure, whatever the original was.
	bump := func(l profile.Level) profile.Level { return profile.Level((int(l) + 1) % p.Levels) }

	before := ReadEvalStats()
	check("identical", sched.Clone(), cfg, Options{})
	oneUp := sched.Clone()
	oneUp[4].Level = bump(oneUp[4].Level)
	check("single upgrade", oneUp, cfg, Options{})
	check("single append", append(sched.Clone(), CompileEvent{Func: 2, Level: 1}), cfg, Options{})
	if fast := ReadEvalStats().DeltaFast - before.DeltaFast; fast != 3 {
		t.Errorf("expected 3 fast delta evaluations, counted %d", fast)
	}

	// Two edits at once: must transparently fall back to a full simulation
	// (which then becomes the new baseline).
	twoUp := sched.Clone()
	twoUp[1].Level = bump(twoUp[1].Level)
	twoUp[5].Level = bump(twoUp[5].Level)
	before = ReadEvalStats()
	check("two upgrades", twoUp, cfg, Options{})
	// Different worker count than the baseline: also a fallback.
	check("other config", twoUp, Config{CompileWorkers: 2}, Options{})
	if full := ReadEvalStats().DeltaFull - before.DeltaFull; full != 2 {
		t.Errorf("expected 2 full fallbacks, counted %d", full)
	}
	// The fallback re-established a baseline; a single edit from it must be
	// fast again and still correct.
	oneMore := twoUp.Clone()
	oneMore[8].Level = bump(oneMore[8].Level)
	check("single upgrade after fallback", oneMore, Config{CompileWorkers: 2}, Options{})
}

// TestEvaluatorZeroAlloc is the arena contract: warm evaluator runs and
// delta evaluations perform no heap allocation at all. Wired into the
// bench-guard Makefile target next to the recorder's zero-alloc guard.
func TestEvaluatorZeroAlloc(t *testing.T) {
	tr, p, sched := deltaWorkload(t, 47)
	cfg := DefaultConfig()
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // warm the arenas
		if _, err := eval.Run(sched, cfg, Options{RecordCalls: true}); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := eval.Run(sched, cfg, Options{RecordCalls: true}); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Evaluator.Run allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := eval.UpgradedMakeSpan(3, profile.Level(p.Levels-1)); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("UpgradedMakeSpan allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := eval.AppendedMakeSpan(CompileEvent{Func: 1, Level: 2}); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("AppendedMakeSpan allocates %v times per run, want 0", allocs)
	}
	edited := sched.Clone()
	edited[2].Level = profile.Level(p.Levels - 1)
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := eval.MakeSpanOf(edited, cfg, Options{}); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("MakeSpanOf fast path allocates %v times per run, want 0", allocs)
	}
}

// TestEvalStats sanity-checks the process-wide counters and their summary.
func TestEvalStats(t *testing.T) {
	before := ReadEvalStats()
	tr, p, sched := deltaWorkload(t, 61)
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eval.Run(sched, DefaultConfig(), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	after := ReadEvalStats()
	if after.Evaluators-before.Evaluators < 1 || after.Runs-before.Runs < 3 || after.WarmRuns-before.WarmRuns < 2 {
		t.Errorf("counters did not advance as expected: before %+v after %+v", before, after)
	}
	if s := after.Summary(); !strings.Contains(s, "evaluators") || !strings.Contains(s, "delta evals") {
		t.Errorf("unexpected summary %q", s)
	}
}

// benchWorkload is a larger workload for the fast-path benchmarks.
func evalBenchWorkload(b *testing.B) (*trace.Trace, *profile.Profile, Schedule) {
	b.Helper()
	tr := testkit.Gen(trace.GenConfig{
		Name: "bench", NumFuncs: 200, Length: 40000, Seed: 5,
		ZipfS: 1.6, Phases: 4, CoreFuncs: 30, CoreShare: 0.4, BurstMean: 4,
	})
	p := testkit.Synth(200, profile.DefaultTiming(4, 6))
	return tr, p, corpusSchedule(tr, p, 7)
}

// BenchmarkSimRun is the slow-path baseline for BenchmarkEvaluatorRun.
func BenchmarkSimRun(b *testing.B) {
	tr, p, sched := evalBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, p, sched, DefaultConfig(), Options{RecordCalls: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorRun measures the warm allocation-free full evaluation.
func BenchmarkEvaluatorRun(b *testing.B) {
	tr, p, sched := evalBenchWorkload(b)
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eval.Run(sched, DefaultConfig(), Options{RecordCalls: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(sched, DefaultConfig(), Options{RecordCalls: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorDelta measures incremental single-edit scoring against
// the warm baseline.
func BenchmarkEvaluatorDelta(b *testing.B) {
	tr, p, sched := evalBenchWorkload(b)
	eval, err := NewEvaluator(tr, p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eval.Run(sched, DefaultConfig(), Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.UpgradedMakeSpan(i%len(sched), profile.Level(i%p.Levels)); err != nil {
			b.Fatal(err)
		}
	}
}
