package sim_test

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExampleRun replays the paper's Fig. 1 schedule s3 (compile f1 twice) and
// reproduces its make-span of 10.
func ExampleRun() {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f0", Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Name: "f1", Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Name: "f2", Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	s3 := sim.Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 0}, {Func: 2, Level: 0}, {Func: 1, Level: 1}}
	res, err := sim.Run(tr, p, s3, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("make-span=%d bubbles=%d\n", res.MakeSpan, res.TotalBubble)
	// Output:
	// make-span=10 bubbles=1
}

// ExampleRunPolicy drives a trace through the V8-style policy: low level on
// first encounter, high level at the second invocation.
func ExampleRunPolicy() {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "hot", Compile: []int64{1, 10}, Exec: []int64{20, 2}},
		},
	}
	tr := trace.New("t", []trace.FuncID{0, 0, 0})
	res, err := sim.RunPolicy(tr, p, secondCallPromoter{}, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		panic(err)
	}
	// c@0 [0,1); call1 [1,21); call2 requests high at 21, runs low [21,41);
	// call3 at 41 uses the high version (done 31): [41,43).
	fmt.Println(res.MakeSpan)
	// Output:
	// 43
}

// secondCallPromoter is a minimal sim.Policy: level 0 on first call, a
// high-level request at the second.
type secondCallPromoter struct{}

func (secondCallPromoter) FirstCall(trace.FuncID, int64) profile.Level { return 0 }
func (secondCallPromoter) BeforeCall(f trace.FuncID, nth, now int64) []sim.Request {
	if nth == 2 {
		return []sim.Request{{Func: f, Level: 1}}
	}
	return nil
}
func (secondCallPromoter) Sample(trace.FuncID, int64) []sim.Request { return nil }
func (secondCallPromoter) SamplePeriod() int64                      { return 0 }
