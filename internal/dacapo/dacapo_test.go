package dacapo

import (
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

func lv(l int) profile.Level { return profile.Level(l) }

// Table 1 ground truth from the paper.
var table1 = map[string]struct {
	parallel bool
	funcs    int
	fullLen  int
	seconds  float64
}{
	"antlr":    {false, 1187, 2403584, 1.6},
	"bloat":    {false, 1581, 9423445, 5.0},
	"eclipse":  {false, 2194, 467372, 28.4},
	"fop":      {false, 1927, 1323119, 1.5},
	"hsqldb":   {true, 1006, 8022794, 2.9},
	"jython":   {false, 2128, 23655473, 6.7},
	"luindex":  {false, 641, 20582610, 6.1},
	"lusearch": {true, 543, 43573214, 3.2},
	"pmd":      {false, 1876, 12543579, 3.5},
}

func TestSuiteMatchesTable1(t *testing.T) {
	suite := Suite()
	if len(suite) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(suite))
	}
	for _, b := range suite {
		want, ok := table1[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.Parallel != want.parallel || b.Funcs != want.funcs ||
			b.FullLength != want.fullLen || b.DefaultSeconds != want.seconds {
			t.Errorf("%s: fields %+v do not match Table 1 %+v", b.Name, b, want)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("jython")
	if err != nil {
		t.Fatal(err)
	}
	if b.Funcs != 2128 {
		t.Errorf("jython funcs = %d, want 2128", b.Funcs)
	}
	if _, err := ByName("chart"); err == nil {
		t.Error("want error for chart (excluded by the paper)")
	}
}

func TestLoadDeterministic(t *testing.T) {
	b, err := ByName("antlr")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := b.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1.Trace.Calls, w2.Trace.Calls) {
		t.Error("loading twice produced different traces")
	}
	if !reflect.DeepEqual(w1.Profile.Funcs[0], w2.Profile.Funcs[0]) {
		t.Error("loading twice produced different profiles")
	}
}

func TestLoadValidWorkloads(t *testing.T) {
	for _, b := range Suite() {
		w, err := b.Load(1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := w.Profile.Validate(); err != nil {
			t.Errorf("%s: profile invalid: %v", b.Name, err)
		}
		if err := w.Trace.Validate(b.Funcs); err != nil {
			t.Errorf("%s: trace invalid: %v", b.Name, err)
		}
		if w.Trace.Len() != b.ScaledLength {
			t.Errorf("%s: trace length %d, want %d", b.Name, w.Trace.Len(), b.ScaledLength)
		}
		if w.Profile.Levels != 4 {
			t.Errorf("%s: %d levels, want 4 (Jikes RVM)", b.Name, w.Profile.Levels)
		}
		st := trace.ComputeStats(w.Trace)
		if st.UniqueFuncs < b.Funcs*3/4 {
			t.Errorf("%s: only %d of %d functions appear", b.Name, st.UniqueFuncs, b.Funcs)
		}
		if st.Top10Share < 0.3 {
			t.Errorf("%s: top-10 share %.2f; workload not hot enough", b.Name, st.Top10Share)
		}
	}
}

func TestLoadScaling(t *testing.T) {
	b, err := ByName("eclipse")
	if err != nil {
		t.Fatal(err)
	}
	small, err := b.Load(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if small.Trace.Len() != b.ScaledLength/4 {
		t.Errorf("scaled length %d, want %d", small.Trace.Len(), b.ScaledLength/4)
	}
	// Scaling beyond the paper's full length is clamped.
	big, err := b.Load(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if big.Trace.Len() != b.FullLength {
		t.Errorf("oversized scale gave %d calls, want clamp to %d", big.Trace.Len(), b.FullLength)
	}
	if _, err := b.Load(0); err == nil {
		t.Error("want error for zero scale")
	}
}

func TestModels(t *testing.T) {
	b, err := ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	w, err := b.Load(0.2)
	if err != nil {
		t.Fatal(err)
	}
	def := w.DefaultModel()
	ora := w.Oracle()
	if def.Levels() != 4 || ora.Levels() != 4 {
		t.Fatal("models must expose 4 levels")
	}
	diff := false
	for f := 0; f < 50 && !diff; f++ {
		for l := 0; l < 4; l++ {
			if def.ExecTime(trace.FuncID(f), lv(l)) != ora.ExecTime(trace.FuncID(f), lv(l)) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("default model equals oracle; estimation error missing")
	}
}

func TestLoadThreads(t *testing.T) {
	b, err := ByName("hsqldb")
	if err != nil {
		t.Fatal(err)
	}
	per, p, err := b.LoadThreads(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("%d threads, want 4", len(per))
	}
	total := 0
	for i, tr := range per {
		if err := tr.Validate(p.NumFuncs()); err != nil {
			t.Errorf("thread %d invalid: %v", i, err)
		}
		total += tr.Len()
	}
	if total != b.ScaledLength {
		t.Errorf("threads total %d calls, want %d", total, b.ScaledLength)
	}
	if _, _, err := b.LoadThreads(0, 4); err == nil {
		t.Error("want error for zero scale")
	}
	if _, _, err := b.LoadThreads(1, 0); err == nil {
		t.Error("want error for zero threads")
	}
}

func TestLoadRunSharesStructure(t *testing.T) {
	b, err := ByName("jython")
	if err != nil {
		t.Fatal(err)
	}
	w0, err := b.Load(0.3)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := b.LoadRun(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(w0.Trace.Calls, w1.Trace.Calls) {
		t.Fatal("different runs produced identical traces")
	}
	// Same program: identical timing profiles and overlapping hot sets.
	if !reflect.DeepEqual(w0.Profile.Funcs[0], w1.Profile.Funcs[0]) {
		t.Error("runs have different timing profiles")
	}
	hot0, err := trace.HotSet(w0.Trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hot1, err := trace.HotSet(w1.Trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	in1 := map[trace.FuncID]bool{}
	for _, f := range hot1 {
		in1[f] = true
	}
	overlap := 0
	for _, f := range hot0 {
		if in1[f] {
			overlap++
		}
	}
	if overlap*2 < len(hot0) {
		t.Errorf("hot sets overlap only %d of %d; runs do not share structure", overlap, len(hot0))
	}
	if _, err := b.LoadRun(1, -1); err == nil {
		t.Error("want error for negative run")
	}
	// Run 0 equals Load.
	w00, err := b.LoadRun(0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w00.Trace.Calls, w0.Trace.Calls) {
		t.Error("run 0 differs from Load")
	}
}
