// Package dacapo defines the nine synthetic workloads standing in for the
// paper's DaCapo 2006 benchmarks (Table 1). Function counts, the
// parallel/sequential split, and the full call-sequence lengths match the
// table; the call sequences themselves and per-level timings are generated
// deterministically, since the original Jikes RVM traces are not available
// (see DESIGN.md §2 for the substitution argument).
//
// Each benchmark gets its own generator flavour — hotness skew, phase count,
// warmup share, burstiness — so the suite spans the same qualitative range
// the paper's figures show: from loop-dominated lusearch/luindex to the
// cold-code-heavy eclipse whose single-level schemes misbehave
// spectacularly.
package dacapo

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// Benchmark describes one synthetic DaCapo workload.
type Benchmark struct {
	// Name is the DaCapo benchmark name.
	Name string
	// Parallel records Table 1's parallelism column. As in the paper, the
	// calls of a parallel benchmark's threads are flattened into one
	// sequence.
	Parallel bool
	// Funcs is the number of distinct functions (Table 1).
	Funcs int
	// FullLength is the call-sequence length of the original trace
	// (Table 1).
	FullLength int
	// DefaultSeconds is Table 1's default running time, for reporting.
	DefaultSeconds float64
	// ScaledLength is the default generated length (Scale == 1); it keeps
	// experiments laptop-fast while preserving each benchmark's hotness
	// structure. Scale up toward FullLength/ScaledLength for full size.
	ScaledLength int
	// SamplePeriod is the Jikes sampler period in ticks for this workload,
	// chosen so a run sees on the order of a hundred samples — the same
	// samples-per-run magnitude as 10 ms sampling against the seconds-long
	// original runs.
	SamplePeriod int64

	gen    trace.GenConfig
	timing profile.TimingConfig
	seed   int64
}

// Workload is a loaded benchmark: its call sequence and timing profile.
type Workload struct {
	Bench   Benchmark
	Trace   *trace.Trace
	Profile *profile.Profile
}

// suite returns the benchmark definitions. Generator parameters vary by
// benchmark: skew (ZipfS), phase structure, warmup coverage, and burstiness
// shape how hot, phased, and cold-code-heavy each workload is.
func suite() []Benchmark {
	mk := func(name string, parallel bool, funcs, fullLen int, secs float64,
		scaledLen int, period int64, seed int64,
		zipf float64, phases int, coreShare, warmFrac, warmCov, burst float64,
		execMedian float64) Benchmark {
		b := Benchmark{
			Name: name, Parallel: parallel, Funcs: funcs, FullLength: fullLen,
			DefaultSeconds: secs, ScaledLength: scaledLen, SamplePeriod: period,
			seed: seed,
		}
		b.gen = trace.GenConfig{
			Name: name, NumFuncs: funcs, Length: scaledLen, Seed: seed,
			ZipfS: zipf, Phases: phases, CoreFuncs: funcs / 10, CoreShare: coreShare,
			BurstMean: burst, WarmupFrac: warmFrac, WarmupCoverage: warmCov,
		}
		b.timing = profile.DefaultTiming(4, seed+1)
		b.timing.ExecMedian = execMedian
		return b
	}
	return []Benchmark{
		//  name      par    funcs fullLen    secs  scaled  period  seed zipf ph core warm  cov  burst exec
		mk("antlr", false, 1187, 2403584, 1.6, 240000, 400000, 101, 1.45, 4, 0.55, 0.08, 0.80, 3, 110),
		mk("bloat", false, 1581, 9423445, 5.0, 315000, 500000, 102, 1.40, 6, 0.50, 0.07, 0.75, 3, 120),
		mk("eclipse", false, 2194, 467372, 28.4, 230000, 600000, 103, 1.30, 5, 0.45, 0.12, 0.90, 2, 140),
		mk("fop", false, 1927, 1323119, 1.5, 260000, 450000, 104, 1.35, 4, 0.50, 0.10, 0.85, 2, 100),
		mk("hsqldb", true, 1006, 8022794, 2.9, 265000, 450000, 105, 1.50, 5, 0.55, 0.06, 0.70, 4, 110),
		mk("jython", false, 2128, 23655473, 6.7, 295000, 500000, 106, 1.50, 5, 0.55, 0.06, 0.75, 3, 120),
		mk("luindex", false, 641, 20582610, 6.1, 255000, 350000, 107, 1.70, 3, 0.60, 0.04, 0.65, 6, 100),
		mk("lusearch", true, 543, 43573214, 3.2, 290000, 350000, 108, 1.80, 3, 0.60, 0.03, 0.60, 6, 90),
		mk("pmd", false, 1876, 12543579, 3.5, 250000, 500000, 109, 1.40, 5, 0.50, 0.08, 0.80, 3, 115),
	}
}

// Suite returns the nine benchmarks in Table 1 order.
func Suite() []Benchmark { return suite() }

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	bs := suite()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// ByName looks a benchmark up by its DaCapo name.
func ByName(name string) (Benchmark, error) {
	for _, b := range suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("dacapo: unknown benchmark %q (have %v)", name, Names())
}

// Load generates the benchmark's trace and timing profile. scale multiplies
// ScaledLength; it is clamped to [1 call, FullLength]. Load(1) is the
// default experimental size.
func (b Benchmark) Load(scale float64) (*Workload, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("dacapo: scale must be positive, got %g", scale)
	}
	gen := b.gen
	gen.Length = int(float64(b.ScaledLength) * scale)
	if gen.Length > b.FullLength {
		gen.Length = b.FullLength
	}
	if gen.Length < 1 {
		gen.Length = 1
	}
	var tr *trace.Trace
	var err error
	if b.Parallel {
		tr, err = b.generateParallel(gen)
	} else {
		tr, err = trace.Generate(gen)
	}
	if err != nil {
		return nil, fmt.Errorf("dacapo: %s: %w", b.Name, err)
	}
	p, err := profile.Synthesize(b.Funcs, b.timing)
	if err != nil {
		return nil, fmt.Errorf("dacapo: %s: %w", b.Name, err)
	}
	return &Workload{Bench: b, Trace: tr, Profile: p}, nil
}

// threadTraces builds per-thread call sequences: the main thread carries the
// warmup (class loading happens once), worker threads run the steady
// workload; all share the program structure.
func threadTraces(gen trace.GenConfig, threads int) ([]*trace.Trace, error) {
	baseDraw := gen.DrawSeed
	if baseDraw == 0 {
		baseDraw = gen.Seed
	}
	per := make([]*trace.Trace, threads)
	for t := 0; t < threads; t++ {
		g := gen
		g.Length = gen.Length / threads
		if t == 0 {
			g.Length += gen.Length % threads
		} else {
			g.WarmupFrac = 0 // workers load no classes
		}
		g.DrawSeed = baseDraw + int64(t+1)*131
		tt, err := trace.Generate(g)
		if err != nil {
			return nil, err
		}
		per[t] = tt
	}
	return per, nil
}

// generateParallel builds a multithreaded benchmark's trace as the paper's
// collection framework does (§6.1): per-thread call sequences flattened into
// one, in rough invocation-timing order.
func (b Benchmark) generateParallel(gen trace.GenConfig) (*trace.Trace, error) {
	per, err := threadTraces(gen, 4)
	if err != nil {
		return nil, err
	}
	baseDraw := gen.DrawSeed
	if baseDraw == 0 {
		baseDraw = gen.Seed
	}
	return trace.Interleave(baseDraw+977, per...)
}

// LoadThreads generates the benchmark as per-thread call sequences for
// multi-threaded simulation (sim.RunPolicyMT), instead of the flattened
// single sequence the paper's model uses. Any benchmark can be loaded this
// way; thread 0 carries the warmup.
func (b Benchmark) LoadThreads(scale float64, threads int) ([]*trace.Trace, *profile.Profile, error) {
	if scale <= 0 {
		return nil, nil, fmt.Errorf("dacapo: scale must be positive, got %g", scale)
	}
	if threads < 1 {
		return nil, nil, fmt.Errorf("dacapo: thread count must be >= 1, got %d", threads)
	}
	gen := b.gen
	gen.Length = int(float64(b.ScaledLength) * scale)
	if gen.Length > b.FullLength {
		gen.Length = b.FullLength
	}
	if gen.Length < threads {
		gen.Length = threads
	}
	per, err := threadTraces(gen, threads)
	if err != nil {
		return nil, nil, fmt.Errorf("dacapo: %s: %w", b.Name, err)
	}
	p, err := profile.Synthesize(b.Funcs, b.timing)
	if err != nil {
		return nil, nil, fmt.Errorf("dacapo: %s: %w", b.Name, err)
	}
	return per, p, nil
}

// LoadRun generates one particular *run* of the benchmark: the same program
// (identical timing profile) exercised on a different input, modeled as a
// different trace seed. Run 0 equals Load. Cross-run learning experiments
// (§8) train on several runs and evaluate on an unseen one.
func (b Benchmark) LoadRun(scale float64, run int) (*Workload, error) {
	if run < 0 {
		return nil, fmt.Errorf("dacapo: run index must be non-negative, got %d", run)
	}
	variant := b
	if run > 0 {
		// Same program structure (same Seed), different input: only the
		// stochastic draws change.
		variant.gen.DrawSeed = b.seed + int64(run)*7919
	}
	return variant.Load(scale)
}

// DefaultModel returns the workload's default (Jikes-like, estimated)
// cost-benefit model, deterministic per benchmark.
func (w *Workload) DefaultModel() *profile.Estimated {
	return profile.NewEstimated(w.Profile, profile.DefaultEstimatedConfig(w.Bench.seed+2))
}

// Oracle returns the oracle cost-benefit model of §6.2.2.
func (w *Workload) Oracle() profile.Oracle { return profile.NewOracle(w.Profile) }
