package server

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Tenant identity limits. The tenant travels in the X-Tenant header or the
// request's "tenant" field (the header wins) and is threaded into the cache
// fingerprint, so tenants never share cached responses.
const (
	// MaxTenantLen bounds a tenant name's length.
	MaxTenantLen = 64
	// DefaultTenant is the bucket anonymous requests share.
	DefaultTenant = "default"
)

// maxTenantStates bounds the governor's state map; beyond it, idle states
// (full bucket, nothing in flight) are discarded — they are exactly the
// states admit would recreate from scratch anyway, so eviction never
// changes an admission decision.
const maxTenantStates = 4096

// validTenant rejects tenant names that would not survive a round trip
// through an HTTP header or a metrics label.
func validTenant(s string) error {
	if len(s) > MaxTenantLen {
		return badRequest("tenant name exceeds %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c <= ' ' || c == 0x7f {
			return badRequest("tenant name contains whitespace or control characters")
		}
	}
	return nil
}

// tenantLimits configures per-tenant admission control. Zero fields disable
// that check — the zero value admits everything, so existing single-tenant
// deployments see no behaviour change.
type tenantLimits struct {
	// Rate is the steady-state request rate per tenant in requests/second;
	// Burst the token-bucket depth (how far a tenant may briefly exceed
	// Rate). Burst defaults to max(1, Rate) when Rate is set.
	Rate  float64
	Burst int
	// MaxInFlight caps a tenant's concurrently processing requests.
	MaxInFlight int
}

func (l tenantLimits) enabled() bool { return l.Rate > 0 || l.MaxInFlight > 0 }

// tenantState is one tenant's live bucket and in-flight gauge.
type tenantState struct {
	tokens   float64
	last     time.Time
	inflight int
}

// tenantGovernor admits requests per tenant: a token bucket enforces the
// sustained rate, an in-flight counter the concurrency quota. This is the
// serving-side analogue of partitioning a shared resource among competing
// jobs: one tenant's burst drains its own bucket, not the service.
type tenantGovernor struct {
	limits tenantLimits
	now    func() time.Time // injectable clock for tests

	mu     sync.Mutex
	states map[string]*tenantState
}

func newTenantGovernor(limits tenantLimits) *tenantGovernor {
	if limits.Rate > 0 && limits.Burst <= 0 {
		limits.Burst = int(math.Max(1, limits.Rate))
	}
	return &tenantGovernor{
		limits: limits,
		now:    time.Now,
		states: make(map[string]*tenantState),
	}
}

// admit decides whether tenant may start one more request. On admission it
// charges a token, counts the request in flight, and returns a release
// function the caller must invoke when the request finishes. On rejection it
// returns the suggested Retry-After duration (rounded up to whole seconds by
// the handler).
func (g *tenantGovernor) admit(tenant string) (release func(), retryAfter time.Duration, ok bool) {
	if g == nil || !g.limits.enabled() {
		return func() {}, 0, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.states[tenant]
	if st == nil {
		g.evictIdleLocked()
		st = &tenantState{tokens: float64(g.limits.Burst), last: g.now()}
		g.states[tenant] = st
	}
	if g.limits.Rate > 0 {
		now := g.now()
		st.tokens = math.Min(float64(g.limits.Burst), st.tokens+now.Sub(st.last).Seconds()*g.limits.Rate)
		st.last = now
		if st.tokens < 1 {
			// Time until the bucket refills to one whole token.
			return nil, time.Duration((1 - st.tokens) / g.limits.Rate * float64(time.Second)), false
		}
	}
	if g.limits.MaxInFlight > 0 && st.inflight >= g.limits.MaxInFlight {
		// No schedule to predict here — a slot opens whenever one of the
		// tenant's requests finishes; one second is the conventional hint.
		return nil, time.Second, false
	}
	if g.limits.Rate > 0 {
		st.tokens--
	}
	st.inflight++
	released := false
	return func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		if released {
			return
		}
		released = true
		if cur := g.states[tenant]; cur != nil && cur.inflight > 0 {
			cur.inflight--
		}
	}, 0, true
}

// evictIdleLocked drops idle tenant states once the map is full. Callers
// hold g.mu.
func (g *tenantGovernor) evictIdleLocked() {
	if len(g.states) < maxTenantStates {
		return
	}
	now := g.now()
	for name, st := range g.states {
		tokens := st.tokens
		if g.limits.Rate > 0 {
			tokens = math.Min(float64(g.limits.Burst), tokens+now.Sub(st.last).Seconds()*g.limits.Rate)
		}
		if st.inflight == 0 && (g.limits.Rate <= 0 || tokens >= float64(g.limits.Burst)) {
			delete(g.states, name)
		}
	}
}

// retryAfterHeader renders a Retry-After value: whole seconds, at least 1.
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
