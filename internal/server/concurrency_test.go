package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestConcurrentIdenticalRequestsCoalesce: N identical requests fired at
// once produce byte-identical bodies, exactly one cache miss (the leader
// computes, everyone else coalesces or hits), and a cache-hit counter that
// accounts for the other N-1.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{Metrics: m})
	const n = 32
	body := inlineRequest(t, "bnb", 7, 80, 11, nil)

	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i] = result{resp.StatusCode, resp.Header.Get("X-Cache"), buf.Bytes()}
		}(i)
	}
	wg.Wait()

	misses, coalesced, hits := 0, 0, 0
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("request %d: status %d, body %s", i, r.status, r.body)
		}
		switch r.cache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		case "hit":
			hits++
		default:
			t.Errorf("request %d: X-Cache = %q", i, r.cache)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Errorf("request %d served different bytes:\n%s\n%s", i, r.body, results[0].body)
		}
	}
	if misses != 1 {
		t.Errorf("%d cache misses across %d identical requests, want exactly 1", misses, n)
	}
	if coalesced+hits != n-1 {
		t.Errorf("coalesced %d + hits %d across %d identical requests, want %d combined", coalesced, hits, n, n-1)
	}
	s := m.Snapshot()
	if s.ServeCacheHits != int64(hits) || s.ServeCoalesced != int64(coalesced) {
		t.Errorf("serve_cache_hits = %d / serve_coalesced = %d, want %d / %d to match the headers",
			s.ServeCacheHits, s.ServeCoalesced, hits, coalesced)
	}
	if s.ServeOK != n {
		t.Errorf("serve_ok = %d, want %d", s.ServeOK, n)
	}
}

// TestServeSingleFlightUnderEvictionPressure: the end-to-end regression for
// the in-flight-eviction bug. A one-entry cache under two interleaved slow
// fingerprints used to evict whichever leader was least recently used, so
// concurrent duplicates elected second leaders and recomputed. Now exactly
// one miss per fingerprint may occur, every duplicate coalesces (or hits),
// and all bodies within a fingerprint are byte-identical.
func TestServeSingleFlightUnderEvictionPressure(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{CacheSize: 1, Metrics: m})
	const (
		keys       = 2
		dupsPerKey = 16
	)
	// Seeds picked so both 9-function BnB instances take ~500ms: slow enough
	// that every duplicate below lands while its leader is still in flight,
	// fast enough to keep the test bounded.
	seeds := [keys]int64{45, 48}
	bodies := make([][]byte, keys)
	for k := range bodies {
		bodies[k] = inlineRequest(t, "bnb", 9, 100, seeds[k], nil)
	}

	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make([]result, keys*dupsPerKey)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < keys*dupsPerKey; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			k := i % keys // interleave the two fingerprints
			resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(bodies[k]))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i] = result{resp.StatusCode, resp.Header.Get("X-Cache"), buf.Bytes()}
		}(i)
	}
	close(start)
	wg.Wait()

	var first [keys][]byte
	var misses [keys]int
	for i, r := range results {
		k := i % keys
		if r.status != 200 {
			t.Fatalf("request %d: status %d, body %s", i, r.status, r.body)
		}
		if r.cache == "miss" {
			misses[k]++
		}
		if first[k] == nil {
			first[k] = r.body
		} else if !bytes.Equal(r.body, first[k]) {
			t.Errorf("request %d (fingerprint %d) served different bytes", i, k)
		}
	}
	for k, n := range misses {
		if n != 1 {
			t.Errorf("fingerprint %d: %d cache misses, want exactly 1 — single-flight broke under eviction pressure", k, n)
		}
	}
	if s := m.Snapshot(); s.ServeOK != keys*dupsPerKey {
		t.Errorf("serve_ok = %d, want %d", s.ServeOK, keys*dupsPerKey)
	}
}

// TestServe100ConcurrentMixed: 100 concurrent requests across every
// algorithm and several instances, zero failures, and — determinism under
// concurrency — byte-identical bodies within each distinct request.
func TestServe100ConcurrentMixed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const n = 100
	// One distinct request body per (algorithm, instance) pair, each
	// repeated several times across the burst.
	bodies := make(map[string][]byte)
	keys := make([]string, 0, 3*len(Algorithms))
	for _, algo := range Algorithms {
		for seed := int64(0); seed < 3; seed++ {
			k := fmt.Sprintf("%s-%d", algo, seed)
			// Plain A* keeps the whole frontier in memory, so it gets a
			// smaller instance plus a raised node budget; the rest take a
			// slightly larger one.
			if algo == "astar" {
				bodies[k] = inlineRequest(t, algo, 6, 60, 20+seed, map[string]any{"max_nodes": 1 << 23})
			} else {
				bodies[k] = inlineRequest(t, algo, 7, 80, 20+seed, nil)
			}
			keys = append(keys, k)
		}
	}

	type result struct {
		key    string
		status int
		body   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := keys[i%len(keys)]
			resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(bodies[k]))
			if err != nil {
				t.Errorf("request %d (%s): %v", i, k, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i] = result{k, resp.StatusCode, buf.Bytes()}
		}(i)
	}
	wg.Wait()

	first := make(map[string][]byte)
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("request %d (%s): status %d, body %s", i, r.key, r.status, r.body)
		}
		if want, ok := first[r.key]; ok {
			if !bytes.Equal(r.body, want) {
				t.Errorf("request %d (%s) served different bytes than an earlier identical request", i, r.key)
			}
		} else {
			first[r.key] = r.body
		}
		var resp ScheduleResponse
		if err := json.Unmarshal(r.body, &resp); err != nil {
			t.Fatalf("request %d (%s): undecodable body: %v", i, r.key, err)
		}
	}
}
