package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func onlineBody(t *testing.T, extra map[string]any) []byte {
	t.Helper()
	body := map[string]any{"algo": "online-iar", "bench": "antlr", "max_calls": 2000}
	for k, v := range extra {
		body[k] = v
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOnlineScheduleHappyPath: a bounded-window online-iar request answers
// 200 with a committed schedule and a make-span at or above the bound.
func TestOnlineScheduleHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, _, b := post(t, ts.URL, onlineBody(t, map[string]any{"window": 256}))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, b)
	}
	resp := decodeResponse(t, b)
	if resp.Algo != "online-iar" {
		t.Errorf("algo echoed as %q", resp.Algo)
	}
	if resp.MakeSpan < resp.LowerBound || resp.LowerBound <= 0 {
		t.Errorf("make_span %d / lower_bound %d", resp.MakeSpan, resp.LowerBound)
	}
	if len(resp.Schedule) == 0 {
		t.Error("empty schedule")
	}
}

// TestOnlineWindowDistinctCache: the lookahead window is part of the cache
// identity — the same workload at a different window must be a fresh miss,
// not a hit on the other window's response.
func TestOnlineWindowDistinctCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, hdr, b1 := post(t, ts.URL, onlineBody(t, map[string]any{"window": 256}))
	if status != http.StatusOK {
		t.Fatalf("first request: %d %s", status, b1)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	status, hdr, b2 := post(t, ts.URL, onlineBody(t, nil)) // unbounded
	if status != http.StatusOK {
		t.Fatalf("second request: %d %s", status, b2)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Errorf("different window served from cache (X-Cache = %q)", got)
	}
	// And the repeat of the first window is a genuine hit.
	status, hdr, b3 := post(t, ts.URL, onlineBody(t, map[string]any{"window": 256}))
	if status != http.StatusOK {
		t.Fatalf("repeat request: %d %s", status, b3)
	}
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", got)
	}
	if string(b1) != string(b3) {
		t.Error("cache hit body differs from the miss that filled it")
	}
}

// TestOnlineWindowRejectedElsewhere: window is an online-iar knob; other
// algorithms must reject it instead of silently ignoring it.
func TestOnlineWindowRejectedElsewhere(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(map[string]any{"algo": "iar", "bench": "antlr", "window": 256})
	status, _, b := post(t, ts.URL, body)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s; want 400", status, b)
	}
	if !strings.Contains(string(b), "window") {
		t.Errorf("error body %s should mention window", b)
	}
}

// TestOnlineDeadlineMidWindowNoGoroutineLeak: an online run whose deadline
// expires mid-stream — between lookahead windows, with commits already made —
// answers 504, and the worker abandons the replay instead of leaking.
func TestOnlineDeadlineMidWindowNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a deliberately oversized online replay")
	}
	_, ts := newTestServer(t, Options{Workers: 2})
	// Warm the HTTP client/server goroutine pools so the baseline is honest.
	if status, _, b := post(t, ts.URL, onlineBody(t, map[string]any{"window": 256})); status != 200 {
		t.Fatalf("warm-up failed: %d %s", status, b)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// jython's full scaled trace (~295k calls) at a narrow window replans
	// offline IAR hundreds of times — seconds of work, cancelled at 150ms.
	body, _ := json.Marshal(map[string]any{
		"algo": "online-iar", "bench": "jython", "window": 256, "timeout_ms": 150,
	})
	start := time.Now()
	status, _, b := post(t, ts.URL, body)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s; want 504", status, b)
	}
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; the interrupt should land within a stride of the deadline", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal(b, &e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Errorf("error body %q should mention the deadline", b)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, now %d — timed-out online run leaked", baseline, runtime.NumGoroutine())
}
