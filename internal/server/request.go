package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/exact"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Input bounds for inline payloads. They keep a single request's work within
// what one worker can reasonably own; the HTTP body cap rejects most
// oversized payloads before they reach the decoder.
const (
	// MaxInlineCalls bounds an inline trace's call count.
	MaxInlineCalls = 1 << 20
	// MaxInlineFuncs bounds an inline profile's function count.
	MaxInlineFuncs = 1 << 16
	// MaxInlineLevels bounds an inline profile's level count (BnB packs a
	// function's compiled set into one byte, so 8 is also the search limit).
	MaxInlineLevels = 8
	// MaxScale bounds the corpus trace-length multiplier.
	MaxScale = 64.0
)

// customSamplePeriod is the Jikes sampler period assumed for inline
// workloads, matching the bring-your-own-measurements path of the CLI.
const customSamplePeriod = 400000

// Algorithms lists the schedulers a request may ask for, in the order the
// /algorithms endpoint reports them.
var Algorithms = []string{"iar", "astar", "beam", "bnb", "exact", "jikes", "v8", "online-iar"}

// TracePayload is an inline call sequence.
type TracePayload struct {
	// Name is an optional label, echoed back as the response's bench name.
	Name string `json:"name,omitempty"`
	// Calls is the call sequence as dense function IDs.
	Calls []trace.FuncID `json:"calls"`
}

// FuncPayload is one function's timing row of an inline profile.
type FuncPayload struct {
	Name string `json:"name,omitempty"`
	Size int64  `json:"size,omitempty"`
	// Compile[l] / Exec[l] are the per-level compile and per-call execution
	// times in ticks; both must have exactly Levels entries, with compile
	// times non-decreasing and execution times non-increasing across levels.
	Compile []int64 `json:"compile"`
	Exec    []int64 `json:"exec"`
}

// ProfilePayload is an inline timing profile.
type ProfilePayload struct {
	Levels int           `json:"levels"`
	Funcs  []FuncPayload `json:"funcs"`
}

// ScheduleRequest is the POST /schedule payload. Exactly one of Bench or the
// Trace+Profile pair selects the workload.
type ScheduleRequest struct {
	// Algo is the scheduler to run: iar, astar, beam, bnb, exact (the
	// threshold-escalation optimality oracle), jikes, v8, or online-iar (the
	// bounded-lookahead replanning variant).
	Algo string `json:"algo"`
	// Bench names a built-in corpus entry (the synthetic DaCapo suite).
	Bench string `json:"bench,omitempty"`
	// Scale multiplies the corpus trace length (corpus requests only;
	// 0 means 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Trace and Profile carry an inline workload instead of a corpus name.
	Trace   *TracePayload   `json:"trace,omitempty"`
	Profile *ProfilePayload `json:"profile,omitempty"`
	// Model picks the cost-benefit model: "default" (estimated, Jikes-like)
	// or "oracle". Empty means default.
	Model string `json:"model,omitempty"`
	// MaxCalls, when positive, truncates the workload to its first MaxCalls
	// calls — the knob that makes the exact searches (astar, bnb) feasible
	// on corpus entries, as in the paper's §6.2.5 study.
	MaxCalls int `json:"max_calls,omitempty"`
	// TimeoutMS, when positive, bounds the request's wall time; the server
	// clamps it to its configured maximum and answers 504 when it expires.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxNodes, when positive, overrides the search node budget (astar,
	// bnb, and exact only).
	MaxNodes int `json:"max_nodes,omitempty"`
	// BeamWidth, when positive, overrides the beam width (beam only).
	BeamWidth int `json:"beam_width,omitempty"`
	// Window, when positive, bounds the online scheduler's lookahead to that
	// many calls (online-iar only; 0 means unbounded).
	Window int `json:"window,omitempty"`
	// Tenant attributes the request for admission control and per-tenant
	// accounting. The X-Tenant header overrides it; empty means the shared
	// "default" tenant. Tenants never share cache entries.
	Tenant string `json:"tenant,omitempty"`
}

// ScheduleEvent is one compilation event of a returned schedule.
type ScheduleEvent struct {
	Func  int32  `json:"func"`
	Level int    `json:"level"`
	Name  string `json:"name,omitempty"`
}

// SearchStats reports the tree-search counters for astar/beam/bnb/exact
// requests. Conflicts and LearnedClauses are the exact solver's CDCL totals,
// zero (and omitted) for the classic searches.
type SearchStats struct {
	NodesExpanded  int   `json:"nodes_expanded"`
	NodesAllocated int   `json:"nodes_allocated"`
	TableHits      int   `json:"table_hits,omitempty"`
	BoundPruned    int   `json:"bound_pruned,omitempty"`
	Conflicts      int64 `json:"conflicts,omitempty"`
	LearnedClauses int64 `json:"learned_clauses,omitempty"`
	Complete       bool  `json:"complete"`
}

// ScheduleResponse is the POST /schedule result.
type ScheduleResponse struct {
	Algo        string `json:"algo"`
	Bench       string `json:"bench"`
	Calls       int    `json:"calls"`
	UniqueFuncs int    `json:"unique_funcs"`
	// MakeSpan is the simulated finish time of the schedule; LowerBound the
	// §5.2 true-times lower bound on any schedule of the workload; Gap
	// their ratio (1 when the lower bound is zero).
	MakeSpan   int64   `json:"make_span"`
	LowerBound int64   `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	// Bubbles is the total execution-worker stall time inside MakeSpan.
	Bubbles  int64           `json:"bubbles"`
	Schedule []ScheduleEvent `json:"schedule"`
	Search   *SearchStats    `json:"search,omitempty"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// requestError is a client-fault error carrying the HTTP status it maps to.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// decodeScheduleRequest parses and validates a request body. Unknown fields
// are rejected so client typos fail loudly instead of silently running the
// default.
func decodeScheduleRequest(r io.Reader) (*ScheduleRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ScheduleRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &requestError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return nil, badRequest("malformed request: %v", err)
	}
	// A second document in the body is as malformed as a syntax error.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("malformed request: trailing data after the JSON document")
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// validate checks every field against the request contract.
func (req *ScheduleRequest) validate() error {
	algoOK := false
	for _, a := range Algorithms {
		if req.Algo == a {
			algoOK = true
			break
		}
	}
	if !algoOK {
		return badRequest("unknown algorithm %q (want one of iar, astar, beam, bnb, exact, jikes, v8, online-iar)", req.Algo)
	}
	inline := req.Trace != nil || req.Profile != nil
	if inline && req.Bench != "" {
		return badRequest("use either bench or trace+profile, not both")
	}
	if !inline && req.Bench == "" {
		return badRequest("missing workload: set bench or an inline trace+profile pair")
	}
	if inline {
		if req.Trace == nil || req.Profile == nil {
			return badRequest("an inline workload needs both trace and profile")
		}
		if req.Scale != 0 {
			return badRequest("scale applies to corpus benchmarks only")
		}
		if len(req.Trace.Calls) > MaxInlineCalls {
			return badRequest("inline trace has %d calls, limit %d", len(req.Trace.Calls), MaxInlineCalls)
		}
		if len(req.Profile.Funcs) == 0 {
			return badRequest("inline profile has no functions")
		}
		if len(req.Profile.Funcs) > MaxInlineFuncs {
			return badRequest("inline profile has %d functions, limit %d", len(req.Profile.Funcs), MaxInlineFuncs)
		}
		if req.Profile.Levels < 1 || req.Profile.Levels > MaxInlineLevels {
			return badRequest("inline profile levels must be in [1,%d], got %d", MaxInlineLevels, req.Profile.Levels)
		}
	} else {
		if req.Scale < 0 || req.Scale > MaxScale {
			return badRequest("scale must be in (0,%g], got %g", MaxScale, req.Scale)
		}
	}
	if req.Model != "" && req.Model != "default" && req.Model != "oracle" {
		return badRequest("unknown model %q (want default or oracle)", req.Model)
	}
	if req.MaxCalls < 0 {
		return badRequest("max_calls must be non-negative, got %d", req.MaxCalls)
	}
	if req.TimeoutMS < 0 {
		return badRequest("timeout_ms must be non-negative, got %d", req.TimeoutMS)
	}
	if req.MaxNodes < 0 {
		return badRequest("max_nodes must be non-negative, got %d", req.MaxNodes)
	}
	if req.BeamWidth < 0 {
		return badRequest("beam_width must be non-negative, got %d", req.BeamWidth)
	}
	if req.Window < 0 {
		return badRequest("window must be non-negative, got %d", req.Window)
	}
	if req.Window > 0 && req.Algo != "online-iar" {
		return badRequest("window applies to online-iar only")
	}
	if err := validTenant(req.Tenant); err != nil {
		return err
	}
	return nil
}

// tenant resolves the request's effective tenant (DefaultTenant when unset).
func (req *ScheduleRequest) tenant() string {
	if req.Tenant == "" {
		return DefaultTenant
	}
	return req.Tenant
}

// timeout resolves the request's effective deadline against the server's
// default and cap.
func (req *ScheduleRequest) timeout(def, max time.Duration) time.Duration {
	d := def
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > max {
		d = max
	}
	return d
}

// fingerprint renders the request's cache identity through runner.Key, the
// engine's canonical job fingerprint. Corpus workloads are identified by
// name+scale; inline ones by an FNV-64a content hash over the exact trace
// and profile numbers, so equal payloads coalesce and any changed tick
// misses.
func (req *ScheduleRequest) fingerprint() string {
	k := runner.Key{
		Experiment: "serve",
		Benchmark:  req.Bench,
		Scheme:     req.Algo,
		Scale:      req.Scale,
		Detail: fmt.Sprintf("model=%s maxcalls=%d maxnodes=%d beam=%d window=%d tenant=%s inline=%x",
			req.Model, req.MaxCalls, req.MaxNodes, req.BeamWidth, req.Window, req.tenant(), req.contentHash()),
	}
	return k.Fingerprint()
}

// contentHash hashes an inline payload's content (0 for corpus requests).
func (req *ScheduleRequest) contentHash() uint64 {
	if req.Trace == nil || req.Profile == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(req.Trace.Name))
	put(int64(len(req.Trace.Calls)))
	for _, c := range req.Trace.Calls {
		put(int64(c))
	}
	put(int64(req.Profile.Levels))
	for _, f := range req.Profile.Funcs {
		h.Write([]byte(f.Name))
		put(f.Size)
		for _, v := range f.Compile {
			put(v)
		}
		for _, v := range f.Exec {
			put(v)
		}
	}
	return h.Sum64()
}

// workload materializes the request's trace and profile: a corpus entry
// loaded at the requested scale, or the inline payload validated into the
// library types. MaxCalls truncation happens here so everything downstream
// (fingerprint excepted — it already encodes MaxCalls) sees the final
// instance.
func (req *ScheduleRequest) workload() (*dacapo.Workload, error) {
	var w *dacapo.Workload
	if req.Bench != "" {
		b, err := dacapo.ByName(req.Bench)
		if err != nil {
			return nil, &requestError{status: 404, msg: err.Error()}
		}
		scale := req.Scale
		if scale == 0 {
			scale = 1.0
		}
		w, err = b.Load(scale)
		if err != nil {
			return nil, badRequest("loading %s: %v", req.Bench, err)
		}
	} else {
		p := &profile.Profile{Levels: req.Profile.Levels, Funcs: make([]profile.FuncTimes, len(req.Profile.Funcs))}
		for i, f := range req.Profile.Funcs {
			size := f.Size
			if size == 0 {
				size = 1
			}
			p.Funcs[i] = profile.FuncTimes{Name: f.Name, Size: size, Compile: f.Compile, Exec: f.Exec}
		}
		if err := p.Validate(); err != nil {
			return nil, badRequest("inline profile: %v", err)
		}
		tr := trace.New(req.Trace.Name, req.Trace.Calls)
		if err := tr.Validate(p.NumFuncs()); err != nil {
			return nil, badRequest("inline trace: %v", err)
		}
		name := tr.Name
		if name == "" {
			name = "inline"
		}
		w = &dacapo.Workload{
			Bench:   dacapo.Benchmark{Name: name, Funcs: p.NumFuncs(), SamplePeriod: customSamplePeriod},
			Trace:   tr,
			Profile: p,
		}
	}
	if req.MaxCalls > 0 && req.MaxCalls < w.Trace.Len() {
		w.Trace = w.Trace.Slice(0, req.MaxCalls)
	}
	return w, nil
}

// execute runs the requested algorithm on the workload under ctx and builds
// the response. Search algorithms observe ctx directly; simulator replays
// observe it through Options.Interrupt. Cancellation surfaces as a ctx-style
// error the handler maps to 504/503. arena backs the iar path (nil means a
// fresh arena); the schedule it produces aliases the arena but is consumed —
// simulated and marshalled — before execute's caller returns. m, which may
// be nil, receives the online scheduler's cost accounting.
func execute(ctx context.Context, req *ScheduleRequest, w *dacapo.Workload, arena *core.IARArena, m *obs.Metrics) (*ScheduleResponse, error) {
	tr, p := w.Trace, w.Profile
	var model profile.CostModel
	if req.Model == "oracle" {
		model = w.Oracle()
	} else {
		model = w.DefaultModel()
	}
	cfg := sim.Config{CompileWorkers: 1}
	opts := sim.Options{Interrupt: ctx.Done()}

	// The reported bound is always the §5.2 bound over the true times —
	// the model only steers the schedulers that consume it (iar, jikes);
	// reporting a bound computed from estimated times could place the gap
	// below 1 and mean nothing.
	resp := &ScheduleResponse{
		Algo:        req.Algo,
		Bench:       w.Bench.Name,
		Calls:       tr.Len(),
		UniqueFuncs: tr.UniqueFuncs(),
		LowerBound:  core.LowerBound(tr, p),
	}

	var (
		sched  sim.Schedule
		simRes *sim.Result
		err    error
	)
	switch req.Algo {
	case "iar":
		if arena == nil {
			arena = core.NewIARArena()
		}
		sched, err = arena.IAR(tr, p, core.IAROptions{Model: model})
		if err != nil {
			return nil, badRequest("iar: %v", err)
		}
	case "online-iar":
		var res *online.Result
		res, err = online.Run(tr, p, online.NewIAR(p, core.IAROptions{Model: model}, 0), online.Options{
			Window:    req.Window,
			Config:    cfg,
			Interrupt: ctx.Done(),
			Metrics:   m,
		})
		if err != nil {
			if errors.Is(err, sim.ErrInterrupted) {
				return nil, err
			}
			return nil, badRequest("online-iar: %v", err)
		}
		sched = res.Schedule
		simRes = res.Sim
	case "astar", "beam", "bnb":
		var sr *astar.Result
		switch req.Algo {
		case "astar":
			sr, err = astar.SearchContext(ctx, tr, p, astar.Options{MaxNodes: req.MaxNodes})
		case "beam":
			sr, err = astar.BeamSearchContext(ctx, tr, p, astar.BeamOptions{Width: req.BeamWidth, Workers: 1})
		case "bnb":
			sr, err = astar.BnBSearchContext(ctx, tr, p, astar.BnBOptions{MaxNodes: req.MaxNodes, Workers: 1})
		}
		if err != nil {
			if errors.Is(err, astar.ErrCancelled) {
				return nil, err
			}
			if errors.Is(err, astar.ErrBudgetExhausted) {
				return nil, &requestError{status: 422,
					msg: fmt.Sprintf("%s: %v (the instance is beyond the search budget; lower max_calls or raise max_nodes)", req.Algo, err)}
			}
			return nil, badRequest("%s: %v", req.Algo, err)
		}
		sched = sr.Schedule
		resp.Search = &SearchStats{
			NodesExpanded:  sr.NodesExpanded,
			NodesAllocated: sr.NodesAllocated,
			TableHits:      sr.TableHits,
			BoundPruned:    sr.BoundPruned,
			Complete:       sr.Complete,
		}
	case "exact":
		var er *exact.Result
		er, err = exact.SolveContext(ctx, tr, p, exact.Options{MaxNodes: req.MaxNodes})
		if err != nil {
			if errors.Is(err, exact.ErrCancelled) {
				return nil, err
			}
			if errors.Is(err, exact.ErrBudgetExhausted) {
				return nil, &requestError{status: 422,
					msg: fmt.Sprintf("exact: %v (the instance is beyond the search budget; lower max_calls or raise max_nodes)", err)}
			}
			return nil, badRequest("exact: %v", err)
		}
		sched = er.Schedule
		resp.Search = &SearchStats{
			NodesExpanded:  er.NodesExpanded,
			NodesAllocated: er.NodesAllocated,
			TableHits:      er.TableHits,
			BoundPruned:    er.BoundPruned,
			Conflicts:      er.Conflicts,
			LearnedClauses: er.LearnedClauses,
			Complete:       er.Complete,
		}
	case "jikes":
		pol, perr := policy.NewJikes(model, p.NumFuncs(), w.Bench.SamplePeriod)
		if perr != nil {
			return nil, badRequest("jikes: %v", perr)
		}
		simRes, err = sim.RunPolicy(tr, p, pol, cfg, opts)
		if err != nil {
			return nil, err
		}
	case "v8":
		p2, perr := p.Restrict(0, 1)
		if perr != nil {
			return nil, badRequest("v8: %v", perr)
		}
		pol, perr := policy.NewV8(1)
		if perr != nil {
			return nil, badRequest("v8: %v", perr)
		}
		simRes, err = sim.RunPolicy(tr, p2, pol, cfg, opts)
		if err != nil {
			return nil, err
		}
		p = p2
		resp.LowerBound = core.LowerBound(tr, p2)
	}

	if simRes == nil {
		// Static schedules (iar and the searches) are replayed once to
		// report the make-span and stall breakdown.
		simRes, err = sim.Run(tr, p, sched, cfg, opts)
		if err != nil {
			return nil, err
		}
	}
	resp.MakeSpan = simRes.MakeSpan
	resp.Bubbles = simRes.TotalBubble
	if resp.LowerBound > 0 {
		resp.Gap = float64(resp.MakeSpan) / float64(resp.LowerBound)
	} else {
		resp.Gap = 1
	}
	if sched == nil {
		// Online policies produce their schedule as a side effect; report it
		// in compilation-start order.
		for _, c := range simRes.Compiles {
			sched = append(sched, c.Event)
		}
	}
	resp.Schedule = make([]ScheduleEvent, len(sched))
	for i, ev := range sched {
		e := ScheduleEvent{Func: int32(ev.Func), Level: int(ev.Level)}
		if int(ev.Func) < len(p.Funcs) {
			e.Name = p.Funcs[ev.Func].Name
		}
		resp.Schedule[i] = e
	}
	return resp, nil
}

// marshalResponse renders the response body exactly as it will be cached and
// served: canonical JSON plus a trailing newline, so every byte a cache hit
// serves matches the miss that filled it.
func marshalResponse(resp *ScheduleResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
