package server

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlightUnderEvictionPressure is the regression for the bug
// this cache rewrite fixes: with capacity 1 and two fingerprints interleaved
// across many concurrent duplicates, the old recency-only eviction would
// drop an in-flight leader's entry, a duplicate would elect a second leader,
// and the same work would compute twice. With in-flight entries pinned,
// exactly one compute per fingerprint must happen, and every waiter must see
// that compute's exact bytes. Run under -race (the full suite is).
func TestCacheSingleFlightUnderEvictionPressure(t *testing.T) {
	const (
		keys       = 2
		dupsPerKey = 64
	)
	c := newShardedCache(1)
	var computes [keys]atomic.Int64
	bodies := [keys][]byte{[]byte("body-0"), []byte("body-1")}

	// Every goroutine checks in after begin; leaders hold their computation
	// until all begins have landed, so every duplicate arrives while its
	// fingerprint is in flight — the exact window where the old recency-only
	// eviction would drop the leader's entry and let a second leader through.
	var begun sync.WaitGroup
	begun.Add(keys * dupsPerKey)
	var wg sync.WaitGroup
	got := make([][]byte, keys*dupsPerKey)
	for i := 0; i < keys*dupsPerKey; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := i % keys // interleave the two fingerprints
			key := fmt.Sprintf("fp-%d", k)
			e, state := c.begin(key)
			begun.Done()
			if state == beginLead {
				begun.Wait()
				computes[k].Add(1)
				c.complete(key, e, bodies[k], nil)
			}
			<-e.ready
			if e.err != nil {
				t.Errorf("waiter %d: unexpected error %v", i, e.err)
				return
			}
			got[i] = e.body
		}(i)
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("fingerprint %d computed %d times, want exactly 1", k, n)
		}
	}
	for i, b := range got {
		if want := bodies[i%keys]; !bytes.Equal(b, want) {
			t.Errorf("waiter %d got %q, want %q", i, b, want)
		}
	}
	if n := c.len(); n > 1 {
		t.Errorf("cap-1 cache settled at %d entries, want <= 1", n)
	}
}

// TestCacheInFlightPinnedAgainstEviction: a burst of distinct completed keys
// cannot evict a live leader — its entry survives until complete, and a
// duplicate arriving mid-flight coalesces instead of leading.
func TestCacheInFlightPinnedAgainstEviction(t *testing.T) {
	c := newShardedCache(1)
	leaderEntry, state := c.begin("leader")
	if state != beginLead {
		t.Fatalf("first begin = %v, want lead", state)
	}
	// Hammer the cache with distinct keys while the leader is in flight.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("filler-%d", i)
		e, st := c.begin(k)
		if st != beginLead {
			t.Fatalf("filler %d: state %v, want lead", i, st)
		}
		c.complete(k, e, []byte("filler"), nil)
	}
	e2, state2 := c.begin("leader")
	if state2 != beginCoalesced {
		t.Fatalf("duplicate of in-flight leader: state %v, want coalesced", state2)
	}
	if e2 != leaderEntry {
		t.Fatal("duplicate got a different entry than the in-flight leader")
	}
	c.complete("leader", leaderEntry, []byte("led"), nil)
	// After completion the entry is eviction-eligible like any other.
	if _, state3 := c.begin("leader"); state3 != beginHit {
		t.Fatalf("post-complete begin = %v, want hit", state3)
	}
}

// TestCacheBeginStates: the three states map to their X-Cache values and
// arise exactly when documented.
func TestCacheBeginStates(t *testing.T) {
	c := newShardedCache(8)
	e, st := c.begin("k")
	if st != beginLead || st.String() != "miss" {
		t.Fatalf("fresh key: %v (%q), want lead/miss", st, st)
	}
	if _, st2 := c.begin("k"); st2 != beginCoalesced || st2.String() != "coalesced" {
		t.Fatalf("in-flight key: %v, want coalesced", st2)
	}
	c.complete("k", e, []byte("x"), nil)
	if _, st3 := c.begin("k"); st3 != beginHit || st3.String() != "hit" {
		t.Fatalf("completed key: %v, want hit", st3)
	}
}

// TestCacheErroredEntryEvicted: a failed leader does not poison the key.
func TestCacheErroredEntryEvicted(t *testing.T) {
	c := newShardedCache(8)
	e, _ := c.begin("k")
	c.complete("k", e, nil, fmt.Errorf("boom"))
	if e.err == nil {
		t.Fatal("waiters holding the entry must still observe the error")
	}
	if _, st := c.begin("k"); st != beginLead {
		t.Fatalf("after an errored completion begin = %v, want a fresh leader", st)
	}
}

// TestCacheLenCountsInFlightSeparately: len includes in-flight leaders,
// lenCompleted only actually cached results — the distinction the old
// single-counter len() blurred.
func TestCacheLenCountsInFlightSeparately(t *testing.T) {
	c := newShardedCache(8)
	e1, _ := c.begin("a")
	if c.len() != 1 || c.lenCompleted() != 0 {
		t.Fatalf("in-flight: len=%d lenCompleted=%d, want 1/0", c.len(), c.lenCompleted())
	}
	c.complete("a", e1, []byte("x"), nil)
	if c.len() != 1 || c.lenCompleted() != 1 {
		t.Fatalf("completed: len=%d lenCompleted=%d, want 1/1", c.len(), c.lenCompleted())
	}
}

// TestCacheDisabled: non-positive capacity disables caching but keeps the
// single-flight entry contract per call.
func TestCacheDisabled(t *testing.T) {
	for _, cap := range []int{0, -1} {
		c := newShardedCache(cap)
		e, st := c.begin("k")
		if st != beginLead {
			t.Fatalf("cap %d: begin = %v, want lead", cap, st)
		}
		c.complete("k", e, []byte("x"), nil)
		if _, st2 := c.begin("k"); st2 != beginLead {
			t.Fatalf("cap %d: second begin = %v, want lead (nothing cached)", cap, st2)
		}
		if c.len() != 0 || c.lenCompleted() != 0 {
			t.Fatalf("cap %d: disabled cache holds entries", cap)
		}
	}
}

// TestCacheShardSizing: the shard count stays a power of two, never exceeds
// the capacity, and the per-shard capacities sum to at least the requested
// total.
func TestCacheShardSizing(t *testing.T) {
	for _, tc := range []struct{ cap, wantShards int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {15, 8}, {16, 16}, {256, 16}, {1000, 16},
	} {
		c := newShardedCache(tc.cap)
		if len(c.shards) != tc.wantShards {
			t.Errorf("cap %d: %d shards, want %d", tc.cap, len(c.shards), tc.wantShards)
		}
		total := 0
		for i := range c.shards {
			total += c.shards[i].cap
		}
		if total < tc.cap {
			t.Errorf("cap %d: shard capacities sum to %d", tc.cap, total)
		}
	}
}

// TestCacheShardStats: the per-shard counters account for hits, coalesces,
// leads, and evictions, and every key maps to a stable shard.
func TestCacheShardStats(t *testing.T) {
	c := newShardedCache(64)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k-%d", i)
		if got, again := c.shardIndex(key), c.shardIndex(key); got != again || got < 0 || got >= len(c.shards) {
			t.Fatalf("shardIndex(%q) unstable or out of range: %d, %d", key, got, again)
		}
		e, _ := c.begin(key)
		c.complete(key, e, []byte("x"), nil)
		c.begin(key) // hit
	}
	var leads, hits int64
	for _, s := range c.stats() {
		leads += s.Leads
		hits += s.Hits
	}
	if leads != 32 || hits != 32 {
		t.Errorf("stats: leads=%d hits=%d, want 32/32", leads, hits)
	}
}

// TestCacheConcurrentMixedKeys: many goroutines over many keys with a small
// cache — no lost updates, no second leaders racing an in-flight one, all
// bodies consistent. Primarily a -race exercise for the sharded locking.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := newShardedCache(4)
	const (
		keys    = 16
		workers = 8
		rounds  = 50
	)
	var inflight [keys]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				key := fmt.Sprintf("k-%d", k)
				e, st := c.begin(key)
				if st == beginLead {
					if n := inflight[k].Add(1); n != 1 {
						t.Errorf("key %d: %d concurrent leaders", k, n)
					}
					inflight[k].Add(-1)
					c.complete(key, e, []byte(key), nil)
				}
				<-e.ready
				if !bytes.Equal(e.body, []byte(key)) {
					t.Errorf("key %d: body %q", k, e.body)
				}
			}
		}(w)
	}
	wg.Wait()
}
