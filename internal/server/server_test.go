package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// newTestServer builds a Server plus an httptest front end and registers
// teardown in the right order (listener first, then the pool).
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Metrics == nil {
		// A private sink per test: assertions on counters must not see other
		// tests' traffic.
		opts.Metrics = &obs.Metrics{}
	}
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, ts
}

// inlineRequest renders a §6.2.5-style random instance as a /schedule
// payload for the given algorithm.
func inlineRequest(t *testing.T, algo string, nf, calls int, seed int64, extra map[string]any) []byte {
	t.Helper()
	tr, p := experiments.AStarInstance(nf, calls, seed)
	funcs := make([]map[string]any, len(p.Funcs))
	for i, f := range p.Funcs {
		funcs[i] = map[string]any{"compile": f.Compile, "exec": f.Exec, "size": f.Size}
	}
	body := map[string]any{
		"algo":    algo,
		"trace":   map[string]any{"name": fmt.Sprintf("inline-%d-%d-%d", nf, calls, seed), "calls": tr.Calls},
		"profile": map[string]any{"levels": p.Levels, "funcs": funcs},
	}
	for k, v := range extra {
		body[k] = v
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// post sends one /schedule request and returns status, headers, and body.
func post(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /schedule: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

func decodeResponse(t *testing.T, b []byte) *ScheduleResponse {
	t.Helper()
	var resp ScheduleResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding response %q: %v", b, err)
	}
	return &resp
}

// TestScheduleHappyPathAllAlgorithms: every algorithm answers 200 with a
// consistent response — make-span at or above the lower bound, a non-empty
// schedule, and search counters for the tree searches.
func TestScheduleHappyPathAllAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, algo := range Algorithms {
		t.Run(algo, func(t *testing.T) {
			var body []byte
			switch algo {
			case "astar", "beam", "bnb", "exact":
				body = inlineRequest(t, algo, 6, 60, 3, nil)
			default:
				body, _ = json.Marshal(map[string]any{"algo": algo, "bench": "antlr", "max_calls": 300})
			}
			status, hdr, b := post(t, ts.URL, body)
			if status != http.StatusOK {
				t.Fatalf("status = %d, body %s", status, b)
			}
			if got := hdr.Get("X-Cache"); got != "miss" {
				t.Errorf("X-Cache = %q, want miss on first request", got)
			}
			resp := decodeResponse(t, b)
			if resp.Algo != algo {
				t.Errorf("algo echoed as %q", resp.Algo)
			}
			if resp.MakeSpan <= 0 || resp.LowerBound <= 0 {
				t.Errorf("make_span %d / lower_bound %d, want both positive", resp.MakeSpan, resp.LowerBound)
			}
			if resp.Gap < 1 {
				t.Errorf("gap %g < 1: make-span beat the lower bound", resp.Gap)
			}
			if len(resp.Schedule) == 0 {
				t.Error("empty schedule")
			}
			switch algo {
			case "astar", "beam", "bnb", "exact":
				if resp.Search == nil {
					t.Fatal("no search stats for a tree search")
				}
				if algo != "beam" && !resp.Search.Complete {
					t.Errorf("%s did not prove optimality on a 6-function instance", algo)
				}
			default:
				if resp.Search != nil {
					t.Errorf("unexpected search stats: %+v", resp.Search)
				}
			}
		})
	}
}

// TestScheduleCacheHitIsByteIdentical: the second identical request is served
// from cache (header flips to hit) with the exact same bytes.
func TestScheduleCacheHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := inlineRequest(t, "bnb", 6, 60, 4, nil)
	status1, hdr1, b1 := post(t, ts.URL, body)
	status2, hdr2, b2 := post(t, ts.URL, body)
	if status1 != 200 || status2 != 200 {
		t.Fatalf("statuses %d, %d", status1, status2)
	}
	if hdr1.Get("X-Cache") != "miss" || hdr2.Get("X-Cache") != "hit" {
		t.Errorf("X-Cache sequence = %q, %q; want miss, hit", hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cache hit served different bytes:\n%s\n%s", b1, b2)
	}
}

func TestScheduleMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"syntax":        `{nope`,
		"empty":         ``,
		"trailing":      `{"algo":"iar","bench":"antlr"} garbage`,
		"second-doc":    `{"algo":"iar","bench":"antlr"}{"algo":"iar"}`,
		"unknown-field": `{"algo":"iar","bench":"antlr","frobnicate":1}`,
		"wrong-type":    `{"algo":"iar","bench":"antlr","max_calls":"many"}`,
	} {
		t.Run(name, func(t *testing.T) {
			status, _, b := post(t, ts.URL, []byte(body))
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s; want 400", status, b)
			}
			var e errorResponse
			if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not a JSON error document", b)
			}
		})
	}
}

func TestScheduleValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{"unknown-algo", `{"algo":"quantum","bench":"antlr"}`, 400, "unknown algorithm"},
		{"no-workload", `{"algo":"iar"}`, 400, "missing workload"},
		{"both-workloads", `{"algo":"iar","bench":"antlr","trace":{"calls":[0]},"profile":{"levels":1,"funcs":[{"compile":[1],"exec":[1]}]}}`, 400, "not both"},
		{"trace-only", `{"algo":"iar","trace":{"calls":[0]}}`, 400, "both trace and profile"},
		{"unknown-bench", `{"algo":"iar","bench":"avrora"}`, 404, "unknown benchmark"},
		{"bad-scale", `{"algo":"iar","bench":"antlr","scale":-1}`, 400, "scale"},
		{"scale-on-inline", `{"algo":"iar","scale":2,"trace":{"calls":[0]},"profile":{"levels":1,"funcs":[{"compile":[1],"exec":[1]}]}}`, 400, "corpus benchmarks only"},
		{"bad-model", `{"algo":"iar","bench":"antlr","model":"psychic"}`, 400, "unknown model"},
		{"negative-timeout", `{"algo":"iar","bench":"antlr","timeout_ms":-5}`, 400, "timeout_ms"},
		{"call-out-of-range", `{"algo":"iar","trace":{"calls":[7]},"profile":{"levels":1,"funcs":[{"compile":[1],"exec":[1]}]}}`, 400, "inline trace"},
		{"decreasing-compile", `{"algo":"iar","trace":{"calls":[0]},"profile":{"levels":2,"funcs":[{"compile":[5,1],"exec":[2,1]}]}}`, 400, "inline profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, b := post(t, ts.URL, []byte(tc.body))
			if status != tc.status {
				t.Fatalf("status = %d, body %s; want %d", status, b, tc.status)
			}
			var e errorResponse
			if err := json.Unmarshal(b, &e); err != nil {
				t.Fatalf("error body %q is not JSON", b)
			}
			if !strings.Contains(e.Error, tc.substr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.substr)
			}
		})
	}
}

// TestScheduleOversizedPayload: bodies beyond MaxBodyBytes bounce with 413.
func TestScheduleOversizedPayload(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 2048})
	body := inlineRequest(t, "iar", 8, 4000, 1, nil)
	if len(body) <= 2048 {
		t.Fatalf("test payload is only %d bytes, need > 2048", len(body))
	}
	status, _, b := post(t, ts.URL, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s; want 413", status, b)
	}
}

// TestScheduleInfeasibleSearch: a search instance beyond the node budget
// answers 422 with actionable guidance, not a 500.
func TestScheduleInfeasibleSearch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(map[string]any{"algo": "astar", "bench": "antlr", "max_calls": 300})
	status, _, b := post(t, ts.URL, body)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, body %s; want 422", status, b)
	}
	var e errorResponse
	if err := json.Unmarshal(b, &e); err != nil || !strings.Contains(e.Error, "max_calls") {
		t.Errorf("error body %q should suggest lowering max_calls", b)
	}
}

// TestScheduleTimeoutNoGoroutineLeak: a search that cannot finish inside its
// timeout_ms answers 504, and the worker goroutine actually abandons the
// search — the process's goroutine count settles back to its baseline.
func TestScheduleTimeoutNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a deliberately oversized search")
	}
	_, ts := newTestServer(t, Options{Workers: 2})
	// Warm the HTTP client/server goroutine pools with a small request so
	// the baseline below is honest.
	warm := inlineRequest(t, "bnb", 5, 40, 1, nil)
	if status, _, b := post(t, ts.URL, warm); status != 200 {
		t.Fatalf("warm-up failed: %d %s", status, b)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// ~10s of branch-and-bound if left alone (see the feasibility-frontier
	// study: 13 functions is past the knee), cancelled at 150ms.
	body := inlineRequest(t, "bnb", 13, 400, 7, map[string]any{
		"timeout_ms": 150,
		"max_nodes":  1 << 24,
	})
	start := time.Now()
	status, _, b := post(t, ts.URL, body)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s; want 504", status, b)
	}
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; cancellation should land within a stride of the deadline", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal(b, &e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Errorf("error body %q should mention the deadline", b)
	}

	// The search goroutine must actually exit, not keep burning CPU.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, now %d — timed-out search leaked", baseline, runtime.NumGoroutine())
}

// TestScheduleQueueBackpressure: with one worker and a one-slot queue, a
// third concurrent distinct request bounces with 429 instead of buffering.
func TestScheduleQueueBackpressure(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Metrics: m})
	// 13-function instances run for >= 5s when left alone (past the
	// feasibility knee), so each reliably pins the single worker long past
	// the 100ms stagger below; the timeout reclaims them quickly afterwards.
	slow := func(seed int64) []byte {
		return inlineRequest(t, "bnb", 13, 400, seed, map[string]any{
			"timeout_ms": 1500, "max_nodes": 1 << 24,
		})
	}
	results := make(chan int, 2)
	for i := int64(0); i < 2; i++ {
		body := slow(100 + i)
		go func() {
			status, _, _ := post(t, ts.URL, body)
			results <- status
		}()
		time.Sleep(100 * time.Millisecond) // let it occupy the worker / the queue slot
	}
	status, _, b := post(t, ts.URL, slow(999))
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request: status = %d, body %s; want 429", status, b)
	}
	for i := 0; i < 2; i++ {
		select {
		case s := <-results:
			if s != 200 && s != http.StatusGatewayTimeout {
				t.Errorf("slow request finished with %d, want 200 or 504", s)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("slow request never finished")
		}
	}
	if got := m.Snapshot().ServeRejected; got < 1 {
		t.Errorf("serve_rejected = %d, want >= 1", got)
	}
}

// TestScheduleDrainingReturns503: after Shutdown the handler refuses new
// work with 503 instead of hanging or panicking.
func TestScheduleDrainingReturns503(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	srv.Shutdown()
	status, _, b := post(t, ts.URL, inlineRequest(t, "iar", 4, 20, 1, nil))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s; want 503", status, b)
	}
}

func TestScheduleWrongMethod(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule = %d, want 405", resp.StatusCode)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Algorithms) != len(Algorithms) {
		t.Fatalf("got %v, want %v", out.Algorithms, Algorithms)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 9 {
		t.Fatalf("got %d benchmarks (%v), want the 9 synthetic DaCapo entries", len(out.Benchmarks), out.Benchmarks)
	}
}

// TestMetricsEndpointRidesAlong: the obs surface is mounted on the same
// listener and reflects serve traffic.
func TestMetricsEndpointRidesAlong(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/metrics", "/healthz", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestMetricsExposesArenaAndDispatchKeys: the /metrics document carries the
// IAR-arena and adaptive-dispatch counters, and serving an iar request over
// this very server moves the run counters it reports.
func TestMetricsExposesArenaAndDispatchKeys(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post(t, ts.URL, inlineRequest(t, "iar", 5, 30, 9, nil))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"iar_arenas", "iar_runs", "iar_warm_runs",
		"search_dispatch_serial", "search_dispatch_parallel", "search_speedup_milli",
		"exact_solves", "exact_conflicts", "exact_learned_clauses",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	// The iar request above ran on a worker's arena; the process-wide run
	// counter the endpoint snapshots must already include it.
	if runs, ok := doc["iar_runs"].(float64); !ok || runs < 1 {
		t.Errorf("iar_runs = %v, want >= 1 after an iar request", doc["iar_runs"])
	}
}

// TestServeMetricsAccounting: the serve counters add up for a simple
// miss + hit + reject-free sequence.
func TestServeMetricsAccounting(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{Metrics: m})
	body := inlineRequest(t, "iar", 5, 30, 9, nil)
	post(t, ts.URL, body)
	post(t, ts.URL, body)
	post(t, ts.URL, []byte(`{nope`))
	s := m.Snapshot()
	if s.ServeRequests != 3 || s.ServeOK != 2 || s.ServeErrors != 1 || s.ServeCacheHits != 1 {
		t.Errorf("snapshot = %+v, want requests=3 ok=2 errors=1 cache_hits=1", s)
	}
	if s.ServeQueueDepth != 0 {
		t.Errorf("queue depth gauge = %d after drain, want 0", s.ServeQueueDepth)
	}
}
