// Package server exposes the scheduling engine as an HTTP service: POST a
// trace+profile payload (inline or a named corpus entry) plus an algorithm
// name, get back the schedule, its simulated make-span, and the gap to the
// §5 lower bound.
//
// The service is deliberately boring in shape — a bounded queue in front of
// a fixed worker pool, an LRU single-flight response cache keyed by the
// engine's canonical job fingerprint, and cooperative cancellation threaded
// through every search — because the point is to demonstrate that the
// engine's determinism survives concurrency: identical requests produce
// byte-identical response bodies whether they were computed, coalesced onto
// an in-flight leader, or served from cache.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Defaults for Options zero values.
const (
	DefaultWorkers        = 4
	DefaultQueueDepth     = 64
	DefaultCacheSize      = 256
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxTimeout     = 2 * time.Minute
	DefaultMaxBodyBytes   = 8 << 20
	DefaultMaxBatchItems  = 64
)

// errDeadline is the cancellation cause installed by the per-request timeout;
// requests that die of it answer 504.
var errDeadline = errors.New("server: request deadline exceeded")

// errDraining is the cancellation cause installed by Shutdown; requests that
// die of it answer 503.
var errDraining = errors.New("server: shutting down")

// Options configures a Server. Zero values take the package defaults.
type Options struct {
	// Workers is the number of goroutines computing schedules.
	Workers int
	// QueueDepth bounds the requests waiting for a worker; beyond it the
	// server answers 429 instead of buffering unboundedly.
	QueueDepth int
	// CacheSize is the LRU response-cache capacity in entries; negative
	// disables caching (zero means DefaultCacheSize).
	CacheSize int
	// DefaultTimeout applies when a request does not set timeout_ms;
	// MaxTimeout clamps whatever the request asks for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps the request body; larger payloads answer 413.
	MaxBodyBytes int64
	// TenantRate, when positive, is the per-tenant sustained request rate in
	// requests/second (token bucket; TenantBurst is its depth, defaulting to
	// max(1, TenantRate)). TenantMaxInFlight, when positive, caps a tenant's
	// concurrently processing requests. Exceeding either answers 429 with a
	// Retry-After header. Zero values disable admission control.
	TenantRate        float64
	TenantBurst       int
	TenantMaxInFlight int
	// MaxBatchItems caps the items of one POST /schedule/batch envelope
	// (zero means DefaultMaxBatchItems).
	MaxBatchItems int
	// Metrics receives the service counters (nil is safe and means the
	// process-wide default sink).
	Metrics *obs.Metrics
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = DefaultRequestTimeout
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = DefaultMaxTimeout
	}
	if o.DefaultTimeout > o.MaxTimeout {
		o.DefaultTimeout = o.MaxTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = DefaultMaxBatchItems
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
	return o
}

// job is one leader request handed to the worker pool.
type job struct {
	req      *ScheduleRequest
	key      string
	entry    *cacheEntry
	enqueued time.Time
}

// Server is the scheduling service: an http.Handler plus the worker pool
// behind it.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	cache   *shardedCache
	tenants *tenantGovernor
	// qmu guards enqueues against Shutdown's close: senders hold it shared
	// and re-check draining, Shutdown closes the channel holding it
	// exclusively, so a send can never race the close.
	qmu      sync.RWMutex
	queue    chan job
	wg       sync.WaitGroup
	draining atomic.Bool
	shutdown sync.Once
	rootCtx  context.Context
	cancel   context.CancelCauseFunc
	m        *obs.Metrics
}

// New builds a Server and starts its worker pool. Callers must Shutdown it
// to release the workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		cache: newShardedCache(opts.CacheSize),
		tenants: newTenantGovernor(tenantLimits{
			Rate:        opts.TenantRate,
			Burst:       opts.TenantBurst,
			MaxInFlight: opts.TenantMaxInFlight,
		}),
		queue: make(chan job, opts.QueueDepth),
		m:     opts.Metrics,
	}
	s.rootCtx, s.cancel = context.WithCancelCause(context.Background())
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /schedule/batch", s.handleBatch)
	s.mux.HandleFunc("GET /algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /benchmarks", s.handleBenchmarks)
	// The observability surface rides along on the same listener. It is
	// mounted on its concrete paths, not "/": a catch-all would swallow
	// method mismatches (GET /schedule should be 405, not the obs 404).
	oh := obs.Handler()
	s.mux.Handle("GET /metrics", oh)
	s.mux.Handle("GET /healthz", oh)
	s.mux.Handle("GET /debug/", oh)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: new scheduling requests are bounced with 503,
// queued and running jobs are cancelled (their waiters get 503/504), and the
// worker pool is joined. It is idempotent and safe to call concurrently with
// requests.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() {
		s.cancel(errDraining)
		s.qmu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.qmu.Unlock()
	})
	s.wg.Wait()
}

// worker is the pool loop: pop, compute under the request's deadline,
// publish into the cache entry. Each worker owns one IAR arena for the life
// of the pool — jobs run serially on the worker, so every IAR job after the
// first reuses warm buffers instead of allocating fresh working state.
func (s *Server) worker() {
	defer s.wg.Done()
	arena := core.NewIARArena()
	for j := range s.queue {
		s.m.ServeQueue(-1)
		s.m.ServeQueueWait(time.Since(j.enqueued))
		s.runJob(j, arena)
	}
}

// enqueue offers j to the worker pool without blocking, reporting whether it
// was accepted. It holds qmu shared so the send cannot race Shutdown's close.
func (s *Server) enqueue(j job) bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- j:
		s.m.ServeQueue(1)
		return true
	default:
		return false
	}
}

// runJob computes one leader request and completes its cache entry.
func (s *Server) runJob(j job, arena *core.IARArena) {
	d := j.req.timeout(s.opts.DefaultTimeout, s.opts.MaxTimeout)
	// The deadline covers queue wait too — a request is a promise to answer
	// within its budget, not to start within it.
	d -= time.Since(j.enqueued)
	if d <= 0 {
		s.cache.complete(j.key, j.entry, nil, fmt.Errorf("%w: %w", astar.ErrCancelled, errDeadline))
		return
	}
	ctx, cancel := context.WithTimeoutCause(s.rootCtx, d, errDeadline)
	defer cancel()
	body, err := s.compute(ctx, j.req, arena)
	s.cache.complete(j.key, j.entry, body, err)
}

// compute runs the request and marshals the response body. The response is
// fully marshalled before compute returns, so a schedule aliasing the
// worker's arena never outlives its validity window.
func (s *Server) compute(ctx context.Context, req *ScheduleRequest, arena *core.IARArena) ([]byte, error) {
	w, err := req.workload()
	if err != nil {
		return nil, err
	}
	resp, err := execute(ctx, req, w, arena, s.m)
	if err != nil {
		// The simulator's interrupt sentinel does not carry the cause; graft
		// it on so the handler can tell a deadline from a drain.
		if errors.Is(err, sim.ErrInterrupted) {
			if c := context.Cause(ctx); c != nil {
				err = fmt.Errorf("%w: %w", err, c)
			}
		}
		return nil, err
	}
	return marshalResponse(resp)
}

// applyTenantHeader merges the X-Tenant header into the decoded request; the
// header wins over the body's tenant field.
func applyTenantHeader(req *ScheduleRequest, r *http.Request) error {
	if h := r.Header.Get("X-Tenant"); h != "" {
		if err := validTenant(h); err != nil {
			return err
		}
		req.Tenant = h
	}
	return nil
}

// admitTenant runs admission control for one request and writes the 429
// (with Retry-After) on rejection. The returned release must be called when
// the request finishes processing; ok=false means the response is written.
func (s *Server) admitTenant(w http.ResponseWriter, tenant string) (release func(), ok bool) {
	s.m.ServeTenant(tenant)
	release, retryAfter, ok := s.tenants.admit(tenant)
	if !ok {
		s.m.ServeRejected()
		s.m.ServeTenantRejected(tenant)
		w.Header().Set("Retry-After", retryAfterHeader(retryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q is over its admission limits, retry later", tenant))
		return nil, false
	}
	return release, true
}

// lease runs one request through the single-flight cache and, when leading,
// the worker queue. It reports the entry to wait on and the begin state;
// ok=false means the queue bounced the leader (backpressure) and the
// stillborn entry was evicted so the next caller can lead.
func (s *Server) lease(req *ScheduleRequest) (entry *cacheEntry, state beginState, ok bool) {
	key := req.fingerprint()
	entry, state = s.cache.begin(key)
	switch state {
	case beginLead:
		if !s.enqueue(job{req: req, key: key, entry: entry, enqueued: time.Now()}) {
			s.cache.complete(key, entry, nil, errDraining)
			return nil, state, false
		}
	case beginHit:
		s.m.ServeCacheHit()
		s.m.ServeShardHit(s.cache.shardIndex(key))
	case beginCoalesced:
		s.m.ServeCoalesced()
		s.m.ServeShardHit(s.cache.shardIndex(key))
	}
	return entry, state, true
}

// handleSchedule is POST /schedule.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.m.ServeRequest()
	if s.draining.Load() {
		s.m.ServeRejected()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := decodeScheduleRequest(r.Body)
	if err == nil {
		err = applyTenantHeader(req, r)
	}
	if err != nil {
		s.m.ServeDone(false, false)
		writeError(w, statusFor(err), err.Error())
		return
	}
	release, admitted := s.admitTenant(w, req.tenant())
	if !admitted {
		return
	}
	defer release()

	entry, state, accepted := s.lease(req)
	if !accepted {
		s.m.ServeRejected()
		w.Header().Set("Retry-After", retryAfterHeader(time.Second))
		writeError(w, http.StatusTooManyRequests, "scheduling queue is full, retry later")
		return
	}

	select {
	case <-entry.ready:
	case <-r.Context().Done():
		// The client went away. The computation keeps running for any
		// coalesced followers; this response is dead either way — but it is
		// a client disconnect, not a timeout, and is counted as such.
		s.m.ServeClientGone()
		return
	}
	if entry.err != nil {
		if r.Context().Err() != nil {
			// 499-style: the computation died of cancellation and the client
			// is gone; there is nobody to answer, so write nothing.
			s.m.ServeClientGone()
			return
		}
		status := statusFor(entry.err)
		s.m.ServeDone(false, status == http.StatusGatewayTimeout)
		writeError(w, status, entry.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Cache status travels in a header, never the body: miss, coalesced, and
	// hit must serve byte-identical documents. A coalesced follower shared an
	// in-flight computation; only a completed entry reports hit.
	w.Header().Set("X-Cache", state.String())
	w.Header().Set("Content-Length", strconv.Itoa(len(entry.body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(entry.body) // a failed write means the client left mid-body
	s.m.ServeDone(true, false)
}

// handleAlgorithms is GET /algorithms.
func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"algorithms": Algorithms})
}

// handleBenchmarks is GET /benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"benchmarks": dacapo.Names()})
}

// statusFor maps a computation error to its HTTP status.
func statusFor(err error) int {
	var rerr *requestError
	switch {
	case errors.As(err, &rerr):
		return rerr.status
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errDeadline),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// A deliberate cancellation is not a gateway timeout. When the
		// client is gone the handler writes nothing at all (499-style); a
		// cancel reaching a live client means the work was torn down under
		// it — the service's unavailability, not the upstream's slowness.
		return http.StatusServiceUnavailable
	case errors.Is(err, astar.ErrCancelled), errors.Is(err, sim.ErrInterrupted):
		// Cancelled with no recognizable cause attached: the per-request
		// deadline machinery is the only remaining source.
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON marshals v before touching the ResponseWriter: once a status
// line is committed an encoding failure could only be appended as body
// garbage, so the marshal must succeed first (and its error answers 500
// instead of being silently dropped).
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response")
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) // nothing to do for a client that left mid-body
}

func writeError(w http.ResponseWriter, status int, msg string) {
	b, err := json.Marshal(errorResponse{Error: msg})
	if err != nil {
		// errorResponse is a plain string wrapper; Marshal cannot fail on
		// it. Keep the fallback anyway so the contract survives refactors.
		b = []byte(`{"error":"internal error"}`)
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	_, _ = w.Write(b)
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// drains: the listener stops accepting, in-flight requests are answered
// (cancelled ones with 503/504), and the worker pool is joined before
// returning. The ready callback, if non-nil, receives the bound address once
// the listener is up (useful with ":0").
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Shutdown()
		return err
	case <-ctx.Done():
	}
	// Drain order: flip the reject flag and cancel running searches first so
	// in-flight handlers finish fast, then let the HTTP server wait for them.
	s.Shutdown()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}
