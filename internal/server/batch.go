package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// BatchRequest is the POST /schedule/batch envelope: an ordered list of
// ScheduleRequest documents. Items are raw so each one is decoded (and
// rejected) independently — one malformed item costs that item its slot,
// not the whole batch.
type BatchRequest struct {
	Items []json.RawMessage `json:"items"`
}

// BatchItemResult is one item's outcome, at the index of its request.
// Status mirrors what the item would have received from POST /schedule;
// 200 items carry the response document and its cache disposition
// (miss/coalesced/hit), everything else an error message.
type BatchItemResult struct {
	Status   int             `json:"status"`
	Cache    string          `json:"cache,omitempty"`
	Error    string          `json:"error,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// BatchResponse is the POST /schedule/batch result.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// decodeBatchRequest parses and bounds a batch envelope.
func decodeBatchRequest(r io.Reader, maxItems int) (*BatchRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var env BatchRequest
	if err := dec.Decode(&env); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &requestError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return nil, badRequest("malformed batch: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("malformed batch: trailing data after the JSON document")
	}
	if len(env.Items) == 0 {
		return nil, badRequest("batch has no items")
	}
	if len(env.Items) > maxItems {
		return nil, &requestError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("batch has %d items, limit %d", len(env.Items), maxItems)}
	}
	return &env, nil
}

// batchPending is one admitted item waiting on its cache entry.
type batchPending struct {
	entry   *cacheEntry
	state   beginState
	release func()
}

// handleBatch is POST /schedule/batch: validate every item, admit each
// against its tenant's limits, dedup shared work through the single-flight
// cache (identical fingerprints — within the batch or against concurrent
// /schedule traffic — elect one leader), fan leaders out through the worker
// pool, and answer per-item status in request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.ServeRequest()
	if s.draining.Load() {
		s.m.ServeRejected()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	env, err := decodeBatchRequest(r.Body, s.opts.MaxBatchItems)
	if err != nil {
		s.m.ServeDone(false, false)
		writeError(w, statusFor(err), err.Error())
		return
	}
	s.m.ServeBatch(int64(len(env.Items)))

	results := make([]BatchItemResult, len(env.Items))
	pendings := make([]*batchPending, len(env.Items))
	for i, raw := range env.Items {
		req, err := decodeScheduleRequest(bytes.NewReader(raw))
		if err == nil {
			err = applyTenantHeader(req, r)
		}
		if err != nil {
			results[i] = BatchItemResult{Status: statusFor(err), Error: err.Error()}
			continue
		}
		tenant := req.tenant()
		s.m.ServeTenant(tenant)
		release, _, admitted := s.tenants.admit(tenant)
		if !admitted {
			s.m.ServeRejected()
			s.m.ServeTenantRejected(tenant)
			results[i] = BatchItemResult{Status: http.StatusTooManyRequests,
				Error: fmt.Sprintf("tenant %q is over its admission limits, retry later", tenant)}
			continue
		}
		entry, state, accepted := s.lease(req)
		if !accepted {
			release()
			s.m.ServeRejected()
			results[i] = BatchItemResult{Status: http.StatusTooManyRequests,
				Error: "scheduling queue is full, retry later"}
			continue
		}
		pendings[i] = &batchPending{entry: entry, state: state, release: release}
	}

	// Wait for every leased item. A client disconnect abandons the response
	// (computations keep running for any coalesced followers); release is
	// idempotent, so the blanket cleanup below is safe either way.
	defer func() {
		for _, p := range pendings {
			if p != nil {
				p.release()
			}
		}
	}()
	for _, p := range pendings {
		if p == nil {
			continue
		}
		select {
		case <-p.entry.ready:
			p.release()
		case <-r.Context().Done():
			s.m.ServeClientGone()
			return
		}
	}

	for i, p := range pendings {
		if p == nil {
			continue
		}
		if p.entry.err != nil {
			results[i] = BatchItemResult{Status: statusFor(p.entry.err), Error: p.entry.err.Error()}
			continue
		}
		results[i] = BatchItemResult{
			Status:   http.StatusOK,
			Cache:    p.state.String(),
			Response: json.RawMessage(p.entry.body),
		}
	}
	writeJSON(w, BatchResponse{Items: results})
	s.m.ServeDone(true, false)
}
