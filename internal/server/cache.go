package server

import (
	"container/list"
	"sync"
)

// cacheEntry is one in-flight or completed response. Followers wait on ready;
// after it closes, exactly one of body/err is set.
type cacheEntry struct {
	ready chan struct{}
	body  []byte
	err   error
}

// lruCache is an LRU response cache with single-flight semantics: the first
// request for a fingerprint becomes the leader and computes; concurrent
// duplicates block on the entry and serve the leader's bytes. Errored entries
// are evicted on completion so a cancelled or failed leader never poisons the
// key for later callers.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // value: *lruItem
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newLRUCache returns a cache holding at most capacity entries. A zero or
// negative capacity disables caching entirely: begin always elects a leader
// and store drops the result.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// begin looks up key. It returns the entry to wait on and whether the caller
// is the leader (the entry's computer). A leader must finish the entry with
// complete(). Non-leaders must wait for the entry's ready channel and then
// read body/err.
func (c *lruCache) begin(key string) (e *cacheEntry, leader bool) {
	if c.cap <= 0 {
		return &cacheEntry{ready: make(chan struct{})}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruItem).entry, false
	}
	e = &cacheEntry{ready: make(chan struct{})}
	el := c.order.PushFront(&lruItem{key: key, entry: e})
	c.entries[key] = el
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem).key)
	}
	return e, true
}

// complete publishes the leader's result and wakes all waiters. On error the
// entry is evicted (waiters already holding it still observe the error).
func (c *lruCache) complete(key string, e *cacheEntry, body []byte, err error) {
	e.body, e.err = body, err
	close(e.ready)
	if err == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*lruItem).entry == e {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// len reports the number of cached (or in-flight) entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
