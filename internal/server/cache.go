package server

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// cacheEntry is one in-flight or completed response. Followers wait on ready;
// after it closes, exactly one of body/err is set.
type cacheEntry struct {
	ready chan struct{}
	body  []byte
	err   error
}

// beginState classifies what begin found for a key: the caller leads a fresh
// computation, coalesces onto another caller's in-flight one, or is served a
// completed entry. The distinction travels to the client in the X-Cache
// header (miss/coalesced/hit) — a coalesced follower got deduplication, not
// a cache hit, and reporting "hit" for it would overstate what the cache
// held.
type beginState int

const (
	beginLead beginState = iota
	beginCoalesced
	beginHit
)

// String renders the state as its X-Cache header value.
func (s beginState) String() string {
	switch s {
	case beginCoalesced:
		return "coalesced"
	case beginHit:
		return "hit"
	default:
		return "miss"
	}
}

// shardedCache is an LRU response cache with single-flight semantics, split
// into independently locked shards by an FNV-64a hash of the key so
// concurrent requests for different keys never serialize on one mutex.
//
// Single-flight holds at ANY capacity: an in-flight entry is pinned — the
// eviction scan skips it — so a burst of distinct keys can never evict a
// live leader and let a concurrent duplicate elect a second one. (The
// previous single-mutex implementation evicted purely by recency, and under
// cache pressure an in-flight leader at the LRU tail could be evicted; its
// duplicates then recomputed the same work, silently breaking the "exactly
// one compute per fingerprint" contract the concurrency tests rely on.)
// Pinned entries may transiently push a shard past its capacity; complete()
// trims back down as leaders finish.
type shardedCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one independently locked LRU partition.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // value: *lruItem

	// stats, guarded by mu: completed-entry hits, in-flight coalesces,
	// leader elections, completed-entry evictions.
	hits      int64
	coalesced int64
	leads     int64
	evictions int64
}

type lruItem struct {
	key   string
	entry *cacheEntry
	// done flips when the leader completes; only done items are
	// eviction-eligible. An in-flight item is pinned: evicting it would
	// detach the leader from the key and break single-flight.
	done bool
}

// maxCacheShards bounds the shard count; small caches use fewer shards so
// every shard keeps at least one slot.
const maxCacheShards = 16

// newShardedCache returns a cache holding at most capacity entries across
// power-of-two shards. A zero or negative capacity disables caching
// entirely: begin always elects a leader and complete drops the result.
func newShardedCache(capacity int) *shardedCache {
	if capacity <= 0 {
		return &shardedCache{}
	}
	n := 1
	for n < maxCacheShards && 2*n <= capacity {
		n *= 2
	}
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	// Ceiling split so the shards sum to at least the requested capacity.
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, order: list.New(), entries: make(map[string]*list.Element)}
	}
	return c
}

// shardFor maps a key to its shard (nil when caching is disabled).
func (c *shardedCache) shardFor(key string) *cacheShard {
	if len(c.shards) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return &c.shards[h.Sum64()&c.mask]
}

// shardIndex reports which shard holds key (-1 when caching is disabled),
// for per-shard observability.
func (c *shardedCache) shardIndex(key string) int {
	if len(c.shards) == 0 {
		return -1
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() & c.mask)
}

// begin looks up key. It returns the entry to wait on and how the caller
// got it: a leader must finish the entry with complete(); followers wait for
// the entry's ready channel and then read body/err.
func (c *shardedCache) begin(key string) (*cacheEntry, beginState) {
	sh := c.shardFor(key)
	if sh == nil {
		return &cacheEntry{ready: make(chan struct{})}, beginLead
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		if el.Value.(*lruItem).done {
			sh.hits++
			return el.Value.(*lruItem).entry, beginHit
		}
		sh.coalesced++
		return el.Value.(*lruItem).entry, beginCoalesced
	}
	e := &cacheEntry{ready: make(chan struct{})}
	el := sh.order.PushFront(&lruItem{key: key, entry: e})
	sh.entries[key] = el
	sh.leads++
	sh.trimLocked()
	return e, beginLead
}

// trimLocked evicts completed entries from the LRU tail until the shard is
// within capacity or only pinned (in-flight) entries remain. Callers hold
// sh.mu.
func (sh *cacheShard) trimLocked() {
	for el := sh.order.Back(); el != nil && sh.order.Len() > sh.cap; {
		prev := el.Prev()
		if it := el.Value.(*lruItem); it.done {
			sh.order.Remove(el)
			delete(sh.entries, it.key)
			sh.evictions++
		}
		el = prev
	}
}

// complete publishes the leader's result and wakes all waiters. On error the
// entry is evicted (waiters already holding it still observe the error);
// on success it becomes eviction-eligible and the shard trims back within
// capacity.
func (c *shardedCache) complete(key string, e *cacheEntry, body []byte, err error) {
	e.body, e.err = body, err
	close(e.ready)
	sh := c.shardFor(key)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok || el.Value.(*lruItem).entry != e {
		return
	}
	if err != nil {
		sh.order.Remove(el)
		delete(sh.entries, key)
		return
	}
	el.Value.(*lruItem).done = true
	sh.trimLocked()
}

// len reports entries currently held, in-flight ones included.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// lenCompleted reports only completed (actually cached) entries — the number
// len historically conflated with in-flight leaders.
func (c *shardedCache) lenCompleted() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			if el.Value.(*lruItem).done {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// cacheShardStats is one shard's counter snapshot.
type cacheShardStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Leads     int64 `json:"leads"`
	Evictions int64 `json:"evictions"`
}

// stats snapshots every shard's counters (empty when caching is disabled).
func (c *shardedCache) stats() []cacheShardStats {
	out := make([]cacheShardStats, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = cacheShardStats{
			Entries:   sh.order.Len(),
			Hits:      sh.hits,
			Coalesced: sh.coalesced,
			Leads:     sh.leads,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
	}
	return out
}
