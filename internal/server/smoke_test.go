package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the serve-smoke golden responses")

// smokeRequests returns one deterministic request per algorithm. The corpus
// entries exercise the named-benchmark path; the searches run on a fixed
// inline instance small enough to finish instantly.
func smokeRequests(t *testing.T) map[string][]byte {
	t.Helper()
	reqs := map[string][]byte{}
	for _, algo := range []string{"astar", "beam", "bnb", "exact"} {
		reqs[algo] = inlineRequest(t, algo, 6, 60, 3, nil)
	}
	for _, algo := range []string{"iar", "jikes", "v8"} {
		b, err := json.Marshal(map[string]any{"algo": algo, "bench": "antlr", "max_calls": 300})
		if err != nil {
			t.Fatal(err)
		}
		reqs[algo] = b
	}
	b, err := json.Marshal(map[string]any{"algo": "online-iar", "bench": "antlr", "max_calls": 300, "window": 64})
	if err != nil {
		t.Fatal(err)
	}
	reqs["online-iar"] = b
	return reqs
}

// TestServeSmoke drives a real server through one request per algorithm and
// compares every response body byte-for-byte against the checked-in goldens
// (go test -run TestServeSmoke -update ./internal/server/ rewrites them).
// This is the `make serve-smoke` gate: any drift in the wire format or in
// any scheduler's output shows up as a diff here.
func TestServeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for algo, body := range smokeRequests(t) {
		t.Run(algo, func(t *testing.T) {
			status, _, got := post(t, ts.URL, body)
			if status != 200 {
				t.Fatalf("status = %d, body %s", status, got)
			}
			golden := filepath.Join("testdata", "golden", algo+".json")
			if *updateGolden {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create the goldens)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response drifted from %s:\n got: %s\nwant: %s", golden, got, want)
			}
		})
	}
}
