package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
)

// postBatch sends one /schedule/batch request built from raw item bodies.
func postBatch(t *testing.T, url string, items ...[]byte) (int, *BatchResponse, []byte) {
	t.Helper()
	// Splice the items in verbatim (json.Marshal would reject the
	// deliberately malformed ones some tests send).
	var env bytes.Buffer
	env.WriteString(`{"items":[`)
	for i, it := range items {
		if i > 0 {
			env.WriteByte(',')
		}
		env.Write(it)
	}
	env.WriteString(`]}`)
	resp, err := http.Post(url+"/schedule/batch", "application/json", bytes.NewReader(env.Bytes()))
	if err != nil {
		t.Fatalf("POST /schedule/batch: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 {
		return resp.StatusCode, nil, buf.Bytes()
	}
	var out BatchResponse
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("undecodable batch response %s: %v", buf.Bytes(), err)
	}
	return resp.StatusCode, &out, buf.Bytes()
}

// TestBatchHappyPathMixed: distinct items across algorithms all come back
// 200 in request order, each a valid schedule document matching what the
// single endpoint serves for the same request.
func TestBatchHappyPathMixed(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{Metrics: m})
	items := [][]byte{
		inlineRequest(t, "iar", 5, 30, 1, nil),
		inlineRequest(t, "bnb", 6, 60, 2, nil),
		[]byte(`{"algo":"jikes","bench":"antlr","max_calls":300}`),
	}
	status, out, raw := postBatch(t, ts.URL, items...)
	if status != 200 {
		t.Fatalf("batch status %d, body %s", status, raw)
	}
	if len(out.Items) != len(items) {
		t.Fatalf("%d results for %d items", len(out.Items), len(items))
	}
	wantAlgos := []string{"iar", "bnb", "jikes"}
	for i, it := range out.Items {
		if it.Status != 200 || it.Error != "" {
			t.Fatalf("item %d: status %d error %q", i, it.Status, it.Error)
		}
		if it.Cache != "miss" {
			t.Errorf("item %d: cache %q, want miss on first sight", i, it.Cache)
		}
		var resp ScheduleResponse
		if err := json.Unmarshal(it.Response, &resp); err != nil {
			t.Fatalf("item %d: undecodable response: %v", i, err)
		}
		if resp.Algo != wantAlgos[i] {
			t.Errorf("item %d: algo %q, want %q — results out of order", i, resp.Algo, wantAlgos[i])
		}
		// The batch serves the same document the single endpoint would
		// (modulo the envelope's JSON re-compaction dropping the newline).
		single, _, body := post(t, ts.URL, items[i])
		if single != 200 {
			t.Fatalf("single-endpoint check for item %d: status %d", i, single)
		}
		if !bytes.Equal(it.Response, bytes.TrimRight(body, "\n")) {
			t.Errorf("item %d: batch bytes differ from the single endpoint's:\n%s\n%s", i, it.Response, body)
		}
	}
	if s := m.Snapshot(); s.ServeBatches != 1 || s.ServeBatchItems != 3 {
		t.Errorf("batch counters = %d/%d, want 1/3", s.ServeBatches, s.ServeBatchItems)
	}
}

// TestBatchDedupsSharedWork: identical items inside one batch elect exactly
// one leader; the rest coalesce onto it and serve its exact bytes.
func TestBatchDedupsSharedWork(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	item := inlineRequest(t, "bnb", 7, 80, 3, nil)
	status, out, raw := postBatch(t, ts.URL, item, item, item, item)
	if status != 200 {
		t.Fatalf("batch status %d, body %s", status, raw)
	}
	misses := 0
	for i, it := range out.Items {
		if it.Status != 200 {
			t.Fatalf("item %d: status %d error %q", i, it.Status, it.Error)
		}
		if it.Cache == "miss" {
			misses++
		}
		if !bytes.Equal(it.Response, out.Items[0].Response) {
			t.Errorf("item %d served different bytes than item 0", i)
		}
	}
	if misses != 1 {
		t.Errorf("%d misses across 4 identical items, want exactly 1 (dedup broke)", misses)
	}
}

// TestBatchPerItemValidation: a bad item costs its slot, not the batch.
// (Syntactically invalid JSON fails the envelope itself — see
// TestBatchEnvelopeErrors — so the per-item failures here are well-formed
// documents that fail ScheduleRequest validation.)
func TestBatchPerItemValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, out, raw := postBatch(t, ts.URL,
		inlineRequest(t, "iar", 5, 30, 4, nil),
		[]byte(`{"algo":"quantum","bench":"antlr"}`),
		[]byte(`{"algo":"iar","bench":"antlr","frobnicate":1}`),
		[]byte(`{"algo":"iar","bench":"avrora"}`),
	)
	if status != 200 {
		t.Fatalf("batch status %d, body %s", status, raw)
	}
	want := []int{200, 400, 400, 404}
	for i, it := range out.Items {
		if it.Status != want[i] {
			t.Errorf("item %d: status %d, want %d (error %q)", i, it.Status, want[i], it.Error)
		}
		if want[i] != 200 && it.Error == "" {
			t.Errorf("item %d: failed without an error message", i)
		}
		if want[i] != 200 && len(it.Response) != 0 {
			t.Errorf("item %d: failed item carries a response", i)
		}
	}
}

// TestBatchEnvelopeErrors: the envelope itself is validated and bounded.
func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBatchItems: 4})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed", `{nope`, 400},
		{"empty-items", `{"items":[]}`, 400},
		{"no-items", `{}`, 400},
		{"unknown-field", `{"items":[{"algo":"iar","bench":"antlr"}],"frobnicate":1}`, 400},
		{"trailing", `{"items":[{"algo":"iar","bench":"antlr"}]} garbage`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/schedule/batch", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
	t.Run("too-many-items", func(t *testing.T) {
		items := make([][]byte, 5)
		for i := range items {
			items[i] = []byte(fmt.Sprintf(`{"algo":"iar","bench":"antlr","max_calls":%d}`, 100+i))
		}
		status, _, raw := postBatch(t, ts.URL, items...)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, body %s; want 413", status, raw)
		}
	})
}

// TestBatchTenantAdmission: per-tenant limits apply item by item — the
// burst's worth succeed, the overflow item gets its own 429, and the
// envelope still answers 200.
func TestBatchTenantAdmission(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{TenantRate: 0.001, TenantBurst: 2, Metrics: m})
	items := [][]byte{
		inlineRequest(t, "iar", 5, 30, 10, map[string]any{"tenant": "acme"}),
		inlineRequest(t, "iar", 5, 30, 11, map[string]any{"tenant": "acme"}),
		inlineRequest(t, "iar", 5, 30, 12, map[string]any{"tenant": "acme"}),
	}
	status, out, raw := postBatch(t, ts.URL, items...)
	if status != 200 {
		t.Fatalf("batch status %d, body %s", status, raw)
	}
	got := []int{out.Items[0].Status, out.Items[1].Status, out.Items[2].Status}
	if got[0] != 200 || got[1] != 200 || got[2] != http.StatusTooManyRequests {
		t.Fatalf("item statuses %v, want [200 200 429]", got)
	}
	if s := m.Snapshot(); s.ServeTenantRejects["acme"] != 1 {
		t.Errorf("tenant rejects = %v, want acme:1", s.ServeTenantRejects)
	}
}

// TestBatchDraining: a draining server bounces the whole envelope with 503.
func TestBatchDraining(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	srv.Shutdown()
	status, _, raw := postBatch(t, ts.URL, inlineRequest(t, "iar", 4, 20, 1, nil))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s; want 503", status, raw)
	}
}

// TestBatchWrongMethod: GET is 405, mirroring /schedule.
func TestBatchWrongMethod(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/schedule/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule/batch = %d, want 405", resp.StatusCode)
	}
}
