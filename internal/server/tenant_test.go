package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a manually advanced time source for governor tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func govWithClock(l tenantLimits) (*tenantGovernor, *fakeClock) {
	g := newTenantGovernor(l)
	c := newFakeClock()
	g.now = c.now
	return g, c
}

// TestTenantGovernorDisabled: the zero limits admit everything.
func TestTenantGovernorDisabled(t *testing.T) {
	g := newTenantGovernor(tenantLimits{})
	for i := 0; i < 1000; i++ {
		release, _, ok := g.admit("anyone")
		if !ok {
			t.Fatalf("request %d rejected with admission control disabled", i)
		}
		release()
	}
}

// TestTenantGovernorTokenBucket: a tenant gets its burst, then is throttled
// at the sustained rate, and refills over time — without affecting another
// tenant's bucket.
func TestTenantGovernorTokenBucket(t *testing.T) {
	g, clk := govWithClock(tenantLimits{Rate: 10, Burst: 5})
	for i := 0; i < 5; i++ {
		if _, _, ok := g.admit("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	_, retry, ok := g.admit("a")
	if ok {
		t.Fatal("request beyond the burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry-after = %v, want (0, 1s] at 10 req/s", retry)
	}
	// The other tenant's bucket is untouched.
	if _, _, ok := g.admit("b"); !ok {
		t.Fatal("tenant b throttled by tenant a's burst")
	}
	// A tenth of a second refills one token at rate 10.
	clk.advance(100 * time.Millisecond)
	if _, _, ok := g.admit("a"); !ok {
		t.Fatal("request after refill rejected")
	}
	if _, _, ok := g.admit("a"); ok {
		t.Fatal("second request after a one-token refill admitted")
	}
}

// TestTenantGovernorInFlightQuota: concurrency is capped per tenant and
// slots free on release (idempotently).
func TestTenantGovernorInFlightQuota(t *testing.T) {
	g := newTenantGovernor(tenantLimits{MaxInFlight: 2})
	r1, _, ok1 := g.admit("a")
	r2, _, ok2 := g.admit("a")
	if !ok1 || !ok2 {
		t.Fatal("requests within the quota rejected")
	}
	if _, retry, ok := g.admit("a"); ok || retry <= 0 {
		t.Fatalf("third in-flight request admitted (ok=%v retry=%v)", ok, retry)
	}
	if _, _, ok := g.admit("b"); !ok {
		t.Fatal("tenant b blocked by tenant a's in-flight quota")
	}
	r1()
	r1() // double release must not free a second slot
	if _, _, ok := g.admit("a"); !ok {
		t.Fatal("slot not freed after release")
	}
	if _, _, ok := g.admit("a"); ok {
		t.Fatal("double release freed two slots")
	}
	r2()
}

// TestTenantGovernorBurstDefault: Rate without Burst defaults the bucket
// depth to max(1, Rate).
func TestTenantGovernorBurstDefault(t *testing.T) {
	if g := newTenantGovernor(tenantLimits{Rate: 3}); g.limits.Burst != 3 {
		t.Errorf("burst defaulted to %d, want 3", g.limits.Burst)
	}
	if g := newTenantGovernor(tenantLimits{Rate: 0.5}); g.limits.Burst != 1 {
		t.Errorf("burst defaulted to %d, want 1", g.limits.Burst)
	}
}

// TestTenantGovernorStateEviction: the state map stays bounded — idle
// tenants are discarded once the map fills, busy ones survive.
func TestTenantGovernorStateEviction(t *testing.T) {
	g, clk := govWithClock(tenantLimits{Rate: 1000, Burst: 1000, MaxInFlight: 8})
	busyRelease, _, _ := g.admit("busy")
	for i := 0; i < maxTenantStates+10; i++ {
		// A second per admission refills every earlier bucket to full, making
		// those states idle and eligible for eviction; "busy" stays pinned by
		// its in-flight request.
		clk.advance(time.Second)
		release, _, ok := g.admit(fmt.Sprintf("t-%d", i))
		if !ok {
			t.Fatalf("tenant %d rejected", i)
		}
		release()
	}
	g.mu.Lock()
	n := len(g.states)
	_, busyAlive := g.states["busy"]
	g.mu.Unlock()
	if n > maxTenantStates+10 {
		t.Errorf("governor holds %d states, want bounded near %d", n, maxTenantStates)
	}
	if !busyAlive {
		t.Error("eviction dropped a tenant with requests in flight")
	}
	busyRelease()
}

// TestValidTenant: the name rules.
func TestValidTenant(t *testing.T) {
	for _, good := range []string{"", "acme", "tenant-42", "Ab.c_d"} {
		if err := validTenant(good); err != nil {
			t.Errorf("validTenant(%q) = %v, want nil", good, err)
		}
	}
	long := make([]byte, MaxTenantLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"has space", "tab\there", "ctl\x01", string(long)} {
		if err := validTenant(bad); err == nil {
			t.Errorf("validTenant(%q) accepted", bad)
		}
	}
}

// TestScheduleTenantRateLimit429: over-limit requests answer 429 with a
// Retry-After header, per-tenant counters account for them, and an
// independent tenant sails through.
func TestScheduleTenantRateLimit429(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{TenantRate: 0.001, TenantBurst: 2, Metrics: m})
	body := func(tenant string, seed int64) []byte {
		return inlineRequest(t, "iar", 5, 30, seed, map[string]any{"tenant": tenant})
	}
	for i := int64(0); i < 2; i++ {
		if status, _, b := post(t, ts.URL, body("acme", i)); status != 200 {
			t.Fatalf("request %d within burst: status %d, body %s", i, status, b)
		}
	}
	status, hdr, b := post(t, ts.URL, body("acme", 9))
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, body %s; want 429", status, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var e errorResponse
	if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
		t.Errorf("429 body %q is not a JSON error document", b)
	}
	// Another tenant is not throttled by acme's bucket.
	if status, _, b := post(t, ts.URL, body("other", 20)); status != 200 {
		t.Fatalf("other tenant: status %d, body %s", status, b)
	}
	s := m.Snapshot()
	if s.ServeTenantRejects["acme"] != 1 || s.ServeTenantRejects["other"] != 0 {
		t.Errorf("tenant rejects = %v, want acme:1 only", s.ServeTenantRejects)
	}
	if s.ServeTenantRequests["acme"] != 3 || s.ServeTenantRequests["other"] != 1 {
		t.Errorf("tenant requests = %v, want acme:3 other:1", s.ServeTenantRequests)
	}
}

// TestScheduleTenantHeaderWinsAndSplitsCache: the X-Tenant header overrides
// the body field, and tenants never share cache entries — the same payload
// misses once per tenant.
func TestScheduleTenantHeaderWinsAndSplitsCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := inlineRequest(t, "iar", 5, 30, 77, nil)
	postTenant := func(tenant string) (int, http.Header) {
		req, err := http.NewRequest("POST", ts.URL+"/schedule", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	if status, hdr := postTenant("a"); status != 200 || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("tenant a first request: %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	if status, hdr := postTenant("a"); status != 200 || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("tenant a repeat: %d, X-Cache %q, want hit", status, hdr.Get("X-Cache"))
	}
	// Same bytes, different tenant: its own fingerprint, its own miss.
	if status, hdr := postTenant("b"); status != 200 || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("tenant b: %d, X-Cache %q, want a fresh miss", status, hdr.Get("X-Cache"))
	}
	// Bad header tenant: rejected before admission.
	req, _ := http.NewRequest("POST", ts.URL+"/schedule", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "no spaces")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid X-Tenant: status %d, want 400", resp.StatusCode)
	}
}

// TestScheduleTenantInFlightQuota429: a tenant saturating its in-flight
// quota with slow searches gets 429 on the next request while another
// tenant still gets through.
func TestScheduleTenantInFlightQuota429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, TenantMaxInFlight: 1})
	slow := inlineRequest(t, "bnb", 13, 400, 5, map[string]any{
		"tenant": "hog", "timeout_ms": 1500, "max_nodes": 1 << 24,
	})
	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, slow)
		done <- status
	}()
	time.Sleep(150 * time.Millisecond) // let it occupy the quota slot
	status, hdr, b := post(t, ts.URL, inlineRequest(t, "iar", 5, 30, 6, map[string]any{"tenant": "hog"}))
	if status != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request: status %d, body %s; want 429", status, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	if status, _, b := post(t, ts.URL, inlineRequest(t, "iar", 5, 30, 6, map[string]any{"tenant": "polite"})); status != 200 {
		t.Fatalf("other tenant: status %d, body %s; want 200", status, b)
	}
	select {
	case s := <-done:
		if s != 200 && s != http.StatusGatewayTimeout {
			t.Errorf("slow request finished with %d", s)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("slow request never finished")
	}
}
