package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScheduleRequest drives the request decode/validate/materialize path
// with arbitrary bytes. The invariants under test:
//
//   - decodeScheduleRequest never panics and never returns (nil, nil);
//   - an accepted request has a deterministic fingerprint;
//   - an accepted request's workload either materializes into validated
//     library types or fails with a client-fault error — it never panics,
//     whatever the payload's numbers are.
//
// Seeds come from testdata/requests, which doubles as documentation of the
// wire format.
func FuzzScheduleRequest(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "requests", "*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v (%d files)", err, len(seeds))
	}
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeScheduleRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatal("decode returned both a request and an error")
			}
			return
		}
		if req == nil {
			t.Fatal("decode returned neither a request nor an error")
		}
		fp1, fp2 := req.fingerprint(), req.fingerprint()
		if fp1 != fp2 || fp1 == "" {
			t.Fatalf("fingerprint not deterministic: %q vs %q", fp1, fp2)
		}
		// Materializing a corpus workload at a large scale is legitimate but
		// too slow for a fuzz iteration; the validation path above is the
		// target, trace synthesis is covered elsewhere.
		if req.Bench != "" && req.Scale > 2 {
			return
		}
		w, err := req.workload()
		if err != nil {
			var rerr *requestError
			if !errors.As(err, &rerr) {
				t.Fatalf("workload() failed with a non-client error: %v", err)
			}
			return
		}
		if w.Trace == nil || w.Profile == nil {
			t.Fatal("workload() returned nil trace or profile without an error")
		}
		if err := w.Profile.Validate(); err != nil {
			t.Fatalf("materialized profile does not validate: %v", err)
		}
		if err := w.Trace.Validate(w.Profile.NumFuncs()); err != nil {
			t.Fatalf("materialized trace does not validate: %v", err)
		}
	})
}

// FuzzBatchRequest drives the batch-envelope decode path plus per-item
// decode/validate with arbitrary bytes. Invariants:
//
//   - decodeBatchRequest never panics and never returns (nil, nil);
//   - an accepted envelope is non-empty and within the item limit;
//   - every item either decodes into a request with a deterministic
//     fingerprint or fails with a client-fault error — item handling is
//     isolated, so one bad item must not prevent classifying the others.
func FuzzBatchRequest(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "batch", "*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v (%d files)", err, len(seeds))
	}
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	const maxItems = 8
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeBatchRequest(bytes.NewReader(data), maxItems)
		if err != nil {
			if env != nil {
				t.Fatal("decode returned both an envelope and an error")
			}
			var rerr *requestError
			if !errors.As(err, &rerr) {
				t.Fatalf("envelope rejected with a non-client error: %v", err)
			}
			return
		}
		if env == nil {
			t.Fatal("decode returned neither an envelope nor an error")
		}
		if len(env.Items) == 0 || len(env.Items) > maxItems {
			t.Fatalf("accepted envelope with %d items, limit %d", len(env.Items), maxItems)
		}
		for i, raw := range env.Items {
			req, err := decodeScheduleRequest(bytes.NewReader(raw))
			if err != nil {
				var rerr *requestError
				if !errors.As(err, &rerr) {
					t.Fatalf("item %d rejected with a non-client error: %v", i, err)
				}
				continue
			}
			if fp1, fp2 := req.fingerprint(), req.fingerprint(); fp1 != fp2 || fp1 == "" {
				t.Fatalf("item %d: fingerprint not deterministic: %q vs %q", i, fp1, fp2)
			}
		}
	})
}
