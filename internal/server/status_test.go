package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/astar"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestStatusFor pins the error → HTTP status mapping. The regression of
// record: context.Canceled used to fall through to 504 Gateway Timeout,
// misreporting deliberate cancellations as deadline expiries.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"request-error", badRequest("nope"), 400},
		{"request-error-status", &requestError{status: 404, msg: "gone"}, 404},
		{"draining", errDraining, http.StatusServiceUnavailable},
		{"draining-wrapped", fmt.Errorf("search: %w", errDraining), http.StatusServiceUnavailable},
		{"deadline-cause", errDeadline, http.StatusGatewayTimeout},
		{"context-deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		// The worker's actual wrap when the per-request timer fires.
		{"cancelled-with-deadline-cause", fmt.Errorf("%w: %w", astar.ErrCancelled, errDeadline), http.StatusGatewayTimeout},
		// The regression: a plain cancellation is NOT a gateway timeout.
		{"context-canceled", context.Canceled, http.StatusServiceUnavailable},
		{"cancelled-with-canceled-cause", fmt.Errorf("%w: %w", astar.ErrCancelled, context.Canceled), http.StatusServiceUnavailable},
		// Cancellation with no recognizable cause: only the deadline
		// machinery is left as a source.
		{"bare-astar-cancelled", astar.ErrCancelled, http.StatusGatewayTimeout},
		{"bare-sim-interrupted", sim.ErrInterrupted, http.StatusGatewayTimeout},
		{"unknown", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.want {
				t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestClientDisconnectCountsClientGone: a client abandoning its request
// mid-compute is accounted as serve_client_gone — not as a served error,
// which is what the old ServeDone(false, true) call recorded.
func TestClientDisconnectCountsClientGone(t *testing.T) {
	m := &obs.Metrics{}
	_, ts := newTestServer(t, Options{Metrics: m})
	body := inlineRequest(t, "bnb", 9, 100, 45, nil) // ~500ms of search

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/schedule", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("request unexpectedly completed")
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the handler reach its wait
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := m.Snapshot()
		if s.ServeClientGone == 1 {
			if s.ServeErrors != 0 {
				t.Errorf("serve_errors = %d after a disconnect, want 0 (client-gone is its own outcome)", s.ServeErrors)
			}
			if s.ServeCancelled != 0 {
				t.Errorf("serve_cancelled = %d, want 0 — the old accounting conflated disconnects with cancellations", s.ServeCancelled)
			}
			if s.ServeOK != 0 {
				t.Errorf("serve_ok = %d, want 0", s.ServeOK)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve_client_gone = %d after disconnect, want 1", s.ServeClientGone)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
