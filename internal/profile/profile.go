// Package profile holds per-function, per-level compilation and execution
// times — the c[i][j] and e[i][j] of OCSP (Definition 1 of the paper) — plus
// the cost-benefit models a JIT uses to choose compilation levels.
//
// Times are abstract integer ticks. The paper measures them on Jikes RVM; we
// synthesize them from code size with the same monotonicity assumptions the
// paper verifies on its data: for levels j1 < j2, compile time c[i][j1] <=
// c[i][j2] and execution time e[i][j1] >= e[i][j2].
package profile

import (
	"fmt"

	"repro/internal/trace"
)

// Level indexes a compilation level. Level 0 is the most responsive (fastest
// to compile); higher levels optimize more deeply.
type Level int

// FuncTimes holds one function's timing at every level.
type FuncTimes struct {
	// Name is an optional human-readable label.
	Name string
	// Size is the synthetic code size in bytes; cost-benefit estimators key
	// off it, as Jikes RVM's do.
	Size int64
	// Compile[l] is the time to compile the function at level l, in ticks.
	Compile []int64
	// Exec[l] is the average per-call execution time of code compiled at
	// level l, in ticks.
	Exec []int64
}

// Profile is the timing table for all functions of a workload.
type Profile struct {
	// Levels is the number of compilation levels, uniform across functions
	// (4 in Jikes RVM: baseline + three optimizing levels; 2 in V8).
	Levels int
	// Funcs is indexed by trace.FuncID.
	Funcs []FuncTimes
}

// NumFuncs returns the number of functions in the profile.
func (p *Profile) NumFuncs() int { return len(p.Funcs) }

// CompileTime returns c[f][l].
func (p *Profile) CompileTime(f trace.FuncID, l Level) int64 { return p.Funcs[f].Compile[l] }

// ExecTime returns e[f][l].
func (p *Profile) ExecTime(f trace.FuncID, l Level) int64 { return p.Funcs[f].Exec[l] }

// BestExecTime returns min over levels of e[f][l]; under the monotonicity
// assumption this is the highest level's execution time.
func (p *Profile) BestExecTime(f trace.FuncID) int64 {
	best := p.Funcs[f].Exec[0]
	for _, e := range p.Funcs[f].Exec[1:] {
		if e < best {
			best = e
		}
	}
	return best
}

// Validate checks structural consistency and the OCSP monotonicity
// assumptions: every function has exactly Levels entries, all times are
// positive, compile times never decrease with level, and execution times
// never increase with level.
func (p *Profile) Validate() error {
	if p.Levels <= 0 {
		return fmt.Errorf("profile: Levels must be positive, got %d", p.Levels)
	}
	for i, f := range p.Funcs {
		if len(f.Compile) != p.Levels || len(f.Exec) != p.Levels {
			return fmt.Errorf("profile: func %d has %d compile / %d exec levels, want %d",
				i, len(f.Compile), len(f.Exec), p.Levels)
		}
		for l := 0; l < p.Levels; l++ {
			if f.Compile[l] <= 0 {
				return fmt.Errorf("profile: func %d compile time at level %d is %d, want > 0", i, l, f.Compile[l])
			}
			if f.Exec[l] <= 0 {
				return fmt.Errorf("profile: func %d exec time at level %d is %d, want > 0", i, l, f.Exec[l])
			}
			if l > 0 {
				if f.Compile[l] < f.Compile[l-1] {
					return fmt.Errorf("profile: func %d compile time decreases from level %d to %d (%d -> %d)",
						i, l-1, l, f.Compile[l-1], f.Compile[l])
				}
				if f.Exec[l] > f.Exec[l-1] {
					return fmt.Errorf("profile: func %d exec time increases from level %d to %d (%d -> %d)",
						i, l-1, l, f.Exec[l-1], f.Exec[l])
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	q := &Profile{Levels: p.Levels, Funcs: make([]FuncTimes, len(p.Funcs))}
	for i, f := range p.Funcs {
		q.Funcs[i] = FuncTimes{
			Name:    f.Name,
			Size:    f.Size,
			Compile: append([]int64(nil), f.Compile...),
			Exec:    append([]int64(nil), f.Exec...),
		}
	}
	return q
}

// WithInterpreter prepends an interpretation tier as a new level 0, per the
// §8 discussion: "if we treat interpretation as the lowest level compilation
// in the optimal compilation schedule problem, the analysis and algorithms
// discussed in this paper can still be applied". Interpretation needs no
// code generation, so its "compilation" costs one tick; its execution runs
// slowdown times slower than the old level-0 (baseline-compiled) code.
// Existing levels shift up by one.
func (p *Profile) WithInterpreter(slowdown float64) (*Profile, error) {
	if slowdown < 1 {
		return nil, fmt.Errorf("profile: interpreter slowdown must be >= 1, got %g", slowdown)
	}
	q := &Profile{Levels: p.Levels + 1, Funcs: make([]FuncTimes, len(p.Funcs))}
	for i, f := range p.Funcs {
		ft := FuncTimes{
			Name:    f.Name,
			Size:    f.Size,
			Compile: make([]int64, 0, p.Levels+1),
			Exec:    make([]int64, 0, p.Levels+1),
		}
		interpExec := int64(float64(f.Exec[0]) * slowdown)
		if interpExec < f.Exec[0] {
			interpExec = f.Exec[0] // overflow guard; keeps monotonicity
		}
		ft.Compile = append(ft.Compile, 1)
		ft.Compile = append(ft.Compile, f.Compile...)
		ft.Exec = append(ft.Exec, interpExec)
		ft.Exec = append(ft.Exec, f.Exec...)
		q.Funcs[i] = ft
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Restrict returns a new profile exposing only the given levels, renumbered
// 0..len(levels)-1 in the given order. The experiment of Fig. 8 restricts the
// four Jikes levels to the lowest two, matching V8's low/high pair.
func (p *Profile) Restrict(levels ...Level) (*Profile, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("profile: Restrict needs at least one level")
	}
	for i, l := range levels {
		if l < 0 || int(l) >= p.Levels {
			return nil, fmt.Errorf("profile: Restrict level %d out of range [0,%d)", l, p.Levels)
		}
		if i > 0 && l <= levels[i-1] {
			return nil, fmt.Errorf("profile: Restrict levels must be strictly increasing")
		}
	}
	q := &Profile{Levels: len(levels), Funcs: make([]FuncTimes, len(p.Funcs))}
	for i, f := range p.Funcs {
		ft := FuncTimes{Name: f.Name, Size: f.Size,
			Compile: make([]int64, len(levels)), Exec: make([]int64, len(levels))}
		for k, l := range levels {
			ft.Compile[k] = f.Compile[l]
			ft.Exec[k] = f.Exec[l]
		}
		q.Funcs[i] = ft
	}
	return q, nil
}
