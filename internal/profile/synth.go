package profile

import (
	"fmt"
	"math"
	"math/rand"
)

// TimingConfig parameterizes timing synthesis. One tick reads naturally as a
// microsecond but nothing depends on the unit.
//
// The defaults approximate the regime the paper reports for Jikes RVM:
// baseline compilation is cheap (it is "a method-level interpreter" in
// spirit), optimizing levels cost roughly one to two orders of magnitude
// more, and deeper levels speed code up with diminishing returns.
type TimingConfig struct {
	// Seed drives the deterministic generator.
	Seed int64
	// Levels is the number of compilation levels (>= 1).
	Levels int
	// SizeMedian and SizeSigma shape the lognormal code-size distribution.
	SizeMedian float64
	SizeSigma  float64
	// CompilePerByte[l] is the compile cost per code byte at level l;
	// CompileBase[l] is the fixed per-compilation overhead. Both must be
	// nondecreasing in l.
	CompilePerByte []float64
	CompileBase    []float64
	// ExecMedian and ExecSigma shape the lognormal per-call execution time of
	// level-0 code across functions.
	ExecMedian float64
	ExecSigma  float64
	// SizeExecExponent couples execution time to code size: exec scales with
	// (size/SizeMedian)^SizeExecExponent. Zero decouples them.
	SizeExecExponent float64
	// Speedup[l] divides level-0 execution time to give level-l execution
	// time. Speedup[0] must be 1 and the slice nondecreasing.
	Speedup []float64
	// SpeedupJitter randomizes each function's per-level speedups by up to
	// the given fraction, modeling functions that benefit unevenly from
	// optimization (clamped to preserve monotonicity).
	SpeedupJitter float64
}

// DefaultTiming returns a TimingConfig with Jikes-RVM-flavoured defaults for
// the given number of levels (supported: 2, 3 or 4).
func DefaultTiming(levels int, seed int64) TimingConfig {
	cfg := TimingConfig{
		Seed:             seed,
		Levels:           levels,
		SizeMedian:       800,
		SizeSigma:        1.0,
		ExecMedian:       120,
		ExecSigma:        0.9,
		SizeExecExponent: 0.3,
		SpeedupJitter:    0.2,
	}
	switch levels {
	case 2:
		cfg.CompilePerByte = []float64{0.3, 20}
		cfg.CompileBase = []float64{60, 7000}
		cfg.Speedup = []float64{1, 2.8}
	case 3:
		cfg.CompilePerByte = []float64{0.3, 12, 30}
		cfg.CompileBase = []float64{60, 4000, 12000}
		cfg.Speedup = []float64{1, 2.5, 3.2}
	case 4:
		cfg.CompilePerByte = []float64{0.3, 12, 24, 40}
		cfg.CompileBase = []float64{60, 4000, 8000, 16000}
		cfg.Speedup = []float64{1, 2.6, 3.1, 3.4}
	default:
		// Geometric extrapolation for unusual level counts.
		cfg.CompilePerByte = make([]float64, levels)
		cfg.CompileBase = make([]float64, levels)
		cfg.Speedup = make([]float64, levels)
		for l := 0; l < levels; l++ {
			cfg.CompilePerByte[l] = math.Pow(4, float64(l))
			cfg.CompileBase[l] = 200 * math.Pow(5, float64(l))
			cfg.Speedup[l] = math.Pow(1.9, float64(l))
		}
		cfg.Speedup[0] = 1
	}
	return cfg
}

// Validate reports the first configuration error, or nil.
func (c *TimingConfig) Validate() error {
	switch {
	case c.Levels < 1:
		return fmt.Errorf("profile: TimingConfig.Levels must be >= 1, got %d", c.Levels)
	case len(c.CompilePerByte) != c.Levels, len(c.CompileBase) != c.Levels, len(c.Speedup) != c.Levels:
		return fmt.Errorf("profile: TimingConfig per-level slices must have length %d", c.Levels)
	case c.SizeMedian <= 0 || c.ExecMedian <= 0:
		return fmt.Errorf("profile: TimingConfig medians must be positive")
	case c.Speedup[0] != 1:
		return fmt.Errorf("profile: TimingConfig.Speedup[0] must be 1, got %g", c.Speedup[0])
	}
	for l := 1; l < c.Levels; l++ {
		if c.CompilePerByte[l] < c.CompilePerByte[l-1] || c.CompileBase[l] < c.CompileBase[l-1] {
			return fmt.Errorf("profile: compile costs must be nondecreasing in level (level %d)", l)
		}
		if c.Speedup[l] < c.Speedup[l-1] {
			return fmt.Errorf("profile: Speedup must be nondecreasing in level (level %d)", l)
		}
	}
	return nil
}

// Synthesize builds a Profile for nfuncs functions under the configuration,
// drawing code sizes from the configured lognormal distribution. The result
// always satisfies Profile.Validate.
func Synthesize(nfuncs int, cfg TimingConfig) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nfuncs < 0 {
		return nil, fmt.Errorf("profile: Synthesize nfuncs must be non-negative, got %d", nfuncs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Profile{Levels: cfg.Levels, Funcs: make([]FuncTimes, nfuncs)}
	for i := 0; i < nfuncs; i++ {
		size := cfg.SizeMedian * math.Exp(rng.NormFloat64()*cfg.SizeSigma)
		if size < 16 {
			size = 16
		}
		p.Funcs[i] = makeFuncTimes(i, int64(size), cfg, rng)
	}
	return p, nil
}

// SynthesizeWithSizes builds a Profile with the given per-function code
// sizes (e.g. derived from a call-graph program) instead of drawing them.
func SynthesizeWithSizes(sizes []int64, cfg TimingConfig) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("profile: size of function %d must be positive, got %d", i, s)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Profile{Levels: cfg.Levels, Funcs: make([]FuncTimes, len(sizes))}
	for i, sz := range sizes {
		p.Funcs[i] = makeFuncTimes(i, sz, cfg, rng)
	}
	return p, nil
}

// makeFuncTimes fills one function's timings for a given size. Callers have
// validated cfg and size.
func makeFuncTimes(i int, sz int64, cfg TimingConfig, rng *rand.Rand) FuncTimes {
	size := float64(sz)
	ft := FuncTimes{
		Name:    fmt.Sprintf("m%04d", i),
		Size:    sz,
		Compile: make([]int64, cfg.Levels),
		Exec:    make([]int64, cfg.Levels),
	}
	exec0 := cfg.ExecMedian * math.Exp(rng.NormFloat64()*cfg.ExecSigma) *
		math.Pow(size/cfg.SizeMedian, cfg.SizeExecExponent)
	if exec0 < 1 {
		exec0 = 1
	}
	prevSpeed := 0.0
	for l := 0; l < cfg.Levels; l++ {
		ct := cfg.CompilePerByte[l]*size + cfg.CompileBase[l]
		ft.Compile[l] = int64(math.Max(1, ct))
		if l > 0 && ft.Compile[l] < ft.Compile[l-1] {
			ft.Compile[l] = ft.Compile[l-1]
		}
		speed := cfg.Speedup[l]
		if l > 0 && cfg.SpeedupJitter > 0 {
			speed *= 1 + (rng.Float64()*2-1)*cfg.SpeedupJitter
		}
		if speed < prevSpeed {
			speed = prevSpeed // keep exec times nonincreasing in level
		}
		prevSpeed = speed
		ft.Exec[l] = int64(math.Max(1, exec0/speed))
		if l > 0 && ft.Exec[l] > ft.Exec[l-1] {
			ft.Exec[l] = ft.Exec[l-1]
		}
	}
	return ft
}
