package profile

import (
	"math"
	"math/rand"

	"repro/internal/trace"
)

// CostModel is a JIT's cost-benefit model: its belief about compilation and
// execution times at each level. Schedulers and online policies consult a
// CostModel to choose levels; the simulator always charges the *true* times
// from the Profile. The gap between the two is exactly what §6.2.2 of the
// paper studies (default model vs. oracle model).
type CostModel interface {
	// Levels returns the number of compilation levels the model covers.
	Levels() int
	// CompileTime returns the estimated compile time of f at level l.
	CompileTime(f trace.FuncID, l Level) int64
	// ExecTime returns the estimated per-call execution time of f at level l.
	ExecTime(f trace.FuncID, l Level) int64
}

// Oracle is the perfect cost-benefit model of §6.2.2: estimates equal the
// measured times.
type Oracle struct{ P *Profile }

// NewOracle returns the oracle model over p.
func NewOracle(p *Profile) Oracle { return Oracle{P: p} }

// Levels implements CostModel.
func (o Oracle) Levels() int { return o.P.Levels }

// CompileTime implements CostModel.
func (o Oracle) CompileTime(f trace.FuncID, l Level) int64 { return o.P.CompileTime(f, l) }

// ExecTime implements CostModel.
func (o Oracle) ExecTime(f trace.FuncID, l Level) int64 { return o.P.ExecTime(f, l) }

// Estimated mimics the default Jikes RVM cost-benefit model (§8): compile
// times are estimated by offline-trained linear functions of code size
// (fairly accurate, since compilation cost really is roughly size-linear),
// while execution benefits are predicted with one *global* per-level speedup
// ratio applied to the function's observed base-level time. Real functions
// benefit unevenly from optimization, so a global ratio is "often quite
// rough"; on top of that the model is conservative — Jikes discounts
// predicted benefits because overestimating them wastes compile time.
type Estimated struct {
	p       *Profile
	compile [][]int64
	exec    [][]int64
}

// EstimatedConfig tunes the synthetic default model.
type EstimatedConfig struct {
	// Noise is the magnitude of the per-function multiplicative estimation
	// error: each base estimate is scaled by a deterministic factor drawn
	// log-uniformly from [1/(1+Noise), 1+Noise].
	Noise float64
	// Conservatism in (0,1] raises believed per-level speedups to this
	// power, systematically understating the benefit of deep optimization
	// (1 = unbiased). The paper's oracle-model experiment (§6.2.2) is the
	// contrast between this bias and the truth.
	Conservatism float64
	// Seed drives the deterministic noise.
	Seed int64
}

// DefaultEstimatedConfig is the configuration used by the Fig. 5 experiments.
func DefaultEstimatedConfig(seed int64) EstimatedConfig {
	return EstimatedConfig{Noise: 1.8, Conservatism: 0.35, Seed: seed}
}

// NewEstimated derives the default (non-oracle) cost-benefit model from p.
func NewEstimated(p *Profile, cfg EstimatedConfig) *Estimated {
	if cfg.Noise < 0 {
		cfg.Noise = 0
	}
	if cfg.Conservatism <= 0 || cfg.Conservatism > 1 {
		cfg.Conservatism = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Estimated{
		p:       p,
		compile: make([][]int64, len(p.Funcs)),
		exec:    make([][]int64, len(p.Funcs)),
	}
	factor := func() float64 {
		hi := math.Log(1 + cfg.Noise)
		return math.Exp(rng.Float64()*2*hi - hi)
	}

	// "Train" one global speedup ratio per level: the geometric mean of the
	// true per-function speedups, discounted by the conservatism exponent.
	belief := make([]float64, p.Levels)
	belief[0] = 1
	for l := 1; l < p.Levels; l++ {
		var logSum float64
		n := 0
		for _, f := range p.Funcs {
			if f.Exec[l] > 0 && f.Exec[0] > 0 {
				logSum += math.Log(float64(f.Exec[0]) / float64(f.Exec[l]))
				n++
			}
		}
		mean := 1.0
		if n > 0 {
			mean = math.Exp(logSum / float64(n))
		}
		belief[l] = math.Pow(mean, cfg.Conservatism)
		if belief[l] < belief[l-1] {
			belief[l] = belief[l-1]
		}
	}

	for i, f := range p.Funcs {
		cs := make([]int64, p.Levels)
		es := make([]int64, p.Levels)
		exec0 := math.Max(1, float64(f.Exec[0])*factor())
		for l := 0; l < p.Levels; l++ {
			cs[l] = int64(math.Max(1, float64(f.Compile[l])*factor()))
			es[l] = int64(math.Max(1, exec0/belief[l]))
			if l > 0 {
				// Preserve monotonicity so the model stays a plausible belief.
				if cs[l] < cs[l-1] {
					cs[l] = cs[l-1]
				}
				if es[l] > es[l-1] {
					es[l] = es[l-1]
				}
			}
		}
		m.compile[i] = cs
		m.exec[i] = es
	}
	return m
}

// Levels implements CostModel.
func (m *Estimated) Levels() int { return m.p.Levels }

// CompileTime implements CostModel.
func (m *Estimated) CompileTime(f trace.FuncID, l Level) int64 { return m.compile[f][l] }

// ExecTime implements CostModel.
func (m *Estimated) ExecTime(f trace.FuncID, l Level) int64 { return m.exec[f][l] }

// CostEffectiveLevel returns the level minimizing the model's view of total
// cost for n invocations of f: compile(l) + n*exec(l). Ties go to the lower
// level (cheaper compile, same believed total). This is the paper's "most
// cost-effective compilation level" (§4.1 and §5.1).
func CostEffectiveLevel(m CostModel, f trace.FuncID, n int64) Level {
	best := Level(0)
	bestCost := m.CompileTime(f, 0) + n*m.ExecTime(f, 0)
	for l := 1; l < m.Levels(); l++ {
		cost := m.CompileTime(f, Level(l)) + n*m.ExecTime(f, Level(l))
		if cost < bestCost {
			bestCost = cost
			best = Level(l)
		}
	}
	return best
}

// ResponsiveLevel returns the level with the smallest estimated compile time;
// under the monotonicity assumption this is level 0. It is IAR's "most
// responsive level" (§5.1).
func ResponsiveLevel(m CostModel, f trace.FuncID) Level {
	best := Level(0)
	bestC := m.CompileTime(f, 0)
	for l := 1; l < m.Levels(); l++ {
		if c := m.CompileTime(f, Level(l)); c < bestC {
			bestC = c
			best = Level(l)
		}
	}
	return best
}
