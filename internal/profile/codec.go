package profile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format makes profiles portable: users with real measurements (as
// the paper collected from Jikes RVM's replay mode) can feed them to the
// schedulers. One header line, then one line per function:
//
//	# jitsched profile v1 levels=<L>
//	<funcID> <name> <size> c:<c0,...,cL-1> e:<e0,...,eL-1>
//
// Functions may appear in any order; missing IDs are an error (the ID space
// must be dense, as traces index into it). '#' lines and blanks are ignored.

const profileHeaderPrefix = "# jitsched profile v1 levels="

// WriteText serializes the profile.
func WriteText(w io.Writer, p *Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s%d\n", profileHeaderPrefix, p.Levels); err != nil {
		return err
	}
	joinInts := func(xs []int64) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = strconv.FormatInt(x, 10)
		}
		return strings.Join(parts, ",")
	}
	for i, f := range p.Funcs {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("m%04d", i)
		}
		if strings.ContainsAny(name, " \t") {
			return fmt.Errorf("profile: function %d name %q contains whitespace", i, name)
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d c:%s e:%s\n",
			i, name, f.Size, joinInts(f.Compile), joinInts(f.Exec)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a profile written by WriteText and validates it.
func ReadText(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var p *Profile
	filled := make(map[int]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, profileHeaderPrefix); ok && p == nil {
				levels, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil || levels < 1 {
					return nil, fmt.Errorf("profile: line %d: bad level count %q", lineNo, rest)
				}
				p = &Profile{Levels: levels}
			}
			continue
		}
		if p == nil {
			return nil, fmt.Errorf("profile: line %d: data before %q header", lineNo, profileHeaderPrefix)
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("profile: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("profile: line %d: bad function id %q", lineNo, fields[0])
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: line %d: bad size %q", lineNo, fields[2])
		}
		parseVec := func(s, prefix string) ([]int64, error) {
			body, ok := strings.CutPrefix(s, prefix)
			if !ok {
				return nil, fmt.Errorf("profile: line %d: expected %q vector, got %q", lineNo, prefix, s)
			}
			parts := strings.Split(body, ",")
			if len(parts) != p.Levels {
				return nil, fmt.Errorf("profile: line %d: %d values for %d levels", lineNo, len(parts), p.Levels)
			}
			out := make([]int64, len(parts))
			for i, part := range parts {
				v, err := strconv.ParseInt(part, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("profile: line %d: bad value %q", lineNo, part)
				}
				out[i] = v
			}
			return out, nil
		}
		compile, err := parseVec(fields[3], "c:")
		if err != nil {
			return nil, err
		}
		exec, err := parseVec(fields[4], "e:")
		if err != nil {
			return nil, err
		}
		if filled[id] {
			return nil, fmt.Errorf("profile: line %d: duplicate function id %d", lineNo, id)
		}
		filled[id] = true
		for len(p.Funcs) <= id {
			p.Funcs = append(p.Funcs, FuncTimes{})
		}
		p.Funcs[id] = FuncTimes{Name: fields[1], Size: size, Compile: compile, Exec: exec}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: scanning: %w", err)
	}
	if p == nil {
		return nil, fmt.Errorf("profile: missing %q header", profileHeaderPrefix)
	}
	for i := range p.Funcs {
		if !filled[i] {
			return nil, fmt.Errorf("profile: function id %d missing (ids must be dense)", i)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
