package profile

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// mustSynth is the test-local stand-in for the removed MustSynthesize: the
// configurations below are static, so a failure is a programmer mistake.
func mustSynth(nfuncs int, cfg TimingConfig) *Profile {
	p, err := Synthesize(nfuncs, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func twoFuncProfile() *Profile {
	return &Profile{
		Levels: 3,
		Funcs: []FuncTimes{
			{Name: "a", Size: 100, Compile: []int64{10, 50, 200}, Exec: []int64{40, 20, 10}},
			{Name: "b", Size: 400, Compile: []int64{20, 90, 400}, Exec: []int64{100, 60, 55}},
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := twoFuncProfile().Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero levels", func(p *Profile) { p.Levels = 0 }},
		{"short compile slice", func(p *Profile) { p.Funcs[0].Compile = p.Funcs[0].Compile[:2] }},
		{"nonpositive compile", func(p *Profile) { p.Funcs[1].Compile[0] = 0 }},
		{"nonpositive exec", func(p *Profile) { p.Funcs[0].Exec[2] = -1 }},
		{"compile decreases", func(p *Profile) { p.Funcs[0].Compile[2] = 5 }},
		{"exec increases", func(p *Profile) { p.Funcs[1].Exec[2] = 500 }},
	}
	for _, c := range cases {
		p := twoFuncProfile()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

func TestBestExecTime(t *testing.T) {
	p := twoFuncProfile()
	if got := p.BestExecTime(0); got != 10 {
		t.Errorf("BestExecTime(0) = %d, want 10", got)
	}
	if got := p.BestExecTime(1); got != 55 {
		t.Errorf("BestExecTime(1) = %d, want 55", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := twoFuncProfile()
	q := p.Clone()
	q.Funcs[0].Compile[0] = 999
	if p.Funcs[0].Compile[0] == 999 {
		t.Error("Clone shares compile slice")
	}
}

func TestRestrict(t *testing.T) {
	p := twoFuncProfile()
	q, err := p.Restrict(0, 2)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if q.Levels != 2 {
		t.Fatalf("restricted levels = %d, want 2", q.Levels)
	}
	if q.CompileTime(1, 1) != 400 || q.ExecTime(1, 1) != 55 {
		t.Errorf("restricted level 1 should map to original level 2")
	}
	if err := q.Validate(); err != nil {
		t.Errorf("restricted profile invalid: %v", err)
	}
	if _, err := p.Restrict(); err == nil {
		t.Error("want error for empty restriction")
	}
	if _, err := p.Restrict(2, 0); err == nil {
		t.Error("want error for non-increasing levels")
	}
	if _, err := p.Restrict(0, 7); err == nil {
		t.Error("want error for out-of-range level")
	}
}

func TestWithInterpreter(t *testing.T) {
	p := twoFuncProfile()
	q, err := p.WithInterpreter(5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Levels != p.Levels+1 {
		t.Fatalf("levels = %d, want %d", q.Levels, p.Levels+1)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("interpreter-augmented profile invalid: %v", err)
	}
	for f := trace.FuncID(0); int(f) < p.NumFuncs(); f++ {
		if q.CompileTime(f, 0) != 1 {
			t.Errorf("func %d: interpretation 'compile' = %d, want 1", f, q.CompileTime(f, 0))
		}
		if q.ExecTime(f, 0) != 5*p.ExecTime(f, 0) {
			t.Errorf("func %d: interpreted exec = %d, want %d", f, q.ExecTime(f, 0), 5*p.ExecTime(f, 0))
		}
		for l := 0; l < p.Levels; l++ {
			if q.CompileTime(f, Level(l+1)) != p.CompileTime(f, Level(l)) ||
				q.ExecTime(f, Level(l+1)) != p.ExecTime(f, Level(l)) {
				t.Errorf("func %d: level %d not shifted intact", f, l)
			}
		}
	}
	if _, err := p.WithInterpreter(0.5); err == nil {
		t.Error("want error for slowdown < 1")
	}
}

func TestOracleMatchesProfile(t *testing.T) {
	p := twoFuncProfile()
	o := NewOracle(p)
	if o.Levels() != 3 {
		t.Errorf("oracle levels = %d, want 3", o.Levels())
	}
	for f := trace.FuncID(0); f < 2; f++ {
		for l := Level(0); l < 3; l++ {
			if o.CompileTime(f, l) != p.CompileTime(f, l) || o.ExecTime(f, l) != p.ExecTime(f, l) {
				t.Errorf("oracle diverges from profile at f=%d l=%d", f, l)
			}
		}
	}
}

func TestEstimatedIsMonotoneAndDeterministic(t *testing.T) {
	p := mustSynth(60, DefaultTiming(4, 3))
	m1 := NewEstimated(p, DefaultEstimatedConfig(99))
	m2 := NewEstimated(p, DefaultEstimatedConfig(99))
	different := false
	for f := 0; f < p.NumFuncs(); f++ {
		for l := 0; l < p.Levels; l++ {
			fl, ll := trace.FuncID(f), Level(l)
			if m1.CompileTime(fl, ll) != m2.CompileTime(fl, ll) {
				t.Fatal("same seed produced different estimates")
			}
			if m1.CompileTime(fl, ll) != p.CompileTime(fl, ll) {
				different = true
			}
			if l > 0 {
				if m1.CompileTime(fl, ll) < m1.CompileTime(fl, ll-1) {
					t.Errorf("estimated compile time decreases at f=%d l=%d", f, l)
				}
				if m1.ExecTime(fl, ll) > m1.ExecTime(fl, ll-1) {
					t.Errorf("estimated exec time increases at f=%d l=%d", f, l)
				}
			}
		}
	}
	if !different {
		t.Error("estimated model is identical to the oracle; no estimation error introduced")
	}
}

func TestEstimatedZeroNoiseCompile(t *testing.T) {
	p := twoFuncProfile()
	m := NewEstimated(p, EstimatedConfig{Noise: 0, Conservatism: 1, Seed: 1})
	for f := trace.FuncID(0); f < 2; f++ {
		for l := Level(0); l < 3; l++ {
			if m.CompileTime(f, l) != p.CompileTime(f, l) {
				t.Errorf("zero-noise compile estimate differs from truth at f=%d l=%d", f, l)
			}
		}
	}
}

// TestEstimatedConservatism: a conservative model believes in smaller
// speedups, so its predicted deep-level execution times are no smaller than
// an unbiased model's.
func TestEstimatedConservatism(t *testing.T) {
	p := mustSynth(40, DefaultTiming(4, 4))
	unbiased := NewEstimated(p, EstimatedConfig{Noise: 0, Conservatism: 1, Seed: 2})
	conservative := NewEstimated(p, EstimatedConfig{Noise: 0, Conservatism: 0.5, Seed: 2})
	for f := 0; f < p.NumFuncs(); f++ {
		for l := 1; l < p.Levels; l++ {
			fl, ll := trace.FuncID(f), Level(l)
			if conservative.ExecTime(fl, ll) < unbiased.ExecTime(fl, ll) {
				t.Fatalf("conservative model predicts faster code at f=%d l=%d", f, l)
			}
		}
	}
}

func TestCostEffectiveLevel(t *testing.T) {
	p := twoFuncProfile()
	o := NewOracle(p)
	// Function a: level costs for n=1: 50, 70, 210 -> level 0.
	if got := CostEffectiveLevel(o, 0, 1); got != 0 {
		t.Errorf("n=1: level %d, want 0", got)
	}
	// n=10: 410, 250, 300 -> level 1.
	if got := CostEffectiveLevel(o, 0, 10); got != 1 {
		t.Errorf("n=10: level %d, want 1", got)
	}
	// n=100: 4010, 2050, 1200 -> level 2.
	if got := CostEffectiveLevel(o, 0, 100); got != 2 {
		t.Errorf("n=100: level %d, want 2", got)
	}
}

func TestResponsiveLevel(t *testing.T) {
	p := twoFuncProfile()
	if got := ResponsiveLevel(NewOracle(p), 0); got != 0 {
		t.Errorf("responsive level = %d, want 0", got)
	}
}

// TestCostEffectiveMonotoneInCalls: with more invocations, the chosen level
// never decreases — a direct consequence of the monotonicity assumptions.
func TestCostEffectiveMonotoneInCalls(t *testing.T) {
	p := mustSynth(30, DefaultTiming(4, 5))
	o := NewOracle(p)
	f := func(fRaw uint8, n1, n2 uint16) bool {
		fid := trace.FuncID(int(fRaw) % p.NumFuncs())
		lo, hi := int64(n1), int64(n2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return CostEffectiveLevel(o, fid, lo) <= CostEffectiveLevel(o, fid, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeValidAndDeterministic(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5} {
		p, err := Synthesize(80, DefaultTiming(levels, 7))
		if err != nil {
			t.Fatalf("levels=%d: %v", levels, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("levels=%d: synthesized profile invalid: %v", levels, err)
		}
		q := mustSynth(80, DefaultTiming(levels, 7))
		for i := range p.Funcs {
			if p.Funcs[i].Compile[0] != q.Funcs[i].Compile[0] || p.Funcs[i].Exec[0] != q.Funcs[i].Exec[0] {
				t.Fatalf("levels=%d: synthesis not deterministic", levels)
			}
		}
	}
}

func TestSynthesizeValidation(t *testing.T) {
	cfg := DefaultTiming(4, 1)
	cfg.Speedup[0] = 2
	if _, err := Synthesize(5, cfg); err == nil {
		t.Error("want error for Speedup[0] != 1")
	}
	cfg = DefaultTiming(4, 1)
	cfg.CompilePerByte[3] = 0
	if _, err := Synthesize(5, cfg); err == nil {
		t.Error("want error for decreasing compile cost")
	}
	cfg = DefaultTiming(4, 1)
	if _, err := Synthesize(-1, cfg); err == nil {
		t.Error("want error for negative nfuncs")
	}
}
