package profile_test

import (
	"fmt"

	"repro/internal/profile"
)

// ExampleCostEffectiveLevel picks the level minimizing compile time plus
// total execution time — the quantity Theorem 1 and the cost-benefit models
// revolve around.
func ExampleCostEffectiveLevel() {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f", Compile: []int64{10, 100}, Exec: []int64{50, 10}},
		},
	}
	o := profile.NewOracle(p)
	fmt.Println(profile.CostEffectiveLevel(o, 0, 1), profile.CostEffectiveLevel(o, 0, 10))
	// Output:
	// 0 1
}

// ExampleProfile_WithInterpreter prepends the §8 interpretation tier.
func ExampleProfile_WithInterpreter() {
	p := &profile.Profile{
		Levels: 1,
		Funcs: []profile.FuncTimes{
			{Name: "f", Compile: []int64{100}, Exec: []int64{20}},
		},
	}
	q, err := p.WithInterpreter(5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("levels=%d compile=%v exec=%v\n", q.Levels, q.Funcs[0].Compile, q.Funcs[0].Exec)
	// Output:
	// levels=2 compile=[1 100] exec=[100 20]
}
