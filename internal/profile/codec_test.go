package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProfileTextRoundTrip(t *testing.T) {
	p := mustSynth(50, DefaultTiming(4, 7))
	var buf bytes.Buffer
	if err := WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Levels != p.Levels || got.NumFuncs() != p.NumFuncs() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Levels, got.NumFuncs(), p.Levels, p.NumFuncs())
	}
	if !reflect.DeepEqual(got.Funcs, p.Funcs) {
		for i := range p.Funcs {
			if !reflect.DeepEqual(got.Funcs[i], p.Funcs[i]) {
				t.Fatalf("func %d differs: %+v vs %+v", i, got.Funcs[i], p.Funcs[i])
			}
		}
	}
}

func TestProfileTextOutOfOrderIDs(t *testing.T) {
	in := `# jitsched profile v1 levels=2
1 b 10 c:2,4 e:9,3
0 a 20 c:1,3 e:8,2
`
	p, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Name != "a" || p.Funcs[1].Name != "b" {
		t.Errorf("ids not honored: %+v", p.Funcs)
	}
}

func TestProfileTextRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "0 a 1 c:1,2 e:2,1\n"},
		{"bad levels", "# jitsched profile v1 levels=x\n"},
		{"zero levels", "# jitsched profile v1 levels=0\n"},
		{"wrong fields", "# jitsched profile v1 levels=2\n0 a 1 c:1,2\n"},
		{"bad id", "# jitsched profile v1 levels=2\n-1 a 1 c:1,2 e:2,1\n"},
		{"bad size", "# jitsched profile v1 levels=2\n0 a x c:1,2 e:2,1\n"},
		{"wrong vector len", "# jitsched profile v1 levels=2\n0 a 1 c:1 e:2,1\n"},
		{"bad vector value", "# jitsched profile v1 levels=2\n0 a 1 c:1,y e:2,1\n"},
		{"wrong vector tag", "# jitsched profile v1 levels=2\n0 a 1 x:1,2 e:2,1\n"},
		{"duplicate id", "# jitsched profile v1 levels=2\n0 a 1 c:1,2 e:2,1\n0 b 1 c:1,2 e:2,1\n"},
		{"sparse ids", "# jitsched profile v1 levels=2\n1 a 1 c:1,2 e:2,1\n"},
		{"monotonicity", "# jitsched profile v1 levels=2\n0 a 1 c:2,1 e:2,1\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestProfileTextRejectsWhitespaceNames(t *testing.T) {
	p := &Profile{Levels: 1, Funcs: []FuncTimes{
		{Name: "has space", Compile: []int64{1}, Exec: []int64{1}},
	}}
	if err := WriteText(&bytes.Buffer{}, p); err == nil {
		t.Error("want error for whitespace in name")
	}
}

func TestProfileTextDefaultNames(t *testing.T) {
	p := &Profile{Levels: 1, Funcs: []FuncTimes{
		{Compile: []int64{1}, Exec: []int64{1}},
	}}
	var buf bytes.Buffer
	if err := WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Funcs[0].Name != "m0000" {
		t.Errorf("default name %q", got.Funcs[0].Name)
	}
}

// FuzzProfileReadText checks the parser never panics and round-trips what
// it accepts.
func FuzzProfileReadText(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteText(&buf, mustSynth(3, DefaultTiming(2, 1)))
	f.Add(buf.String())
	f.Add("# jitsched profile v1 levels=2\n0 a 1 c:1,2 e:2,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		p, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, p); err != nil {
			// Accepted profiles with odd names may be unwritable; that is
			// fine as long as nothing panics.
			return
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Levels != p.Levels || again.NumFuncs() != p.NumFuncs() {
			t.Fatal("profile round trip unstable")
		}
	})
}
