package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/trace"
)

func workload(seed int64) (*trace.Trace, *profile.Profile) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "wl", NumFuncs: 300, Length: 60000, Seed: seed,
		ZipfS: 1.5, Phases: 3, CoreFuncs: 30, CoreShare: 0.5, BurstMean: 3,
		WarmupFrac: 0.1, WarmupCoverage: 0.7,
	})
	p := testkit.Synth(300, profile.DefaultTiming(4, seed+1))
	return tr, p
}

func TestNewJikesValidation(t *testing.T) {
	p := testkit.Synth(3, profile.DefaultTiming(4, 1))
	o := profile.NewOracle(p)
	if _, err := NewJikes(nil, 3, 100); err == nil {
		t.Error("want error for nil model")
	}
	if _, err := NewJikes(o, -1, 100); err == nil {
		t.Error("want error for negative nfuncs")
	}
	if _, err := NewJikes(o, 3, 0); err == nil {
		t.Error("want error for zero period")
	}
}

func TestJikesFirstCallIsLowestLevel(t *testing.T) {
	tr, p := workload(1)
	pol, err := NewJikes(profile.NewOracle(p), p.NumFuncs(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[trace.FuncID]bool)
	for _, c := range res.Compiles {
		if !first[c.Event.Func] {
			first[c.Event.Func] = true
			if c.Event.Level != 0 {
				t.Fatalf("first compilation of %d at level %d, want 0", c.Event.Func, c.Event.Level)
			}
		}
	}
	if len(first) != tr.UniqueFuncs() {
		t.Errorf("compiled %d functions, trace calls %d", len(first), tr.UniqueFuncs())
	}
}

func TestJikesRecompilesHotFunctions(t *testing.T) {
	tr, p := workload(2)
	pol, err := NewJikes(profile.NewOracle(p), p.NumFuncs(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recompiles := 0
	perFunc := make(map[trace.FuncID]int)
	for _, c := range res.Compiles {
		perFunc[c.Event.Func]++
		if perFunc[c.Event.Func] > 1 {
			recompiles++
			if c.Event.Level == 0 {
				t.Fatalf("recompilation of %d at level 0", c.Event.Func)
			}
		}
	}
	if recompiles == 0 {
		t.Error("Jikes policy never recompiled anything on a hot workload")
	}
	// The hottest function must get recompiled.
	counts := tr.Counts()
	hottest := trace.FuncID(0)
	for f, n := range counts {
		if n > counts[hottest] {
			hottest = trace.FuncID(f)
		}
	}
	if perFunc[hottest] < 2 {
		t.Errorf("hottest function %d was never recompiled", hottest)
	}
}

// TestJikesLevelsNeverDecrease: recompilation requests only go up in level.
func TestJikesLevelsNeverDecrease(t *testing.T) {
	tr, p := workload(3)
	pol, err := NewJikes(profile.NewEstimated(p, profile.DefaultEstimatedConfig(7)), p.NumFuncs(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lastLevel := make(map[trace.FuncID]profile.Level)
	for _, c := range res.Compiles {
		if prev, ok := lastLevel[c.Event.Func]; ok && c.Event.Level <= prev {
			t.Fatalf("function %d recompiled at level %d after level %d", c.Event.Func, c.Event.Level, prev)
		}
		lastLevel[c.Event.Func] = c.Event.Level
	}
}

// TestJikesSamplingPeriodMatters: sampling less often delays recompilation
// and can only make the make-span worse or equal.
func TestJikesSamplingPeriodMatters(t *testing.T) {
	tr, p := workload(4)
	spans := make([]int64, 0, 3)
	for _, period := range []int64{2000, 50000, 2000000} {
		pol, err := NewJikes(profile.NewOracle(p), p.NumFuncs(), period)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, res.MakeSpan)
	}
	if !(spans[0] < spans[2]) {
		t.Errorf("coarser sampling should eventually hurt: spans %v", spans)
	}
}

func TestJikesOrganizerBatches(t *testing.T) {
	tr, p := workload(6)
	if _, err := NewJikesOrganizer(profile.NewOracle(p), p.NumFuncs(), 5000, 0); err == nil {
		t.Error("want error for non-positive organizer period")
	}
	pol, err := NewJikesOrganizer(profile.NewOracle(p), p.NumFuncs(), 5000, 80000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recompiles := 0
	perFunc := map[trace.FuncID]int{}
	for _, c := range res.Compiles {
		perFunc[c.Event.Func]++
		if perFunc[c.Event.Func] > 1 {
			recompiles++
		}
	}
	if recompiles == 0 {
		t.Error("organizer variant never recompiled anything")
	}
	// The organizer variant must stay in the same performance regime as the
	// per-sample variant: same scheme, batched decisions.
	perSample, err := NewJikes(profile.NewOracle(p), p.NumFuncs(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.RunPolicy(tr, p, perSample, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.MakeSpan) / float64(ref.MakeSpan)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("organizer variant diverges from per-sample: ratio %.2f", ratio)
	}
}

func TestPlannedPolicyEqualsReplay(t *testing.T) {
	tr, p := workload(7)
	sched, err := core.IAR(tr, p, core.IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	online, err := sim.RunPolicy(tr, p, NewPlanned(sched), sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Installing the whole plan at time zero is exactly the static replay.
	if online.MakeSpan != replay.MakeSpan {
		t.Errorf("planned policy make-span %d != replay %d", online.MakeSpan, replay.MakeSpan)
	}
}

func TestPlannedPolicyFallsBack(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 5}, Exec: []int64{10, 2}},
			{Compile: []int64{3, 9}, Exec: []int64{10, 2}},
		},
	}
	// The plan only covers function 0; function 1 must fall back to
	// on-demand level 0.
	tr := trace.New("t", []trace.FuncID{0, 1})
	plan := sim.Schedule{{Func: 0, Level: 1}}
	res, err := sim.RunPolicy(tr, p, NewPlanned(plan), sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compiles) != 2 {
		t.Fatalf("expected 2 compilations, got %d", len(res.Compiles))
	}
	var sawFallback bool
	for _, c := range res.Compiles {
		if c.Event.Func == 1 {
			sawFallback = true
			if c.Event.Level != 0 {
				t.Errorf("fallback compiled at level %d, want 0", c.Event.Level)
			}
		}
	}
	if !sawFallback {
		t.Error("unplanned function was never compiled")
	}
}

func TestNewV8Validation(t *testing.T) {
	if _, err := NewV8(0); err == nil {
		t.Error("want error for high level < 1")
	}
}

func TestV8SecondInvocationPromotes(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 10}, Exec: []int64{20, 2}},
			{Compile: []int64{1, 10}, Exec: []int64{20, 2}},
		},
	}
	// f0 called three times, f1 once: f0 gets low then high; f1 only low.
	tr := trace.New("t", []trace.FuncID{0, 0, 1, 0})
	pol, err := NewV8(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	sched := res.ScheduleOf()
	want := sim.Schedule{{Func: 0, Level: 0}, {Func: 0, Level: 1}, {Func: 1, Level: 0}}
	if len(sched) != len(want) {
		t.Fatalf("schedule %v, want %v", sched, want)
	}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("schedule %v, want %v", sched, want)
		}
	}
	// Timeline: c0l done 1, e0 [1,21); second call requests high at 21
	// (done 31), starts 21 at low [21,41); f1 low done 42, e1 [42,62);
	// fourth call at 62 uses high: [62,64).
	if res.MakeSpan != 64 {
		t.Errorf("make-span = %d, want 64", res.MakeSpan)
	}
	if lv := res.CallLevels[3]; lv != 1 {
		t.Errorf("fourth call ran at level %d, want 1", lv)
	}
}

func TestOnDemandPolicies(t *testing.T) {
	tr, p := workload(5)
	// Level-0 on-demand equals the base-level single-level scheme replayed
	// online: same levels, compile at first call.
	res, err := sim.RunPolicy(tr, p, NewOnDemand(nil), sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Compiles {
		if c.Event.Level != 0 {
			t.Fatalf("nil-levels on-demand compiled at level %d", c.Event.Level)
		}
	}
	if got, want := len(res.Compiles), tr.UniqueFuncs(); got != want {
		t.Errorf("%d compilations, want %d", got, want)
	}

	levels := core.SingleCoreLevels(tr, profile.NewOracle(p))
	res2, err := sim.RunPolicy(tr, p, NewOnDemand(levels), sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.Compiles {
		if c.Event.Level != levels[c.Event.Func] {
			t.Fatalf("on-demand compiled %d at %d, want %d", c.Event.Func, c.Event.Level, levels[c.Event.Func])
		}
	}
}

// TestOnlineNeverBeatsIARReplay: the online schemes face queueing delays a
// precomputed IAR schedule does not; IAR should win on these workloads.
func TestOnlineNeverBeatsIARReplay(t *testing.T) {
	for seed := int64(11); seed < 14; seed++ {
		tr, p := workload(seed)
		iar, err := core.IAR(tr, p, core.IAROptions{})
		if err != nil {
			t.Fatal(err)
		}
		iarRes, err := sim.Run(tr, p, iar, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := NewJikes(profile.NewOracle(p), p.NumFuncs(), 50000)
		if err != nil {
			t.Fatal(err)
		}
		jikesRes, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if jikesRes.MakeSpan < iarRes.MakeSpan {
			t.Errorf("seed %d: Jikes (%d) beat IAR (%d)", seed, jikesRes.MakeSpan, iarRes.MakeSpan)
		}
	}
}
