// Package policy implements the online compilation-scheduling schemes of
// real runtime systems that the paper evaluates: the default Jikes RVM
// scheme (§6.2.1), the V8 scheme (§6.2.4), and plain on-demand compilation.
// Each is a sim.Policy that issues compile requests as the simulated
// execution unfolds.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Jikes reproduces the default Jikes RVM compilation scheduling scheme:
//
//   - at a function's first invocation, compile it at the lowest level
//     (blocking);
//   - a timer-based sampler observes the executing function every Period
//     ticks and counts how often each function is seen on the call stack;
//   - after a sample of function f, with k the times f has been seen, l its
//     last compiled level, and m the level minimizing e_j*k' + c_j over
//     levels j > l under the cost-benefit model: if e_m*k' + c_m < e_l*k',
//     enqueue a recompilation of f at level m.
//
// k' is the sampler's estimate of how many invocations k samples represent:
// each sample stands for Period ticks of execution in f, so k' =
// k*Period/e_l. (The paper states the §6.2.1 criterion directly in terms of
// the sample count; converting samples to invocation counts is how Jikes
// RVM's adaptive optimization system makes the two sides of the inequality
// commensurable, and is required for the criterion to be meaningful when the
// sampling period spans many calls.)
type Jikes struct {
	model  profile.CostModel
	period int64
	seen   []int64         // sampler hit counts per function
	last   []profile.Level // level of the last requested compilation
	active []bool          // whether the function has been requested at all

	// organizer, when positive, batches recompilation decisions the way
	// Jikes RVM's adaptive optimization system does: samples accumulate in
	// a buffer and a periodic organizer pass evaluates every sampled method
	// at once, possibly enqueueing several recompilations back to back.
	// Zero evaluates each sample immediately.
	organizer    int64
	nextOrganize int64
	sampled      map[trace.FuncID]struct{} // functions sampled since the last pass
}

// NewJikes builds the Jikes policy for nfuncs functions, sampling every
// period ticks, choosing recompilation levels with the given cost-benefit
// model.
func NewJikes(model profile.CostModel, nfuncs int, period int64) (*Jikes, error) {
	if model == nil {
		return nil, fmt.Errorf("policy: Jikes needs a cost-benefit model")
	}
	if nfuncs < 0 {
		return nil, fmt.Errorf("policy: negative function count %d", nfuncs)
	}
	if period <= 0 {
		return nil, fmt.Errorf("policy: Jikes sampling period must be positive, got %d", period)
	}
	return &Jikes{
		model:  model,
		period: period,
		seen:   make([]int64, nfuncs),
		last:   make([]profile.Level, nfuncs),
		active: make([]bool, nfuncs),
	}, nil
}

// NewJikesOrganizer builds the Jikes policy with batched recompilation
// decisions: samples accumulate and every organizerPeriod ticks an organizer
// pass re-evaluates all methods sampled since the previous pass. This is the
// structure of Jikes RVM's AOS (a sampling thread feeding an organizer
// thread) and the source of bursty compile-queue pressure.
func NewJikesOrganizer(model profile.CostModel, nfuncs int, samplePeriod, organizerPeriod int64) (*Jikes, error) {
	j, err := NewJikes(model, nfuncs, samplePeriod)
	if err != nil {
		return nil, err
	}
	if organizerPeriod <= 0 {
		return nil, fmt.Errorf("policy: organizer period must be positive, got %d", organizerPeriod)
	}
	j.organizer = organizerPeriod
	j.nextOrganize = organizerPeriod
	j.sampled = make(map[trace.FuncID]struct{})
	return j, nil
}

// FirstCall implements sim.Policy: first invocations compile at the lowest
// level.
func (j *Jikes) FirstCall(f trace.FuncID, now int64) profile.Level {
	j.active[f] = true
	j.last[f] = 0
	return 0
}

// BeforeCall implements sim.Policy; the Jikes scheme acts only on samples.
func (j *Jikes) BeforeCall(trace.FuncID, int64, int64) []sim.Request { return nil }

// Sample implements sim.Policy: the sampled function's hotness count grows
// and the cost-benefit recompilation test runs — immediately for the
// per-sample variant, or at the next organizer pass for the batched one.
func (j *Jikes) Sample(f trace.FuncID, now int64) []sim.Request {
	j.seen[f]++
	if j.organizer > 0 {
		j.sampled[f] = struct{}{}
		if now < j.nextOrganize {
			return nil
		}
		j.nextOrganize = now + j.organizer
		// Evaluate hottest-first (ties by id), deterministically: the
		// organizer naturally prioritizes the methods dominating the
		// samples, and map order must not leak into results.
		batch := make([]trace.FuncID, 0, len(j.sampled))
		for g := range j.sampled {
			batch = append(batch, g)
		}
		sort.Slice(batch, func(a, b int) bool {
			if j.seen[batch[a]] != j.seen[batch[b]] {
				return j.seen[batch[a]] > j.seen[batch[b]]
			}
			return batch[a] < batch[b]
		})
		var reqs []sim.Request
		for _, g := range batch {
			if r := j.evaluate(g); r != nil {
				reqs = append(reqs, *r)
			}
		}
		clear(j.sampled)
		return reqs
	}
	if r := j.evaluate(f); r != nil {
		return []sim.Request{*r}
	}
	return nil
}

// evaluate runs the §6.2.1 cost-benefit recompilation test for one function
// and returns the recompilation request it mandates, if any.
func (j *Jikes) evaluate(f trace.FuncID) *sim.Request {
	if !j.active[f] {
		return nil
	}
	l := j.last[f]
	el := j.model.ExecTime(f, l)
	if el <= 0 {
		return nil
	}
	// k' = samples * period / e_l: the invocation count the observed samples
	// represent under the model's view of the current code version.
	kEff := j.seen[f] * j.period / el
	if kEff <= 0 {
		kEff = 1
	}
	bestLevel := l
	bestCost := int64(1)<<62 - 1
	for m := l + 1; int(m) < j.model.Levels(); m++ {
		if cost := j.model.ExecTime(f, m)*kEff + j.model.CompileTime(f, m); cost < bestCost {
			bestCost = cost
			bestLevel = m
		}
	}
	if bestLevel == l {
		return nil
	}
	if bestCost < el*kEff {
		j.last[f] = bestLevel
		return &sim.Request{Func: f, Level: bestLevel}
	}
	return nil
}

// SamplePeriod implements sim.Policy.
func (j *Jikes) SamplePeriod() int64 { return j.period }

// V8 reproduces the V8 scheduling scheme of §6.2.4: two levels only; a
// function is compiled at the low level when first encountered and
// recompiled at the high level at its second invocation.
type V8 struct {
	high profile.Level
}

// NewV8 builds the V8 policy. high is the optimizing level (V8 itself has
// exactly two levels, so high is 1 when driving a two-level profile).
func NewV8(high profile.Level) (*V8, error) {
	if high < 1 {
		return nil, fmt.Errorf("policy: V8 high level must be >= 1, got %d", high)
	}
	return &V8{high: high}, nil
}

// FirstCall implements sim.Policy.
func (v *V8) FirstCall(f trace.FuncID, now int64) profile.Level { return 0 }

// BeforeCall implements sim.Policy: the second invocation triggers the
// high-level recompilation.
func (v *V8) BeforeCall(f trace.FuncID, nth int64, now int64) []sim.Request {
	if nth == 2 {
		return []sim.Request{{Func: f, Level: v.high}}
	}
	return nil
}

// Sample implements sim.Policy; V8's scheme is not sampling-driven.
func (v *V8) Sample(trace.FuncID, int64) []sim.Request { return nil }

// SamplePeriod implements sim.Policy.
func (v *V8) SamplePeriod() int64 { return 0 }

// Planned installs a precomputed compilation schedule into the JIT's queue
// at program start — the deployment mode §8 sketches for IAR: a schedule
// computed offline (e.g. from a cross-run-predicted call sequence) drives
// the compile queue, while functions the plan missed fall back to on-demand
// base-level compilation.
type Planned struct {
	plan      sim.Schedule
	installed bool
}

// NewPlanned builds the policy around the given schedule.
func NewPlanned(plan sim.Schedule) *Planned {
	return &Planned{plan: plan.Clone()}
}

// BeforeCall implements sim.Policy: the whole plan enters the queue when
// execution begins (time of the first call).
func (pl *Planned) BeforeCall(f trace.FuncID, nth int64, now int64) []sim.Request {
	if pl.installed {
		return nil
	}
	pl.installed = true
	reqs := make([]sim.Request, len(pl.plan))
	for i, ev := range pl.plan {
		reqs[i] = sim.Request{Func: ev.Func, Level: ev.Level}
	}
	return reqs
}

// FirstCall implements sim.Policy: unplanned functions compile on demand at
// the base level.
func (pl *Planned) FirstCall(f trace.FuncID, now int64) profile.Level { return 0 }

// Sample implements sim.Policy.
func (pl *Planned) Sample(trace.FuncID, int64) []sim.Request { return nil }

// SamplePeriod implements sim.Policy.
func (pl *Planned) SamplePeriod() int64 { return 0 }

// OnDemand compiles each function once, at a fixed per-function level, when
// it is first invoked — the classic scheme that §4.1 proves optimal on a
// single core when the levels are the most cost-effective ones.
type OnDemand struct {
	levels []profile.Level
}

// NewOnDemand builds the on-demand policy. levels[f] is the level for
// function f; a nil slice means level 0 for everyone.
func NewOnDemand(levels []profile.Level) *OnDemand {
	return &OnDemand{levels: levels}
}

// FirstCall implements sim.Policy.
func (o *OnDemand) FirstCall(f trace.FuncID, now int64) profile.Level {
	if o.levels == nil {
		return 0
	}
	return o.levels[f]
}

// BeforeCall implements sim.Policy.
func (o *OnDemand) BeforeCall(trace.FuncID, int64, int64) []sim.Request { return nil }

// Sample implements sim.Policy.
func (o *OnDemand) Sample(trace.FuncID, int64) []sim.Request { return nil }

// SamplePeriod implements sim.Policy.
func (o *OnDemand) SamplePeriod() int64 { return 0 }
