// Package testkit holds shared test fixtures. It exists so that the
// production packages carry no panicking convenience constructors: the old
// trace.MustGenerate / profile.MustSynthesize helpers now live here, where a
// panic on a statically mistyped test configuration is a test failure and
// nothing more. Production code must use trace.Generate / profile.Synthesize
// and handle the error.
//
// This package is imported only from _test.go files.
package testkit

import (
	"repro/internal/profile"
	"repro/internal/trace"
)

// Gen generates a synthetic trace for a static test configuration, panicking
// on configuration errors (which can only be programmer mistakes in a test).
func Gen(cfg trace.GenConfig) *trace.Trace {
	t, err := trace.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Synth synthesizes a timing profile for a static test configuration,
// panicking on configuration errors.
func Synth(nfuncs int, cfg profile.TimingConfig) *profile.Profile {
	p, err := profile.Synthesize(nfuncs, cfg)
	if err != nil {
		panic(err)
	}
	return p
}
