package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadBinary checks the binary decoder never panics and that anything it
// accepts re-encodes to an equivalent trace.
func FuzzReadBinary(f *testing.F) {
	tr := New("seed", []FuncID{0, 0, 3, 2, 2, 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OCSPTRC1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.Name != again.Name || !equalCalls(got.Calls, again.Calls) {
			t.Fatalf("binary round trip unstable")
		}
	})
}

// FuzzReadText checks the text decoder never panics and round-trips what it
// accepts.
func FuzzReadText(f *testing.F) {
	f.Add("# trace x\n1\n2*3\n")
	f.Add("")
	f.Add("1*99999999999999999999\n")
	f.Add("# trace \n#\n\n0\n")

	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return // keep run-length expansion bounded
		}
		got, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if got.Len() > 1<<24 {
			return // decoded run lengths can amplify; skip giants
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !equalCalls(got.Calls, again.Calls) {
			t.Fatalf("text round trip unstable")
		}
	})
}

func equalCalls(a, b []FuncID) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
