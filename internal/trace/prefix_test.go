package trace

import (
	"math/rand"
	"testing"
)

// checkPrefixMemo asserts the cursor's derived indices equal a fresh Slice's
// at the cursor's current length — the property the incremental maintenance
// must hold after every extension.
func checkPrefixMemo(t *testing.T, base *Trace, p *Prefix) {
	t.Helper()
	fresh := base.Slice(0, p.Len())
	v := p.Trace()
	if v.Len() != fresh.Len() {
		t.Fatalf("len %d, want %d", v.Len(), fresh.Len())
	}
	if v.NumFuncs() != fresh.NumFuncs() {
		t.Fatalf("at len %d: NumFuncs %d, want %d", p.Len(), v.NumFuncs(), fresh.NumFuncs())
	}
	if v.UniqueFuncs() != fresh.UniqueFuncs() {
		t.Fatalf("at len %d: UniqueFuncs %d, want %d", p.Len(), v.UniqueFuncs(), fresh.UniqueFuncs())
	}
	gc, wc := v.Counts(), fresh.Counts()
	if len(gc) != len(wc) {
		t.Fatalf("at len %d: %d counts, want %d", p.Len(), len(gc), len(wc))
	}
	for f := range wc {
		if gc[f] != wc[f] {
			t.Fatalf("at len %d: counts[%d] = %d, want %d", p.Len(), f, gc[f], wc[f])
		}
	}
	gf, wf := v.FirstCalls(), fresh.FirstCalls()
	for f := range wf {
		if gf[f] != wf[f] {
			t.Fatalf("at len %d: firstCalls[%d] = %d, want %d", p.Len(), f, gf[f], wf[f])
		}
	}
	go1, wo := v.FirstCallOrder(), fresh.FirstCallOrder()
	if len(go1) != len(wo) {
		t.Fatalf("at len %d: %d first-order funcs, want %d", p.Len(), len(go1), len(wo))
	}
	for i := range wo {
		if go1[i] != wo[i] {
			t.Fatalf("at len %d: firstOrder[%d] = %d, want %d", p.Len(), i, go1[i], wo[i])
		}
	}
}

func TestPrefixMatchesSliceMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(400)
		calls := make([]FuncID, n)
		maxF := 1 + rng.Intn(40)
		for i := range calls {
			// Skewed IDs so first appearances keep trickling in late.
			calls[i] = FuncID(rng.Intn(maxF) * rng.Intn(3))
		}
		base := New("prop", calls)
		p := NewPrefix(base)
		checkPrefixMemo(t, base, p)
		for p.Len() < n {
			hi := p.Len() + 1 + rng.Intn(17)
			if hi > n {
				hi = n
			}
			if err := p.Extend(hi); err != nil {
				t.Fatal(err)
			}
			checkPrefixMemo(t, base, p)
		}
	}
}

func TestPrefixViewIsLive(t *testing.T) {
	base := New("live", []FuncID{2, 0, 2, 1})
	p := NewPrefix(base)
	v := p.Trace()
	if err := p.Extend(1); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 || v.NumFuncs() != 3 || v.UniqueFuncs() != 1 {
		t.Fatalf("after Extend(1): len=%d numFuncs=%d unique=%d", v.Len(), v.NumFuncs(), v.UniqueFuncs())
	}
	if err := p.Extend(4); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 || v.UniqueFuncs() != 3 {
		t.Fatalf("after Extend(4): len=%d unique=%d", v.Len(), v.UniqueFuncs())
	}
	if got := v.Counts()[2]; got != 2 {
		t.Fatalf("counts[2] = %d, want 2", got)
	}
}

func TestPrefixExtendRejects(t *testing.T) {
	base := New("bad", []FuncID{0, 1, -1, 2})
	p := NewPrefix(base)
	if err := p.Extend(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Extend(1); err == nil {
		t.Error("shrinking extension accepted")
	}
	if err := p.Extend(5); err == nil {
		t.Error("extension beyond the base accepted")
	}
	if err := p.Extend(3); err == nil {
		t.Error("negative function id accepted")
	}
	// A failed extension leaves the cursor usable at its old length.
	if p.Len() != 2 {
		t.Fatalf("cursor moved to %d after rejected extensions", p.Len())
	}
	checkPrefixMemo(t, New("bad", base.Calls[:2]), p)
}

func TestPrefixEmptyAndFull(t *testing.T) {
	base := New("full", []FuncID{1, 1, 0})
	p := NewPrefix(base)
	if p.Len() != 0 || p.Trace().NumFuncs() != 0 || p.Trace().UniqueFuncs() != 0 {
		t.Fatalf("fresh cursor not empty: %+v", p.Trace())
	}
	if err := p.Extend(3); err != nil {
		t.Fatal(err)
	}
	checkPrefixMemo(t, base, p)
	if err := p.Extend(3); err != nil {
		t.Fatalf("no-op extension failed: %v", err)
	}
	if p.Base() != base {
		t.Error("Base() lost the underlying trace")
	}
}
