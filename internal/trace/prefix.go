package trace

import "fmt"

// Prefix is an extendable cursor over the leading calls of a base trace. It
// maintains the same derived indices a Trace memoizes — NumFuncs, Counts,
// FirstCalls, FirstCallOrder — incrementally as the visible prefix grows, so
// a consumer that repeatedly analyzes a growing prefix (the online
// scheduling engine, a replanning scheduler) pays O(new calls) per extension
// instead of re-deriving O(prefix) on a fresh Slice every time.
//
// # View contract
//
// Trace returns one live *Trace whose Calls and memoized indices are updated
// in place by every Extend. The view is therefore valid only between
// extensions: consumers must finish reading it (including any slices
// obtained from Counts, FirstCalls, or FirstCallOrder) before the cursor is
// extended again, and must never mutate it. This matches the online
// Scheduler contract, where the visible trace is read-only and nothing of it
// may be retained across calls.
//
// A Prefix is not safe for concurrent use. The base trace is treated as
// immutable, as everywhere else in the engine.
type Prefix struct {
	base *Trace
	view Trace
	m    traceMemo
}

// NewPrefix returns a cursor over base, initially covering zero calls.
func NewPrefix(base *Trace) *Prefix {
	p := &Prefix{base: base}
	p.view.Name = base.Name
	p.view.Calls = base.Calls[:0]
	p.view.memo.Store(&p.m)
	return p
}

// Len returns the number of calls currently covered by the cursor.
func (p *Prefix) Len() int { return len(p.view.Calls) }

// Base returns the underlying full trace.
func (p *Prefix) Base() *Trace { return p.base }

// Trace returns the live prefix view; see the type comment for its
// validity contract.
func (p *Prefix) Trace() *Trace { return &p.view }

// Extend grows the prefix to cover the first hi calls of the base trace,
// updating the derived indices in O(hi - Len()). The prefix can only grow:
// hi below the current length or beyond the base trace is an error, as is a
// negative function ID in the newly covered region (the same condition
// Trace.Validate rejects). On error the cursor is unchanged.
func (p *Prefix) Extend(hi int) error {
	cur := len(p.view.Calls)
	if hi < cur || hi > len(p.base.Calls) {
		return fmt.Errorf("trace %q: prefix extension to %d outside [%d, %d]",
			p.base.Name, hi, cur, len(p.base.Calls))
	}
	delta := p.base.Calls[cur:hi]
	for i, f := range delta {
		if f < 0 {
			return fmt.Errorf("trace %q: call %d has negative function id %d", p.base.Name, cur+i, f)
		}
	}
	for i, f := range delta {
		if int(f) >= p.m.numFuncs {
			p.growFuncs(int(f) + 1)
		}
		p.m.counts[f]++
		if p.m.firstCalls[f] < 0 {
			p.m.firstCalls[f] = cur + i
			p.m.firstOrder = append(p.m.firstOrder, f)
		}
	}
	p.view.Calls = p.base.Calls[:hi]
	return nil
}

// growFuncs widens the per-function index slices to n entries, reusing the
// backing arrays' spare capacity so repeated one-function growth stays
// amortized O(1).
func (p *Prefix) growFuncs(n int) {
	old := p.m.numFuncs
	if cap(p.m.counts) >= n {
		p.m.counts = p.m.counts[:n]
		p.m.firstCalls = p.m.firstCalls[:n]
	} else {
		counts := make([]int64, n, 2*n)
		copy(counts, p.m.counts)
		p.m.counts = counts
		firstCalls := make([]int, n, 2*n)
		copy(firstCalls, p.m.firstCalls)
		p.m.firstCalls = firstCalls
	}
	for i := old; i < n; i++ {
		p.m.counts[i] = 0
		p.m.firstCalls[i] = -1
	}
	p.m.numFuncs = n
}
