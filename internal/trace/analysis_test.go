package trace

import (
	"reflect"
	"testing"
)

func TestWindows(t *testing.T) {
	// Two clear phases: zeros then ones, with one shared function.
	calls := make([]FuncID, 0, 40)
	for i := 0; i < 20; i++ {
		calls = append(calls, 0)
	}
	for i := 0; i < 20; i++ {
		calls = append(calls, 1)
	}
	calls[5], calls[25] = 2, 2
	tr := New("w", calls)
	ws, err := Windows(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("%d windows, want 2", len(ws))
	}
	if ws[0].New != 2 || ws[1].New != 1 {
		t.Errorf("new counts %d,%d want 2,1", ws[0].New, ws[1].New)
	}
	if ws[0].Unique != 2 || ws[1].Unique != 2 {
		t.Errorf("unique counts %d,%d want 2,2", ws[0].Unique, ws[1].Unique)
	}
	if ws[0].TopShare < 0.9 {
		t.Errorf("window 0 top share %.2f, want ~0.95", ws[0].TopShare)
	}
}

func TestWindowsEdges(t *testing.T) {
	if _, err := Windows(New("x", []FuncID{0}), 0); err == nil {
		t.Error("want error for n < 1")
	}
	ws, err := Windows(New("x", nil), 4)
	if err != nil || ws != nil {
		t.Errorf("empty trace: %v, %v", ws, err)
	}
	// More windows than calls clamps.
	ws, err = Windows(New("x", []FuncID{0, 1}), 10)
	if err != nil || len(ws) != 2 {
		t.Errorf("clamped windows: %v, %v", ws, err)
	}
	// Window stats must tile the trace exactly.
	tr := mustGen(GenConfig{Name: "g", NumFuncs: 30, Length: 997, Seed: 1,
		ZipfS: 1.5, Phases: 2, BurstMean: 2})
	ws, err = Windows(tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, w := range ws {
		if w.Start != pos {
			t.Fatalf("window starts at %d, want %d", w.Start, pos)
		}
		pos = w.End
	}
	if pos != tr.Len() {
		t.Errorf("windows end at %d, want %d", pos, tr.Len())
	}
	totalNew := 0
	for _, w := range ws {
		totalNew += w.New
	}
	if totalNew != tr.UniqueFuncs() {
		t.Errorf("sum of New = %d, want %d", totalNew, tr.UniqueFuncs())
	}
}

func TestHotSet(t *testing.T) {
	// 0: 6 calls, 1: 3 calls, 2: 1 call.
	tr := New("h", []FuncID{0, 0, 0, 0, 0, 0, 1, 1, 1, 2})
	hs, err := HotSet(tr, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hs, []FuncID{0}) {
		t.Errorf("60%% hot set = %v, want [0]", hs)
	}
	hs, err = HotSet(tr, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hs, []FuncID{0, 1}) {
		t.Errorf("90%% hot set = %v, want [0 1]", hs)
	}
	hs, err = HotSet(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Errorf("full hot set = %v, want all three", hs)
	}
	if _, err := HotSet(tr, 0); err == nil {
		t.Error("want error for coverage 0")
	}
	if _, err := HotSet(tr, 1.5); err == nil {
		t.Error("want error for coverage > 1")
	}
}
