package trace

import "testing"

// FuzzPrefixCursor drives a Prefix through arbitrary extend/query
// interleavings decoded from the fuzz input and cross-checks every state
// against a fresh Slice of the same length. Each input byte pair is one step:
// the first byte picks the extension size (including zero-length no-ops and
// deliberately invalid backward/overlong requests, which must leave the
// cursor untouched), the second seeds the function IDs appended to the base
// trace for that step.
func FuzzPrefixCursor(f *testing.F) {
	f.Add([]byte{1, 0, 4, 7, 16, 3, 0, 0, 255, 1})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 2, 2, 2, 2})
	f.Add([]byte{0, 9, 1, 9, 1, 9, 1, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // bound base-trace growth
		}
		var calls []FuncID
		seed := FuncID(1)
		for i := 0; i+1 < len(data); i += 2 {
			n := int(data[i]) % 32
			seed = (seed*31 + FuncID(data[i+1])) % 97
			for j := 0; j < n; j++ {
				calls = append(calls, (seed+FuncID(j*j))%23)
			}
		}
		base := New("fuzz", calls)
		p := NewPrefix(base)
		for i := 0; i+1 < len(data); i += 2 {
			var hi int
			switch data[i+1] % 4 {
			case 0:
				hi = p.Len() // no-op extension
			case 1:
				hi = p.Len() - 1 // backward: must be rejected
			case 2:
				hi = len(calls) + 1 + int(data[i]) // overlong: must be rejected
			default:
				hi = p.Len() + int(data[i])%48
				if hi > len(calls) {
					hi = len(calls)
				}
			}
			before := p.Len()
			err := p.Extend(hi)
			valid := hi >= before && hi <= len(calls)
			if valid && err != nil {
				t.Fatalf("Extend(%d) from %d: %v", hi, before, err)
			}
			if !valid {
				if err == nil {
					t.Fatalf("Extend(%d) from %d of %d accepted", hi, before, len(calls))
				}
				if p.Len() != before {
					t.Fatalf("rejected Extend moved cursor %d -> %d", before, p.Len())
				}
			}

			fresh := base.Slice(0, p.Len())
			v := p.Trace()
			if v.NumFuncs() != fresh.NumFuncs() || v.UniqueFuncs() != fresh.UniqueFuncs() {
				t.Fatalf("at len %d: numFuncs %d/%d unique %d/%d",
					p.Len(), v.NumFuncs(), fresh.NumFuncs(), v.UniqueFuncs(), fresh.UniqueFuncs())
			}
			gc, wc := v.Counts(), fresh.Counts()
			gf, wf := v.FirstCalls(), fresh.FirstCalls()
			for fn := range wc {
				if gc[fn] != wc[fn] || gf[fn] != wf[fn] {
					t.Fatalf("at len %d func %d: counts %d/%d firstCalls %d/%d",
						p.Len(), fn, gc[fn], wc[fn], gf[fn], wf[fn])
				}
			}
			gord, word := v.FirstCallOrder(), fresh.FirstCallOrder()
			if len(gord) != len(word) {
				t.Fatalf("at len %d: order len %d/%d", p.Len(), len(gord), len(word))
			}
			for k := range word {
				if gord[k] != word[k] {
					t.Fatalf("at len %d: order[%d] %d/%d", p.Len(), k, gord[k], word[k])
				}
			}
		}
	})
}
