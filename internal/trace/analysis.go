package trace

import (
	"fmt"
	"sort"
)

// WindowStat summarizes one window of a trace's timeline.
type WindowStat struct {
	// Start and End are call-index bounds [Start, End).
	Start, End int
	// Unique is the number of distinct functions called in the window.
	Unique int
	// New is how many functions appear here for the first time in the
	// trace — the class-loading / warmup signal.
	New int
	// TopShare is the fraction of the window's calls going to its single
	// hottest function.
	TopShare float64
}

// Windows splits the trace into n equal windows and summarizes each —
// useful for seeing warmup (many New early) and phase behaviour (working
// sets shifting between windows).
func Windows(t *Trace, n int) ([]WindowStat, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: Windows needs n >= 1, got %d", n)
	}
	if t.Len() == 0 {
		return nil, nil
	}
	if n > t.Len() {
		n = t.Len()
	}
	seen := make(map[FuncID]struct{}, 256)
	out := make([]WindowStat, 0, n)
	for w := 0; w < n; w++ {
		lo := t.Len() * w / n
		hi := t.Len() * (w + 1) / n
		st := WindowStat{Start: lo, End: hi}
		counts := make(map[FuncID]int, 64)
		for _, f := range t.Calls[lo:hi] {
			counts[f]++
			if _, ok := seen[f]; !ok {
				seen[f] = struct{}{}
				st.New++
			}
		}
		st.Unique = len(counts)
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if hi > lo {
			st.TopShare = float64(max) / float64(hi-lo)
		}
		out = append(out, st)
	}
	return out, nil
}

// HotSet returns the smallest set of functions covering at least the given
// fraction of all calls (0 < coverage <= 1), hottest first.
func HotSet(t *Trace, coverage float64) ([]FuncID, error) {
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("trace: HotSet coverage must be in (0,1], got %g", coverage)
	}
	counts := t.Counts()
	type fc struct {
		f FuncID
		n int64
	}
	fcs := make([]fc, 0, len(counts))
	var total int64
	for f, n := range counts {
		if n > 0 {
			fcs = append(fcs, fc{FuncID(f), n})
			total += n
		}
	}
	sort.Slice(fcs, func(i, j int) bool {
		if fcs[i].n != fcs[j].n {
			return fcs[i].n > fcs[j].n
		}
		return fcs[i].f < fcs[j].f
	})
	var out []FuncID
	var acc int64
	for _, x := range fcs {
		out = append(out, x.f)
		acc += x.n
		if float64(acc) >= coverage*float64(total) {
			break
		}
	}
	return out, nil
}
