package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The binary format is a compact run-length encoding:
//
//	magic "OCSPTRC1" (8 bytes)
//	uvarint nameLen, name bytes
//	uvarint number of runs
//	per run: uvarint funcID, uvarint runLength
//
// Run-length encoding pays off because call sequences are bursty: loops call
// the same function back to back, so DaCapo-like traces compress well.

var binaryMagic = [8]byte{'O', 'C', 'S', 'P', 'T', 'R', 'C', '1'}

// run is one maximal stretch of identical calls.
type run struct {
	f FuncID
	n int64
}

func runs(t *Trace) []run {
	var rs []run
	for i := 0; i < len(t.Calls); {
		j := i + 1
		for j < len(t.Calls) && t.Calls[j] == t.Calls[i] {
			j++
		}
		rs = append(rs, run{t.Calls[i], int64(j - i)})
		i = j
	}
	return rs
}

// WriteBinary encodes the trace in the run-length binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	rs := runs(t)
	if err := putUvarint(uint64(len(rs))); err != nil {
		return err
	}
	for _, r := range rs {
		if err := putUvarint(uint64(r.f)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.n)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: bad magic, not an OCSP trace file")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	nruns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading run count: %w", err)
	}
	t := &Trace{Name: string(name)}
	for i := uint64(0); i < nruns; i++ {
		f, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: run %d: reading func: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: run %d: reading length: %w", i, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("trace: run %d has zero length", i)
		}
		if uint64(len(t.Calls))+n > 1<<31 {
			return nil, errors.New("trace: decoded trace exceeds 2^31 calls")
		}
		for k := uint64(0); k < n; k++ {
			t.Calls = append(t.Calls, FuncID(f))
		}
	}
	return t, nil
}

// WriteText encodes the trace in a human-editable line format:
//
//	# trace <name>
//	<funcID>[*<count>] per line
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", t.Name); err != nil {
		return err
	}
	for _, r := range runs(t) {
		var err error
		if r.n == 1 {
			_, err = fmt.Fprintf(bw, "%d\n", r.f)
		} else {
			_, err = fmt.Fprintf(bw, "%d*%d\n", r.f, r.n)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace written by WriteText. Blank lines and lines
// starting with '#' (other than the header) are ignored.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name, ok := strings.CutPrefix(line, "# trace "); ok && t.Name == "" {
				t.Name = strings.TrimSpace(name)
			}
			continue
		}
		fs, ns, hasCount := strings.Cut(line, "*")
		f, err := strconv.ParseInt(strings.TrimSpace(fs), 10, 32)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("trace: line %d: bad function id %q", lineNo, fs)
		}
		n := int64(1)
		if hasCount {
			n, err = strconv.ParseInt(strings.TrimSpace(ns), 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad run count %q", lineNo, ns)
			}
		}
		for k := int64(0); k < n; k++ {
			t.Calls = append(t.Calls, FuncID(f))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return t, nil
}
