package trace

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes the synthetic call-sequence generator.
//
// The generator substitutes for the paper's Jikes RVM profiling runs of the
// DaCapo suite. It reproduces the structural properties that make compilation
// scheduling interesting:
//
//   - a highly skewed (Zipf-like) invocation-frequency distribution, so a few
//     hot methods dominate and deserve deep optimization;
//   - a phased execution in which working sets of functions become live over
//     time (classes load as the program proceeds), so first appearances are
//     spread across the run rather than front-loaded;
//   - bursty, loop-driven locality (a function's calls cluster in time).
type GenConfig struct {
	// Name labels the produced trace.
	Name string
	// NumFuncs is the number of distinct functions that may appear.
	NumFuncs int
	// Length is the number of invocations to generate.
	Length int
	// Seed drives the deterministic pseudo-random generator. It determines
	// the program's *structure*: which functions are hot, which belong to
	// which phase working set, the first-appearance layout.
	Seed int64
	// DrawSeed, when non-zero, decouples the per-run stochastic draws (the
	// actual sampled call sequence) from the program structure: two configs
	// with the same Seed and different DrawSeeds model two runs of the SAME
	// program on different inputs — same hot functions, different call
	// interleavings. Zero means DrawSeed = Seed.
	DrawSeed int64
	// ZipfS is the Zipf skew parameter (must be > 1; larger = more skewed).
	ZipfS float64
	// Phases is how many working-set phases the run passes through (>= 1).
	Phases int
	// CoreFuncs is the number of always-live "runtime library" functions
	// shared across phases. They are drawn with probability CoreShare.
	CoreFuncs int
	// CoreShare is the probability a call targets the core set (0..1).
	CoreShare float64
	// BurstMean is the mean run length of back-to-back calls to the same
	// function (>= 1); bursts are geometrically distributed.
	BurstMean float64
	// WarmupFrac is the fraction of the trace (0..1) forming a warmup
	// segment that front-loads first appearances, the way Java class loading
	// touches most methods early in a run. Zero disables the segment.
	WarmupFrac float64
	// WarmupCoverage is the fraction of all functions (0..1) introduced
	// during the warmup segment. Ignored when WarmupFrac is zero.
	WarmupCoverage float64
}

// Validate reports the first configuration error, or nil.
func (c *GenConfig) Validate() error {
	switch {
	case c.NumFuncs <= 0:
		return fmt.Errorf("trace: GenConfig.NumFuncs must be positive, got %d", c.NumFuncs)
	case c.Length < 0:
		return fmt.Errorf("trace: GenConfig.Length must be non-negative, got %d", c.Length)
	case c.ZipfS <= 1:
		return fmt.Errorf("trace: GenConfig.ZipfS must exceed 1, got %g", c.ZipfS)
	case c.Phases < 1:
		return fmt.Errorf("trace: GenConfig.Phases must be at least 1, got %d", c.Phases)
	case c.CoreFuncs < 0 || c.CoreFuncs > c.NumFuncs:
		return fmt.Errorf("trace: GenConfig.CoreFuncs out of range: %d of %d", c.CoreFuncs, c.NumFuncs)
	case c.CoreShare < 0 || c.CoreShare > 1:
		return fmt.Errorf("trace: GenConfig.CoreShare out of [0,1]: %g", c.CoreShare)
	case c.BurstMean < 1:
		return fmt.Errorf("trace: GenConfig.BurstMean must be >= 1, got %g", c.BurstMean)
	case c.WarmupFrac < 0 || c.WarmupFrac > 1:
		return fmt.Errorf("trace: GenConfig.WarmupFrac out of [0,1]: %g", c.WarmupFrac)
	case c.WarmupCoverage < 0 || c.WarmupCoverage > 1:
		return fmt.Errorf("trace: GenConfig.WarmupCoverage out of [0,1]: %g", c.WarmupCoverage)
	}
	return nil
}

// Generate produces a deterministic synthetic trace for the configuration.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	structRng := rand.New(rand.NewSource(cfg.Seed))
	drawSeed := cfg.DrawSeed
	if drawSeed == 0 {
		drawSeed = cfg.Seed
	}
	rng := rand.New(rand.NewSource(drawSeed))

	// A deterministic permutation decouples function IDs from hotness rank,
	// so the hottest function is not always ID 0. It comes from the
	// structure seed: the same program keeps the same hot functions across
	// runs.
	perm := structRng.Perm(cfg.NumFuncs)

	core := perm[:cfg.CoreFuncs]
	rest := perm[cfg.CoreFuncs:]

	// Partition the non-core functions into per-phase working sets.
	phaseSets := make([][]int, cfg.Phases)
	for i := range phaseSets {
		lo := len(rest) * i / cfg.Phases
		hi := len(rest) * (i + 1) / cfg.Phases
		phaseSets[i] = rest[lo:hi]
	}

	var coreZipf *rand.Zipf
	if len(core) > 0 {
		coreZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(core)-1))
	}

	calls := make([]FuncID, 0, cfg.Length)

	// Warmup segment: introduce most functions early, one or two calls
	// each, interleaved with draws from the core set — the first-appearance
	// profile of Java class loading and framework initialization.
	warmupLen := int(cfg.WarmupFrac * float64(cfg.Length))
	if warmupLen > 0 {
		introduce := perm[:int(cfg.WarmupCoverage*float64(len(perm)))]
		next := 0
		for emitted := 0; emitted < warmupLen && len(calls) < cfg.Length; emitted++ {
			// Pace introductions evenly through the segment; the remaining
			// slots go to the already-live core set.
			due := len(introduce) * (emitted + 1) / warmupLen
			switch {
			case next < due && next < len(introduce):
				f := introduce[next]
				next++
				calls = append(calls, FuncID(f))
			case coreZipf != nil:
				calls = append(calls, FuncID(core[coreZipf.Uint64()]))
			default:
				calls = append(calls, FuncID(perm[rng.Intn(len(perm))]))
			}
		}
	}

	steady := cfg.Length - len(calls)
	for p := 0; p < cfg.Phases && len(calls) < cfg.Length; p++ {
		phaseLen := steady*(p+1)/cfg.Phases - steady*p/cfg.Phases
		set := phaseSets[p]
		var phaseZipf *rand.Zipf
		if len(set) > 0 {
			phaseZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(set)-1))
		}
		for emitted := 0; emitted < phaseLen; {
			var f int
			switch {
			case coreZipf != nil && (phaseZipf == nil || rng.Float64() < cfg.CoreShare):
				f = core[coreZipf.Uint64()]
			case phaseZipf != nil:
				f = set[phaseZipf.Uint64()]
			default:
				f = perm[rng.Intn(len(perm))]
			}
			burst := 1
			if cfg.BurstMean > 1 {
				// Geometric with mean BurstMean: success prob 1/BurstMean.
				for float64(burst) < 64*cfg.BurstMean && rng.Float64() > 1/cfg.BurstMean {
					burst++
				}
			}
			for k := 0; k < burst && emitted < phaseLen; k++ {
				calls = append(calls, FuncID(f))
				emitted++
			}
		}
	}
	return &Trace{Name: cfg.Name, Calls: calls}, nil
}
