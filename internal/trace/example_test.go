package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/trace"
)

// ExampleTrace_FirstCallOrder shows the Eseq1 extraction IAR builds on.
func ExampleTrace_FirstCallOrder() {
	tr := trace.New("demo", []trace.FuncID{2, 0, 2, 1, 0})
	fmt.Println(tr.FirstCallOrder())
	// Output:
	// [2 0 1]
}

// ExampleGenerate synthesizes a deterministic workload trace.
func ExampleGenerate() {
	tr, err := trace.Generate(trace.GenConfig{
		Name: "demo", NumFuncs: 100, Length: 10000, Seed: 42,
		ZipfS: 1.5, Phases: 3, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2,
		WarmupFrac: 0.1, WarmupCoverage: 0.8,
	})
	if err != nil {
		panic(err)
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("calls=%d unique=%d\n", st.Length, st.UniqueFuncs)
	// Output:
	// calls=10000 unique=100
}

// ExampleWriteText round-trips a trace through the human-editable format.
func ExampleWriteText() {
	tr := trace.New("tiny", []trace.FuncID{7, 7, 7, 3})
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, tr); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	// Output:
	// # trace tiny
	// 7*3
	// 3
}

// ExampleInterleave flattens per-thread sequences the way the paper's
// collection framework handles multithreaded benchmarks (§6.1).
func ExampleInterleave() {
	t1 := trace.New("t", []trace.FuncID{0, 0, 0})
	t2 := trace.New("t", []trace.FuncID{1, 1, 1})
	merged, err := trace.Interleave(1, t1, t2)
	if err != nil {
		panic(err)
	}
	fmt.Println(merged.Len(), merged.Counts())
	// Output:
	// 6 [3 3]
}
