package trace

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// mustGen is the test-local stand-in for the removed MustGenerate: the
// configurations below are static, so a failure is a programmer mistake.
func mustGen(cfg GenConfig) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestBasics(t *testing.T) {
	tr := New("t", []FuncID{3, 1, 3, 3, 0, 1})
	if got := tr.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
	if got := tr.NumFuncs(); got != 4 {
		t.Errorf("NumFuncs = %d, want 4", got)
	}
	if got := tr.UniqueFuncs(); got != 3 {
		t.Errorf("UniqueFuncs = %d, want 3", got)
	}
	wantCounts := []int64{1, 2, 0, 3}
	if got := tr.Counts(); !reflect.DeepEqual(got, wantCounts) {
		t.Errorf("Counts = %v, want %v", got, wantCounts)
	}
	wantFirst := []int{4, 1, -1, 0}
	if got := tr.FirstCalls(); !reflect.DeepEqual(got, wantFirst) {
		t.Errorf("FirstCalls = %v, want %v", got, wantFirst)
	}
	wantOrder := []FuncID{3, 1, 0}
	if got := tr.FirstCallOrder(); !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("FirstCallOrder = %v, want %v", got, wantOrder)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := New("empty", nil)
	if tr.NumFuncs() != 0 || tr.Len() != 0 || tr.UniqueFuncs() != 0 {
		t.Error("empty trace should report zeros")
	}
	if got := tr.FirstCallOrder(); len(got) != 0 {
		t.Errorf("FirstCallOrder = %v, want empty", got)
	}
	s := ComputeStats(tr)
	if s.MaxCount != 0 || s.Top10Share != 0 {
		t.Errorf("stats of empty trace = %+v", s)
	}
}

func TestValidate(t *testing.T) {
	tr := New("t", []FuncID{0, 2})
	if err := tr.Validate(3); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := tr.Validate(2); err == nil {
		t.Error("want error for id beyond nfuncs")
	}
	bad := New("t", []FuncID{-1})
	if err := bad.Validate(-1); err == nil {
		t.Error("want error for negative id")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := New("t", []FuncID{1, 2, 3})
	cl := tr.Clone()
	cl.Calls[0] = 9
	if tr.Calls[0] == 9 {
		t.Error("Clone shares backing array")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := New("bench-α", []FuncID{0, 0, 0, 5, 5, 2, 0, 7, 7, 7, 7})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Calls, tr.Calls) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, tr)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("notatrace!!!"))); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := New("my bench", []FuncID{4, 4, 4, 1, 0, 0})
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Calls, tr.Calls) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, tr)
	}
}

func TestTextRejectsBadLines(t *testing.T) {
	for _, in := range []string{"x\n", "1*0\n", "-3\n", "2*-1\n"} {
		if _, err := ReadText(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q: want parse error", in)
		}
	}
}

// TestCodecQuick round-trips random traces through both codecs.
func TestCodecQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		calls := make([]FuncID, len(raw))
		for i, b := range raw {
			calls[i] = FuncID(b % 16) // small id space encourages runs
		}
		tr := New("q", calls)
		var b1, b2 bytes.Buffer
		if err := WriteBinary(&b1, tr); err != nil {
			return false
		}
		g1, err := ReadBinary(&b1)
		if err != nil {
			return false
		}
		if !(len(g1.Calls) == 0 && len(tr.Calls) == 0) && !reflect.DeepEqual(g1.Calls, tr.Calls) {
			return false
		}
		if err := WriteText(&b2, tr); err != nil {
			return false
		}
		g2, err := ReadText(&b2)
		if err != nil {
			return false
		}
		if len(g2.Calls) == 0 && len(tr.Calls) == 0 {
			return true
		}
		return reflect.DeepEqual(g2.Calls, tr.Calls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "g", NumFuncs: 50, Length: 5000, Seed: 42,
		ZipfS: 1.5, Phases: 4, CoreFuncs: 10, CoreShare: 0.5, BurstMean: 2}
	a := mustGen(cfg)
	b := mustGen(cfg)
	if !reflect.DeepEqual(a.Calls, b.Calls) {
		t.Error("same seed produced different traces")
	}
	cfg.Seed = 43
	c := mustGen(cfg)
	if reflect.DeepEqual(a.Calls, c.Calls) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := GenConfig{Name: "g", NumFuncs: 200, Length: 50000, Seed: 1,
		ZipfS: 1.4, Phases: 5, CoreFuncs: 20, CoreShare: 0.4, BurstMean: 3}
	tr := mustGen(cfg)
	if tr.Len() != cfg.Length {
		t.Fatalf("length = %d, want %d", tr.Len(), cfg.Length)
	}
	if err := tr.Validate(cfg.NumFuncs); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	s := ComputeStats(tr)
	if s.UniqueFuncs < 50 {
		t.Errorf("only %d unique functions; generator too narrow", s.UniqueFuncs)
	}
	if s.Top10Share < 0.2 {
		t.Errorf("top-10 share = %.2f; expected a skewed distribution", s.Top10Share)
	}
	// First appearances must spread across the run (phased working sets),
	// not be front-loaded: at least one function should first appear in the
	// second half.
	late := 0
	for _, idx := range tr.FirstCalls() {
		if idx > tr.Len()/2 {
			late++
		}
	}
	if late == 0 {
		t.Error("no function first appears in the second half of the trace")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{NumFuncs: 0, Length: 1, ZipfS: 2, Phases: 1, BurstMean: 1},
		{NumFuncs: 1, Length: -1, ZipfS: 2, Phases: 1, BurstMean: 1},
		{NumFuncs: 1, Length: 1, ZipfS: 1, Phases: 1, BurstMean: 1},
		{NumFuncs: 1, Length: 1, ZipfS: 2, Phases: 0, BurstMean: 1},
		{NumFuncs: 1, Length: 1, ZipfS: 2, Phases: 1, CoreFuncs: 2, BurstMean: 1},
		{NumFuncs: 1, Length: 1, ZipfS: 2, Phases: 1, CoreShare: 1.5, BurstMean: 1},
		{NumFuncs: 1, Length: 1, ZipfS: 2, Phases: 1, BurstMean: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
}

func TestInterleavePreservesPerThreadOrder(t *testing.T) {
	t1 := New("a", []FuncID{0, 1, 2, 3, 4})
	t2 := New("b", []FuncID{10, 11, 12, 13, 14, 15, 16})
	merged, err := Interleave(5, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != t1.Len()+t2.Len() {
		t.Fatalf("merged length %d, want %d", merged.Len(), t1.Len()+t2.Len())
	}
	var a, b []FuncID
	for _, f := range merged.Calls {
		if f < 10 {
			a = append(a, f)
		} else {
			b = append(b, f)
		}
	}
	if !reflect.DeepEqual(a, t1.Calls) {
		t.Errorf("thread 1 order broken: %v", a)
	}
	if !reflect.DeepEqual(b, t2.Calls) {
		t.Errorf("thread 2 order broken: %v", b)
	}
}

func TestInterleaveMixes(t *testing.T) {
	t1 := New("a", make([]FuncID, 500)) // all zeros
	t2calls := make([]FuncID, 500)
	for i := range t2calls {
		t2calls[i] = 1
	}
	t2 := New("b", t2calls)
	merged, err := Interleave(7, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	// Both threads must appear in the first quarter: no thread is saved up
	// for the end.
	quarter := merged.Slice(0, merged.Len()/4)
	counts := quarter.Counts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("first quarter is single-threaded: %v", counts)
	}
}

func TestInterleaveEdges(t *testing.T) {
	if _, err := Interleave(1); err == nil {
		t.Error("want error for no threads")
	}
	single := New("s", []FuncID{1, 2})
	got, err := Interleave(1, single)
	if err != nil || !reflect.DeepEqual(got.Calls, single.Calls) {
		t.Errorf("single thread should round-trip: %v, %v", got, err)
	}
	got.Calls[0] = 9
	if single.Calls[0] == 9 {
		t.Error("single-thread interleave shares memory")
	}
	a := New("a", nil)
	b := New("b", []FuncID{5})
	merged, err := Interleave(2, a, b)
	if err != nil || merged.Len() != 1 {
		t.Errorf("empty+1: %v, %v", merged, err)
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	t1 := mustGen(GenConfig{Name: "x", NumFuncs: 20, Length: 1000, Seed: 3,
		ZipfS: 1.5, Phases: 2, BurstMean: 2})
	t2 := mustGen(GenConfig{Name: "y", NumFuncs: 20, Length: 1200, Seed: 4,
		ZipfS: 1.5, Phases: 2, BurstMean: 2})
	a, err := Interleave(9, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Interleave(9, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Calls, b.Calls) {
		t.Error("same seed interleaves differently")
	}
	c, err := Interleave(10, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Calls, c.Calls) {
		t.Error("different seeds interleave identically")
	}
}

func TestGenerateDrawSeedSharesStructure(t *testing.T) {
	base := GenConfig{Name: "p", NumFuncs: 200, Length: 20000, Seed: 11,
		ZipfS: 1.6, Phases: 3, CoreFuncs: 20, CoreShare: 0.5, BurstMean: 2}
	runA := mustGen(base)
	alt := base
	alt.DrawSeed = 999
	runB := mustGen(alt)
	if reflect.DeepEqual(runA.Calls, runB.Calls) {
		t.Fatal("different draw seeds produced identical runs")
	}
	// Same structure: the hottest functions largely coincide.
	top := func(tr *Trace) map[FuncID]bool {
		counts := tr.Counts()
		type fc struct {
			f FuncID
			n int64
		}
		var fcs []fc
		for f, n := range counts {
			fcs = append(fcs, fc{FuncID(f), n})
		}
		sort.Slice(fcs, func(i, j int) bool { return fcs[i].n > fcs[j].n })
		out := map[FuncID]bool{}
		for i := 0; i < 10 && i < len(fcs); i++ {
			out[fcs[i].f] = true
		}
		return out
	}
	ta, tb := top(runA), top(runB)
	overlap := 0
	for f := range ta {
		if tb[f] {
			overlap++
		}
	}
	if overlap < 7 {
		t.Errorf("top-10 hot sets overlap only %d/10; structure not shared", overlap)
	}
}

func TestStats(t *testing.T) {
	tr := New("s", []FuncID{0, 0, 0, 0, 1, 1, 2})
	s := ComputeStats(tr)
	if s.MaxCount != 4 {
		t.Errorf("MaxCount = %d, want 4", s.MaxCount)
	}
	if s.Top10Share != 1.0 {
		t.Errorf("Top10Share = %g, want 1.0", s.Top10Share)
	}
	if s.MedianCount != 2 {
		t.Errorf("MedianCount = %d, want 2", s.MedianCount)
	}
}
