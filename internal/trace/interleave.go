package trace

import (
	"fmt"
	"math/rand"
)

// Interleave flattens per-thread call sequences into one trace, preserving
// each thread's internal order and alternating stochastically in proportion
// to the threads' remaining work. This is the treatment the paper applies to
// its multithreaded benchmarks (hsqldb, lusearch): "for a multithreaded
// application, we still get a single sequence; the calls by different
// threads are put into the sequence in order of the profiler's output",
// which "roughly corresponds to the invocation timing order by those
// threads" (§6.1).
func Interleave(seed int64, threads ...*Trace) (*Trace, error) {
	if len(threads) == 0 {
		return nil, fmt.Errorf("trace: Interleave needs at least one thread")
	}
	name := threads[0].Name
	if len(threads) == 1 {
		return threads[0].Clone(), nil
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	pos := make([]int, len(threads))
	remaining := make([]int, len(threads))
	for i, t := range threads {
		remaining[i] = t.Len()
		total += t.Len()
	}
	out := &Trace{Name: name, Calls: make([]FuncID, 0, total)}
	for total > 0 {
		// Pick a thread with probability proportional to its remaining
		// calls, so long threads do not all bunch at the end.
		r := rng.Intn(total)
		ti := 0
		for i, rem := range remaining {
			if r < rem {
				ti = i
				break
			}
			r -= rem
		}
		t := threads[ti]
		// Emit a small burst from the chosen thread: threads run in slices,
		// not single calls.
		burst := 1 + rng.Intn(8)
		for k := 0; k < burst && remaining[ti] > 0; k++ {
			out.Calls = append(out.Calls, t.Calls[pos[ti]])
			pos[ti]++
			remaining[ti]--
			total--
		}
	}
	return out, nil
}
