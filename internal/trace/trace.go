// Package trace models dynamic call sequences of a program run.
//
// A Trace is the first input of the Optimal Compilation Scheduling Problem
// (OCSP, Definition 1 of the paper): an ordered sequence of function
// invocations. Each element identifies the function invoked; a function can
// appear once or many times. Traces are what the paper collects from Jikes RVM
// executions of the DaCapo benchmarks; here they are either built by hand,
// decoded from a file, or synthesized by a Generator.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// FuncID identifies a function (a compilation unit). IDs are dense: a trace
// over F functions uses IDs 0..F-1.
type FuncID int32

// Trace is an ordered sequence of function invocations.
//
// A trace is logically immutable once analysis begins: the first call to
// NumFuncs, Counts, FirstCalls or FirstCallOrder derives all four in one pass
// and memoizes them on the trace, so the thousands of simulations an
// experiment runs over the same trace share one copy of each index. Callers
// building a trace incrementally (decoders, generators) must finish appending
// to Calls before handing the trace to any consumer. The memoized slices are
// shared between callers — treat them as read-only.
type Trace struct {
	// Name labels the workload (e.g. a benchmark name). Optional.
	Name string
	// Calls is the invocation sequence, in execution order.
	Calls []FuncID

	memo atomic.Pointer[traceMemo]
}

// traceMemo holds the derived indices of a trace, computed once.
type traceMemo struct {
	numFuncs   int
	counts     []int64
	firstCalls []int
	firstOrder []FuncID
}

// index returns the memoized derived indices, computing them on first use.
// Concurrent first calls may each compute the memo; exactly one wins the
// publish and the results are identical either way.
func (t *Trace) index() *traceMemo {
	if m := t.memo.Load(); m != nil {
		return m
	}
	n := 0
	for _, f := range t.Calls {
		if int(f) >= n {
			n = int(f) + 1
		}
	}
	m := &traceMemo{
		numFuncs:   n,
		counts:     make([]int64, n),
		firstCalls: make([]int, n),
	}
	for i := range m.firstCalls {
		m.firstCalls[i] = -1
	}
	for i, f := range t.Calls {
		m.counts[f]++
		if m.firstCalls[f] < 0 {
			m.firstCalls[f] = i
			m.firstOrder = append(m.firstOrder, f)
		}
	}
	t.memo.CompareAndSwap(nil, m)
	return t.memo.Load()
}

// New returns a trace over the given calls.
func New(name string, calls []FuncID) *Trace {
	return &Trace{Name: name, Calls: calls}
}

// Len returns the number of invocations in the trace.
func (t *Trace) Len() int { return len(t.Calls) }

// NumFuncs returns one more than the largest FuncID present, i.e. the size of
// the dense ID space. An empty trace has zero functions.
func (t *Trace) NumFuncs() int { return t.index().numFuncs }

// Validate checks that all IDs are non-negative and, if nfuncs >= 0, within
// [0, nfuncs).
func (t *Trace) Validate(nfuncs int) error {
	for i, f := range t.Calls {
		if f < 0 {
			return fmt.Errorf("trace %q: call %d has negative function id %d", t.Name, i, f)
		}
		if nfuncs >= 0 && int(f) >= nfuncs {
			return fmt.Errorf("trace %q: call %d references function %d beyond %d", t.Name, i, f, nfuncs)
		}
	}
	return nil
}

// Counts returns the number of invocations of each function, indexed by
// FuncID, sized by NumFuncs. The slice is memoized and shared — read-only.
func (t *Trace) Counts() []int64 { return t.index().counts }

// FirstCalls returns, for each function, the index in Calls of its first
// invocation, or -1 for functions that never appear. The slice is memoized
// and shared — read-only.
func (t *Trace) FirstCalls() []int { return t.index().firstCalls }

// FirstCallOrder returns the distinct functions of the trace in order of
// first appearance. This is the paper's Eseq1 = getSeq1stCalls(Eseq), the
// backbone of both the single-level schedules and IAR's initial schedule.
// The slice is memoized and shared — read-only.
func (t *Trace) FirstCallOrder() []FuncID { return t.index().firstOrder }

// UniqueFuncs returns the number of distinct functions that actually appear.
func (t *Trace) UniqueFuncs() int { return len(t.index().firstOrder) }

// Slice returns a shallow sub-trace of calls [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{Name: t.Name, Calls: t.Calls[lo:hi]}
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	calls := make([]FuncID, len(t.Calls))
	copy(calls, t.Calls)
	return &Trace{Name: t.Name, Calls: calls}
}

// Stats summarizes a trace: length, distinct function count, and the skew of
// the invocation-frequency distribution. It mirrors the columns of Table 1.
type Stats struct {
	Name        string
	Length      int
	UniqueFuncs int
	// MaxCount is the invocation count of the hottest function.
	MaxCount int64
	// Top10Share is the fraction of all calls going to the 10 hottest
	// functions (1.0 if fewer than 10 functions exist).
	Top10Share float64
	// MedianCount is the median invocation count over appearing functions.
	MedianCount int64
}

// ComputeStats derives Stats from the trace.
func ComputeStats(t *Trace) Stats {
	counts := t.Counts()
	appearing := make([]int64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			appearing = append(appearing, c)
		}
	}
	sort.Slice(appearing, func(i, j int) bool { return appearing[i] > appearing[j] })
	s := Stats{Name: t.Name, Length: t.Len(), UniqueFuncs: len(appearing)}
	if len(appearing) == 0 {
		return s
	}
	s.MaxCount = appearing[0]
	var top, total int64
	for i, c := range appearing {
		total += c
		if i < 10 {
			top += c
		}
	}
	s.Top10Share = float64(top) / float64(total)
	s.MedianCount = appearing[len(appearing)/2]
	return s
}
