package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/dacapo"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// legacyIAR is the pre-arena implementation, kept verbatim as the reference
// for the differential tests below: the arena-backed IAR must reproduce its
// schedule, simulated result, and error strings bit for bit on every corpus
// instance and option combination. Do not "improve" this copy — its value is
// being frozen.
func legacyIAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (Schedule, error) {
	if opts.K == 0 {
		opts.K = 5
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("core: IAR K must be positive, got %d", opts.K)
	}
	if opts.LowLevel < 0 || int(opts.LowLevel) >= p.Levels {
		return nil, fmt.Errorf("core: IAR LowLevel %d outside [0,%d)", opts.LowLevel, p.Levels)
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return nil, err
	}

	order := tr.FirstCallOrder()
	if len(order) == 0 {
		return Schedule{}, nil
	}
	counts := tr.Counts()

	funcs := make([]*iarFunc, len(order))
	for i, f := range order {
		high := profile.CostEffectiveLevel(model, f, counts[f])
		if high < opts.LowLevel {
			high = opts.LowLevel
		}
		ff := &iarFunc{
			f: f, pos: i, n: counts[f],
			low:      opts.LowLevel,
			high:     high,
			appended: -1,
		}
		ff.cl = p.CompileTime(f, ff.low)
		ff.el = p.ExecTime(f, ff.low)
		ff.ch = p.CompileTime(f, ff.high)
		ff.eh = p.ExecTime(f, ff.high)
		funcs[i] = ff
	}

	eval, err := sim.NewEvaluator(tr, p)
	if err != nil {
		return nil, err
	}

	n1, err := legacyIARInitN1(eval, tr, p.NumFuncs(), order, opts.LowLevel)
	if err != nil {
		return nil, err
	}

	var appendSet []*iarFunc
	for _, ff := range funcs {
		switch {
		case ff.high == ff.low || ff.ch+ff.n*ff.eh > ff.cl+ff.n*ff.el: // Formula 1
			ff.class = 'O'
		case ff.ch-ff.cl > opts.K*n1[ff.f]*(ff.el-ff.eh): // Formula 2
			ff.class = 'A'
			appendSet = append(appendSet, ff)
		default:
			ff.class = 'R'
		}
	}
	sort.SliceStable(appendSet, func(i, j int) bool { return appendSet[i].ch < appendSet[j].ch })

	sched := make(Schedule, 0, len(order)+len(appendSet))
	for _, ff := range funcs {
		level := ff.low
		if ff.class == 'R' {
			level = ff.high
		}
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: level})
	}
	for _, ff := range appendSet {
		ff.appended = len(sched)
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: ff.high})
	}

	if !opts.DisableFillSlack {
		res, err := eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
		if err != nil {
			return nil, err
		}
		baseSpan := res.MakeSpan
		firstCalls := tr.FirstCalls()
		slack := make([]int64, len(funcs))
		for i, ff := range funcs {
			slack[i] = res.CallStarts[firstCalls[ff.f]] - res.Compiles[i].Done
		}
		suffMin := make([]int64, len(funcs)+1)
		suffMin[len(funcs)] = int64(1) << 62
		for i := len(funcs) - 1; i >= 0; i-- {
			suffMin[i] = slack[i]
			if suffMin[i+1] < suffMin[i] {
				suffMin[i] = suffMin[i+1]
			}
		}
		var inflate int64
		removed := make(map[int]bool)
		candidate := sched.Clone()
		var changed []*iarFunc
		for i, ff := range funcs {
			if ff.class != 'A' {
				continue
			}
			delta := ff.ch - ff.cl
			if inflate+delta <= suffMin[i] {
				candidate[i].Level = ff.high
				removed[ff.appended] = true
				changed = append(changed, ff)
				inflate += delta
			}
		}
		if len(removed) > 0 {
			compact := candidate[:0:len(candidate)]
			for i, ev := range candidate {
				if !removed[i] {
					compact = append(compact, ev)
				}
			}
			candidate = compact
			after, err := eval.MakeSpanOf(candidate, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				return nil, err
			}
			if after <= baseSpan {
				sched = candidate
				for _, ff := range changed {
					ff.appended = -1
					ff.class = 'R'
				}
			}
		}
	}

	if !opts.DisableFillGap {
		res, err := eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
		if err != nil {
			return nil, err
		}
		tgap := res.MakeSpan - res.CompileEnd
		if tgap > 0 {
			maxLevel := make([]profile.Level, p.NumFuncs())
			for i := range maxLevel {
				maxLevel[i] = -1
			}
			for _, ev := range sched {
				if ev.Level > maxLevel[ev.Func] {
					maxLevel[ev.Func] = ev.Level
				}
			}
			lateCalls := make([]int64, p.NumFuncs())
			for i, f := range tr.Calls {
				if res.CallStarts[i] >= res.CompileEnd {
					lateCalls[f]++
				}
			}
			var candidates []*iarFunc
			for _, ff := range funcs {
				if maxLevel[ff.f] < ff.high && lateCalls[ff.f] > 0 {
					candidates = append(candidates, ff)
				}
			}
			sort.SliceStable(candidates, func(i, j int) bool {
				return lateCalls[candidates[i].f] > lateCalls[candidates[j].f]
			})
			var used int64
			for _, ff := range candidates {
				if used+ff.ch <= tgap {
					sched = append(sched, sim.CompileEvent{Func: ff.f, Level: ff.high})
					used += ff.ch
				}
			}
		}
	}

	return sched, nil
}

// legacyIARInitN1 is the pre-arena init/n1 pass, verbatim.
func legacyIARInitN1(eval *sim.Evaluator, tr *trace.Trace, nf int, order []trace.FuncID, low profile.Level) ([]int64, error) {
	initSched := make(Schedule, len(order))
	for i, f := range order {
		initSched[i] = sim.CompileEvent{Func: f, Level: low}
	}
	res, err := eval.Run(initSched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		return nil, err
	}
	n1 := make([]int64, nf)
	for i, f := range tr.Calls {
		if res.CallStarts[i] < res.CompileEnd {
			n1[f]++
		}
	}
	return n1, nil
}

// iarOptionMatrix is the option grid the differential tests sweep: defaults,
// each ablation knob, a non-default low level, and the K extremes.
func iarOptionMatrix(p *profile.Profile) []struct {
	name string
	opts IAROptions
} {
	matrix := []struct {
		name string
		opts IAROptions
	}{
		{"default", IAROptions{}},
		{"noFillSlack", IAROptions{DisableFillSlack: true}},
		{"noFillGap", IAROptions{DisableFillGap: true}},
		{"noFill", IAROptions{DisableFillSlack: true, DisableFillGap: true}},
		{"k1", IAROptions{K: 1}},
		{"k20", IAROptions{K: 20}},
	}
	if p.Levels > 1 {
		matrix = append(matrix, struct {
			name string
			opts IAROptions
		}{"low1", IAROptions{LowLevel: 1}})
	}
	return matrix
}

func sameSchedule(t *testing.T, label string, got, want Schedule) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: schedule length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestIARArenaBitIdenticalSynthetic sweeps synthetic workloads and the full
// option matrix: for each instance the pooled wrapper and a shared warm arena
// (rebinding across instances) must reproduce the legacy schedule exactly,
// and the schedules must simulate to the same result.
func TestIARArenaBitIdenticalSynthetic(t *testing.T) {
	arena := NewIARArena()
	for seed := int64(1); seed <= 4; seed++ {
		tr, p := testWorkload(seed)
		for _, m := range iarOptionMatrix(p) {
			label := fmt.Sprintf("seed%d/%s", seed, m.name)
			want, err := legacyIAR(tr, p, m.opts)
			if err != nil {
				t.Fatalf("%s: legacy: %v", label, err)
			}
			got, err := IAR(tr, p, m.opts)
			if err != nil {
				t.Fatalf("%s: wrapper: %v", label, err)
			}
			sameSchedule(t, label+"/wrapper", got, want)
			agot, err := arena.IAR(tr, p, m.opts)
			if err != nil {
				t.Fatalf("%s: arena: %v", label, err)
			}
			sameSchedule(t, label+"/arena", agot, want)

			wres, err := sim.Run(tr, p, want, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				t.Fatalf("%s: sim legacy: %v", label, err)
			}
			gres, err := sim.Run(tr, p, got, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				t.Fatalf("%s: sim wrapper: %v", label, err)
			}
			if wres.MakeSpan != gres.MakeSpan || wres.TotalBubble != gres.TotalBubble || wres.CompileEnd != gres.CompileEnd {
				t.Fatalf("%s: sim results differ: legacy span=%d bubble=%d cend=%d, wrapper span=%d bubble=%d cend=%d",
					label, wres.MakeSpan, wres.TotalBubble, wres.CompileEnd,
					gres.MakeSpan, gres.TotalBubble, gres.CompileEnd)
			}
		}
	}
}

// TestIARArenaBitIdenticalCorpus is the same differential over real DaCapo
// workloads, where step 3's transactional accept/reject and step 4's gap
// filling actually trigger.
func TestIARArenaBitIdenticalCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	arena := NewIARArena()
	for _, name := range []string{"antlr", "eclipse", "lusearch", "jython"} {
		bench, err := dacapo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := bench.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		models := map[string]profile.CostModel{"oracle": nil, "default": w.DefaultModel()}
		for mname, model := range models {
			opts := IAROptions{Model: model}
			label := name + "/" + mname
			want, err := legacyIAR(w.Trace, w.Profile, opts)
			if err != nil {
				t.Fatalf("%s: legacy: %v", label, err)
			}
			got, err := IAR(w.Trace, w.Profile, opts)
			if err != nil {
				t.Fatalf("%s: wrapper: %v", label, err)
			}
			sameSchedule(t, label+"/wrapper", got, want)
			agot, err := arena.IAR(w.Trace, w.Profile, opts)
			if err != nil {
				t.Fatalf("%s: arena: %v", label, err)
			}
			sameSchedule(t, label+"/arena", agot, want)
		}
	}
}

// TestIARArenaErrorStrings pins error bit-identity: bad options, bad traces,
// and the empty trace must come back from the arena exactly as from the
// legacy implementation — same string, same (non-)nil schedule.
func TestIARArenaErrorStrings(t *testing.T) {
	tr, p := testWorkload(7)
	badTrace := trace.New("bad", []trace.FuncID{0, 401, 1})
	cases := []struct {
		name string
		tr   *trace.Trace
		opts IAROptions
	}{
		{"negativeK", tr, IAROptions{K: -1}},
		{"lowLevelHigh", tr, IAROptions{LowLevel: profile.Level(p.Levels)}},
		{"lowLevelNegative", tr, IAROptions{LowLevel: -1}},
		{"invalidTrace", badTrace, IAROptions{}},
	}
	arena := NewIARArena()
	for _, c := range cases {
		_, werr := legacyIAR(c.tr, p, c.opts)
		if werr == nil {
			t.Fatalf("%s: legacy IAR unexpectedly succeeded", c.name)
		}
		_, gerr := IAR(c.tr, p, c.opts)
		if gerr == nil || gerr.Error() != werr.Error() {
			t.Errorf("%s: wrapper error = %v, want %v", c.name, gerr, werr)
		}
		_, aerr := arena.IAR(c.tr, p, c.opts)
		if aerr == nil || aerr.Error() != werr.Error() {
			t.Errorf("%s: arena error = %v, want %v", c.name, aerr, werr)
		}
	}

	// The arena must stay usable after an error run.
	want, err := legacyIAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := arena.IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatalf("arena after errors: %v", err)
	}
	sameSchedule(t, "afterErrors", got, want)

	// Empty trace: a non-nil empty schedule from every entry point, exactly
	// like the legacy code.
	empty := trace.New("empty", nil)
	for name, f := range map[string]func() (Schedule, error){
		"legacy":  func() (Schedule, error) { return legacyIAR(empty, p, IAROptions{}) },
		"wrapper": func() (Schedule, error) { return IAR(empty, p, IAROptions{}) },
		"arena":   func() (Schedule, error) { return arena.IAR(empty, p, IAROptions{}) },
	} {
		s, err := f()
		if err != nil {
			t.Fatalf("%s(empty): %v", name, err)
		}
		if s == nil || len(s) != 0 {
			t.Errorf("%s(empty) = %#v, want non-nil empty schedule", name, s)
		}
	}
}

// TestIARWrapperResultIsOwned: the pooled wrapper's result must not alias the
// arena that produced it — corrupting it must not change later runs.
func TestIARWrapperResultIsOwned(t *testing.T) {
	tr, p := testWorkload(11)
	first, err := IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := first.Clone()
	for i := range first {
		first[i] = sim.CompileEvent{Func: 0, Level: 0}
	}
	second, err := IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, "afterCorruption", second, want)
}

// TestIARArenaWarmAllocGuard enforces the PR's headline budget: a warm arena
// run on a real workload stays at or under 50 allocations. (The cold run that
// sizes the buffers is excluded, as is workload loading.)
func TestIARArenaWarmAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard loads a real workload")
	}
	bench, err := dacapo.ByName("antlr")
	if err != nil {
		t.Fatal(err)
	}
	w, err := bench.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	model := w.DefaultModel()
	arena := NewIARArena()
	if _, err := arena.IAR(w.Trace, w.Profile, IAROptions{Model: model}); err != nil {
		t.Fatal(err)
	}
	before := ReadIARStats()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := arena.IAR(w.Trace, w.Profile, IAROptions{Model: model}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 50 {
		t.Errorf("warm arena IAR allocates %.0f objects/run, budget is 50", allocs)
	}
	after := ReadIARStats()
	if after.WarmRuns <= before.WarmRuns {
		t.Errorf("warm-run counter did not advance: before=%+v after=%+v", before, after)
	}
}

// TestIARArenaConcurrent hammers per-goroutine arenas (and the pooled
// wrapper) on shared instances; run with -race this doubles as the data-race
// proof for the shared trace/profile/counter state.
func TestIARArenaConcurrent(t *testing.T) {
	tr1, p1 := testWorkload(21)
	tr2, p2 := testWorkload(22)
	want1, err := legacyIAR(tr1, p1, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := legacyIAR(tr2, p2, IAROptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arena := NewIARArena()
			for i := 0; i < 5; i++ {
				s1, err := arena.IAR(tr1, p1, IAROptions{})
				if err != nil {
					errs <- err
					return
				}
				for j := range want1 {
					if s1[j] != want1[j] {
						errs <- fmt.Errorf("goroutine %d run %d: arena schedule diverged at %d", g, i, j)
						return
					}
				}
				s2, err := IAR(tr2, p2, IAROptions{K: 3})
				if err != nil {
					errs <- err
					return
				}
				for j := range want2 {
					if s2[j] != want2[j] {
						errs <- fmt.Errorf("goroutine %d run %d: pooled schedule diverged at %d", g, i, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
