package core

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"fmt"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// IARArena holds every buffer an IAR run needs — the per-function working
// table, the init/candidate/final schedules, the slack and late-call arrays,
// and a rebindable sim.Evaluator for the three simulation passes — so that a
// warm run performs (almost) no heap allocation. The first run on a given
// instance sizes the buffers; repeated runs on same-sized or smaller
// instances reuse them, which is what turns the per-request IAR of the
// scheduling service and the per-stride replans of the online scheduler from
// multi-megabyte allocators into near-zero-alloc calls.
//
// # Ownership and reuse contract
//
// The Schedule returned by (*IARArena).IAR aliases the arena's buffers and is
// valid only until the next call on the same arena — callers that keep the
// schedule past that point must Clone it. The package-level IAR function
// wraps a pooled arena and returns an owned copy, so existing callers keep
// value semantics without touching the pool themselves.
//
// An arena is not safe for concurrent use; concurrent harnesses use one
// arena per goroutine (the pooled wrapper does exactly that via sync.Pool).
// The trace and profile passed in are treated as immutable, as everywhere
// else in the engine: rebinding is skipped when both pointers are unchanged.
//
// # Why the maps became slices
//
// The legacy implementation kept step 3's removed set in a map[int]bool and
// the working table in per-function heap objects. Both are now flat slices
// indexed by schedule position / first-appearance position: the index spaces
// are dense and known up front, so a zeroed []bool and a []iarFunc value
// slice give the same semantics with no hashing and no per-run garbage.
// Results are bit-identical to the legacy code — schedule, make-span, and
// error strings — pinned by the differential tests in arena_test.go.
type IARArena struct {
	eval   *sim.Evaluator
	evalTr *trace.Trace
	evalP  *profile.Profile

	funcs     []iarFunc
	initSched Schedule
	n1        []int64
	appendSet []int32 // indices into funcs, sorted by ch for step 2's appends
	sched     Schedule
	spare     Schedule // step 3's candidate buffer; swaps with sched on accept
	slack     []int64
	suffMin   []int64
	removed   []bool // step 3's removed set, indexed by schedule position
	changed   []int32
	maxLevel  []profile.Level
	lateCalls []int64
	cands     []int32
	runs      int64
}

// NewIARArena returns an empty arena. Buffers are sized lazily by the first
// run.
func NewIARArena() *IARArena {
	iarCounters.arenas.Add(1)
	obs.Default().IARArenaCreated()
	return &IARArena{}
}

// arenaGrow resizes a scratch slice to n elements, reusing the backing array
// when it is large enough. Callers overwrite or clear the contents.
func arenaGrow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// bind points the arena's evaluator at the instance, reusing its tables when
// the pair is unchanged and Reset-ing (same validation, same error strings as
// sim.NewEvaluator) otherwise.
func (a *IARArena) bind(tr *trace.Trace, p *profile.Profile) error {
	if a.eval == nil {
		e, err := sim.NewEvaluator(tr, p)
		if err != nil {
			return err
		}
		a.eval, a.evalTr, a.evalP = e, tr, p
		return nil
	}
	if a.evalTr == tr && a.evalP == p {
		return nil
	}
	if err := a.eval.Reset(tr, p); err != nil {
		a.evalTr, a.evalP = nil, nil
		return err
	}
	a.evalTr, a.evalP = tr, p
	return nil
}

// initN1 runs the low-level init schedule (every function in first-appearance
// order) through the arena's evaluator once and returns the per-function
// count of calls issued while that schedule is still compiling — Formula 2's
// f.n1. IAR and ClassifyIAR share this pass; it is the only recorded-calls
// scan step 2 needs.
func (a *IARArena) initN1(tr *trace.Trace, nf int, order []trace.FuncID, low profile.Level) ([]int64, error) {
	s := a.initSched[:0]
	for _, f := range order {
		s = append(s, sim.CompileEvent{Func: f, Level: low})
	}
	a.initSched = s
	res, err := a.eval.Run(s, sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		return nil, err
	}
	n1 := arenaGrow(a.n1, nf)
	a.n1 = n1
	clear(n1)
	for i, f := range tr.Calls {
		if res.CallStarts[i] < res.CompileEnd {
			n1[f]++
		}
	}
	return n1, nil
}

// IAR computes a compilation schedule with the Init-Append-Replace heuristic
// of §5.1 (Fig. 3), reusing the arena's buffers. The returned Schedule
// aliases the arena and is valid until the next call on it; see the type
// comment for the ownership contract, and the package-level IAR function for
// the owned-copy wrapper. The algorithm and its outputs are documented there.
func (a *IARArena) IAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (Schedule, error) {
	a.runs++
	iarCounters.runs.Add(1)
	if a.runs > 1 {
		iarCounters.warmRuns.Add(1)
	}
	obs.Default().IARRun(a.runs > 1)

	if opts.K == 0 {
		opts.K = 5
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("core: IAR K must be positive, got %d", opts.K)
	}
	if opts.LowLevel < 0 || int(opts.LowLevel) >= p.Levels {
		return nil, fmt.Errorf("core: IAR LowLevel %d outside [0,%d)", opts.LowLevel, p.Levels)
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return nil, err
	}

	order := tr.FirstCallOrder()
	if len(order) == 0 {
		return Schedule{}, nil
	}
	counts := tr.Counts()

	funcs := arenaGrow(a.funcs, len(order))
	a.funcs = funcs
	for i, f := range order {
		high := profile.CostEffectiveLevel(model, f, counts[f])
		if high < opts.LowLevel {
			high = opts.LowLevel
		}
		ff := iarFunc{
			f: f, pos: i, n: counts[f],
			low:      opts.LowLevel,
			high:     high,
			appended: -1,
		}
		ff.cl = p.CompileTime(f, ff.low)
		ff.el = p.ExecTime(f, ff.low)
		ff.ch = p.CompileTime(f, ff.high)
		ff.eh = p.ExecTime(f, ff.high)
		funcs[i] = ff
	}

	if err := a.bind(tr, p); err != nil {
		return nil, err
	}

	// Steps 1 and 2a (init + n1): one recorded-calls pass over the low-level
	// init schedule yields Formula 2's per-function n1.
	n1, err := a.initN1(tr, p.NumFuncs(), order, opts.LowLevel)
	if err != nil {
		return nil, err
	}

	// Step 2 (classify, then append & replace).
	appendSet := a.appendSet[:0]
	for i := range funcs {
		ff := &funcs[i]
		switch {
		case ff.high == ff.low || ff.ch+ff.n*ff.eh > ff.cl+ff.n*ff.el: // Formula 1
			ff.class = 'O'
		case ff.ch-ff.cl > opts.K*n1[ff.f]*(ff.el-ff.eh): // Formula 2
			ff.class = 'A'
			appendSet = append(appendSet, int32(i))
		default:
			ff.class = 'R'
		}
	}
	a.appendSet = appendSet
	slices.SortStableFunc(appendSet, func(x, y int32) int {
		return cmp.Compare(funcs[x].ch, funcs[y].ch)
	})

	sched := a.sched[:0]
	for i := range funcs {
		ff := &funcs[i]
		level := ff.low
		if ff.class == 'R' {
			level = ff.high
		}
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: level})
	}
	for _, fi := range appendSet {
		funcs[fi].appended = len(sched)
		sched = append(sched, sim.CompileEvent{Func: funcs[fi].f, Level: funcs[fi].high})
	}

	// Step 3 (fill slack through replacement). Simulate once to find each
	// function's slack: first-call start minus first-compilation finish.
	// Upgrading function f's initial compilation from low to high inflates
	// every later initial compilation's finish by ch-cl; it adds no bubble
	// iff the accumulated inflation fits within the minimum slack from f's
	// position onward. Delaying the initial compilations also delays any
	// recompilations still appended behind them, which can cost more than
	// the replacements save, so the step is applied transactionally: keep
	// the replacements only if a re-evaluation confirms they did not regress
	// the make-span.
	// gapRes, when non-nil, is a still-valid recorded run of the current
	// schedule that step 4 can reuse instead of re-simulating. Step 3's entry
	// run qualifies exactly when step 3 ends up changing nothing: the schedule
	// is the one it simulated and no evaluator call has clobbered the result —
	// the "identical schedule" delta shape, answered with zero re-simulation.
	var gapRes *sim.Result
	if !opts.DisableFillSlack {
		res, err := a.eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
		if err != nil {
			return nil, err
		}
		// Consume the result before the verification pass reuses the arena.
		baseSpan := res.MakeSpan
		firstCalls := tr.FirstCalls()
		slack := arenaGrow(a.slack, len(funcs)) // indexed by init position
		a.slack = slack
		for i := range funcs {
			slack[i] = res.CallStarts[firstCalls[funcs[i].f]] - res.Compiles[i].Done
		}
		// suffMin[i] = min slack over positions >= i.
		suffMin := arenaGrow(a.suffMin, len(funcs)+1)
		a.suffMin = suffMin
		suffMin[len(funcs)] = int64(1) << 62
		for i := len(funcs) - 1; i >= 0; i-- {
			suffMin[i] = slack[i]
			if suffMin[i+1] < suffMin[i] {
				suffMin[i] = suffMin[i+1]
			}
		}
		var inflate int64
		removed := arenaGrow(a.removed, len(sched))
		a.removed = removed
		clear(removed)
		nRemoved := 0
		candidate := append(a.spare[:0], sched...)
		a.spare = candidate
		changed := a.changed[:0]
		for i := range funcs {
			ff := &funcs[i]
			if ff.class != 'A' {
				continue
			}
			delta := ff.ch - ff.cl
			if inflate+delta <= suffMin[i] {
				candidate[i].Level = ff.high
				removed[ff.appended] = true
				nRemoved++
				changed = append(changed, int32(i))
				inflate += delta
			}
		}
		a.changed = changed
		if nRemoved == 0 {
			gapRes = res
		}
		if nRemoved > 0 {
			compact := candidate[:0]
			for i, ev := range candidate {
				if !removed[i] {
					compact = append(compact, ev)
				}
			}
			candidate = compact
			// A multi-position edit, so MakeSpanOf falls back to a full
			// (still allocation-free) evaluator run.
			after, err := a.eval.MakeSpanOf(candidate, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				return nil, err
			}
			if after <= baseSpan {
				// The candidate becomes the schedule; the displaced schedule
				// buffer becomes the next run's candidate scratch.
				a.spare = sched
				sched = candidate
				for _, fi := range changed {
					funcs[fi].appended = -1
					funcs[fi].class = 'R'
				}
			}
		}
	}

	// Step 4 (append more to fill the ending gap). While execution outlives
	// compilation, idle compile capacity can upgrade still-low functions for
	// free; prioritize the functions with the most calls after compilation
	// ends.
	if !opts.DisableFillGap {
		res := gapRes
		if res == nil {
			var err error
			res, err = a.eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
			if err != nil {
				return nil, err
			}
		}
		tgap := res.MakeSpan - res.CompileEnd
		if tgap > 0 {
			maxLevel := arenaGrow(a.maxLevel, p.NumFuncs())
			a.maxLevel = maxLevel
			for i := range maxLevel {
				maxLevel[i] = -1
			}
			for _, ev := range sched {
				if ev.Level > maxLevel[ev.Func] {
					maxLevel[ev.Func] = ev.Level
				}
			}
			lateCalls := arenaGrow(a.lateCalls, p.NumFuncs())
			a.lateCalls = lateCalls
			clear(lateCalls)
			for i, f := range tr.Calls {
				if res.CallStarts[i] >= res.CompileEnd {
					lateCalls[f]++
				}
			}
			cands := a.cands[:0]
			for i := range funcs {
				ff := &funcs[i]
				if maxLevel[ff.f] < ff.high && lateCalls[ff.f] > 0 {
					cands = append(cands, int32(i))
				}
			}
			a.cands = cands
			slices.SortStableFunc(cands, func(x, y int32) int {
				return cmp.Compare(lateCalls[funcs[y].f], lateCalls[funcs[x].f])
			})
			var used int64
			for _, fi := range cands {
				ff := &funcs[fi]
				if used+ff.ch <= tgap {
					sched = append(sched, sim.CompileEvent{Func: ff.f, Level: ff.high})
					used += ff.ch
				}
			}
		}
	}

	a.sched = sched
	return sched, nil
}

// iarPool recycles arenas behind the package-level IAR function: every
// goroutine that calls IAR concurrently gets its own arena for the duration
// of the call, and the warm buffers survive across calls process-wide. This
// is how the experiment harnesses and runner jobs get per-goroutine arenas
// without any signature change.
var iarPool = sync.Pool{New: func() any { return NewIARArena() }}

// iarCounters aggregates IAR arena activity process-wide; `jitsched exp
// -stats` reports them next to the evaluator's counters, and the obs
// /metrics endpoint mirrors them.
var iarCounters struct {
	arenas     atomic.Int64
	runs       atomic.Int64
	warmRuns   atomic.Int64
	pooledRuns atomic.Int64
}

// IARStats is a snapshot of the process-wide IAR arena counters.
type IARStats struct {
	// Arenas counts NewIARArena calls; Runs counts arena IAR runs, of which
	// WarmRuns reused an already-sized arena (every run after an arena's
	// first) and PooledRuns went through the package-level IAR wrapper's
	// sync.Pool.
	Arenas     int64
	Runs       int64
	WarmRuns   int64
	PooledRuns int64
}

// ReadIARStats snapshots the process-wide IAR arena counters.
func ReadIARStats() IARStats {
	return IARStats{
		Arenas:     iarCounters.arenas.Load(),
		Runs:       iarCounters.runs.Load(),
		WarmRuns:   iarCounters.warmRuns.Load(),
		PooledRuns: iarCounters.pooledRuns.Load(),
	}
}

// Summary renders the stats as one line.
func (s IARStats) Summary() string {
	return fmt.Sprintf("core: %d IAR arenas, %d runs (%d warm, %d pooled)",
		s.Arenas, s.Runs, s.WarmRuns, s.PooledRuns)
}
