package core

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// IAROptions tunes the IAR algorithm.
type IAROptions struct {
	// K is the constant of Formula 2 in Fig. 3, weighing high-level compile
	// overhead against early-run benefit. The paper found any value in
	// [3,10] works similarly and reports results with K=5 (the default when
	// zero).
	K int64
	// Model is the cost-benefit model used to choose each function's
	// high-level candidate (its most cost-effective level). Nil means the
	// oracle over the true profile.
	Model profile.CostModel
	// DisableFillSlack skips step 3 (replace low-level compilations that fit
	// in schedule slack). For ablation studies.
	DisableFillSlack bool
	// DisableFillGap skips step 4 (append recompilations into the gap
	// between the end of compilation and the end of execution). For ablation
	// studies.
	DisableFillGap bool
	// LowLevel overrides each function's "most responsive" level (default
	// 0). §8 notes extra care is needed when level 0 is an interpreter: the
	// cheapest-to-produce tier may execute too slowly to be the right
	// initial version, and this knob lets the initial schedule start at the
	// baseline compiler instead.
	LowLevel profile.Level
}

// iarFunc is the per-function working state of the algorithm.
type iarFunc struct {
	f        trace.FuncID
	pos      int // index in first-appearance order (= index in init schedule)
	n        int64
	low      profile.Level
	high     profile.Level
	cl, ch   int64 // true compile times at low/high
	el, eh   int64 // true per-call execution times at low/high
	class    byte  // 'O', 'A', or 'R'
	appended int   // index of this function's appended high event in the schedule, or -1
}

// iarInitN1 runs the low-level init schedule (every function in
// first-appearance order) through the shared evaluator once, and returns the
// per-function count of calls issued while that schedule is still compiling —
// Formula 2's f.n1. IAR and ClassifyIAR share this pass; it is the only
// recorded-calls scan step 2 needs.
func iarInitN1(eval *sim.Evaluator, tr *trace.Trace, nf int, order []trace.FuncID, low profile.Level) ([]int64, error) {
	initSched := make(Schedule, len(order))
	for i, f := range order {
		initSched[i] = sim.CompileEvent{Func: f, Level: low}
	}
	res, err := eval.Run(initSched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		return nil, err
	}
	n1 := make([]int64, nf)
	for i, f := range tr.Calls {
		if res.CallStarts[i] < res.CompileEnd {
			n1[f]++
		}
	}
	return n1, nil
}

// IAR computes a compilation schedule with the Init-Append-Replace heuristic
// of §5.1 (Fig. 3).
//
// The algorithm considers two candidate levels per function: the most
// responsive level (level 0) and the most cost-effective level under the
// cost-benefit model. It then:
//
//  1. (Init) schedules every function's low-level compilation in order of
//     first appearance, to keep compilation off the execution's critical
//     path;
//  2. (Append & Replace) classifies each function — O: a high-level compile
//     never pays off (Formula 1); A: it pays off but would delay the early
//     run, so append it after the initial schedule, cheapest compilations
//     first (Formula 2); R: it pays off quickly, so replace the initial
//     low-level compilation outright;
//  3. (Fill slack) upgrades initial low-level compilations to high level
//     wherever the slack between a function's first compilation and its
//     first call absorbs the extra compile time without bubbling anyone,
//     deleting the function's appended recompilation;
//  4. (Fill ending gap) appends further high-level compilations of
//     still-low functions — most post-compilation calls first — while they
//     fit in the gap between the end of all compilations and the end of the
//     execution.
//
// The returned schedule compiles every called function at least once. Cost is
// O(N + M log M) for N calls and M distinct functions, dominated by three
// linear simulation passes. All passes share one sim.Evaluator, so the
// per-pass arenas are allocated once; results are consumed before the next
// pass reuses them.
func IAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (Schedule, error) {
	if opts.K == 0 {
		opts.K = 5
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("core: IAR K must be positive, got %d", opts.K)
	}
	if opts.LowLevel < 0 || int(opts.LowLevel) >= p.Levels {
		return nil, fmt.Errorf("core: IAR LowLevel %d outside [0,%d)", opts.LowLevel, p.Levels)
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return nil, err
	}

	order := tr.FirstCallOrder()
	if len(order) == 0 {
		return Schedule{}, nil
	}
	counts := tr.Counts()

	funcs := make([]*iarFunc, len(order))
	for i, f := range order {
		high := profile.CostEffectiveLevel(model, f, counts[f])
		if high < opts.LowLevel {
			high = opts.LowLevel
		}
		ff := &iarFunc{
			f: f, pos: i, n: counts[f],
			low:      opts.LowLevel,
			high:     high,
			appended: -1,
		}
		ff.cl = p.CompileTime(f, ff.low)
		ff.el = p.ExecTime(f, ff.low)
		ff.ch = p.CompileTime(f, ff.high)
		ff.eh = p.ExecTime(f, ff.high)
		funcs[i] = ff
	}

	eval, err := sim.NewEvaluator(tr, p)
	if err != nil {
		return nil, err
	}

	// Steps 1 and 2a (init + n1): one recorded-calls pass over the low-level
	// init schedule yields Formula 2's per-function n1.
	n1, err := iarInitN1(eval, tr, p.NumFuncs(), order, opts.LowLevel)
	if err != nil {
		return nil, err
	}

	// Step 2 (classify, then append & replace).
	var appendSet []*iarFunc
	for _, ff := range funcs {
		switch {
		case ff.high == ff.low || ff.ch+ff.n*ff.eh > ff.cl+ff.n*ff.el: // Formula 1
			ff.class = 'O'
		case ff.ch-ff.cl > opts.K*n1[ff.f]*(ff.el-ff.eh): // Formula 2
			ff.class = 'A'
			appendSet = append(appendSet, ff)
		default:
			ff.class = 'R'
		}
	}
	sort.SliceStable(appendSet, func(i, j int) bool { return appendSet[i].ch < appendSet[j].ch })

	sched := make(Schedule, 0, len(order)+len(appendSet))
	for _, ff := range funcs {
		level := ff.low
		if ff.class == 'R' {
			level = ff.high
		}
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: level})
	}
	for _, ff := range appendSet {
		ff.appended = len(sched)
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: ff.high})
	}

	// Step 3 (fill slack through replacement). Simulate once to find each
	// function's slack: first-call start minus first-compilation finish.
	// Upgrading function f's initial compilation from low to high inflates
	// every later initial compilation's finish by ch-cl; it adds no bubble
	// iff the accumulated inflation fits within the minimum slack from f's
	// position onward. Delaying the initial compilations also delays any
	// recompilations still appended behind them, which can cost more than
	// the replacements save, so the step is applied transactionally: keep
	// the replacements only if a re-evaluation confirms they did not regress
	// the make-span.
	if !opts.DisableFillSlack {
		res, err := eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
		if err != nil {
			return nil, err
		}
		// Consume the result before the verification pass reuses the arena.
		baseSpan := res.MakeSpan
		firstCalls := tr.FirstCalls()
		slack := make([]int64, len(funcs)) // indexed by init position
		for i, ff := range funcs {
			slack[i] = res.CallStarts[firstCalls[ff.f]] - res.Compiles[i].Done
		}
		// suffMin[i] = min slack over positions >= i.
		suffMin := make([]int64, len(funcs)+1)
		suffMin[len(funcs)] = int64(1) << 62
		for i := len(funcs) - 1; i >= 0; i-- {
			suffMin[i] = slack[i]
			if suffMin[i+1] < suffMin[i] {
				suffMin[i] = suffMin[i+1]
			}
		}
		var inflate int64
		removed := make(map[int]bool)
		candidate := sched.Clone()
		var changed []*iarFunc
		for i, ff := range funcs {
			if ff.class != 'A' {
				continue
			}
			delta := ff.ch - ff.cl
			if inflate+delta <= suffMin[i] {
				candidate[i].Level = ff.high
				removed[ff.appended] = true
				changed = append(changed, ff)
				inflate += delta
			}
		}
		if len(removed) > 0 {
			compact := candidate[:0:len(candidate)]
			for i, ev := range candidate {
				if !removed[i] {
					compact = append(compact, ev)
				}
			}
			candidate = compact
			// A multi-position edit, so MakeSpanOf falls back to a full
			// (still allocation-free) evaluator run.
			after, err := eval.MakeSpanOf(candidate, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				return nil, err
			}
			if after <= baseSpan {
				sched = candidate
				for _, ff := range changed {
					ff.appended = -1
					ff.class = 'R'
				}
			}
		}
	}

	// Step 4 (append more to fill the ending gap). While execution outlives
	// compilation, idle compile capacity can upgrade still-low functions for
	// free; prioritize the functions with the most calls after compilation
	// ends.
	if !opts.DisableFillGap {
		res, err := eval.Run(sched, sim.DefaultConfig(), sim.Options{RecordCalls: true})
		if err != nil {
			return nil, err
		}
		tgap := res.MakeSpan - res.CompileEnd
		if tgap > 0 {
			maxLevel := make([]profile.Level, p.NumFuncs())
			for i := range maxLevel {
				maxLevel[i] = -1
			}
			for _, ev := range sched {
				if ev.Level > maxLevel[ev.Func] {
					maxLevel[ev.Func] = ev.Level
				}
			}
			lateCalls := make([]int64, p.NumFuncs())
			for i, f := range tr.Calls {
				if res.CallStarts[i] >= res.CompileEnd {
					lateCalls[f]++
				}
			}
			var candidates []*iarFunc
			for _, ff := range funcs {
				if maxLevel[ff.f] < ff.high && lateCalls[ff.f] > 0 {
					candidates = append(candidates, ff)
				}
			}
			sort.SliceStable(candidates, func(i, j int) bool {
				return lateCalls[candidates[i].f] > lateCalls[candidates[j].f]
			})
			var used int64
			for _, ff := range candidates {
				if used+ff.ch <= tgap {
					sched = append(sched, sim.CompileEvent{Func: ff.f, Level: ff.high})
					used += ff.ch
				}
			}
		}
	}

	return sched, nil
}

// IARClassification reports how IAR's step 2 classified the functions —
// useful for understanding a schedule and for tests.
type IARClassification struct {
	Append  []trace.FuncID
	Replace []trace.FuncID
	Other   []trace.FuncID
}

// ClassifyIAR runs only the classification stage of IAR (Formulas 1 and 2 of
// Fig. 3) and returns the three sets.
func ClassifyIAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (IARClassification, error) {
	if opts.K == 0 {
		opts.K = 5
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	var cls IARClassification
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return cls, err
	}
	order := tr.FirstCallOrder()
	if len(order) == 0 {
		return cls, nil
	}
	counts := tr.Counts()

	eval, err := sim.NewEvaluator(tr, p)
	if err != nil {
		return cls, err
	}
	n1, err := iarInitN1(eval, tr, p.NumFuncs(), order, 0)
	if err != nil {
		return cls, err
	}
	for _, f := range order {
		n := counts[f]
		high := profile.CostEffectiveLevel(model, f, n)
		cl, ch := p.CompileTime(f, 0), p.CompileTime(f, high)
		el, eh := p.ExecTime(f, 0), p.ExecTime(f, high)
		switch {
		case high == 0 || ch+n*eh > cl+n*el:
			cls.Other = append(cls.Other, f)
		case ch-cl > opts.K*n1[f]*(el-eh):
			cls.Append = append(cls.Append, f)
		default:
			cls.Replace = append(cls.Replace, f)
		}
	}
	return cls, nil
}
