package core

import (
	"repro/internal/profile"
	"repro/internal/trace"
)

// IAROptions tunes the IAR algorithm.
type IAROptions struct {
	// K is the constant of Formula 2 in Fig. 3, weighing high-level compile
	// overhead against early-run benefit. The paper found any value in
	// [3,10] works similarly and reports results with K=5 (the default when
	// zero).
	K int64
	// Model is the cost-benefit model used to choose each function's
	// high-level candidate (its most cost-effective level). Nil means the
	// oracle over the true profile.
	Model profile.CostModel
	// DisableFillSlack skips step 3 (replace low-level compilations that fit
	// in schedule slack). For ablation studies.
	DisableFillSlack bool
	// DisableFillGap skips step 4 (append recompilations into the gap
	// between the end of compilation and the end of execution). For ablation
	// studies.
	DisableFillGap bool
	// LowLevel overrides each function's "most responsive" level (default
	// 0). §8 notes extra care is needed when level 0 is an interpreter: the
	// cheapest-to-produce tier may execute too slowly to be the right
	// initial version, and this knob lets the initial schedule start at the
	// baseline compiler instead.
	LowLevel profile.Level
}

// iarFunc is the per-function working state of the algorithm.
type iarFunc struct {
	f        trace.FuncID
	pos      int // index in first-appearance order (= index in init schedule)
	n        int64
	low      profile.Level
	high     profile.Level
	cl, ch   int64 // true compile times at low/high
	el, eh   int64 // true per-call execution times at low/high
	class    byte  // 'O', 'A', or 'R'
	appended int   // index of this function's appended high event in the schedule, or -1
}

// IAR computes a compilation schedule with the Init-Append-Replace heuristic
// of §5.1 (Fig. 3).
//
// The algorithm considers two candidate levels per function: the most
// responsive level (level 0) and the most cost-effective level under the
// cost-benefit model. It then:
//
//  1. (Init) schedules every function's low-level compilation in order of
//     first appearance, to keep compilation off the execution's critical
//     path;
//  2. (Append & Replace) classifies each function — O: a high-level compile
//     never pays off (Formula 1); A: it pays off but would delay the early
//     run, so append it after the initial schedule, cheapest compilations
//     first (Formula 2); R: it pays off quickly, so replace the initial
//     low-level compilation outright;
//  3. (Fill slack) upgrades initial low-level compilations to high level
//     wherever the slack between a function's first compilation and its
//     first call absorbs the extra compile time without bubbling anyone,
//     deleting the function's appended recompilation;
//  4. (Fill ending gap) appends further high-level compilations of
//     still-low functions — most post-compilation calls first — while they
//     fit in the gap between the end of all compilations and the end of the
//     execution.
//
// The returned schedule compiles every called function at least once. Cost is
// O(N + M log M) for N calls and M distinct functions, dominated by three
// linear simulation passes.
//
// The computation runs on a pooled IARArena — one arena per concurrent
// caller, warm buffers kept process-wide — and the result is an owned copy,
// so the function keeps plain value semantics. Callers that run IAR in a
// tight loop (replanners, the serving path) hold their own arena and call
// (*IARArena).IAR directly to also skip the copy.
func IAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (Schedule, error) {
	a := iarPool.Get().(*IARArena)
	iarCounters.pooledRuns.Add(1)
	sched, err := a.IAR(tr, p, opts)
	if err != nil {
		iarPool.Put(a)
		return nil, err
	}
	out := sched.Clone()
	if out == nil {
		out = Schedule{}
	}
	iarPool.Put(a)
	return out, nil
}

// IARClassification reports how IAR's step 2 classified the functions —
// useful for understanding a schedule and for tests.
type IARClassification struct {
	Append  []trace.FuncID
	Replace []trace.FuncID
	Other   []trace.FuncID
}

// ClassifyIAR runs only the classification stage of IAR (Formulas 1 and 2 of
// Fig. 3) and returns the three sets.
func ClassifyIAR(tr *trace.Trace, p *profile.Profile, opts IAROptions) (IARClassification, error) {
	if opts.K == 0 {
		opts.K = 5
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	var cls IARClassification
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return cls, err
	}
	order := tr.FirstCallOrder()
	if len(order) == 0 {
		return cls, nil
	}
	counts := tr.Counts()

	a := iarPool.Get().(*IARArena)
	defer iarPool.Put(a)
	if err := a.bind(tr, p); err != nil {
		return cls, err
	}
	n1, err := a.initN1(tr, p.NumFuncs(), order, 0)
	if err != nil {
		return cls, err
	}
	for _, f := range order {
		n := counts[f]
		high := profile.CostEffectiveLevel(model, f, n)
		cl, ch := p.CompileTime(f, 0), p.CompileTime(f, high)
		el, eh := p.ExecTime(f, 0), p.ExecTime(f, high)
		switch {
		case high == 0 || ch+n*eh > cl+n*el:
			cls.Other = append(cls.Other, f)
		case ch-cl > opts.K*n1[f]*(el-eh):
			cls.Append = append(cls.Append, f)
		default:
			cls.Replace = append(cls.Replace, f)
		}
	}
	return cls, nil
}
