package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAdvice checks the advice parser never panics and round-trips
// whatever it accepts.
func FuzzReadAdvice(f *testing.F) {
	f.Add("# jitsched advice v1 label\nC0 1\nC3 2 name\n")
	f.Add("# jitsched advice v1\n")
	f.Add("C0 1\n")
	f.Add("")
	f.Add("# jitsched advice v1 x\nC1 99999999999\n")

	f.Fuzz(func(t *testing.T, data string) {
		sched, label, err := ReadAdvice(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteAdvice(&out, label, sched, nil); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, label2, err := ReadAdvice(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if label2 != label || len(again) != len(sched) {
			t.Fatalf("advice round trip unstable: %q/%d vs %q/%d", label, len(sched), label2, len(again))
		}
		for i := range sched {
			if sched[i] != again[i] {
				t.Fatalf("event %d differs after round trip", i)
			}
		}
	})
}
