// Package core implements the paper's scheduling algorithms: the lower bound
// on the minimum make-span (§5.2), the single-level approximations (§5.1),
// the provably optimal single-core scheme (§4.1, Theorem 1), and the IAR
// (Init-Append-Replace) heuristic (§5.1, Fig. 3) that approximates optimal
// schedules in the general multi-core setting where OCSP is strongly
// NP-complete.
package core

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Schedule re-exports sim.Schedule: an ordered compilation sequence.
type Schedule = sim.Schedule

// LowerBound returns the §5.2 lower bound on the minimum make-span: the sum
// over the call sequence of each call's shortest possible execution time
// (the time at the most optimized level). No schedule can finish faster, as
// the single execution worker must at least execute every call.
func LowerBound(tr *trace.Trace, p *profile.Profile) int64 {
	best := make([]int64, p.NumFuncs())
	for f := range best {
		best[f] = p.BestExecTime(trace.FuncID(f))
	}
	var sum int64
	for _, f := range tr.Calls {
		sum += best[f]
	}
	return sum
}

// LowerBoundAtLevels generalizes LowerBound to a fixed per-function level
// choice: the sum over calls of the true execution time at levels[f]. The
// paper's normalization baseline is this bound with each function at the
// level its cost-benefit model deems most cost effective — the deepest
// version the runtime would ever build. That is why, in §6.2.2, switching to
// an oracle model "lowers the lower bound": better level choices shorten the
// best achievable execution.
func LowerBoundAtLevels(tr *trace.Trace, p *profile.Profile, levels []profile.Level) (int64, error) {
	if len(levels) < tr.NumFuncs() {
		return 0, fmt.Errorf("core: got %d level choices for %d called functions", len(levels), tr.NumFuncs())
	}
	var sum int64
	for _, f := range tr.Calls {
		l := levels[f]
		if l < 0 || int(l) >= p.Levels {
			return 0, fmt.Errorf("core: function %d assigned level %d outside [0,%d)", f, l, p.Levels)
		}
		sum += p.ExecTime(f, l)
	}
	return sum, nil
}

// VariedLowerBound is LowerBoundAtLevels against a specific per-call
// execution-time realization (§8): call i's time is scaled by
// sim.CallFactor(seed, i, magnitude). Because the factors are
// mean-preserving, the expectation over realizations equals the
// average-based bound — the §8 argument for why per-call averages do not
// skew the computed bounds.
func VariedLowerBound(tr *trace.Trace, p *profile.Profile, levels []profile.Level, magnitude float64, seed int64) (int64, error) {
	if len(levels) < tr.NumFuncs() {
		return 0, fmt.Errorf("core: got %d level choices for %d called functions", len(levels), tr.NumFuncs())
	}
	if magnitude < 0 || magnitude >= 1 {
		return 0, fmt.Errorf("core: variation magnitude must be in [0,1), got %g", magnitude)
	}
	var sum int64
	for i, f := range tr.Calls {
		l := levels[f]
		if l < 0 || int(l) >= p.Levels {
			return 0, fmt.Errorf("core: function %d assigned level %d outside [0,%d)", f, l, p.Levels)
		}
		e := p.ExecTime(f, l)
		if magnitude > 0 {
			factor := sim.CallFactor(seed, i, magnitude)
			e = int64(float64(e) * factor)
			if e < 1 {
				e = 1
			}
		}
		sum += e
	}
	return sum, nil
}

// ModelLowerBound is LowerBoundAtLevels with each appearing function at its
// model-chosen cost-effective level — the baseline the paper's Figs. 5, 6
// and 8 normalize against.
func ModelLowerBound(tr *trace.Trace, p *profile.Profile, m profile.CostModel) int64 {
	lb, err := LowerBoundAtLevels(tr, p, SingleCoreLevels(tr, m))
	if err != nil {
		// SingleCoreLevels only produces in-range levels; unreachable.
		panic(err)
	}
	return lb
}

// SingleLevelBase returns the base-level-only approximation of §5.1: every
// function compiled once at level 0, in order of first appearance. With no
// recompilation, first-appearance order is the best possible order.
func SingleLevelBase(tr *trace.Trace) Schedule {
	order := tr.FirstCallOrder()
	s := make(Schedule, len(order))
	for i, f := range order {
		s[i] = sim.CompileEvent{Func: f, Level: 0}
	}
	return s
}

// SingleLevelOptimizing returns the optimizing-level-only approximation of
// §5.1: every function compiled once, in order of first appearance, at its
// "suitable highest compilation level" — the most cost-effective *optimizing*
// level under the model. Unlike the default scheme, even cold functions get
// an optimizing compilation (never the base level), which is what saves
// execution time but inflates compilation time and bubbles in Fig. 5. For a
// single-level profile this degenerates to level 0.
func SingleLevelOptimizing(tr *trace.Trace, m profile.CostModel) Schedule {
	counts := tr.Counts()
	order := tr.FirstCallOrder()
	s := make(Schedule, len(order))
	for i, f := range order {
		level := profile.Level(0)
		if m.Levels() > 1 {
			level = 1
			best := m.CompileTime(f, 1) + counts[f]*m.ExecTime(f, 1)
			for l := profile.Level(2); int(l) < m.Levels(); l++ {
				if cost := m.CompileTime(f, l) + counts[f]*m.ExecTime(f, l); cost < best {
					best = cost
					level = l
				}
			}
		}
		s[i] = sim.CompileEvent{Func: f, Level: level}
	}
	return s
}

// SingleCoreLevels returns each function's most cost-effective level under
// the model — the levels that Theorem 1 proves optimal when compilation and
// execution share one core. Functions that never appear get level 0.
func SingleCoreLevels(tr *trace.Trace, m profile.CostModel) []profile.Level {
	counts := tr.Counts()
	levels := make([]profile.Level, len(counts))
	for f, n := range counts {
		if n > 0 {
			levels[f] = profile.CostEffectiveLevel(m, trace.FuncID(f), n)
		}
	}
	return levels
}

// SingleCoreMakeSpan computes the make-span of a single-core execution under
// the given per-function level choice: with one core the machine is always
// either compiling or executing, so the make-span is simply the sum of one
// compilation per appearing function plus all execution times (§4.1).
func SingleCoreMakeSpan(tr *trace.Trace, p *profile.Profile, levels []profile.Level) (int64, error) {
	if len(levels) < tr.NumFuncs() {
		return 0, fmt.Errorf("core: got %d level choices for %d called functions", len(levels), tr.NumFuncs())
	}
	counts := tr.Counts()
	var span int64
	for f, n := range counts {
		if n == 0 {
			continue
		}
		l := levels[f]
		if l < 0 || int(l) >= p.Levels {
			return 0, fmt.Errorf("core: function %d assigned level %d outside [0,%d)", f, l, p.Levels)
		}
		span += p.CompileTime(trace.FuncID(f), l) + n*p.ExecTime(trace.FuncID(f), l)
	}
	return span, nil
}

// OptimalSingleCoreMakeSpan returns the minimum single-core make-span: the
// Theorem 1 optimum, using true times as the (oracle) cost-benefit model.
func OptimalSingleCoreMakeSpan(tr *trace.Trace, p *profile.Profile) int64 {
	span, err := SingleCoreMakeSpan(tr, p, SingleCoreLevels(tr, profile.NewOracle(p)))
	if err != nil {
		// SingleCoreLevels only produces in-range levels; this is unreachable.
		panic(err)
	}
	return span
}
