package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/sim"
)

func TestAdviceRoundTrip(t *testing.T) {
	tr, p := testWorkload(31)
	sched, err := IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAdvice(&buf, "wl", sched, p); err != nil {
		t.Fatal(err)
	}
	got, label, err := ReadAdvice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if label != "wl" {
		t.Errorf("label = %q, want wl", label)
	}
	if len(got) != len(sched) {
		t.Fatalf("round trip length %d, want %d", len(got), len(sched))
	}
	for i := range sched {
		if got[i] != sched[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], sched[i])
		}
	}
	// Replaying the advice gives the identical make-span.
	a, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(tr, p, got, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakeSpan != b.MakeSpan {
		t.Errorf("advice replay make-span %d != original %d", b.MakeSpan, a.MakeSpan)
	}
}

func TestAdviceWithoutProfileNames(t *testing.T) {
	sched := sim.Schedule{{Func: 3, Level: 2}, {Func: 0, Level: 0}}
	var buf bytes.Buffer
	if err := WriteAdvice(&buf, "", sched, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAdvice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != sched[0] || got[1] != sched[1] {
		t.Errorf("round trip %v, want %v", got, sched)
	}
}

func TestAdviceIncludesNames(t *testing.T) {
	p := &profile.Profile{Levels: 2, Funcs: []profile.FuncTimes{
		{Name: "hotLoop", Compile: []int64{1, 2}, Exec: []int64{2, 1}},
	}}
	var buf bytes.Buffer
	if err := WriteAdvice(&buf, "x", sim.Schedule{{Func: 0, Level: 1}}, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hotLoop") {
		t.Errorf("advice lacks function name:\n%s", buf.String())
	}
}

func TestReadAdviceRejects(t *testing.T) {
	cases := []string{
		"",                                  // empty
		"C0 1\n",                            // no header
		"# jitsched advice v1 x\nnope\n",    // malformed event
		"# jitsched advice v1 x\nC-1 0\n",   // negative level
		"# jitsched advice v1 x\nCx 0\n",    // bad level
		"# jitsched advice v1 x\nC0 -4\n",   // negative function
		"# jitsched advice v1 x\nC0 nope\n", // bad function
	}
	for i, in := range cases {
		if _, _, err := ReadAdvice(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): want error", i, in)
		}
	}
	// Comments and blank lines are fine.
	ok := "# jitsched advice v1 lbl\n\n# a comment\nC1 2\n"
	sched, label, err := ReadAdvice(strings.NewReader(ok))
	if err != nil || label != "lbl" || len(sched) != 1 {
		t.Errorf("benign input rejected: %v %q %v", sched, label, err)
	}
}
