package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// IARPlanner is the warm-start form of IAR for a growing visible prefix: the
// online replanner calls Plan once per stride with an ever-longer trace, and
// the planner re-derives only what the new calls can change instead of
// re-running the whole heuristic. Its plans are bit-identical to running
// (*IARArena).IAR from scratch on the same prefix — same events, same order —
// which the differential tests in planner_test.go pin across option matrices
// and growth patterns.
//
// # What carries over between plans
//
// The planner persists, per function: call count, first-call position,
// Formula 2's n1 (calls issued while the init schedule is still compiling),
// the classification ('O'/'A'/'R'), and the chosen high level. n1 is exact at
// all times without re-simulation: the init schedule only ever grows at the
// tail (new functions, low level), so its resumable simulation extends in
// O(new calls), and since call starts are non-decreasing the set of calls
// starting before the compile end is a prefix of call indices — a frontier
// pointer re-advanced after each extension yields exactly the from-scratch
// count.
//
// Only functions whose count or n1 changed since the last plan (the dirty
// set) are reclassified. If no new function appeared and no dirty function's
// (class, high) outcome changed, the previous plan's structure is provably
// still what from-scratch IAR would build — the step-2 schedule, the
// fill-slack slack/suffix-minimum tables, and the chosen replacement set all
// depend only on per-function outcomes and on call starts at first-call
// positions, none of which appending calls can alter — so the planner skips
// the rebuild (a "fast replan"): it extends the resumable simulations of the
// step-2 schedule and its fill-slack candidate by the new calls only and
// re-runs the cheap final selection. The fill-slack accept test and step 4's
// gap fill are re-decided every plan — both compare make-spans that grow
// with the stream — so a fast replan is never a stale plan. Otherwise the
// planner rebuilds the schedule structures with two full simulation passes
// (from-scratch IAR needs four).
//
// # Contract
//
// Each Plan call's trace must extend the previous call's: the earlier calls
// unchanged (the planner reads only the new suffix), length non-decreasing.
// Options are fixed at construction. The returned Schedule aliases the
// planner's buffers and is valid only until the next Plan call. A planner is
// not safe for concurrent use.
type IARPlanner struct {
	p     *profile.Profile
	opts  IAROptions
	model profile.CostModel
	nf    int

	// Stream state, maintained in O(delta) per plan.
	nCalls    int
	counts    []int64
	firstCall []int
	posOf     []int32
	order     []trace.FuncID
	funcs     []iarFunc

	// Formula 2 state: the init schedule's resumable sim and the n1 frontier.
	initSim  *sim.PrefixSim
	n1       []int64
	frontier int

	touched     []bool
	touchedList []trace.FuncID

	// Plan structure, valid between rebuilds while stable.
	planValid bool
	sched2    Schedule
	appendSet []int32
	sched2Sim *sim.PrefixSim
	haveCand  bool
	candidate Schedule
	candSim   *sim.PrefixSim
	chosen    []int32

	// Per-simulation late-call counts for step 4: calls starting at or after
	// that simulation's compile end, maintained incrementally (the compile
	// end is fixed between rebuilds, and starts are non-decreasing, so only
	// new calls can join the late set).
	lateBase []int64
	lateCand []int64

	// Rebuild and step-4 scratch.
	slack    []int64
	suffMin  []int64
	removed  []bool
	maxLevel []profile.Level
	cands    []int32
	plan     Schedule

	replans     int64
	fastReplans int64
}

// NewIARPlanner builds a planner over the profile with fixed options,
// normalized and validated exactly as (*IARArena).IAR does per run.
func NewIARPlanner(p *profile.Profile, opts IAROptions) (*IARPlanner, error) {
	if opts.K == 0 {
		opts.K = 5
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("core: IAR K must be positive, got %d", opts.K)
	}
	if opts.LowLevel < 0 || int(opts.LowLevel) >= p.Levels {
		return nil, fmt.Errorf("core: IAR LowLevel %d outside [0,%d)", opts.LowLevel, p.Levels)
	}
	model := opts.Model
	if model == nil {
		model = profile.NewOracle(p)
	}
	initSim, err := sim.NewPrefixSim(p, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sched2Sim, err := sim.NewPrefixSim(p, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	candSim, err := sim.NewPrefixSim(p, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	nf := p.NumFuncs()
	pl := &IARPlanner{
		p: p, opts: opts, model: model, nf: nf,
		counts:    make([]int64, nf),
		firstCall: make([]int, nf),
		posOf:     make([]int32, nf),
		n1:        make([]int64, nf),
		touched:   make([]bool, nf),
		lateBase:  make([]int64, nf),
		lateCand:  make([]int64, nf),
		maxLevel:  make([]profile.Level, nf),
		initSim:   initSim, sched2Sim: sched2Sim, candSim: candSim,
	}
	for f := range pl.firstCall {
		pl.firstCall[f] = -1
		pl.posOf[f] = -1
	}
	return pl, nil
}

// Replans returns how many plans the planner has produced.
func (pl *IARPlanner) Replans() int64 { return pl.replans }

// FastReplans returns how many of those plans took the stable path — no
// structural rebuild, only O(delta) simulation extensions.
func (pl *IARPlanner) FastReplans() int64 { return pl.fastReplans }

// touch marks a function dirty for this plan's reclassification pass.
func (pl *IARPlanner) touch(f trace.FuncID) {
	if !pl.touched[f] {
		pl.touched[f] = true
		pl.touchedList = append(pl.touchedList, f)
	}
}

// Plan returns the IAR schedule for the visible prefix; see the type comment
// for the growth contract and the identity guarantee.
func (pl *IARPlanner) Plan(visible *trace.Trace) (Schedule, error) {
	calls := visible.Calls
	if len(calls) < pl.nCalls {
		return nil, fmt.Errorf("core: planner visible prefix shrank from %d to %d calls", pl.nCalls, len(calls))
	}
	delta := calls[pl.nCalls:]

	// Absorb the delta: counts, first appearances (which also extend the
	// init schedule), and the dirty set.
	newFuncs := false
	pl.touchedList = pl.touchedList[:0]
	for di, f := range delta {
		if f < 0 {
			return nil, fmt.Errorf("trace %q: call %d has negative function id %d", visible.Name, pl.nCalls+di, f)
		}
		if int(f) >= pl.nf {
			return nil, fmt.Errorf("trace %q: call %d references function %d beyond %d", visible.Name, pl.nCalls+di, f, pl.nf)
		}
		if pl.firstCall[f] < 0 {
			pl.firstCall[f] = pl.nCalls + di
			pl.posOf[f] = int32(len(pl.order))
			pl.order = append(pl.order, f)
			pl.funcs = append(pl.funcs, iarFunc{f: f, pos: len(pl.funcs), appended: -1})
			newFuncs = true
			if err := pl.initSim.AppendCompile(sim.CompileEvent{Func: f, Level: pl.opts.LowLevel}); err != nil {
				return nil, err
			}
		}
		pl.counts[f]++
		pl.touch(f)
	}
	if err := pl.initSim.ExecCalls(delta); err != nil {
		return nil, err
	}
	pl.nCalls = len(calls)

	// Advance the n1 frontier under the (possibly grown) compile end.
	starts, ce := pl.initSim.CallStarts(), pl.initSim.CompileEnd()
	for pl.frontier < len(starts) && starts[pl.frontier] < ce {
		f := calls[pl.frontier]
		pl.n1[f]++
		pl.touch(f)
		pl.frontier++
	}

	if len(pl.order) == 0 {
		return Schedule{}, nil
	}
	pl.replans++

	// Reclassify the dirty set; any changed (class, high) outcome or new
	// function voids the cached plan structure.
	stable := pl.planValid && !newFuncs
	for _, f := range pl.touchedList {
		pl.touched[f] = false
		ff := &pl.funcs[pl.posOf[f]]
		n := pl.counts[f]
		high := profile.CostEffectiveLevel(pl.model, f, n)
		if high < pl.opts.LowLevel {
			high = pl.opts.LowLevel
		}
		low := pl.opts.LowLevel
		cl, el := pl.p.CompileTime(f, low), pl.p.ExecTime(f, low)
		ch, eh := pl.p.CompileTime(f, high), pl.p.ExecTime(f, high)
		var class byte
		switch {
		case high == low || ch+n*eh > cl+n*el: // Formula 1
			class = 'O'
		case ch-cl > pl.opts.K*pl.n1[f]*(el-eh): // Formula 2
			class = 'A'
		default:
			class = 'R'
		}
		if class != ff.class || high != ff.high {
			stable = false
		}
		ff.n, ff.low, ff.high, ff.cl, ff.el, ff.ch, ff.eh, ff.class = n, low, high, cl, el, ch, eh, class
	}

	if stable {
		pl.fastReplans++
		if err := pl.extendPlanSims(delta); err != nil {
			return nil, err
		}
	} else {
		if err := pl.rebuildPlans(calls); err != nil {
			pl.planValid = false
			return nil, err
		}
		pl.planValid = true
	}
	return pl.finishPlan(), nil
}

// extendPlanSims advances the step-2 and candidate simulations by the new
// calls only — the whole cost of a fast replan.
func (pl *IARPlanner) extendPlanSims(delta []trace.FuncID) error {
	n0 := pl.sched2Sim.NumCalls()
	if err := pl.sched2Sim.ExecCalls(delta); err != nil {
		pl.planValid = false
		return err
	}
	accrueLate(pl.sched2Sim, pl.lateBase, n0, delta)
	if pl.haveCand {
		n0 = pl.candSim.NumCalls()
		if err := pl.candSim.ExecCalls(delta); err != nil {
			pl.planValid = false
			return err
		}
		accrueLate(pl.candSim, pl.lateCand, n0, delta)
	}
	return nil
}

// accrueLate folds calls n0.. of the simulation into the per-function
// late-call counts: a call is late when it starts at or after the
// simulation's compile end.
func accrueLate(s *sim.PrefixSim, late []int64, n0 int, delta []trace.FuncID) {
	starts, ce := s.CallStarts(), s.CompileEnd()
	for j, f := range delta {
		if starts[n0+j] >= ce {
			late[f]++
		}
	}
}

// rebuildPlans reconstructs the step-2 schedule and the fill-slack candidate
// from the current per-function outcomes and re-simulates both over the full
// prefix — the same structures, built by the same comparisons in the same
// order, as (*IARArena).IAR steps 2 and 3.
func (pl *IARPlanner) rebuildPlans(calls []trace.FuncID) error {
	funcs := pl.funcs
	appendSet := pl.appendSet[:0]
	for i := range funcs {
		funcs[i].appended = -1
		if funcs[i].class == 'A' {
			appendSet = append(appendSet, int32(i))
		}
	}
	slices.SortStableFunc(appendSet, func(x, y int32) int {
		return cmp.Compare(funcs[x].ch, funcs[y].ch)
	})
	pl.appendSet = appendSet

	sched := pl.sched2[:0]
	for i := range funcs {
		ff := &funcs[i]
		level := ff.low
		if ff.class == 'R' {
			level = ff.high
		}
		sched = append(sched, sim.CompileEvent{Func: ff.f, Level: level})
	}
	for _, fi := range appendSet {
		funcs[fi].appended = len(sched)
		sched = append(sched, sim.CompileEvent{Func: funcs[fi].f, Level: funcs[fi].high})
	}
	pl.sched2 = sched

	if err := pl.resim(pl.sched2Sim, sched, calls, pl.lateBase); err != nil {
		return err
	}

	pl.haveCand = false
	if !pl.opts.DisableFillSlack {
		// Slack per init position from the step-2 run, suffix minima, and the
		// greedy no-bubble replacement set — Fig. 3 step 3, arena order.
		starts, dones := pl.sched2Sim.CallStarts(), pl.sched2Sim.CompileDones()
		slack := arenaGrow(pl.slack, len(funcs))
		pl.slack = slack
		for i := range funcs {
			slack[i] = starts[pl.firstCall[funcs[i].f]] - dones[i]
		}
		suffMin := arenaGrow(pl.suffMin, len(funcs)+1)
		pl.suffMin = suffMin
		suffMin[len(funcs)] = int64(1) << 62
		for i := len(funcs) - 1; i >= 0; i-- {
			suffMin[i] = slack[i]
			if suffMin[i+1] < suffMin[i] {
				suffMin[i] = suffMin[i+1]
			}
		}
		var inflate int64
		chosen := pl.chosen[:0]
		for i := range funcs {
			ff := &funcs[i]
			if ff.class != 'A' {
				continue
			}
			delta := ff.ch - ff.cl
			if inflate+delta <= suffMin[i] {
				chosen = append(chosen, int32(i))
				inflate += delta
			}
		}
		pl.chosen = chosen
		if len(chosen) > 0 {
			removed := arenaGrow(pl.removed, len(sched))
			pl.removed = removed
			clear(removed)
			cand := append(pl.candidate[:0], sched...)
			for _, fi := range chosen {
				cand[fi].Level = funcs[fi].high
				removed[funcs[fi].appended] = true
			}
			out := cand[:0]
			for i, ev := range cand {
				if !removed[i] {
					out = append(out, ev)
				}
			}
			pl.candidate = out
			if err := pl.resim(pl.candSim, out, calls, pl.lateCand); err != nil {
				return err
			}
			pl.haveCand = true
		}
	}
	return nil
}

// resim replays a schedule over the full prefix on a resumable simulator and
// recomputes its late-call counts from scratch.
func (pl *IARPlanner) resim(s *sim.PrefixSim, sched Schedule, calls []trace.FuncID, late []int64) error {
	s.Reset()
	for _, ev := range sched {
		if err := s.AppendCompile(ev); err != nil {
			return err
		}
	}
	if err := s.ExecCalls(calls); err != nil {
		return err
	}
	clear(late)
	accrueLate(s, late, 0, calls)
	return nil
}

// finishPlan re-decides the fill-slack acceptance and re-runs the gap fill —
// the two parts of the plan that depend on the full stream length — and
// assembles the returned schedule.
func (pl *IARPlanner) finishPlan() Schedule {
	final, finalSim, late := pl.sched2, pl.sched2Sim, pl.lateBase
	if pl.haveCand && pl.candSim.MakeSpan() <= pl.sched2Sim.MakeSpan() {
		final, finalSim, late = pl.candidate, pl.candSim, pl.lateCand
	}
	plan := append(pl.plan[:0], final...)
	if !pl.opts.DisableFillGap {
		tgap := finalSim.MakeSpan() - finalSim.CompileEnd()
		if tgap > 0 {
			maxLevel := pl.maxLevel
			for _, f := range pl.order {
				maxLevel[f] = -1
			}
			for _, ev := range final {
				if ev.Level > maxLevel[ev.Func] {
					maxLevel[ev.Func] = ev.Level
				}
			}
			cands := pl.cands[:0]
			for i := range pl.funcs {
				ff := &pl.funcs[i]
				if maxLevel[ff.f] < ff.high && late[ff.f] > 0 {
					cands = append(cands, int32(i))
				}
			}
			pl.cands = cands
			slices.SortStableFunc(cands, func(x, y int32) int {
				return cmp.Compare(late[pl.funcs[y].f], late[pl.funcs[x].f])
			})
			var used int64
			for _, fi := range cands {
				ff := &pl.funcs[fi]
				if used+ff.ch <= tgap {
					plan = append(plan, sim.CompileEvent{Func: ff.f, Level: ff.high})
					used += ff.ch
				}
			}
		}
	}
	pl.plan = plan
	return plan
}
