package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Advice files serialize compilation schedules, mirroring Jikes RVM's replay
// mode (§6.1): "it takes some advice files that indicate how each Java
// method should be compiled, and runs the program with the JIT following
// those instructions". Here an advice file is the full ordered compilation
// sequence, one event per line:
//
//	# jitsched advice v1 [label]
//	C<level> <funcID> [name]
//
// Blank lines and other '#' comments are ignored. Names are informational.

const adviceHeader = "# jitsched advice v1"

// WriteAdvice serializes a schedule. p, when non-nil, contributes function
// names as trailing comments.
func WriteAdvice(w io.Writer, label string, sched sim.Schedule, p *profile.Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %s\n", adviceHeader, label); err != nil {
		return err
	}
	for _, ev := range sched {
		name := ""
		if p != nil && int(ev.Func) < p.NumFuncs() && p.Funcs[ev.Func].Name != "" {
			name = " " + p.Funcs[ev.Func].Name
		}
		if _, err := fmt.Fprintf(bw, "C%d %d%s\n", ev.Level, ev.Func, name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAdvice parses an advice file back into a schedule and its label.
func ReadAdvice(r io.Reader) (sim.Schedule, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var sched sim.Schedule
	label := ""
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, adviceHeader); ok && !sawHeader {
				sawHeader = true
				label = strings.TrimSpace(rest)
			}
			continue
		}
		if !sawHeader {
			return nil, "", fmt.Errorf("core: advice line %d: missing %q header", lineNo, adviceHeader)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "C") {
			return nil, "", fmt.Errorf("core: advice line %d: want \"C<level> <funcID>\", got %q", lineNo, line)
		}
		level, err := strconv.Atoi(fields[0][1:])
		if err != nil || level < 0 {
			return nil, "", fmt.Errorf("core: advice line %d: bad level %q", lineNo, fields[0])
		}
		fn, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || fn < 0 {
			return nil, "", fmt.Errorf("core: advice line %d: bad function id %q", lineNo, fields[1])
		}
		sched = append(sched, sim.CompileEvent{Func: trace.FuncID(fn), Level: profile.Level(level)})
	}
	if err := sc.Err(); err != nil {
		return nil, "", fmt.Errorf("core: scanning advice: %w", err)
	}
	if !sawHeader {
		return nil, "", fmt.Errorf("core: not an advice file (missing header)")
	}
	return sched, label, nil
}
