package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The Fig. 1 instance of the paper: three functions, two levels.
func fig1() (*trace.Trace, *profile.Profile) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f0", Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Name: "f1", Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Name: "f2", Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	return trace.New("fig1", []trace.FuncID{0, 1, 2, 1}), p
}

// ExampleIAR schedules the paper's Fig. 1 call sequence and simulates the
// result.
func ExampleIAR() {
	tr, p := fig1()
	sched, err := core.IAR(tr, p, core.IAROptions{})
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("events=%d make-span=%d lower-bound=%d\n",
		len(sched), res.MakeSpan, core.LowerBound(tr, p))
	// Output:
	// events=3 make-span=11 lower-bound=6
}

// ExampleSingleLevelBase builds the base-level-only schedule of §5.1.
func ExampleSingleLevelBase() {
	tr, p := fig1()
	for _, ev := range core.SingleLevelBase(tr) {
		fmt.Printf("C%d(%s) ", ev.Level, p.Funcs[ev.Func].Name)
	}
	fmt.Println()
	// Output:
	// C0(f0) C0(f1) C0(f2)
}

// ExampleOptimalSingleCoreMakeSpan evaluates Theorem 1's single-core
// optimum: one compilation per function at its most cost-effective level,
// plus all execution time.
func ExampleOptimalSingleCoreMakeSpan() {
	tr, p := fig1()
	fmt.Println(core.OptimalSingleCoreMakeSpan(tr, p))
	// Output:
	// 15
}

// ExampleWriteAdvice serializes a schedule the way Jikes RVM's replay mode
// consumes compilation advice (§6.1).
func ExampleWriteAdvice() {
	_, p := fig1()
	sched := sim.Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 1}}
	var out strings.Builder
	if err := core.WriteAdvice(&out, "demo", sched, p); err != nil {
		panic(err)
	}
	fmt.Print(out.String())
	// Output:
	// # jitsched advice v1 demo
	// C0 0 f0
	// C1 1 f1
}
