package core

import (
	"math/rand"
	"testing"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/trace"
)

func testWorkload(seed int64) (*trace.Trace, *profile.Profile) {
	// A realistic regime: many functions, most of them cold, a hot core —
	// the shape of the paper's DaCapo traces (Table 1).
	tr := testkit.Gen(trace.GenConfig{
		Name: "wl", NumFuncs: 400, Length: 100000, Seed: seed,
		ZipfS: 1.5, Phases: 4, CoreFuncs: 40, CoreShare: 0.45, BurstMean: 3,
	})
	p := testkit.Synth(400, profile.DefaultTiming(4, seed+1))
	return tr, p
}

func TestLowerBound(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 5}, Exec: []int64{10, 4}},
			{Compile: []int64{2, 6}, Exec: []int64{20, 9}},
		},
	}
	tr := trace.New("t", []trace.FuncID{0, 1, 0})
	if got := LowerBound(tr, p); got != 4+9+4 {
		t.Errorf("LowerBound = %d, want 17", got)
	}
	if got := LowerBound(trace.New("e", nil), p); got != 0 {
		t.Errorf("LowerBound(empty) = %d, want 0", got)
	}
}

// TestLowerBoundHolds: no schedule we can construct beats the lower bound.
func TestLowerBoundHolds(t *testing.T) {
	tr, p := testWorkload(3)
	lb := LowerBound(tr, p)
	model := profile.NewOracle(p)
	schedules := map[string]Schedule{
		"base":  SingleLevelBase(tr),
		"opt":   SingleLevelOptimizing(tr, model),
		"mixed": append(SingleLevelBase(tr), SingleLevelOptimizing(tr, model)...),
	}
	iar, err := IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatalf("IAR: %v", err)
	}
	schedules["iar"] = iar
	for name, s := range schedules {
		for _, w := range []int{1, 4} {
			res, err := sim.Run(tr, p, s, sim.Config{CompileWorkers: w}, sim.Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.MakeSpan < lb {
				t.Errorf("%s with %d workers: make-span %d beats lower bound %d", name, w, res.MakeSpan, lb)
			}
		}
	}
}

func TestSingleLevelBase(t *testing.T) {
	tr := trace.New("t", []trace.FuncID{2, 0, 2, 1})
	s := SingleLevelBase(tr)
	want := Schedule{{Func: 2, Level: 0}, {Func: 0, Level: 0}, {Func: 1, Level: 0}}
	if len(s) != len(want) {
		t.Fatalf("schedule length %d, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSingleLevelOptimizingUsesModel(t *testing.T) {
	p := &profile.Profile{
		Levels: 3,
		Funcs: []profile.FuncTimes{
			// level 1 is the cheapest optimizing choice for one call
			{Compile: []int64{1, 10, 500}, Exec: []int64{100, 50, 40}},
			// level 2 pays off over two calls: 10+2*50=110 vs 40+2*1=42
			{Compile: []int64{1, 10, 40}, Exec: []int64{100, 50, 1}},
		},
	}
	tr := trace.New("t", []trace.FuncID{0, 1, 1})
	s := SingleLevelOptimizing(tr, profile.NewOracle(p))
	if s[0].Level != 1 {
		t.Errorf("func 0 scheduled at level %d, want 1 (never the base level)", s[0].Level)
	}
	if s[1].Level != 2 {
		t.Errorf("func 1 scheduled at level %d, want 2", s[1].Level)
	}

	// Single-level profiles degenerate to level 0.
	p1 := &profile.Profile{Levels: 1, Funcs: []profile.FuncTimes{
		{Compile: []int64{1}, Exec: []int64{10}},
	}}
	s1 := SingleLevelOptimizing(trace.New("t", []trace.FuncID{0}), profile.NewOracle(p1))
	if s1[0].Level != 0 {
		t.Errorf("single-level profile scheduled at %d, want 0", s1[0].Level)
	}
}

func TestModelLowerBound(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			// cost-effective for 1 call: level 0 (1+10 < 100+4)
			{Compile: []int64{1, 100}, Exec: []int64{10, 4}},
			// cost-effective for 2 calls: level 1 (5+2*2 < 1+2*20)
			{Compile: []int64{1, 5}, Exec: []int64{20, 2}},
		},
	}
	tr := trace.New("t", []trace.FuncID{0, 1, 1})
	got := ModelLowerBound(tr, p, profile.NewOracle(p))
	if want := int64(10 + 2 + 2); got != want {
		t.Errorf("ModelLowerBound = %d, want %d", got, want)
	}
	pure := LowerBound(tr, p)
	if pure > got {
		t.Errorf("pure lower bound %d exceeds model lower bound %d", pure, got)
	}

	if _, err := LowerBoundAtLevels(tr, p, nil); err == nil {
		t.Error("want error for missing levels")
	}
	if _, err := LowerBoundAtLevels(tr, p, []profile.Level{0, 9}); err == nil {
		t.Error("want error for out-of-range level")
	}
}

// TestTheorem1 checks the single-core optimality claim: the most
// cost-effective per-function levels minimize the single-core make-span over
// random alternative level assignments.
func TestTheorem1(t *testing.T) {
	tr, p := testWorkload(5)
	opt := OptimalSingleCoreMakeSpan(tr, p)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		levels := make([]profile.Level, p.NumFuncs())
		for i := range levels {
			levels[i] = profile.Level(rng.Intn(p.Levels))
		}
		span, err := SingleCoreMakeSpan(tr, p, levels)
		if err != nil {
			t.Fatal(err)
		}
		if span < opt {
			t.Fatalf("trial %d: random levels give %d < claimed optimum %d", trial, span, opt)
		}
	}
}

func TestSingleCoreMakeSpanErrors(t *testing.T) {
	tr, p := testWorkload(6)
	if _, err := SingleCoreMakeSpan(tr, p, nil); err == nil {
		t.Error("want error for missing levels")
	}
	levels := make([]profile.Level, p.NumFuncs())
	levels[0] = 99
	if _, err := SingleCoreMakeSpan(tr, p, levels); err == nil {
		t.Error("want error for out-of-range level")
	}
}

func TestIARValidAndEffective(t *testing.T) {
	tr, p := testWorkload(7)
	s, err := IAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatalf("IAR: %v", err)
	}
	if err := s.Validate(tr, p); err != nil {
		t.Fatalf("IAR schedule invalid: %v", err)
	}
	cfg := sim.DefaultConfig()
	iarRes, err := sim.Run(tr, p, s, cfg, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := sim.Run(tr, p, SingleLevelBase(tr), cfg, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := sim.Run(tr, p, SingleLevelOptimizing(tr, profile.NewOracle(p)), cfg, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if iarRes.MakeSpan > baseRes.MakeSpan {
		t.Errorf("IAR (%d) worse than base-level-only (%d)", iarRes.MakeSpan, baseRes.MakeSpan)
	}
	if iarRes.MakeSpan > optRes.MakeSpan {
		t.Errorf("IAR (%d) worse than optimizing-level-only (%d)", iarRes.MakeSpan, optRes.MakeSpan)
	}
	lb := LowerBound(tr, p)
	if iarRes.MakeSpan < lb {
		t.Errorf("IAR make-span %d beats lower bound %d", iarRes.MakeSpan, lb)
	}
	// The paper reports IAR within 17%% of the (model-restricted) lower
	// bound on every benchmark; we allow a looser 30%% sanity margin here
	// (this is a correctness test, not the Fig. 5 reproduction).
	mlb := ModelLowerBound(tr, p, profile.NewOracle(p))
	if float64(iarRes.MakeSpan) > 1.3*float64(mlb) {
		t.Errorf("IAR make-span %d is more than 1.3x the model lower bound %d", iarRes.MakeSpan, mlb)
	}
}

// TestIARStepsHelp: disabling steps 3/4 must never beat the full algorithm.
func TestIARStepsHelp(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr, p := testWorkload(seed)
		cfg := sim.DefaultConfig()
		span := func(opts IAROptions) int64 {
			s, err := IAR(tr, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(tr, p, s, cfg, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res.MakeSpan
		}
		full := span(IAROptions{})
		noSlack := span(IAROptions{DisableFillSlack: true})
		noGap := span(IAROptions{DisableFillGap: true})
		if full > noSlack {
			t.Errorf("seed %d: fill-slack step hurt: %d > %d", seed, full, noSlack)
		}
		if full > noGap {
			t.Errorf("seed %d: fill-gap step hurt: %d > %d", seed, full, noGap)
		}
	}
}

// TestIARKInsensitive mirrors the paper's observation that K anywhere in
// [3,10] gives similar results: make-spans across that range must stay
// within a few percent of each other.
func TestIARKInsensitive(t *testing.T) {
	tr, p := testWorkload(9)
	cfg := sim.DefaultConfig()
	var spans []int64
	for _, k := range []int64{3, 5, 8, 10} {
		s, err := IAR(tr, p, IAROptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr, p, s, cfg, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, res.MakeSpan)
	}
	min, max := spans[0], spans[0]
	for _, s := range spans[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if float64(max) > 1.10*float64(min) {
		t.Errorf("K sensitivity too high: spans %v vary more than 10%%", spans)
	}
}

func TestIAREdgeCases(t *testing.T) {
	p := testkit.Synth(4, profile.DefaultTiming(4, 2))

	s, err := IAR(trace.New("empty", nil), p, IAROptions{})
	if err != nil {
		t.Fatalf("IAR(empty): %v", err)
	}
	if len(s) != 0 {
		t.Errorf("IAR(empty) produced %d events, want 0", len(s))
	}

	one := trace.New("one", []trace.FuncID{2})
	s, err = IAR(one, p, IAROptions{})
	if err != nil {
		t.Fatalf("IAR(one): %v", err)
	}
	if err := s.Validate(one, p); err != nil {
		t.Errorf("IAR(one) invalid: %v", err)
	}

	if _, err := IAR(trace.New("bad", []trace.FuncID{99}), p, IAROptions{}); err == nil {
		t.Error("want error for out-of-range function id")
	}
	if _, err := IAR(one, p, IAROptions{K: -1}); err == nil {
		t.Error("want error for negative K")
	}
}

// TestClassifyIAR builds functions with known destinies.
func TestClassifyIAR(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			// f0: huge low-level compile stretches the init-compile phase;
			// level 1 never pays off for its single call -> Other.
			{Compile: []int64{10000, 10001}, Exec: []int64{10, 10}},
			// f1: called 200 times while f0 is still compiling; its cheap
			// recompilation pays for itself within those calls -> Replace.
			{Compile: []int64{1, 4}, Exec: []int64{50, 1}},
			// f2: benefits overall, but all its calls happen after the init
			// compile phase, so the huge recompilation would only add
			// bubbles up front -> Append.
			{Compile: []int64{1, 5000}, Exec: []int64{40, 1}},
		},
	}
	calls := make([]trace.FuncID, 0, 402)
	for i := 0; i < 200; i++ {
		calls = append(calls, 1)
	}
	calls = append(calls, 0)
	for i := 0; i < 201; i++ {
		calls = append(calls, 2)
	}
	tr := trace.New("t", calls)
	cls, err := ClassifyIAR(tr, p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(s []trace.FuncID, f trace.FuncID) bool {
		for _, x := range s {
			if x == f {
				return true
			}
		}
		return false
	}
	if !has(cls.Other, 0) {
		t.Errorf("func 0 not in Other: %+v", cls)
	}
	if !has(cls.Replace, 1) {
		t.Errorf("func 1 not in Replace: %+v", cls)
	}
	if !has(cls.Append, 2) {
		t.Errorf("func 2 not in Append: %+v", cls)
	}
}

// TestIARNeverWorseThanInitOnly: IAR must never lose to its own step-1
// schedule (all low, first-appearance order), since later steps only apply
// changes they deem safe and beneficial.
func TestIARNeverWorseThanInitOnly(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		tr, p := testWorkload(seed)
		cfg := sim.DefaultConfig()
		s, err := IAR(tr, p, IAROptions{})
		if err != nil {
			t.Fatal(err)
		}
		iarRes, err := sim.Run(tr, p, s, cfg, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		initRes, err := sim.Run(tr, p, SingleLevelBase(tr), cfg, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if iarRes.MakeSpan > initRes.MakeSpan {
			t.Errorf("seed %d: IAR %d worse than init-only %d", seed, iarRes.MakeSpan, initRes.MakeSpan)
		}
	}
}
