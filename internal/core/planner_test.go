package core

import (
	"fmt"
	"testing"

	"repro/internal/dacapo"
	"repro/internal/profile"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// plannerWorkload is a smaller variant of testWorkload: growing-prefix
// differentials replan O(sqrt) times and run the from-scratch arena on every
// prefix, so the instance must stay modest.
func plannerWorkload(seed int64) (*trace.Trace, *profile.Profile) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "wl", NumFuncs: 120, Length: 6000, Seed: seed,
		ZipfS: 1.5, Phases: 3, CoreFuncs: 15, CoreShare: 0.45, BurstMean: 3,
	})
	p := testkit.Synth(120, profile.DefaultTiming(4, seed+1))
	return tr, p
}

// growPlanner drives one planner and one from-scratch arena over growing
// prefixes of the trace and asserts bit-identical plans at every step.
// Returns the planner for stats assertions.
func growPlanner(t *testing.T, label string, tr *trace.Trace, p *profile.Profile, opts IAROptions, stride int) *IARPlanner {
	t.Helper()
	pl, err := NewIARPlanner(p, opts)
	if err != nil {
		t.Fatalf("%s: NewIARPlanner: %v", label, err)
	}
	arena := NewIARArena()
	cursor := trace.NewPrefix(tr)
	for hi := stride; ; hi += stride {
		if hi > tr.Len() {
			hi = tr.Len()
		}
		if err := cursor.Extend(hi); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got, err := pl.Plan(cursor.Trace())
		if err != nil {
			t.Fatalf("%s: Plan(%d): %v", label, hi, err)
		}
		want, err := arena.IAR(tr.Slice(0, hi), p, opts)
		if err != nil {
			t.Fatalf("%s: arena(%d): %v", label, hi, err)
		}
		sameSchedule(t, fmt.Sprintf("%s/hi=%d", label, hi), got, want)
		if hi == tr.Len() {
			break
		}
	}
	return pl
}

// TestIARPlannerBitIdenticalGrowth sweeps synthetic workloads and the full
// option matrix over growing prefixes: every incremental plan must equal the
// from-scratch arena plan on the same prefix, and the fast (no-rebuild) path
// must actually fire once the classification stabilizes.
func TestIARPlannerBitIdenticalGrowth(t *testing.T) {
	var fast, total int64
	for seed := int64(1); seed <= 3; seed++ {
		tr, p := plannerWorkload(seed)
		for _, m := range iarOptionMatrix(p) {
			label := fmt.Sprintf("seed%d/%s", seed, m.name)
			pl := growPlanner(t, label, tr, p, m.opts, 479)
			fast += pl.FastReplans()
			total += pl.Replans()
		}
	}
	if fast == 0 {
		t.Errorf("no plan took the fast path across %d replans — the dirty-set check never stabilizes", total)
	}
	if fast >= total {
		t.Errorf("fast path fired on all %d replans — the first plan must rebuild", total)
	}
}

// TestIARPlannerSmallStride drives the planner call-by-call (stride 1) on a
// short workload — the densest replan pattern the online engine can produce.
func TestIARPlannerSmallStride(t *testing.T) {
	tr := testkit.Gen(trace.GenConfig{
		Name: "s1", NumFuncs: 40, Length: 350, Seed: 11,
		ZipfS: 1.3, Phases: 2, CoreFuncs: 8, CoreShare: 0.5, BurstMean: 2,
	})
	p := testkit.Synth(40, profile.DefaultTiming(4, 12))
	for _, m := range iarOptionMatrix(p) {
		growPlanner(t, "stride1/"+m.name, tr, p, m.opts, 1)
	}
}

// TestIARPlannerBitIdenticalCorpus is the growth differential over real
// DaCapo workloads, where fill-slack accept/reject flips and gap filling
// occur at realistic rates.
func TestIARPlannerBitIdenticalCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	for _, name := range []string{"antlr", "jython"} {
		bench, err := dacapo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := bench.Load(0.02)
		if err != nil {
			t.Fatal(err)
		}
		growPlanner(t, name+"/oracle", w.Trace, w.Profile, IAROptions{}, 257)
		growPlanner(t, name+"/model", w.Trace, w.Profile, IAROptions{Model: w.DefaultModel()}, 257)
	}
}

// TestIARPlannerErrors pins construction validation (same strings as the
// arena's per-run validation), the growth contract, and call validation.
func TestIARPlannerErrors(t *testing.T) {
	tr, p := plannerWorkload(5)
	if _, err := NewIARPlanner(p, IAROptions{K: -1}); err == nil ||
		err.Error() != "core: IAR K must be positive, got -1" {
		t.Errorf("negative K: %v", err)
	}
	if _, err := NewIARPlanner(p, IAROptions{LowLevel: profile.Level(p.Levels)}); err == nil {
		t.Errorf("out-of-range LowLevel accepted")
	}
	pl, err := NewIARPlanner(p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(tr.Slice(0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(tr.Slice(0, 50)); err == nil {
		t.Error("shrinking prefix accepted")
	}
	bad := trace.New("bad", []trace.FuncID{0, trace.FuncID(p.NumFuncs())})
	pl2, err := NewIARPlanner(p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl2.Plan(bad); err == nil {
		t.Error("out-of-range function id accepted")
	}
	// An empty visible prefix plans an empty schedule.
	pl3, err := NewIARPlanner(p, IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl3.Plan(trace.New("empty", nil))
	if err != nil || len(plan) != 0 {
		t.Errorf("empty prefix: plan=%v err=%v", plan, err)
	}
}
