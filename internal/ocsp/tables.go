// Package ocsp holds the machinery shared by every exact OCSP solver: the
// flattened per-instance timing tables, the incremental prefix evaluator of
// the Fig. 4 search tree, and the admissible lower bounds (bounds.go) that
// both the branch-and-bound searches (internal/astar) and the CDCL-backed
// optimality oracle (internal/exact) prune with.
//
// The package is deliberately mechanism-only: it has no search loop and no
// policy. A solver builds Tables once per instance, hands out Eval scratch
// per goroutine, and asks CostBound / CostBoundTight for pruning decisions.
package ocsp

import (
	"repro/internal/profile"
	"repro/internal/trace"
)

// Tables is the immutable, flattened form of one OCSP instance: everything a
// search needs in cache-friendly slices, shared read-only across goroutines.
type Tables struct {
	Tr *trace.Trace
	P  *profile.Profile
	// Order lists the called functions by first appearance — the canonical
	// child-generation order of the Fig. 4 tree.
	Order []trace.FuncID
	// BestE[f] is f's best (fastest) per-call execution time over all levels.
	BestE []int64
	// Levels is the profile's level count; Compile[f*Levels+l] and
	// Exec[f*Levels+l] flatten the profile tables for the evaluation loops.
	Levels  int
	Compile []int64
	Exec    []int64
	// SufBest[i] is the §5.2 lower bound on executing calls i.. — the sum of
	// best-level execution times over the suffix (len Calls+1, last entry 0).
	SufBest []int64
	// CminC[f] is f's cheapest compile time over all levels; FirstCall[f] the
	// index of f's first call. Together they feed the compile-slack bounds.
	CminC     []int64
	FirstCall []int
}

// NewTables validates the trace against the profile and flattens the
// instance.
func NewTables(tr *trace.Trace, p *profile.Profile) (*Tables, error) {
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return nil, err
	}
	t := &Tables{Tr: tr, P: p, Order: tr.FirstCallOrder(), Levels: p.Levels}
	nf := p.NumFuncs()
	t.BestE = make([]int64, nf)
	t.Compile = make([]int64, nf*p.Levels)
	t.Exec = make([]int64, nf*p.Levels)
	t.CminC = make([]int64, nf)
	for f := 0; f < nf; f++ {
		t.BestE[f] = p.BestExecTime(trace.FuncID(f))
		for l := 0; l < p.Levels; l++ {
			t.Compile[f*p.Levels+l] = p.CompileTime(trace.FuncID(f), profile.Level(l))
			t.Exec[f*p.Levels+l] = p.ExecTime(trace.FuncID(f), profile.Level(l))
			if l == 0 || t.Compile[f*p.Levels+l] < t.CminC[f] {
				t.CminC[f] = t.Compile[f*p.Levels+l]
			}
		}
	}
	t.SufBest = make([]int64, tr.Len()+1)
	for i := tr.Len() - 1; i >= 0; i-- {
		t.SufBest[i] = t.SufBest[i+1] + t.BestE[tr.Calls[i]]
	}
	t.FirstCall = tr.FirstCalls()
	return t, nil
}

// KeyFrontier is the frontier component of a search state key. While calls
// remain uncommitted the future depends only on the effective frontier
// max(ExecT, span) — call i starts there (or races a future version from the
// span), so states agreeing on it share every completion. Once every call is
// committed (cur.I == ncalls) the span stops mattering but ExecT itself
// becomes the make-span; folding different ExecT values under max(ExecT,
// span) would merge states with different optimal costs, so the committed
// tail keys on ExecT directly. FuzzStateKey's seed corpus (internal/astar)
// pins the case.
func KeyFrontier(cur Cursor, span int64, ncalls int) int64 {
	if cur.I == ncalls {
		return cur.ExecT
	}
	if span > cur.ExecT {
		return span
	}
	return cur.ExecT
}
