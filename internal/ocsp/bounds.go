package ocsp

import "repro/internal/profile"

// Admissible lower bounds on completing a schedule prefix, shared by the
// branch-and-bound searches (internal/astar) and the exact solver's
// make-span window (internal/exact). Both operate in the tree's cost domain
// — bubbles plus extra execution — which relates to the make-span by the
// identity cost = make-span − SufBest[0]; a caller that thinks in make-spans
// converts by adding SufBest[0].

// CostBound returns an admissible lower bound on the total cost (bubbles plus
// extra execution, the tree objective) of ANY completion of a prefix with
// committed cursor cur, compile span t, and per-function next schedulable
// levels. It tightens the paper's f(v) with two scheduling facts:
//
//   - execution cannot finish before the effective frontier max(ExecT, t)
//     plus the §5.2 best-level bound over the remaining calls (SufBest — the
//     core.LowerBoundAtLevels sum restricted to the suffix): every remaining
//     call starts at or after the frontier and runs for at least its best
//     execution time;
//   - compile slack for uncovered functions: the first call of a function
//     with no compiled version cannot start before t plus that function's
//     cheapest compile time; and since the single compile worker builds the
//     uncovered functions' versions sequentially, some uncovered function's
//     first call waits until t plus the SUM of their cheapest compile times,
//     after which at least its own suffix of best-level execution remains.
//
// Subtracting ExecT and the full suffix bound converts the make-span bound
// back to cost (the committed part of the identity above is
// cur.Bubbles+cur.Extra = ExecT − Σ committed best times).
//
// next[f] is the next schedulable level of f — 0 exactly when f has no
// compiled version. Functions outside the trace are never inspected.
func (s *Tables) CostBound(cur Cursor, t int64, next []profile.Level) int64 {
	e := cur.ExecT
	if t > e {
		e = t
	}
	flb := e + s.SufBest[cur.I]
	var cminSum, minTail int64
	k := -1
	minTail = -1
	for _, f := range s.Order {
		if next[f] != 0 {
			continue
		}
		// Uncovered functions' first calls are at or beyond cur.I: an
		// evaluated call always had a version.
		fc := s.FirstCall[f]
		cminSum += s.CminC[f]
		if k < 0 || fc < k {
			k = fc
		}
		if tail := s.SufBest[fc]; minTail < 0 || tail < minTail {
			minTail = tail
		}
	}
	if k >= 0 {
		if b := t + s.CminC[s.Tr.Calls[k]] + s.SufBest[k]; b > flb {
			flb = b
		}
		if c := t + cminSum + minTail; c > flb {
			flb = c
		}
	}
	return cur.Bubbles + cur.Extra + flb - cur.ExecT - s.SufBest[cur.I]
}

// CostBoundTight strengthens CostBound's compile-slack term into a full
// prefix chain over the uncovered functions. Let f_1, f_2, … be the uncovered
// functions in first-call order (Order is first-call order, so the uncovered
// subsequence is already sorted by FirstCall, and SufBest at those indexes is
// non-increasing). The call at FirstCall[f_j] cannot execute until every
// earlier call has executed, and those earlier calls need versions of
// f_1 … f_{j−1}; the call itself needs a version of f_j. The single compile
// worker therefore spends at least Σ_{i≤j} CminC[f_i] past the span t before
// that call can start, after which at least SufBest[FirstCall[f_j]] of
// execution remains:
//
//	make-span ≥ t + Σ_{i≤j} CminC[f_i] + SufBest[FirstCall[f_j]]   for every j.
//
// CostBound keeps only the two endpoints of this chain — j = 1 (the
// first-uncovered term, since the minimal first call belongs to f_1) and
// j = last (cminSum + minTail, since the minimal tail belongs to the last
// uncovered function) — so the maximum over all j dominates CostBound's
// compile-slack terms and the bound is never weaker. It is never used by the
// legacy searches' default paths: their goldens pin node counts under
// CostBound, and TestTightBoundDominates + the opt-in BnB TightBound runs pin
// that both bounds prove the same optimum.
func (s *Tables) CostBoundTight(cur Cursor, t int64, next []profile.Level) int64 {
	e := cur.ExecT
	if t > e {
		e = t
	}
	flb := e + s.SufBest[cur.I]
	chain := t
	for _, f := range s.Order {
		if next[f] != 0 {
			continue
		}
		chain += s.CminC[f]
		if b := chain + s.SufBest[s.FirstCall[f]]; b > flb {
			flb = b
		}
	}
	return cur.Bubbles + cur.Extra + flb - cur.ExecT - s.SufBest[cur.I]
}
