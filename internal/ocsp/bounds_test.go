package ocsp_test

import (
	"math/rand"
	"testing"

	"repro/internal/astar"
	"repro/internal/ocsp"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

func boundsInstance(nfuncs, ncalls int, seed int64) (*trace.Trace, *profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	p := &profile.Profile{Levels: 2, Funcs: make([]profile.FuncTimes, nfuncs)}
	for i := range p.Funcs {
		cl := int64(1 + rng.Intn(4))
		ch := cl + int64(rng.Intn(8))
		eh := int64(1 + rng.Intn(4))
		el := eh + int64(rng.Intn(8))
		p.Funcs[i] = profile.FuncTimes{
			Compile: []int64{cl, ch}, Exec: []int64{el, eh}, Size: 1,
		}
	}
	calls := make([]trace.FuncID, ncalls)
	for i := range calls {
		calls[i] = trace.FuncID(rng.Intn(nfuncs))
	}
	return trace.New("bounds", calls), p
}

// TestTightBoundDominates holds CostBoundTight to its contract against
// CostBound: at every node of a random walk down the Fig. 4 tree the
// prefix-chain bound is at least the two-endpoint bound, and both stay
// admissible — never above the cost of an explicit completion of the node's
// prefix, and never above the instance's certified optimum at the root.
func TestTightBoundDominates(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		nfuncs := 2 + int(seed%4)
		ncalls := 8 + int(seed%3)*6
		tr, p := boundsInstance(nfuncs, ncalls, seed)
		tab, err := ocsp.NewTables(tr, p)
		if err != nil {
			t.Fatalf("seed %d: NewTables: %v", seed, err)
		}
		opt, err := astar.BnBSearch(tr, p, astar.BnBOptions{})
		if err != nil {
			t.Fatalf("seed %d: BnBSearch: %v", seed, err)
		}
		if !opt.Complete {
			t.Fatalf("seed %d: BnB did not certify the optimum", seed)
		}

		pe := tab.NewEval()
		next := make([]profile.Level, p.NumFuncs())
		var prefix, completion sim.Schedule
		var cur ocsp.Cursor
		rng := rand.New(rand.NewSource(seed + 1000))
		for step := 0; ; step++ {
			pe.Load(prefix)
			span := pe.Span()
			base := tab.CostBound(cur, span, next)
			tight := tab.CostBoundTight(cur, span, next)
			if tight < base {
				t.Fatalf("seed %d step %d: CostBoundTight %d < CostBound %d",
					seed, step, tight, base)
			}
			if step == 0 && tight > opt.Cost {
				t.Fatalf("seed %d: root CostBoundTight %d exceeds the optimum cost %d",
					seed, tight, opt.Cost)
			}
			// Admissibility against a concrete completion: cover every
			// version-less function at its cheapest-to-compile level and
			// evaluate the resulting complete prefix from scratch.
			completion = append(completion[:0], prefix...)
			for _, f := range tab.Order {
				if next[f] != 0 {
					continue
				}
				cheapest := profile.Level(0)
				for l := 1; l < p.Levels; l++ {
					if p.CompileTime(f, profile.Level(l)) < p.CompileTime(f, cheapest) {
						cheapest = profile.Level(l)
					}
				}
				completion = append(completion, sim.CompileEvent{Func: f, Level: cheapest})
			}
			pe.Load(completion)
			g, _ := pe.Finish(ocsp.Cursor{})
			if tight > g {
				t.Fatalf("seed %d step %d: CostBoundTight %d exceeds completion cost %d (inadmissible)",
					seed, step, tight, g)
			}

			// Walk one random legal edge (strictly increasing levels per
			// function, the tree's child rule).
			type edge struct {
				f trace.FuncID
				l profile.Level
			}
			var edges []edge
			for _, f := range tab.Order {
				for l := next[f]; int(l) < p.Levels; l++ {
					edges = append(edges, edge{f, l})
				}
			}
			if len(edges) == 0 || step >= 2*nfuncs {
				break
			}
			e := edges[rng.Intn(len(edges))]
			pe.Load(prefix)
			ev := sim.CompileEvent{Func: e.f, Level: e.l}
			cur, _ = pe.Advance(cur, ev)
			prefix = append(prefix, ev)
			next[e.f] = e.l + 1
		}
	}
}
