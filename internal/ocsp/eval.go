package ocsp

import (
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Incremental prefix evaluation.
//
// Re-simulating the whole trace for every node costs O(N + depth) per child.
// But the Fig. 4 tree only ever grows a prefix by one tail event, and the
// paper's f(v) = b(v) + e(v) objective only charges calls starting inside the
// prefix's compile span — so a child's cost is its parent's cost plus
// whatever the one new event pulls into the window. The cursor below carries
// the committed evaluation state (next unevaluated call, exec clock, bubbles,
// extra) from parent to child; expanding a node loads the parent's version
// lists once and then scores each child by resuming the execution loop over
// only the newly-in-window calls, with the child's new version as a
// non-mutating overlay.
//
// Why resumption is sound: a committed call started strictly inside the
// parent's span, every later event finishes at or after that span (compile
// times are positive), and a call's start never precedes its function's
// first-ready time — so no extension of the prefix can change a committed
// call's start, level, or end. The two stop conditions mirror the from-scratch
// evaluation exactly: a call whose function has no version yet contributes
// the provisional bubble up to the span (uncommitted, recomputed at each
// node); a call starting at or past the span belongs to descendants.
// TestCursorMatchesCost (internal/astar) pins g and make-span bit-identical
// to the reference evaluation across randomized prefixes.

// Cursor is the committed incremental-evaluation state of a prefix.
type Cursor struct {
	I       int   // index of the first unevaluated call
	ExecT   int64 // exec clock after the last committed call
	Bubbles int64 // committed bubble time
	Extra   int64 // committed extra (non-best-level) execution time
}

// Eval is the reusable per-goroutine scratch: the loaded prefix's
// per-function version lists (done times are single-worker prefix sums, so
// each list is sorted ascending) plus the prefix's compile span.
type Eval struct {
	t       *Tables
	vdone   [][]int64
	vlevel  [][]profile.Level
	touched []trace.FuncID
	span    int64
}

// NewEval allocates evaluation scratch for the instance.
func (t *Tables) NewEval() *Eval {
	return &Eval{
		t:      t,
		vdone:  make([][]int64, t.P.NumFuncs()),
		vlevel: make([][]profile.Level, t.P.NumFuncs()),
	}
}

// Span returns the loaded prefix's compile span.
func (pe *Eval) Span() int64 { return pe.span }

// Load rebuilds the version lists for a prefix, truncating only the lists
// the previous Load touched.
func (pe *Eval) Load(prefix sim.Schedule) {
	for _, f := range pe.touched {
		pe.vdone[f] = pe.vdone[f][:0]
		pe.vlevel[f] = pe.vlevel[f][:0]
	}
	pe.touched = pe.touched[:0]
	t := pe.t
	var span int64
	for _, ev := range prefix {
		span += t.Compile[int(ev.Func)*t.Levels+int(ev.Level)]
		if len(pe.vdone[ev.Func]) == 0 {
			pe.touched = append(pe.touched, ev.Func)
		}
		pe.vdone[ev.Func] = append(pe.vdone[ev.Func], span)
		pe.vlevel[ev.Func] = append(pe.vlevel[ev.Func], ev.Level)
	}
	pe.span = span
}

// Advance scores the loaded prefix extended by ev: it resumes the execution
// loop from cur, committing every call that now starts inside the extended
// window, and returns the child's cursor plus its g. The new event's version
// (finishing exactly at the child's span, strictly after every loaded done
// time) is applied as an overlay; the scratch is not mutated, so one Load
// serves all children of a node.
func (pe *Eval) Advance(cur Cursor, ev sim.CompileEvent) (Cursor, int64) {
	t := pe.t
	span := pe.span + t.Compile[int(ev.Func)*t.Levels+int(ev.Level)]
	ovF := ev.Func
	calls := t.Tr.Calls
	for cur.I < len(calls) {
		f := calls[cur.I]
		dones := pe.vdone[f]
		first := span // the overlay's finish time, when it is f's only version
		if len(dones) > 0 {
			first = dones[0]
		} else if f != ovF {
			// Blocked on a future compilation: everything up to the span is
			// a known bubble, provisional because the span keeps moving.
			g := cur.Bubbles + cur.Extra
			if span > cur.ExecT {
				g += span - cur.ExecT
			}
			return cur, g
		}
		start := cur.ExecT
		if first > start {
			start = first
		}
		if start >= span {
			// The call starts outside the window; its cost belongs to
			// descendants.
			return cur, cur.Bubbles + cur.Extra
		}
		// Committed calls start strictly inside the window, and the overlay
		// version finishes exactly at its edge — so the level choice only
		// ever sees the loaded versions. (A call whose sole version is the
		// overlay took the window exit above.)
		lvls := pe.vlevel[f]
		level := lvls[0]
		for k := 1; k < len(dones); k++ {
			if dones[k] <= start {
				level = lvls[k]
			}
		}
		dur := t.Exec[int(f)*t.Levels+int(level)]
		cur.Bubbles += start - cur.ExecT
		cur.Extra += dur - t.BestE[f]
		cur.ExecT = start + dur
		cur.I++
	}
	return cur, cur.Bubbles + cur.Extra
}

// Finish evaluates every remaining call of the loaded prefix with no window,
// the exact total cost of a complete prefix: it returns the cost and the
// make-span.
func (pe *Eval) Finish(cur Cursor) (g, makeSpan int64) {
	t := pe.t
	calls := t.Tr.Calls
	for cur.I < len(calls) {
		f := calls[cur.I]
		dones := pe.vdone[f]
		if len(dones) == 0 {
			// Unreachable for a complete prefix; mirrors the blocked branch
			// of Advance for defense in depth.
			if pe.span > cur.ExecT {
				cur.Bubbles += pe.span - cur.ExecT
			}
			return cur.Bubbles + cur.Extra, 0
		}
		start := cur.ExecT
		if dones[0] > start {
			start = dones[0]
		}
		lvls := pe.vlevel[f]
		level := lvls[0]
		for k := 1; k < len(dones); k++ {
			if dones[k] <= start {
				level = lvls[k]
			}
		}
		dur := t.Exec[int(f)*t.Levels+int(level)]
		cur.Bubbles += start - cur.ExecT
		cur.Extra += dur - t.BestE[f]
		cur.ExecT = start + dur
		cur.I++
	}
	return cur.Bubbles + cur.Extra, cur.ExecT
}
