// Package predict implements cross-run call-sequence prediction — the first
// barrier §8 of the paper identifies between the IAR algorithm and a
// deployable runtime: "getting or estimating the call sequence of a
// production run ... could be tackled through some recently developed
// techniques, such as cross-run learning and prediction".
//
// A Repository accumulates the call traces of past runs of a program (the
// cross-run profile repository of Arnold et al., cited by the paper) and
// predicts the next run's call sequence from three per-function statistics:
// how often the function is called, where in the run it first appears, and
// over which window of the run its calls spread. The predicted sequence is
// exactly what IAR consumes: a first-appearance order plus per-function call
// volumes with a rough temporal layout.
package predict

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Repository accumulates traces of past runs.
type Repository struct {
	runs []*trace.Trace
}

// NewRepository returns an empty repository.
func NewRepository() *Repository { return &Repository{} }

// Add records one past run. The trace is retained by reference; callers
// must not mutate it afterwards.
func (r *Repository) Add(t *trace.Trace) { r.runs = append(r.runs, t) }

// Runs returns the number of recorded runs.
func (r *Repository) Runs() int { return len(r.runs) }

// funcStats aggregates one function's behaviour across runs.
type funcStats struct {
	f          trace.FuncID
	totalCalls int64
	appearRuns int
	// firstFrac/lastFrac sum the fractional positions of the function's
	// first and last calls across the runs it appears in.
	firstFrac, lastFrac float64
}

// Predict estimates the call sequence of the next run. It returns an error
// if the repository is empty or holds only empty traces.
//
// The prediction places, for every function whose cross-run average call
// count rounds to at least one, that many calls spread uniformly over the
// function's average activity window, and merges all functions' calls by
// position. First appearances therefore land in the averaged
// first-appearance order, and hotness matches the averaged counts — the two
// properties IAR's quality depends on.
func (r *Repository) Predict() (*trace.Trace, error) {
	if len(r.runs) == 0 {
		return nil, fmt.Errorf("predict: repository has no runs")
	}
	var lenSum int64
	nfuncs := 0
	for _, t := range r.runs {
		lenSum += int64(t.Len())
		if n := t.NumFuncs(); n > nfuncs {
			nfuncs = n
		}
	}
	predLen := int(lenSum / int64(len(r.runs)))
	if predLen == 0 || nfuncs == 0 {
		return nil, fmt.Errorf("predict: recorded runs are empty")
	}

	stats := make([]funcStats, nfuncs)
	for i := range stats {
		stats[i].f = trace.FuncID(i)
	}
	for _, t := range r.runs {
		if t.Len() == 0 {
			continue
		}
		length := float64(t.Len())
		last := make([]int, nfuncs)
		for i := range last {
			last[i] = -1
		}
		first := make([]int, nfuncs)
		for i := range first {
			first[i] = -1
		}
		for i, f := range t.Calls {
			stats[f].totalCalls++
			if first[f] < 0 {
				first[f] = i
			}
			last[f] = i
		}
		for f := 0; f < nfuncs; f++ {
			if first[f] >= 0 {
				stats[f].appearRuns++
				stats[f].firstFrac += float64(first[f]) / length
				stats[f].lastFrac += float64(last[f]) / length
			}
		}
	}

	// One predicted event: function f expected at fractional position pos.
	type event struct {
		pos float64
		f   trace.FuncID
	}
	var events []event
	for _, s := range stats {
		if s.appearRuns == 0 {
			continue
		}
		// Average count over ALL runs: a function seen in 1 of 5 runs with
		// 2 calls predicts 0 calls — absence is evidence.
		n := (s.totalCalls + int64(len(r.runs))/2) / int64(len(r.runs))
		if n <= 0 {
			continue
		}
		first := s.firstFrac / float64(s.appearRuns)
		last := s.lastFrac / float64(s.appearRuns)
		if last < first {
			last = first
		}
		events = append(events, event{pos: first, f: s.f})
		if n > 1 {
			span := last - first
			for k := int64(1); k < n; k++ {
				events = append(events, event{pos: first + span*float64(k)/float64(n-1), f: s.f})
			}
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("predict: no function is predicted to be called")
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	calls := make([]trace.FuncID, len(events))
	for i, e := range events {
		calls[i] = e.f
	}
	name := r.runs[0].Name
	if name != "" {
		name += "-predicted"
	}
	return trace.New(name, calls), nil
}

// Accuracy quantifies how well a predicted trace matches an actual one, for
// evaluation and tests.
type Accuracy struct {
	// CountError is the mean relative error of per-function call counts,
	// weighted by the actual counts.
	CountError float64
	// FirstOrderAgreement is the fraction of function pairs whose
	// first-appearance order the prediction got right (1.0 = perfect),
	// sampled over the functions present in both traces.
	FirstOrderAgreement float64
	// Coverage is the fraction of the actual run's calls whose function the
	// prediction knew about at all.
	Coverage float64
}

// Evaluate compares a prediction against an actual run.
func Evaluate(predicted, actual *trace.Trace) Accuracy {
	var acc Accuracy
	if actual.Len() == 0 {
		return acc
	}
	n := actual.NumFuncs()
	if pn := predicted.NumFuncs(); pn > n {
		n = pn
	}
	actCounts := make([]int64, n)
	for _, f := range actual.Calls {
		actCounts[f]++
	}
	predCounts := make([]int64, n)
	for _, f := range predicted.Calls {
		predCounts[f]++
	}

	var weighted, total, covered float64
	for f := 0; f < n; f++ {
		if actCounts[f] == 0 {
			continue
		}
		a, p := float64(actCounts[f]), float64(predCounts[f])
		diff := a - p
		if diff < 0 {
			diff = -diff
		}
		weighted += diff
		total += a
		if predCounts[f] > 0 {
			covered += a
		}
	}
	if total > 0 {
		acc.CountError = weighted / total
		acc.Coverage = covered / total
	}

	// Pairwise first-appearance order agreement over a bounded sample of
	// function pairs (all pairs for small programs).
	actOrder := actual.FirstCalls()
	predOrder := predicted.FirstCalls()
	var both []trace.FuncID
	for f := 0; f < n; f++ {
		if f < len(actOrder) && f < len(predOrder) && actOrder[f] >= 0 && predOrder[f] >= 0 {
			both = append(both, trace.FuncID(f))
		}
	}
	agree, pairs := 0, 0
	step := 1
	if len(both) > 400 {
		step = len(both) / 400
	}
	for i := 0; i < len(both); i += step {
		for j := i + step; j < len(both); j += step {
			fi, fj := both[i], both[j]
			a := actOrder[fi] < actOrder[fj]
			p := predOrder[fi] < predOrder[fj]
			pairs++
			if a == p {
				agree++
			}
		}
	}
	if pairs > 0 {
		acc.FirstOrderAgreement = float64(agree) / float64(pairs)
	}
	return acc
}
