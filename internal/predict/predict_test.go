package predict

import (
	"testing"

	"repro/internal/testkit"
	"repro/internal/trace"
)

func TestEmptyRepository(t *testing.T) {
	r := NewRepository()
	if _, err := r.Predict(); err == nil {
		t.Error("want error for empty repository")
	}
	r.Add(trace.New("empty", nil))
	if _, err := r.Predict(); err == nil {
		t.Error("want error for empty traces")
	}
}

func TestPredictSingleRun(t *testing.T) {
	r := NewRepository()
	run := trace.New("r", []trace.FuncID{2, 0, 0, 1, 0})
	r.Add(run)
	pred, err := r.Predict()
	if err != nil {
		t.Fatal(err)
	}
	// A single-run prediction preserves counts exactly and first-appearance
	// order.
	wantCounts := []int64{3, 1, 1}
	counts := pred.Counts()
	for f, want := range wantCounts {
		if counts[f] != want {
			t.Errorf("func %d predicted %d calls, want %d", f, counts[f], want)
		}
	}
	order := pred.FirstCallOrder()
	wantOrder := []trace.FuncID{2, 0, 1}
	if len(order) != len(wantOrder) {
		t.Fatalf("first-call order %v, want %v", order, wantOrder)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Errorf("first-call order %v, want %v", order, wantOrder)
			break
		}
	}
}

func TestPredictAveragesCounts(t *testing.T) {
	r := NewRepository()
	// Function 0: 10 then 20 calls -> predict 15. Function 1: only in run 1
	// with 2 calls -> averages to 1.
	mk := func(n0, n1 int) *trace.Trace {
		var calls []trace.FuncID
		for i := 0; i < n0; i++ {
			calls = append(calls, 0)
		}
		for i := 0; i < n1; i++ {
			calls = append(calls, 1)
		}
		return trace.New("r", calls)
	}
	r.Add(mk(10, 2))
	r.Add(mk(20, 0))
	pred, err := r.Predict()
	if err != nil {
		t.Fatal(err)
	}
	counts := pred.Counts()
	if counts[0] != 15 {
		t.Errorf("func 0 predicted %d, want 15", counts[0])
	}
	if counts[1] != 1 {
		t.Errorf("func 1 predicted %d, want 1", counts[1])
	}
}

func TestPredictDropsRareFunctions(t *testing.T) {
	r := NewRepository()
	// Function 1 appears once across 4 runs: average rounds to 0.
	r.Add(trace.New("a", []trace.FuncID{0, 0, 1}))
	r.Add(trace.New("b", []trace.FuncID{0, 0}))
	r.Add(trace.New("c", []trace.FuncID{0, 0}))
	r.Add(trace.New("d", []trace.FuncID{0, 0}))
	pred, err := r.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pred.Calls {
		if f == 1 {
			t.Error("rare function predicted despite rounding to zero calls")
		}
	}
}

func TestPredictOnGeneratedRuns(t *testing.T) {
	// Several runs of the "same program" (same structure seed, different
	// draws) should predict an unseen run well.
	cfg := trace.GenConfig{
		Name: "prog", NumFuncs: 300, Length: 30000, Seed: 42,
		ZipfS: 1.5, Phases: 4, CoreFuncs: 40, CoreShare: 0.5, BurstMean: 3,
		WarmupFrac: 0.1, WarmupCoverage: 0.8,
	}
	actualCfg := cfg
	actual := testkit.Gen(actualCfg)

	r := NewRepository()
	for i := 1; i <= 4; i++ {
		c := cfg
		c.DrawSeed = int64(1000 + i)
		r.Add(testkit.Gen(c))
	}
	pred, err := r.Predict()
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(pred, actual)
	if acc.Coverage < 0.95 {
		t.Errorf("coverage %.2f, want >= 0.95 (same program, different inputs)", acc.Coverage)
	}
	if acc.FirstOrderAgreement < 0.85 {
		t.Errorf("first-appearance order agreement %.2f, want >= 0.85", acc.FirstOrderAgreement)
	}
	if acc.CountError > 0.5 {
		t.Errorf("count error %.2f, want <= 0.5", acc.CountError)
	}

	// An unrelated program predicts badly in comparison.
	other := cfg
	other.Seed = 4242
	unrelated := testkit.Gen(other)
	worse := Evaluate(pred, unrelated)
	if worse.FirstOrderAgreement >= acc.FirstOrderAgreement {
		t.Errorf("unrelated program predicted as well as the real one (%.2f vs %.2f)",
			worse.FirstOrderAgreement, acc.FirstOrderAgreement)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	acc := Evaluate(trace.New("p", nil), trace.New("a", nil))
	if acc.Coverage != 0 || acc.CountError != 0 {
		t.Errorf("empty traces: %+v", acc)
	}
	// Perfect prediction.
	tr := trace.New("x", []trace.FuncID{0, 1, 0, 2})
	perfect := Evaluate(tr, tr)
	if perfect.CountError != 0 || perfect.Coverage != 1 || perfect.FirstOrderAgreement != 1 {
		t.Errorf("self-evaluation should be perfect: %+v", perfect)
	}
}

func TestPredictedNameSuffix(t *testing.T) {
	r := NewRepository()
	r.Add(trace.New("myprog", []trace.FuncID{0}))
	pred, err := r.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Name != "myprog-predicted" {
		t.Errorf("predicted trace name %q", pred.Name)
	}
}
