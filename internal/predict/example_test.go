package predict_test

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/trace"
)

// ExampleRepository_Predict learns from two recorded runs and predicts the
// next run's call sequence.
func ExampleRepository_Predict() {
	repo := predict.NewRepository()
	repo.Add(trace.New("run", []trace.FuncID{0, 1, 1, 1, 2}))
	repo.Add(trace.New("run", []trace.FuncID{0, 1, 1, 1, 1, 1, 2}))
	pred, err := repo.Predict()
	if err != nil {
		panic(err)
	}
	fmt.Printf("len=%d counts=%v order=%v\n", pred.Len(), pred.Counts(), pred.FirstCallOrder())
	// Output:
	// len=6 counts=[1 4 1] order=[0 1 2]
}

// ExampleEvaluate scores a prediction against the run that actually
// happened.
func ExampleEvaluate() {
	predicted := trace.New("p", []trace.FuncID{0, 1, 1})
	actual := trace.New("a", []trace.FuncID{0, 1, 1, 1})
	acc := predict.Evaluate(predicted, actual)
	fmt.Printf("coverage=%.2f countErr=%.2f orderAgreement=%.2f\n",
		acc.Coverage, acc.CountError, acc.FirstOrderAgreement)
	// Output:
	// coverage=1.00 countErr=0.25 orderAgreement=1.00
}
