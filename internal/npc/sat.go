package npc

import (
	"fmt"

	"repro/internal/exact/satsolve"
	"repro/internal/sim"
)

// This file composes the classic textbook reductions 3-SAT → SUBSET-SUM →
// PARTITION with this package's PARTITION → OCSP construction, yielding an
// executable 3-SAT → OCSP pipeline: a formula is satisfiable iff the derived
// compilation-scheduling instance admits a schedule meeting its make-span
// bound.
//
// The paper proves OCSP *strongly* NP-complete via a direct 3-SAT reduction
// in a technical report that is not publicly available. The chain here
// passes through SUBSET-SUM, whose numbers grow exponentially with the
// formula size, so it establishes ordinary NP-hardness only — the strong
// version needs the tech report's polynomial-magnitude construction. The
// pipeline is still a faithful, checkable artifact of the reducibility
// claim, and it bounds usable formulas to roughly 17 digits (variables +
// clauses) in int64 arithmetic.

// Literal is a 3-SAT literal: a 1-based variable index, negative for a
// negated variable.
type Literal int

// Clause is a disjunction of up to three literals (fewer are allowed;
// duplicated literals are allowed, as in standard 3-SAT padding).
type Clause [3]Literal

// Formula is a 3-CNF formula over variables 1..Vars.
type Formula struct {
	Vars    int
	Clauses []Clause
}

// Validate checks literal ranges. A zero literal slot marks an absent
// literal (clauses may hold one to three literals; at least one required).
func (f *Formula) Validate() error {
	if f.Vars < 1 {
		return fmt.Errorf("npc: formula needs at least one variable, got %d", f.Vars)
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("npc: formula needs at least one clause")
	}
	for ci, c := range f.Clauses {
		nonzero := 0
		for _, l := range c {
			if l == 0 {
				continue
			}
			nonzero++
			v := int(l)
			if v < 0 {
				v = -v
			}
			if v > f.Vars {
				return fmt.Errorf("npc: clause %d references variable %d beyond %d", ci, v, f.Vars)
			}
		}
		if nonzero == 0 {
			return fmt.Errorf("npc: clause %d is empty", ci)
		}
	}
	return nil
}

// Eval reports whether the assignment (assign[i] is the value of variable
// i+1) satisfies the formula.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if l == 0 {
				continue
			}
			v := int(l)
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if assign[v-1] != neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// MaxBruteForceVars is the largest formula SolveSATBruteForce will
// enumerate: 2^24 assignments is the edge of "finishes in test time".
const MaxBruteForceVars = 24

// ErrTooManyVars reports a formula beyond SolveSATBruteForce's enumeration
// limit. It used to come back as a bare nil — indistinguishable from UNSAT,
// a silent wrong answer; TestBruteForceTooManyVars pins the typed error.
var ErrTooManyVars = fmt.Errorf("npc: formula exceeds %d variables, beyond brute-force enumeration (use SolveSAT)", MaxBruteForceVars)

// SolveSATBruteForce finds a satisfying assignment by enumerating all 2^Vars
// assignments, or returns (nil, nil) for an unsatisfiable formula. Formulas
// beyond MaxBruteForceVars get ErrTooManyVars instead of a 2^Vars hang.
// It is the differential reference for the CDCL solver behind SolveSAT.
func SolveSATBruteForce(f *Formula) ([]bool, error) {
	if f.Vars > MaxBruteForceVars {
		return nil, ErrTooManyVars
	}
	assign := make([]bool, f.Vars)
	for mask := 0; mask < 1<<f.Vars; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		if f.Eval(assign) {
			out := make([]bool, f.Vars)
			copy(out, assign)
			return out, nil
		}
	}
	return nil, nil
}

// SolveSAT finds a satisfying assignment with the CDCL solver
// (internal/exact/satsolve), or returns (nil, nil) for an unsatisfiable
// formula. No variable limit; the answer is verified against the formula
// before being returned. TestSolveSATMatchesBruteForce pins agreement with
// the enumeration reference across randomized formulas.
func SolveSAT(f *Formula) ([]bool, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	s := satsolve.New(f.Vars)
	for _, c := range f.Clauses {
		lits := make([]int, 0, 3)
		for _, l := range c {
			if l != 0 {
				lits = append(lits, int(l))
			}
		}
		if err := s.AddClause(lits...); err != nil {
			return nil, err
		}
	}
	res := s.Solve(satsolve.Options{})
	if res.Status != satsolve.Sat {
		return nil, nil
	}
	if !f.Eval(res.Assignment) {
		return nil, fmt.Errorf("npc: CDCL returned a non-satisfying assignment (solver bug)")
	}
	return res.Assignment, nil
}

// SubsetSumInstance is a SUBSET-SUM instance: does a subset of S sum to T?
type SubsetSumInstance struct {
	S []int64
	T int64
	// varElem[i][0] is the element index for variable i+1 being true,
	// varElem[i][1] for false; slackElem[j] are the two slack elements of
	// clause j. Kept so satisfying assignments map to subsets.
	varElem   [][2]int
	slackElem [][2]int
	formula   *Formula
}

// ReduceSATToSubsetSum runs the standard digit construction: one base-10
// digit per variable plus one per clause. The true/false element of each
// variable carries a 1 in its variable digit and a 1 in each clause digit
// where the corresponding literal appears; each clause gets slack elements
// worth 1 and 2. The target has a 1 in every variable digit and a 4 in
// every clause digit — reachable exactly when every clause has a true
// literal. Base 10 keeps digits carry-free (a clause digit sums to at most
// 3 literals + 3 slack = 6 < 10).
func ReduceSATToSubsetSum(f *Formula) (*SubsetSumInstance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	digits := f.Vars + len(f.Clauses)
	if digits > 17 {
		return nil, fmt.Errorf("npc: formula needs %d digits; int64 arithmetic allows 17", digits)
	}
	pow := make([]int64, digits)
	pow[0] = 1
	for i := 1; i < digits; i++ {
		pow[i] = pow[i-1] * 10
	}
	// Digit layout: variable i (1-based) is digit i-1; clause j is digit
	// Vars+j.
	inst := &SubsetSumInstance{
		formula:   f,
		varElem:   make([][2]int, f.Vars),
		slackElem: make([][2]int, len(f.Clauses)),
	}
	add := func(v int64) int {
		inst.S = append(inst.S, v)
		return len(inst.S) - 1
	}
	for i := 1; i <= f.Vars; i++ {
		tv := pow[i-1]
		fv := pow[i-1]
		for j, c := range f.Clauses {
			for _, l := range c {
				switch {
				case int(l) == i:
					tv += pow[f.Vars+j]
				case int(l) == -i:
					fv += pow[f.Vars+j]
				}
			}
		}
		inst.varElem[i-1] = [2]int{add(tv), add(fv)}
	}
	for j := range f.Clauses {
		inst.slackElem[j] = [2]int{add(pow[f.Vars+j]), add(2 * pow[f.Vars+j])}
	}
	inst.T = 0
	for i := 0; i < f.Vars; i++ {
		inst.T += pow[i]
	}
	for j := range f.Clauses {
		inst.T += 4 * pow[f.Vars+j]
	}
	return inst, nil
}

// SubsetForAssignment maps a satisfying assignment to a subset of S summing
// to T (the forward direction of the reduction). It errors if the
// assignment does not satisfy the formula.
func (inst *SubsetSumInstance) SubsetForAssignment(assign []bool) ([]bool, error) {
	f := inst.formula
	if len(assign) != f.Vars {
		return nil, fmt.Errorf("npc: assignment has %d values for %d variables", len(assign), f.Vars)
	}
	if !f.Eval(assign) {
		return nil, fmt.Errorf("npc: assignment does not satisfy the formula")
	}
	mask := make([]bool, len(inst.S))
	for i, val := range assign {
		if val {
			mask[inst.varElem[i][0]] = true
		} else {
			mask[inst.varElem[i][1]] = true
		}
	}
	for j, c := range f.Clauses {
		satisfied := 0
		for _, l := range c {
			if l == 0 {
				continue
			}
			v := int(l)
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if assign[v-1] != neg {
				satisfied++
			}
		}
		// Top the clause digit up from `satisfied` to 4 with slack 1 and/or
		// 2 (satisfied is 1..3 here).
		switch 4 - satisfied {
		case 1:
			mask[inst.slackElem[j][0]] = true
		case 2:
			mask[inst.slackElem[j][1]] = true
		case 3:
			mask[inst.slackElem[j][0]] = true
			mask[inst.slackElem[j][1]] = true
		}
	}
	return mask, nil
}

// ReduceSubsetSumToPartition is the textbook two-element padding: given
// (S, T) with total Σ and 0 <= T <= Σ, the set S ∪ {2Σ-T, Σ+T} has a
// partition iff some subset of S sums to T. (Both new elements exceed Σ
// together, so they land on opposite sides; the side holding Σ+T needs
// exactly T more from S.)
func ReduceSubsetSumToPartition(inst *SubsetSumInstance) ([]int64, error) {
	var sigma int64
	for _, v := range inst.S {
		if v < 0 {
			return nil, fmt.Errorf("npc: negative subset-sum element")
		}
		sigma += v
	}
	if inst.T < 0 || inst.T > sigma {
		return nil, fmt.Errorf("npc: target %d outside [0,%d]", inst.T, sigma)
	}
	out := append([]int64(nil), inst.S...)
	out = append(out, 2*sigma-inst.T, sigma+inst.T)
	return out, nil
}

// SATInstance bundles the full 3-SAT → OCSP chain.
type SATInstance struct {
	Formula   *Formula
	SubsetSum *SubsetSumInstance
	// Partition is SubsetSum.S plus the two padding elements (at the end).
	Partition []int64
	// OCSP is the scheduling instance; a schedule with make-span OCSP.Bound
	// exists iff the formula is satisfiable.
	OCSP *Instance
}

// ReduceSAT composes the chain.
func ReduceSAT(f *Formula) (*SATInstance, error) {
	ss, err := ReduceSATToSubsetSum(f)
	if err != nil {
		return nil, err
	}
	part, err := ReduceSubsetSumToPartition(ss)
	if err != nil {
		return nil, err
	}
	ocsp, err := Reduce(part)
	if err != nil {
		return nil, err
	}
	return &SATInstance{Formula: f, SubsetSum: ss, Partition: part, OCSP: ocsp}, nil
}

// ScheduleForAssignment maps a satisfying assignment through the whole
// chain to a compilation schedule achieving the OCSP bound: assignment →
// subset summing to T → balanced partition (the padding element 2Σ-T joins
// the subset's side: T + (2Σ-T) = 2Σ, half of the 4Σ total) → the canonical
// bound-achieving schedule.
func (si *SATInstance) ScheduleForAssignment(assign []bool) (sim.Schedule, error) {
	subset, err := si.SubsetSum.SubsetForAssignment(assign)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, len(si.Partition))
	copy(mask, subset)
	mask[len(si.Partition)-2] = true // 2Σ-T
	return si.OCSP.ScheduleForSubset(mask)
}
