package npc_test

import (
	"fmt"

	"repro/internal/npc"
)

// ExampleReduce runs the Theorem 2 reduction on a PARTITION instance and
// checks the bound with the canonical schedule of a balanced subset.
func ExampleReduce() {
	inst, err := npc.Reduce([]int64{5, 4, 3, 2}) // {4,3} | {5,2}
	if err != nil {
		panic(err)
	}
	sched, err := inst.ScheduleForSubset([]bool{false, true, true, false})
	if err != nil {
		panic(err)
	}
	span, err := inst.MakeSpan(sched)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bound=%d make-span=%d\n", inst.Bound, span)
	// Output:
	// bound=24 make-span=24
}

// ExampleReduceSAT walks the composed 3-SAT chain down to a scheduling
// instance.
func ExampleReduceSAT() {
	f := &npc.Formula{Vars: 2, Clauses: []npc.Clause{{1, 2, 0}, {-1, 2, 0}}}
	si, err := npc.ReduceSAT(f)
	if err != nil {
		panic(err)
	}
	assign, err := npc.SolveSATBruteForce(f)
	if err != nil {
		panic(err)
	}
	sched, err := si.ScheduleForAssignment(assign)
	if err != nil {
		panic(err)
	}
	span, err := si.OCSP.MakeSpan(sched)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assignment=%v meets-bound=%v\n", assign, span == si.OCSP.Bound)
	// Output:
	// assignment=[false true] meets-bound=true
}
