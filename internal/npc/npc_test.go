package npc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/astar"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestReduceValidation(t *testing.T) {
	if _, err := Reduce(nil); err == nil {
		t.Error("want error for empty instance")
	}
	if _, err := Reduce([]int64{1, 2}); err == nil {
		t.Error("want error for odd sum")
	}
	if _, err := Reduce([]int64{-1, 1}); err == nil {
		t.Error("want error for negative element")
	}
}

func TestReduceStructure(t *testing.T) {
	inst, err := Reduce([]int64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if inst.T != 4 {
		t.Errorf("T = %d, want 4", inst.T)
	}
	if inst.Bound != 2*(1+4+4) {
		t.Errorf("Bound = %d, want 18", inst.Bound)
	}
	if err := inst.Profile.Validate(); err != nil {
		t.Errorf("reduced profile invalid: %v", err)
	}
	if inst.Trace.Len() != 6 {
		t.Errorf("trace length = %d, want 6", inst.Trace.Len())
	}
}

// TestForwardDirection: a valid partition's schedule achieves the bound
// exactly, as in the proof of Theorem 2.
func TestForwardDirection(t *testing.T) {
	inst, err := Reduce([]int64{3, 1, 2, 2}) // X = {3,1} sums to 4
	if err != nil {
		t.Fatal(err)
	}
	sched, err := inst.ScheduleForSubset([]bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	span, err := inst.MakeSpan(sched)
	if err != nil {
		t.Fatal(err)
	}
	if span != inst.Bound {
		t.Errorf("make-span = %d, want bound %d", span, inst.Bound)
	}

	// A wrong subset must miss the bound.
	bad, err := inst.ScheduleForSubset([]bool{true, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	badSpan, err := inst.MakeSpan(bad)
	if err != nil {
		t.Fatal(err)
	}
	if badSpan <= inst.Bound {
		t.Errorf("unbalanced subset achieved %d <= bound %d", badSpan, inst.Bound)
	}
}

// TestBackwardDirection: a bound-achieving schedule yields a valid partition.
func TestBackwardDirection(t *testing.T) {
	inst, err := Reduce([]int64{5, 4, 3, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	witness := SolveBruteForce(inst.S)
	if witness == nil {
		t.Fatal("brute force found no partition for a partitionable instance")
	}
	sched, err := inst.ScheduleForSubset(witness)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := inst.SubsetFromSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, in := range mask {
		if in {
			sum += inst.S[i]
		}
	}
	if sum != inst.T {
		t.Errorf("extracted subset sums to %d, want %d", sum, inst.T)
	}
}

// TestBoundIsOptimal: for small instances, exhaustive search confirms that
// the bound is the minimum make-span exactly when a partition exists.
func TestBoundIsOptimal(t *testing.T) {
	cases := []struct {
		s          []int64
		partitions bool
	}{
		{[]int64{1, 1}, true},
		{[]int64{2, 1, 1}, true},
		{[]int64{3, 1}, false},
		{[]int64{5, 1, 2}, true}, // sum 8, target 4: {3}? no — {5} no, {1,2}=3 no -> no partition
		{[]int64{2, 2}, true},
	}
	// Fix case 3: {5,1,2} sums to 8, target 4, subsets: 5,1,2,6,7,3,8 -> no 4.
	cases[3].partitions = false

	for ci, c := range cases {
		inst, err := Reduce(c.s)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		res, err := astar.Exhaustive(inst.Trace, inst.Profile, astar.Options{MaxNodes: 5_000_000})
		if err != nil {
			t.Fatalf("case %d: exhaustive: %v", ci, err)
		}
		bf := SolveBruteForce(c.s)
		if (bf != nil) != c.partitions {
			t.Fatalf("case %d: brute force disagrees with expectation", ci)
		}
		if c.partitions {
			if res.MakeSpan != inst.Bound {
				t.Errorf("case %d: optimal %d != bound %d despite partition existing", ci, res.MakeSpan, inst.Bound)
			}
		} else if res.MakeSpan <= inst.Bound {
			t.Errorf("case %d: optimal %d <= bound %d despite no partition", ci, res.MakeSpan, inst.Bound)
		}
	}
}

// TestEquivalenceQuick fuzzes the iff: schedule-achieves-bound ⇔ partition
// exists, using the canonical subset schedules over random small instances.
func TestEquivalenceQuick(t *testing.T) {
	f := func(raw []uint8, fix uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		s := make([]int64, len(raw))
		var sum int64
		for i, b := range raw {
			s[i] = int64(b % 16)
			sum += s[i]
		}
		if sum%2 != 0 {
			return true
		}
		inst, err := Reduce(s)
		if err != nil {
			return false
		}
		witness := SolveBruteForce(s)
		if witness == nil {
			// No partition: every subset schedule must miss the bound.
			rng := rand.New(rand.NewSource(int64(fix)))
			for trial := 0; trial < 16; trial++ {
				mask := make([]bool, len(s))
				for i := range mask {
					mask[i] = rng.Intn(2) == 0
				}
				sched, err := inst.ScheduleForSubset(mask)
				if err != nil {
					return false
				}
				span, err := inst.MakeSpan(sched)
				if err != nil {
					return false
				}
				if span == inst.Bound {
					return false
				}
			}
			return true
		}
		sched, err := inst.ScheduleForSubset(witness)
		if err != nil {
			return false
		}
		span, err := inst.MakeSpan(sched)
		return err == nil && span == inst.Bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSubsetFromScheduleRejects(t *testing.T) {
	inst, err := Reduce([]int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// All-level-1 schedule can't hit the bound.
	sched := sim.Schedule{
		{Func: 0, Level: 0},
		{Func: 1, Level: 1},
		{Func: 2, Level: 1},
		{Func: trace.FuncID(3), Level: 0},
	}
	if _, err := inst.SubsetFromSchedule(sched); err == nil {
		t.Error("want error for non-bound schedule")
	}
	if _, err := inst.ScheduleForSubset([]bool{true}); err == nil {
		t.Error("want error for wrong mask length")
	}
}
