package npc

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBruteForceTooManyVars(t *testing.T) {
	f := &Formula{Vars: MaxBruteForceVars + 1, Clauses: []Clause{{1, 2, 3}}}
	assign, err := SolveSATBruteForce(f)
	if !errors.Is(err, ErrTooManyVars) {
		t.Fatalf("got err=%v, want ErrTooManyVars", err)
	}
	if assign != nil {
		t.Fatalf("got a %d-value assignment alongside the error", len(assign))
	}
	// At the limit itself enumeration must still be attempted (a trivially
	// satisfiable formula keeps it instant).
	f = &Formula{Vars: MaxBruteForceVars, Clauses: []Clause{{1, 0, 0}}}
	assign, err = SolveSATBruteForce(f)
	if err != nil || assign == nil {
		t.Fatalf("formula at the %d-var limit: assign=%v err=%v", MaxBruteForceVars, assign, err)
	}
}

// TestSolveSATMatchesBruteForce differentially tests the CDCL-backed solver
// against exhaustive enumeration on random 3-CNF formulas around the phase
// transition.
func TestSolveSATMatchesBruteForce(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vars := 3 + rng.Intn(10) // 3..12
		clauses := 1 + rng.Intn(5*vars)
		f := randomFormula(rng, vars, clauses)
		ref, err := SolveSATBruteForce(f)
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		got, err := SolveSAT(f)
		if err != nil {
			t.Fatalf("seed %d: SolveSAT: %v", seed, err)
		}
		if (ref != nil) != (got != nil) {
			t.Fatalf("seed %d (%d vars, %d clauses): brute force sat=%v, CDCL sat=%v",
				seed, vars, clauses, ref != nil, got != nil)
		}
		if got != nil && !f.Eval(got) {
			t.Fatalf("seed %d: CDCL assignment does not satisfy the formula", seed)
		}
	}
}

// decodeFormula turns fuzz bytes into a small well-formed 3-CNF formula, or
// nil when the input is too short.
func decodeFormula(data []byte) *Formula {
	if len(data) < 4 {
		return nil
	}
	vars := 1 + int(data[0]%10) // 1..10 vars keeps brute force instant
	f := &Formula{Vars: vars}
	for i := 1; i+2 < len(data) && len(f.Clauses) < 40; i += 3 {
		var c Clause
		for k := 0; k < 3; k++ {
			b := data[i+k]
			v := 1 + int(b>>1)%vars
			if b&1 == 1 {
				v = -v
			}
			c[k] = Literal(v)
		}
		f.Clauses = append(f.Clauses, c)
	}
	if len(f.Clauses) == 0 {
		return nil
	}
	return f
}

func FuzzCNFSolve(f *testing.F) {
	f.Add([]byte{3, 0, 2, 4})
	f.Add([]byte{1, 0, 0, 0, 1, 1, 1})                // x ∧ ¬x
	f.Add([]byte{5, 2, 5, 9, 1, 6, 3, 8, 7, 0})       // mixed signs
	f.Add([]byte{9, 10, 21, 30, 11, 20, 31, 1, 2, 3}) // wider vars
	f.Fuzz(func(t *testing.T, data []byte) {
		frm := decodeFormula(data)
		if frm == nil {
			return
		}
		ref, err := SolveSATBruteForce(frm)
		if err != nil {
			t.Fatalf("brute force on %d vars: %v", frm.Vars, err)
		}
		got, err := SolveSAT(frm)
		if err != nil {
			t.Fatalf("SolveSAT: %v", err)
		}
		if (ref != nil) != (got != nil) {
			t.Fatalf("CDCL sat=%v, brute force sat=%v on %+v", got != nil, ref != nil, frm)
		}
		if got != nil && !frm.Eval(got) {
			t.Fatal("CDCL returned a non-satisfying assignment")
		}
	})
}
