package npc

import (
	"math/rand"
	"testing"
)

// sampleFormulas: a satisfiable and an unsatisfiable 3-CNF.
func satisfiableFormula() *Formula {
	// (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x3) ∧ (¬x2 ∨ ¬x3 ∨ x1)
	return &Formula{Vars: 3, Clauses: []Clause{
		{1, 2, -3},
		{-1, 3, 3},
		{-2, -3, 1},
	}}
}

func unsatisfiableFormula() *Formula {
	// All eight sign patterns over three variables: no assignment satisfies
	// all of them.
	var cs []Clause
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				lit := func(v int, neg int) Literal {
					if neg == 1 {
						return Literal(-v)
					}
					return Literal(v)
				}
				cs = append(cs, Clause{lit(1, a), lit(2, b), lit(3, c)})
			}
		}
	}
	return &Formula{Vars: 3, Clauses: cs}
}

func TestFormulaValidate(t *testing.T) {
	if err := satisfiableFormula().Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	bad := &Formula{Vars: 2, Clauses: []Clause{{3, 0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("want error for out-of-range variable")
	}
	if err := (&Formula{Vars: 1, Clauses: []Clause{{}}}).Validate(); err == nil {
		t.Error("want error for empty clause")
	}
	if err := (&Formula{Vars: 0}).Validate(); err == nil {
		t.Error("want error for no variables")
	}
	if err := (&Formula{Vars: 1}).Validate(); err == nil {
		t.Error("want error for no clauses")
	}
}

// mustBrute runs the brute-force reference, failing the test on the
// too-many-vars guard (the formulas here are all tiny).
func mustBrute(t *testing.T, f *Formula) []bool {
	t.Helper()
	assign, err := SolveSATBruteForce(f)
	if err != nil {
		t.Fatalf("SolveSATBruteForce: %v", err)
	}
	return assign
}

func TestSolveSATBruteForce(t *testing.T) {
	if mustBrute(t, satisfiableFormula()) == nil {
		t.Error("satisfiable formula declared unsat")
	}
	if mustBrute(t, unsatisfiableFormula()) != nil {
		t.Error("unsatisfiable formula declared sat")
	}
}

func TestSubsetSumDigits(t *testing.T) {
	f := satisfiableFormula()
	ss, err := ReduceSATToSubsetSum(f)
	if err != nil {
		t.Fatal(err)
	}
	// 2 elements per variable + 2 per clause.
	if len(ss.S) != 2*f.Vars+2*len(f.Clauses) {
		t.Fatalf("got %d elements", len(ss.S))
	}
	// Forward direction: a satisfying assignment's subset sums to T.
	assign := mustBrute(t, f)
	mask, err := ss.SubsetForAssignment(assign)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, in := range mask {
		if in {
			sum += ss.S[i]
		}
	}
	if sum != ss.T {
		t.Errorf("subset sums to %d, want %d", sum, ss.T)
	}
	// A non-satisfying assignment is rejected: x1=F, x2=F, x3=T falsifies
	// the first clause (F ∨ F ∨ ¬T).
	bad := []bool{false, false, true}
	if f.Eval(bad) {
		t.Fatal("assignment unexpectedly satisfies the formula")
	}
	if _, err := ss.SubsetForAssignment(bad); err == nil {
		t.Error("want error for non-satisfying assignment")
	}
}

// TestSubsetSumEquivalence: brute-forced SUBSET-SUM solvability matches
// brute-forced satisfiability on random small formulas.
func TestSubsetSumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		f := randomFormula(rng, 3, 3)
		ss, err := ReduceSATToSubsetSum(f)
		if err != nil {
			t.Fatal(err)
		}
		satisfiable := mustBrute(t, f) != nil
		subsetExists := subsetSumBruteForce(ss.S, ss.T)
		if satisfiable != subsetExists {
			t.Errorf("trial %d: satisfiable=%v but subset-sum solvable=%v\nformula=%+v",
				trial, satisfiable, subsetExists, f)
		}
	}
}

func randomFormula(rng *rand.Rand, vars, clauses int) *Formula {
	f := &Formula{Vars: vars}
	for j := 0; j < clauses; j++ {
		var c Clause
		for k := 0; k < 3; k++ {
			v := 1 + rng.Intn(vars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[k] = Literal(v)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func subsetSumBruteForce(s []int64, target int64) bool {
	for mask := 0; mask < 1<<len(s); mask++ {
		var sum int64
		for i, v := range s {
			if mask&(1<<i) != 0 {
				sum += v
			}
		}
		if sum == target {
			return true
		}
	}
	return false
}

func TestReduceSubsetSumToPartition(t *testing.T) {
	ss := &SubsetSumInstance{S: []int64{3, 5, 2}, T: 5}
	part, err := ReduceSubsetSumToPartition(ss)
	if err != nil {
		t.Fatal(err)
	}
	// Σ=10: padding elements 15 and 15; total 40, half 20: {5, 15} works.
	if len(part) != 5 {
		t.Fatalf("got %d elements", len(part))
	}
	if SolveBruteForce(part) == nil {
		t.Error("solvable instance has no partition")
	}
	// Unsolvable: S={2,4}, T=3.
	ss2 := &SubsetSumInstance{S: []int64{2, 4}, T: 3}
	part2, err := ReduceSubsetSumToPartition(ss2)
	if err != nil {
		t.Fatal(err)
	}
	if SolveBruteForce(part2) != nil {
		t.Error("unsolvable instance got a partition")
	}
	// Bad target.
	if _, err := ReduceSubsetSumToPartition(&SubsetSumInstance{S: []int64{1}, T: 5}); err == nil {
		t.Error("want error for target beyond total")
	}
}

// TestSATChainForward: a satisfiable formula's assignment walks the whole
// chain down to a schedule achieving the OCSP bound.
func TestSATChainForward(t *testing.T) {
	f := satisfiableFormula()
	si, err := ReduceSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	assign := mustBrute(t, f)
	sched, err := si.ScheduleForAssignment(assign)
	if err != nil {
		t.Fatal(err)
	}
	span, err := si.OCSP.MakeSpan(sched)
	if err != nil {
		t.Fatal(err)
	}
	if span != si.OCSP.Bound {
		t.Errorf("make-span %d, want bound %d", span, si.OCSP.Bound)
	}
	// And the partition can be read back out of the schedule.
	if _, err := si.OCSP.SubsetFromSchedule(sched); err != nil {
		t.Errorf("backward extraction failed: %v", err)
	}
}

// TestSATChainUnsat: for an unsatisfiable formula, no subset schedule meets
// the bound (checked by brute force over the partition instance).
func TestSATChainUnsat(t *testing.T) {
	// Use 2 variables to keep the brute-force space small: all four sign
	// patterns over 2 variables.
	f := &Formula{Vars: 2, Clauses: []Clause{
		{1, 2, 2}, {1, -2, -2}, {-1, 2, 2}, {-1, -2, -2},
	}}
	if mustBrute(t, f) != nil {
		t.Fatal("formula unexpectedly satisfiable")
	}
	si, err := ReduceSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	if SolveBruteForce(si.Partition) != nil {
		t.Error("unsatisfiable formula yielded a partitionable instance")
	}
}

// TestSATChainEquivalenceRandom fuzzes the full chain on random formulas.
func TestSATChainEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		f := randomFormula(rng, 2, 3)
		si, err := ReduceSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		assign := mustBrute(t, f)
		partitionable := SolveBruteForce(si.Partition) != nil
		if (assign != nil) != partitionable {
			t.Errorf("trial %d: sat=%v partitionable=%v", trial, assign != nil, partitionable)
			continue
		}
		if assign != nil {
			sched, err := si.ScheduleForAssignment(assign)
			if err != nil {
				t.Fatal(err)
			}
			span, err := si.OCSP.MakeSpan(sched)
			if err != nil {
				t.Fatal(err)
			}
			if span != si.OCSP.Bound {
				t.Errorf("trial %d: make-span %d != bound %d", trial, span, si.OCSP.Bound)
			}
		}
	}
}

func TestReduceSATLimits(t *testing.T) {
	big := &Formula{Vars: 10, Clauses: make([]Clause, 10)}
	for i := range big.Clauses {
		big.Clauses[i] = Clause{1, 2, 3}
	}
	if _, err := ReduceSATToSubsetSum(big); err == nil {
		t.Error("want error for formulas beyond int64 digit capacity")
	}
}
