// Package npc implements the constructive half of the paper's
// NP-completeness result (§4.2): the polynomial reduction from PARTITION to
// OCSP, together with the forward and backward mappings the proof uses.
//
// Given non-negative integers S = {s1..sn} with t = (Σ si)/2, the reduction
// builds an OCSP instance with one function per element plus a prologue and
// an epilogue function, such that the instance admits a schedule with
// make-span exactly 2(1+t+n) if and only if S admits a partition into two
// halves of sum t. The machine model is the paper's: one execution core, one
// compilation core.
//
// The paper further strengthens the result to strong NP-completeness via a
// 3-SAT reduction in a technical report that is not publicly available; that
// construction is not reproduced here (see DESIGN.md).
package npc

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Instance is a PARTITION-derived OCSP instance.
type Instance struct {
	// S is the original PARTITION multiset.
	S []int64
	// T is half the sum of S (the partition target).
	T int64
	// Trace calls the prologue function, each element function once (in
	// index order), then the epilogue function.
	Trace *trace.Trace
	// Profile has two levels. Element function i (FuncID i+1) has
	// c = {1, s_i+1} and e = {s_i+1, 1}. FuncID 0 is the prologue
	// (c = {1,1}, e = {t+n, t+n}); FuncID n+1 is the epilogue
	// (c = {t+n, t+n}, e = {1, 1}).
	Profile *profile.Profile
	// Bound is the make-span achievable iff a partition exists: 2(1+t+n).
	Bound int64
}

// Reduce builds the OCSP instance for a PARTITION input. The element sum
// must be even (an odd sum is trivially unpartitionable, and the reduction's
// target t would not be integral).
func Reduce(s []int64) (*Instance, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("npc: PARTITION instance must have at least one element")
	}
	var sum int64
	for i, v := range s {
		if v < 0 {
			return nil, fmt.Errorf("npc: element %d is negative (%d)", i, v)
		}
		sum += v
	}
	if sum%2 != 0 {
		return nil, fmt.Errorf("npc: element sum %d is odd; no partition can exist", sum)
	}
	t := sum / 2
	n := int64(len(s))

	funcs := make([]profile.FuncTimes, 0, len(s)+2)
	funcs = append(funcs, profile.FuncTimes{ // prologue
		Name: "first", Size: 1,
		Compile: []int64{1, 1},
		Exec:    []int64{t + n, t + n},
	})
	for i, v := range s {
		funcs = append(funcs, profile.FuncTimes{
			Name: fmt.Sprintf("s%d", i), Size: 1,
			Compile: []int64{1, v + 1},
			Exec:    []int64{v + 1, 1},
		})
	}
	funcs = append(funcs, profile.FuncTimes{ // epilogue
		Name: "last", Size: 1,
		Compile: []int64{t + n, t + n},
		Exec:    []int64{1, 1},
	})

	calls := make([]trace.FuncID, 0, len(s)+2)
	for i := 0; i <= len(s)+1; i++ {
		calls = append(calls, trace.FuncID(i))
	}

	inst := &Instance{
		S:       append([]int64(nil), s...),
		T:       t,
		Trace:   trace.New("partition", calls),
		Profile: &profile.Profile{Levels: 2, Funcs: funcs},
		Bound:   2 * (1 + t + n),
	}
	return inst, nil
}

// ScheduleForSubset builds the schedule the proof's forward direction
// prescribes for a candidate subset X (inSubset[i] == true ⇔ s_i ∈ X):
// compile the prologue, then each element function — at level 0 if it is in
// X, at level 1 otherwise — in execution order, then the epilogue. If X sums
// to t, replaying this schedule yields make-span exactly Instance.Bound.
func (inst *Instance) ScheduleForSubset(inSubset []bool) (sim.Schedule, error) {
	if len(inSubset) != len(inst.S) {
		return nil, fmt.Errorf("npc: subset mask has %d entries for %d elements", len(inSubset), len(inst.S))
	}
	sched := make(sim.Schedule, 0, len(inst.S)+2)
	sched = append(sched, sim.CompileEvent{Func: 0, Level: 0})
	for i := range inst.S {
		level := profile.Level(1)
		if inSubset[i] {
			level = 0
		}
		sched = append(sched, sim.CompileEvent{Func: trace.FuncID(i + 1), Level: level})
	}
	sched = append(sched, sim.CompileEvent{Func: trace.FuncID(len(inst.S) + 1), Level: 0})
	return sched, nil
}

// MakeSpan replays a schedule on the instance's two-machine model.
func (inst *Instance) MakeSpan(sched sim.Schedule) (int64, error) {
	res, err := sim.Run(inst.Trace, inst.Profile, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		return 0, err
	}
	return res.MakeSpan, nil
}

// SubsetFromSchedule inverts the reduction (the proof's backward direction):
// given a schedule achieving the bound, the element functions compiled at
// level 0 form a subset of S summing to t. It returns the subset mask. The
// schedule need not be the canonical one, but each element function's
// effective level is taken from its last compilation event.
func (inst *Instance) SubsetFromSchedule(sched sim.Schedule) ([]bool, error) {
	span, err := inst.MakeSpan(sched)
	if err != nil {
		return nil, err
	}
	if span != inst.Bound {
		return nil, fmt.Errorf("npc: schedule has make-span %d, not the bound %d", span, inst.Bound)
	}
	levels := make(map[trace.FuncID]profile.Level)
	for _, ev := range sched {
		levels[ev.Func] = ev.Level
	}
	mask := make([]bool, len(inst.S))
	var sum int64
	for i := range inst.S {
		if levels[trace.FuncID(i+1)] == 0 {
			mask[i] = true
			sum += inst.S[i]
		}
	}
	if sum != inst.T {
		return nil, fmt.Errorf("npc: level-0 subset sums to %d, want %d (schedule meets the bound by other means?)", sum, inst.T)
	}
	return mask, nil
}

// SolveBruteForce enumerates subsets to decide the PARTITION instance
// directly (exponential; for cross-checking small instances). It returns a
// witness mask, or nil if no partition exists.
func SolveBruteForce(s []int64) []bool {
	var sum int64
	for _, v := range s {
		sum += v
	}
	if sum%2 != 0 || len(s) > 30 {
		return nil
	}
	t := sum / 2
	for mask := 0; mask < 1<<len(s); mask++ {
		var acc int64
		for i, v := range s {
			if mask&(1<<i) != 0 {
				acc += v
			}
		}
		if acc == t {
			out := make([]bool, len(s))
			for i := range s {
				out[i] = mask&(1<<i) != 0
			}
			return out
		}
	}
	return nil
}
