package runner

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsCountJobs wires a private sink into a Runner and checks that a
// batch with executed jobs, a cache hit, a duplicate, a failure and a panic
// lands each job in the right counter, and that wall/queue times accumulate.
func TestMetricsCountJobs(t *testing.T) {
	var m obs.Metrics
	r := New(Options{Workers: 2, Metrics: &m})

	ok := func(Ctx) (int, error) {
		time.Sleep(time.Millisecond)
		return 7, nil
	}
	if _, err := Map(r, []Job[int]{
		{Key: Key{Experiment: "m", Detail: "a"}, Fn: ok},
		{Key: Key{Experiment: "m", Detail: "a"}, Fn: ok}, // deduped
		{Key: Key{Experiment: "m", Detail: "b"}, Fn: ok},
	}); err != nil {
		t.Fatal(err)
	}
	// Same batch again: both distinct fingerprints answer from the cache.
	if _, err := Map(r, []Job[int]{
		{Key: Key{Experiment: "m", Detail: "a"}, Fn: ok},
		{Key: Key{Experiment: "m", Detail: "b"}, Fn: ok},
	}); err != nil {
		t.Fatal(err)
	}
	// A failing and a panicking job.
	_, err := Map(r, []Job[int]{
		{Key: Key{Experiment: "m", Detail: "fail"}, Fn: func(Ctx) (int, error) {
			return 0, errors.New("boom")
		}},
		{Key: Key{Experiment: "m", Detail: "panic"}, Fn: func(Ctx) (int, error) {
			panic("kaboom")
		}},
	})
	if err == nil {
		t.Fatal("Map swallowed the failing batch")
	}

	s := r.Snapshot()
	if s.JobsStarted != 4 || s.JobsCompleted != 4 {
		t.Errorf("started/completed = %d/%d, want 4/4", s.JobsStarted, s.JobsCompleted)
	}
	if s.JobsFailed != 2 || s.JobsPanicked != 1 {
		t.Errorf("failed/panicked = %d/%d, want 2/1", s.JobsFailed, s.JobsPanicked)
	}
	if s.CacheHits != 2 || s.Deduped != 1 {
		t.Errorf("cacheHits/deduped = %d/%d, want 2/1", s.CacheHits, s.Deduped)
	}
	if s.JobWall <= 0 || s.MaxJobWall <= 0 || s.JobWall < s.MaxJobWall {
		t.Errorf("job wall %v / max %v not accumulated sensibly", s.JobWall, s.MaxJobWall)
	}
	if s.QueueWait < 0 {
		t.Errorf("negative queue wait %v", s.QueueWait)
	}
}

// TestDefaultMetricsSink checks that a Runner built without an explicit sink
// reports into obs.Default(), the sink the HTTP endpoint serves.
func TestDefaultMetricsSink(t *testing.T) {
	before := obs.Default().Snapshot().JobsCompleted
	r := New(Options{Workers: 1})
	if _, err := One(r, Job[int]{
		Key: Key{Experiment: "default-sink"},
		Fn:  func(Ctx) (int, error) { return 1, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if after := obs.Default().Snapshot().JobsCompleted; after <= before {
		t.Errorf("obs.Default() jobsCompleted did not advance: %d -> %d", before, after)
	}
}
