package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	r := New(Options{Workers: 8})
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Key{Experiment: "order", Detail: fmt.Sprint(i)},
			Fn: func(Ctx) (int, error) {
				// Let later jobs finish first now and then.
				if i%7 == 0 {
					time.Sleep(time.Millisecond)
				}
				return i * i, nil
			},
		}
	}
	got, err := Map(r, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (completion order leaked)", i, v, i*i)
		}
	}
}

func TestDerivedSeedIsStableAndPerJob(t *testing.T) {
	a := Key{Experiment: "x", Benchmark: "antlr", Scale: 1}
	b := Key{Experiment: "x", Benchmark: "bloat", Scale: 1}
	if a.DerivedSeed() != a.DerivedSeed() {
		t.Fatal("seed not stable across calls")
	}
	if a.DerivedSeed() == b.DerivedSeed() {
		t.Fatal("distinct keys got the same seed")
	}
	if a.DerivedSeed() < 0 {
		t.Fatal("seed must be non-negative")
	}
}

func TestFingerprintDistinguishesFields(t *testing.T) {
	keys := []Key{
		{},
		{Experiment: "a"},
		{Benchmark: "a"},
		{Scheme: "a"},
		{Detail: "a"},
		{Scale: 1},
		{Seed: 1},
		{Experiment: "a", Benchmark: "b"},
		{Experiment: "a b", Benchmark: ""},
	}
	seen := map[string]Key{}
	for _, k := range keys {
		fp := k.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("keys %+v and %+v share fingerprint %q", prev, k, fp)
		}
		seen[fp] = k
	}
}

func TestCacheHitsSkipRecomputation(t *testing.T) {
	r := New(Options{Workers: 4})
	var calls atomic.Int64
	job := func(name string) Job[string] {
		return Job[string]{
			Key: Key{Experiment: "cache", Benchmark: name},
			Fn: func(Ctx) (string, error) {
				calls.Add(1)
				return "result-" + name, nil
			},
		}
	}
	first, err := Map(r, []Job[string]{job("a"), job("b")})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Map(r, []Job[string]{job("a"), job("b"), job("c")})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("executed %d jobs, want 3 (a and b should be cached)", calls.Load())
	}
	if first[0] != second[0] || first[1] != second[1] || second[2] != "result-c" {
		t.Fatalf("cached results differ: %v vs %v", first, second)
	}
	st := r.Stats()
	if st.JobsRun != 3 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v, want 3 run / 2 hits", st)
	}
}

func TestBatchDeduplication(t *testing.T) {
	r := New(Options{Workers: 4, DisableCache: true})
	var calls atomic.Int64
	k := Key{Experiment: "dup"}
	jobs := make([]Job[int], 5)
	for i := range jobs {
		jobs[i] = Job[int]{Key: k, Fn: func(Ctx) (int, error) {
			calls.Add(1)
			return 42, nil
		}}
	}
	got, err := Map(r, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("executed %d times, want 1 (same fingerprint)", calls.Load())
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("follower missed leader result: %v", got)
		}
	}
	if st := r.Stats(); st.Deduped != 4 {
		t.Fatalf("Deduped = %d, want 4", st.Deduped)
	}
}

func TestDisableCacheRecomputes(t *testing.T) {
	r := New(Options{Workers: 2, DisableCache: true})
	var calls atomic.Int64
	j := Job[int]{Key: Key{Experiment: "nocache"}, Fn: func(Ctx) (int, error) {
		calls.Add(1)
		return 0, nil
	}}
	for i := 0; i < 3; i++ {
		if _, err := Map(r, []Job[int]{j}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("executed %d times, want 3 with caching off", calls.Load())
	}
}

func TestPanicBecomesStructuredError(t *testing.T) {
	r := New(Options{Workers: 4})
	jobs := []Job[int]{
		{Key: Key{Experiment: "ok"}, Fn: func(Ctx) (int, error) { return 1, nil }},
		{Key: Key{Experiment: "boom"}, Fn: func(Ctx) (int, error) { panic("kaboom") }},
		{Key: Key{Experiment: "ok2"}, Fn: func(Ctx) (int, error) { return 2, nil }},
	}
	_, err := Map(r, jobs)
	if err == nil {
		t.Fatal("want error from panicking job")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Key.Experiment != "boom" || pe.Value != "kaboom" {
		t.Fatalf("panic error carries wrong job: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack")
	}
	if st := r.Stats(); st.Panics != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 panic / 1 failure", st)
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	r := New(Options{Workers: 8, DisableCache: true})
	mk := func(i int) Job[int] {
		return Job[int]{
			Key: Key{Experiment: "err", Detail: fmt.Sprint(i)},
			Fn: func(Ctx) (int, error) {
				if i%2 == 1 {
					return 0, fmt.Errorf("job-%d failed", i)
				}
				return i, nil
			},
		}
	}
	for trial := 0; trial < 20; trial++ {
		jobs := make([]Job[int], 16)
		for i := range jobs {
			jobs[i] = mk(i)
		}
		_, err := Map(r, jobs)
		if err == nil || !strings.Contains(err.Error(), "job-1 failed") {
			t.Fatalf("trial %d: error = %v, want the index-1 failure", trial, err)
		}
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	r := New(Options{Workers: 2})
	outer := make([]Job[int], 4)
	for i := range outer {
		i := i
		outer[i] = Job[int]{
			Key: Key{Experiment: "outer", Detail: fmt.Sprint(i)},
			Fn: func(Ctx) (int, error) {
				inner := make([]Job[int], 4)
				for j := range inner {
					j := j
					inner[j] = Job[int]{
						Key: Key{Experiment: "inner", Detail: fmt.Sprintf("%d-%d", i, j)},
						Fn:  func(Ctx) (int, error) { return i*10 + j, nil },
					}
				}
				got, err := Map(r, inner)
				if err != nil {
					return 0, err
				}
				sum := 0
				for _, v := range got {
					sum += v
				}
				return sum, nil
			},
		}
	}
	done := make(chan struct{})
	var got []int
	var err error
	go func() {
		got, err = Map(r, outer)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := i*40 + 6
		if v != want {
			t.Fatalf("outer[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestCacheTypeMismatchFallsThrough(t *testing.T) {
	// Two result types behind one fingerprint: the second Map must not
	// return the first type's cached value, it must recompute.
	r := New(Options{Workers: 1})
	k := Key{Experiment: "typed"}
	if _, err := Map(r, []Job[int]{{Key: k, Fn: func(Ctx) (int, error) { return 7, nil }}}); err != nil {
		t.Fatal(err)
	}
	got, err := Map(r, []Job[string]{{Key: k, Fn: func(Ctx) (string, error) { return "seven", nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "seven" {
		t.Fatalf("got %q, want recomputed string result", got[0])
	}
}

func TestOne(t *testing.T) {
	r := New(Options{Workers: 1})
	v, err := One(r, Job[int]{Key: Key{Experiment: "one"}, Fn: func(ctx Ctx) (int, error) {
		if ctx.Seed != ctx.Key.DerivedSeed() {
			return 0, errors.New("ctx seed mismatch")
		}
		return 9, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Fatalf("One = %d, want 9", v)
	}
}

func TestSummaryMentionsTotals(t *testing.T) {
	r := New(Options{Workers: 1})
	_, err := Map(r, []Job[int]{
		{Key: Key{Experiment: "exp-a", Scheme: "scheme-x"}, Fn: func(Ctx) (int, error) { return 0, nil }},
		{Key: Key{Experiment: "exp-b"}, Fn: func(Ctx) (int, error) { return 0, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats().Summary()
	for _, want := range []string{"2 jobs run", "scheme-x: 1", "exp-b: 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
