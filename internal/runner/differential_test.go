package runner_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// These differential tests hold the parallel runner to the determinism
// contract the scheduling literature demands before a parallel evaluation
// can be trusted: the full figure sweeps must be bit-identical between the
// serial path (one worker), the parallel path (many workers), and repeated
// runs. Run them under -race and -cpu=1,4 (the Makefile's `race` target
// does) to also prove the pool is race-clean.

// renderAll runs the Fig. 5–8 sweeps through a fresh, cache-disabled runner
// with the given worker bound and returns the concatenated rendered tables.
// Disabling the cache forces every job to genuinely recompute, so equality
// across calls is equality of computation, not of memoized bytes.
func renderAll(t *testing.T, workers int) []byte {
	t.Helper()
	opts := experiments.Options{
		Runner: runner.New(runner.Options{Workers: workers, DisableCache: true}),
	}
	var buf bytes.Buffer
	for _, fig := range []struct {
		name string
		run  func(experiments.Options) (*experiments.FigResult, error)
	}{
		{"fig5", experiments.Fig5},
		{"fig6", experiments.Fig6},
		{"fig8", experiments.Fig8},
	} {
		res, err := fig.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		if err := res.Render(&buf); err != nil {
			t.Fatalf("%s: render: %v", fig.name, err)
		}
	}
	res7, err := experiments.Fig7(opts)
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	if err := res7.Render(&buf); err != nil {
		t.Fatalf("fig7: render: %v", err)
	}
	return buf.Bytes()
}

func TestFigSweepSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial path.\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestFigSweepRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	first := renderAll(t, 8)
	second := renderAll(t, 8)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated parallel sweeps disagree.\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
}

// TestFig5CachedRerunIdentical re-runs Fig. 5 on one runner and checks the
// cache-served pass renders the same bytes while executing zero new jobs.
func TestFig5CachedRerunIdentical(t *testing.T) {
	eng := runner.New(runner.Options{Workers: 4})
	opts := experiments.Options{Runner: eng}
	render := func() []byte {
		res, err := experiments.Fig5(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	ran := eng.Stats().JobsRun
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatal("cached Fig. 5 rerun rendered different bytes")
	}
	st := eng.Stats()
	if st.JobsRun != ran {
		t.Fatalf("cached rerun executed %d new jobs", st.JobsRun-ran)
	}
	if st.CacheHits != ran {
		t.Fatalf("cached rerun hit %d of %d jobs", st.CacheHits, ran)
	}
}

// TestSingleBenchmarkRowMatchesFullSweep pins the job decomposition: one
// benchmark simulated alone must produce the same row as inside the full
// fan-out, i.e. jobs really are independent.
func TestSingleBenchmarkRowMatchesFullSweep(t *testing.T) {
	full, err := experiments.Fig5(experiments.Options{
		Runner: runner.New(runner.Options{Workers: 8, DisableCache: true}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range full.Rows[:3] {
		solo, err := experiments.Fig5(experiments.Options{
			Benchmarks: []string{row.Benchmark},
			Runner:     runner.New(runner.Options{Workers: 1, DisableCache: true}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(solo.Rows) != 1 {
			t.Fatalf("%s: got %d rows", row.Benchmark, len(solo.Rows))
		}
		got, want := solo.Rows[0], row
		if got.LowerBound != want.LowerBound {
			t.Fatalf("%s: solo lower bound %d != sweep %d", row.Benchmark, got.LowerBound, want.LowerBound)
		}
		for scheme, sr := range want.Schemes {
			if got.Schemes[scheme] != sr {
				t.Fatalf("%s/%s: solo %+v != sweep %+v", row.Benchmark, scheme, got.Schemes[scheme], sr)
			}
		}
	}
}

func fig5Jobs(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{
			Runner: runner.New(runner.Options{Workers: workers, DisableCache: true}),
		}
		if _, err := experiments.Fig5(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// The wall-clock claim of the tentpole: with GOMAXPROCS >= 4 the parallel
// sweep must beat the serial one. Compare with
//
//	go test -bench 'Fig5Sweep' -cpu 4 ./internal/runner
func BenchmarkFig5SweepSerial(b *testing.B)   { fig5Jobs(b, 1) }
func BenchmarkFig5SweepParallel(b *testing.B) { fig5Jobs(b, 0) }

// Example of the failure isolation the runner guarantees: a crashed job
// surfaces as a structured error naming the job, not a dead process.
func ExamplePanicError() {
	eng := runner.New(runner.Options{Workers: 2})
	_, err := runner.Map(eng, []runner.Job[int]{{
		Key: runner.Key{Experiment: "demo", Benchmark: "crashy"},
		Fn:  func(runner.Ctx) (int, error) { panic("simulated crash") },
	}})
	var pe *runner.PanicError
	if errors.As(err, &pe) {
		fmt.Println("recovered:", pe.Key.Benchmark, "-", pe.Value)
	}
	// Output: recovered: crashy - simulated crash
}
