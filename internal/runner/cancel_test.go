package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func cancelJobs(n int, ran *atomic.Int64) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Key{Experiment: "cancel", Seed: int64(i)},
			Fn: func(Ctx) (int, error) {
				ran.Add(1)
				return i, nil
			},
		}
	}
	return jobs
}

// TestMapContextAlreadyCancelled: a context that is cancelled before dispatch
// fails the whole batch without running a single job, and the failures never
// enter the cache — the same keys compute normally afterwards.
func TestMapContextAlreadyCancelled(t *testing.T) {
	r := New(Options{Workers: 4, Metrics: nil})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := cancelJobs(8, &ran)
	res, err := MapContext(ctx, r, jobs)
	if err == nil {
		t.Fatal("MapContext with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want it to wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got %d partial results, want none", len(res))
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d jobs ran despite the cancelled context", got)
	}
	// The cancelled batch must not have poisoned the cache.
	res, err = Map(r, jobs)
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("rerun result %d = %d, want %d", i, v, i)
		}
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("rerun executed %d jobs, want 8 (cancelled attempts must not be cached)", got)
	}
}

// TestMapContextMidRunCancel: cancelling while jobs are in flight propagates
// through Ctx.Context, settles every job, and reports the failure.
func TestMapContextMidRunCancel(t *testing.T) {
	r := New(Options{Workers: 4, Metrics: nil})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: Key{Experiment: "midcancel", Seed: int64(i)},
			Fn: func(c Ctx) (int, error) {
				<-c.Context.Done() // a job that cooperates with cancellation
				return 0, c.Context.Err()
			},
		}
	}
	time.AfterFunc(20*time.Millisecond, cancel)
	done := make(chan error, 1)
	go func() {
		_, err := MapContext(ctx, r, jobs)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want it to wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MapContext did not return after cancellation")
	}
}

// TestMapContextUncancelledIdentical: a live background context changes
// nothing relative to plain Map.
func TestMapContextUncancelledIdentical(t *testing.T) {
	mk := func() []Job[int] {
		jobs := make([]Job[int], 6)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Key: Key{Experiment: "plain", Seed: int64(i)},
				Fn:  func(Ctx) (int, error) { return i * i, nil },
			}
		}
		return jobs
	}
	r1 := New(Options{Workers: 3, Metrics: nil})
	r2 := New(Options{Workers: 3, Metrics: nil})
	want, err1 := Map(r1, mk())
	got, err2 := MapContext(context.Background(), r2, mk())
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: plain=%v ctx=%v", err1, err2)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: ctx variant %d != plain %d", i, got[i], want[i])
		}
	}
}
