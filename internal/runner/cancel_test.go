package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func cancelJobs(n int, ran *atomic.Int64) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Key{Experiment: "cancel", Seed: int64(i)},
			Fn: func(Ctx) (int, error) {
				ran.Add(1)
				return i, nil
			},
		}
	}
	return jobs
}

// TestMapContextAlreadyCancelled: a context that is cancelled before dispatch
// fails the whole batch without running a single job, and the failures never
// enter the cache — the same keys compute normally afterwards.
func TestMapContextAlreadyCancelled(t *testing.T) {
	r := New(Options{Workers: 4, Metrics: nil})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := cancelJobs(8, &ran)
	res, err := MapContext(ctx, r, jobs)
	if err == nil {
		t.Fatal("MapContext with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want it to wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got %d partial results, want none", len(res))
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d jobs ran despite the cancelled context", got)
	}
	// The cancelled batch must not have poisoned the cache.
	res, err = Map(r, jobs)
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("rerun result %d = %d, want %d", i, v, i)
		}
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("rerun executed %d jobs, want 8 (cancelled attempts must not be cached)", got)
	}
}

// TestMapContextMidRunCancel: cancelling while jobs are in flight propagates
// through Ctx.Context, settles every job, and reports the failure.
func TestMapContextMidRunCancel(t *testing.T) {
	r := New(Options{Workers: 4, Metrics: nil})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: Key{Experiment: "midcancel", Seed: int64(i)},
			Fn: func(c Ctx) (int, error) {
				<-c.Context.Done() // a job that cooperates with cancellation
				return 0, c.Context.Err()
			},
		}
	}
	time.AfterFunc(20*time.Millisecond, cancel)
	done := make(chan error, 1)
	go func() {
		_, err := MapContext(ctx, r, jobs)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want it to wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MapContext did not return after cancellation")
	}
}

// TestCancelledCountedDistinctly: jobs ended by the batch context land in
// the Cancelled counters — runner stats and obs metrics — not in Failures,
// while genuine failures still do.
func TestCancelledCountedDistinctly(t *testing.T) {
	var m obs.Metrics
	r := New(Options{Workers: 2, Metrics: &m})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 3)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: Key{Experiment: "distinct", Seed: int64(i)},
			Fn: func(c Ctx) (int, error) {
				cancel()
				<-c.Context.Done()
				return 0, c.Context.Err()
			},
		}
	}
	if _, err := MapContext(ctx, r, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want it to wrap context.Canceled", err)
	}
	st := r.Stats()
	if st.Cancelled == 0 {
		t.Fatal("no jobs counted as cancelled")
	}
	if st.Failures != 0 {
		t.Fatalf("%d cancelled jobs folded into Failures", st.Failures)
	}
	snap := m.Snapshot()
	if snap.JobsCancelled == 0 || snap.JobsFailed != 0 {
		t.Fatalf("metrics: %d cancelled / %d failed, want >0 / 0", snap.JobsCancelled, snap.JobsFailed)
	}

	// A genuine failure under a live context still counts as a failure.
	r2 := New(Options{Workers: 1, Metrics: nil})
	_, err := MapContext(context.Background(), r2, []Job[int]{{
		Key: Key{Experiment: "genuine"},
		Fn:  func(Ctx) (int, error) { return 0, errors.New("boom") },
	}})
	if err == nil {
		t.Fatal("genuine failure succeeded")
	}
	if st2 := r2.Stats(); st2.Failures != 1 || st2.Cancelled != 0 {
		t.Fatalf("genuine failure counted as %d failed / %d cancelled", st2.Failures, st2.Cancelled)
	}
}

// TestMapContextUncancelledIdentical: a live background context changes
// nothing relative to plain Map.
func TestMapContextUncancelledIdentical(t *testing.T) {
	mk := func() []Job[int] {
		jobs := make([]Job[int], 6)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Key: Key{Experiment: "plain", Seed: int64(i)},
				Fn:  func(Ctx) (int, error) { return i * i, nil },
			}
		}
		return jobs
	}
	r1 := New(Options{Workers: 3, Metrics: nil})
	r2 := New(Options{Workers: 3, Metrics: nil})
	want, err1 := Map(r1, mk())
	got, err2 := MapContext(context.Background(), r2, mk())
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: plain=%v ctx=%v", err1, err2)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: ctx variant %d != plain %d", i, got[i], want[i])
		}
	}
}
