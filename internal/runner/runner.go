// Package runner is the concurrent batch-evaluation engine behind the
// experiment harnesses: it fans independent simulation jobs (benchmark ×
// scheme × scale × seed) out across a bounded worker pool while keeping every
// observable output deterministic.
//
// # Determinism contract
//
// A job is identified by its Key. The engine guarantees:
//
//   - results are collected by submission index, never by completion order,
//     so a batch's result slice is identical no matter how the scheduler
//     interleaves workers;
//   - each job receives a private seed derived by hashing its fingerprint
//     (Key.DerivedSeed); no RNG state is ever shared between jobs;
//   - when several jobs fail, Map reports the error of the lowest-index
//     failed job, so even the error path is deterministic.
//
// In exchange, a job's Fn must be a pure function of its Key and Ctx: same
// fingerprint, same result. The cache (below) and the batch-level
// deduplication both rely on this.
//
// # Caching
//
// Results are memoized by fingerprint in the Runner, so repeated sweeps (a
// scale study re-running Figure 5 at scale 1, `exp all` visiting the same
// benchmark twice) skip already-computed make-spans. Cached values are shared
// structure — treat every job result as immutable after return.
//
// # Failure isolation
//
// A panicking job does not kill the sweep: the panic is recovered on the
// worker and converted into a *PanicError carrying the job key and stack,
// reported like any other job error.
//
// Each Map call runs on its own pool of Workers goroutines, so nested Map
// calls (a study that fans out per scale, each scale fanning out per
// benchmark) cannot deadlock on a shared semaphore.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Key identifies one simulation job. Fields left at their zero value simply
// do not contribute to the identity; Detail is a free-form slot for
// harness-specific parameters (IAR K, thread counts, sweep values).
type Key struct {
	Experiment string
	Benchmark  string
	Scheme     string
	Scale      float64
	Seed       int64
	Detail     string
}

// Fingerprint renders the key as a canonical string: equal keys, equal
// strings, and distinct keys cannot collide because fields are
// length-delimited by quoting.
func (k Key) Fingerprint() string {
	return fmt.Sprintf("exp=%q bench=%q scheme=%q scale=%s seed=%d detail=%q",
		k.Experiment, k.Benchmark, k.Scheme,
		strconv.FormatFloat(k.Scale, 'g', -1, 64), k.Seed, k.Detail)
}

// DerivedSeed hashes the fingerprint into a non-negative per-job seed. Jobs
// that need randomness must draw it from this seed (via their Ctx) instead of
// any shared RNG, so a job's random stream depends only on its identity —
// not on which worker ran it or what ran before.
func (k Key) DerivedSeed() int64 {
	h := fnv.New64a()
	h.Write([]byte(k.Fingerprint()))
	return int64(h.Sum64() &^ (1 << 63))
}

// Ctx is what a running job sees of the engine.
type Ctx struct {
	// Key is the job's own key.
	Key Key
	// Seed is Key.DerivedSeed(), precomputed.
	Seed int64
	// Context carries the batch's cancellation signal (context.Background
	// for plain Map calls — never nil). Long-running jobs should thread it
	// into their own cancellable work so a cancelled batch stops promptly.
	Context context.Context
}

// Job pairs a key with the function computing its result.
type Job[T any] struct {
	Key Key
	Fn  func(ctx Ctx) (T, error)
}

// PanicError is a job panic converted into an error.
type PanicError struct {
	Key   Key
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.Key.Fingerprint(), e.Value)
}

// Stats aggregates what a Runner has done so far.
type Stats struct {
	// JobsRun counts job functions actually executed; CacheHits counts jobs
	// answered from the result cache; Deduped counts jobs that shared a
	// batch-mate's in-flight computation. Every submitted job lands in
	// exactly one of the three (or in Failures).
	JobsRun   int64
	CacheHits int64
	Deduped   int64
	// Failures counts executed jobs that returned an error or panicked;
	// Panics counts the panicked subset. Jobs ended by their batch
	// context's cancellation are counted in Cancelled instead — they are
	// neither successes nor genuine failures.
	Failures  int64
	Panics    int64
	Cancelled int64
	// WallTime accumulates the wall-clock duration of every Map call.
	WallTime time.Duration
	// PerScheme counts executed jobs by Key.Scheme (Key.Experiment when the
	// scheme is empty).
	PerScheme map[string]int64
}

// Summary renders the stats as one line, with per-scheme totals in sorted
// order.
func (s Stats) Summary() string {
	out := fmt.Sprintf("runner: %d jobs run, %d cache hits, %d deduped, %d failed, %d cancelled, wall %v",
		s.JobsRun, s.CacheHits, s.Deduped, s.Failures, s.Cancelled, s.WallTime.Round(time.Millisecond))
	if len(s.PerScheme) > 0 {
		names := make([]string, 0, len(s.PerScheme))
		for n := range s.PerScheme {
			names = append(names, n)
		}
		sort.Strings(names)
		out += " ["
		for i, n := range names {
			if i > 0 {
				out += ", "
			}
			out += fmt.Sprintf("%s: %d", n, s.PerScheme[n])
		}
		out += "]"
	}
	return out
}

// Options configures a Runner.
type Options struct {
	// Workers bounds per-batch concurrency; 0 means GOMAXPROCS.
	Workers int
	// DisableCache turns result memoization off (differential tests use this
	// to force genuine recomputation).
	DisableCache bool
	// Metrics receives job/cache/latency counters; nil means obs.Default(),
	// the process-wide sink that `jitsched -obs-addr` serves over HTTP.
	Metrics *obs.Metrics
}

// Runner owns the worker bound, the result cache, and the stats. It is safe
// for concurrent use.
type Runner struct {
	workers int
	noCache bool
	metrics *obs.Metrics

	mu    sync.Mutex
	cache map[string]any
	stats Stats
}

// New builds a Runner.
func New(opts Options) *Runner {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := opts.Metrics
	if m == nil {
		m = obs.Default()
	}
	return &Runner{
		workers: w,
		noCache: opts.DisableCache,
		metrics: m,
		cache:   make(map[string]any),
		stats:   Stats{PerScheme: make(map[string]int64)},
	}
}

// Workers reports the configured per-batch concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Snapshot returns the current state of the runner's metrics sink — the
// latency-aware counterpart of Stats (queue wait, per-job wall time, max job
// wall time), shared with whatever else reports into the same sink.
func (r *Runner) Snapshot() obs.Snapshot {
	return r.metrics.Snapshot()
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.PerScheme = make(map[string]int64, len(r.stats.PerScheme))
	for k, v := range r.stats.PerScheme {
		s.PerScheme[k] = v
	}
	return s
}

// ResetCache drops all memoized results (the counters stay).
func (r *Runner) ResetCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[string]any)
}

var (
	sharedOnce sync.Once
	shared     *Runner
)

// Shared returns the process-wide default Runner (GOMAXPROCS workers,
// caching on), created on first use. Harnesses that are not handed an
// explicit Runner submit here, so a multi-study session (`jitsched exp all`,
// the test suite) shares one cache.
func Shared() *Runner {
	sharedOnce.Do(func() { shared = New(Options{}) })
	return shared
}

// jobState tracks one submitted job through a Map call.
type jobState[T any] struct {
	result T
	err    error
}

// Map runs the batch on r's pool and returns the results in submission
// order. Jobs with equal fingerprints are computed once per batch (the rest
// share the leader's result); previously computed fingerprints are answered
// from the cache. If any job fails, Map returns the lowest-index failure
// after all jobs have settled — partial results are never returned.
func Map[T any](r *Runner, jobs []Job[T]) ([]T, error) {
	return MapContext(context.Background(), r, jobs)
}

// cancelledErr reports whether a job's error came from its batch context
// being cancelled or timing out — as opposed to the job genuinely failing.
// A panic is always a genuine failure, even one raised mid-cancellation.
func cancelledErr(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := err.(*PanicError); ok {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MapContext is Map with cooperative cancellation, checked at job boundaries:
// once ctx is done, jobs that have not started are failed with the context's
// error instead of running, already-running jobs see the same signal through
// their Ctx.Context, and MapContext returns an error after every in-flight
// job has settled. As with any failure, partial results are never returned;
// cancellation cannot corrupt the cache because failed jobs are never
// cached. An un-cancelled MapContext is bit-identical to Map.
func MapContext[T any](ctx context.Context, r *Runner, jobs []Job[T]) ([]T, error) {
	start := time.Now()
	states := make([]jobState[T], len(jobs))

	// Resolve cache hits and batch-level duplicates up front so the
	// dispatch below only sees work that genuinely has to run.
	var (
		leaders     []int           // indices that execute
		followers   = map[int]int{} // follower index -> leader index
		hits, dedup int64
	)
	leaderOf := make(map[string]int, len(jobs))
	r.mu.Lock()
	for i, j := range jobs {
		fp := j.Key.Fingerprint()
		if !r.noCache {
			if v, ok := r.cache[fp]; ok {
				if tv, ok := v.(T); ok {
					states[i].result = tv
					hits++
					continue
				}
			}
		}
		if li, ok := leaderOf[fp]; ok {
			followers[i] = li
			dedup++
			continue
		}
		leaderOf[fp] = i
		leaders = append(leaders, i)
	}
	r.mu.Unlock()

	r.metrics.CacheHit(hits)
	r.metrics.Deduped(dedup)

	// Dispatch the leaders to a bounded pool. Each Map call gets its own
	// goroutines so nested calls cannot starve each other.
	if len(leaders) > 0 {
		idx := make(chan int)
		var wg sync.WaitGroup
		workers := r.workers
		if workers > len(leaders) {
			workers = len(leaders)
		}
		enqueued := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if err := ctx.Err(); err != nil {
						states[i].err = fmt.Errorf("runner: job not started: %w", err)
						r.metrics.JobCancelled()
						continue
					}
					j := jobs[i]
					r.metrics.JobStarted(time.Since(enqueued))
					jobStart := time.Now()
					states[i].result, states[i].err = runJob(ctx, j)
					_, panicked := states[i].err.(*PanicError)
					if cancelledErr(states[i].err) {
						// The batch context won, not the job: count it as
						// cancelled, not failed.
						r.metrics.JobCompleted(time.Since(jobStart), false, false)
						r.metrics.JobCancelled()
					} else {
						r.metrics.JobCompleted(time.Since(jobStart), states[i].err != nil, panicked)
					}
				}
			}()
		}
		for _, i := range leaders {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Propagate leader outcomes to their batch-mates.
	for f, l := range followers {
		states[f] = states[l]
	}

	// Fill the cache and the counters.
	var failures, panics, cancelled int64
	r.mu.Lock()
	for _, i := range leaders {
		if states[i].err != nil {
			if cancelledErr(states[i].err) {
				cancelled++
			} else {
				failures++
				if _, ok := states[i].err.(*PanicError); ok {
					panics++
				}
			}
			continue
		}
		if !r.noCache {
			r.cache[jobs[i].Key.Fingerprint()] = states[i].result
		}
	}
	r.stats.JobsRun += int64(len(leaders))
	r.stats.CacheHits += hits
	r.stats.Deduped += dedup
	r.stats.Failures += failures
	r.stats.Panics += panics
	r.stats.Cancelled += cancelled
	r.stats.WallTime += time.Since(start)
	for _, i := range leaders {
		name := jobs[i].Key.Scheme
		if name == "" {
			name = jobs[i].Key.Experiment
		}
		r.stats.PerScheme[name]++
	}
	r.mu.Unlock()

	for i := range states {
		if states[i].err != nil {
			return nil, fmt.Errorf("runner: job %d (%s): %w",
				i, jobs[i].Key.Fingerprint(), states[i].err)
		}
	}
	out := make([]T, len(jobs))
	for i := range states {
		out[i] = states[i].result
	}
	return out, nil
}

// runJob executes one job with panic isolation.
func runJob[T any](ctx context.Context, j Job[T]) (result T, err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 16*1024)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Key: j.Key, Value: v, Stack: buf}
		}
	}()
	return j.Fn(Ctx{Key: j.Key, Seed: j.Key.DerivedSeed(), Context: ctx})
}

// One runs a single job through the runner (a one-element Map).
func One[T any](r *Runner, j Job[T]) (T, error) {
	return OneContext(context.Background(), r, j)
}

// OneContext runs a single job with cancellation (a one-element MapContext).
func OneContext[T any](ctx context.Context, r *Runner, j Job[T]) (T, error) {
	res, err := MapContext(ctx, r, []Job[T]{j})
	if err != nil {
		var zero T
		return zero, err
	}
	return res[0], nil
}
