package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The spec wire format is strict JSON: unknown fields are rejected so a
// typo'd knob fails loudly instead of silently rendering the default, and
// every accepted spec re-encodes to an equivalent one (FuzzWorkloadSpec
// holds the codec to that round trip).

// ParseSpec decodes and validates a spec from its JSON form.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: malformed spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("workload: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSpec decodes and validates a spec from a reader.
func ReadSpec(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// WriteSpec encodes the spec as indented JSON, the same form ParseSpec
// accepts.
func WriteSpec(w io.Writer, s *Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
