package workload_test

// Differential and determinism tests for the streaming generator. The
// render contract — same Spec, same bytes, anywhere — is held three ways:
// a hardcoded SHA-256 of a reference render (so `go test -cpu=1,4` anchors
// both GOMAXPROCS settings to one value, not merely to each other),
// concurrent renders compared byte for byte, and round trips through both
// trace codecs.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func refSpec() *workload.Spec {
	return &workload.Spec{
		Name: "ref", Seed: 42, Length: 20000,
		Cohorts: []workload.Cohort{
			{Bench: "luindex", Scale: 0.05},
			{Bench: "lusearch", Scale: 0.05},
			{Bench: "fop", Scale: 0.05},
		},
		Phases: []workload.Phase{
			{Weight: 2, Process: workload.ProcessSteady, Mix: []float64{3, 1, 0}},
			{Weight: 1, Process: workload.ProcessPoisson},
			{Weight: 1, Process: workload.ProcessBursty, BurstMean: 12, Mix: []float64{0, 1, 2}},
		},
	}
}

// hashTrace digests the call sequence (not the name) plus the profile shape.
func hashTrace(tr *trace.Trace, nfuncs int) string {
	h := sha256.New()
	binary.Write(h, binary.LittleEndian, int64(nfuncs))
	for _, f := range tr.Calls {
		binary.Write(h, binary.LittleEndian, int32(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// refHash is the reference render's digest. It pins the generator's output
// across platforms and GOMAXPROCS values; regenerate it (the failure
// message prints the new value) only when the generator's algorithm
// deliberately changes.
const refHash = "cb35dac6b346006a7ae7736eb2fc055826a9ddd6fda30065b11fc47e38a38a03"

func TestRenderMatchesReferenceHash(t *testing.T) {
	tr, p, err := refSpec().Render()
	if err != nil {
		t.Fatal(err)
	}
	if got := hashTrace(tr, p.NumFuncs()); got != refHash {
		t.Fatalf("reference render hash changed:\n got %s\nwant %s", got, refHash)
	}
}

func TestRenderDeterministicUnderConcurrency(t *testing.T) {
	const renders = 8
	traces := make([]*trace.Trace, renders)
	var wg sync.WaitGroup
	for i := 0; i < renders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, _, err := refSpec().Render()
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < renders; i++ {
		if traces[i] == nil || traces[0] == nil {
			t.Fatal("render failed")
		}
		if !bytes.Equal(callBytes(traces[0]), callBytes(traces[i])) {
			t.Fatalf("concurrent render %d differs from render 0", i)
		}
	}
}

func callBytes(tr *trace.Trace) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, tr.Calls)
	return buf.Bytes()
}

func TestRenderRoundTripsThroughCodecs(t *testing.T) {
	tr, p, err := refSpec().Render()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || !bytes.Equal(callBytes(back), callBytes(tr)) {
		t.Fatal("binary codec round trip changed the trace")
	}

	var txt bytes.Buffer
	if err := trace.WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	back, err = trace.ReadText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || !bytes.Equal(callBytes(back), callBytes(tr)) {
		t.Fatal("text codec round trip changed the trace")
	}
}

func TestSpecCodecRoundTrip(t *testing.T) {
	s := refSpec()
	var buf bytes.Buffer
	if err := workload.WriteSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ParseSpec(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := workload.WriteSpec(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("spec did not survive the round trip:\n%s\nvs\n%s", buf.Bytes(), again.Bytes())
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","seed":1,"length":10,"cohorts":[{"bench":"fop"}],"typo":1}`,
		"trailing data": `{"name":"x","seed":1,"length":10,"cohorts":[{"bench":"fop"}]} {}`,
		"not json":      `hello`,
		"bad bench":     `{"name":"x","seed":1,"length":10,"cohorts":[{"bench":"nope"}]}`,
	}
	for name, in := range cases {
		if _, err := workload.ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *workload.Spec {
		return &workload.Spec{Name: "v", Seed: 1, Length: 100,
			Cohorts: []workload.Cohort{{Bench: "fop"}}}
	}
	cases := map[string]func(*workload.Spec){
		"negative length":  func(s *workload.Spec) { s.Length = -1 },
		"oversize length":  func(s *workload.Spec) { s.Length = workload.MaxLength + 1 },
		"no cohorts":       func(s *workload.Spec) { s.Cohorts = nil },
		"too many cohorts": func(s *workload.Spec) { s.Cohorts = make([]workload.Cohort, workload.MaxCohorts+1) },
		"negative scale":   func(s *workload.Spec) { s.Cohorts[0].Scale = -1 },
		"oversize scale":   func(s *workload.Spec) { s.Cohorts[0].Scale = workload.MaxCohortScale + 1 },
		"zero weight":      func(s *workload.Spec) { s.Phases = []workload.Phase{{Weight: 0, Process: "steady"}} },
		"bad process":      func(s *workload.Spec) { s.Phases = []workload.Phase{{Weight: 1, Process: "chaotic"}} },
		"sub-one burst":    func(s *workload.Spec) { s.Phases = []workload.Phase{{Weight: 1, Process: "bursty", BurstMean: 0.5}} },
		"oversize burst": func(s *workload.Spec) {
			s.Phases = []workload.Phase{{Weight: 1, Process: "bursty", BurstMean: workload.MaxBurstMean + 1}}
		},
		"mix length": func(s *workload.Spec) {
			s.Phases = []workload.Phase{{Weight: 1, Process: "steady", Mix: []float64{1, 2}}}
		},
		"negative mix": func(s *workload.Spec) {
			s.Phases = []workload.Phase{{Weight: 1, Process: "steady", Mix: []float64{-1}}}
		},
		"all-zero mix": func(s *workload.Spec) { s.Phases = []workload.Phase{{Weight: 1, Process: "steady", Mix: []float64{0}}} },
	}
	for name, breakIt := range cases {
		s := base()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec should validate: %v", err)
	}
}

func TestRenderLengthAndIDs(t *testing.T) {
	tr, p, err := refSpec().Render()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("rendered %d calls, want 20000", tr.Len())
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		t.Fatal(err)
	}
	if tr.Name != "ref" {
		t.Fatalf("trace name %q, want %q", tr.Name, "ref")
	}
}

// TestSteadyMixProportions holds the steady process to its contract: the
// emitted cohort proportions track the mix weights.
func TestSteadyMixProportions(t *testing.T) {
	s := &workload.Spec{
		Name: "prop", Seed: 9, Length: 9000,
		Cohorts: []workload.Cohort{{Bench: "fop", Scale: 0.02}, {Bench: "pmd", Scale: 0.02}},
		Phases:  []workload.Phase{{Weight: 1, Process: workload.ProcessSteady, Mix: []float64{2, 1}}},
	}
	tr, p, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Cohort 0 owns the FuncIDs below the second cohort's offset; a
	// single-cohort render of the same benchmark gives the boundary.
	_, p0, err := (&workload.Spec{Name: "one", Seed: 1, Length: 0,
		Cohorts: []workload.Cohort{{Bench: "fop", Scale: 0.02}}}).Render()
	if err != nil {
		t.Fatal(err)
	}
	boundary := trace.FuncID(p0.NumFuncs())
	if int(boundary) >= p.NumFuncs() {
		t.Fatalf("boundary %d not below the combined profile's %d functions", boundary, p.NumFuncs())
	}
	var first int
	for _, f := range tr.Calls {
		if f < boundary {
			first++
		}
	}
	got := float64(first) / float64(tr.Len())
	if got < 0.66 || got > 0.67 {
		t.Fatalf("cohort 0 share %.4f, want 2/3 within rounding", got)
	}
}

// TestEmptyRender renders a zero-length workload: valid, empty trace,
// non-empty combined profile.
func TestEmptyRender(t *testing.T) {
	s := &workload.Spec{Name: "empty", Seed: 3, Length: 0,
		Cohorts: []workload.Cohort{{Bench: "antlr", Scale: 0.02}}}
	tr, p, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("rendered %d calls, want 0", tr.Len())
	}
	if p.NumFuncs() == 0 {
		t.Fatal("combined profile is empty")
	}
}

func TestWriteSpecOutputIsIndented(t *testing.T) {
	var buf bytes.Buffer
	if err := workload.WriteSpec(&buf, refSpec()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Fatal("WriteSpec output is not indented")
	}
}
