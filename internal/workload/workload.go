// Package workload is a servegen-style streaming trace generator: it
// composes several DaCapo-derived benchmark streams ("tenant cohorts") into
// one call sequence whose arrival process shifts over time. A Spec describes
// the composition declaratively — cohorts, phases, mixing processes — and
// Render turns it into an ordinary trace.Trace plus a combined timing
// profile, so everything downstream (schedulers, the simulator, the online
// harness) consumes streaming workloads through the same types as the
// paper's single-program traces.
//
// Rendering is deterministic: a Spec's Seed fully determines the output,
// byte for byte, regardless of GOMAXPROCS or call site. The differential
// tests hold the package to that, and the online experiments lean on it —
// the same Spec is rendered independently inside every runner job.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dacapo"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Bounds on a Spec, enforced by Validate. They keep a single render's work
// within what one job can reasonably own (the fuzz harness and the HTTP
// surface both feed untrusted specs through Validate).
const (
	// MaxLength bounds the rendered call count.
	MaxLength = 1 << 22
	// MaxCohorts bounds the tenant count.
	MaxCohorts = 8
	// MaxPhases bounds the phase count.
	MaxPhases = 16
	// MaxCohortScale bounds a cohort's trace-length multiplier.
	MaxCohortScale = 4.0
	// MaxBurstMean bounds the bursty process's mean run length.
	MaxBurstMean = 64.0
)

// DefaultCohortScale is a cohort's trace-length multiplier when the spec
// leaves it zero: a tenth of the benchmark's default scaled size, so a
// several-cohort stream stays laptop-fast.
const DefaultCohortScale = 0.1

// DefaultBurstMean is the bursty process's mean run length when the spec
// leaves it zero.
const DefaultBurstMean = 8.0

// Mixing processes a phase may use.
const (
	// ProcessSteady interleaves cohorts deterministically in proportion to
	// the mix weights (weighted round-robin) — the no-noise baseline.
	ProcessSteady = "steady"
	// ProcessPoisson draws each call's cohort independently by the mix
	// weights — memoryless arrivals, the classic open-system model.
	ProcessPoisson = "poisson"
	// ProcessBursty draws a cohort by the mix weights and lets it run for a
	// geometrically distributed burst — tenants arrive in request batches.
	ProcessBursty = "bursty"
)

// Cohort is one tenant: a DaCapo-derived benchmark stream feeding the mix.
type Cohort struct {
	// Bench names the internal/dacapo benchmark supplying the cohort's call
	// stream and timing profile.
	Bench string `json:"bench"`
	// Scale multiplies the benchmark's default scaled trace length for this
	// cohort's stream (DefaultCohortScale if zero). The stream wraps around
	// when the rendered workload outlives it.
	Scale float64 `json:"scale,omitempty"`
}

// Phase is one segment of the rendered stream: a share of the total length
// during which one arrival process and one cohort mix hold. Multi-phase
// specs model period shifts — tenants coming and going, load moving between
// services.
type Phase struct {
	// Weight is the phase's share of Spec.Length, relative to the other
	// phases' weights. Must be positive.
	Weight float64 `json:"weight"`
	// Process selects the mixing process: steady, poisson, or bursty.
	Process string `json:"process"`
	// BurstMean is the bursty process's mean run length
	// (DefaultBurstMean if zero; ignored by the other processes).
	BurstMean float64 `json:"burst_mean,omitempty"`
	// Mix weighs the cohorts during this phase, indexed like Spec.Cohorts.
	// Empty means uniform. A zero entry silences that cohort for the phase.
	Mix []float64 `json:"mix,omitempty"`
}

// Spec declares a streaming workload. The zero Spec is invalid; fill in at
// least one cohort and a length.
type Spec struct {
	// Name labels the rendered trace.
	Name string `json:"name"`
	// Seed drives every stochastic draw of the render.
	Seed int64 `json:"seed"`
	// Length is the rendered call count.
	Length int `json:"length"`
	// Cohorts are the tenant streams feeding the mix.
	Cohorts []Cohort `json:"cohorts"`
	// Phases segment the stream; empty means one steady phase.
	Phases []Phase `json:"phases,omitempty"`
}

// Validate reports the first spec error, or nil.
func (s *Spec) Validate() error {
	if s.Length < 0 || s.Length > MaxLength {
		return fmt.Errorf("workload: Length must be in [0,%d], got %d", MaxLength, s.Length)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec needs at least one cohort")
	}
	if len(s.Cohorts) > MaxCohorts {
		return fmt.Errorf("workload: %d cohorts exceed the limit %d", len(s.Cohorts), MaxCohorts)
	}
	for i, c := range s.Cohorts {
		if _, err := dacapo.ByName(c.Bench); err != nil {
			return fmt.Errorf("workload: cohort %d: %w", i, err)
		}
		if c.Scale < 0 || c.Scale > MaxCohortScale {
			return fmt.Errorf("workload: cohort %d: scale must be in [0,%g], got %g", i, MaxCohortScale, c.Scale)
		}
	}
	if len(s.Phases) > MaxPhases {
		return fmt.Errorf("workload: %d phases exceed the limit %d", len(s.Phases), MaxPhases)
	}
	for i, ph := range s.Phases {
		if ph.Weight <= 0 {
			return fmt.Errorf("workload: phase %d: weight must be positive, got %g", i, ph.Weight)
		}
		switch ph.Process {
		case ProcessSteady, ProcessPoisson, ProcessBursty:
		default:
			return fmt.Errorf("workload: phase %d: unknown process %q (want steady, poisson, or bursty)", i, ph.Process)
		}
		if ph.BurstMean < 0 || ph.BurstMean > MaxBurstMean {
			return fmt.Errorf("workload: phase %d: burst mean must be in [0,%g], got %g", i, MaxBurstMean, ph.BurstMean)
		}
		if ph.BurstMean != 0 && ph.BurstMean < 1 {
			return fmt.Errorf("workload: phase %d: burst mean must be >= 1, got %g", i, ph.BurstMean)
		}
		if len(ph.Mix) != 0 && len(ph.Mix) != len(s.Cohorts) {
			return fmt.Errorf("workload: phase %d: mix has %d weights for %d cohorts", i, len(ph.Mix), len(s.Cohorts))
		}
		var sum float64
		for j, w := range ph.Mix {
			if w < 0 {
				return fmt.Errorf("workload: phase %d: mix weight %d is negative", i, j)
			}
			sum += w
		}
		if len(ph.Mix) != 0 && sum <= 0 {
			return fmt.Errorf("workload: phase %d: mix weights sum to zero", i)
		}
	}
	return nil
}

// stream is one cohort's prepared call source: its generated calls with the
// cohort's FuncID offset into the combined profile, consumed round-robin.
type stream struct {
	calls  []trace.FuncID
	offset trace.FuncID
	cursor int
}

// next yields the stream's next call, wrapping around when exhausted — a
// tenant's workload loops, it does not stop serving.
func (st *stream) next() trace.FuncID {
	f := st.calls[st.cursor] + st.offset
	st.cursor++
	if st.cursor == len(st.calls) {
		st.cursor = 0
	}
	return f
}

// Render materializes the spec: the mixed call sequence plus the combined
// timing profile (cohort profiles concatenated, FuncIDs offset so tenants
// never collide). Same spec, same bytes — rendering draws only from the
// spec's Seed.
func (s *Spec) Render() (*trace.Trace, *profile.Profile, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}

	streams := make([]*stream, len(s.Cohorts))
	combined := &profile.Profile{}
	for i, c := range s.Cohorts {
		b, err := dacapo.ByName(c.Bench)
		if err != nil {
			return nil, nil, err
		}
		scale := c.Scale
		if scale == 0 {
			scale = DefaultCohortScale
		}
		w, err := b.Load(scale)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: cohort %d (%s): %w", i, c.Bench, err)
		}
		if w.Trace.Len() == 0 {
			return nil, nil, fmt.Errorf("workload: cohort %d (%s): empty stream", i, c.Bench)
		}
		if i == 0 {
			combined.Levels = w.Profile.Levels
		} else if w.Profile.Levels != combined.Levels {
			return nil, nil, fmt.Errorf("workload: cohort %d (%s): %d profile levels, cohort 0 has %d",
				i, c.Bench, w.Profile.Levels, combined.Levels)
		}
		streams[i] = &stream{calls: w.Trace.Calls, offset: trace.FuncID(len(combined.Funcs))}
		combined.Funcs = append(combined.Funcs, w.Profile.Funcs...)
	}

	phases := s.Phases
	if len(phases) == 0 {
		phases = []Phase{{Weight: 1, Process: ProcessSteady}}
	}

	rng := rand.New(rand.NewSource(s.Seed))
	calls := make([]trace.FuncID, 0, s.Length)
	var cumW, totW float64
	for _, ph := range phases {
		totW += ph.Weight
	}
	emittedBefore := 0
	for _, ph := range phases {
		cumW += ph.Weight
		// Largest-prefix split: phase p owns calls [len*cum(p-1)/tot,
		// len*cum(p)/tot), so rounding never loses or duplicates a slot.
		bound := int(float64(s.Length) * cumW / totW)
		if bound > s.Length {
			bound = s.Length
		}
		phaseLen := bound - emittedBefore
		emittedBefore = bound
		if phaseLen <= 0 {
			continue
		}
		mixPhase(rng, &calls, phaseLen, ph, streams)
	}
	// Float rounding can leave the last boundary a hair short of Length;
	// the final phase absorbs the remainder.
	if rem := s.Length - len(calls); rem > 0 {
		mixPhase(rng, &calls, rem, phases[len(phases)-1], streams)
	}
	return trace.New(s.Name, calls), combined, nil
}

// mixPhase appends phaseLen calls drawn from the streams under one phase's
// process and mix.
func mixPhase(rng *rand.Rand, calls *[]trace.FuncID, phaseLen int, ph Phase, streams []*stream) {
	weights := ph.Mix
	if len(weights) == 0 {
		weights = make([]float64, len(streams))
		for i := range weights {
			weights[i] = 1
		}
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}

	// pick draws one cohort index by the mix weights.
	pick := func() int {
		u := rng.Float64() * sum
		for i, w := range weights {
			u -= w
			if u < 0 {
				return i
			}
		}
		return len(weights) - 1
	}

	switch ph.Process {
	case ProcessSteady:
		// Weighted round-robin on accumulated credit: deterministic, and the
		// emitted proportions track the weights within one call at any prefix.
		credit := make([]float64, len(streams))
		for n := 0; n < phaseLen; n++ {
			best := -1
			for i := range credit {
				credit[i] += weights[i] / sum
				if weights[i] > 0 && (best < 0 || credit[i] > credit[best]) {
					best = i
				}
			}
			credit[best]--
			*calls = append(*calls, streams[best].next())
		}
	case ProcessPoisson:
		for n := 0; n < phaseLen; n++ {
			*calls = append(*calls, streams[pick()].next())
		}
	case ProcessBursty:
		mean := ph.BurstMean
		if mean == 0 {
			mean = DefaultBurstMean
		}
		for n := 0; n < phaseLen; {
			i := pick()
			// Geometric with the configured mean: success probability 1/mean,
			// capped the way trace.Generate caps its bursts.
			burst := 1
			for float64(burst) < 64*mean && rng.Float64() > 1/mean {
				burst++
			}
			for k := 0; k < burst && n < phaseLen; k++ {
				*calls = append(*calls, streams[i].next())
				n++
			}
		}
	}
}
