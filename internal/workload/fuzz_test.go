package workload

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// FuzzWorkloadSpec feeds arbitrary JSON through the spec codec and, for
// anything accepted, demands the full pipeline holds: the spec re-encodes
// and re-parses to an equivalent document, the render is deterministic and
// structurally valid, and the rendered trace survives the binary codec.
// Expensive specs (long renders, big cohort scales) are skipped, not
// shrunk — the fuzzer explores the codec and generator logic, not the
// benchmark loader's throughput.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add(`{"name":"one","seed":1,"length":64,"cohorts":[{"bench":"fop","scale":0.01}]}`)
	f.Add(`{"name":"two","seed":-9,"length":128,"cohorts":[{"bench":"luindex","scale":0.01},{"bench":"lusearch","scale":0.01}]}`)
	f.Add(`{"name":"phases","seed":7,"length":200,"cohorts":[{"bench":"antlr","scale":0.01}],` +
		`"phases":[{"weight":1,"process":"steady"},{"weight":2,"process":"poisson"}]}`)
	f.Add(`{"name":"bursty","seed":3,"length":150,"cohorts":[{"bench":"pmd","scale":0.01},{"bench":"hsqldb","scale":0.01}],` +
		`"phases":[{"weight":1,"process":"bursty","burst_mean":4,"mix":[1,3]}]}`)
	f.Add(`{"name":"silenced","seed":11,"length":90,"cohorts":[{"bench":"bloat","scale":0.01},{"bench":"eclipse","scale":0.01}],` +
		`"phases":[{"weight":1,"process":"steady","mix":[0,1]}]}`)
	f.Add(`{"name":"empty","seed":0,"length":0,"cohorts":[{"bench":"jython","scale":0.01}]}`)
	f.Add(`{"name":"bad","seed":1,"length":10,"cohorts":[{"bench":"nope"}]}`)
	f.Add(`not json at all`)

	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseSpec([]byte(data))
		if err != nil {
			return
		}
		// Keep accepted-but-expensive specs out of the render path; the
		// codec properties above already ran on them.
		if s.Length > 4096 {
			return
		}
		for _, c := range s.Cohorts {
			if c.Scale > 0.02 || c.Scale == 0 {
				return
			}
		}

		var enc bytes.Buffer
		if err := WriteSpec(&enc, s); err != nil {
			t.Fatalf("re-encode of accepted spec failed: %v", err)
		}
		again, err := ParseSpec(enc.Bytes())
		if err != nil {
			t.Fatalf("re-parse of re-encoded spec failed: %v\nspec: %s", err, enc.Bytes())
		}
		var enc2 bytes.Buffer
		if err := WriteSpec(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatalf("spec encoding unstable:\n%s\nvs\n%s", enc.Bytes(), enc2.Bytes())
		}

		tr, p, err := s.Render()
		if err != nil {
			t.Fatalf("accepted spec failed to render: %v\nspec: %s", err, enc.Bytes())
		}
		if tr.Len() != s.Length {
			t.Fatalf("rendered %d calls for Length %d", tr.Len(), s.Length)
		}
		if err := tr.Validate(p.NumFuncs()); err != nil {
			t.Fatalf("rendered trace invalid: %v", err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("combined profile invalid: %v", err)
		}
		tr2, _, err := s.Render()
		if err != nil {
			t.Fatal(err)
		}
		if len(tr2.Calls) != len(tr.Calls) {
			t.Fatal("second render changed length")
		}
		for i := range tr.Calls {
			if tr.Calls[i] != tr2.Calls[i] {
				t.Fatalf("render not deterministic at call %d", i)
			}
		}

		var bin bytes.Buffer
		if err := trace.WriteBinary(&bin, tr); err != nil {
			t.Fatalf("rendered trace failed to encode: %v", err)
		}
		back, err := trace.ReadBinary(&bin)
		if err != nil {
			t.Fatalf("rendered trace failed to decode: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatal("trace codec round trip changed length")
		}
		for i := range tr.Calls {
			if back.Calls[i] != tr.Calls[i] {
				t.Fatalf("trace codec round trip changed call %d", i)
			}
		}
	})
}
