// Package online is the online counterpart of the paper's offline OCSP
// study: schedulers observe the call stream through a bounded lookahead
// window and irrevocably commit compile events as simulated time advances,
// the way a real JIT must. The gap to the offline schedule — the regret —
// is the price of not knowing the future.
//
// # Commitment model
//
// The engine replays the trace call by call under exactly the timing model
// of internal/sim (one execution worker, W >= 1 compile workers, bubbles
// while execution waits for code). Before each call i it shows the
// scheduler the visible prefix — the first min(i+window, N) calls, i.e.
// everything executed so far plus the next window-1 future calls — and the
// current simulated time. Whatever compile events the scheduler returns are
// committed immediately: each is assigned to the earliest-free compile
// worker with its arrival at the current time, and can never be revoked or
// reordered. Commitments are monotone per function: an event at or below
// the function's highest committed level is dropped (it could only build a
// version that "latest finished at or before t" lookups would use to
// downgrade later calls).
//
// With window = 0 (unbounded), the scheduler sees the whole trace before
// the first call and time is still zero, so every commitment lands exactly
// where a static sim.Run schedule would: an unbounded online run of a plan
// is bit-identical to the offline replay of that plan. That identity is the
// backbone of the package's tests.
//
// If execution reaches a call whose function has no committed compilation,
// the engine force-commits a lowest-level compile at the current time — the
// on-demand fallback every real runtime has — and counts it in
// Result.Forced.
package online

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scheduler is an online compilation scheduler. Observe is called once
// before each call executes, with the call's index, the visible prefix of
// the trace (the scheduler must treat it as read-only and may retain
// nothing of it), and the current simulated time. The returned events are
// committed in order at the current time; returning nil commits nothing.
type Scheduler interface {
	Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error)
}

// Options configures an online run.
type Options struct {
	// Window is the lookahead: before call i the scheduler sees calls
	// [0, i+Window). 0 means unbounded — the whole trace is visible from the
	// start, reproducing the offline setting. Window >= 1 guarantees the
	// current call is always visible.
	Window int
	// Config selects the machine configuration (sim.DefaultConfig() if the
	// worker count is zero).
	Config sim.Config
	// RecordCalls captures per-call start times and code levels.
	RecordCalls bool
	// Interrupt, when non-nil, abandons the run once the channel is closed,
	// returning sim.ErrInterrupted — the same contract as sim.Options.
	Interrupt <-chan struct{}
	// Metrics, when non-nil, receives the run's online counters.
	Metrics *obs.Metrics
}

// interruptStride matches internal/sim: the execution loop polls Interrupt
// every this many calls.
const interruptStride = 1024

// Result reports an online run: the simulated execution (the same fields a
// static sim.Run yields) plus the commitment record.
type Result struct {
	// Sim is the execution result; with an unbounded window it is
	// field-for-field identical to replaying Schedule through sim.Run.
	Sim *sim.Result
	// Schedule is the committed compile sequence, in commitment order —
	// including forced on-demand compiles, excluding dropped non-upgrades.
	Schedule sim.Schedule
	// Forced counts lowest-level compiles the engine had to commit because
	// execution reached a function the scheduler never covered.
	Forced int
	// Dropped counts scheduler events skipped because the function already
	// had a commitment at that level or higher.
	Dropped int
	// Window echoes Options.Window.
	Window int
}

// Regret is the online run's make-span excess over an offline reference, in
// percent: 100 * (online - offline) / offline.
func Regret(online, offline int64) float64 {
	if offline <= 0 {
		return 0
	}
	return 100 * float64(online-offline) / float64(offline)
}

// versionList mirrors internal/sim's: one function's finished compilations
// ordered by finish time, for "latest finished at or before t" lookups.
type versionList struct {
	done   []int64
	levels []profile.Level
}

func (v *versionList) insert(done int64, l profile.Level) {
	i := len(v.done)
	for i > 0 && v.done[i-1] > done {
		i--
	}
	v.done = append(v.done, 0)
	v.levels = append(v.levels, 0)
	copy(v.done[i+1:], v.done[i:])
	copy(v.levels[i+1:], v.levels[i:])
	v.done[i] = done
	v.levels[i] = l
}

func (v *versionList) latestAt(t int64) (profile.Level, bool) {
	for i := len(v.done) - 1; i >= 0; i-- {
		if v.done[i] <= t {
			return v.levels[i], true
		}
	}
	return 0, false
}

func (v *versionList) firstReady() int64 {
	if len(v.done) == 0 {
		return -1
	}
	return v.done[0]
}

// workerPool assigns compile jobs to the earliest-free of w workers,
// exactly as internal/sim does.
type workerPool struct {
	free []int64
}

func (p *workerPool) assign(arrival, duration int64) (int, int64, int64) {
	best := 0
	for i, f := range p.free {
		if f < p.free[best] {
			best = i
		}
	}
	start := p.free[best]
	if arrival > start {
		start = arrival
	}
	done := start + duration
	p.free[best] = done
	return best, start, done
}

func interrupted(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Run replays the trace under the online commitment model.
func Run(tr *trace.Trace, p *profile.Profile, sched Scheduler, opts Options) (*Result, error) {
	if opts.Window < 0 {
		return nil, fmt.Errorf("online: Window must be non-negative, got %d", opts.Window)
	}
	cfg := opts.Config
	if cfg.CompileWorkers == 0 {
		cfg = sim.DefaultConfig()
	}
	if cfg.CompileWorkers < 1 {
		return nil, fmt.Errorf("online: Config.CompileWorkers must be >= 1, got %d", cfg.CompileWorkers)
	}
	if sched == nil {
		return nil, fmt.Errorf("online: nil Scheduler")
	}
	if err := tr.Validate(p.NumFuncs()); err != nil {
		return nil, err
	}

	nf := p.NumFuncs()
	res := &Result{
		Sim:    &sim.Result{FirstReady: make([]int64, nf)},
		Window: opts.Window,
	}
	if opts.RecordCalls {
		res.Sim.CallStarts = make([]int64, 0, tr.Len())
		res.Sim.CallLevels = make([]profile.Level, 0, tr.Len())
	}
	versions := make([]versionList, nf)
	pool := &workerPool{free: make([]int64, cfg.CompileWorkers)}
	committed := make([]profile.Level, nf)
	for i := range committed {
		committed[i] = -1
	}

	// commit irrevocably assigns one compile event at the given time.
	commit := func(ev sim.CompileEvent, now int64) {
		w, start, done := pool.assign(now, p.CompileTime(ev.Func, ev.Level))
		res.Sim.Compiles = append(res.Sim.Compiles,
			sim.CompileRecord{Event: ev, Start: start, Done: done, Worker: w})
		versions[ev.Func].insert(done, ev.Level)
		res.Sim.CompileBusy += done - start
		if done > res.Sim.CompileEnd {
			res.Sim.CompileEnd = done
		}
		committed[ev.Func] = ev.Level
		res.Schedule = append(res.Schedule, ev)
	}

	intr := opts.Interrupt
	n := tr.Len()
	// The visible prefix is one extendable cursor over the trace, not a fresh
	// Slice per call: the window's forward edge only moves forward, so each
	// call extends the cursor by at most Window new calls and the derived
	// indices (counts, first calls, first-call order) are maintained in O(new)
	// instead of rebuilt in O(prefix) at every replan. The scheduler contract
	// already forbids retaining the visible trace across calls, which is
	// exactly the cursor view's validity window.
	cursor := trace.NewPrefix(tr)
	var execT int64
	for i, f := range tr.Calls {
		if intr != nil && i%interruptStride == 0 && interrupted(intr) {
			return nil, sim.ErrInterrupted
		}
		hi := n
		if opts.Window > 0 && i+opts.Window < n {
			hi = i + opts.Window
		}
		if err := cursor.Extend(hi); err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
		events, err := sched.Observe(i, cursor.Trace(), execT)
		if err != nil {
			return nil, fmt.Errorf("online: scheduler at call %d: %w", i, err)
		}
		for _, ev := range events {
			if ev.Func < 0 || int(ev.Func) >= nf {
				return nil, fmt.Errorf("online: scheduler committed unknown function %d at call %d", ev.Func, i)
			}
			if ev.Level < 0 || int(ev.Level) >= p.Levels {
				return nil, fmt.Errorf("online: scheduler committed level %d outside [0,%d) at call %d", ev.Level, p.Levels, i)
			}
			if ev.Level <= committed[ev.Func] {
				res.Dropped++
				continue
			}
			commit(ev, execT)
		}
		if versions[f].firstReady() < 0 {
			// On-demand fallback: nothing of f was ever committed, and the
			// executor is about to block on it forever.
			commit(sim.CompileEvent{Func: f, Level: 0}, execT)
			res.Forced++
		}

		start := execT
		if ready := versions[f].firstReady(); ready > start {
			start = ready
		}
		if start > execT {
			res.Sim.TotalBubble += start - execT
			res.Sim.BubbleCount++
		}
		level, ok := versions[f].latestAt(start)
		if !ok {
			return nil, fmt.Errorf("online: internal: no ready version of function %d at time %d", f, start)
		}
		dur := p.ExecTime(f, level)
		if opts.RecordCalls {
			res.Sim.CallStarts = append(res.Sim.CallStarts, start)
			res.Sim.CallLevels = append(res.Sim.CallLevels, level)
		}
		res.Sim.TotalExec += dur
		execT = start + dur
	}
	res.Sim.MakeSpan = execT
	for f := range versions {
		res.Sim.FirstReady[f] = versions[f].firstReady()
	}
	if opts.Metrics != nil {
		opts.Metrics.OnlineRun(int64(len(res.Schedule)), int64(res.Forced))
		opts.Metrics.SimRun(res.Sim.MakeSpan)
		if sr, ok := sched.(StatsReporter); ok {
			st := sr.SchedStats()
			opts.Metrics.OnlineSched(st.Replans, st.DirtySkips, st.SchedNanos)
		}
	}
	return res, nil
}
