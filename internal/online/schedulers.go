package online

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SchedStats is a scheduler's own cost accounting — the price of making the
// scheduling decisions, kept apart from the simulated workload the decisions
// produce (the SPDP framing: decision cost is work too).
type SchedStats struct {
	// Replans counts plans produced; DirtySkips the subset that took the
	// warm-start fast path (dirty set empty under the plan-stability check —
	// no structural rebuild, only O(new calls) simulation extensions).
	Replans    int64
	DirtySkips int64
	// SchedNanos is the wall time spent inside replans.
	SchedNanos int64
}

// StatsReporter is implemented by schedulers that account their own cost;
// the engine forwards the stats to Options.Metrics at the end of a run.
type StatsReporter interface {
	SchedStats() SchedStats
}

// IAR is the online adaptation of the paper's offline IAR scheme: it
// periodically replans over the visible prefix and commits only the
// per-function level upgrades the new plan introduces, in plan order.
// Earlier commitments are sunk — the merge never retracts, so a bad early
// guess costs exactly one wasted compilation, as it would in a real runtime.
//
// Replanning is incremental: a core.IARPlanner carries the per-function
// classification, the n1 frontier, and the previous plan's schedules across
// replans, so each replan costs O(new calls) when the visible prefix's
// growth didn't change any classification — and two simulation passes
// instead of four when it did. The plans are bit-identical to from-scratch
// IAR on every prefix (see core.IARPlanner), so the committed stream equals
// IARFromScratch's exactly; the differential tests pin that across
// window/stride matrices.
//
// With an unbounded window the first Observe sees the whole trace, the plan
// is the offline plan, and no later replan fires (the visible prefix never
// grows again) — which is how the engine's unbounded run reproduces offline
// IAR bit for bit.
type IAR struct {
	stride  int
	planned int // visible length when the last plan ran, -1 before the first
	emitted []profile.Level
	planner *core.IARPlanner
	err     error
	// out is the reusable emit buffer: the slice returned by Observe is
	// valid only until the next Observe call, which is all the engine's
	// immediate commit loop needs.
	out   []sim.CompileEvent
	stats SchedStats
}

// DefaultReplanStride is how much the visible prefix must grow between IAR
// replans when NewIAR is given a non-positive stride.
const DefaultReplanStride = 512

// NewIAR returns an online IAR scheduler over the profile. opts are fixed
// for every replan; stride is the minimum visible-prefix growth between
// replans (DefaultReplanStride if non-positive). Invalid options surface on
// the first Observe, as they did when each replan validated them.
func NewIAR(p *profile.Profile, opts core.IAROptions, stride int) *IAR {
	if stride <= 0 {
		stride = DefaultReplanStride
	}
	emitted := make([]profile.Level, p.NumFuncs())
	for i := range emitted {
		emitted[i] = -1
	}
	planner, err := core.NewIARPlanner(p, opts)
	return &IAR{stride: stride, planned: -1, emitted: emitted, planner: planner, err: err}
}

// Replans returns how many times the scheduler has replanned so far.
func (s *IAR) Replans() int { return int(s.stats.Replans) }

// SchedStats implements StatsReporter.
func (s *IAR) SchedStats() SchedStats {
	st := s.stats
	if s.planner != nil {
		st.DirtySkips = s.planner.FastReplans()
	}
	return st
}

// Observe implements Scheduler. The returned slice aliases the scheduler's
// emit buffer and is valid until the next Observe.
func (s *IAR) Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.planned >= 0 && visible.Len() < s.planned+s.stride {
		return nil, nil
	}
	t0 := time.Now()
	plan, err := s.planner.Plan(visible)
	if err != nil {
		return nil, err
	}
	s.planned = visible.Len()
	s.stats.Replans++
	out := s.out[:0]
	for _, ev := range plan {
		if ev.Level > s.emitted[ev.Func] {
			s.emitted[ev.Func] = ev.Level
			out = append(out, ev)
		}
	}
	s.out = out
	s.stats.SchedNanos += time.Since(t0).Nanoseconds()
	return out, nil
}

// IARFromScratch is the pre-incremental replanning IAR scheduler, frozen as
// the reference implementation: every replan runs full IAR over the entire
// visible prefix on an arena — O(prefix) per replan, O(N²/stride) per
// stream. The incremental IAR must commit a bit-identical stream (the
// differential tests enforce it), and the speedup guard holds the
// incremental path to a minimum advantage over this one.
type IARFromScratch struct {
	p       *profile.Profile
	opts    core.IAROptions
	stride  int
	planned int
	emitted []profile.Level
	arena   *core.IARArena
	stats   SchedStats
}

// NewIARFromScratch returns the from-scratch reference replanner with the
// same knobs as NewIAR.
func NewIARFromScratch(p *profile.Profile, opts core.IAROptions, stride int) *IARFromScratch {
	if stride <= 0 {
		stride = DefaultReplanStride
	}
	emitted := make([]profile.Level, p.NumFuncs())
	for i := range emitted {
		emitted[i] = -1
	}
	return &IARFromScratch{p: p, opts: opts, stride: stride, planned: -1, emitted: emitted,
		arena: core.NewIARArena()}
}

// Replans returns how many times the scheduler has replanned so far.
func (s *IARFromScratch) Replans() int { return int(s.stats.Replans) }

// SchedStats implements StatsReporter. DirtySkips is always zero: this path
// rebuilds everything, every time.
func (s *IARFromScratch) SchedStats() SchedStats { return s.stats }

// Observe implements Scheduler.
func (s *IARFromScratch) Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error) {
	if s.planned >= 0 && visible.Len() < s.planned+s.stride {
		return nil, nil
	}
	t0 := time.Now()
	plan, err := s.arena.IAR(visible, s.p, s.opts)
	if err != nil {
		return nil, err
	}
	s.planned = visible.Len()
	s.stats.Replans++
	var out []sim.CompileEvent
	for _, ev := range plan {
		if ev.Level > s.emitted[ev.Func] {
			s.emitted[ev.Func] = ev.Level
			out = append(out, ev)
		}
	}
	s.stats.SchedNanos += time.Since(t0).Nanoseconds()
	return out, nil
}

// V8Style is the V8-like heuristic adapted to lookahead: every function is
// compiled at the lowest level the moment it first enters the visible
// window (lookahead turns V8's lazy first-call compile into a prefetch),
// and promoted straight to one high level on its second executed call —
// V8's "optimize on the next invocation after it turns warm" rule with the
// warm-up threshold of policy.V8.
type V8Style struct {
	levels  int
	high    profile.Level
	scanned int
	counts  []int64
	seen    []bool
}

// NewV8Style returns a V8-style scheduler promoting to the given high level
// (must be a real level above 0 in the profile).
func NewV8Style(p *profile.Profile, high profile.Level) (*V8Style, error) {
	if high < 1 || int(high) >= p.Levels {
		return nil, fmt.Errorf("online: V8 high level %d outside [1,%d)", high, p.Levels)
	}
	nf := p.NumFuncs()
	return &V8Style{levels: p.Levels, high: high, counts: make([]int64, nf), seen: make([]bool, nf)}, nil
}

// Observe implements Scheduler.
func (v *V8Style) Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error) {
	var out []sim.CompileEvent
	// Prefetch: baseline-compile every function newly revealed by the
	// window's forward edge since the last call.
	for _, f := range visible.Calls[v.scanned:] {
		if !v.seen[f] {
			v.seen[f] = true
			out = append(out, sim.CompileEvent{Func: f, Level: 0})
		}
	}
	v.scanned = visible.Len()
	f := visible.Calls[i]
	v.counts[f]++
	if v.counts[f] == 2 {
		out = append(out, sim.CompileEvent{Func: f, Level: v.high})
	}
	return out, nil
}

// Sampled is the Jikes-style sampling recompiler: it ignores the lookahead
// window entirely (a sampler only knows the past) and instead counts
// simulated-time sampling ticks against whichever function the execution
// worker was running — or blocked on — since the previous call, then
// applies the same cost-benefit upgrade rule as policy.Jikes: recompile to
// the level m minimizing e_m*k' + c_m when that beats staying put, with
// k' = samples*period/e_l the sample-estimated remaining invocations.
// Functions are baseline-compiled at their first executed call, like the
// real system's lazy first compile.
type Sampled struct {
	model   profile.CostModel
	period  int64
	lastNow int64
	seen    []int64
	level   []profile.Level
}

// NewSampled returns a sampling scheduler with the given cost-benefit model
// (nil means the oracle over p) and sampling period in ticks.
func NewSampled(p *profile.Profile, model profile.CostModel, period int64) (*Sampled, error) {
	if period <= 0 {
		return nil, fmt.Errorf("online: sampling period must be positive, got %d", period)
	}
	if model == nil {
		model = profile.NewOracle(p)
	}
	nf := p.NumFuncs()
	level := make([]profile.Level, nf)
	for i := range level {
		level[i] = -1
	}
	return &Sampled{model: model, period: period, seen: make([]int64, nf), level: level}, nil
}

// Observe implements Scheduler.
func (s *Sampled) Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error) {
	var out []sim.CompileEvent
	if i > 0 {
		// Sampling ticks that landed in (lastNow, now] hit the previous
		// call's function — it held the execution worker for that span.
		prev := visible.Calls[i-1]
		if n := now/s.period - s.lastNow/s.period; n > 0 {
			s.seen[prev] += n
			if ev := s.evaluate(prev); ev != nil {
				out = append(out, *ev)
			}
		}
	}
	s.lastNow = now
	f := visible.Calls[i]
	if s.level[f] < 0 {
		s.level[f] = 0
		out = append(out, sim.CompileEvent{Func: f, Level: 0})
	}
	return out, nil
}

// evaluate applies the Jikes cost-benefit rule to one sampled function and
// returns the upgrade to commit, if any.
func (s *Sampled) evaluate(f trace.FuncID) *sim.CompileEvent {
	l := s.level[f]
	if l < 0 {
		return nil
	}
	el := s.model.ExecTime(f, l)
	if el <= 0 {
		return nil
	}
	kEff := s.seen[f] * s.period / el
	if kEff <= 0 {
		kEff = 1
	}
	stay := el * kEff
	best := profile.Level(-1)
	var bestCost int64
	for m := l + 1; int(m) < s.model.Levels(); m++ {
		cost := s.model.ExecTime(f, m)*kEff + s.model.CompileTime(f, m)
		if cost < stay && (best < 0 || cost < bestCost) {
			best, bestCost = m, cost
		}
	}
	if best < 0 {
		return nil
	}
	s.level[f] = best
	return &sim.CompileEvent{Func: f, Level: best}
}
