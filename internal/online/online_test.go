package online_test

// The backbone invariant of the online harness — an unbounded-window online
// IAR run is bit-identical to the offline core.IAR schedule replayed through
// sim.Run — plus the commitment-model properties every online run must hold:
// the §5 lower bound, exact make-span accounting, compile-worker
// non-overlap, per-call level reconstruction from the commit records, and
// arrival-respecting compiles (nothing starts before it was committed).

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// corpus loads every DaCapo-derived benchmark at a small scale — the same
// nine traces the offline golden tests run over, shrunk to keep the suite
// fast while preserving each benchmark's structure.
func corpus(t *testing.T) []*dacapo.Workload {
	t.Helper()
	var ws []*dacapo.Workload
	for _, name := range dacapo.Names() {
		b, err := dacapo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := b.Load(0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestUnboundedIARBitIdentical holds the harness to the ISSUE's backbone
// invariant on the full corpus, for one and several compile workers.
func TestUnboundedIARBitIdentical(t *testing.T) {
	for _, w := range corpus(t) {
		for _, workers := range []int{1, 2, 4} {
			cfg := sim.Config{CompileWorkers: workers}
			offline, err := core.IAR(w.Trace, w.Profile, core.IAROptions{})
			if err != nil {
				t.Fatalf("%s: offline IAR: %v", w.Bench.Name, err)
			}
			want, err := sim.Run(w.Trace, w.Profile, offline, cfg, sim.Options{RecordCalls: true})
			if err != nil {
				t.Fatalf("%s: offline replay: %v", w.Bench.Name, err)
			}
			res, err := online.Run(w.Trace, w.Profile, online.NewIAR(w.Profile, core.IAROptions{}, 0),
				online.Options{Window: 0, Config: cfg, RecordCalls: true})
			if err != nil {
				t.Fatalf("%s: online run: %v", w.Bench.Name, err)
			}
			if res.Forced != 0 || res.Dropped != 0 {
				t.Fatalf("%s/w%d: unbounded IAR forced %d, dropped %d; want 0, 0",
					w.Bench.Name, workers, res.Forced, res.Dropped)
			}
			if !reflect.DeepEqual(res.Schedule, offline) {
				t.Fatalf("%s/w%d: committed schedule differs from offline IAR", w.Bench.Name, workers)
			}
			if !reflect.DeepEqual(res.Sim, want) {
				t.Fatalf("%s/w%d: online result differs from offline replay:\nonline:  %+v\noffline: %+v",
					w.Bench.Name, workers, res.Sim, want)
			}
		}
	}
}

// TestWindowWideningNeverHurts checks that on the fixed corpus, each
// scheduler's make-span is non-increasing as the lookahead window widens —
// shrinking the window never improves the result. (This is an empirical
// property of heuristics held on a pinned deterministic corpus, not a
// theorem; the corpus is part of the contract.)
//
// The reactive schedulers hold it through the unbounded window. Replanning
// IAR holds it over the bounded ladder only: its unbounded run IS the
// one-shot offline plan (the backbone invariant above), and incremental
// commitment under a wide bounded window beats that plan on most of the
// corpus — replans order hot-function upgrades ahead of cold functions'
// initial compiles, which the offline schedule's init-then-upgrade layout
// never does. TestBoundedIARBeatsOfflineSomewhere pins that crossover.
func TestWindowWideningNeverHurts(t *testing.T) {
	scheds := map[string]struct {
		mk      func(p *profile.Profile) online.Scheduler
		windows []int
	}{
		"iar": {
			mk: func(p *profile.Profile) online.Scheduler {
				return online.NewIAR(p, core.IAROptions{}, 0)
			},
			windows: []int{16, 64, 256, 1024, 4096},
		},
		"v8": {
			mk: func(p *profile.Profile) online.Scheduler {
				s, err := online.NewV8Style(p, profile.Level(p.Levels-1))
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			windows: []int{16, 64, 256, 1024, 4096, 0},
		},
		"sampled": {
			mk: func(p *profile.Profile) online.Scheduler {
				s, err := online.NewSampled(p, nil, 100)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			windows: []int{16, 64, 256, 1024, 4096, 0},
		},
	}
	for _, w := range corpus(t) {
		for name, sc := range scheds {
			prev := int64(-1)
			prevWin := 0
			for _, win := range sc.windows {
				res, err := online.Run(w.Trace, w.Profile, sc.mk(w.Profile),
					online.Options{Window: win, Config: sim.DefaultConfig()})
				if err != nil {
					t.Fatalf("%s/%s/window=%d: %v", w.Bench.Name, name, win, err)
				}
				if prev >= 0 && res.Sim.MakeSpan > prev {
					t.Errorf("%s/%s: window %d make-span %d worse than window %d's %d",
						w.Bench.Name, name, win, res.Sim.MakeSpan, prevWin, prev)
				}
				prev, prevWin = res.Sim.MakeSpan, win
			}
		}
	}
}

// TestBoundedIARBeatsOfflineSomewhere pins the crossover that keeps IAR's
// unbounded window out of the monotone ladder above: on this corpus, a wide
// bounded window with replanning achieves a LOWER make-span than offline
// IAR on at least one benchmark. Offline IAR is a heuristic (the paper puts
// it ~14% above the feasibility limit), and deferred commitment is one of
// the gaps. If this test ever fails, the monotone ladder above can be
// extended to the unbounded window.
func TestBoundedIARBeatsOfflineSomewhere(t *testing.T) {
	beats := 0
	for _, w := range corpus(t) {
		bounded, err := online.Run(w.Trace, w.Profile, online.NewIAR(w.Profile, core.IAROptions{}, 0),
			online.Options{Window: 4096, Config: sim.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		unbounded, err := online.Run(w.Trace, w.Profile, online.NewIAR(w.Profile, core.IAROptions{}, 0),
			online.Options{Window: 0, Config: sim.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if bounded.Sim.MakeSpan < unbounded.Sim.MakeSpan {
			beats++
		}
	}
	if beats == 0 {
		t.Error("window=4096 never beat the offline plan — the ladder in TestWindowWideningNeverHurts can include window 0 again")
	}
}

// checkCommitted verifies the §5 and accounting properties on an online
// run's result, reconstructing per-call levels independently from the
// commit records (the online analogue of the sim package's property suite).
func checkCommitted(t *testing.T, tr *trace.Trace, p *profile.Profile, cfg sim.Config, res *online.Result) {
	t.Helper()
	r := res.Sim
	if r.MakeSpan != r.TotalExec+r.TotalBubble {
		t.Fatalf("MakeSpan %d != TotalExec %d + TotalBubble %d", r.MakeSpan, r.TotalExec, r.TotalBubble)
	}
	var lb int64
	for _, f := range tr.Calls {
		lb += p.BestExecTime(f)
	}
	if r.MakeSpan < lb {
		t.Fatalf("MakeSpan %d below the §5 lower bound %d", r.MakeSpan, lb)
	}
	if len(res.Schedule) != len(r.Compiles) {
		t.Fatalf("%d committed events but %d compile records", len(res.Schedule), len(r.Compiles))
	}
	busyUntil := make(map[int]int64)
	for i, c := range r.Compiles {
		if c.Event != res.Schedule[i] {
			t.Fatalf("compile record %d is %+v, committed event is %+v", i, c.Event, res.Schedule[i])
		}
		if c.Worker < 0 || c.Worker >= cfg.CompileWorkers {
			t.Fatalf("compile %d on worker %d outside [0,%d)", i, c.Worker, cfg.CompileWorkers)
		}
		if got, want := c.Done-c.Start, p.CompileTime(c.Event.Func, c.Event.Level); got != want {
			t.Fatalf("compile %d spans %d ticks, profile says %d", i, got, want)
		}
		if c.Start < busyUntil[c.Worker] {
			t.Fatalf("worker %d overlaps: compile %d starts at %d before previous job ends at %d",
				c.Worker, i, c.Start, busyUntil[c.Worker])
		}
		busyUntil[c.Worker] = c.Done
	}
	if len(r.CallStarts) != tr.Len() || len(r.CallLevels) != tr.Len() {
		t.Fatalf("recorded %d starts / %d levels for %d calls", len(r.CallStarts), len(r.CallLevels), tr.Len())
	}
	prevEnd := int64(0)
	for i, f := range tr.Calls {
		start := r.CallStarts[i]
		if start < prevEnd {
			t.Fatalf("call %d starts at %d before call %d finished at %d", i, start, i-1, prevEnd)
		}
		latestDone, latestLevel := int64(-1), profile.Level(-1)
		for _, c := range r.Compiles {
			if c.Event.Func == f && c.Done <= start && c.Done >= latestDone {
				latestDone, latestLevel = c.Done, c.Event.Level
			}
		}
		if latestDone < 0 {
			t.Fatalf("call %d of func %d started at %d before any compilation finished", i, f, start)
		}
		if r.CallLevels[i] != latestLevel {
			t.Fatalf("call %d of func %d ran at level %d, latest finished compilation is level %d",
				i, f, r.CallLevels[i], latestLevel)
		}
		prevEnd = start + p.ExecTime(f, r.CallLevels[i])
	}
	if tr.Len() > 0 && r.MakeSpan != prevEnd {
		t.Fatalf("MakeSpan %d != last call end %d", r.MakeSpan, prevEnd)
	}
}

// streamCorpus renders a small multi-tenant streaming workload for the
// scheduler property runs.
func streamCorpus(t *testing.T) (*trace.Trace, *profile.Profile) {
	t.Helper()
	spec := &workload.Spec{
		Name: "prop-stream", Seed: 7, Length: 6000,
		Cohorts: []workload.Cohort{{Bench: "luindex", Scale: 0.05}, {Bench: "fop", Scale: 0.05}},
		Phases: []workload.Phase{
			{Weight: 1, Process: workload.ProcessSteady},
			{Weight: 1, Process: workload.ProcessBursty, Mix: []float64{1, 3}},
		},
	}
	tr, p, err := spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

// TestCommittedScheduleProperties drives every scheduler through bounded
// windows on both DaCapo and streaming traces and holds each committed
// schedule to the property suite.
func TestCommittedScheduleProperties(t *testing.T) {
	type workloadCase struct {
		name string
		tr   *trace.Trace
		p    *profile.Profile
	}
	var cases []workloadCase
	for _, w := range corpus(t)[:3] {
		cases = append(cases, workloadCase{w.Bench.Name, w.Trace, w.Profile})
	}
	str, sp := streamCorpus(t)
	cases = append(cases, workloadCase{"stream", str, sp})

	scheds := map[string]func(p *profile.Profile) online.Scheduler{
		"iar": func(p *profile.Profile) online.Scheduler {
			return online.NewIAR(p, core.IAROptions{}, 0)
		},
		"v8": func(p *profile.Profile) online.Scheduler {
			s, err := online.NewV8Style(p, profile.Level(p.Levels-1))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"sampled": func(p *profile.Profile) online.Scheduler {
			s, err := online.NewSampled(p, nil, 100)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for _, c := range cases {
		for name, mk := range scheds {
			for _, win := range []int{1, 64, 1024, 0} {
				cfg := sim.Config{CompileWorkers: 2}
				res, err := online.Run(c.tr, c.p, mk(c.p),
					online.Options{Window: win, Config: cfg, RecordCalls: true})
				if err != nil {
					t.Fatalf("%s/%s/window=%d: %v", c.name, name, win, err)
				}
				checkCommitted(t, c.tr, c.p, cfg, res)
			}
		}
	}
}

// nullScheduler commits nothing; the engine's forced on-demand fallback
// must carry the whole run.
type nullScheduler struct{}

func (nullScheduler) Observe(int, *trace.Trace, int64) ([]sim.CompileEvent, error) {
	return nil, nil
}

func TestForcedFallbackCoversEverything(t *testing.T) {
	w := corpus(t)[0]
	cfg := sim.DefaultConfig()
	res, err := online.Run(w.Trace, w.Profile, nullScheduler{},
		online.Options{Config: cfg, Window: 1, RecordCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced != w.Trace.UniqueFuncs() {
		t.Fatalf("forced %d compiles, want one per unique function (%d)", res.Forced, w.Trace.UniqueFuncs())
	}
	for _, ev := range res.Schedule {
		if ev.Level != 0 {
			t.Fatalf("forced commit at level %d, want 0", ev.Level)
		}
	}
	checkCommitted(t, w.Trace, w.Profile, cfg, res)
}

// dupScheduler re-commits {f, 0} for the current call's function every
// time — everything after the first per function must be dropped.
type dupScheduler struct{}

func (dupScheduler) Observe(i int, visible *trace.Trace, now int64) ([]sim.CompileEvent, error) {
	return []sim.CompileEvent{{Func: visible.Calls[i], Level: 0}}, nil
}

func TestNonUpgradesAreDropped(t *testing.T) {
	w := corpus(t)[0]
	res, err := online.Run(w.Trace, w.Profile, dupScheduler{},
		online.Options{Config: sim.DefaultConfig(), Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced != 0 {
		t.Fatalf("forced %d compiles despite the scheduler covering every call", res.Forced)
	}
	if want := w.Trace.Len() - w.Trace.UniqueFuncs(); res.Dropped != want {
		t.Fatalf("dropped %d events, want %d", res.Dropped, want)
	}
	if len(res.Schedule) != w.Trace.UniqueFuncs() {
		t.Fatalf("committed %d events, want %d", len(res.Schedule), w.Trace.UniqueFuncs())
	}
}

func TestInterrupt(t *testing.T) {
	w := corpus(t)[0]
	ch := make(chan struct{})
	close(ch)
	_, err := online.Run(w.Trace, w.Profile, online.NewIAR(w.Profile, core.IAROptions{}, 0),
		online.Options{Config: sim.DefaultConfig(), Interrupt: ch})
	if err != sim.ErrInterrupted {
		t.Fatalf("got %v, want sim.ErrInterrupted", err)
	}
}

func TestRunValidates(t *testing.T) {
	w := corpus(t)[0]
	sched := online.NewIAR(w.Profile, core.IAROptions{}, 0)
	if _, err := online.Run(w.Trace, w.Profile, sched, online.Options{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := online.Run(w.Trace, w.Profile, nil, online.Options{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := online.Run(w.Trace, w.Profile, sched, online.Options{Config: sim.Config{CompileWorkers: -1}}); err == nil {
		t.Error("negative worker count accepted")
	}
}

func TestMetricsReported(t *testing.T) {
	w := corpus(t)[0]
	var m obs.Metrics
	res, err := online.Run(w.Trace, w.Profile, nullScheduler{},
		online.Options{Config: sim.DefaultConfig(), Window: 1, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.OnlineRuns != 1 {
		t.Fatalf("OnlineRuns = %d, want 1", snap.OnlineRuns)
	}
	if snap.OnlineCommits != int64(len(res.Schedule)) || snap.OnlineForced != int64(res.Forced) {
		t.Fatalf("metrics report %d commits / %d forced, result says %d / %d",
			snap.OnlineCommits, snap.OnlineForced, len(res.Schedule), res.Forced)
	}
	if snap.SimRuns != 1 {
		t.Fatalf("SimRuns = %d, want 1", snap.SimRuns)
	}
}

func TestRegret(t *testing.T) {
	if got := online.Regret(110, 100); got != 10 {
		t.Fatalf("Regret(110,100) = %g, want 10", got)
	}
	if got := online.Regret(100, 100); got != 0 {
		t.Fatalf("Regret(100,100) = %g, want 0", got)
	}
	if got := online.Regret(50, 0); got != 0 {
		t.Fatalf("Regret(50,0) = %g, want 0", got)
	}
}
