package online_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchSpec is a small streaming workload — large enough that the replanning
// IAR scheduler actually replans, small enough that one run is milliseconds.
func benchSpec() *workload.Spec {
	return &workload.Spec{
		Name: "bench-stream", Seed: 7, Length: 8000,
		Cohorts: []workload.Cohort{
			{Bench: "luindex", Scale: 0.05},
			{Bench: "fop", Scale: 0.05},
		},
		Phases: []workload.Phase{
			{Weight: 2, Process: workload.ProcessSteady},
			{Weight: 1, Process: workload.ProcessBursty, BurstMean: 8},
		},
	}
}

// BenchmarkOnlineWindow runs the replanning IAR scheduler across the
// lookahead ladder and reports the regret against offline IAR alongside the
// timing, so BENCH_online.json records both cost and quality per window.
func BenchmarkOnlineWindow(b *testing.B) {
	tr, p, err := benchSpec().Render()
	if err != nil {
		b.Fatal(err)
	}
	offSched, err := core.IAR(tr, p, core.IAROptions{})
	if err != nil {
		b.Fatal(err)
	}
	offRes, err := sim.Run(tr, p, offSched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, win := range []int{64, 512, 4096, 0} {
		name := fmt.Sprintf("window=%d", win)
		if win == 0 {
			name = "window=inf"
		}
		b.Run(name, func(b *testing.B) {
			var last *online.Result
			var stats online.SchedStats
			for i := 0; i < b.N; i++ {
				sched := online.NewIAR(p, core.IAROptions{}, 0)
				res, err := online.Run(tr, p, sched, online.Options{Window: win})
				if err != nil {
					b.Fatal(err)
				}
				last = res
				stats = sched.SchedStats()
			}
			b.ReportMetric(online.Regret(last.Sim.MakeSpan, offRes.MakeSpan), "regret%")
			b.ReportMetric(float64(len(last.Schedule)), "commits")
			b.ReportMetric(float64(stats.SchedNanos)/float64(tr.Len()), "sched-ns/call")
		})
	}
}

// BenchmarkOnlineLongStream is the incremental-replanning headline number: a
// stream an order of magnitude longer than benchSpec, where from-scratch
// replanning's O(N²/stride) scheduler-side cost dominates. It reports the
// warm-start scheduler's cost per call and its speedup over the frozen
// from-scratch reference (measured once, outside the timed loop).
func BenchmarkOnlineLongStream(b *testing.B) {
	spec := &workload.Spec{
		Name: "bench-long-stream", Seed: 7, Length: 80000,
		Cohorts: []workload.Cohort{
			{Bench: "luindex", Scale: 0.25},
			{Bench: "fop", Scale: 0.25},
			{Bench: "antlr", Scale: 0.25},
		},
		Phases: []workload.Phase{
			{Weight: 2, Process: workload.ProcessSteady},
			{Weight: 1, Process: workload.ProcessBursty, BurstMean: 8},
		},
	}
	tr, p, err := spec.Render()
	if err != nil {
		b.Fatal(err)
	}
	const win = 4096
	var stats online.SchedStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := online.NewIAR(p, core.IAROptions{}, 0)
		if _, err := online.Run(tr, p, sched, online.Options{Window: win}); err != nil {
			b.Fatal(err)
		}
		stats = sched.SchedStats()
	}
	b.StopTimer()
	ref := online.NewIARFromScratch(p, core.IAROptions{}, 0)
	if _, err := online.Run(tr, p, ref, online.Options{Window: win}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(stats.SchedNanos)/float64(tr.Len()), "sched-ns/call")
	b.ReportMetric(float64(ref.SchedStats().SchedNanos)/float64(stats.SchedNanos), "replan-speedup")
}

// BenchmarkOnlineSchedulers compares the three schedulers at one bounded
// window, the cost of a decision step being the interesting number.
func BenchmarkOnlineSchedulers(b *testing.B) {
	tr, p, err := benchSpec().Render()
	if err != nil {
		b.Fatal(err)
	}
	mk := map[string]func() (online.Scheduler, error){
		"iar": func() (online.Scheduler, error) {
			return online.NewIAR(p, core.IAROptions{}, 0), nil
		},
		"v8": func() (online.Scheduler, error) {
			return online.NewV8Style(p, profile.Level(p.Levels-1))
		},
		"sampled": func() (online.Scheduler, error) {
			return online.NewSampled(p, nil, 100)
		},
	}
	for _, name := range []string{"iar", "v8", "sampled"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched, err := mk[name]()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := online.Run(tr, p, sched, online.Options{Window: 1024}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadRender times the generator itself.
func BenchmarkWorkloadRender(b *testing.B) {
	s := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Render(); err != nil {
			b.Fatal(err)
		}
	}
}
