package online_test

// The incremental-replanning contract: online.IAR (warm-start planner,
// O(Δ) replans) must commit a stream bit-identical to online.IARFromScratch
// (the frozen reference that reruns full IAR over the visible prefix at
// every replan), with the same replan decisions, across the window × stride
// matrix on DaCapo traces, rendered streaming workloads, and the pinned
// experiment streams. The planner-level bit-identity lives in
// core.IARPlanner's tests; these runs pin the whole committed pipeline —
// cursor, merge, emit buffer — end to end.

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// diffIAR runs the incremental and from-scratch schedulers over the same
// trace and asserts identical commitment streams, simulation results, and
// replan decisions.
func diffIAR(t *testing.T, label string, tr *trace.Trace, p *profile.Profile, opts core.IAROptions, win, stride int) {
	t.Helper()
	inc := online.NewIAR(p, opts, stride)
	ref := online.NewIARFromScratch(p, opts, stride)
	got, err := online.Run(tr, p, inc, online.Options{Window: win, Config: sim.DefaultConfig(), RecordCalls: true})
	if err != nil {
		t.Fatalf("%s: incremental: %v", label, err)
	}
	want, err := online.Run(tr, p, ref, online.Options{Window: win, Config: sim.DefaultConfig(), RecordCalls: true})
	if err != nil {
		t.Fatalf("%s: from-scratch: %v", label, err)
	}
	if len(got.Schedule) != len(want.Schedule) {
		t.Fatalf("%s: committed %d events, reference committed %d", label, len(got.Schedule), len(want.Schedule))
	}
	for i := range got.Schedule {
		if got.Schedule[i] != want.Schedule[i] {
			t.Fatalf("%s: commit %d is %+v, reference committed %+v", label, i, got.Schedule[i], want.Schedule[i])
		}
	}
	if got.Forced != want.Forced || got.Dropped != want.Dropped {
		t.Fatalf("%s: forced/dropped %d/%d, reference %d/%d", label, got.Forced, got.Dropped, want.Forced, want.Dropped)
	}
	if !reflect.DeepEqual(got.Sim, want.Sim) {
		t.Fatalf("%s: simulation results differ:\nincremental:  %+v\nfrom-scratch: %+v", label, got.Sim, want.Sim)
	}
	if inc.Replans() != ref.Replans() {
		t.Fatalf("%s: %d replans, reference made %d", label, inc.Replans(), ref.Replans())
	}
}

// diffWindows and diffStrides are the ISSUE's matrix; the stride-1 column
// runs on reduced workloads (a from-scratch replan per call is O(N²)).
var (
	diffWindows = []int{64, 512, 4096, 0}
	diffStrides = []int{128, 512}
)

func windowLabel(win int) string {
	if win == 0 {
		return "inf"
	}
	return strconv.Itoa(win)
}

// TestIncrementalIARDifferentialStream sweeps the full window × stride
// matrix on a rendered streaming workload, for the default options and one
// non-default cell of the option space.
func TestIncrementalIARDifferentialStream(t *testing.T) {
	tr, p := streamCorpus(t)
	for _, win := range diffWindows {
		for _, stride := range diffStrides {
			label := "stream/window=" + windowLabel(win) + "/stride=" + strconv.Itoa(stride)
			diffIAR(t, label, tr, p, core.IAROptions{}, win, stride)
		}
	}
	diffIAR(t, "stream/k1", tr, p, core.IAROptions{K: 1}, 512, 128)
	diffIAR(t, "stream/nofill", tr, p,
		core.IAROptions{DisableFillSlack: true, DisableFillGap: true}, 512, 128)
}

// TestIncrementalIARDifferentialCorpus runs the matrix over every
// DaCapo-derived benchmark; the from-scratch reference makes this the
// suite's heaviest differential, so it skips in -short.
func TestIncrementalIARDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	for _, w := range corpus(t) {
		for _, win := range diffWindows {
			for _, stride := range diffStrides {
				label := w.Bench.Name + "/window=" + windowLabel(win) + "/stride=" + strconv.Itoa(stride)
				diffIAR(t, label, w.Trace, w.Profile, core.IAROptions{}, win, stride)
			}
		}
	}
}

// TestIncrementalIARDifferentialStride1 pins the densest replan pattern the
// engine can produce — a replan per executed call — on workloads small
// enough that the quadratic from-scratch reference stays fast.
func TestIncrementalIARDifferentialStride1(t *testing.T) {
	b, err := dacapo.ByName("antlr")
	if err != nil {
		t.Fatal(err)
	}
	w, err := b.Load(0.01)
	if err != nil {
		t.Fatal(err)
	}
	spec := &workload.Spec{
		Name: "stride1-stream", Seed: 13, Length: 1500,
		Cohorts: []workload.Cohort{{Bench: "luindex", Scale: 0.02}, {Bench: "fop", Scale: 0.02}},
		Phases: []workload.Phase{
			{Weight: 1, Process: workload.ProcessSteady},
			{Weight: 1, Process: workload.ProcessBursty, Mix: []float64{1, 2}},
		},
	}
	str, sp, err := spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range diffWindows {
		label := "window=" + windowLabel(win) + "/stride=1"
		diffIAR(t, "antlr/"+label, w.Trace, w.Profile, core.IAROptions{}, win, 1)
		diffIAR(t, "stream/"+label, str, sp, core.IAROptions{}, win, 1)
	}
}

// TestIncrementalIARDifferentialOnlineSpecs covers the three pinned
// experiment streams (the ones behind the online study golden) at the
// study-relevant windows.
func TestIncrementalIARDifferentialOnlineSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment streams are not short")
	}
	for _, spec := range experiments.OnlineSpecs() {
		tr, p, err := spec.Render()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for _, win := range []int{512, 4096} {
			label := spec.Name + "/window=" + windowLabel(win) + "/stride=512"
			diffIAR(t, label, tr, p, core.IAROptions{}, win, 512)
		}
	}
}
