package online_test

// The PR's two enforced budgets for incremental replanning: the scheduler's
// warm hot loop must be (amortized) allocation-free, and the warm-start
// planner must actually buy the promised speedup over the frozen
// from-scratch reference. Both run from `make bench-guard`.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestOnlineObserveAllocGuard drives the incremental IAR scheduler's hot
// loop — cursor extension plus Observe, replanning every 64 calls — over the
// second half of a stream after warming on the first half, and holds the
// amortized allocation rate near zero. Steady-state allocations come only
// from the planner's simulation arenas doubling as the stream grows, so the
// budget is a small fraction of an allocation per call.
func TestOnlineObserveAllocGuard(t *testing.T) {
	tr, p := streamCorpus(t)
	sched := online.NewIAR(p, core.IAROptions{}, 64)
	cursor := trace.NewPrefix(tr)
	n := tr.Len()
	const window = 512
	step := func(i int) {
		hi := i + window
		if hi > n {
			hi = n
		}
		if err := cursor.Extend(hi); err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Observe(i, cursor.Trace(), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	half := n / 2
	for i := 0; i < half; i++ {
		step(i)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := half; i < n; i++ {
		step(i)
	}
	runtime.ReadMemStats(&after)
	perCall := float64(after.Mallocs-before.Mallocs) / float64(n-half)
	if perCall > 0.1 {
		t.Errorf("warm online IAR hot loop allocates %.3f objects/call, budget is 0.1", perCall)
	}
}

// TestOnlineReplanSpeedupGuard holds the incremental replanner to a minimum
// scheduler-side advantage over the from-scratch reference on a moderate
// stream: at least 3x less wall time spent replanning (best of three tries,
// to ride out scheduler noise). This is the enforceable floor under the
// BenchmarkOnlineLongStream replan-speedup metric.
func TestOnlineReplanSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup guard runs the quadratic reference")
	}
	spec := &workload.Spec{
		Name: "guard-stream", Seed: 17, Length: 24000,
		Cohorts: []workload.Cohort{
			{Bench: "luindex", Scale: 0.1},
			{Bench: "fop", Scale: 0.1},
			{Bench: "antlr", Scale: 0.1},
		},
		Phases: []workload.Phase{
			{Weight: 2, Process: workload.ProcessSteady},
			{Weight: 1, Process: workload.ProcessBursty, BurstMean: 8},
		},
	}
	tr, p, err := spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	const minSpeedup = 3.0
	best := 0.0
	for try := 0; try < 3; try++ {
		inc := online.NewIAR(p, core.IAROptions{}, 0)
		if _, err := online.Run(tr, p, inc, online.Options{Window: 4096}); err != nil {
			t.Fatal(err)
		}
		ref := online.NewIARFromScratch(p, core.IAROptions{}, 0)
		if _, err := online.Run(tr, p, ref, online.Options{Window: 4096}); err != nil {
			t.Fatal(err)
		}
		is, rs := inc.SchedStats(), ref.SchedStats()
		if is.Replans != rs.Replans {
			t.Fatalf("try %d: %d replans vs reference's %d", try, is.Replans, rs.Replans)
		}
		if is.DirtySkips == 0 {
			t.Fatalf("try %d: warm-start fast path never fired across %d replans", try, is.Replans)
		}
		if s := float64(rs.SchedNanos) / float64(is.SchedNanos); s > best {
			best = s
		}
		if best >= minSpeedup {
			break
		}
	}
	if best < minSpeedup {
		t.Errorf("incremental replanning is only %.2fx faster than from-scratch, floor is %.1fx", best, minSpeedup)
	}
}
