package obs

import (
	"strings"
	"testing"
)

// twoWorkerRun is a small consistent event stream: two compile workers, two
// calls, one stall.
func twoWorkerRun() []Event {
	r := NewRecorder()
	r.CompileStart(0, 0, 0, 0, 0)
	r.CompileEnd(10, 0, 0, 0, 0)
	r.CompileStart(0, 1, 2, 1, 1)
	r.CompileEnd(40, 1, 2, 1, 1)
	r.Stall(0, 10, 0, 0)
	r.ExecStart(10, 0, 0, 0)
	r.ExecEnd(25, 0, 0, 0)
	r.Stall(25, 15, 1, 1)
	r.ExecStart(40, 1, 2, 1)
	r.ExecEnd(55, 1, 2, 1)
	return r.Events()
}

func TestSpansPairsLanes(t *testing.T) {
	spans, err := Spans(twoWorkerRun())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	end, workers := spanExtent(spans)
	if end != 55 || workers != 2 {
		t.Errorf("extent = (%d, %d workers), want (55, 2)", end, workers)
	}
	var compiles, execs, stalls int
	for _, s := range spans {
		switch s.Kind {
		case SpanCompile:
			compiles++
		case SpanExec:
			execs++
		case SpanStall:
			stalls++
			if s.Level != -1 {
				t.Errorf("stall span carries level %d", s.Level)
			}
		}
		if s.End < s.Start {
			t.Errorf("span %+v ends before it starts", s)
		}
	}
	if compiles != 2 || execs != 2 || stalls != 2 {
		t.Errorf("span mix = %d/%d/%d compiles/execs/stalls, want 2/2/2", compiles, execs, stalls)
	}
	// Sorted by start time.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Errorf("spans unsorted at %d: %d after %d", i, spans[i].Start, spans[i-1].Start)
		}
	}
}

func TestSpansRejectsInconsistentStreams(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"dangling compile start", []Event{{Kind: KindCompileStart, Time: 3, Worker: 0}}, "never ended"},
		{"compile end without start", []Event{{Kind: KindCompileEnd, Time: 3, Worker: 1}}, "without a matching start"},
		{"double compile start", []Event{
			{Kind: KindCompileStart, Time: 0, Worker: 0},
			{Kind: KindCompileStart, Time: 1, Worker: 0},
		}, "still open"},
		{"exec end without start", []Event{{Kind: KindExecEnd, Time: 3}}, "without a matching start"},
		{"dangling exec start", []Event{{Kind: KindExecStart, Time: 3}}, "never ended"},
		{"exec end before start", []Event{
			{Kind: KindExecStart, Time: 5},
			{Kind: KindExecEnd, Time: 2},
		}, "before its start"},
		{"compile end before start", []Event{
			{Kind: KindCompileStart, Time: 5, Worker: 0},
			{Kind: KindCompileEnd, Time: 2, Worker: 0},
		}, "before its start"},
		{"negative stall", []Event{{Kind: KindStall, Time: 3, Dur: -1}}, "negative stall"},
		{"unknown kind", []Event{{Kind: Kind(42)}}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Spans(tc.evs)
			if err == nil {
				t.Fatalf("Spans accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSpansEmpty(t *testing.T) {
	spans, err := Spans(nil)
	if err != nil || len(spans) != 0 {
		t.Fatalf("Spans(nil) = %v, %v; want empty, nil", spans, err)
	}
}
