package obs

import (
	"fmt"
	"sort"
)

// SpanKind classifies a paired span.
type SpanKind uint8

const (
	// SpanCompile is one compilation occupying a compile-worker lane.
	SpanCompile SpanKind = iota
	// SpanExec is one call on the execution lane.
	SpanExec
	// SpanStall is an execution-lane wait for a compilation.
	SpanStall
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanCompile:
		return "compile"
	case SpanExec:
		return "exec"
	case SpanStall:
		return "stall"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// Span is a start/end event pair (or a stall) resolved into one interval.
type Span struct {
	Kind       SpanKind
	Start, End int64
	Func       int32
	Level      int32 // -1 for stalls
	Worker     int32 // compile lane; -1 for execution-side spans
	Seq        int32
}

// Spans pairs a recorded event stream into intervals: each compile-start
// with the matching compile-end on the same worker, each exec-start with the
// matching exec-end, and each stall as-is. The result is sorted by start
// time (lane, then sequence, breaking ties). An unmatched start or end event
// is a recording bug and yields an error.
func Spans(events []Event) ([]Span, error) {
	spans := make([]Span, 0, len(events)/2+1)
	openCompile := make(map[int32]int) // worker -> index into spans
	openExec := -1
	for i, ev := range events {
		switch ev.Kind {
		case KindCompileStart:
			if j, ok := openCompile[ev.Worker]; ok {
				return nil, fmt.Errorf("obs: event %d: compile-start on worker %d while event at %d is still open", i, ev.Worker, spans[j].Start)
			}
			openCompile[ev.Worker] = len(spans)
			spans = append(spans, Span{Kind: SpanCompile, Start: ev.Time, End: ev.Time,
				Func: ev.Func, Level: ev.Level, Worker: ev.Worker, Seq: ev.Seq})
		case KindCompileEnd:
			j, ok := openCompile[ev.Worker]
			if !ok {
				return nil, fmt.Errorf("obs: event %d: compile-end on worker %d without a matching start", i, ev.Worker)
			}
			delete(openCompile, ev.Worker)
			if ev.Time < spans[j].Start {
				return nil, fmt.Errorf("obs: event %d: compile-end at %d before its start %d", i, ev.Time, spans[j].Start)
			}
			spans[j].End = ev.Time
		case KindExecStart:
			if openExec >= 0 {
				return nil, fmt.Errorf("obs: event %d: exec-start while call %d is still open", i, spans[openExec].Seq)
			}
			openExec = len(spans)
			spans = append(spans, Span{Kind: SpanExec, Start: ev.Time, End: ev.Time,
				Func: ev.Func, Level: ev.Level, Worker: -1, Seq: ev.Seq})
		case KindExecEnd:
			if openExec < 0 {
				return nil, fmt.Errorf("obs: event %d: exec-end without a matching start", i)
			}
			if ev.Time < spans[openExec].Start {
				return nil, fmt.Errorf("obs: event %d: exec-end at %d before its start %d", i, ev.Time, spans[openExec].Start)
			}
			spans[openExec].End = ev.Time
			openExec = -1
		case KindStall:
			if ev.Dur < 0 {
				return nil, fmt.Errorf("obs: event %d: negative stall duration %d", i, ev.Dur)
			}
			spans = append(spans, Span{Kind: SpanStall, Start: ev.Time, End: ev.Time + ev.Dur,
				Func: ev.Func, Level: -1, Worker: -1, Seq: ev.Seq})
		default:
			return nil, fmt.Errorf("obs: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if len(openCompile) > 0 {
		for w, j := range openCompile {
			return nil, fmt.Errorf("obs: compile span on worker %d starting at %d never ended", w, spans[j].Start)
		}
	}
	if openExec >= 0 {
		return nil, fmt.Errorf("obs: exec span for call %d starting at %d never ended", spans[openExec].Seq, spans[openExec].Start)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Worker != spans[j].Worker {
			return spans[i].Worker < spans[j].Worker
		}
		return spans[i].Seq < spans[j].Seq
	})
	return spans, nil
}

// spanExtent returns the overall [0, end] extent of the spans and the number
// of compile-worker lanes.
func spanExtent(spans []Span) (end int64, workers int) {
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
		if s.Kind == SpanCompile && int(s.Worker)+1 > workers {
			workers = int(s.Worker) + 1
		}
	}
	return end, workers
}
