package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceSchema validates the exporter against the trace_event
// format: a top-level traceEvents array whose entries each carry a name, a
// known phase, integer ts/pid/tid, and (for complete events) a non-negative
// dur — the invariants chrome://tracing and Perfetto rely on to load a file.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, twoWorkerRun(), ChromeOptions{
		FuncName: func(f int32) string { return []string{"alpha", "beta"}[f] },
		Process:  "test-run",
	})
	if err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	var complete, meta int
	for i, ev := range file.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			t.Errorf("event %d has no name: %v", i, ev)
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			complete++
			for _, field := range []string{"ts", "dur", "pid", "tid"} {
				v, ok := ev[field].(float64)
				if !ok {
					t.Errorf("event %d missing numeric %q: %v", i, field, ev)
					continue
				}
				if v != float64(int64(v)) {
					t.Errorf("event %d field %q = %v is not integral", i, field, v)
				}
				if field == "dur" && v < 0 {
					t.Errorf("event %d has negative dur %v", i, v)
				}
			}
		case "M":
			meta++
		default:
			t.Errorf("event %d has unknown phase %q", i, ph)
		}
	}
	if complete != 6 {
		t.Errorf("got %d complete events, want 6 (2 compiles + 2 calls + 2 stalls)", complete)
	}
	// Process + execute lane + two worker lanes.
	if meta != 4 {
		t.Errorf("got %d metadata events, want 4", meta)
	}

	out := buf.String()
	for _, want := range []string{"C0(alpha)", "C2(beta)", "stall(alpha)", "test-run", "compile[1]", `"execute"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestChromeTraceDefaultsAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, ChromeOptions{}); err != nil {
		t.Fatalf("empty event stream: %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("empty trace invalid JSON: %v", err)
	}

	buf.Reset()
	r := NewRecorder()
	r.ExecStart(3, 0, 0, 0)
	r.ExecEnd(9, 0, 0, 0)
	if err := WriteChromeTrace(&buf, r.Events(), ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f0") {
		t.Errorf("default FuncName not applied:\n%s", buf.String())
	}

	bad := []Event{{Kind: KindCompileEnd, Worker: 0}}
	if err := WriteChromeTrace(&buf, bad, ChromeOptions{}); err == nil {
		t.Error("inconsistent stream accepted")
	}
}
