package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running observability HTTP endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler returns the observability mux: /metrics (the Default metrics
// snapshot as JSON), /debug/vars (expvar, including the same snapshot under
// the "obs" key), /debug/pprof/* (the standard profiles), and /healthz.
func Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default().Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Default().Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the observability endpoint in the background.
// It returns once the listener is bound, so callers can log the resolved
// address; the caller owns shutdown via Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
