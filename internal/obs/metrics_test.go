package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.JobStarted(time.Second)
	m.JobCompleted(time.Second, true, true)
	m.CacheHit(3)
	m.Deduped(2)
	m.SimRun(100)
	m.ServeCoalesced()
	m.ServeClientGone()
	m.ServeQueueWait(time.Second)
	m.ServeBatch(3)
	m.ServeTenant("t")
	m.ServeTenantRejected("t")
	m.ServeShardHit(1)
	if s := m.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Errorf("nil metrics snapshot = %+v, want zero", s)
	}
}

// TestMetricsServeLabeled: the per-tenant and per-shard maps count without
// cross-talk and snapshot as independent copies.
func TestMetricsServeLabeled(t *testing.T) {
	var m Metrics
	m.ServeTenant("a")
	m.ServeTenant("a")
	m.ServeTenant("b")
	m.ServeTenantRejected("b")
	m.ServeShardHit(0)
	m.ServeShardHit(3)
	m.ServeShardHit(3)
	m.ServeShardHit(-1) // caching disabled: dropped
	s := m.Snapshot()
	if s.ServeTenantRequests["a"] != 2 || s.ServeTenantRequests["b"] != 1 {
		t.Errorf("tenant requests = %v", s.ServeTenantRequests)
	}
	if s.ServeTenantRejects["b"] != 1 || len(s.ServeTenantRejects) != 1 {
		t.Errorf("tenant rejects = %v", s.ServeTenantRejects)
	}
	if s.ServeShardHits[0] != 1 || s.ServeShardHits[3] != 2 || len(s.ServeShardHits) != 2 {
		t.Errorf("shard hits = %v", s.ServeShardHits)
	}
	// The snapshot is a copy: mutating it must not leak back.
	s.ServeTenantRequests["a"] = 99
	if got := m.Snapshot().ServeTenantRequests["a"]; got != 2 {
		t.Errorf("snapshot aliases the live map: %d", got)
	}
}

// TestMetricsServeOutcomes: client-gone is its own outcome, not a timeout.
func TestMetricsServeOutcomes(t *testing.T) {
	var m Metrics
	m.ServeDone(true, false)
	m.ServeDone(false, true)
	m.ServeDone(false, false)
	m.ServeClientGone()
	m.ServeCacheHit()
	m.ServeCoalesced()
	s := m.Snapshot()
	if s.ServeOK != 1 || s.ServeCancelled != 1 || s.ServeErrors != 1 || s.ServeClientGone != 1 {
		t.Errorf("outcomes = ok %d cancelled %d errors %d client-gone %d", s.ServeOK, s.ServeCancelled, s.ServeErrors, s.ServeClientGone)
	}
	if s.ServeCacheHits != 1 || s.ServeCoalesced != 1 {
		t.Errorf("cache split = hits %d coalesced %d, want 1/1", s.ServeCacheHits, s.ServeCoalesced)
	}
}

func TestMetricsCounts(t *testing.T) {
	var m Metrics
	m.JobStarted(10 * time.Millisecond)
	m.JobStarted(30 * time.Millisecond)
	m.JobCompleted(50*time.Millisecond, false, false)
	m.JobCompleted(70*time.Millisecond, true, true)
	m.CacheHit(4)
	m.Deduped(1)
	m.SimRun(500)
	m.SimRun(700)

	s := m.Snapshot()
	if s.JobsStarted != 2 || s.JobsCompleted != 2 || s.JobsFailed != 1 || s.JobsPanicked != 1 {
		t.Errorf("job counters wrong: %+v", s)
	}
	if s.QueueWait != 40*time.Millisecond {
		t.Errorf("queue wait = %v, want 40ms", s.QueueWait)
	}
	if s.JobWall != 120*time.Millisecond || s.MaxJobWall != 70*time.Millisecond {
		t.Errorf("wall = %v max %v, want 120ms/70ms", s.JobWall, s.MaxJobWall)
	}
	if s.CacheHits != 4 || s.Deduped != 1 {
		t.Errorf("cache counters wrong: %+v", s)
	}
	if s.SimRuns != 2 || s.SimTicks != 1200 {
		t.Errorf("sim counters wrong: %+v", s)
	}
	line := s.String()
	for _, want := range []string{"2 jobs started", "1 failed", "1 panicked", "4 cache hits", "2 sims"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.JobStarted(time.Microsecond)
				m.JobCompleted(time.Duration(j), false, false)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.JobsStarted != 8000 || s.JobsCompleted != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
	if s.MaxJobWall != 999 {
		t.Errorf("max job wall = %v, want 999ns", s.MaxJobWall)
	}
}

func TestDefaultIsStable(t *testing.T) {
	if Default() != Default() {
		t.Error("Default returned different instances")
	}
}
