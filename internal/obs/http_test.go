package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	Default().SimRun(42)
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v\n%s", err, body)
	}
	if snap.SimRuns < 1 {
		t.Errorf("/metrics lost the recorded sim run: %+v", snap)
	}

	code, body = get(t, ts.URL, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"obs"`) {
		t.Errorf("/debug/vars status %d, obs key present: %v", code, strings.Contains(body, `"obs"`))
	}

	code, body = get(t, ts.URL, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, _ = get(t, ts.URL, "/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if !strings.Contains(addr, ":") {
		t.Fatalf("bad bound address %q", addr)
	}
	code, _ := get(t, "http://"+addr, "/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz over Serve = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The port should stop answering shortly after Close.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get("http://" + addr + "/healthz"); err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("server still answering after Close")
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999"); err == nil {
		t.Error("Serve accepted a nonsense address")
	}
}
