package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTimelineGolden locks the ASCII exporter's format. Regenerate with
//
//	go test ./internal/obs -run TestTimelineGolden -update
func TestTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTimeline(&buf, twoWorkerRun(), TimelineOptions{
		Width:    55,
		FuncName: func(f int32) string { return []string{"hot", "cold"}[f] },
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("timeline drifted from golden.\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestTimelineEmptyAndWidths(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, nil, TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "(empty run)\n" {
		t.Errorf("empty run rendered %q", got)
	}

	// A degenerate width is clamped, not a crash.
	buf.Reset()
	if err := WriteTimeline(&buf, twoWorkerRun(), TimelineOptions{Width: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "execute    |") {
		t.Errorf("narrow timeline missing execute lane:\n%s", buf.String())
	}

	// Large runs skip the per-span listing.
	r := NewRecorder()
	for i := int32(0); i < 40; i++ {
		r.ExecStart(int64(i)*10, 0, 0, i)
		r.ExecEnd(int64(i)*10+5, 0, 0, i)
	}
	buf.Reset()
	if err := WriteTimeline(&buf, r.Events(), TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "call #") {
		t.Errorf("large run still lists individual spans:\n%s", buf.String())
	}

	if err := WriteTimeline(&buf, []Event{{Kind: KindExecEnd}}, TimelineOptions{}); err == nil {
		t.Error("inconsistent stream accepted")
	}
}
