package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of process-wide counters the runner (and any other
// subsystem) reports into. All methods are nil-safe and lock-free, so a
// disabled metrics sink costs one predictable branch.
type Metrics struct {
	jobsStarted   atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsPanicked  atomic.Int64
	cacheHits     atomic.Int64
	deduped       atomic.Int64
	queueWaitNS   atomic.Int64
	jobWallNS     atomic.Int64
	maxJobWallNS  atomic.Int64
	jobsCancelled atomic.Int64
	simRuns       atomic.Int64
	simTicks      atomic.Int64

	onlineRuns        atomic.Int64
	onlineCommits     atomic.Int64
	onlineForced      atomic.Int64
	onlineReplans     atomic.Int64
	onlineDirtySkips  atomic.Int64
	onlineReplanNanos atomic.Int64

	searchRuns      atomic.Int64
	searchExpanded  atomic.Int64
	searchStored    atomic.Int64
	searchTableHits atomic.Int64
	searchPruned    atomic.Int64

	searchDispatchSerial   atomic.Int64
	searchDispatchParallel atomic.Int64
	searchSpeedupMilli     atomic.Int64

	exactSolves    atomic.Int64
	exactConflicts atomic.Int64
	exactLearned   atomic.Int64

	iarArenas   atomic.Int64
	iarRuns     atomic.Int64
	iarWarmRuns atomic.Int64

	serveRequests    atomic.Int64
	serveOK          atomic.Int64
	serveErrors      atomic.Int64
	serveCacheHits   atomic.Int64
	serveCoalesced   atomic.Int64
	serveCancelled   atomic.Int64
	serveClientGone  atomic.Int64
	serveRejected    atomic.Int64
	serveQueueDepth  atomic.Int64
	serveQueueWaitNS atomic.Int64
	serveBatches     atomic.Int64
	serveBatchItems  atomic.Int64

	// Labeled serve counters: per-tenant traffic and 429s, per-cache-shard
	// hits. Maps under a mutex rather than atomics — tenant names arrive at
	// runtime — on the rejection/accounting path, never the hot compute path.
	labeledMu      sync.Mutex
	tenantRequests map[string]int64
	tenantRejects  map[string]int64
	shardHits      map[int]int64
}

var (
	defaultMetrics Metrics
	publishOnce    sync.Once
)

// Default returns the process-wide Metrics instance — the one the shared
// runner reports into and Serve exposes.
func Default() *Metrics { return &defaultMetrics }

// JobStarted records that a job left the queue after waiting queueWait.
func (m *Metrics) JobStarted(queueWait time.Duration) {
	if m == nil {
		return
	}
	m.jobsStarted.Add(1)
	m.queueWaitNS.Add(int64(queueWait))
}

// JobCompleted records one finished job and its wall time.
func (m *Metrics) JobCompleted(wall time.Duration, failed, panicked bool) {
	if m == nil {
		return
	}
	m.jobsCompleted.Add(1)
	m.jobWallNS.Add(int64(wall))
	for {
		cur := m.maxJobWallNS.Load()
		if int64(wall) <= cur || m.maxJobWallNS.CompareAndSwap(cur, int64(wall)) {
			break
		}
	}
	if failed {
		m.jobsFailed.Add(1)
	}
	if panicked {
		m.jobsPanicked.Add(1)
	}
}

// JobCancelled records a job that ended because its batch's context was
// cancelled — counted separately from genuine failures.
func (m *Metrics) JobCancelled() {
	if m == nil {
		return
	}
	m.jobsCancelled.Add(1)
}

// CacheHit records jobs answered from the runner's result cache.
func (m *Metrics) CacheHit(n int64) {
	if m == nil {
		return
	}
	m.cacheHits.Add(n)
}

// Deduped records jobs that shared a batch-mate's in-flight computation.
func (m *Metrics) Deduped(n int64) {
	if m == nil {
		return
	}
	m.deduped.Add(n)
}

// SimRun records one completed simulation of ticks simulated make-span.
func (m *Metrics) SimRun(ticks int64) {
	if m == nil {
		return
	}
	m.simRuns.Add(1)
	m.simTicks.Add(ticks)
}

// OnlineRun records one completed online-harness run: how many compile
// events it committed and how many of those were forced on-demand
// fallbacks.
func (m *Metrics) OnlineRun(commits, forced int64) {
	if m == nil {
		return
	}
	m.onlineRuns.Add(1)
	m.onlineCommits.Add(commits)
	m.onlineForced.Add(forced)
}

// OnlineSched records one online run's scheduler-side cost accounting:
// how many replans the scheduler ran, how many of those took the warm-start
// fast path (dirty set empty under the plan-stability check), and the total
// time spent inside replans.
func (m *Metrics) OnlineSched(replans, dirtySkips, schedNanos int64) {
	if m == nil {
		return
	}
	m.onlineReplans.Add(replans)
	m.onlineDirtySkips.Add(dirtySkips)
	m.onlineReplanNanos.Add(schedNanos)
}

// SearchRun records one completed (or budget-aborted) tree search: nodes
// expanded and stored, plus how many candidates the transposition table and
// the admissible bound pruned.
func (m *Metrics) SearchRun(expanded, stored, tableHits, pruned int64) {
	if m == nil {
		return
	}
	m.searchRuns.Add(1)
	m.searchExpanded.Add(expanded)
	m.searchStored.Add(stored)
	m.searchTableHits.Add(tableHits)
	m.searchPruned.Add(pruned)
}

// SearchDispatch records one adaptive worker-count decision (Workers=0 auto
// mode on beam/BnB): whether the dispatcher chose the parallel pipeline.
func (m *Metrics) SearchDispatch(parallel bool) {
	if m == nil {
		return
	}
	if parallel {
		m.searchDispatchParallel.Add(1)
	} else {
		m.searchDispatchSerial.Add(1)
	}
}

// SearchSpeedup records the dispatcher's latest observed serial/parallel
// speedup estimate for some instance-size bucket, in thousandths (1000 =
// parity). It is a gauge: the last write wins.
func (m *Metrics) SearchSpeedup(milli int64) {
	if m == nil {
		return
	}
	m.searchSpeedupMilli.Store(milli)
}

// ExactSolve records one exact-solver run (completed or aborted) and the
// CDCL work its CNF probes did: conflicts hit and clauses learned.
func (m *Metrics) ExactSolve(conflicts, learned int64) {
	if m == nil {
		return
	}
	m.exactSolves.Add(1)
	m.exactConflicts.Add(conflicts)
	m.exactLearned.Add(learned)
}

// IARArenaCreated records one IAR arena construction.
func (m *Metrics) IARArenaCreated() {
	if m == nil {
		return
	}
	m.iarArenas.Add(1)
}

// IARRun records one arena-backed IAR run; warm means the arena had run
// before and its buffers were already sized.
func (m *Metrics) IARRun(warm bool) {
	if m == nil {
		return
	}
	m.iarRuns.Add(1)
	if warm {
		m.iarWarmRuns.Add(1)
	}
}

// ServeRequest records one scheduling-service request received (before
// decoding or any queueing decision).
func (m *Metrics) ServeRequest() {
	if m == nil {
		return
	}
	m.serveRequests.Add(1)
}

// ServeDone records one finished scheduling-service request. Exactly one of
// the flags describes the outcome: ok (schedule returned), cancelled (the
// request's deadline or client cancellation won), or neither for any other
// error.
func (m *Metrics) ServeDone(ok, cancelled bool) {
	if m == nil {
		return
	}
	switch {
	case ok:
		m.serveOK.Add(1)
	case cancelled:
		m.serveCancelled.Add(1)
	default:
		m.serveErrors.Add(1)
	}
}

// ServeCacheHit records a request answered from a completed entry of the
// service's result cache. Followers coalesced onto a still-in-flight leader
// are counted by ServeCoalesced instead — they were deduplicated, not served
// from cache.
func (m *Metrics) ServeCacheHit() {
	if m == nil {
		return
	}
	m.serveCacheHits.Add(1)
}

// ServeCoalesced records a request that shared another request's in-flight
// computation (X-Cache: coalesced).
func (m *Metrics) ServeCoalesced() {
	if m == nil {
		return
	}
	m.serveCoalesced.Add(1)
}

// ServeClientGone records a request whose client disconnected before the
// response was ready — not a timeout, not an error: nobody was left to
// answer.
func (m *Metrics) ServeClientGone() {
	if m == nil {
		return
	}
	m.serveClientGone.Add(1)
}

// ServeQueueWait records the time one job spent queued before a worker
// picked it up.
func (m *Metrics) ServeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.serveQueueWaitNS.Add(int64(d))
}

// ServeBatch records one batch request carrying items entries.
func (m *Metrics) ServeBatch(items int64) {
	if m == nil {
		return
	}
	m.serveBatches.Add(1)
	m.serveBatchItems.Add(items)
}

// ServeTenant records one request attributed to tenant (after admission).
func (m *Metrics) ServeTenant(tenant string) {
	if m == nil {
		return
	}
	m.labeledMu.Lock()
	if m.tenantRequests == nil {
		m.tenantRequests = make(map[string]int64)
	}
	m.tenantRequests[tenant]++
	m.labeledMu.Unlock()
}

// ServeTenantRejected records one admission-control 429 for tenant.
func (m *Metrics) ServeTenantRejected(tenant string) {
	if m == nil {
		return
	}
	m.labeledMu.Lock()
	if m.tenantRejects == nil {
		m.tenantRejects = make(map[string]int64)
	}
	m.tenantRejects[tenant]++
	m.labeledMu.Unlock()
}

// ServeShardHit records a completed-entry hit or in-flight coalesce landing
// on cache shard (negative shards — caching disabled — are dropped).
func (m *Metrics) ServeShardHit(shard int) {
	if m == nil || shard < 0 {
		return
	}
	m.labeledMu.Lock()
	if m.shardHits == nil {
		m.shardHits = make(map[int]int64)
	}
	m.shardHits[shard]++
	m.labeledMu.Unlock()
}

// ServeRejected records a request bounced with backpressure (queue full or
// server draining).
func (m *Metrics) ServeRejected() {
	if m == nil {
		return
	}
	m.serveRejected.Add(1)
}

// ServeQueue adjusts the scheduling-service queue-depth gauge by delta
// (+1 on enqueue, -1 on dequeue).
func (m *Metrics) ServeQueue(delta int64) {
	if m == nil {
		return
	}
	m.serveQueueDepth.Add(delta)
}

// Snapshot is a point-in-time copy of the counters, safe to marshal.
type Snapshot struct {
	JobsStarted   int64 `json:"jobs_started"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsPanicked  int64 `json:"jobs_panicked"`
	// JobsCancelled counts jobs ended by their batch context's cancellation
	// (not genuine failures, not successes).
	JobsCancelled int64 `json:"jobs_cancelled"`
	CacheHits     int64 `json:"cache_hits"`
	Deduped       int64 `json:"deduped"`
	// QueueWait is the summed time jobs spent waiting for a worker;
	// JobWall the summed job wall time; MaxJobWall the slowest single job.
	QueueWait  time.Duration `json:"queue_wait_ns"`
	JobWall    time.Duration `json:"job_wall_ns"`
	MaxJobWall time.Duration `json:"max_job_wall_ns"`
	// SimRuns counts completed simulations; SimTicks sums their make-spans.
	SimRuns  int64 `json:"sim_runs"`
	SimTicks int64 `json:"sim_ticks"`
	// OnlineRuns counts online-harness runs; OnlineCommits sums their
	// committed compile events; OnlineForced the forced on-demand subset.
	OnlineRuns    int64 `json:"online_runs"`
	OnlineCommits int64 `json:"online_commits"`
	OnlineForced  int64 `json:"online_forced"`
	// OnlineReplans counts replanning-scheduler plans across online runs, of
	// which OnlineDirtySkips took the warm-start fast path (no structural
	// rebuild); OnlineReplanNanos sums the scheduler-side time spent planning.
	OnlineReplans     int64 `json:"online_replans"`
	OnlineDirtySkips  int64 `json:"online_dirty_skips"`
	OnlineReplanNanos int64 `json:"online_replan_nanos"`
	// SearchRuns counts tree searches; the others sum their per-run node and
	// prune counters.
	SearchRuns      int64 `json:"search_runs"`
	SearchExpanded  int64 `json:"search_expanded"`
	SearchStored    int64 `json:"search_stored"`
	SearchTableHits int64 `json:"search_table_hits"`
	SearchPruned    int64 `json:"search_pruned"`
	// SearchDispatchSerial/Parallel count the adaptive dispatcher's Workers=0
	// decisions; SearchSpeedupMilli is its latest observed serial/parallel
	// speedup estimate in thousandths (1000 = parity, 0 = no observation yet).
	SearchDispatchSerial   int64 `json:"search_dispatch_serial"`
	SearchDispatchParallel int64 `json:"search_dispatch_parallel"`
	SearchSpeedupMilli     int64 `json:"search_speedup_milli"`
	// ExactSolves counts exact-solver runs; ExactConflicts and ExactLearned
	// sum the CDCL conflicts hit and clauses learned across their CNF probes.
	ExactSolves    int64 `json:"exact_solves"`
	ExactConflicts int64 `json:"exact_conflicts"`
	ExactLearned   int64 `json:"exact_learned_clauses"`
	// IARArenas counts IAR arena constructions; IARRuns the arena-backed IAR
	// runs served, of which IARWarmRuns reused an already-sized arena. A high
	// runs-to-arenas ratio is the reuse working.
	IARArenas   int64 `json:"iar_arenas"`
	IARRuns     int64 `json:"iar_runs"`
	IARWarmRuns int64 `json:"iar_warm_runs"`
	// ServeRequests counts scheduling-service requests accepted for
	// processing; ServeOK/ServeErrors/ServeCancelled/ServeClientGone split
	// their outcomes (client-gone: the client disconnected before the answer
	// was ready — distinct from a timeout); ServeCacheHits counts requests
	// answered from a completed cache entry and ServeCoalesced followers
	// deduplicated onto an in-flight leader; ServeRejected counts
	// backpressure bounces (429/503); ServeQueueDepth is the current
	// queue-depth gauge and ServeQueueWait the summed time jobs waited for a
	// worker; ServeBatches/ServeBatchItems count batch envelopes and the
	// items inside them.
	ServeRequests   int64         `json:"serve_requests"`
	ServeOK         int64         `json:"serve_ok"`
	ServeErrors     int64         `json:"serve_errors"`
	ServeCancelled  int64         `json:"serve_cancelled"`
	ServeClientGone int64         `json:"serve_client_gone"`
	ServeCacheHits  int64         `json:"serve_cache_hits"`
	ServeCoalesced  int64         `json:"serve_coalesced"`
	ServeRejected   int64         `json:"serve_rejected"`
	ServeQueueDepth int64         `json:"serve_queue_depth"`
	ServeQueueWait  time.Duration `json:"serve_queue_wait_ns"`
	ServeBatches    int64         `json:"serve_batches"`
	ServeBatchItems int64         `json:"serve_batch_items"`
	// ServeTenantRequests/ServeTenantRejects break serve traffic and
	// admission-control 429s down by tenant; ServeShardHits breaks cache
	// hits+coalesces down by cache shard. Empty maps are omitted.
	ServeTenantRequests map[string]int64 `json:"serve_tenant_requests,omitempty"`
	ServeTenantRejects  map[string]int64 `json:"serve_tenant_rejects,omitempty"`
	ServeShardHits      map[int]int64    `json:"serve_shard_hits,omitempty"`
}

// Snapshot returns a consistent-enough copy of the counters (each counter is
// read atomically; the set is not a transaction).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		JobsStarted:   m.jobsStarted.Load(),
		JobsCompleted: m.jobsCompleted.Load(),
		JobsFailed:    m.jobsFailed.Load(),
		JobsPanicked:  m.jobsPanicked.Load(),
		JobsCancelled: m.jobsCancelled.Load(),
		CacheHits:     m.cacheHits.Load(),
		Deduped:       m.deduped.Load(),
		QueueWait:     time.Duration(m.queueWaitNS.Load()),
		JobWall:       time.Duration(m.jobWallNS.Load()),
		MaxJobWall:    time.Duration(m.maxJobWallNS.Load()),
		SimRuns:       m.simRuns.Load(),
		SimTicks:      m.simTicks.Load(),

		OnlineRuns:        m.onlineRuns.Load(),
		OnlineCommits:     m.onlineCommits.Load(),
		OnlineForced:      m.onlineForced.Load(),
		OnlineReplans:     m.onlineReplans.Load(),
		OnlineDirtySkips:  m.onlineDirtySkips.Load(),
		OnlineReplanNanos: m.onlineReplanNanos.Load(),

		SearchRuns:      m.searchRuns.Load(),
		SearchExpanded:  m.searchExpanded.Load(),
		SearchStored:    m.searchStored.Load(),
		SearchTableHits: m.searchTableHits.Load(),
		SearchPruned:    m.searchPruned.Load(),

		SearchDispatchSerial:   m.searchDispatchSerial.Load(),
		SearchDispatchParallel: m.searchDispatchParallel.Load(),
		SearchSpeedupMilli:     m.searchSpeedupMilli.Load(),

		ExactSolves:    m.exactSolves.Load(),
		ExactConflicts: m.exactConflicts.Load(),
		ExactLearned:   m.exactLearned.Load(),

		IARArenas:   m.iarArenas.Load(),
		IARRuns:     m.iarRuns.Load(),
		IARWarmRuns: m.iarWarmRuns.Load(),

		ServeRequests:   m.serveRequests.Load(),
		ServeOK:         m.serveOK.Load(),
		ServeErrors:     m.serveErrors.Load(),
		ServeCancelled:  m.serveCancelled.Load(),
		ServeClientGone: m.serveClientGone.Load(),
		ServeCacheHits:  m.serveCacheHits.Load(),
		ServeCoalesced:  m.serveCoalesced.Load(),
		ServeRejected:   m.serveRejected.Load(),
		ServeQueueDepth: m.serveQueueDepth.Load(),
		ServeQueueWait:  time.Duration(m.serveQueueWaitNS.Load()),
		ServeBatches:    m.serveBatches.Load(),
		ServeBatchItems: m.serveBatchItems.Load(),

		ServeTenantRequests: m.copyLabeled(&m.tenantRequests),
		ServeTenantRejects:  m.copyLabeled(&m.tenantRejects),
		ServeShardHits:      m.copyLabeledInt(&m.shardHits),
	}
}

// copyLabeled snapshots one string-labeled counter map (nil when empty).
func (m *Metrics) copyLabeled(src *map[string]int64) map[string]int64 {
	m.labeledMu.Lock()
	defer m.labeledMu.Unlock()
	if len(*src) == 0 {
		return nil
	}
	out := make(map[string]int64, len(*src))
	for k, v := range *src {
		out[k] = v
	}
	return out
}

// copyLabeledInt snapshots one int-labeled counter map (nil when empty).
func (m *Metrics) copyLabeledInt(src *map[int]int64) map[int]int64 {
	m.labeledMu.Lock()
	defer m.labeledMu.Unlock()
	if len(*src) == 0 {
		return nil
	}
	out := make(map[int]int64, len(*src))
	for k, v := range *src {
		out[k] = v
	}
	return out
}

// String renders the snapshot as one log-friendly line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"obs: %d jobs started, %d completed (%d failed, %d panicked, %d job-cancelled), %d cache hits, %d deduped, queue wait %v, job wall %v (max %v), %d sims (%d ticks), %d online runs (%d commits, %d forced, %d replans/%d dirty-skips in %v), %d searches (%d expanded, %d stored, %d table hits, %d pruned), dispatch %d serial/%d parallel (speedup %d‰), %d exact solves (%d conflicts, %d learned), %d IAR runs (%d warm) on %d arenas, %d served (%d ok, %d cancelled, %d client-gone, %d errored, %d serve cache hits, %d coalesced, %d rejected, %d tenants throttled, depth %d, serve queue wait %v, %d batches/%d items)",
		s.JobsStarted, s.JobsCompleted, s.JobsFailed, s.JobsPanicked, s.JobsCancelled,
		s.CacheHits, s.Deduped,
		s.QueueWait.Round(time.Microsecond), s.JobWall.Round(time.Microsecond),
		s.MaxJobWall.Round(time.Microsecond), s.SimRuns, s.SimTicks,
		s.OnlineRuns, s.OnlineCommits, s.OnlineForced,
		s.OnlineReplans, s.OnlineDirtySkips, time.Duration(s.OnlineReplanNanos).Round(time.Microsecond),
		s.SearchRuns, s.SearchExpanded, s.SearchStored, s.SearchTableHits, s.SearchPruned,
		s.SearchDispatchSerial, s.SearchDispatchParallel, s.SearchSpeedupMilli,
		s.ExactSolves, s.ExactConflicts, s.ExactLearned,
		s.IARRuns, s.IARWarmRuns, s.IARArenas,
		s.ServeRequests, s.ServeOK, s.ServeCancelled, s.ServeClientGone, s.ServeErrors,
		s.ServeCacheHits, s.ServeCoalesced, s.ServeRejected, len(s.ServeTenantRejects),
		s.ServeQueueDepth, s.ServeQueueWait.Round(time.Microsecond),
		s.ServeBatches, s.ServeBatchItems)
}
