package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of process-wide counters the runner (and any other
// subsystem) reports into. All methods are nil-safe and lock-free, so a
// disabled metrics sink costs one predictable branch.
type Metrics struct {
	jobsStarted   atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsPanicked  atomic.Int64
	cacheHits     atomic.Int64
	deduped       atomic.Int64
	queueWaitNS   atomic.Int64
	jobWallNS     atomic.Int64
	maxJobWallNS  atomic.Int64
	jobsCancelled atomic.Int64
	simRuns       atomic.Int64
	simTicks      atomic.Int64

	onlineRuns    atomic.Int64
	onlineCommits atomic.Int64
	onlineForced  atomic.Int64

	searchRuns      atomic.Int64
	searchExpanded  atomic.Int64
	searchStored    atomic.Int64
	searchTableHits atomic.Int64
	searchPruned    atomic.Int64

	serveRequests   atomic.Int64
	serveOK         atomic.Int64
	serveErrors     atomic.Int64
	serveCacheHits  atomic.Int64
	serveCancelled  atomic.Int64
	serveRejected   atomic.Int64
	serveQueueDepth atomic.Int64
}

var (
	defaultMetrics Metrics
	publishOnce    sync.Once
)

// Default returns the process-wide Metrics instance — the one the shared
// runner reports into and Serve exposes.
func Default() *Metrics { return &defaultMetrics }

// JobStarted records that a job left the queue after waiting queueWait.
func (m *Metrics) JobStarted(queueWait time.Duration) {
	if m == nil {
		return
	}
	m.jobsStarted.Add(1)
	m.queueWaitNS.Add(int64(queueWait))
}

// JobCompleted records one finished job and its wall time.
func (m *Metrics) JobCompleted(wall time.Duration, failed, panicked bool) {
	if m == nil {
		return
	}
	m.jobsCompleted.Add(1)
	m.jobWallNS.Add(int64(wall))
	for {
		cur := m.maxJobWallNS.Load()
		if int64(wall) <= cur || m.maxJobWallNS.CompareAndSwap(cur, int64(wall)) {
			break
		}
	}
	if failed {
		m.jobsFailed.Add(1)
	}
	if panicked {
		m.jobsPanicked.Add(1)
	}
}

// JobCancelled records a job that ended because its batch's context was
// cancelled — counted separately from genuine failures.
func (m *Metrics) JobCancelled() {
	if m == nil {
		return
	}
	m.jobsCancelled.Add(1)
}

// CacheHit records jobs answered from the runner's result cache.
func (m *Metrics) CacheHit(n int64) {
	if m == nil {
		return
	}
	m.cacheHits.Add(n)
}

// Deduped records jobs that shared a batch-mate's in-flight computation.
func (m *Metrics) Deduped(n int64) {
	if m == nil {
		return
	}
	m.deduped.Add(n)
}

// SimRun records one completed simulation of ticks simulated make-span.
func (m *Metrics) SimRun(ticks int64) {
	if m == nil {
		return
	}
	m.simRuns.Add(1)
	m.simTicks.Add(ticks)
}

// OnlineRun records one completed online-harness run: how many compile
// events it committed and how many of those were forced on-demand
// fallbacks.
func (m *Metrics) OnlineRun(commits, forced int64) {
	if m == nil {
		return
	}
	m.onlineRuns.Add(1)
	m.onlineCommits.Add(commits)
	m.onlineForced.Add(forced)
}

// SearchRun records one completed (or budget-aborted) tree search: nodes
// expanded and stored, plus how many candidates the transposition table and
// the admissible bound pruned.
func (m *Metrics) SearchRun(expanded, stored, tableHits, pruned int64) {
	if m == nil {
		return
	}
	m.searchRuns.Add(1)
	m.searchExpanded.Add(expanded)
	m.searchStored.Add(stored)
	m.searchTableHits.Add(tableHits)
	m.searchPruned.Add(pruned)
}

// ServeRequest records one scheduling-service request received (before
// decoding or any queueing decision).
func (m *Metrics) ServeRequest() {
	if m == nil {
		return
	}
	m.serveRequests.Add(1)
}

// ServeDone records one finished scheduling-service request. Exactly one of
// the flags describes the outcome: ok (schedule returned), cancelled (the
// request's deadline or client cancellation won), or neither for any other
// error.
func (m *Metrics) ServeDone(ok, cancelled bool) {
	if m == nil {
		return
	}
	switch {
	case ok:
		m.serveOK.Add(1)
	case cancelled:
		m.serveCancelled.Add(1)
	default:
		m.serveErrors.Add(1)
	}
}

// ServeCacheHit records a request answered from the service's result cache
// (including waiters coalesced onto an in-flight computation).
func (m *Metrics) ServeCacheHit() {
	if m == nil {
		return
	}
	m.serveCacheHits.Add(1)
}

// ServeRejected records a request bounced with backpressure (queue full or
// server draining).
func (m *Metrics) ServeRejected() {
	if m == nil {
		return
	}
	m.serveRejected.Add(1)
}

// ServeQueue adjusts the scheduling-service queue-depth gauge by delta
// (+1 on enqueue, -1 on dequeue).
func (m *Metrics) ServeQueue(delta int64) {
	if m == nil {
		return
	}
	m.serveQueueDepth.Add(delta)
}

// Snapshot is a point-in-time copy of the counters, safe to marshal.
type Snapshot struct {
	JobsStarted   int64 `json:"jobs_started"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsPanicked  int64 `json:"jobs_panicked"`
	// JobsCancelled counts jobs ended by their batch context's cancellation
	// (not genuine failures, not successes).
	JobsCancelled int64 `json:"jobs_cancelled"`
	CacheHits     int64 `json:"cache_hits"`
	Deduped       int64 `json:"deduped"`
	// QueueWait is the summed time jobs spent waiting for a worker;
	// JobWall the summed job wall time; MaxJobWall the slowest single job.
	QueueWait  time.Duration `json:"queue_wait_ns"`
	JobWall    time.Duration `json:"job_wall_ns"`
	MaxJobWall time.Duration `json:"max_job_wall_ns"`
	// SimRuns counts completed simulations; SimTicks sums their make-spans.
	SimRuns  int64 `json:"sim_runs"`
	SimTicks int64 `json:"sim_ticks"`
	// OnlineRuns counts online-harness runs; OnlineCommits sums their
	// committed compile events; OnlineForced the forced on-demand subset.
	OnlineRuns    int64 `json:"online_runs"`
	OnlineCommits int64 `json:"online_commits"`
	OnlineForced  int64 `json:"online_forced"`
	// SearchRuns counts tree searches; the others sum their per-run node and
	// prune counters.
	SearchRuns      int64 `json:"search_runs"`
	SearchExpanded  int64 `json:"search_expanded"`
	SearchStored    int64 `json:"search_stored"`
	SearchTableHits int64 `json:"search_table_hits"`
	SearchPruned    int64 `json:"search_pruned"`
	// ServeRequests counts scheduling-service requests accepted for
	// processing; ServeOK/ServeErrors/ServeCancelled split their outcomes;
	// ServeCacheHits counts requests answered from the service cache;
	// ServeRejected counts backpressure bounces (429/503); ServeQueueDepth
	// is the current queue-depth gauge.
	ServeRequests   int64 `json:"serve_requests"`
	ServeOK         int64 `json:"serve_ok"`
	ServeErrors     int64 `json:"serve_errors"`
	ServeCancelled  int64 `json:"serve_cancelled"`
	ServeCacheHits  int64 `json:"serve_cache_hits"`
	ServeRejected   int64 `json:"serve_rejected"`
	ServeQueueDepth int64 `json:"serve_queue_depth"`
}

// Snapshot returns a consistent-enough copy of the counters (each counter is
// read atomically; the set is not a transaction).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		JobsStarted:   m.jobsStarted.Load(),
		JobsCompleted: m.jobsCompleted.Load(),
		JobsFailed:    m.jobsFailed.Load(),
		JobsPanicked:  m.jobsPanicked.Load(),
		JobsCancelled: m.jobsCancelled.Load(),
		CacheHits:     m.cacheHits.Load(),
		Deduped:       m.deduped.Load(),
		QueueWait:     time.Duration(m.queueWaitNS.Load()),
		JobWall:       time.Duration(m.jobWallNS.Load()),
		MaxJobWall:    time.Duration(m.maxJobWallNS.Load()),
		SimRuns:       m.simRuns.Load(),
		SimTicks:      m.simTicks.Load(),

		OnlineRuns:    m.onlineRuns.Load(),
		OnlineCommits: m.onlineCommits.Load(),
		OnlineForced:  m.onlineForced.Load(),

		SearchRuns:      m.searchRuns.Load(),
		SearchExpanded:  m.searchExpanded.Load(),
		SearchStored:    m.searchStored.Load(),
		SearchTableHits: m.searchTableHits.Load(),
		SearchPruned:    m.searchPruned.Load(),

		ServeRequests:   m.serveRequests.Load(),
		ServeOK:         m.serveOK.Load(),
		ServeErrors:     m.serveErrors.Load(),
		ServeCancelled:  m.serveCancelled.Load(),
		ServeCacheHits:  m.serveCacheHits.Load(),
		ServeRejected:   m.serveRejected.Load(),
		ServeQueueDepth: m.serveQueueDepth.Load(),
	}
}

// String renders the snapshot as one log-friendly line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"obs: %d jobs started, %d completed (%d failed, %d panicked, %d job-cancelled), %d cache hits, %d deduped, queue wait %v, job wall %v (max %v), %d sims (%d ticks), %d online runs (%d commits, %d forced), %d searches (%d expanded, %d stored, %d table hits, %d pruned), %d served (%d ok, %d cancelled, %d errored, %d serve cache hits, %d rejected, depth %d)",
		s.JobsStarted, s.JobsCompleted, s.JobsFailed, s.JobsPanicked, s.JobsCancelled,
		s.CacheHits, s.Deduped,
		s.QueueWait.Round(time.Microsecond), s.JobWall.Round(time.Microsecond),
		s.MaxJobWall.Round(time.Microsecond), s.SimRuns, s.SimTicks,
		s.OnlineRuns, s.OnlineCommits, s.OnlineForced,
		s.SearchRuns, s.SearchExpanded, s.SearchStored, s.SearchTableHits, s.SearchPruned,
		s.ServeRequests, s.ServeOK, s.ServeCancelled, s.ServeErrors,
		s.ServeCacheHits, s.ServeRejected, s.ServeQueueDepth)
}
