package obs

import (
	"fmt"
	"io"
	"strings"
)

// TimelineOptions configures WriteTimeline.
type TimelineOptions struct {
	// Width is the chart width in columns (default 100, minimum 20).
	Width int
	// FuncName maps a function id to a display name; nil falls back to
	// "f<id>". Only used by the per-event listing of small runs.
	FuncName func(f int32) string
	// MaxListed bounds the per-event listing appended under the chart; runs
	// with more spans than this render the chart only (default 24).
	MaxListed int
}

// WriteTimeline renders recorded events as an ASCII Gantt chart in the style
// of the paper's Figs. 1-2: one lane per compile worker and one execution
// lane, time flowing left to right, levels drawn as digits, stalls as '_'.
// Small runs additionally get a per-span listing with exact tick intervals,
// so a schedule can be diffed against IAR or the lower bound by eye.
func WriteTimeline(w io.Writer, events []Event, opts TimelineOptions) error {
	spans, err := Spans(events)
	if err != nil {
		return err
	}
	width := opts.Width
	if width == 0 {
		width = 100
	}
	if width < 20 {
		width = 20
	}
	name := opts.FuncName
	if name == nil {
		name = func(f int32) string { return fmt.Sprintf("f%d", f) }
	}
	maxListed := opts.MaxListed
	if maxListed == 0 {
		maxListed = 24
	}

	span, workers := spanExtent(spans)
	if span == 0 {
		_, err := fmt.Fprintln(w, "(empty run)")
		return err
	}
	scale := func(t int64) int {
		x := int(t * int64(width) / span)
		if x >= width {
			x = width - 1
		}
		return x
	}
	paint := func(lane []byte, from, to int64, glyph byte) {
		a, b := scale(from), scale(to)
		if b <= a {
			b = a + 1
		}
		for x := a; x < b && x < len(lane); x++ {
			lane[x] = glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %d ticks, %d columns (~%d ticks each)\n", span, width, span/int64(width))
	for wk := 0; wk < workers; wk++ {
		lane := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Kind == SpanCompile && int(s.Worker) == wk {
				paint(lane, s.Start, s.End, byte('0'+int(s.Level)%10))
			}
		}
		fmt.Fprintf(&b, "compile[%d] |%s|\n", wk, lane)
	}
	lane := []byte(strings.Repeat(".", width))
	for _, s := range spans {
		switch s.Kind {
		case SpanStall:
			paint(lane, s.Start, s.End, '_')
		case SpanExec:
			paint(lane, s.Start, s.End, byte('0'+int(s.Level)%10))
		}
	}
	fmt.Fprintf(&b, "execute    |%s|\n", lane)
	b.WriteString("legend: digits = optimization level, _ = execution stall, . = idle\n")

	if len(spans) <= maxListed {
		for _, s := range spans {
			switch s.Kind {
			case SpanCompile:
				fmt.Fprintf(&b, "  compile[%d] C%d(%s) [%d,%d)\n",
					s.Worker, s.Level, name(s.Func), s.Start, s.End)
			case SpanExec:
				fmt.Fprintf(&b, "  call #%d %s level %d [%d,%d)\n",
					s.Seq, name(s.Func), s.Level, s.Start, s.End)
			case SpanStall:
				fmt.Fprintf(&b, "  stall for %s [%d,%d)\n", name(s.Func), s.Start, s.End)
			}
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}
