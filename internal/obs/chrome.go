package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeOptions configures WriteChromeTrace.
type ChromeOptions struct {
	// FuncName maps a function id to a display name; nil falls back to
	// "f<id>".
	FuncName func(f int32) string
	// Process labels the run in the trace viewer (default "jitsched").
	Process string
}

// chromeEvent is one trace_event record. The field set follows the Chrome
// Trace Event Format's "complete event" (ph "X"): a name, timestamp and
// duration in microseconds, and a pid/tid pair selecting the lane. One
// simulator tick is exported as one microsecond.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata record ("M" phase) naming a process or thread.
type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// chromeFile is the JSON object form of a trace file, loadable by
// chrome://tracing and by Perfetto.
type chromeFile struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// Execution-side lanes share the compile workers' pid but use tids above any
// worker index, so the viewer shows one process with one row per lane.
const (
	chromePID    = 1
	execTID      = 0 // execution lane
	workerTIDOff = 1 // compile worker w renders as tid w+1
)

// WriteChromeTrace renders recorded events as a Chrome trace_event JSON file.
// Compile spans land on one thread lane per worker, calls and stalls on the
// execution lane, so the viewer reproduces the paper's Fig. 1/2 Gantt view.
func WriteChromeTrace(w io.Writer, events []Event, opts ChromeOptions) error {
	spans, err := Spans(events)
	if err != nil {
		return err
	}
	name := opts.FuncName
	if name == nil {
		name = func(f int32) string { return fmt.Sprintf("f%d", f) }
	}
	process := opts.Process
	if process == "" {
		process = "jitsched"
	}

	_, workers := spanExtent(spans)
	out := make([]any, 0, len(spans)+workers+2)
	out = append(out, chromeMeta{Name: "process_name", Phase: "M", PID: chromePID,
		Args: map[string]any{"name": process}})
	out = append(out, chromeMeta{Name: "thread_name", Phase: "M", PID: chromePID, TID: execTID,
		Args: map[string]any{"name": "execute"}})
	for wk := 0; wk < workers; wk++ {
		out = append(out, chromeMeta{Name: "thread_name", Phase: "M", PID: chromePID, TID: wk + workerTIDOff,
			Args: map[string]any{"name": fmt.Sprintf("compile[%d]", wk)}})
	}
	for _, s := range spans {
		ev := chromeEvent{Phase: "X", TS: s.Start, Dur: s.End - s.Start, PID: chromePID}
		switch s.Kind {
		case SpanCompile:
			ev.Name = fmt.Sprintf("C%d(%s)", s.Level, name(s.Func))
			ev.Cat = "compile"
			ev.TID = int(s.Worker) + workerTIDOff
			ev.Args = map[string]any{"func": s.Func, "level": s.Level, "event": s.Seq}
		case SpanExec:
			ev.Name = name(s.Func)
			ev.Cat = "exec"
			ev.TID = execTID
			ev.Args = map[string]any{"func": s.Func, "level": s.Level, "call": s.Seq}
		case SpanStall:
			ev.Name = fmt.Sprintf("stall(%s)", name(s.Func))
			ev.Cat = "stall"
			ev.TID = execTID
			ev.Args = map[string]any{"func": s.Func, "call": s.Seq}
		}
		out = append(out, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}
