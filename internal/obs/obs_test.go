package obs

import (
	"testing"
)

func TestDisabledRecorderDropsEverything(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.CompileStart(0, 1, 2, 0, 0)
	r.CompileEnd(5, 1, 2, 0, 0)
	r.ExecStart(5, 1, 2, 0)
	r.ExecEnd(9, 1, 2, 0)
	r.Stall(0, 5, 1, 0)
	r.Record(Event{Kind: KindStall})
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Errorf("nil recorder kept events: len=%d", r.Len())
	}
}

// TestDisabledRecorderZeroAlloc is the overhead contract of the package doc:
// the disabled recorder must not allocate. The Makefile bench-guard target
// runs this in CI.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.CompileStart(0, 1, 2, 0, 0)
		r.CompileEnd(5, 1, 2, 0, 0)
		r.Stall(5, 3, 1, 0)
		r.ExecStart(8, 1, 2, 0)
		r.ExecEnd(12, 1, 2, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ExecStart(int64(i), 1, 2, int32(i))
		r.ExecEnd(int64(i)+4, 1, 2, int32(i))
	}
}

func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Len() > 1<<16 {
			r.Reset()
		}
		r.ExecStart(int64(i), 1, 2, int32(i))
		r.ExecEnd(int64(i)+4, 1, 2, int32(i))
	}
}

func TestRecorderRecordsInOrder(t *testing.T) {
	r := NewRecorder()
	r.CompileStart(0, 7, 2, 0, 0)
	r.CompileEnd(10, 7, 2, 0, 0)
	r.Stall(0, 10, 7, 0)
	r.ExecStart(10, 7, 2, 0)
	r.ExecEnd(14, 7, 2, 0)
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	wantKinds := []Kind{KindCompileStart, KindCompileEnd, KindStall, KindExecStart, KindExecEnd}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if evs[2].Dur != 10 {
		t.Errorf("stall dur = %d, want 10", evs[2].Dur)
	}
	if evs[3].Worker != -1 || evs[0].Worker != 0 {
		t.Errorf("lane assignment wrong: exec worker %d, compile worker %d", evs[3].Worker, evs[0].Worker)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("reset left %d events", r.Len())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCompileStart: "compile-start",
		KindCompileEnd:   "compile-end",
		KindExecStart:    "exec-start",
		KindExecEnd:      "exec-end",
		KindStall:        "stall",
		Kind(99):         "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	for k, want := range map[SpanKind]string{
		SpanCompile:  "compile",
		SpanExec:     "exec",
		SpanStall:    "stall",
		SpanKind(99): "SpanKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
