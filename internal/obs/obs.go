// Package obs is the observability layer of the reproduction: typed span
// events recorded by the simulator, exporters that render a recorded run as
// a Chrome trace_event file or an ASCII timeline, and process-wide metrics
// with an optional expvar/pprof HTTP endpoint.
//
// The package sits below internal/sim and internal/runner in the dependency
// order (it imports nothing from the repository), so every subsystem can
// report through it without cycles. Function and level identifiers are plain
// integers here; callers that know the workload attach names at export time
// via the exporters' name callbacks.
//
// # Overhead contract
//
// Recording is opt-in per simulation and must never tax runs that do not ask
// for it. A nil *Recorder is the disabled recorder: every Emit method is
// nil-safe, takes only scalar arguments, and performs zero heap allocations
// when disabled. TestDisabledRecorderZeroAlloc and the sim package's
// recorder-off benchmark hold the layer to that contract, and the Makefile's
// bench-guard target runs both in CI.
package obs

import "fmt"

// Kind discriminates the event types a simulated run produces.
type Kind uint8

const (
	// KindCompileStart and KindCompileEnd bracket one compilation event
	// occupying one compile worker.
	KindCompileStart Kind = iota
	KindCompileEnd
	// KindExecStart and KindExecEnd bracket one call on the execution
	// worker.
	KindExecStart
	KindExecEnd
	// KindStall is a span during which the execution worker sat waiting for
	// a compilation to finish (a "bubble" in the paper's terms). Its
	// duration is carried in Event.Dur.
	KindStall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCompileStart:
		return "compile-start"
	case KindCompileEnd:
		return "compile-end"
	case KindExecStart:
		return "exec-start"
	case KindExecEnd:
		return "exec-end"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded simulator event. All fields are scalars so that
// emitting an event never allocates.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Time is the simulated tick the event happened at.
	Time int64
	// Dur is the span length for KindStall events and zero otherwise
	// (start/end pairs carry their extent in their two timestamps).
	Dur int64
	// Func is the function the event concerns.
	Func int32
	// Level is the compilation level involved, or -1 when not applicable
	// (stalls wait for whatever level arrives first).
	Level int32
	// Worker is the compile-worker lane for compile events and -1 for
	// execution-side events.
	Worker int32
	// Seq is the schedule-event index for compile events and the call index
	// for execution-side events.
	Seq int32
}

// Recorder accumulates events of one simulated run in emission order. The
// zero value is ready to use; a nil Recorder is the disabled recorder and
// drops everything without allocating.
type Recorder struct {
	events []Event
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events are being kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one event (no-op on the disabled recorder).
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// CompileStart records that worker started compiling f at level l as
// schedule event seq.
func (r *Recorder) CompileStart(t int64, f, l, worker, seq int32) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: KindCompileStart, Time: t, Func: f, Level: l, Worker: worker, Seq: seq})
}

// CompileEnd records that worker finished compiling f at level l.
func (r *Recorder) CompileEnd(t int64, f, l, worker, seq int32) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: KindCompileEnd, Time: t, Func: f, Level: l, Worker: worker, Seq: seq})
}

// ExecStart records that call number seq to f began at level l.
func (r *Recorder) ExecStart(t int64, f, l, seq int32) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: KindExecStart, Time: t, Func: f, Level: l, Worker: -1, Seq: seq})
}

// ExecEnd records that call number seq to f finished.
func (r *Recorder) ExecEnd(t int64, f, l, seq int32) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: KindExecEnd, Time: t, Func: f, Level: l, Worker: -1, Seq: seq})
}

// Stall records that the execution worker waited dur ticks for a version of
// f before call number seq could start.
func (r *Recorder) Stall(t, dur int64, f, seq int32) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: KindStall, Time: t, Dur: dur, Func: f, Level: -1, Worker: -1, Seq: seq})
}

// Events returns the recorded events in emission order. The slice is owned
// by the recorder; callers must not retain it across a Reset.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports the number of recorded events (0 when disabled).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Reset drops all events but keeps the backing storage, so a recorder can be
// reused across runs without reallocating.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}
