package exact

// nogoodTable is the per-probe visited-state set: open-addressed with linear
// probing, keys in one flat byte arena (fixed stride). reset keeps every
// grown allocation for the next probe, so a warm solver's probes do not touch
// the heap. It is the single-shard cousin of the BnB transposition table
// (internal/astar/transpose.go) — the DFS is single-threaded, so sharding
// would buy nothing.
type nogoodTable struct {
	stride int
	hashes []uint64 // 0 marks an empty slot
	keys   []byte   // slot i's key at [i*stride, (i+1)*stride)
	n      int
}

// nogoodMinSlots is the initial slot count (power of two).
const nogoodMinSlots = 1 << 10

// reset prepares the table for a probe over keys of the given stride, keeping
// previously grown storage when the stride matches.
func (t *nogoodTable) reset(stride int) {
	t.stride = stride
	if len(t.hashes) == 0 || stride*len(t.hashes) != len(t.keys) {
		t.hashes = make([]uint64, nogoodMinSlots)
		t.keys = make([]byte, nogoodMinSlots*stride)
	} else {
		clear(t.hashes)
	}
	t.n = 0
}

// states returns the number of distinct states stored.
func (t *nogoodTable) states() int { return t.n }

// insert records key and reports whether it was already present.
func (t *nogoodTable) insert(key []byte) bool {
	hash := fnvHash(key)
	if 4*(t.n+1) > 3*len(t.hashes) {
		t.grow()
	}
	mask := uint64(len(t.hashes) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		switch {
		case t.hashes[i] == 0:
			t.hashes[i] = hash
			copy(t.keys[int(i)*t.stride:], key)
			t.n++
			return false
		case t.hashes[i] == hash && keyEqual(t.keys[int(i)*t.stride:(int(i)+1)*t.stride], key):
			return true
		}
	}
}

// grow doubles the table, re-probing every occupied slot.
func (t *nogoodTable) grow() {
	oldHashes, oldKeys := t.hashes, t.keys
	n := 2 * len(oldHashes)
	t.hashes = make([]uint64, n)
	t.keys = make([]byte, n*t.stride)
	mask := uint64(n - 1)
	for j, h := range oldHashes {
		if h == 0 {
			continue
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if t.hashes[i] == 0 {
				t.hashes[i] = h
				copy(t.keys[int(i)*t.stride:], oldKeys[j*t.stride:(j+1)*t.stride])
				break
			}
		}
	}
}

// fnvHash is FNV-1a over the key bytes, with 0 remapped so it can serve as
// the empty-slot marker.
func fnvHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// keyEqual avoids importing bytes for one hot comparison.
func keyEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
