package exact

import (
	"context"

	"repro/internal/ocsp"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The threshold DFS behind each decision probe: a complete depth-first
// branch-and-bound over the Fig. 4 tree, seeded with incumbent threshold+1.
// Three prunes keep it small:
//
//   - the prefix-chain bound ocsp.Tables.CostBoundTight against the evolving
//     incumbent (admissible, so nothing on the path to a strictly better
//     schedule is ever cut);
//   - a no-good table on the exact state key (compiled-level mask, cursor
//     index, effective frontier) — the same canonicalization as the BnB
//     transposition table, and for the same reason only EXACT matching is
//     sound (see internal/astar/transpose.go for the dominance
//     counterexample). A revisited state cannot improve on its first visit:
//     the subtree under a state is a function of the state alone, and the
//     incumbent only tightens over time, so anything the revisit could find
//     the first visit already found;
//   - the quiet-tail symmetry rule: when the previous event committed no
//     calls and the candidate event's span still ends at or before the
//     execution clock, the two events commit nothing in either order and
//     both orders reach the identical state — so only the canonical
//     (ascending pair-rank) order is expanded. The no-good table would catch
//     the duplicate anyway; the rule skips the Load/Advance/hash work of
//     ever generating it.
//
// Children are scored once at generation and recursed best-bound-first (ties
// by pair rank, so the order is deterministic). On a feasible probe this
// makes the first dive nearly greedy — it reaches a close-to-optimal complete
// schedule immediately, and the tightened incumbent then prunes the rest of
// the tree the way BnB's best-first pop order does. The skip set of the
// symmetry rule depends only on the inbound edge, not on sibling visit order,
// so reordering preserves completeness.
const cancelStride = 256

// childK is one scored candidate child, buffered per depth so warm solves
// never reallocate the generation scratch.
type childK struct {
	cur   ocsp.Cursor
	bound int64
	span  int64
	rank  int32
	quiet bool
	f     trace.FuncID
	l     profile.Level
}

// dfsProbe answers "does a completion with cost <= threshold exist?" by
// complete search, and — because the search is a full branch-and-bound under
// an admissible bound — returns the globally optimal schedule whenever the
// answer is yes. On success the schedule is left in s.best.
func (s *Solver) dfsProbe(ctx context.Context, threshold int64) (found bool, cost, span int64, err error) {
	tab := s.tab
	res := &s.res
	s.table.reset(s.stride)
	clear(s.next)
	clear(s.mask)
	prefix := s.prefix[:0]
	bestLocal := threshold + 1
	var bestSpan int64
	done := ctx.Done()
	ncalls := tab.Tr.Len()

	var rec func(cur ocsp.Cursor, lastRank int, lastQuiet bool) error
	rec = func(cur ocsp.Cursor, lastRank int, lastQuiet bool) error {
		if s.alloc++; s.alloc > s.maxNodes {
			return ErrBudgetExhausted
		}
		if s.alloc%cancelStride == 0 && cancelled(done) {
			return cancelErr(ctx)
		}
		s.pe.Load(prefix)
		nspan := s.pe.Span()
		// No bound check here: the caller pruned on this node's bound (computed
		// at generation from the identical state) against the same incumbent
		// immediately before recursing.
		if s.table.insert(s.stateKey(cur, nspan, ncalls)) {
			res.TableHits++
			return nil
		}
		missing := 0
		for _, f := range tab.Order {
			if s.next[f] == 0 {
				missing++
			}
		}
		if missing == 0 {
			full, mspan := s.pe.Finish(cur)
			if full < bestLocal {
				bestLocal, bestSpan = full, mspan
				s.best = append(s.best[:0], prefix...)
				found = true
			}
		}
		res.NodesExpanded++

		// Generate and score every child against one evaluator load, then
		// recurse best-bound-first.
		depth := len(prefix)
		if depth == len(s.kidStack) {
			s.kidStack = append(s.kidStack, nil)
		}
		kids := s.kidStack[depth][:0]
		for oi, f := range tab.Order {
			for l := s.next[f]; int(l) < tab.Levels; l++ {
				rank := oi*tab.Levels + int(l)
				cspan := nspan + tab.Compile[int(f)*tab.Levels+int(l)]
				if lastQuiet && rank < lastRank && cur.ExecT >= cspan {
					// Both this event and the previous one commit no calls
					// (every remaining call starts at or past ExecT >= the
					// final span), so swapping them reaches the identical
					// state; the ascending-rank order was generated from the
					// parent already.
					res.SymmetrySkipped++
					continue
				}
				ccur, _ := s.pe.Advance(cur, sim.CompileEvent{Func: f, Level: l})
				saved := s.next[f]
				s.next[f] = l + 1
				cb := tab.CostBoundTight(ccur, cspan, s.next)
				s.next[f] = saved
				kids = append(kids, childK{
					cur: ccur, bound: cb, span: cspan,
					rank: int32(rank), quiet: ccur == cur, f: f, l: l,
				})
			}
		}
		s.kidStack[depth] = kids
		// Insertion sort on (bound, rank): deterministic, allocation-free, and
		// the child lists are tiny (at most pairs-per-instance entries).
		for i := 1; i < len(kids); i++ {
			k := kids[i]
			j := i - 1
			for j >= 0 && (kids[j].bound > k.bound || (kids[j].bound == k.bound && kids[j].rank > k.rank)) {
				kids[j+1] = kids[j]
				j--
			}
			kids[j+1] = k
		}
		for i := range kids {
			ch := &kids[i]
			// Re-check against the incumbent: earlier siblings may have
			// tightened it past this child's generation-time bound.
			if ch.bound >= bestLocal {
				res.BoundPruned++
				continue
			}
			prefix = append(prefix, sim.CompileEvent{Func: ch.f, Level: ch.l})
			saved := s.next[ch.f]
			s.next[ch.f] = ch.l + 1
			mb := s.mask[ch.f]
			s.mask[ch.f] = mb | 1<<uint(ch.l)
			err := rec(ch.cur, int(ch.rank), ch.quiet)
			s.mask[ch.f] = mb
			s.next[ch.f] = saved
			prefix = prefix[:len(prefix)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}

	err = rec(ocsp.Cursor{}, -1, false)
	s.prefix = prefix[:0]
	if stored := s.table.states(); stored > res.StatesStored {
		res.StatesStored = stored
	}
	if err != nil {
		return false, 0, 0, err
	}
	return found, bestLocal, bestSpan, nil
}

// stateKey writes the node's canonical state — compiled-level mask, cursor
// index, key frontier — into the solver's key buffer (stride bytes).
func (s *Solver) stateKey(cur ocsp.Cursor, span int64, ncalls int) []byte {
	n := copy(s.keyBuf, s.mask)
	ke := ocsp.KeyFrontier(cur, span, ncalls)
	s.keyBuf[n] = byte(cur.I)
	s.keyBuf[n+1] = byte(cur.I >> 8)
	s.keyBuf[n+2] = byte(cur.I >> 16)
	s.keyBuf[n+3] = byte(cur.I >> 24)
	for k := 0; k < 8; k++ {
		s.keyBuf[n+4+k] = byte(ke >> (8 * k))
	}
	return s.keyBuf
}
