package exact

import (
	"fmt"

	"repro/internal/exact/satsolve"
)

// The CNF refutation probe: a sound relaxation of "a schedule with make-span
// at most T exists", handed to the CDCL solver. UNSAT proves the decision
// question infeasible and skips the probe's whole tree search; Sat or Unknown
// proves nothing (the relaxation drops exact timing) and the DFS decides.
//
// # The encoding
//
// A schedule is an ordered sequence of distinct (function, level) pairs —
// distinct because a function's levels are strictly ascending, so no pair
// repeats. The encoding places pairs at positions:
//
//	s[p][k]  — pair p is the k-th compile event (0-based position k)
//	occ[k]   — some pair occupies position k
//
// with the structural clauses
//
//	at most one pair per position, at most one position per pair,
//	s[p][k] → occ[k], occ[k] → ⋁_p s[p][k], occ[k] → occ[k−1]  (contiguity),
//	(f,l1) before (f,l2) for l1 < l2                           (level order),
//
// and the make-span window entering through per-function position deadlines:
// if f's first version is the j-th compile event (1-based), the single
// compile worker has spent at least pms[j] — the sum of the j smallest pair
// compile times — before it finishes, and at least SufBest[FirstCall[f]] of
// execution remains after that call can start, so
//
//	make-span ≥ pms[j] + SufBest[FirstCall[f]].
//
// D_f is the largest j for which that bound fits inside T; the deadline
// clause ⋁_{l, k < D_f} s[(f,l)][k] forces a version of f into the first D_f
// positions (implied by the first version being there). Every real schedule
// with make-span ≤ T satisfies all of the above, so UNSAT is a sound
// refutation. What the relaxation forgets — exact bubble accounting, level
// choice at call time — is exactly what the DFS checks.

// maxCNFPairs bounds the quadratic position encoding; beyond it the probe is
// skipped (the DFS simply decides alone). 64 pairs is a ~4k-variable,
// ~300k-clause ceiling, far past the sizes the oracle targets.
const maxCNFPairs = 64

// minCNFFuncs gates the probe from below: under eight unique functions a
// threshold DFS probe costs less than building the encoding, so the CNF is
// reserved for the sizes where refuting a window actually buys something.
// The gate also keeps small warm solves allocation-free outside the solver's
// reused buffers (TestSolverWarmAllocs).
const minCNFFuncs = 8

// refuteCNF reports whether the CNF relaxation proves no completion with cost
// at most threshold exists.
func (s *Solver) refuteCNF(threshold int64) bool {
	tab := s.tab
	res := &s.res
	if len(tab.Order) < minCNFFuncs {
		return false
	}
	np := len(tab.Order) * tab.Levels
	if np > maxCNFPairs {
		return false
	}
	res.SATProbes++
	tspan := threshold + tab.SufBest[0] // the make-span window

	// Per-function deadlines first: an empty deadline refutes without
	// touching the solver.
	deadline := make([]int, len(tab.Order))
	for oi, f := range tab.Order {
		tail := tab.SufBest[tab.FirstCall[f]]
		d := 0
		for j := 1; j <= np; j++ {
			if s.pms[j]+tail > tspan {
				break
			}
			d = j
		}
		if d == 0 {
			res.SATRefuted++
			return true
		}
		deadline[oi] = d
	}

	k := np // position count
	sat := satsolve.New(np*k + k)
	v := func(pi, pos int) int { return pi*k + pos + 1 }
	occ := func(pos int) int { return np*k + pos + 1 }
	add := func(lits ...int) {
		if err := sat.AddClause(lits...); err != nil {
			panic(fmt.Sprintf("exact: CNF encoder emitted a bad clause: %v", err))
		}
	}

	for pos := 0; pos < k; pos++ {
		// At most one pair per position.
		for p1 := 0; p1 < np; p1++ {
			for p2 := p1 + 1; p2 < np; p2++ {
				add(-v(p1, pos), -v(p2, pos))
			}
		}
		// Occupancy, both directions, and contiguity.
		buf := make([]int, 0, np+1)
		buf = append(buf, -occ(pos))
		for p := 0; p < np; p++ {
			add(-v(p, pos), occ(pos))
			buf = append(buf, v(p, pos))
		}
		add(buf...)
		if pos > 0 {
			add(-occ(pos), occ(pos-1))
		}
	}
	for p := 0; p < np; p++ {
		// Each pair at most once.
		for k1 := 0; k1 < k; k1++ {
			for k2 := k1 + 1; k2 < k; k2++ {
				add(-v(p, k1), -v(p, k2))
			}
		}
	}
	// Ascending level order within a function: (f,l1) strictly before (f,l2).
	for oi := range tab.Order {
		for l1 := 0; l1 < tab.Levels; l1++ {
			for l2 := l1 + 1; l2 < tab.Levels; l2++ {
				p1, p2 := oi*tab.Levels+l1, oi*tab.Levels+l2
				for k1 := 0; k1 < k; k1++ {
					for k2 := 0; k2 <= k1; k2++ {
						add(-v(p1, k1), -v(p2, k2))
					}
				}
			}
		}
	}
	// Deadlines (these subsume coverage: every function needs SOME version
	// within its first D_f positions).
	for oi := range tab.Order {
		buf := make([]int, 0, tab.Levels*deadline[oi])
		for l := 0; l < tab.Levels; l++ {
			for pos := 0; pos < deadline[oi]; pos++ {
				buf = append(buf, v(oi*tab.Levels+l, pos))
			}
		}
		add(buf...)
	}

	out := sat.Solve(satsolve.Options{MaxConflicts: s.maxConflicts})
	res.Conflicts += out.Conflicts
	res.LearnedClauses += out.Learned
	if out.Status == satsolve.Unsat {
		res.SATRefuted++
		return true
	}
	return false
}
