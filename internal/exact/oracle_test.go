package exact_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// instance builds a §6.2.5-style random two-level OCSP instance.
func instance(nf, calls int, seed int64) (*trace.Trace, *profile.Profile) {
	return experiments.AStarInstance(nf, calls, seed)
}

// TestExactMatchesBnB is the core oracle-agreement suite: on every instance
// where both terminate, exact.Solve and BnBSearch must report the identical
// optimum — across a worker × bound option matrix, and against the exhaustive
// DFS ground truth where it is feasible.
func TestExactMatchesBnB(t *testing.T) {
	sizes := []struct{ nf, calls int }{
		{3, 30}, {4, 30}, {5, 50}, {6, 50}, {7, 50}, {8, 50}, {9, 50},
	}
	if testing.Short() {
		sizes = sizes[:4]
	}
	bnbOpts := []astar.BnBOptions{
		{Workers: 1, MaxNodes: 1 << 22},
		{Workers: 1, MaxNodes: 1 << 22, TightBound: true},
		{Workers: 4, MaxNodes: 1 << 22},
	}
	for _, sz := range sizes {
		tr, p := instance(sz.nf, sz.calls, 42+int64(sz.nf))
		res, err := exact.Solve(tr, p, exact.Options{})
		if err != nil {
			t.Fatalf("nf=%d: exact.Solve: %v", sz.nf, err)
		}
		if !res.Complete {
			t.Fatalf("nf=%d: exact solve returned without proving optimality", sz.nf)
		}
		// The schedule must actually achieve the reported make-span.
		simRes, err := sim.Run(tr, p, res.Schedule, sim.Config{CompileWorkers: 1}, sim.Options{})
		if err != nil {
			t.Fatalf("nf=%d: replaying exact schedule: %v", sz.nf, err)
		}
		if simRes.MakeSpan != res.MakeSpan {
			t.Fatalf("nf=%d: exact reports make-span %d but its schedule simulates to %d",
				sz.nf, res.MakeSpan, simRes.MakeSpan)
		}
		for _, bo := range bnbOpts {
			bres, err := astar.BnBSearch(tr, p, bo)
			if errors.Is(err, astar.ErrBudgetExhausted) {
				continue // "wherever both terminate"
			}
			if err != nil {
				t.Fatalf("nf=%d workers=%d tight=%v: BnBSearch: %v", sz.nf, bo.Workers, bo.TightBound, err)
			}
			if !bres.Complete {
				continue
			}
			if bres.MakeSpan != res.MakeSpan || bres.Cost != res.Cost {
				t.Fatalf("nf=%d workers=%d tight=%v: bnb optimum (span %d cost %d) != exact (span %d cost %d)",
					sz.nf, bo.Workers, bo.TightBound, bres.MakeSpan, bres.Cost, res.MakeSpan, res.Cost)
			}
		}
		if sz.nf <= 5 && !testing.Short() {
			eres, err := astar.Exhaustive(tr, p, astar.Options{MaxNodes: 1 << 22})
			if err != nil {
				t.Fatalf("nf=%d: Exhaustive: %v", sz.nf, err)
			}
			if eres.MakeSpan != res.MakeSpan {
				t.Fatalf("nf=%d: exhaustive optimum %d != exact %d", sz.nf, eres.MakeSpan, res.MakeSpan)
			}
		}
	}
}

// TestExactMatchesBnBOnDaCapo runs the agreement check on truncated corpus
// traces — real call-sequence shapes rather than synthetic ones.
func TestExactMatchesBnBOnDaCapo(t *testing.T) {
	benches := dacapo.Suite()
	if len(benches) > 3 {
		benches = benches[:3]
	}
	maxFuncs := 8
	if testing.Short() {
		benches = benches[:1]
		maxFuncs = 6
	}
	for _, b := range benches {
		w, err := b.Load(1.0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		// Take the longest prefix (capped at 60 calls) that keeps the unique
		// function count inside the oracle's comfortable range.
		tr := w.Trace
		cut := tr.Len()
		if cut > 60 {
			cut = 60
		}
		for cut > 1 && tr.Slice(0, cut).UniqueFuncs() > maxFuncs {
			cut--
		}
		tr = tr.Slice(0, cut)
		res, err := exact.Solve(tr, w.Profile, exact.Options{})
		if err != nil {
			t.Fatalf("%s: exact.Solve: %v", b.Name, err)
		}
		bres, err := astar.BnBSearch(tr, w.Profile, astar.BnBOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: BnBSearch: %v", b.Name, err)
		}
		if !res.Complete || !bres.Complete {
			t.Fatalf("%s: incomplete solve (exact=%v bnb=%v)", b.Name, res.Complete, bres.Complete)
		}
		if res.MakeSpan != bres.MakeSpan {
			t.Fatalf("%s: exact %d != bnb %d", b.Name, res.MakeSpan, bres.MakeSpan)
		}
	}
}

// TestHeuristicsNeverBeatExact pins the oracle property: no heuristic — IAR,
// beam, or the online replanner — ever produces a schedule with a make-span
// below the certified optimum.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	seeds := []int64{1, 7, 19}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for nf := 4; nf <= 8; nf++ {
			tr, p := instance(nf, 50, seed*100+int64(nf))
			res, err := exact.Solve(tr, p, exact.Options{})
			if err != nil {
				t.Fatalf("seed=%d nf=%d: exact: %v", seed, nf, err)
			}
			cfg := sim.Config{CompileWorkers: 1}

			iarSched, err := core.IAR(tr, p, core.IAROptions{})
			if err != nil {
				t.Fatalf("seed=%d nf=%d: iar: %v", seed, nf, err)
			}
			iarRes, err := sim.Run(tr, p, iarSched, cfg, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if iarRes.MakeSpan < res.MakeSpan {
				t.Fatalf("seed=%d nf=%d: IAR make-span %d beats the exact optimum %d",
					seed, nf, iarRes.MakeSpan, res.MakeSpan)
			}

			bres, err := astar.BeamSearch(tr, p, astar.BeamOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if bres.MakeSpan < res.MakeSpan {
				t.Fatalf("seed=%d nf=%d: beam make-span %d beats the exact optimum %d",
					seed, nf, bres.MakeSpan, res.MakeSpan)
			}

			ores, err := online.Run(tr, p, online.NewIAR(p, core.IAROptions{}, 0), online.Options{Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			if ores.Sim.MakeSpan < res.MakeSpan {
				t.Fatalf("seed=%d nf=%d: online-iar make-span %d beats the exact optimum %d",
					seed, nf, ores.Sim.MakeSpan, res.MakeSpan)
			}
		}
	}
}

// TestSolveDeterminism pins the solver's determinism contract: two solves of
// one instance agree on every counter and every schedule byte.
func TestSolveDeterminism(t *testing.T) {
	tr, p := instance(8, 50, 5)
	a, err := exact.Solve(tr, p, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := exact.Solve(tr, p, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.MakeSpan != b.MakeSpan || a.Probes != b.Probes ||
		a.NodesExpanded != b.NodesExpanded || a.NodesAllocated != b.NodesAllocated ||
		a.TableHits != b.TableHits || a.BoundPruned != b.BoundPruned ||
		a.SymmetrySkipped != b.SymmetrySkipped || a.StatesStored != b.StatesStored ||
		a.SATProbes != b.SATProbes || a.SATRefuted != b.SATRefuted ||
		a.Conflicts != b.Conflicts || a.LearnedClauses != b.LearnedClauses {
		t.Fatalf("two identical solves diverged:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedule lengths diverge: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedules diverge at event %d: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
}

// TestSolveContextCancelled drives a deadline into the middle of a large
// solve and checks the ErrCancelled contract: sentinel plus context cause,
// counters filled, no schedule.
func TestSolveContextCancelled(t *testing.T) {
	tr, p := instance(13, 80, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	res, err := exact.SolveContext(ctx, tr, p, exact.Options{})
	if err == nil {
		t.Skip("instance solved before the deadline; nothing to assert")
	}
	if !errors.Is(err, exact.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap the context cause", err)
	}
	if res == nil {
		t.Fatal("cancelled solve returned a nil result")
	}
	if res.Schedule != nil {
		t.Fatal("cancelled solve leaked a partial schedule")
	}
	if res.Complete {
		t.Fatal("cancelled solve claims completeness")
	}
}

// TestSolveBudgetExhausted pins the typed budget error (the scheduling
// service's 422 path).
func TestSolveBudgetExhausted(t *testing.T) {
	tr, p := instance(9, 50, 11)
	_, err := exact.Solve(tr, p, exact.Options{MaxNodes: 50})
	if !errors.Is(err, exact.ErrBudgetExhausted) {
		t.Fatalf("got %v, want ErrBudgetExhausted", err)
	}
}

// TestSolverWarmAllocs gates the reusable solver's steady-state allocation
// footprint: after a cold run has grown every buffer, repeat solves on a
// CNF-free size (under minCNFFuncs the probes never build a satsolve.Solver)
// stay under a small ceiling — the DFS scratch, no-good table, and schedule
// buffers are all reused.
func TestSolverWarmAllocs(t *testing.T) {
	tr, p := instance(6, 50, 2)
	s, err := exact.NewSolver(tr, p, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 64
	if allocs > ceiling {
		t.Fatalf("warm exact solve allocates %.0f objects, ceiling %d", allocs, ceiling)
	}
}

// BenchmarkExactSolve reports the oracle's cost profile with its CDCL and
// pruning counters as custom metrics.
func BenchmarkExactSolve(b *testing.B) {
	tr, p := instance(9, 50, 42+9)
	s, err := exact.NewSolver(tr, p, exact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var last *exact.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.NodesExpanded), "nodes/solve")
		b.ReportMetric(float64(last.Conflicts), "conflicts/solve")
		b.ReportMetric(float64(last.LearnedClauses), "learned/solve")
		b.ReportMetric(float64(last.StatesStored), "states/solve")
	}
}
