// Package exact is the optimality oracle for OCSP: a decision-based exact
// solver that escalates a cost threshold from the lower bound and certifies
// the optimum.
//
// Where the searches of internal/astar minimize cost directly (and carry an
// incumbent through one big best-first or depth-first run), this solver asks a
// sequence of decision questions — "does a schedule with cost at most T
// exist?" — over the window [lower bound, upper bound]:
//
//   - the upper bound comes from a beam search (a real schedule, so its cost
//     is an upper bound on the optimum);
//   - the lower bound is the prefix-chain bound ocsp.Tables.CostBoundTight at
//     the root;
//   - each probe first tries to REFUTE feasibility with a CNF relaxation
//     solved by the CDCL solver in satsolve (encode.go): UNSAT proves no
//     schedule fits the window, so the whole tree search is skipped;
//   - an unrefuted probe falls to a complete threshold DFS (dfs.go) over the
//     Fig. 4 tree with tight-bound pruning, a no-good state table, and a
//     quiet-tail symmetry rule.
//
// The decision structure is what makes infeasible probes cheap: a threshold
// strictly below the optimum prunes almost everything, and the CNF refutation
// often answers without expanding a single tree node. The first FEASIBLE probe
// ends the search outright: a threshold DFS with incumbent T+1 and an
// admissible bound is a full branch-and-bound, so the best schedule it finds
// is the global optimum, not merely the best under T.
//
// Everything is deterministic — no randomness, no time, no map iteration —
// so two solves of one instance return bit-identical results and counters.
package exact

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/astar"
	"repro/internal/obs"
	"repro/internal/ocsp"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Error aliases: exact solves fail with the same sentinels as the astar
// searches, so callers (the scheduling service's 422/504 mapping above all)
// handle every search algorithm with one errors.Is.
var (
	// ErrBudgetExhausted reports that the probes' shared node budget ran out
	// before optimality was proven.
	ErrBudgetExhausted = astar.ErrBudgetExhausted
	// ErrCancelled reports context cancellation; it wraps the context cause.
	ErrCancelled = astar.ErrCancelled
)

// Options configures a solve.
type Options struct {
	// MaxNodes bounds the total DFS nodes visited across all probes of one
	// solve (the memory/time proxy, same currency as astar.Options.MaxNodes).
	// Zero means DefaultMaxNodes.
	MaxNodes int
	// MaxConflicts bounds each CNF probe's CDCL conflicts; past it the probe
	// reports Unknown and the DFS decides alone. Zero means
	// DefaultMaxConflicts.
	MaxConflicts int64
}

// DefaultMaxNodes gives the exact solver four times the classic searches'
// budget: its probes revisit parts of the tree, but the threshold pruning is
// far stronger, and this budget carries the §6.2.5 study through twelve
// unique functions (see testdata/astar_exact.txt).
const DefaultMaxNodes = 1 << 22

// probeJumpNodes is the refutation-cost watermark past which the escalation
// ladder stops climbing rung by rung and jumps to the terminal threshold.
const probeJumpNodes = 1 << 20

// DefaultMaxConflicts caps a CNF probe at a few thousand conflicts — enough
// to refute the encodings that are refutable at these sizes, small enough
// that a Sat/Unknown outcome costs a negligible slice of the solve.
const DefaultMaxConflicts = 1 << 13

// Result reports a solve.
type Result struct {
	// Schedule is the certified-optimal compilation sequence; MakeSpan its
	// simulated finish time; Cost the make-span minus the §5.2 sum of
	// best-level execution times (the tree objective).
	Schedule sim.Schedule
	MakeSpan int64
	Cost     int64
	// Complete is true when optimality was proven (always, unless an error
	// aborted the solve).
	Complete bool
	// Probes counts threshold-escalation rounds; SATProbes the CNF encodings
	// attempted, of which SATRefuted proved their window infeasible (each
	// skipping a whole DFS probe).
	Probes     int
	SATProbes  int
	SATRefuted int
	// Conflicts and LearnedClauses sum the CDCL solver's work across probes.
	Conflicts      int64
	LearnedClauses int64
	// NodesExpanded counts DFS nodes whose children were generated across all
	// probes; NodesAllocated the nodes visited (the budget currency);
	// PathsTotal the Fig. 4 root-to-leaf path estimate, for "searched k of n"
	// reporting.
	NodesExpanded  int
	NodesAllocated int
	PathsTotal     float64
	// TableHits counts nodes pruned as exact duplicates of an already-visited
	// state, BoundPruned nodes cut by the tight admissible bound against the
	// probe threshold, SymmetrySkipped children skipped by the quiet-tail
	// transposition rule, StatesStored the largest no-good table any single
	// probe built.
	TableHits       int
	BoundPruned     int
	SymmetrySkipped int
	StatesStored    int
}

// Solver is a reusable exact solver over one instance. It is not safe for
// concurrent use, but repeated Solve calls reuse the DFS scratch and the
// no-good table's storage; see TestSolverWarmAllocs.
type Solver struct {
	tab          *ocsp.Tables
	pe           *ocsp.Eval
	maxNodes     int
	maxConflicts int64
	stride       int

	// pms[j] is the sum of the j smallest compile times over all (function,
	// level) pairs — the position-deadline bound of the CNF encoding.
	pms []int64

	next     []profile.Level
	mask     []byte
	keyBuf   []byte
	prefix   sim.Schedule
	best     sim.Schedule
	table    nogoodTable
	kidStack [][]childK
	alloc    int
	res      Result

	// The beam upper bound, computed by the first solve and cached: the beam
	// is deterministic for a fixed instance, so reuse keeps warm solves
	// bit-identical to cold ones while skipping the beam's whole allocation
	// footprint (TestSolverWarmAllocs).
	ubDone  bool
	ubCost  int64
	ubSpan  int64
	ubSched sim.Schedule
}

// NewSolver validates and flattens the instance. The profile may have at most
// 8 levels (the no-good key packs a function's compiled set into one byte,
// exactly like the BnB transposition table).
func NewSolver(tr *trace.Trace, p *profile.Profile, opts Options) (*Solver, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	if maxNodes < 0 {
		return nil, fmt.Errorf("exact: MaxNodes must be non-negative, got %d", opts.MaxNodes)
	}
	maxConflicts := opts.MaxConflicts
	if maxConflicts == 0 {
		maxConflicts = DefaultMaxConflicts
	}
	if maxConflicts < 0 {
		return nil, fmt.Errorf("exact: MaxConflicts must be non-negative, got %d", opts.MaxConflicts)
	}
	if p.Levels > 8 {
		return nil, fmt.Errorf("exact: at most 8 levels supported, got %d", p.Levels)
	}
	tab, err := ocsp.NewTables(tr, p)
	if err != nil {
		return nil, err
	}
	nf := p.NumFuncs()
	s := &Solver{
		tab:          tab,
		pe:           tab.NewEval(),
		maxNodes:     maxNodes,
		maxConflicts: maxConflicts,
		stride:       nf + 12,
		next:         make([]profile.Level, nf),
		mask:         make([]byte, nf),
		keyBuf:       make([]byte, nf+12),
	}
	pairC := make([]int64, 0, len(tab.Order)*tab.Levels)
	for _, f := range tab.Order {
		for l := 0; l < tab.Levels; l++ {
			pairC = append(pairC, tab.Compile[int(f)*tab.Levels+l])
		}
	}
	sort.Slice(pairC, func(i, j int) bool { return pairC[i] < pairC[j] })
	s.pms = make([]int64, len(pairC)+1)
	for j, c := range pairC {
		s.pms[j+1] = s.pms[j] + c
	}
	return s, nil
}

// Solve runs the solver. The Result (including its Schedule) aliases the
// solver's reusable buffers and is invalidated by the next Solve; use the
// package-level Solve for an owned copy.
func (s *Solver) Solve() (*Result, error) {
	return s.SolveContext(context.Background())
}

// SolveContext is Solve with cooperative cancellation, polled every
// cancelStride DFS node visits and at every probe boundary. A done context
// aborts with ErrCancelled, counters filled, and no schedule; an un-cancelled
// solve is bit-identical to Solve.
func (s *Solver) SolveContext(ctx context.Context) (*Result, error) {
	tab := s.tab
	s.res = Result{PathsTotal: astar.TotalPaths(len(tab.Order), tab.Levels)}
	s.alloc = 0
	res := &s.res
	defer func() {
		res.NodesAllocated = s.alloc
		obs.Default().ExactSolve(res.Conflicts, res.LearnedClauses)
	}()
	if len(tab.Order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	// Upper bound: a serial beam search (deterministic, and it always
	// completes some schedule, so its cost bounds the optimum from above).
	// Computed once per solver and cached — see the ubDone field.
	if !s.ubDone {
		ub, err := astar.BeamSearchContext(ctx, tab.Tr, tab.P, astar.BeamOptions{Workers: 1})
		if err != nil {
			return res, err
		}
		if ub.Schedule == nil {
			return res, fmt.Errorf("exact: beam search produced no schedule (internal error)")
		}
		s.ubCost, s.ubSpan = ub.Cost, ub.MakeSpan
		s.ubSched = append(s.ubSched[:0], ub.Schedule...)
		s.ubDone = true
	}
	bestCost, bestSpan := s.ubCost, s.ubSpan
	s.best = append(s.best[:0], s.ubSched...)

	clear(s.next)
	lo := tab.CostBoundTight(ocsp.Cursor{}, 0, s.next)
	if lo < 0 {
		lo = 0
	}

	// Threshold escalation on the cost, from below. Invariant: optimum ∈
	// [lo, bestCost]. Each round probes a threshold T >= lo; an infeasible
	// probe (CNF refutation or an empty-handed complete DFS) raises lo to
	// T+1, and a feasible DFS probe — a full branch-and-bound seeded with
	// incumbent T+1 — returns the GLOBAL optimum and ends the loop outright.
	// If lo meets bestCost first, the beam schedule itself is provably
	// optimal.
	//
	// T starts at lo and the step doubles after every infeasible probe
	// (IDA*-style). Probing low is what keeps the solve cheap in both
	// directions: below the optimum the tight incumbent T+1 makes the
	// refutation DFS collapse, and the first threshold at or past the
	// optimum arrives with the tightest incumbent any probe could have. A
	// bisecting probe order would instead open midpoint thresholds far above
	// the optimum, where the slack incumbent lets the tree explode. The
	// doubling still bounds the round count logarithmically in the
	// bound-to-optimum gap.
	//
	// Refutation cost itself grows exponentially in T − lower bound, so once
	// one refutation DFS crosses probeJumpNodes the remaining rungs would
	// each cost more than finishing outright: the ladder jumps to the
	// terminal threshold bestCost−1, a plain branch-and-bound whose
	// dynamically tightening incumbent supplies the pruning the skipped
	// rungs would have bought.
	step := int64(1)
	for lo < bestCost {
		if cancelled(ctx.Done()) {
			return res, cancelErr(ctx)
		}
		t := lo + step - 1
		if t >= bestCost {
			t = bestCost - 1
		}
		res.Probes++
		if s.refuteCNF(t) {
			lo = t + 1
			step *= 2
			continue
		}
		before := s.alloc
		found, c, span, err := s.dfsProbe(ctx, t)
		if err != nil {
			return res, err
		}
		if found {
			bestCost, bestSpan = c, span
			break
		}
		lo = t + 1
		if s.alloc-before > probeJumpNodes {
			step = bestCost // clamps to the terminal threshold next round
		} else {
			step *= 2
		}
	}
	res.Schedule = s.best
	res.MakeSpan = bestSpan
	res.Cost = bestCost
	res.Complete = true
	return res, nil
}

// Solve builds a solver, runs it once, and returns an independent Result.
func Solve(tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	return SolveContext(context.Background(), tr, p, opts)
}

// SolveContext is Solve with cooperative cancellation.
func SolveContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	s, err := NewSolver(tr, p, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.SolveContext(ctx)
	if res != nil {
		out := *res
		out.Schedule = res.Schedule.Clone()
		res = &out
	}
	return res, err
}

// cancelled is the non-blocking cancellation poll (nil channel — no context —
// is never ready).
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// cancelErr builds the ErrCancelled chain for a done context, matching the
// astar searches so errors.Is sees both the sentinel and the context cause.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}
