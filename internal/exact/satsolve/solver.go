// Package satsolve is a small, deterministic CDCL SAT solver: two-watched-
// literal unit propagation, first-UIP conflict-driven clause learning,
// activity-driven (VSIDS-style) branching with phase saving, and Luby
// restarts. It exists for two callers: internal/exact's bounded-make-span
// CNF probes, and internal/npc's SolveSAT (where the 2^n brute-force
// enumeration tops out at MaxBruteForceVars).
//
// Determinism contract: the solver uses no randomness, no time, and no map
// iteration. Branching breaks activity ties by lowest variable index, the
// initial phase is false, and clause/watch orders depend only on the input
// order — so two runs over the same clauses make bit-identical decisions.
// internal/npc's differential tests pin the solver against the brute-force
// reference across randomized formulas.
package satsolve

import "fmt"

// Status is a solve outcome.
type Status int

const (
	// Unknown means the conflict budget ran out before a proof either way.
	Unknown Status = iota
	// Sat means a verified satisfying assignment was found.
	Sat
	// Unsat means the formula was refuted.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Options bounds a solve.
type Options struct {
	// MaxConflicts stops the search with Unknown after that many conflicts
	// (0 means no budget: run to an answer).
	MaxConflicts int64
}

// Result reports a solve and its effort counters.
type Result struct {
	Status Status
	// Assignment[v] is variable v+1's value when Status == Sat (nil
	// otherwise). It is verified against every clause before being returned.
	Assignment   []bool
	Conflicts    int64
	Learned      int64 // learned clauses added
	Propagations int64
	Decisions    int64
	Restarts     int64
}

// Solver accumulates a CNF formula and solves it once. Literals use the
// DIMACS convention: ±v for 1-based variable v.
type Solver struct {
	nvars   int
	assigns []int8  // 1 true, -1 false, 0 unassigned
	level   []int32 // decision level of an assigned variable
	reason  []int32 // clause index forcing the assignment, -1 for decisions
	// Clauses live back to back in lits; clause ci spans
	// lits[start[ci]:start[ci+1]]. Internal literal encoding: 2v for
	// variable v (0-based) positive, 2v+1 negated.
	lits     []int32
	start    []int32
	watches  [][]int32 // watches[l]: clauses currently watching literal l
	units    []int32   // top-level unit literals queued at add time
	trail    []int32
	trailLim []int32
	qhead    int
	activity []float64
	varInc   float64
	phase    []bool
	seen     []bool
	learnt   []int32
	empty    bool // an empty (immediately false) clause was added
	res      Result
}

// New returns a solver over nvars variables.
func New(nvars int) *Solver {
	s := &Solver{
		nvars:    nvars,
		assigns:  make([]int8, nvars),
		level:    make([]int32, nvars),
		reason:   make([]int32, nvars),
		watches:  make([][]int32, 2*nvars),
		activity: make([]float64, nvars),
		varInc:   1,
		phase:    make([]bool, nvars),
		seen:     make([]bool, nvars),
		start:    []int32{0},
	}
	return s
}

// NumClauses reports how many clauses have been added (units included,
// tautologies excluded).
func (s *Solver) NumClauses() int { return len(s.start) - 1 + len(s.units) }

// NumVars reports the variable count.
func (s *Solver) NumVars() int { return s.nvars }

// AddClause adds one clause of DIMACS literals. Duplicate literals are
// dropped; a clause holding both v and ¬v is a tautology and is skipped; an
// empty clause marks the formula unsatisfiable.
func (s *Solver) AddClause(clause ...int) error {
	buf := make([]int32, 0, len(clause))
outer:
	for _, l := range clause {
		v := l
		if v < 0 {
			v = -v
		}
		if v < 1 || v > s.nvars {
			return fmt.Errorf("satsolve: literal %d outside 1..%d", l, s.nvars)
		}
		enc := int32(2 * (v - 1))
		if l < 0 {
			enc++
		}
		for _, e := range buf {
			if e == enc {
				continue outer // duplicate literal
			}
			if e == enc^1 {
				return nil // tautology: always satisfied
			}
		}
		buf = append(buf, enc)
	}
	switch len(buf) {
	case 0:
		s.empty = true
	case 1:
		s.units = append(s.units, buf[0])
	default:
		ci := int32(len(s.start) - 1)
		s.lits = append(s.lits, buf...)
		s.start = append(s.start, int32(len(s.lits)))
		s.watches[buf[0]] = append(s.watches[buf[0]], ci)
		s.watches[buf[1]] = append(s.watches[buf[1]], ci)
	}
	return nil
}

func (s *Solver) clause(ci int32) []int32 { return s.lits[s.start[ci]:s.start[ci+1]] }

func (s *Solver) value(lit int32) int8 {
	v := s.assigns[lit>>1]
	if lit&1 == 1 {
		return -v
	}
	return v
}

// enqueue asserts lit with the given reason clause (-1 for decisions and
// top-level units); it reports false on an immediate contradiction.
func (s *Solver) enqueue(lit, reason int32) bool {
	switch s.value(lit) {
	case 1:
		return true
	case -1:
		return false
	}
	v := lit >> 1
	if lit&1 == 1 {
		s.assigns[v] = -1
	} else {
		s.assigns[v] = 1
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = reason
	s.trail = append(s.trail, lit)
	return true
}

// propagate runs unit propagation to fixpoint and returns the conflicting
// clause index, or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.res.Propagations++
		falsified := p ^ 1
		ws := s.watches[falsified]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := s.clause(ci)
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit under the assignment, or conflicting.
			ws[j] = ci
			j++
			if s.value(c[0]) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falsified] = ws[:j]
				s.qhead = len(s.trail)
				return ci
			}
			s.enqueue(c[0], ci)
		}
		s.watches[falsified] = ws[:j]
	}
	return -1
}

// bump raises a variable's activity, rescaling all activities when the
// increment overflows its range.
func (s *Solver) bump(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives the first-UIP learned clause from a conflict and returns
// the backtrack level. The clause lands in s.learnt with the asserting
// literal first.
func (s *Solver) analyze(confl int32) int {
	s.learnt = append(s.learnt[:0], 0) // slot for the asserting literal
	counter := 0
	var p int32 = -1
	idx := len(s.trail) - 1
	curLevel := int32(len(s.trailLim))
	for {
		for _, q := range s.clause(confl) {
			if q == p {
				continue
			}
			v := q >> 1
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bump(v)
			if s.level[v] >= curLevel {
				counter++
			} else {
				s.learnt = append(s.learnt, q)
			}
		}
		for !s.seen[s.trail[idx]>>1] {
			idx--
		}
		p = s.trail[idx]
		s.seen[p>>1] = false
		idx--
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p>>1]
	}
	s.learnt[0] = p ^ 1
	back := 0
	for _, q := range s.learnt[1:] {
		s.seen[q>>1] = false
		if l := int(s.level[q>>1]); l > back {
			back = l
		}
	}
	return back
}

// backtrack undoes every assignment above level, saving phases.
func (s *Solver) backtrack(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		lit := s.trail[i]
		v := lit >> 1
		s.phase[v] = lit&1 == 0
		s.assigns[v] = 0
		s.reason[v] = -1
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// record installs the learned clause and enqueues its asserting literal.
func (s *Solver) record() {
	lits := s.learnt
	if len(lits) == 1 {
		s.enqueue(lits[0], -1)
		return
	}
	// Watch the asserting literal and a literal from the backtrack level so
	// the watch invariant holds immediately after the jump.
	wi := 1
	for k := 2; k < len(lits); k++ {
		if s.level[lits[k]>>1] > s.level[lits[wi]>>1] {
			wi = k
		}
	}
	lits[1], lits[wi] = lits[wi], lits[1]
	ci := int32(len(s.start) - 1)
	s.lits = append(s.lits, lits...)
	s.start = append(s.start, int32(len(s.lits)))
	s.watches[lits[0]] = append(s.watches[lits[0]], ci)
	s.watches[lits[1]] = append(s.watches[lits[1]], ci)
	s.res.Learned++
	s.enqueue(lits[0], ci)
}

// pickBranch returns the unassigned variable with the highest activity
// (lowest index on ties), or -1 when everything is assigned.
func (s *Solver) pickBranch() int32 {
	best := int32(-1)
	var bestAct float64
	for v := 0; v < s.nvars; v++ {
		if s.assigns[v] != 0 {
			continue
		}
		if best < 0 || s.activity[v] > bestAct {
			best, bestAct = int32(v), s.activity[v]
		}
	}
	return best
}

// luby is the Luby restart sequence (1,1,2,1,1,2,4,…).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i >= int64(1)<<(k-1) && i < (int64(1)<<k)-1 {
			return luby(i - (int64(1)<<(k-1) - 1))
		}
	}
}

// lubyUnit is the restart interval multiplier, in conflicts.
const lubyUnit = 64

// Solve runs the search. The solver is single-shot: call once per formula.
func (s *Solver) Solve(opts Options) Result {
	s.res = Result{}
	if s.empty {
		s.res.Status = Unsat
		return s.res
	}
	for _, u := range s.units {
		if !s.enqueue(u, -1) {
			s.res.Status = Unsat
			return s.res
		}
	}
	if s.propagate() >= 0 {
		s.res.Status = Unsat
		return s.res
	}
	var restartNum int64 = 1
	restartBudget := luby(restartNum) * lubyUnit
	var sinceRestart int64
	for {
		confl := s.propagate()
		if confl >= 0 {
			s.res.Conflicts++
			sinceRestart++
			if len(s.trailLim) == 0 {
				s.res.Status = Unsat
				return s.res
			}
			back := s.analyze(confl)
			s.backtrack(back)
			s.record()
			s.varInc /= 0.95
			if opts.MaxConflicts > 0 && s.res.Conflicts >= opts.MaxConflicts {
				s.res.Status = Unknown
				return s.res
			}
			if sinceRestart >= restartBudget {
				restartNum++
				restartBudget = luby(restartNum) * lubyUnit
				sinceRestart = 0
				s.res.Restarts++
				s.backtrack(0)
			}
			continue
		}
		v := s.pickBranch()
		if v < 0 {
			s.res.Status = Sat
			s.res.Assignment = s.extract()
			return s.res
		}
		s.res.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		lit := 2 * v
		if !s.phase[v] {
			lit++
		}
		s.enqueue(lit, -1)
	}
}

// extract copies the model out, verifying it satisfies every original
// clause (a wrong model here would be a solver bug; the check turns it into
// a loud panic instead of a silent wrong answer).
func (s *Solver) extract() []bool {
	out := make([]bool, s.nvars)
	for v := range out {
		out[v] = s.assigns[v] == 1
	}
	for _, u := range s.units {
		if !litTrue(u, out) {
			panic("satsolve: model violates a unit clause")
		}
	}
	for ci := 0; ci < len(s.start)-1; ci++ {
		ok := false
		for _, l := range s.clause(int32(ci)) {
			if litTrue(l, out) {
				ok = true
				break
			}
		}
		if !ok {
			panic("satsolve: model violates a clause")
		}
	}
	return out
}

func litTrue(lit int32, model []bool) bool {
	return model[lit>>1] == (lit&1 == 0)
}
