package satsolve

import (
	"math/rand"
	"testing"
)

// bruteSat is the 2^n reference oracle.
func bruteSat(nvars int, clauses [][]int) bool {
	assign := make([]bool, nvars)
	var sat func(c []int) bool
	sat = func(c []int) bool {
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if assign[v-1] == (l > 0) {
				return true
			}
		}
		return false
	}
	for mask := 0; mask < 1<<nvars; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		ok := true
		for _, c := range clauses {
			if !sat(c) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func solve(t *testing.T, nvars int, clauses [][]int) Result {
	t.Helper()
	s := New(nvars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			t.Fatalf("AddClause(%v): %v", c, err)
		}
	}
	return s.Solve(Options{})
}

func TestSolveBasics(t *testing.T) {
	cases := []struct {
		name    string
		nvars   int
		clauses [][]int
		want    Status
	}{
		{"single unit", 1, [][]int{{1}}, Sat},
		{"contradicting units", 1, [][]int{{1}, {-1}}, Unsat},
		{"empty clause", 2, [][]int{{1, 2}, {}}, Unsat},
		{"implication chain", 3, [][]int{{1}, {-1, 2}, {-2, 3}, {-3}}, Unsat},
		{"xor-ish sat", 2, [][]int{{1, 2}, {-1, -2}}, Sat},
		{"tautology only", 2, [][]int{{1, -1}}, Sat},
		{"all binary unsat", 2, [][]int{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}, Unsat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := solve(t, tc.nvars, tc.clauses)
			if res.Status != tc.want {
				t.Fatalf("got %v, want %v", res.Status, tc.want)
			}
			if res.Status == Sat && len(res.Assignment) != tc.nvars {
				t.Fatalf("SAT with %d-var assignment, want %d", len(res.Assignment), tc.nvars)
			}
		})
	}
}

// pigeonClauses encodes the pigeonhole principle PHP(n+1, n): n+1 pigeons in
// n holes, one variable per (pigeon, hole) pair. Unsatisfiable, and hard
// enough for resolution that it genuinely exercises clause learning.
func pigeonClauses(holes int) (int, [][]int) {
	pigeons := holes + 1
	v := func(p, h int) int { return p*holes + h + 1 }
	var clauses [][]int
	for p := 0; p < pigeons; p++ {
		c := make([]int, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []int{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return pigeons * holes, clauses
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 5; holes++ {
		nvars, clauses := pigeonClauses(holes)
		res := solve(t, nvars, clauses)
		if res.Status != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want UNSAT", holes+1, holes, res.Status)
		}
		if holes >= 4 && res.Learned == 0 {
			t.Fatalf("PHP(%d,%d) refuted without learning a single clause", holes+1, holes)
		}
	}
}

func TestConflictBudgetReturnsUnknown(t *testing.T) {
	nvars, clauses := pigeonClauses(6)
	s := New(nvars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Solve(Options{MaxConflicts: 3})
	if res.Status != Unknown {
		t.Fatalf("got %v under a 3-conflict budget, want UNKNOWN", res.Status)
	}
	if res.Conflicts < 3 {
		t.Fatalf("stopped after %d conflicts, want >= 3", res.Conflicts)
	}
}

// randomFormula builds a random 3-CNF instance near the phase transition.
func randomFormula(rng *rand.Rand, nvars, nclauses int) [][]int {
	clauses := make([][]int, nclauses)
	for i := range clauses {
		c := make([]int, 3)
		for j := range c {
			c[j] = rng.Intn(nvars) + 1
			if rng.Intn(2) == 0 {
				c[j] = -c[j]
			}
		}
		clauses[i] = c
	}
	return clauses
}

func TestRandom3CNFAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nvars := 4 + rng.Intn(9) // 4..12
		nclauses := 1 + rng.Intn(5*nvars)
		clauses := randomFormula(rng, nvars, nclauses)
		want := bruteSat(nvars, clauses)
		res := solve(t, nvars, clauses)
		if got := res.Status == Sat; got != want {
			t.Fatalf("seed %d (%d vars, %d clauses): CDCL says %v, brute force says sat=%v",
				seed, nvars, nclauses, res.Status, want)
		}
	}
}

func TestSolveDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clauses := randomFormula(rng, 30, 120)
	run := func() Result {
		s := New(30)
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				t.Fatal(err)
			}
		}
		return s.Solve(Options{})
	}
	a, b := run(), run()
	if a.Status != b.Status || a.Conflicts != b.Conflicts || a.Decisions != b.Decisions ||
		a.Learned != b.Learned || a.Propagations != b.Propagations || a.Restarts != b.Restarts {
		t.Fatalf("two identical solves diverged: %+v vs %+v", a, b)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("assignments diverge at variable %d", i+1)
		}
	}
}

func TestAddClauseRejectsOutOfRange(t *testing.T) {
	s := New(3)
	if err := s.AddClause(1, 4); err == nil {
		t.Fatal("literal 4 of a 3-variable solver accepted")
	}
	if err := s.AddClause(0); err == nil {
		t.Fatal("zero literal accepted")
	}
}
