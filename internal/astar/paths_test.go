package astar

import (
	"math"
	"testing"
)

// TestTotalPathsSaturation pins totalPaths at the float-cap boundary and the
// exact regime on either side of it (referenced from the totalPaths doc):
//
//   - small shapes are exact: 6 functions × 2 levels is the paper's
//     12!/(2!)^6 = 7,484,400, and the empty instance has one path;
//   - once the running factorial clears 1e300 the per-function division is
//     skipped, so the value saturates: it must stay finite (never +Inf) and
//     sit above the cap rather than wrapping or dividing back down;
//   - the memo hands back the bit-identical value on every call.
func TestTotalPathsSaturation(t *testing.T) {
	if got := totalPaths(0, 2); got != 1 {
		t.Errorf("totalPaths(0, 2) = %g, want 1", got)
	}
	if got := totalPaths(6, 2); got != 7484400 {
		t.Errorf("totalPaths(6, 2) = %g, want 7484400 (12!/(2!)^6)", got)
	}

	// 100 functions × 2 levels: 200! blows past 1e300 mid-product.
	sat := totalPaths(100, 2)
	if math.IsInf(sat, 0) || math.IsNaN(sat) {
		t.Fatalf("totalPaths(100, 2) = %g, want finite saturated value", sat)
	}
	if sat <= 1e300 {
		t.Errorf("totalPaths(100, 2) = %g, want > 1e300 (saturated, undivided)", sat)
	}

	// Saturation is monotone in m: a bigger instance never reports fewer
	// paths, even past the cap.
	if bigger := totalPaths(150, 2); bigger < sat || math.IsInf(bigger, 0) {
		t.Errorf("totalPaths(150, 2) = %g, want finite and >= totalPaths(100, 2) = %g", bigger, sat)
	}

	// Memoized reads are bit-identical to the first computation.
	for _, c := range [][2]int{{0, 2}, {6, 2}, {100, 2}, {150, 2}} {
		first := totalPaths(c[0], c[1])
		again := totalPaths(c[0], c[1])
		if math.Float64bits(first) != math.Float64bits(again) {
			t.Errorf("totalPaths(%d, %d) memo not bit-identical: %x vs %x",
				c[0], c[1], math.Float64bits(first), math.Float64bits(again))
		}
	}
}
