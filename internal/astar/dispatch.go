package astar

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Adaptive serial/parallel dispatch for the batch-parallel searches (beam,
// BnB). BENCH_search.json shows the parallel pipelines only ~10-15% ahead of
// serial on small instances — goroutine fan-out has a floor cost, and below
// some instance size serial wins outright. Following the SPDP framework's
// online decision rule ("When to Give Up on a Parallel Implementation",
// PAPERS.md), Workers=0 now means "auto": the dispatcher keeps a small EWMA
// table of observed per-node cost for each (instance-size bucket, mode) pair
// and picks the mode whose estimate is currently cheaper, exploring each
// unobserved mode once per bucket first. Because both searches are
// bit-identical for every worker count, the decision affects wall time only
// — never the result — so adaptivity is free of determinism risk. Decisions
// and the latest observed speedup are recorded in obs.Metrics
// (search_dispatch_serial / search_dispatch_parallel / search_speedup_milli)
// so the choice is auditable from /metrics.

// dispatchBuckets bounds the size table: instances are bucketed by
// unique-function count, the dominant driver of frontier width (and of the
// §6.2.5 feasibility cliff).
const dispatchBuckets = 16

// dispatchEWMAAlpha is the observation smoothing weight: recent runs count
// ~1/alpha times the tail.
const dispatchEWMAAlpha = 0.3

type dispatchBucket struct {
	// EWMA of observed ns per expanded node; 0 means no observation yet.
	serialNsPerNode   float64
	parallelNsPerNode float64
	// tryParallel alternates the first-exposure exploration so one mode
	// cannot starve the other of observations.
	tryParallel bool
}

type dispatcher struct {
	mu      sync.Mutex
	buckets [dispatchBuckets]dispatchBucket
}

// searchDispatcher is the process-wide dispatch table; serving workers and
// experiment jobs share its observations.
var searchDispatcher dispatcher

// dispatchBucketFor maps an instance's unique-function count to its bucket.
func dispatchBucketFor(uniqueFuncs int) int {
	if uniqueFuncs >= dispatchBuckets {
		return dispatchBuckets - 1
	}
	if uniqueFuncs < 0 {
		return 0
	}
	return uniqueFuncs
}

// choose picks the worker count for one auto-mode (Workers=0) job and
// records the decision in obs.Metrics.
func (d *dispatcher) choose(bucket int) int {
	maxWorkers := runtime.GOMAXPROCS(0)
	parallel := false
	d.mu.Lock()
	b := &d.buckets[bucket]
	switch {
	case maxWorkers <= 1:
		// No parallel capacity: serial is the only mode.
	case b.serialNsPerNode == 0 && b.parallelNsPerNode == 0:
		parallel = b.tryParallel
		b.tryParallel = !b.tryParallel
	case b.serialNsPerNode == 0:
		parallel = false
	case b.parallelNsPerNode == 0:
		parallel = true
	default:
		parallel = b.parallelNsPerNode < b.serialNsPerNode
	}
	d.mu.Unlock()
	obs.Default().SearchDispatch(parallel)
	if parallel {
		return maxWorkers
	}
	return 1
}

// observe feeds one completed auto-mode run back into the table and, once
// both modes of the bucket have data, publishes the observed speedup gauge.
func (d *dispatcher) observe(bucket int, parallel bool, elapsed time.Duration, nodes int) {
	if nodes <= 0 || elapsed <= 0 {
		return
	}
	perNode := float64(elapsed) / float64(nodes)
	d.mu.Lock()
	b := &d.buckets[bucket]
	slot := &b.serialNsPerNode
	if parallel {
		slot = &b.parallelNsPerNode
	}
	if *slot == 0 {
		*slot = perNode
	} else {
		*slot += dispatchEWMAAlpha * (perNode - *slot)
	}
	var milli int64
	if b.serialNsPerNode > 0 && b.parallelNsPerNode > 0 {
		milli = int64(b.serialNsPerNode / b.parallelNsPerNode * 1000)
	}
	d.mu.Unlock()
	if milli > 0 {
		obs.Default().SearchSpeedup(milli)
	}
}
