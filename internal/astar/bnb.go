package astar

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ocsp"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Branch-and-bound with a transposition table: the searcher that pushes the
// §6.2.5 feasibility frontier past the paper's six-function memory wall.
//
// A* (Search) stores every incompletely-examined *path* of the Fig. 4 tree,
// so its memory grows with the factorial path count. But many paths reach the
// same *state* — the same per-function compiled levels with execution
// evaluated up to the same call — and the state graph is exponentially
// smaller than the path tree. BnB explores best-first like A*, with three
// additions:
//
//   - a transposition table (transpose.go) canonicalizes every node to its
//     state key — compiled-level mask, next call, effective execution
//     frontier — and prunes every node whose exact state has been reached
//     before (see transpose.go for why nothing weaker than exact equality
//     is sound here);
//   - nodes are ordered and pruned by the tightened admissible bound of
//     searcher.boundFrom (compile-slack plus the §5.2 suffix bound), not the
//     paper's bare f(v) = b(v) + e(v), and an incumbent (the best complete
//     schedule committed so far) cuts everything that cannot strictly beat
//     it;
//   - frontiers are expanded in fixed-size batches whose scoring fans out
//     over worker goroutines with work-stealing index spans, while every
//     search decision (pops, prunes, table writes, budget accounting) happens
//     serially in batch order — so the result is bit-identical for any
//     worker count, exactly like BeamSearch.
//
// Memory is pooled: nodes live in slab arenas addressed by index, the open
// list is a slice of those indexes, and the table keeps its storage across
// runs — a warm BnB on the serial path does not allocate.

// BnBOptions configures a branch-and-bound search.
type BnBOptions struct {
	// MaxNodes bounds the number of arena nodes ever allocated (the memory
	// proxy, same currency as Options.MaxNodes). Zero means DefaultMaxNodes.
	MaxNodes int
	// Workers bounds the goroutines scoring a batch (1 means serial, N > 1
	// means N goroutines). Zero means adaptive dispatch: the process-wide
	// EWMA table in dispatch.go picks serial or GOMAXPROCS parallel per
	// instance-size bucket from recently observed per-node costs. The result
	// is bit-identical for every worker count, so dispatch never changes the
	// answer — only the wall time.
	Workers int
	// TightBound switches pruning from the historical ocsp.Tables.CostBound
	// to the strictly-dominating prefix-chain CostBoundTight (the exact
	// solver's bound). Both are admissible, so the optimum is unchanged —
	// only node counts shrink; the default stays off because the §6.2.5
	// goldens pin the historical counters.
	TightBound bool
}

// bnbBatch is the number of nodes popped and expanded per round. It is a
// constant — never derived from Workers — because the incumbent and the
// transposition table are only updated between batches: the batch boundary
// is part of the search's definition, so it must not move with parallelism.
const bnbBatch = 64

// bnbSlabSize is the arena slab granularity.
const bnbSlabSize = 1 << 14

// bnbNode is one stored search node. Nodes are addressed by arena index and
// reference their parent the same way, so a run's whole tree lives in a few
// reusable slabs.
type bnbNode struct {
	cur    cursor
	g      int64 // committed cost (exact total for stop leaves)
	f      int64 // admissible total-cost bound; == g for stop leaves
	span   int64 // compile span t of the prefix (make-span for stop leaves)
	seq    int64
	parent int32 // arena index, -1 at the root
	depth  int32
	event  sim.CompileEvent
	stop   bool
}

// bnbChild is a scored candidate child produced by the parallel phase; the
// serial commit decides whether it becomes a node.
type bnbChild struct {
	cur  cursor
	g    int64 // committed cost (exact total when stop)
	f    int64
	span int64 // child compile span (make-span when stop)
	e    int64 // effective frontier max(cur.ExecT, span)
	hash uint64
	ev   sim.CompileEvent
	stop bool
}

// bnbSlot holds one batch slot: the popped node and its expansion. kids and
// keys are reused across batches.
type bnbSlot struct {
	node int32
	kids []bnbChild
	keys []byte // kids' state keys, table stride apiece
}

// bnbWorker is per-goroutine scratch for the scoring phase.
type bnbWorker struct {
	pe     *prefixEval
	prefix sim.Schedule
	next   []profile.Level
	mask   []byte
}

// bnbArena allocates nodes from fixed-size slabs kept across runs.
type bnbArena struct {
	slabs [][]bnbNode
	n     int
}

func (a *bnbArena) reset() { a.n = 0 }

func (a *bnbArena) alloc() int32 {
	slab, off := a.n/bnbSlabSize, a.n%bnbSlabSize
	if slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]bnbNode, bnbSlabSize))
	}
	a.n++
	return int32(slab*bnbSlabSize + off)
}

func (a *bnbArena) at(i int32) *bnbNode {
	return &a.slabs[i/bnbSlabSize][i%bnbSlabSize]
}

// BnB is a reusable branch-and-bound searcher over one instance. It is not
// safe for concurrent use, but repeated Run calls reuse every internal
// buffer; see TestBnBWarmZeroAlloc.
type BnB struct {
	s       *searcher
	bnd     func(cursor, int64, []profile.Level) int64
	workers int
	stride  int
	// autoBucket is the dispatch table bucket when Workers=0 chose the mode
	// adaptively, or -1 for an explicit worker count. Auto runs feed their
	// per-node cost back to the dispatcher.
	autoBucket int

	arena bnbArena
	table transTable
	open  []int32 // min-heap of arena indexes on (f, seq)
	slots [bnbBatch]bnbSlot
	ws    []bnbWorker
	spans []atomic.Uint64

	// rootMask/rootKey are scratch for the root's state key; popped is the
	// batch of live popped nodes.
	rootMask []byte
	rootKey  []byte
	popped   []int32

	seq   int64
	paths float64 // totalPaths, computed once so Run stays allocation-free
	res   Result
	sched sim.Schedule
}

// NewBnB builds a reusable searcher for the instance. The profile may have at
// most 8 levels (a state key packs a function's compiled set into one byte).
func NewBnB(tr *trace.Trace, p *profile.Profile, opts BnBOptions) (*BnB, error) {
	s, err := newSearcher(tr, p, Options{MaxNodes: opts.MaxNodes})
	if err != nil {
		return nil, err
	}
	if p.Levels > 8 {
		return nil, fmt.Errorf("astar: BnB supports at most 8 levels, got %d", p.Levels)
	}
	workers := opts.Workers
	autoBucket := -1
	if workers == 0 {
		autoBucket = dispatchBucketFor(len(s.order))
		workers = searchDispatcher.choose(autoBucket)
	}
	if workers < 1 {
		return nil, fmt.Errorf("astar: BnB workers must be >= 1, got %d", opts.Workers)
	}
	nf := p.NumFuncs()
	b := &BnB{
		s:          s,
		workers:    workers,
		autoBucket: autoBucket,
		bnd:        s.tab.CostBound,
		stride:     nf + 12,
		open:       make([]int32, 0, heapCapFor(s.budget)),
		ws:         make([]bnbWorker, workers),
		spans:      make([]atomic.Uint64, workers),
		rootMask:   make([]byte, nf),
		rootKey:    make([]byte, nf+12),
		popped:     make([]int32, 0, bnbBatch),
		paths:      totalPaths(len(s.order), p.Levels),
	}
	if opts.TightBound {
		b.bnd = s.tab.CostBoundTight
	}
	for i := range b.ws {
		b.ws[i] = bnbWorker{
			pe:   s.newPrefixEval(),
			next: make([]profile.Level, nf),
			mask: make([]byte, nf),
		}
	}
	return b, nil
}

// BnBSearch is the convenience wrapper: build, run once, return an
// independent Result.
func BnBSearch(tr *trace.Trace, p *profile.Profile, opts BnBOptions) (*Result, error) {
	return BnBSearchContext(context.Background(), tr, p, opts)
}

// BnBSearchContext is BnBSearch with cooperative cancellation (see
// RunContext).
func BnBSearchContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts BnBOptions) (*Result, error) {
	b, err := NewBnB(tr, p, opts)
	if err != nil {
		return nil, err
	}
	res, err := b.RunContext(ctx)
	if res != nil {
		out := *res
		out.Schedule = res.Schedule.Clone()
		res = &out
	}
	return res, err
}

// Run executes the search and returns the optimal schedule, or a partial
// Result plus ErrBudgetExhausted. The Result (including its Schedule) aliases
// the searcher's reusable buffers and is invalidated by the next Run; use
// BnBSearch for an owned copy.
func (b *BnB) Run() (*Result, error) {
	return b.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation, polled once per expansion
// batch (bnbBatch pops). Parallel scoring never outlives a batch, so a done
// context aborts between batches with ErrCancelled, counters filled, and no
// schedule — the serial commit discipline is preserved, and an un-cancelled
// run is bit-identical to Run. A warm cancellable run still allocates
// nothing; see TestBnBWarmZeroAllocCancellable.
func (b *BnB) RunContext(ctx context.Context) (*Result, error) {
	s := b.s
	b.res = Result{PathsTotal: b.paths}
	res := &b.res
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	b.arena.reset()
	b.table.reset(b.stride)
	b.open = b.open[:0]
	b.seq = 0
	s.alloc = 0
	var autoStart time.Time
	if b.autoBucket >= 0 {
		autoStart = time.Now()
	}

	const inf = int64(1)<<62 - 1
	bestCost := inf

	// Root: empty prefix, state key (zero mask, call 0, frontier 0).
	clear(b.rootMask)
	root := b.arena.alloc()
	rootKey := b.stateKey(b.rootKey, b.rootMask, 0, 0)
	w0 := &b.ws[0]
	clear(w0.next)
	*b.arena.at(root) = bnbNode{
		f:      b.bnd(cursor{}, 0, w0.next),
		parent: -1,
	}
	b.table.insert(hashKey(rootKey), rootKey)
	b.heapPush(root)

	done := ctx.Done()
	for len(b.open) > 0 {
		if cancelled(done) {
			b.fillCounters()
			return res, cancelErr(ctx)
		}
		// Serial pop phase: collect up to bnbBatch live nodes.
		popped := b.popped[:0]
		for len(popped) < bnbBatch && len(b.open) > 0 {
			idx := b.heapPop()
			n := b.arena.at(idx)
			if n.stop {
				if len(popped) == 0 {
					// Best-first on an admissible bound: a stop leaf popped
					// with nothing cheaper pending expansion is optimal.
					fres := b.finalize(idx)
					if b.autoBucket >= 0 {
						searchDispatcher.observe(b.autoBucket, b.workers > 1,
							time.Since(autoStart), fres.NodesExpanded)
					}
					return fres, nil
				}
				// Nodes with a bound at or below the leaf's cost were popped
				// earlier in this round and are still unexpanded — one of
				// their descendants could beat the leaf. Re-queue it and
				// close the batch; it pops again once they have been
				// expanded.
				b.heapPush(idx)
				break
			}
			if n.f >= bestCost {
				res.BoundPruned++
				continue
			}
			popped = append(popped, idx)
		}
		if len(popped) == 0 {
			continue
		}

		// Parallel phase: score every slot. Pure with respect to the shared
		// search state — workers read the arena and the immutable searcher,
		// and write only their own slot.
		for k, idx := range popped {
			b.slots[k].node = idx
		}
		if w := min(b.workers, len(popped)); w <= 1 {
			for k := range popped {
				b.expandSlot(&b.ws[0], &b.slots[k])
			}
		} else {
			b.expandParallel(len(popped), w)
		}

		// Serial commit phase: replay slots in pop order, applying budget,
		// bound, and dominance decisions exactly as a serial search would.
		for k := range popped {
			sl := &b.slots[k]
			res.NodesExpanded++
			for ci := range sl.kids {
				ch := &sl.kids[ci]
				if ch.f >= bestCost {
					res.BoundPruned++
					continue
				}
				if b.arena.n >= s.budget {
					b.fillCounters()
					return res, ErrBudgetExhausted
				}
				if !ch.stop {
					key := sl.keys[ci*b.stride : (ci+1)*b.stride]
					if b.table.insert(ch.hash, key) {
						res.TableHits++
						continue
					}
				}
				b.seq++
				idx := b.arena.alloc()
				parent := sl.node
				n := b.arena.at(parent)
				*b.arena.at(idx) = bnbNode{
					cur:    ch.cur,
					g:      ch.g,
					f:      ch.f,
					span:   ch.span,
					seq:    b.seq,
					parent: parent,
					depth:  n.depth + 1,
					event:  ch.ev,
					stop:   ch.stop,
				}
				if ch.stop {
					// The leaf's prefix is its parent's; depth stays put so
					// schedule reconstruction walks the same chain.
					b.arena.at(idx).depth = n.depth
					if ch.g < bestCost {
						bestCost = ch.g
					}
				}
				b.heapPush(idx)
			}
		}
	}
	b.fillCounters()
	return res, fmt.Errorf("astar: BnB exhausted the open list without a complete schedule (internal error)")
}

// expandSlot scores one popped node: its children (with bounds and state
// keys) plus, for a complete prefix, a stop leaf with the exact cost.
func (b *BnB) expandSlot(w *bnbWorker, sl *bnbSlot) {
	s := b.s
	n := b.arena.at(sl.node)
	b.loadNode(w, sl.node)
	sl.kids = sl.kids[:0]
	sl.keys = sl.keys[:0]

	missing := 0
	for _, f := range s.order {
		if w.next[f] == 0 {
			missing++
		}
	}
	for _, f := range s.order {
		for l := w.next[f]; int(l) < s.levels; l++ {
			ev := sim.CompileEvent{Func: f, Level: l}
			ccur, _ := w.pe.Advance(n.cur, ev)
			cspan := n.span + s.compile[int(f)*s.levels+int(l)]
			saved := w.next[f]
			w.next[f] = l + 1
			fb := b.bnd(ccur, cspan, w.next)
			w.next[f] = saved

			e := ccur.ExecT
			if cspan > e {
				e = cspan
			}
			ke := keyFrontier(ccur, cspan, len(s.tr.Calls))
			mb := w.mask[f]
			w.mask[f] = mb | 1<<uint(l)
			base := len(sl.keys)
			sl.keys = append(sl.keys, w.mask...)
			sl.keys = append(sl.keys,
				byte(ccur.I), byte(ccur.I>>8), byte(ccur.I>>16), byte(ccur.I>>24),
				byte(ke), byte(ke>>8), byte(ke>>16), byte(ke>>24),
				byte(ke>>32), byte(ke>>40), byte(ke>>48), byte(ke>>56))
			w.mask[f] = mb
			h := hashKey(sl.keys[base : base+b.stride])
			sl.kids = append(sl.kids, bnbChild{
				cur:  ccur,
				g:    ccur.Bubbles + ccur.Extra,
				f:    fb,
				span: cspan,
				e:    e,
				hash: h,
				ev:   ev,
			})
		}
	}
	if missing == 0 && !n.stop {
		full, mspan := w.pe.Finish(n.cur)
		// Stop leaves never enter the transposition table: a complete node
		// and its own stop leaf share a state key, and the parent's entry
		// must not prune the leaf that proves its cost.
		// No key is appended for the leaf: it is always the last child, so
		// the earlier children's key offsets are unaffected, and the commit
		// path never consults a stop child's key.
		sl.kids = append(sl.kids, bnbChild{
			cur:  n.cur,
			g:    full,
			f:    full,
			span: mspan,
			stop: true,
		})
	}
}

// expandParallel fans count slots out over w workers. Each worker owns a
// contiguous index span packed into one atomic word (hi<<32 | lo); it claims
// from the front of its own span and, when empty, steals the upper half of
// another worker's. Both transitions only shrink a span — lo rises, hi falls
// — so a stale CAS can never resurrect a claimed slot, and a stolen range is
// processed privately. Slot writes are disjoint by construction.
func (b *BnB) expandParallel(count, w int) {
	for i := 0; i < w; i++ {
		lo := count * i / w
		hi := count * (i + 1) / w
		b.spans[i].Store(uint64(hi)<<32 | uint64(lo))
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			ws := &b.ws[me]
			for {
				if k, ok := spanClaim(&b.spans[me]); ok {
					b.expandSlot(ws, &b.slots[k])
					continue
				}
				lo, hi, ok := 0, 0, false
				for off := 1; off < w && !ok; off++ {
					lo, hi, ok = spanSteal(&b.spans[(me+off)%w])
				}
				if !ok {
					return
				}
				for k := lo; k < hi; k++ {
					b.expandSlot(ws, &b.slots[k])
				}
			}
		}(i)
	}
	wg.Wait()
}

// spanClaim takes the front index of a span.
func spanClaim(s *atomic.Uint64) (int, bool) {
	for {
		v := s.Load()
		lo, hi := uint32(v), uint32(v>>32)
		if lo >= hi {
			return 0, false
		}
		if s.CompareAndSwap(v, uint64(hi)<<32|uint64(lo+1)) {
			return int(lo), true
		}
	}
}

// spanSteal takes the upper half of a span with at least two pending slots.
func spanSteal(s *atomic.Uint64) (int, int, bool) {
	for {
		v := s.Load()
		lo, hi := uint32(v), uint32(v>>32)
		if hi-lo < 2 {
			return 0, 0, false
		}
		mid := hi - (hi-lo)/2
		if s.CompareAndSwap(v, uint64(mid)<<32|uint64(lo)) {
			return int(mid), int(hi), true
		}
	}
}

// loadNode rebuilds a node's prefix, per-function next levels, and compiled
// mask into the worker's scratch, then loads the prefix into its evaluator.
func (b *BnB) loadNode(w *bnbWorker, idx int32) {
	n := b.arena.at(idx)
	clear(w.next)
	clear(w.mask)
	depth := int(n.depth)
	if cap(w.prefix) < depth {
		w.prefix = make(sim.Schedule, depth)
	}
	w.prefix = w.prefix[:depth]
	for v := idx; v != -1; {
		vn := b.arena.at(v)
		if vn.parent == -1 {
			break
		}
		w.prefix[vn.depth-1] = vn.event
		w.mask[vn.event.Func] |= 1 << uint(vn.event.Level)
		if l := vn.event.Level + 1; l > w.next[vn.event.Func] {
			w.next[vn.event.Func] = l
		}
		v = vn.parent
	}
	w.pe.Load(w.prefix)
}

// keyFrontier delegates to the shared ocsp.KeyFrontier: the frontier
// component of a child's state key (see its doc for why the all-committed
// tail keys on ExecT). FuzzStateKey's seed corpus pins the case.
func keyFrontier(cur cursor, span int64, ncalls int) int64 {
	return ocsp.KeyFrontier(cur, span, ncalls)
}

// stateKey writes (mask, call index, frontier) into dst, which must be
// stride bytes.
func (b *BnB) stateKey(dst, mask []byte, i int, e int64) []byte {
	n := copy(dst, mask)
	dst[n] = byte(i)
	dst[n+1] = byte(i >> 8)
	dst[n+2] = byte(i >> 16)
	dst[n+3] = byte(i >> 24)
	for k := 0; k < 8; k++ {
		dst[n+4+k] = byte(e >> (8 * k))
	}
	return dst
}

// finalize reconstructs the result from the popped stop leaf.
func (b *BnB) finalize(leaf int32) *Result {
	n := b.arena.at(leaf)
	depth := int(n.depth)
	if cap(b.sched) < depth {
		b.sched = make(sim.Schedule, depth)
	}
	b.sched = b.sched[:depth]
	for v := n.parent; v != -1; {
		vn := b.arena.at(v)
		if vn.parent == -1 {
			break
		}
		b.sched[vn.depth-1] = vn.event
		v = vn.parent
	}
	res := &b.res
	res.Schedule = b.sched
	res.MakeSpan = n.span
	res.Cost = n.g
	res.Complete = true
	b.fillCounters()
	return res
}

// fillCounters copies the run's footprint counters into the result and
// reports them to the process-wide metrics.
func (b *BnB) fillCounters() {
	res := &b.res
	res.NodesAllocated = b.arena.n
	res.StatesStored = b.table.states()
	obs.Default().SearchRun(int64(res.NodesExpanded), int64(res.NodesAllocated),
		int64(res.TableHits), int64(res.BoundPruned))
}

// heapPush and heapPop maintain the open list: a min-heap of arena indexes
// ordered by (f, seq), hand-rolled so pushes never box through an interface.
func (b *BnB) heapPush(idx int32) {
	b.open = append(b.open, idx)
	i := len(b.open) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !b.heapLess(b.open[i], b.open[p]) {
			break
		}
		b.open[i], b.open[p] = b.open[p], b.open[i]
		i = p
	}
}

func (b *BnB) heapPop() int32 {
	top := b.open[0]
	last := len(b.open) - 1
	b.open[0] = b.open[last]
	b.open = b.open[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && b.heapLess(b.open[l], b.open[smallest]) {
			smallest = l
		}
		if r < last && b.heapLess(b.open[r], b.open[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		b.open[i], b.open[smallest] = b.open[smallest], b.open[i]
		i = smallest
	}
	return top
}

func (b *BnB) heapLess(a, c int32) bool {
	na, nc := b.arena.at(a), b.arena.at(c)
	if na.f != nc.f {
		return na.f < nc.f
	}
	return na.seq < nc.seq
}
