package astar

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// searchEntry abstracts the five context-aware entry points so every
// cancellation contract is checked against all of them.
type searchEntry struct {
	name string
	run  func(ctx context.Context, tr trInput) (*Result, error)
}

type trInput struct {
	nfuncs, ncalls int
	seed           int64
}

func cancelEntries() []searchEntry {
	return []searchEntry{
		{"SearchContext", func(ctx context.Context, in trInput) (*Result, error) {
			tr, p := tinyInstance(in.nfuncs, in.ncalls, in.seed)
			return SearchContext(ctx, tr, p, Options{})
		}},
		{"ExhaustiveContext", func(ctx context.Context, in trInput) (*Result, error) {
			tr, p := tinyInstance(in.nfuncs, in.ncalls, in.seed)
			return ExhaustiveContext(ctx, tr, p, Options{})
		}},
		{"BeamSearchContext", func(ctx context.Context, in trInput) (*Result, error) {
			tr, p := tinyInstance(in.nfuncs, in.ncalls, in.seed)
			return BeamSearchContext(ctx, tr, p, BeamOptions{Workers: 1})
		}},
		{"BnBSearchContext", func(ctx context.Context, in trInput) (*Result, error) {
			tr, p := tinyInstance(in.nfuncs, in.ncalls, in.seed)
			return BnBSearchContext(ctx, tr, p, BnBOptions{Workers: 1})
		}},
		{"IDASearchContext", func(ctx context.Context, in trInput) (*Result, error) {
			tr, p := tinyInstance(in.nfuncs, in.ncalls, in.seed)
			return IDASearchContext(ctx, tr, p, IDAOptions{})
		}},
	}
}

// TestCancelledContextReturnsPromptly: a context that is already cancelled at
// call time makes every entry point return quickly with the typed error and
// no schedule — the search never starts charging for a doomed request.
func TestCancelledContextReturnsPromptly(t *testing.T) {
	for _, e := range cancelEntries() {
		t.Run(e.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res, err := e.run(ctx, trInput{6, 40, 2})
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("cancelled call took %v, want a prompt return", elapsed)
			}
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want it to wrap context.Canceled", err)
			}
			if res == nil {
				t.Fatal("cancelled search returned a nil Result (counters expected)")
			}
			if res.Schedule != nil {
				t.Errorf("cancelled search returned a schedule of %d events, want none", len(res.Schedule))
			}
			if res.Complete {
				t.Error("cancelled search claims completeness")
			}
		})
	}
}

// TestMidRunCancelNoPartialSchedule: cancelling a long search mid-run aborts
// it within a polling stride and never yields a partial schedule, even for
// searches that have already seen complete candidates (beam, BnB).
func TestMidRunCancelNoPartialSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("long search instance")
	}
	// Large enough that none of the entry points finish before the cancel
	// lands (BnB alone needs ~1s on this instance; A*/exhaustive/IDA far
	// more), yet every stride is crossed quickly once cancelled.
	in := trInput{12, 200, 7}
	for _, e := range cancelEntries() {
		t.Run(e.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			time.AfterFunc(50*time.Millisecond, cancel)
			start := time.Now()
			res, err := e.run(ctx, in)
			elapsed := time.Since(start)
			if err == nil {
				t.Skipf("instance finished in %v before the cancel landed", elapsed)
			}
			if !errors.Is(err, ErrCancelled) && !errors.Is(err, ErrBudgetExhausted) && !errors.Is(err, ErrTimeExhausted) {
				t.Fatalf("err = %v, want ErrCancelled (or a budget error beating the cancel)", err)
			}
			if errors.Is(err, ErrCancelled) {
				if elapsed > 5*time.Second {
					t.Errorf("cancel took %v to take effect", elapsed)
				}
				if res.Schedule != nil {
					t.Errorf("cancelled search returned a partial schedule of %d events", len(res.Schedule))
				}
			}
		})
	}
}

// TestUncancelledContextBitIdentical: threading a live context through a
// search changes nothing — the Context variants with context.Background()
// return exactly what the plain entry points do.
func TestUncancelledContextBitIdentical(t *testing.T) {
	tr, p := tinyInstance(6, 40, 5)
	ctx := context.Background()
	type pair struct {
		name        string
		plain, ctxd func() (*Result, error)
	}
	pairs := []pair{
		{"Search",
			func() (*Result, error) { return Search(tr, p, Options{}) },
			func() (*Result, error) { return SearchContext(ctx, tr, p, Options{}) }},
		{"Exhaustive",
			func() (*Result, error) { return Exhaustive(tr, p, Options{}) },
			func() (*Result, error) { return ExhaustiveContext(ctx, tr, p, Options{}) }},
		{"BeamSearch",
			func() (*Result, error) { return BeamSearch(tr, p, BeamOptions{Workers: 1}) },
			func() (*Result, error) { return BeamSearchContext(ctx, tr, p, BeamOptions{Workers: 1}) }},
		{"BnBSearch",
			func() (*Result, error) { return BnBSearch(tr, p, BnBOptions{Workers: 1}) },
			func() (*Result, error) { return BnBSearchContext(ctx, tr, p, BnBOptions{Workers: 1}) }},
		{"IDASearch",
			func() (*Result, error) { return IDASearch(tr, p, IDAOptions{}) },
			func() (*Result, error) { return IDASearchContext(ctx, tr, p, IDAOptions{}) }},
	}
	for _, pc := range pairs {
		t.Run(pc.name, func(t *testing.T) {
			want, err1 := pc.plain()
			got, err2 := pc.ctxd()
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: plain=%v ctx=%v", err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("context variant differs from plain:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestBnBWarmZeroAllocCancellable: cancellation support must not tax the
// steady state — a warm reused BnB run through RunContext with a live
// (cancellable, never-fired) context still allocates nothing.
func TestBnBWarmZeroAllocCancellable(t *testing.T) {
	tr, p := tinyInstance(5, 30, 1)
	b, err := NewBnB(tr, p, BnBOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := b.RunContext(ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := b.RunContext(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm cancellable BnB.RunContext allocates %.1f times per run, want 0", allocs)
	}
}
