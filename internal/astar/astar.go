// Package astar implements the tree-search formulation of OCSP from §5.3 of
// the paper, with the A* heuristic f(v) = b(v) + e(v): the bubbles plus the
// extra (non-fully-optimized) execution time accumulated within the compile
// span of the schedule prefix at node v.
//
// As the paper shows, A* finds optimal schedules for tiny instances (around
// six unique functions) and then exhausts memory: it must keep every
// incompletely-examined path, and the tree grows exponentially. The search
// here accepts a node budget standing in for the paper's 2 GB Java heap, and
// reports how much of the tree it stored.
//
// The package also provides an exhaustive branch-and-bound search usable as
// ground truth on even smaller instances.
package astar

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ocsp"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrBudgetExhausted reports that the search stored more nodes than the
// configured budget — the analogue of the paper's A* runs aborting with
// out-of-memory beyond six unique methods.
var ErrBudgetExhausted = errors.New("astar: node budget exhausted")

// ErrCancelled reports that a search's context was cancelled before it could
// prove an answer. A cancelled search never returns a partial schedule: the
// Result carries only the exploration counters accumulated so far. The error
// wraps the context's cause, so errors.Is matches both ErrCancelled and
// context.Canceled / context.DeadlineExceeded.
var ErrCancelled = errors.New("astar: search cancelled")

// cancelErr builds the ErrCancelled chain for a done context.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}

// cancelled is the non-blocking cancellation poll used at batch boundaries.
// The done channel is captured once per search; context.Background yields a
// nil channel, which is never ready, so the no-cancel fast path costs one
// branch and allocates nothing.
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// cancelStride is how many node visits a depth-first search goes between
// cancellation polls. Cancellation only ever aborts a run — it never alters
// which nodes a surviving run visits — so the stride trades promptness
// against per-node overhead without touching determinism.
const cancelStride = 256

// Options configures a search.
type Options struct {
	// MaxNodes bounds the number of tree nodes ever allocated (a proxy for
	// memory). Zero means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes caps the search at about a million nodes, roughly what a
// 2 GB Java heap held for the paper's implementation: with this budget the
// §6.2.5 study completes through six unique methods and aborts beyond, as in
// the paper.
const DefaultMaxNodes = 1 << 20

// Result reports a search outcome.
type Result struct {
	// Schedule is the best complete compilation sequence found (the optimal
	// one when Complete is true).
	Schedule sim.Schedule
	// MakeSpan is the schedule's make-span.
	MakeSpan int64
	// Cost is MakeSpan minus the sum of best-level execution times — the
	// bubbles-plus-extra-execution objective the tree search minimizes.
	Cost int64
	// Complete is true if the search proved optimality.
	Complete bool
	// NodesExpanded counts interior nodes whose children were generated;
	// NodesAllocated counts every node ever created (the memory footprint);
	// PathsTotal is the total number of root-to-leaf orderings of the full
	// tree (capped at 1<<62), for "searched k of n paths" reporting.
	NodesExpanded  int
	NodesAllocated int
	PathsTotal     float64
	// BnB-only counters (zero for the other searches): TableHits counts
	// candidates pruned as exact duplicates of an already-reached canonical
	// state, BoundPruned nodes cut by the admissible bound against the
	// incumbent, StatesStored the distinct canonical states in the table at
	// the end of the run.
	TableHits    int
	BoundPruned  int
	StatesStored int
}

// node is one vertex of the search tree: the compilation schedule prefix
// from the root, represented by a parent link plus the last event.
type node struct {
	parent *node
	event  sim.CompileEvent
	depth  int
	// cur is the committed incremental-evaluation state of the prefix (see
	// eval.go); children resume from it instead of re-simulating the trace.
	cur  cursor
	g    int64
	stop bool // a "stop" leaf: prefix is a complete schedule, g exact
	seq  int  // tie-break for deterministic pops
}

// nodeHeap is a min-heap on (g, seq).
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].g != h[j].g {
		return h[i].g < h[j].g
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// heapCapFor sizes the open list's initial capacity from the node budget so
// the hot search loop does not pay repeated append regrowth. The cap keeps a
// tiny search from reserving the whole default (million-node) budget up
// front; past it, doubling from a 32Ki base costs a handful of copies total.
func heapCapFor(budget int) int {
	const maxPrealloc = 1 << 15
	if budget > maxPrealloc {
		return maxPrealloc
	}
	return budget
}

// searcher carries the immutable problem plus scratch space. The immutable
// part — the flattened timing tables, order, bestE, and bounds of
// ocsp.Tables — is shared read-only by the parallel beam workers; the
// scratch (pe, counters) belongs to the owning goroutine. The table slices
// are aliased into named fields so the search loops read in this package's
// short vocabulary.
type searcher struct {
	tab    *ocsp.Tables
	tr     *trace.Trace
	p      *profile.Profile
	order  []trace.FuncID // functions by first appearance
	bestE  []int64        // best exec time per function
	levels int
	// compile[f*levels+l] and exec[f*levels+l] flatten the profile tables
	// for the evaluation inner loops.
	compile []int64
	exec    []int64
	// sufBest[i] is the §5.2 lower bound on executing calls i.. — the sum of
	// best-level execution times over the suffix (len Calls+1, last entry 0).
	// cminC[f] is f's cheapest compile time over all levels; firstCall[f] the
	// index of f's first call. Together they feed boundFrom.
	sufBest   []int64
	cminC     []int64
	firstCall []int
	pe        *prefixEval
	budget    int
	alloc     int
	seq       int
}

func newSearcher(tr *trace.Trace, p *profile.Profile, opts Options) (*searcher, error) {
	budget := opts.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}
	if budget < 0 {
		return nil, fmt.Errorf("astar: MaxNodes must be non-negative, got %d", opts.MaxNodes)
	}
	tab, err := ocsp.NewTables(tr, p)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		tab:       tab,
		tr:        tr,
		p:         p,
		order:     tab.Order,
		bestE:     tab.BestE,
		levels:    tab.Levels,
		compile:   tab.Compile,
		exec:      tab.Exec,
		sufBest:   tab.SufBest,
		cminC:     tab.CminC,
		firstCall: tab.FirstCall,
		budget:    budget,
	}
	s.pe = s.newPrefixEval()
	return s, nil
}

// boundFrom is the admissible completion bound every search here prunes
// with: ocsp.Tables.CostBound, the extraction of this package's historical
// bound into the shared bounds machinery. The legacy searches stay on
// CostBound (their goldens pin node counts under it); BnBOptions.TightBound
// opts branch-and-bound into the strictly-dominating CostBoundTight chain.
func (s *searcher) boundFrom(cur cursor, t int64, next []profile.Level) int64 {
	return s.tab.CostBound(cur, t, next)
}

// prefix reconstructs the schedule along the parent chain of n.
func (s *searcher) prefix(n *node) sim.Schedule {
	events := make(sim.Schedule, n.depth)
	for v := n; v.parent != nil; v = v.parent {
		events[v.depth-1] = v.event
	}
	return events
}

// statuses returns, for each function, the next schedulable level (0 if the
// function is uncompiled, lastLevel+1 otherwise), plus how many functions in
// the trace remain uncompiled.
func (s *searcher) statuses(n *node) (next []profile.Level, missing int) {
	next = make([]profile.Level, s.p.NumFuncs())
	for v := n; v.parent != nil; v = v.parent {
		if l := v.event.Level + 1; l > next[v.event.Func] {
			next[v.event.Func] = l
		}
	}
	for _, f := range s.order {
		if next[f] == 0 {
			missing++
		}
	}
	return next, missing
}

// cost evaluates the paper's f(v) for a prefix: bubbles plus extra execution
// accumulated within the prefix's compile span t(v). For a complete prefix
// (every called function compiled), full == true evaluates the entire run,
// making the cost exact; it then also returns the make-span.
func (s *searcher) cost(prefix sim.Schedule, full bool) (g, makeSpan int64) {
	p := s.p
	// Single compile worker: finish times are prefix sums.
	type version struct {
		done  int64
		level profile.Level
	}
	versions := make(map[trace.FuncID][]version, len(prefix))
	var t int64
	for _, ev := range prefix {
		t += p.CompileTime(ev.Func, ev.Level)
		versions[ev.Func] = append(versions[ev.Func], version{t, ev.Level})
	}
	span := t // t(v): when the prefix's compilations end

	var execT, bubbles, extra int64
	for _, f := range s.tr.Calls {
		vs := versions[f]
		if len(vs) == 0 {
			// Blocked on a future compilation: everything up to t(v) is a
			// known bubble; nothing beyond is attributable yet.
			if span > execT {
				bubbles += span - execT
			}
			return bubbles + extra, 0
		}
		start := execT
		if vs[0].done > start {
			start = vs[0].done
		}
		if !full && start >= span {
			// The call starts outside the prefix window; its cost belongs
			// to descendants.
			return bubbles + extra, 0
		}
		bubbles += start - execT
		level := vs[0].level
		for _, v := range vs[1:] {
			if v.done <= start {
				level = v.level
			}
		}
		dur := p.ExecTime(f, level)
		extra += dur - s.bestE[f]
		execT = start + dur
	}
	return bubbles + extra, execT
}

// children generates the nodes reachable from n per the Fig. 4 tree: any
// called function may be compiled at any level not below its next allowed
// level; a lower-level compilation never follows a higher one. The parent's
// version lists are loaded once; every child is scored by resuming the
// parent's cursor over the newly-in-window calls.
func (s *searcher) children(n *node) ([]*node, error) {
	next, missing := s.statuses(n)
	s.pe.Load(s.prefix(n))
	var kids []*node
	for _, f := range s.order {
		for l := next[f]; int(l) < s.p.Levels; l++ {
			if s.alloc >= s.budget {
				return kids, ErrBudgetExhausted
			}
			s.alloc++
			s.seq++
			child := &node{
				parent: n,
				event:  sim.CompileEvent{Func: f, Level: l},
				depth:  n.depth + 1,
				seq:    s.seq,
			}
			child.cur, child.g = s.pe.Advance(n.cur, child.event)
			kids = append(kids, child)
		}
	}
	if missing == 0 && !n.stop {
		// A complete prefix gets a "stop" leaf with the exact total cost.
		if s.alloc >= s.budget {
			return kids, ErrBudgetExhausted
		}
		s.alloc++
		s.seq++
		leaf := &node{parent: n.parent, event: n.event, depth: n.depth, cur: n.cur, stop: true, seq: s.seq}
		leaf.g, _ = s.pe.Finish(n.cur)
		kids = append(kids, leaf)
	}
	return kids, nil
}

// Search runs A* and returns the optimal schedule, or a partial Result plus
// ErrBudgetExhausted when the node budget runs out first.
func Search(tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	return SearchContext(context.Background(), tr, p, opts)
}

// SearchContext is Search with cooperative cancellation: the context is
// polled before every node expansion, and a done context aborts the search
// with ErrCancelled and no schedule. An un-cancelled SearchContext is
// bit-identical to Search.
func SearchContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	s, err := newSearcher(tr, p, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{PathsTotal: totalPaths(len(s.order), p.Levels)}
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	done := ctx.Done()
	root := &node{}
	h := make(nodeHeap, 0, heapCapFor(s.budget))
	open := &h
	heap.Push(open, root)
	for open.Len() > 0 {
		if cancelled(done) {
			res.NodesAllocated = s.alloc
			return res, cancelErr(ctx)
		}
		n := heap.Pop(open).(*node)
		if n.stop {
			sched := s.prefix(n)
			s.pe.Load(sched)
			_, span := s.pe.Finish(n.cur)
			res.Schedule = sched
			res.MakeSpan = span
			res.Cost = n.g
			res.Complete = true
			res.NodesAllocated = s.alloc
			return res, nil
		}
		res.NodesExpanded++
		kids, err := s.children(n)
		for _, k := range kids {
			heap.Push(open, k)
		}
		if err != nil {
			res.NodesAllocated = s.alloc
			return res, err
		}
	}
	res.NodesAllocated = s.alloc
	return res, fmt.Errorf("astar: search space exhausted without a complete schedule (internal error)")
}

// Exhaustive enumerates the same tree depth-first with branch-and-bound
// pruning and returns the certified optimal schedule. Only usable on tiny
// instances; intended as ground truth for tests and for the §6.2.5 study.
//
// Each node is scored by resuming its parent's incremental cursor (the same
// prefixEval the other searches use) and pruned against the tightened
// admissible bound of boundFrom rather than the paper's bare f(v). Both
// changes keep the returned schedule bit-identical to the original
// enumeration: the bound is admissible, so no node on the path to a strictly
// better schedule is ever cut, and the DFS visit order is unchanged — only
// the number of nodes visited shrinks.
func Exhaustive(tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	return ExhaustiveContext(context.Background(), tr, p, opts)
}

// ExhaustiveContext is Exhaustive with cooperative cancellation, polled every
// cancelStride node visits. A done context aborts with ErrCancelled and no
// schedule; an un-cancelled run is bit-identical to Exhaustive.
func ExhaustiveContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts Options) (*Result, error) {
	s, err := newSearcher(tr, p, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{PathsTotal: totalPaths(len(s.order), p.Levels)}
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	bestCost := int64(1)<<62 - 1
	var bestSched sim.Schedule
	var bestSpan int64

	next := make([]profile.Level, p.NumFuncs())
	var prefix sim.Schedule

	done := ctx.Done()
	var dfs func(cur cursor) error
	dfs = func(cur cursor) error {
		if s.alloc++; s.alloc > s.budget {
			return ErrBudgetExhausted
		}
		if s.alloc%cancelStride == 0 && cancelled(done) {
			return cancelErr(ctx)
		}
		s.pe.Load(prefix)
		if s.boundFrom(cur, s.pe.Span(), next) >= bestCost {
			return nil // admissible bound: no descendant can improve
		}
		missing := 0
		for _, f := range s.order {
			if next[f] == 0 {
				missing++
			}
		}
		if missing == 0 {
			full, span := s.pe.Finish(cur)
			if full < bestCost {
				bestCost = full
				bestSched = prefix.Clone()
				bestSpan = span
			}
		}
		res.NodesExpanded++
		for _, f := range s.order {
			for l := next[f]; int(l) < p.Levels; l++ {
				saved := next[f]
				next[f] = l + 1
				ev := sim.CompileEvent{Func: f, Level: l}
				s.pe.Load(prefix)
				ccur, _ := s.pe.Advance(cur, ev)
				prefix = append(prefix, ev)
				err := dfs(ccur)
				prefix = prefix[:len(prefix)-1]
				next[f] = saved
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	if cancelled(done) {
		return res, cancelErr(ctx)
	}
	if err := dfs(cursor{}); err != nil {
		res.NodesAllocated = s.alloc
		return res, err
	}
	res.Schedule = bestSched
	res.MakeSpan = bestSpan
	res.Cost = bestCost
	res.Complete = true
	res.NodesAllocated = s.alloc
	return res, nil
}

// totalPathsMemo caches totalPaths per (m, levels): every study row and every
// search on an instance of the same shape re-asks the same question, and the
// factorial loop is pure.
var totalPathsMemo sync.Map // [2]int -> float64

// totalPaths estimates the number of root-to-leaf paths of the Fig. 4 tree:
// every interleaving of each function's (possibly partial) ascending level
// chain. For the two-level case this matches the paper's (2M)! flavour of
// growth; the value saturates once the running product clears 1e300 (the
// division by per-function orderings is skipped from there, see
// TestTotalPathsSaturation) and is only for reporting.
// TotalPaths exposes the path-count estimate to sibling packages: the exact
// solver (internal/exact) reports the same "searched k of n paths" figure for
// its frontier rows.
func TotalPaths(m, levels int) float64 { return totalPaths(m, levels) }

func totalPaths(m, levels int) float64 {
	key := [2]int{m, levels}
	if v, ok := totalPathsMemo.Load(key); ok {
		return v.(float64)
	}
	v := computeTotalPaths(m, levels)
	totalPathsMemo.Store(key, v)
	return v
}

func computeTotalPaths(m, levels int) float64 {
	if m == 0 {
		return 1
	}
	// Count orderings of the maximal chains only (each function compiled at
	// every level): (m*levels)! / (levels!)^m — a lower bound on the leaf
	// count, mirroring the paper's "12!" for 6 functions at 2 levels.
	total := 1.0
	for i := 2; i <= m*levels; i++ {
		total *= float64(i)
		if total > 1e300 {
			return total
		}
	}
	perFunc := 1.0
	for i := 2; i <= levels; i++ {
		perFunc *= float64(i)
	}
	for i := 0; i < m; i++ {
		total /= perFunc
	}
	return total
}
