package astar

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tinyInstance builds a random OCSP instance with the given number of
// functions and calls, two compilation levels, deterministic by seed.
func tinyInstance(nfuncs, ncalls int, seed int64) (*trace.Trace, *profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	p := &profile.Profile{Levels: 2, Funcs: make([]profile.FuncTimes, nfuncs)}
	for i := range p.Funcs {
		cl := int64(1 + rng.Intn(4))
		ch := cl + int64(rng.Intn(8))
		eh := int64(1 + rng.Intn(4))
		el := eh + int64(rng.Intn(8))
		p.Funcs[i] = profile.FuncTimes{
			Compile: []int64{cl, ch}, Exec: []int64{el, eh}, Size: 1,
		}
	}
	calls := make([]trace.FuncID, ncalls)
	for i := range calls {
		calls[i] = trace.FuncID(rng.Intn(nfuncs))
	}
	return trace.New("tiny", calls), p
}

func TestFigure1Optimal(t *testing.T) {
	// The paper's Fig. 1 example: the optimum is schedule s3 with make-span
	// 10 (f1 compiled at level 0 and then at level 1).
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res, err := Search(tr, p, Options{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Complete {
		t.Fatal("search did not complete")
	}
	if res.MakeSpan != 10 {
		t.Errorf("optimal make-span = %d, want 10", res.MakeSpan)
	}

	// Fig. 2's extension: optimum becomes 12.
	tr2 := trace.New("fig2", []trace.FuncID{0, 1, 2, 1, 2})
	res2, err := Search(tr2, p, Options{})
	if err != nil {
		t.Fatalf("Search fig2: %v", err)
	}
	if res2.MakeSpan != 12 {
		t.Errorf("fig2 optimal make-span = %d, want 12", res2.MakeSpan)
	}
}

// TestSearchMatchesExhaustive: A* and branch-and-bound agree on random tiny
// instances, and both produce schedules whose simulated make-span matches
// their claim.
func TestSearchMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nfuncs := 2 + int(seed%3)
		tr, p := tinyInstance(nfuncs, 8, seed)
		a, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatalf("seed %d: Search: %v", seed, err)
		}
		b, err := Exhaustive(tr, p, Options{})
		if err != nil {
			t.Fatalf("seed %d: Exhaustive: %v", seed, err)
		}
		if a.MakeSpan != b.MakeSpan {
			t.Errorf("seed %d: A* make-span %d != exhaustive %d", seed, a.MakeSpan, b.MakeSpan)
		}
		for _, r := range []*Result{a, b} {
			simRes, err := sim.Run(tr, p, r.Schedule, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				t.Fatalf("seed %d: replay: %v", seed, err)
			}
			if simRes.MakeSpan != r.MakeSpan {
				t.Errorf("seed %d: claimed make-span %d, simulated %d", seed, r.MakeSpan, simRes.MakeSpan)
			}
		}
		lb := core.LowerBound(tr, p)
		if a.Cost != a.MakeSpan-lb {
			t.Errorf("seed %d: cost %d != make-span %d - lower bound %d", seed, a.Cost, a.MakeSpan, lb)
		}
	}
}

// TestOptimalNeverBeatenByHeuristics: IAR and the single-level schemes can
// never beat the certified optimum.
func TestOptimalNeverBeatenByHeuristics(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		tr, p := tinyInstance(3, 10, seed)
		opt, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		iar, err := core.IAR(tr, p, core.IAROptions{})
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range map[string]sim.Schedule{
			"iar":  iar,
			"base": core.SingleLevelBase(tr),
			"opt":  core.SingleLevelOptimizing(tr, profile.NewOracle(p)),
		} {
			res, err := sim.Run(tr, p, s, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.MakeSpan < opt.MakeSpan {
				t.Errorf("seed %d: %s (%d) beat the optimum (%d)", seed, name, res.MakeSpan, opt.MakeSpan)
			}
		}
	}
}

// TestIARAgainstCertifiedOptimum cross-validates the heuristic against the
// certified optimum on many tiny instances: IAR never beats it (sanity) and
// stays within a bounded factor of it — the same near-optimality claim the
// paper makes via the lower bound, here against ground truth.
func TestIARAgainstCertifiedOptimum(t *testing.T) {
	worst := 1.0
	for seed := int64(100); seed < 160; seed++ {
		tr, p := tinyInstance(2+int(seed%4), 14, seed)
		opt, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sched, err := core.IAR(tr, p, core.IAROptions{})
		if err != nil {
			t.Fatalf("seed %d: IAR: %v", seed, err)
		}
		res, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.MakeSpan < opt.MakeSpan {
			t.Fatalf("seed %d: IAR (%d) beat the certified optimum (%d)", seed, res.MakeSpan, opt.MakeSpan)
		}
		ratio := float64(res.MakeSpan) / float64(opt.MakeSpan)
		if ratio > worst {
			worst = ratio
		}
		// Tiny adversarial instances are where heuristics look worst; even
		// there IAR should stay within 2x of optimal.
		if ratio > 2.0 {
			t.Errorf("seed %d: IAR %.2fx the optimum (%d vs %d)", seed, ratio, res.MakeSpan, opt.MakeSpan)
		}
	}
	t.Logf("worst IAR/optimal ratio over 60 tiny instances: %.3f", worst)
}

// TestBudgetExhaustion: a tiny node budget aborts the search the way the
// paper's A* runs exhausted a 2 GB heap beyond six unique methods.
func TestBudgetExhaustion(t *testing.T) {
	tr, p := tinyInstance(7, 40, 3)
	res, err := Search(tr, p, Options{MaxNodes: 500})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Complete {
		t.Error("aborted search claims completeness")
	}
	if res.NodesAllocated < 500 {
		t.Errorf("allocated %d nodes, expected to hit the 500 budget", res.NodesAllocated)
	}

	if _, err := Exhaustive(tr, p, Options{MaxNodes: 100}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Exhaustive err = %v, want ErrBudgetExhausted", err)
	}
}

func TestSearchPrunes(t *testing.T) {
	// The paper reports searching 96 of ~4 billion paths for a 6-function,
	// 50-call sequence at 2 levels. That figure is instance-specific; here
	// we build an instance with the same character — one hot function worth
	// recompiling, several cold ones whose high-level compilation only
	// wastes time — and require A* to visit a vanishing fraction of the
	// tree.
	funcs := []profile.FuncTimes{
		{Compile: []int64{1, 6}, Exec: []int64{12, 1}}, // hot, recompile pays
	}
	for i := 0; i < 5; i++ {
		funcs = append(funcs, profile.FuncTimes{
			Compile: []int64{2, 50}, Exec: []int64{3, 3}, // cold, high useless
		})
	}
	p := &profile.Profile{Levels: 2, Funcs: funcs}
	calls := []trace.FuncID{0, 1, 0, 2, 0, 3, 0, 4, 0, 5}
	for i := 0; i < 40; i++ {
		calls = append(calls, 0)
	}
	tr := trace.New("prune", calls)

	res, err := Search(tr, p, Options{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Complete {
		t.Fatal("search did not complete")
	}
	if res.PathsTotal < 1e6 {
		t.Errorf("paths total = %g, expected millions", res.PathsTotal)
	}
	if float64(res.NodesExpanded) > res.PathsTotal/1000 {
		t.Errorf("expanded %d nodes of %g paths; pruning ineffective", res.NodesExpanded, res.PathsTotal)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	p := &profile.Profile{Levels: 2, Funcs: []profile.FuncTimes{
		{Compile: []int64{1, 2}, Exec: []int64{2, 1}},
	}}
	res, err := Search(trace.New("empty", nil), p, Options{})
	if err != nil || !res.Complete || len(res.Schedule) != 0 {
		t.Errorf("empty trace: res=%+v err=%v", res, err)
	}
	if _, err := Search(trace.New("bad", []trace.FuncID{5}), p, Options{}); err == nil {
		t.Error("want error for out-of-range function")
	}
	if _, err := Search(trace.New("t", []trace.FuncID{0}), p, Options{MaxNodes: -1}); err == nil {
		t.Error("want error for negative budget")
	}
}

// TestStopLeafUsesLatestVersionRule: the searcher's internal cost evaluation
// must agree with the simulator on an instance where a recompilation
// finishes mid-run.
func TestCostMatchesSimulator(t *testing.T) {
	for seed := int64(40); seed < 60; seed++ {
		tr, p := tinyInstance(3, 12, seed)
		res, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := sim.Run(tr, p, res.Schedule, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if simRes.MakeSpan != res.MakeSpan {
			t.Errorf("seed %d: search says %d, simulator says %d", seed, res.MakeSpan, simRes.MakeSpan)
		}
	}
}
