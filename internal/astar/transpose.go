package astar

// State canonicalization and the transposition table behind the BnB searcher.
//
// The Fig. 4 tree stores *paths*, but many paths reach the same *state*, and
// it is the state — not the path — that determines every reachable future.
// Canonicalizing nodes and pruning duplicates is what collapses the paper's
// factorial tree into the (much smaller) state graph.
//
// # The state key
//
// A node's key has three parts:
//
//   - the per-function compiled-level bitmask (one byte per function, bit l
//     set iff the prefix compiled level l). With a single compile worker the
//     mask fixes the compile span t (the sum of the multiset's compile
//     times, independent of order) and, for every remaining call, the set of
//     prefix versions it can use;
//   - the cursor index i: the first call the prefix's evaluation has not
//     committed. Equal masks and i mean the same remaining calls;
//   - the effective execution frontier e = max(execT, t): the clock at which
//     call i starts (or, if call i's function is uncovered, the clock its
//     first future version races against). Once every call is committed
//     (i == len(calls)) the frontier is execT itself — see keyFrontier.
//
// Two nodes with equal keys have identical futures: call i starts at
// max(e, ready), every prefix version has finished by t <= e (so the level
// the simulator picks is the mask's highest), and future versions finish at
// t plus prefix sums of the completion's compile times — all functions of
// the key alone. Hence every completion reaches the same make-span from
// both, and the identity cost = makeSpan - Σ bestExec makes the committed
// g irrelevant to the comparison. The one place execT survives into the key
// is the committed tail: with no calls left the make-span IS execT, so
// max(execT, t) would merge states whose costs differ (two interleavings of
// one compile multiset can commit the last call at different clocks yet
// share the max) — keyFrontier keys those states on execT instead.
// FuzzStateKey fuzzes exactly this claim, and its seed corpus pins the
// committed-tail counterexample that motivated the rule.
//
// # Why exact matching, not dominance
//
// The tempting stronger rule — prune a node whose frontier is no earlier
// than a stored node of the same (mask, i), i.e. dominance on the frontier —
// is UNSOUND for a JIT, and the reason is worth recording. Delaying
// execution can be strictly profitable: suppose function A's only compiled
// version runs in 100 ticks, a 1-tick version finishes compiling at clock
// 11, and two nodes share (mask, i) with frontiers 10 and 11. The frontier-
// 10 node must start A's call at 10 on the slow version (the simulator
// never waits) and finishes at 110; the frontier-11 node catches the fast
// version and finishes at 12. The "worse" node wins by two orders of
// magnitude. Smaller frontier does not dominate larger, larger obviously
// does not dominate smaller, and the committed g cannot break the tie — so
// the only sound per-state rule is exact-frontier equality, and that is what
// the table implements. (Cost-based pruning still happens, globally and
// soundly, through the admissible bound and the incumbent in bnb.go.)
//
// # The table
//
// Open-addressed with linear probing, sharded by the hash's top bits. All
// writes happen on the serial commit path (that is what keeps BnB results
// bit-identical for any worker count), so the shards exist to bound the cost
// of a rehash — each grows independently — not to serialize contention. Keys
// live in one flat byte arena per shard (fixed stride); reset keeps every
// allocation for the next run, so a warm searcher does not touch the heap.

const (
	tableShardBits = 4
	tableShards    = 1 << tableShardBits
	// tableMinSlots is a shard's initial slot count (power of two).
	tableMinSlots = 256
)

// tableShard is one open-addressed slice of the table.
type tableShard struct {
	hashes []uint64 // 0 marks an empty slot
	keys   []byte   // slot i's key at [i*stride, (i+1)*stride)
	n      int
}

// transTable is the sharded duplicate-state table. Single-writer: only the
// commit loop mutates it.
type transTable struct {
	stride int
	shards [tableShards]tableShard
}

// reset prepares the table for a run over keys of the given stride, keeping
// every previously grown allocation.
func (t *transTable) reset(stride int) {
	t.stride = stride
	for i := range t.shards {
		sh := &t.shards[i]
		if len(sh.hashes) == 0 || stride*len(sh.hashes) != len(sh.keys) {
			sh.hashes = make([]uint64, tableMinSlots)
			sh.keys = make([]byte, tableMinSlots*stride)
		} else {
			clear(sh.hashes)
		}
		sh.n = 0
	}
}

// states returns the number of distinct states stored.
func (t *transTable) states() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].n
	}
	return n
}

// hashKey is FNV-1a over the key bytes, with 0 remapped so it can serve as
// the empty-slot marker.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// insert records key and reports whether it was already present (true =
// duplicate state, prune the candidate).
func (t *transTable) insert(hash uint64, key []byte) bool {
	sh := &t.shards[hash>>(64-tableShardBits)]
	if 4*(sh.n+1) > 3*len(sh.hashes) {
		sh.grow(t.stride)
	}
	mask := uint64(len(sh.hashes) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		switch {
		case sh.hashes[i] == 0:
			sh.hashes[i] = hash
			copy(sh.keys[int(i)*t.stride:], key)
			sh.n++
			return false
		case sh.hashes[i] == hash && bytesEqual(sh.keys[int(i)*t.stride:(int(i)+1)*t.stride], key):
			return true
		}
	}
}

// grow doubles the shard, re-probing every occupied slot.
func (sh *tableShard) grow(stride int) {
	oldHashes, oldKeys := sh.hashes, sh.keys
	n := 2 * len(oldHashes)
	sh.hashes = make([]uint64, n)
	sh.keys = make([]byte, n*stride)
	mask := uint64(n - 1)
	for j, h := range oldHashes {
		if h == 0 {
			continue
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if sh.hashes[i] == 0 {
				sh.hashes[i] = h
				copy(sh.keys[int(i)*stride:], oldKeys[j*stride:(j+1)*stride])
				break
			}
		}
	}
}

// bytesEqual avoids importing bytes for one hot comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
