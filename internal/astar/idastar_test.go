package astar

import (
	"errors"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

func TestIDAFigure1Optimal(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res, err := IDASearch(tr, p, IDAOptions{})
	if err != nil {
		t.Fatalf("IDASearch: %v", err)
	}
	if !res.Complete || res.MakeSpan != 10 {
		t.Errorf("IDA* make-span = %d (complete=%v), want 10", res.MakeSpan, res.Complete)
	}
}

// TestIDAMatchesAStar: both algorithms certify the same optimum.
func TestIDAMatchesAStar(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr, p := tinyInstance(2+int(seed%3), 8, seed)
		a, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatalf("seed %d: Search: %v", seed, err)
		}
		b, err := IDASearch(tr, p, IDAOptions{})
		if err != nil {
			t.Fatalf("seed %d: IDASearch: %v", seed, err)
		}
		if a.MakeSpan != b.MakeSpan || a.Cost != b.Cost {
			t.Errorf("seed %d: IDA* (%d/%d) != A* (%d/%d)",
				seed, b.MakeSpan, b.Cost, a.MakeSpan, a.Cost)
		}
	}
}

// TestIDAMemoryIsPathOnly: the footprint is the path depth, not the frontier.
func TestIDAMemoryIsPathOnly(t *testing.T) {
	tr, p := tinyInstance(5, 30, 9)
	res, err := IDASearch(tr, p, IDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// At most every function at every level: 5 funcs x 2 levels = 10 deep.
	if res.NodesAllocated > 10 {
		t.Errorf("IDA* path depth %d exceeds the maximal chain", res.NodesAllocated)
	}
	if res.NodesExpanded <= res.NodesAllocated {
		t.Errorf("IDA* should re-expand heavily: %d expansions, depth %d",
			res.NodesExpanded, res.NodesAllocated)
	}
}

func TestIDABudgetExhaustion(t *testing.T) {
	tr, p := tinyInstance(7, 40, 3)
	res, err := IDASearch(tr, p, IDAOptions{MaxExpansions: 2000})
	if !errors.Is(err, ErrTimeExhausted) {
		t.Fatalf("err = %v, want ErrTimeExhausted", err)
	}
	if res.Complete {
		t.Error("budget-killed search claims completeness")
	}
	if _, err := IDASearch(tr, p, IDAOptions{MaxExpansions: -1}); err == nil {
		t.Error("want error for negative budget")
	}
}

func TestIDAEmptyTrace(t *testing.T) {
	p := &profile.Profile{Levels: 2, Funcs: []profile.FuncTimes{
		{Compile: []int64{1, 2}, Exec: []int64{2, 1}},
	}}
	res, err := IDASearch(trace.New("empty", nil), p, IDAOptions{})
	if err != nil || !res.Complete || len(res.Schedule) != 0 {
		t.Errorf("empty trace: res=%+v err=%v", res, err)
	}
}
