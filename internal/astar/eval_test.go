package astar

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// randomPrefix builds a random legal prefix (per-function ascending levels)
// of the given depth, plus the per-function next-level state reached.
func randomPrefix(rng *rand.Rand, order []trace.FuncID, levels, depth int) sim.Schedule {
	nextOf := map[trace.FuncID]profile.Level{}
	var prefix sim.Schedule
	for len(prefix) < depth {
		// Collect the functions that can still take an event; a level jump
		// (l > next) burns the skipped levels, so capacity shrinks fast.
		var open []trace.FuncID
		for _, f := range order {
			if int(nextOf[f]) < levels {
				open = append(open, f)
			}
		}
		if len(open) == 0 {
			break
		}
		f := open[rng.Intn(len(open))]
		nl := nextOf[f]
		l := nl + profile.Level(rng.Intn(levels-int(nl)))
		prefix = append(prefix, sim.CompileEvent{Func: f, Level: l})
		nextOf[f] = l + 1
	}
	return prefix
}

// TestCursorMatchesCost pins the incremental prefix evaluation to the
// reference cost function: for randomized legal prefixes, the cursor chain
// built by advance reproduces cost(prefix, false) at every step, and finish
// reproduces cost(prefix, true) — g and make-span both — once the prefix is
// complete.
func TestCursorMatchesCost(t *testing.T) {
	for seed := int64(500); seed < 540; seed++ {
		tr, p := tinyInstance(4, 20, seed)
		s, err := newSearcher(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		maxDepth := len(s.order) * p.Levels
		prefix := randomPrefix(rng, s.order, p.Levels, 1+rng.Intn(maxDepth))

		pe := s.newPrefixEval()
		var cur cursor
		for i := 1; i <= len(prefix); i++ {
			pe.Load(prefix[:i-1])
			var g int64
			cur, g = pe.Advance(cur, prefix[i-1])
			wantG, _ := s.cost(prefix[:i], false)
			if g != wantG {
				t.Fatalf("seed %d depth %d: advance g = %d, cost = %d (prefix %v)",
					seed, i, g, wantG, prefix[:i])
			}
		}

		// Complete the prefix (compile every still-missing function at level
		// 0) and compare the exact evaluation.
		compiled := make(map[trace.FuncID]bool)
		for _, ev := range prefix {
			compiled[ev.Func] = true
		}
		full := prefix.Clone()
		for _, f := range s.order {
			if !compiled[f] {
				pe.Load(full)
				var g int64
				ev := sim.CompileEvent{Func: f, Level: 0}
				cur, g = pe.Advance(cur, ev)
				full = append(full, ev)
				if wantG, _ := s.cost(full, false); g != wantG {
					t.Fatalf("seed %d: completing advance g = %d, cost = %d", seed, g, wantG)
				}
			}
		}
		pe.Load(full)
		g, span := pe.Finish(cur)
		wantG, wantSpan := s.cost(full, true)
		if g != wantG || span != wantSpan {
			t.Fatalf("seed %d: finish = (%d, %d), cost(full) = (%d, %d) for %v",
				seed, g, span, wantG, wantSpan, full)
		}
	}
}

// TestBeamWorkersBitIdentical is the parallel-expansion determinism
// contract: every observable Result field is identical for 1, 2, and 8
// workers, across instances and widths.
func TestBeamWorkersBitIdentical(t *testing.T) {
	for seed := int64(700); seed < 712; seed++ {
		tr, p := tinyInstance(3+int(seed%4), 16, seed)
		for _, width := range []int{4, 64} {
			serial, err := BeamSearch(tr, p, BeamOptions{Width: width, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				par, err := BeamSearch(tr, p, BeamOptions{Width: width, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("seed %d width %d: %d-worker result differs from serial:\nserial: %+v\npar:    %+v",
						seed, width, workers, serial, par)
				}
			}
		}
	}
}

// TestBeamRejectsBadWorkers covers the new option's validation.
func TestBeamRejectsBadWorkers(t *testing.T) {
	tr, p := tinyInstance(3, 10, 1)
	if _, err := BeamSearch(tr, p, BeamOptions{Workers: -2}); err == nil {
		t.Error("negative worker count accepted")
	}
}

// measureBeam times reps beam runs at the given worker count, for the
// opposite-mode reference behind the speedup metric.
func measureBeam(b *testing.B, tr *trace.Trace, p *profile.Profile, workers, reps int) time.Duration {
	b.Helper()
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := BeamSearch(tr, p, BeamOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(reps)
}

// BenchmarkBeamSearch measures the full beam pipeline (incremental scoring
// plus parallel expansion) on a mid-size instance. Workers is pinned to
// GOMAXPROCS — zero now means adaptive dispatch, and a benchmark must
// measure one mode, not the dispatcher's mood. The reported speedup metric
// is serial-ns-per-op / parallel-ns-per-op (>1 means parallel wins), with
// the serial side sampled untimed before the loop.
func BenchmarkBeamSearch(b *testing.B) {
	tr, p := tinyInstance(7, 60, 9)
	workers := runtime.GOMAXPROCS(0)
	serialRef := measureBeam(b, tr, p, 1, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BeamSearch(tr, p, BeamOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 {
		b.ReportMetric(float64(serialRef)/float64(perOp), "speedup")
	}
}

// BenchmarkBeamSearchSerial is the single-worker reference for the parallel
// speedup; it reports the same serial/parallel ratio from its own vantage.
func BenchmarkBeamSearchSerial(b *testing.B) {
	tr, p := tinyInstance(7, 60, 9)
	parallelRef := measureBeam(b, tr, p, runtime.GOMAXPROCS(0), 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BeamSearch(tr, p, BeamOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if parallelRef > 0 {
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(perOp)/float64(parallelRef), "speedup")
	}
}
