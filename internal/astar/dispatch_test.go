package astar

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestDispatchBucketFor(t *testing.T) {
	cases := map[int]int{-3: 0, 0: 0, 1: 1, dispatchBuckets - 1: dispatchBuckets - 1,
		dispatchBuckets: dispatchBuckets - 1, 1000: dispatchBuckets - 1}
	for in, want := range cases {
		if got := dispatchBucketFor(in); got != want {
			t.Errorf("dispatchBucketFor(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestDispatcherChoose drives the decision rule directly on a private table:
// unexplored buckets alternate modes, one-sided buckets explore the missing
// mode, and fully observed buckets pick the cheaper EWMA.
func TestDispatcherChoose(t *testing.T) {
	if runtime.GOMAXPROCS(0) <= 1 {
		t.Skip("single-proc: the dispatcher can only choose serial")
	}
	max := runtime.GOMAXPROCS(0)
	var d dispatcher

	// Unexplored: the two first calls must try both modes, in either order.
	first, second := d.choose(3), d.choose(3)
	if (first == 1) == (second == 1) {
		t.Errorf("exploration did not alternate: first=%d second=%d", first, second)
	}

	// Serial observed only: explore parallel.
	d.buckets[4].serialNsPerNode = 100
	if got := d.choose(4); got != max {
		t.Errorf("serial-only bucket chose %d, want %d (explore parallel)", got, max)
	}
	// Parallel observed only: explore serial.
	d.buckets[5].parallelNsPerNode = 100
	if got := d.choose(5); got != 1 {
		t.Errorf("parallel-only bucket chose %d, want 1 (explore serial)", got)
	}

	// Both observed: cheaper per-node estimate wins.
	d.buckets[6].serialNsPerNode = 200
	d.buckets[6].parallelNsPerNode = 100
	if got := d.choose(6); got != max {
		t.Errorf("parallel-cheaper bucket chose %d, want %d", got, max)
	}
	d.buckets[7].serialNsPerNode = 100
	d.buckets[7].parallelNsPerNode = 200
	if got := d.choose(7); got != 1 {
		t.Errorf("serial-cheaper bucket chose %d, want 1", got)
	}
}

// TestDispatcherObserve pins the EWMA update and the speedup gauge: once both
// modes of a bucket have data, the published estimate is their ratio in
// thousandths.
func TestDispatcherObserve(t *testing.T) {
	var d dispatcher
	d.observe(2, false, 1000*time.Nanosecond, 10) // 100 ns/node serial
	if got := d.buckets[2].serialNsPerNode; got != 100 {
		t.Fatalf("first observation did not seed the EWMA: %v", got)
	}
	d.observe(2, false, 2000*time.Nanosecond, 10) // 200 ns/node sample
	want := 100 + dispatchEWMAAlpha*(200-100)
	if got := d.buckets[2].serialNsPerNode; got != want {
		t.Errorf("EWMA after second observation = %v, want %v", got, want)
	}
	// Zero nodes / elapsed must be ignored, not divide by zero.
	d.observe(2, false, 0, 10)
	d.observe(2, false, time.Second, 0)
	if got := d.buckets[2].serialNsPerNode; got != want {
		t.Errorf("degenerate observations moved the EWMA: %v", got)
	}

	d.observe(2, true, 650*time.Nanosecond, 10) // 65 ns/node parallel
	snap := obs.Default().Snapshot()
	wantMilli := int64(want / 65 * 1000)
	if snap.SearchSpeedupMilli != wantMilli {
		t.Errorf("speedup gauge = %d, want %d", snap.SearchSpeedupMilli, wantMilli)
	}
}

// TestAutoDispatchBitIdentical is the determinism contract for Workers=0:
// whatever mode the dispatcher picks, the full Result must equal the pinned
// serial run — for beam and BnB, across repeated auto runs so both
// exploration branches execute.
func TestAutoDispatchBitIdentical(t *testing.T) {
	for seed := int64(900); seed < 904; seed++ {
		tr, p := tinyInstance(4+int(seed%3), 18, seed)
		serialBeam, err := BeamSearch(tr, p, BeamOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		serialBnB, err := BnBSearch(tr, p, BnBOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			autoBeam, err := BeamSearch(tr, p, BeamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialBeam, autoBeam) {
				t.Errorf("seed %d run %d: auto beam differs from serial:\nserial: %+v\nauto:   %+v",
					seed, run, serialBeam, autoBeam)
			}
			autoBnB, err := BnBSearch(tr, p, BnBOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialBnB, autoBnB) {
				t.Errorf("seed %d run %d: auto BnB differs from serial:\nserial: %+v\nauto:   %+v",
					seed, run, serialBnB, autoBnB)
			}
		}
	}
}

// TestAutoDispatchCounters: Workers=0 runs must be visible in obs — every
// auto decision increments exactly one of the dispatch counters, and pinned
// worker counts increment neither.
func TestAutoDispatchCounters(t *testing.T) {
	tr, p := tinyInstance(5, 20, 77)
	decisions := func() int64 {
		s := obs.Default().Snapshot()
		return s.SearchDispatchSerial + s.SearchDispatchParallel
	}
	before := decisions()
	const autoRuns = 4
	for i := 0; i < autoRuns; i++ {
		if _, err := BeamSearch(tr, p, BeamOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := BnBSearch(tr, p, BnBOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := decisions() - before; got != 2*autoRuns {
		t.Errorf("auto runs recorded %d dispatch decisions, want %d", got, 2*autoRuns)
	}
	before = decisions()
	if _, err := BeamSearch(tr, p, BeamOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := BnBSearch(tr, p, BnBOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if got := decisions() - before; got != 0 {
		t.Errorf("pinned-worker runs recorded %d dispatch decisions, want 0", got)
	}
}
