package astar_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/astar"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// searchCorpus decodes the trace fuzz seed corpus (both codecs, same files
// the sim differential tests use) and derives from each decodable trace a
// search-sized instance: calls are filtered to the first few function IDs
// and truncated, so the exhaustive ground truth stays tractable while the
// call patterns keep their fuzzed shapes.
func searchCorpus(t testing.TB) []*trace.Trace {
	t.Helper()
	const (
		maxFuncs = 5
		maxCalls = 25
	)
	var out []*trace.Trace
	for _, dir := range []string{"FuzzReadBinary", "FuzzReadText"} {
		root := filepath.Join("..", "trace", "testdata", "fuzz", dir)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading fuzz corpus %s: %v", root, err)
		}
		for _, ent := range entries {
			if ent.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(root, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			payload, ok := decodeCorpusEntry(string(data))
			if !ok {
				t.Fatalf("unparseable corpus file %s/%s", dir, ent.Name())
			}
			var tr *trace.Trace
			if dir == "FuzzReadBinary" {
				tr, err = trace.ReadBinary(bytes.NewReader([]byte(payload)))
			} else {
				tr, err = trace.ReadText(bytes.NewReader([]byte(payload)))
			}
			if err != nil || tr.Len() == 0 {
				continue
			}
			var calls []trace.FuncID
			for _, f := range tr.Calls {
				if int(f) < maxFuncs {
					calls = append(calls, f)
				}
				if len(calls) == maxCalls {
					break
				}
			}
			if len(calls) == 0 {
				continue
			}
			out = append(out, trace.New(dir+"/"+ent.Name(), calls))
		}
	}
	if len(out) == 0 {
		t.Fatal("fuzz corpus produced no usable search instances")
	}
	return out
}

// decodeCorpusEntry extracts the single []byte("...") or string("...")
// argument of a "go test fuzz v1" corpus file.
func decodeCorpusEntry(data string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return "", false
	}
	arg := strings.TrimSpace(lines[1])
	open := strings.Index(arg, "(")
	if open < 0 || !strings.HasSuffix(arg, ")") {
		return "", false
	}
	s, err := strconv.Unquote(arg[open+1 : len(arg)-1])
	if err != nil {
		return "", false
	}
	return s, true
}

// TestSearchDeterminismOnCorpus pins the tie-breaking contract of the three
// exact searches over the fuzz corpus traces:
//
//   - every algorithm is individually deterministic: repeated runs — and,
//     for BnB, any worker count in {1, 2, 8} — return the identical Result,
//     schedule included, compared field-by-field;
//   - across algorithms the certified optimum is the same make-span and
//     cost, and every returned schedule replays to its claimed make-span.
//
// Schedules are NOT required to be identical across algorithms: optimal
// ties are broken by visit order, which legitimately differs between A*'s
// best-first pops, the exhaustive DFS, and BnB's batched best-first (A* and
// Exhaustive already disagree on tied optima today). What each caller can
// rely on is that the same algorithm, on the same instance, always hands
// back the same schedule.
func TestSearchDeterminismOnCorpus(t *testing.T) {
	for _, tr := range searchCorpus(t) {
		p, err := profile.Synthesize(tr.NumFuncs(), profile.DefaultTiming(2, 11))
		if err != nil {
			t.Fatalf("%s: synthesize: %v", tr.Name, err)
		}

		a, err := astar.Search(tr, p, astar.Options{})
		if err != nil {
			t.Fatalf("%s: Search: %v", tr.Name, err)
		}
		e, err := astar.Exhaustive(tr, p, astar.Options{})
		if err != nil {
			t.Fatalf("%s: Exhaustive: %v", tr.Name, err)
		}
		b, err := astar.BnBSearch(tr, p, astar.BnBOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: BnBSearch: %v", tr.Name, err)
		}
		if a.MakeSpan != e.MakeSpan || a.MakeSpan != b.MakeSpan ||
			a.Cost != e.Cost || a.Cost != b.Cost {
			t.Errorf("%s: optima disagree: A* (%d,%d) exhaustive (%d,%d) BnB (%d,%d)",
				tr.Name, a.MakeSpan, a.Cost, e.MakeSpan, e.Cost, b.MakeSpan, b.Cost)
		}
		for algo, r := range map[string]*astar.Result{"A*": a, "exhaustive": e, "bnb": b} {
			simRes, err := sim.Run(tr, p, r.Schedule, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				t.Fatalf("%s: %s replay: %v", tr.Name, algo, err)
			}
			if simRes.MakeSpan != r.MakeSpan {
				t.Errorf("%s: %s claims make-span %d, replay gives %d",
					tr.Name, algo, r.MakeSpan, simRes.MakeSpan)
			}
		}

		// Repeated runs are bit-identical per algorithm.
		if a2, _ := astar.Search(tr, p, astar.Options{}); !reflect.DeepEqual(a, a2) {
			t.Errorf("%s: repeated Search differs:\n %+v\n %+v", tr.Name, a, a2)
		}
		if e2, _ := astar.Exhaustive(tr, p, astar.Options{}); !reflect.DeepEqual(e, e2) {
			t.Errorf("%s: repeated Exhaustive differs:\n %+v\n %+v", tr.Name, e, e2)
		}
		// BnB: any worker count, repeated runs of a reused searcher.
		for _, workers := range []int{1, 2, 8} {
			bn, err := astar.NewBnB(tr, p, astar.BnBOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := bn.Run()
				if err != nil {
					t.Fatalf("%s: BnB workers=%d rep=%d: %v", tr.Name, workers, rep, err)
				}
				if !reflect.DeepEqual(got, b) {
					t.Errorf("%s: BnB workers=%d rep=%d differs from serial:\n %+v\n %+v",
						tr.Name, workers, rep, got, b)
				}
			}
		}
	}
}
