package astar

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzStateKey fuzzes the transposition table's soundness contract: two
// prefixes that canonicalize to the same state — equal compiled-level mask,
// equal committed cursor, equal key frontier (keyFrontier) — must reach the
// same make-span under the real simulator for EVERY common completion. That
// is precisely what licenses insert() to prune the later arrival.
//
// The fuzzer builds one instance and one prefix from the input bytes, then a
// second prefix as an order-preserving interleaving of the first (same
// multiset, so the masks always match); whether the cursors and frontiers
// also collide is up to the fuzz search. The seed corpus includes the
// committed-tail counterexample from the transpose.go doc: two interleavings
// that commit both calls at different clocks (make-spans 10 and 11) while
// sharing max(execT, span) — the case that forced keyFrontier to key the
// all-committed tail on execT.
func FuzzStateKey(f *testing.F) {
	// The committed-tail counterexample: funcs A{c=1,10 e=8,1} B{c=1,5 e=1,1},
	// calls [A B], prefixes [A0 B0 A1] and [B0 A0 A1].
	f.Add([]byte{0, 0, 1, 0, 1, 0, 9, 7, 7, 0, 4, 0, 0, 3, 0, 1, 0, 1, 0, 0})
	// An uncommitted-frontier collision: same shape, shorter prefixes.
	f.Add([]byte{0, 0, 3, 0, 1, 0, 2, 4, 4, 1, 1, 2, 0, 2, 0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, p, pa, pb := decodeStateKeyInput(data)
		s, err := newSearcher(tr, p, Options{})
		if err != nil {
			t.Fatalf("searcher: %v", err)
		}
		iA, eA := prefixState(s, pa)
		iB, eB := prefixState(s, pb)
		if iA != iB || eA != eB {
			return // distinct canonical states claim nothing
		}
		// Equal keys: replay prefix+completion through the simulator and
		// demand identical make-spans, for two different completion orders.
		next := make([]profile.Level, p.NumFuncs())
		for _, ev := range pa {
			if l := ev.Level + 1; l > next[ev.Func] {
				next[ev.Func] = l
			}
		}
		for variant := 0; variant < 2; variant++ {
			var tail sim.Schedule
			for k := 0; k < p.NumFuncs(); k++ {
				fn := k
				if variant == 1 {
					fn = p.NumFuncs() - 1 - k
				}
				for l := next[fn]; int(l) < p.Levels; l++ {
					tail = append(tail, sim.CompileEvent{Func: trace.FuncID(fn), Level: l})
				}
			}
			spanA := replaySpan(t, tr, p, append(append(sim.Schedule{}, pa...), tail...))
			spanB := replaySpan(t, tr, p, append(append(sim.Schedule{}, pb...), tail...))
			if spanA != spanB {
				t.Errorf("equal state keys (i=%d frontier=%d) but completion %d diverges: %d vs %d\nprefixA=%v\nprefixB=%v",
					iA, eA, variant, spanA, spanB, pa, pb)
			}
		}
	})
}

// prefixState replays a prefix through the incremental evaluator exactly as
// the BnB tree does — one advance per event over the preceding prefix — and
// returns the committed cursor index plus the keyFrontier component of the
// prefix's state key. The mask component is implied: callers only compare
// prefixes built from the same event multiset.
func prefixState(s *searcher, prefix sim.Schedule) (int, int64) {
	pe := s.newPrefixEval()
	var cur cursor
	for k := range prefix {
		pe.Load(prefix[:k])
		cur, _ = pe.Advance(cur, prefix[k])
	}
	pe.Load(prefix)
	return cur.I, keyFrontier(cur, pe.Span(), len(s.tr.Calls))
}

// replaySpan runs a complete schedule through the simulator.
func replaySpan(t *testing.T, tr *trace.Trace, p *profile.Profile, sched sim.Schedule) int64 {
	t.Helper()
	res, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res.MakeSpan
}

// decodeStateKeyInput derives a valid OCSP instance plus two same-multiset
// prefixes from fuzz bytes. Reads past the end of data yield zero, so every
// input decodes; profile monotonicity (compile non-decreasing, exec
// non-increasing with level) is enforced by construction.
func decodeStateKeyInput(data []byte) (*trace.Trace, *profile.Profile, sim.Schedule, sim.Schedule) {
	r := fuzzBytes{data: data}
	nf := 2 + r.next()%3
	levels := 2 + r.next()%2
	ncalls := 1 + r.next()%10
	calls := make([]trace.FuncID, ncalls)
	for i := range calls {
		calls[i] = trace.FuncID(r.next() % nf)
	}
	p := &profile.Profile{Levels: levels, Funcs: make([]profile.FuncTimes, nf)}
	for fn := range p.Funcs {
		ft := &p.Funcs[fn]
		ft.Compile = make([]int64, levels)
		ft.Exec = make([]int64, levels)
		ft.Compile[0] = int64(1 + r.next()%12)
		for l := 1; l < levels; l++ {
			ft.Compile[l] = ft.Compile[l-1] + int64(r.next()%12)
		}
		ft.Exec[0] = int64(1 + r.next()%12)
		for l := 1; l < levels; l++ {
			ft.Exec[l] = max(1, ft.Exec[l-1]-int64(r.next()%12))
		}
	}
	next := make([]profile.Level, nf)
	var pa sim.Schedule
	for n := r.next() % (nf*levels + 1); n > 0; n-- {
		fn := trace.FuncID(r.next() % nf)
		if int(next[fn]) < levels {
			pa = append(pa, sim.CompileEvent{Func: fn, Level: next[fn]})
			next[fn]++
		}
	}
	// pb: an interleaving of pa that preserves each function's level order.
	queues := make([]sim.Schedule, nf)
	for _, ev := range pa {
		queues[ev.Func] = append(queues[ev.Func], ev)
	}
	pb := make(sim.Schedule, 0, len(pa))
	for len(pb) < len(pa) {
		alive := 0
		for _, q := range queues {
			if len(q) > 0 {
				alive++
			}
		}
		pick := r.next() % alive
		for fn := range queues {
			if len(queues[fn]) == 0 {
				continue
			}
			if pick == 0 {
				pb = append(pb, queues[fn][0])
				queues[fn] = queues[fn][1:]
				break
			}
			pick--
		}
	}
	return trace.New("fuzz-state-key", calls), p, pa, pb
}

// fuzzBytes reads fuzz input one byte at a time, yielding zero past the end.
type fuzzBytes struct {
	data []byte
	i    int
}

func (r *fuzzBytes) next() int {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return int(b)
}
