package astar_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/astar"
	"repro/internal/experiments"
)

// TestBnBNodeBudgetGuard is the search-node-budget guard wired into
// `make bench-guard`: on the eight-function study instance — the size where
// A* exhausts its million-node budget — BnB must prove optimality with room
// to spare under astar.DefaultMaxNodes.
func TestBnBNodeBudgetGuard(t *testing.T) {
	tr, p := experiments.AStarInstance(8, 50, 8)
	res, err := astar.BnBSearch(tr, p, astar.BnBOptions{})
	if err != nil {
		t.Fatalf("BnBSearch: %v", err)
	}
	if !res.Complete {
		t.Fatal("BnB did not prove optimality on the 8-function study instance")
	}
	if res.NodesAllocated >= astar.DefaultMaxNodes {
		t.Fatalf("BnB allocated %d nodes, want < DefaultMaxNodes (%d)",
			res.NodesAllocated, astar.DefaultMaxNodes)
	}
	t.Logf("8 funcs: span=%d nodes=%d (%.1f%% of budget) states=%d hits=%d pruned=%d",
		res.MakeSpan, res.NodesAllocated,
		100*float64(res.NodesAllocated)/float64(astar.DefaultMaxNodes),
		res.StatesStored, res.TableHits, res.BoundPruned)
}

// TestBnBFeasibilityFrontier is the acceptance criterion for the frontier
// push: BnB proves optimality on study instances of 9 unique functions —
// where A* runs out of memory at 7 — within the same DefaultMaxNodes budget.
func TestBnBFeasibilityFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier search takes ~1s")
	}
	tr, p := experiments.AStarInstance(9, 50, 9)
	res, err := astar.BnBSearch(tr, p, astar.BnBOptions{})
	if err != nil {
		t.Fatalf("BnBSearch: %v", err)
	}
	if !res.Complete {
		t.Fatal("BnB did not prove optimality at 9 unique functions")
	}
	if res.NodesAllocated >= astar.DefaultMaxNodes {
		t.Fatalf("BnB allocated %d nodes, want < DefaultMaxNodes", res.NodesAllocated)
	}
	t.Logf("9 funcs: span=%d nodes=%d states=%d hits=%d pruned=%d",
		res.MakeSpan, res.NodesAllocated, res.StatesStored, res.TableHits, res.BoundPruned)
}

// TestBnBMatchesExhaustiveOnStudyInstances: on the small study sizes where
// the exhaustive search is tractable, BnB's certified make-span is
// bit-identical to the ground truth (the ≤6-function acceptance criterion).
func TestBnBMatchesExhaustiveOnStudyInstances(t *testing.T) {
	for nf := 3; nf <= 6; nf++ {
		calls := 50
		if nf >= 5 {
			// The exhaustive ground truth, not BnB, is the limiting factor.
			calls = 30
		}
		tr, p := experiments.AStarInstance(nf, calls, int64(nf))
		want, err := astar.Exhaustive(tr, p, astar.Options{})
		if err != nil {
			t.Fatalf("nf=%d: Exhaustive: %v", nf, err)
		}
		got, err := astar.BnBSearch(tr, p, astar.BnBOptions{})
		if err != nil {
			t.Fatalf("nf=%d: BnBSearch: %v", nf, err)
		}
		if !got.Complete || got.MakeSpan != want.MakeSpan || got.Cost != want.Cost {
			t.Errorf("nf=%d: BnB (complete=%v span=%d cost=%d) != exhaustive (span=%d cost=%d)",
				nf, got.Complete, got.MakeSpan, got.Cost, want.MakeSpan, want.Cost)
		}
	}
}

// measureBnB times reps warm runs of a fresh BnB searcher at the given
// worker count, for the opposite-mode reference behind the speedup metric.
func measureBnB(b *testing.B, workers, reps int) time.Duration {
	b.Helper()
	tr, p := experiments.AStarInstance(8, 50, 8)
	bn, err := astar.NewBnB(tr, p, astar.BnBOptions{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bn.Run(); err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := bn.Run(); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(reps)
}

// BenchmarkBnBStudy8 tracks the frontier search's cost on the 8-function
// study instance (the size the old A* could not finish); the Serial variant
// is the reference for the parallel speedup. Both feed BENCH_search.json and
// report speedup = serial-ns-per-op / parallel-ns-per-op (>1 means parallel
// wins), the opposite mode sampled untimed before the loop. Workers is
// pinned to GOMAXPROCS — zero now means adaptive dispatch, and a benchmark
// must measure one mode, not the dispatcher's mood.
func BenchmarkBnBStudy8(b *testing.B) {
	serialRef := measureBnB(b, 1, 2)
	tr, p := experiments.AStarInstance(8, 50, 8)
	bn, err := astar.NewBnB(tr, p, astar.BnBOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bn.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 {
		b.ReportMetric(float64(serialRef)/float64(perOp), "speedup")
	}
}

func BenchmarkBnBStudy8Serial(b *testing.B) {
	parallelRef := measureBnB(b, runtime.GOMAXPROCS(0), 2)
	tr, p := experiments.AStarInstance(8, 50, 8)
	bn, err := astar.NewBnB(tr, p, astar.BnBOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bn.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if parallelRef > 0 {
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(perOp)/float64(parallelRef), "speedup")
	}
}
