package astar

import (
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestBeamFigure1(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	tr := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})
	res, err := BeamSearch(tr, p, BeamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A generous beam finds the true optimum (10) on this tiny instance.
	if res.MakeSpan != 10 {
		t.Errorf("beam make-span = %d, want 10", res.MakeSpan)
	}
	if res.Complete {
		t.Error("beam search must not claim proved optimality")
	}
}

// TestBeamNeverBeatsOptimal and stays close on tiny instances.
func TestBeamAgainstOptimal(t *testing.T) {
	for seed := int64(200); seed < 212; seed++ {
		tr, p := tinyInstance(3+int(seed%3), 12, seed)
		opt, err := Search(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		beam, err := BeamSearch(tr, p, BeamOptions{Width: 64})
		if err != nil {
			t.Fatal(err)
		}
		if beam.MakeSpan < opt.MakeSpan {
			t.Fatalf("seed %d: beam (%d) beat the certified optimum (%d)", seed, beam.MakeSpan, opt.MakeSpan)
		}
		if float64(beam.MakeSpan) > 1.2*float64(opt.MakeSpan) {
			t.Errorf("seed %d: beam %.2fx optimal", seed, float64(beam.MakeSpan)/float64(opt.MakeSpan))
		}
		// The claimed span must replay exactly.
		simRes, err := sim.Run(tr, p, beam.Schedule, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if simRes.MakeSpan != beam.MakeSpan {
			t.Errorf("seed %d: claimed %d, replay %d", seed, beam.MakeSpan, simRes.MakeSpan)
		}
	}
}

// TestBeamWidthMonotone: wider beams never do worse.
func TestBeamWidthMonotone(t *testing.T) {
	tr, p := tinyInstance(6, 30, 7)
	var prev int64 = 1 << 62
	for _, w := range []int{1, 8, 64, 512} {
		res, err := BeamSearch(tr, p, BeamOptions{Width: w})
		if err != nil {
			t.Fatal(err)
		}
		if res.MakeSpan > prev {
			t.Errorf("width %d worse than narrower beam: %d > %d", w, res.MakeSpan, prev)
		}
		prev = res.MakeSpan
	}
}

// TestBeamScalesBeyondExact: on a 12-function instance (hopeless for A* and
// IDA*), beam search returns a valid schedule that competes with IAR.
func TestBeamScalesBeyondExact(t *testing.T) {
	tr, p := tinyInstance(12, 80, 31)
	beam, err := BeamSearch(tr, p, BeamOptions{Width: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := beam.Schedule.Validate(tr, p); err != nil {
		t.Fatalf("beam schedule invalid: %v", err)
	}
	iarSched, err := core.IAR(tr, p, core.IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	iarRes, err := sim.Run(tr, p, iarSched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No winner is guaranteed; both must be sane relative to the lower bound.
	lb := core.LowerBound(tr, p)
	if beam.MakeSpan < lb || iarRes.MakeSpan < lb {
		t.Fatalf("someone beat the lower bound: beam %d, IAR %d, lb %d", beam.MakeSpan, iarRes.MakeSpan, lb)
	}
	t.Logf("12 funcs: beam=%d IAR=%d lower=%d", beam.MakeSpan, iarRes.MakeSpan, lb)
}

func TestBeamValidation(t *testing.T) {
	p := &profile.Profile{Levels: 2, Funcs: []profile.FuncTimes{
		{Compile: []int64{1, 2}, Exec: []int64{2, 1}},
	}}
	if _, err := BeamSearch(trace.New("t", []trace.FuncID{0}), p, BeamOptions{Width: -1}); err == nil {
		t.Error("want error for negative width")
	}
	res, err := BeamSearch(trace.New("empty", nil), p, BeamOptions{})
	if err != nil || !res.Complete {
		t.Errorf("empty trace: %+v, %v", res, err)
	}
}
