package astar

import (
	"context"
	"errors"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrTimeExhausted reports that IDA* ran out of its expansion budget — the
// time-side analogue of A*'s memory exhaustion. Together they illustrate the
// paper's §5.3 point: clever search "may still consume too much time, space
// or both".
var ErrTimeExhausted = errors.New("astar: expansion budget exhausted")

// IDAOptions configures the iterative-deepening search.
type IDAOptions struct {
	// MaxExpansions bounds the total number of node expansions across all
	// deepening iterations (0 means DefaultMaxExpansions). IDA* needs only
	// O(depth) memory, so its binding resource is time.
	MaxExpansions int
}

// DefaultMaxExpansions caps IDA* at a few million expansions — seconds of
// work, the study's stand-in for an impatient user.
const DefaultMaxExpansions = 4 << 20

// IDASearch searches the Fig. 4 tree with iterative-deepening A*:
// depth-first probes bounded by an increasing cost threshold, restarting
// with the smallest cost that exceeded the previous bound. It finds the same
// optimum as Search while storing only the current path — an extension
// beyond the paper that makes its complexity argument concrete: bounding
// memory does not rescue the search, because the tree still grows
// exponentially and IDA* pays for it in re-expansion time.
//
// Result.NodesExpanded counts expansions summed over all iterations;
// Result.NodesAllocated reports the maximum path length (the entire memory
// footprint).
func IDASearch(tr *trace.Trace, p *profile.Profile, opts IDAOptions) (*Result, error) {
	return IDASearchContext(context.Background(), tr, p, opts)
}

// IDASearchContext is IDASearch with cooperative cancellation, polled every
// cancelStride expansions. A done context aborts with ErrCancelled and no
// schedule; an un-cancelled run is bit-identical to IDASearch.
func IDASearchContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts IDAOptions) (*Result, error) {
	s, err := newSearcher(tr, p, Options{MaxNodes: 1}) // node budget unused here
	if err != nil {
		return nil, err
	}
	budget := opts.MaxExpansions
	if budget == 0 {
		budget = DefaultMaxExpansions
	}
	if budget < 0 {
		return nil, errors.New("astar: MaxExpansions must be non-negative")
	}
	res := &Result{PathsTotal: totalPaths(len(s.order), p.Levels)}
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	const inf = int64(1)<<62 - 1
	next := make([]profile.Level, p.NumFuncs())
	var prefix sim.Schedule
	maxDepth := 0

	var (
		bestSched sim.Schedule
		bestSpan  int64
		bestCost  = inf
		nextBound int64
	)

	// probe explores the subtree under the current prefix with cost bound
	// `bound`, recording the cheapest complete schedule with cost <= bound
	// and the smallest cost seen above the bound (for the next iteration).
	// It returns an error only when the budget dies.
	done := ctx.Done()
	var probe func(bound int64) error
	probe = func(bound int64) error {
		if res.NodesExpanded++; res.NodesExpanded > budget {
			return ErrTimeExhausted
		}
		if res.NodesExpanded%cancelStride == 0 && cancelled(done) {
			return cancelErr(ctx)
		}
		if len(prefix) > maxDepth {
			maxDepth = len(prefix)
		}
		g, _ := s.cost(prefix, false)
		if g > bound {
			if g < nextBound {
				nextBound = g
			}
			return nil
		}
		missing := 0
		for _, f := range s.order {
			if next[f] == 0 {
				missing++
			}
		}
		if missing == 0 {
			full, span := s.cost(prefix, true)
			switch {
			case full <= bound && full < bestCost:
				bestCost = full
				bestSched = prefix.Clone()
				bestSpan = span
			case full > bound && full < nextBound:
				nextBound = full
			}
		}
		if bestCost <= bound {
			return nil // this iteration already has its optimum
		}
		for _, f := range s.order {
			for l := next[f]; int(l) < p.Levels; l++ {
				saved := next[f]
				next[f] = l + 1
				prefix = append(prefix, sim.CompileEvent{Func: f, Level: l})
				err := probe(bound)
				prefix = prefix[:len(prefix)-1]
				next[f] = saved
				if err != nil {
					return err
				}
				if bestCost <= bound {
					return nil
				}
			}
		}
		return nil
	}

	bound := int64(0)
	for {
		if cancelled(done) {
			res.NodesAllocated = maxDepth
			return res, cancelErr(ctx)
		}
		nextBound = inf
		if err := probe(bound); err != nil {
			res.NodesAllocated = maxDepth
			return res, err
		}
		if bestCost <= bound {
			res.Schedule = bestSched
			res.MakeSpan = bestSpan
			res.Cost = bestCost
			res.Complete = true
			res.NodesAllocated = maxDepth
			return res, nil
		}
		if nextBound == inf {
			res.NodesAllocated = maxDepth
			return res, errors.New("astar: IDA* exhausted the tree without a complete schedule (internal error)")
		}
		bound = nextBound
	}
}
