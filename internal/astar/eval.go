package astar

import (
	"repro/internal/ocsp"
)

// The incremental prefix evaluator — the committed cursor plus the reusable
// per-goroutine version-list scratch — lives in internal/ocsp, shared with
// the exact solver (internal/exact). The aliases below keep this package's
// search loops reading in their own vocabulary; TestCursorMatchesCost pins
// the evaluator's g and make-span bit-identical to the from-scratch cost
// function across randomized prefixes.
type (
	cursor     = ocsp.Cursor
	prefixEval = ocsp.Eval
)

func (s *searcher) newPrefixEval() *prefixEval { return s.tab.NewEval() }
