package astar

import (
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Incremental prefix evaluation.
//
// searcher.cost re-simulates the whole trace for every node, O(N + depth)
// per child. But the Fig. 4 tree only ever grows a prefix by one tail event,
// and the paper's f(v) = b(v) + e(v) objective only charges calls starting
// inside the prefix's compile span — so a child's cost is its parent's cost
// plus whatever the one new event pulls into the window. The cursor below
// carries the committed evaluation state (next unevaluated call, exec clock,
// bubbles, extra) from parent to child; expanding a node loads the parent's
// version lists once and then scores each child by resuming the execution
// loop over only the newly-in-window calls, with the child's new version as
// a non-mutating overlay.
//
// Why resumption is sound: a committed call started strictly inside the
// parent's span, every later event finishes at or after that span (compile
// times are positive), and a call's start never precedes its function's
// first-ready time — so no extension of the prefix can change a committed
// call's start, level, or end. The two stop conditions mirror cost exactly:
// a call whose function has no version yet contributes the provisional
// bubble up to the span (uncommitted, recomputed at each node); a call
// starting at or past the span belongs to descendants. TestCursorMatchesCost
// pins g and make-span bit-identical to cost across randomized prefixes.
type cursor struct {
	i       int   // index of the first unevaluated call
	execT   int64 // exec clock after the last committed call
	bubbles int64 // committed bubble time
	extra   int64 // committed extra (non-best-level) execution time
}

// prefixEval is the reusable per-goroutine scratch: the loaded prefix's
// per-function version lists (done times are single-worker prefix sums, so
// each list is sorted ascending) plus the prefix's compile span.
type prefixEval struct {
	s       *searcher
	vdone   [][]int64
	vlevel  [][]profile.Level
	touched []trace.FuncID
	span    int64
}

func (s *searcher) newPrefixEval() *prefixEval {
	return &prefixEval{
		s:      s,
		vdone:  make([][]int64, s.p.NumFuncs()),
		vlevel: make([][]profile.Level, s.p.NumFuncs()),
	}
}

// load rebuilds the version lists for a prefix, truncating only the lists
// the previous load touched.
func (pe *prefixEval) load(prefix sim.Schedule) {
	for _, f := range pe.touched {
		pe.vdone[f] = pe.vdone[f][:0]
		pe.vlevel[f] = pe.vlevel[f][:0]
	}
	pe.touched = pe.touched[:0]
	s := pe.s
	var t int64
	for _, ev := range prefix {
		t += s.compile[int(ev.Func)*s.levels+int(ev.Level)]
		if len(pe.vdone[ev.Func]) == 0 {
			pe.touched = append(pe.touched, ev.Func)
		}
		pe.vdone[ev.Func] = append(pe.vdone[ev.Func], t)
		pe.vlevel[ev.Func] = append(pe.vlevel[ev.Func], ev.Level)
	}
	pe.span = t
}

// advance scores the loaded prefix extended by ev: it resumes the execution
// loop from cur, committing every call that now starts inside the extended
// window, and returns the child's cursor plus its g. The new event's version
// (finishing exactly at the child's span, strictly after every loaded done
// time) is applied as an overlay; the scratch is not mutated, so one load
// serves all children of a node.
func (pe *prefixEval) advance(cur cursor, ev sim.CompileEvent) (cursor, int64) {
	s := pe.s
	span := pe.span + s.compile[int(ev.Func)*s.levels+int(ev.Level)]
	ovF := ev.Func
	calls := s.tr.Calls
	for cur.i < len(calls) {
		f := calls[cur.i]
		dones := pe.vdone[f]
		first := span // the overlay's finish time, when it is f's only version
		if len(dones) > 0 {
			first = dones[0]
		} else if f != ovF {
			// Blocked on a future compilation: everything up to the span is
			// a known bubble, provisional because the span keeps moving.
			g := cur.bubbles + cur.extra
			if span > cur.execT {
				g += span - cur.execT
			}
			return cur, g
		}
		start := cur.execT
		if first > start {
			start = first
		}
		if start >= span {
			// The call starts outside the window; its cost belongs to
			// descendants.
			return cur, cur.bubbles + cur.extra
		}
		// Committed calls start strictly inside the window, and the overlay
		// version finishes exactly at its edge — so the level choice only
		// ever sees the loaded versions. (A call whose sole version is the
		// overlay took the window exit above.)
		lvls := pe.vlevel[f]
		level := lvls[0]
		for k := 1; k < len(dones); k++ {
			if dones[k] <= start {
				level = lvls[k]
			}
		}
		dur := s.exec[int(f)*s.levels+int(level)]
		cur.bubbles += start - cur.execT
		cur.extra += dur - s.bestE[f]
		cur.execT = start + dur
		cur.i++
	}
	return cur, cur.bubbles + cur.extra
}

// finish evaluates every remaining call of the loaded prefix with no window,
// the cost(prefix, true) of a complete prefix: it returns the exact total
// cost and the make-span.
func (pe *prefixEval) finish(cur cursor) (g, makeSpan int64) {
	s := pe.s
	calls := s.tr.Calls
	for cur.i < len(calls) {
		f := calls[cur.i]
		dones := pe.vdone[f]
		if len(dones) == 0 {
			// Unreachable for a complete prefix; mirrors cost's blocked
			// branch for defense in depth.
			if pe.span > cur.execT {
				cur.bubbles += pe.span - cur.execT
			}
			return cur.bubbles + cur.extra, 0
		}
		start := cur.execT
		if dones[0] > start {
			start = dones[0]
		}
		lvls := pe.vlevel[f]
		level := lvls[0]
		for k := 1; k < len(dones); k++ {
			if dones[k] <= start {
				level = lvls[k]
			}
		}
		dur := s.exec[int(f)*s.levels+int(level)]
		cur.bubbles += start - cur.execT
		cur.extra += dur - s.bestE[f]
		cur.execT = start + dur
		cur.i++
	}
	return cur.bubbles + cur.extra, cur.execT
}
