package astar

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestBnBFigure1Optimal(t *testing.T) {
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	for _, tc := range []struct {
		calls []trace.FuncID
		want  int64
	}{
		{[]trace.FuncID{0, 1, 2, 1}, 10},
		{[]trace.FuncID{0, 1, 2, 1, 2}, 12},
	} {
		tr := trace.New("fig", tc.calls)
		res, err := BnBSearch(tr, p, BnBOptions{})
		if err != nil {
			t.Fatalf("BnBSearch: %v", err)
		}
		if !res.Complete {
			t.Fatal("BnB did not prove optimality")
		}
		if res.MakeSpan != tc.want {
			t.Errorf("calls %v: make-span = %d, want %d", tc.calls, res.MakeSpan, tc.want)
		}
	}
}

// TestBnBMatchesExhaustive: BnB's certified optimum agrees with the
// exhaustive ground truth, and its schedule replays to the claimed make-span.
func TestBnBMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		nfuncs := 2 + int(seed%4)
		ncalls := 8 + int(seed%3)*6
		tr, p := tinyInstance(nfuncs, ncalls, seed)
		want, err := Exhaustive(tr, p, Options{})
		if err != nil {
			t.Fatalf("seed %d: Exhaustive: %v", seed, err)
		}
		got, err := BnBSearch(tr, p, BnBOptions{})
		if err != nil {
			t.Fatalf("seed %d: BnBSearch: %v", seed, err)
		}
		if !got.Complete {
			t.Fatalf("seed %d: BnB did not prove optimality", seed)
		}
		if got.MakeSpan != want.MakeSpan || got.Cost != want.Cost {
			t.Errorf("seed %d: BnB (span %d, cost %d) != exhaustive (span %d, cost %d)",
				seed, got.MakeSpan, got.Cost, want.MakeSpan, want.Cost)
		}
		simRes, err := sim.Run(tr, p, got.Schedule, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if simRes.MakeSpan != got.MakeSpan {
			t.Errorf("seed %d: claimed make-span %d, simulated %d", seed, got.MakeSpan, simRes.MakeSpan)
		}
	}
}

// TestBnBWorkersBitIdentical: every observable output of a BnB run —
// schedule, spans, costs, node and prune counters — is identical for any
// worker count, and stable across repeated runs of a reused searcher.
func TestBnBWorkersBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tr, p := tinyInstance(6, 30, seed)
		base, err := BnBSearch(tr, p, BnBOptions{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, workers := range []int{2, 8} {
			b, err := NewBnB(tr, p, BnBOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := b.Run()
				if err != nil {
					t.Fatalf("seed %d workers %d rep %d: %v", seed, workers, rep, err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("seed %d: workers=%d rep %d result differs from serial:\n got %+v\nwant %+v",
						seed, workers, rep, got, base)
				}
			}
		}
	}
}

func TestBnBBudgetExhaustion(t *testing.T) {
	tr, p := tinyInstance(7, 40, 3)
	res, err := BnBSearch(tr, p, BnBOptions{MaxNodes: 200})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Complete {
		t.Error("aborted search claims completeness")
	}
	if res.NodesAllocated < 200 {
		t.Errorf("allocated %d nodes, expected to hit the 200 budget", res.NodesAllocated)
	}
}

// TestBnBWarmZeroAlloc: after a first run has grown every pool — arena
// slabs, open list, transposition-table shards, expansion buffers — repeated
// serial runs of a reused BnB do not allocate.
func TestBnBWarmZeroAlloc(t *testing.T) {
	tr, p := tinyInstance(5, 30, 1)
	b, err := NewBnB(tr, p, BnBOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := b.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm BnB.Run allocates %.1f times per run, want 0", allocs)
	}
}

// TestBnBBoundMatchesCore pins the searcher's suffix bound to the §5.2
// lower bound it is built from: over the whole trace the two must coincide.
func TestBnBBoundMatchesCore(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr, p := tinyInstance(4, 20, seed)
		s, err := newSearcher(tr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lb := core.LowerBound(tr, p); s.sufBest[0] != lb {
			t.Errorf("seed %d: sufBest[0] = %d, want core.LowerBound %d", seed, s.sufBest[0], lb)
		}
		best := make([]profile.Level, p.NumFuncs())
		for f := range best {
			bl, bt := profile.Level(0), p.ExecTime(trace.FuncID(f), 0)
			for l := 1; l < p.Levels; l++ {
				if e := p.ExecTime(trace.FuncID(f), profile.Level(l)); e < bt {
					bl, bt = profile.Level(l), e
				}
			}
			best[f] = bl
		}
		atLevels, err := core.LowerBoundAtLevels(tr, p, best)
		if err != nil {
			t.Fatal(err)
		}
		if s.sufBest[0] != atLevels {
			t.Errorf("seed %d: sufBest[0] = %d, want LowerBoundAtLevels %d", seed, s.sufBest[0], atLevels)
		}
	}
}

// TestBnBTightBoundSameOptimum: the opt-in prefix-chain bound (shared with
// the exact solver via ocsp.CostBoundTight) certifies exactly the optimum the
// default bound does, on every instance — only the node and prune counters
// may differ. Together with ocsp's TestTightBoundDominates this pins the
// tight bound as a pure strengthening: never weaker, never unsound.
func TestBnBTightBoundSameOptimum(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nfuncs := 3 + int(seed%4)
		ncalls := 10 + int(seed%3)*8
		tr, p := tinyInstance(nfuncs, ncalls, seed)
		def, err := BnBSearch(tr, p, BnBOptions{})
		if err != nil {
			t.Fatalf("seed %d: default bound: %v", seed, err)
		}
		tight, err := BnBSearch(tr, p, BnBOptions{TightBound: true})
		if err != nil {
			t.Fatalf("seed %d: tight bound: %v", seed, err)
		}
		if !def.Complete || !tight.Complete {
			t.Fatalf("seed %d: incomplete search (default %v, tight %v)",
				seed, def.Complete, tight.Complete)
		}
		if def.MakeSpan != tight.MakeSpan || def.Cost != tight.Cost {
			t.Errorf("seed %d: tight bound optimum (span %d, cost %d) != default (span %d, cost %d)",
				seed, tight.MakeSpan, tight.Cost, def.MakeSpan, def.Cost)
		}
	}
}

// TestBnBEmptyTrace mirrors the other searches' empty-instance contract.
func TestBnBEmptyTrace(t *testing.T) {
	p := &profile.Profile{Levels: 2, Funcs: []profile.FuncTimes{
		{Compile: []int64{1, 2}, Exec: []int64{2, 1}},
	}}
	res, err := BnBSearch(trace.New("empty", nil), p, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Schedule) != 0 || res.MakeSpan != 0 {
		t.Errorf("empty trace: got %+v", res)
	}
}

func TestBnBOptionValidation(t *testing.T) {
	tr, p := tinyInstance(3, 8, 0)
	if _, err := NewBnB(tr, p, BnBOptions{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := NewBnB(tr, p, BnBOptions{MaxNodes: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	big := &profile.Profile{Levels: 9, Funcs: []profile.FuncTimes{{
		Compile: []int64{1, 1, 1, 1, 1, 1, 1, 1, 1},
		Exec:    []int64{9, 8, 7, 6, 5, 4, 3, 2, 1},
	}}}
	if _, err := NewBnB(trace.New("deep", []trace.FuncID{0}), big, BnBOptions{}); err == nil {
		t.Error("9-level profile accepted (state mask is one byte per function)")
	}
}
