package astar

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Beam search: a bounded-width variant of the Fig. 4 tree search. Where A*
// keeps every incompletely-examined path (and dies of memory) and IDA*
// re-expands (and dies of time), beam search keeps only the Width most
// promising prefixes per depth level — abandoning optimality guarantees for
// a memory/time budget that scales with Width × depth. It sits between the
// paper's two poles: a *search-flavoured* approximation to contrast with
// the *constructive* IAR heuristic.

// BeamOptions configures a beam search.
type BeamOptions struct {
	// Width is the number of prefixes kept per depth (0 means DefaultBeamWidth).
	Width int
}

// DefaultBeamWidth keeps a few hundred prefixes per depth.
const DefaultBeamWidth = 256

// BeamSearch explores the schedule tree breadth-first, keeping the Width
// lowest-cost prefixes at each depth, and returns the best complete schedule
// encountered. The result is valid but not necessarily optimal.
func BeamSearch(tr *trace.Trace, p *profile.Profile, opts BeamOptions) (*Result, error) {
	s, err := newSearcher(tr, p, Options{MaxNodes: 1})
	if err != nil {
		return nil, err
	}
	width := opts.Width
	if width == 0 {
		width = DefaultBeamWidth
	}
	if width < 1 {
		return nil, fmt.Errorf("astar: beam width must be >= 1, got %d", opts.Width)
	}
	res := &Result{PathsTotal: totalPaths(len(s.order), p.Levels)}
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	type beamNode struct {
		sched sim.Schedule
		next  []profile.Level
		g     int64
	}
	start := beamNode{next: make([]profile.Level, p.NumFuncs())}
	frontier := []beamNode{start}
	const inf = int64(1)<<62 - 1
	bestCost := inf
	var bestSched sim.Schedule
	var bestSpan int64

	maxDepth := len(s.order) * p.Levels
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []beamNode
		for _, n := range frontier {
			res.NodesExpanded++
			missing := 0
			for _, f := range s.order {
				if n.next[f] == 0 {
					missing++
				}
			}
			if missing == 0 {
				if full, span := s.cost(n.sched, true); full < bestCost {
					bestCost = full
					bestSched = n.sched.Clone()
					bestSpan = span
				}
			}
			for _, f := range s.order {
				for l := n.next[f]; int(l) < p.Levels; l++ {
					child := beamNode{
						sched: append(n.sched.Clone(), sim.CompileEvent{Func: f, Level: l}),
						next:  append([]profile.Level(nil), n.next...),
					}
					child.next[f] = l + 1
					child.g, _ = s.cost(child.sched, false)
					if child.g >= bestCost {
						continue // cannot beat the best complete schedule
					}
					next = append(next, child)
					res.NodesAllocated++
				}
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].g < next[j].g })
		if len(next) > width {
			next = next[:width]
		}
		frontier = next
	}
	if bestSched == nil {
		return res, fmt.Errorf("astar: beam search found no complete schedule (internal error)")
	}
	res.Schedule = bestSched
	res.MakeSpan = bestSpan
	res.Cost = bestCost
	// Beam search never proves optimality; Complete stays false by design.
	return res, nil
}
