package astar

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Beam search: a bounded-width variant of the Fig. 4 tree search. Where A*
// keeps every incompletely-examined path (and dies of memory) and IDA*
// re-expands (and dies of time), beam search keeps only the Width most
// promising prefixes per depth level — abandoning optimality guarantees for
// a memory/time budget that scales with Width × depth. It sits between the
// paper's two poles: a *search-flavoured* approximation to contrast with
// the *constructive* IAR heuristic.

// BeamOptions configures a beam search.
type BeamOptions struct {
	// Width is the number of prefixes kept per depth (0 means DefaultBeamWidth).
	Width int
	// Workers bounds the goroutines expanding a depth's frontier (1 means
	// serial, N > 1 means N goroutines). Zero means adaptive dispatch: the
	// process-wide EWMA table in dispatch.go picks serial or GOMAXPROCS
	// parallel per instance-size bucket from recently observed per-node
	// costs. The result is identical for every worker count — and therefore
	// for every dispatch decision: scoring is a pure function of the node,
	// and the best-schedule and pruning decisions are replayed serially in
	// frontier order.
	Workers int
}

// DefaultBeamWidth keeps a few hundred prefixes per depth.
const DefaultBeamWidth = 256

// beamNode is one frontier prefix.
type beamNode struct {
	sched sim.Schedule
	next  []profile.Level // next schedulable level per function
	g     int64
	cur   cursor // committed incremental-evaluation state of sched
}

// beamExpansion is what phase 1 computes for one frontier node: its exact
// cost if complete, plus all its children, scored. Whether a child survives
// against the evolving best-complete-cost bound is decided later, serially.
type beamExpansion struct {
	complete bool
	full     int64
	span     int64
	kids     []beamNode
}

// BeamSearch explores the schedule tree breadth-first, keeping the Width
// lowest-cost prefixes at each depth, and returns the best complete schedule
// encountered. The result is valid but not necessarily optimal.
//
// Each depth is expanded in two phases, reusing the worker-pool idiom of
// internal/runner: phase 1 fans the frontier out over Workers goroutines,
// each with its own prefixEval scratch, computing every node's completion
// cost and scored children; phase 2 replays the frontier serially, in
// order, applying best-schedule updates and the g >= bestCost pruning
// exactly as the serial loop would. Every observable output — schedule,
// make-span, cost, node counters — is bit-identical for any worker count.
func BeamSearch(tr *trace.Trace, p *profile.Profile, opts BeamOptions) (*Result, error) {
	return BeamSearchContext(context.Background(), tr, p, opts)
}

// BeamSearchContext is BeamSearch with cooperative cancellation, polled at
// every depth boundary (a depth expands at most Width nodes). A done context
// aborts with ErrCancelled and no schedule — even when a complete schedule
// was already seen at an earlier depth, so a cancelled search never reports a
// result the un-cancelled search would have improved. An un-cancelled run is
// bit-identical to BeamSearch.
func BeamSearchContext(ctx context.Context, tr *trace.Trace, p *profile.Profile, opts BeamOptions) (*Result, error) {
	s, err := newSearcher(tr, p, Options{MaxNodes: 1})
	if err != nil {
		return nil, err
	}
	width := opts.Width
	if width == 0 {
		width = DefaultBeamWidth
	}
	if width < 1 {
		return nil, fmt.Errorf("astar: beam width must be >= 1, got %d", opts.Width)
	}
	workers := opts.Workers
	autoBucket := -1
	if workers == 0 {
		autoBucket = dispatchBucketFor(len(s.order))
		workers = searchDispatcher.choose(autoBucket)
	}
	if workers < 1 {
		return nil, fmt.Errorf("astar: beam workers must be >= 1, got %d", opts.Workers)
	}
	var autoStart time.Time
	if autoBucket >= 0 {
		autoStart = time.Now()
	}
	res := &Result{PathsTotal: totalPaths(len(s.order), p.Levels)}
	if len(s.order) == 0 {
		res.Complete = true
		res.Schedule = sim.Schedule{}
		return res, nil
	}

	start := beamNode{next: make([]profile.Level, p.NumFuncs())}
	frontier := []beamNode{start}
	const inf = int64(1)<<62 - 1
	bestCost := inf
	var bestSched sim.Schedule
	var bestSpan int64

	// expand computes one frontier node's beamExpansion on the caller's
	// scratch. It reads only immutable searcher state.
	expand := func(pe *prefixEval, n beamNode) beamExpansion {
		var ex beamExpansion
		pe.Load(n.sched)
		missing := 0
		for _, f := range s.order {
			if n.next[f] == 0 {
				missing++
			}
		}
		if missing == 0 {
			ex.complete = true
			ex.full, ex.span = pe.Finish(n.cur)
		}
		for _, f := range s.order {
			for l := n.next[f]; int(l) < p.Levels; l++ {
				child := beamNode{
					sched: append(n.sched.Clone(), sim.CompileEvent{Func: f, Level: l}),
					next:  append([]profile.Level(nil), n.next...),
				}
				child.next[f] = l + 1
				child.cur, child.g = pe.Advance(n.cur, sim.CompileEvent{Func: f, Level: l})
				ex.kids = append(ex.kids, child)
			}
		}
		return ex
	}

	done := ctx.Done()
	maxDepth := len(s.order) * p.Levels
	expansions := make([]beamExpansion, 0, width)
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		if cancelled(done) {
			return res, cancelErr(ctx)
		}
		// Phase 1: score the frontier in parallel.
		expansions = expansions[:0]
		expansions = append(expansions, make([]beamExpansion, len(frontier))...)
		if w := min(workers, len(frontier)); w <= 1 {
			expand0 := s.pe
			for i := range frontier {
				expansions[i] = expand(expand0, frontier[i])
			}
		} else {
			idx := make(chan int)
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					pe := s.newPrefixEval()
					for i := range idx {
						expansions[i] = expand(pe, frontier[i])
					}
				}()
			}
			for i := range frontier {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}

		// Phase 2: replay serially in frontier order — identical decisions
		// to the serial loop.
		var next []beamNode
		for i := range frontier {
			res.NodesExpanded++
			ex := &expansions[i]
			if ex.complete && ex.full < bestCost {
				bestCost = ex.full
				bestSched = frontier[i].sched.Clone()
				bestSpan = ex.span
			}
			for _, child := range ex.kids {
				if child.g >= bestCost {
					continue // cannot beat the best complete schedule
				}
				next = append(next, child)
				res.NodesAllocated++
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].g < next[j].g })
		if len(next) > width {
			next = next[:width]
		}
		frontier = next
	}
	if bestSched == nil {
		return res, fmt.Errorf("astar: beam search found no complete schedule (internal error)")
	}
	if autoBucket >= 0 {
		searchDispatcher.observe(autoBucket, workers > 1, time.Since(autoStart), res.NodesExpanded)
	}
	res.Schedule = bestSched
	res.MakeSpan = bestSpan
	res.Cost = bestCost
	// Beam search never proves optimality; Complete stays false by design.
	return res, nil
}
