// Package program models synthetic programs as call graphs and collects
// dynamic call sequences by executing them — the structural counterpart of
// the paper's data-collection framework (§6.1), which records the call
// sequence of a real program run. Where internal/trace's generator produces
// statistically shaped sequences, this package produces them mechanically:
// a Program is functions with call sites and trip counts; Collect walks the
// graph from the entry point and emits one trace event per function
// invocation, exactly as a method-entry profiler would.
package program

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// CallSite is one static call location inside a function's body.
type CallSite struct {
	// Callee is the index of the called function.
	Callee int
	// Count is the number of times the site executes per invocation of the
	// caller — a loop trip count (>= 0).
	Count int
	// Prob is the probability that the site executes at all on a given
	// invocation (a branch guard), in [0,1]. 1 means always.
	Prob float64
}

// Function is one node of the call graph.
type Function struct {
	// Name is a human-readable label.
	Name string
	// Body is the function's call sites, executed in order.
	Body []CallSite
	// Work is the function's own (exclusive) computational weight; it
	// becomes the synthetic code size / base execution cost downstream.
	Work int64
}

// Program is a call graph with a designated entry function.
type Program struct {
	Funcs []Function
	Entry int
}

// Validate checks structural sanity: entry and all callees in range, trip
// counts non-negative, probabilities in [0,1].
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program: no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("program: entry %d out of range [0,%d)", p.Entry, len(p.Funcs))
	}
	for i, f := range p.Funcs {
		for j, cs := range f.Body {
			if cs.Callee < 0 || cs.Callee >= len(p.Funcs) {
				return fmt.Errorf("program: function %d site %d calls unknown function %d", i, j, cs.Callee)
			}
			if cs.Count < 0 {
				return fmt.Errorf("program: function %d site %d has negative trip count", i, j)
			}
			if cs.Prob < 0 || cs.Prob > 1 {
				return fmt.Errorf("program: function %d site %d has probability %g outside [0,1]", i, j, cs.Prob)
			}
		}
	}
	return nil
}

// Sizes returns each function's synthetic code size, derived from its own
// work and the number of its call sites — the quantity cost-benefit models
// estimate from.
func (p *Program) Sizes() []int64 {
	sizes := make([]int64, len(p.Funcs))
	for i, f := range p.Funcs {
		sizes[i] = f.Work + int64(len(f.Body))*24
		if sizes[i] < 16 {
			sizes[i] = 16
		}
	}
	return sizes
}

// CollectOptions bounds a collection run.
type CollectOptions struct {
	// MaxCalls stops the walk once the trace reaches this many invocations
	// (0 means DefaultMaxCalls). Real collection frameworks bound their
	// buffers the same way.
	MaxCalls int
	// MaxDepth bounds the call stack; deeper invocations execute but emit
	// no callees, cutting runaway recursion (0 means DefaultMaxDepth).
	MaxDepth int
	// Seed drives branch-probability draws.
	Seed int64
}

// DefaultMaxCalls and DefaultMaxDepth bound collection runs.
const (
	DefaultMaxCalls = 1 << 22
	DefaultMaxDepth = 64
)

// Collect executes the program and returns its dynamic call sequence: one
// event per function invocation, in invocation order (the entry function
// included). The walk is deterministic for a given seed.
func Collect(p *Program, opts CollectOptions) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxCalls := opts.MaxCalls
	if maxCalls == 0 {
		maxCalls = DefaultMaxCalls
	}
	if maxCalls < 0 {
		return nil, fmt.Errorf("program: MaxCalls must be non-negative, got %d", opts.MaxCalls)
	}
	maxDepth := opts.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	if maxDepth < 1 {
		return nil, fmt.Errorf("program: MaxDepth must be positive, got %d", opts.MaxDepth)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	tr := &trace.Trace{Name: "collected"}
	full := false
	var walk func(fn, depth int)
	walk = func(fn, depth int) {
		if full {
			return
		}
		if len(tr.Calls) >= maxCalls {
			full = true
			return
		}
		tr.Calls = append(tr.Calls, trace.FuncID(fn))
		if depth >= maxDepth {
			return
		}
		for _, cs := range p.Funcs[fn].Body {
			if cs.Prob < 1 && rng.Float64() >= cs.Prob {
				continue
			}
			for k := 0; k < cs.Count; k++ {
				walk(cs.Callee, depth+1)
				if full {
					return
				}
			}
		}
	}
	walk(p.Entry, 0)
	return tr, nil
}

// GenConfig parameterizes random program generation: a layered call graph
// in which functions call only strictly deeper layers (acyclic, so the walk
// terminates without hitting the depth bound) plus a phased entry function.
type GenConfig struct {
	// Funcs is the total number of functions, entry included.
	Funcs int
	// Layers is the call-graph depth (>= 2: entry plus at least one layer).
	Layers int
	// FanOut is the mean number of call sites per function.
	FanOut float64
	// LoopMean is the mean loop trip count of a call site; heavy-tailed
	// draws around it make some paths hot.
	LoopMean float64
	// BranchProb is the execution probability of non-loop call sites.
	BranchProb float64
	// Seed drives generation.
	Seed int64
}

// Validate reports the first configuration error, or nil.
func (c *GenConfig) Validate() error {
	switch {
	case c.Funcs < 2:
		return fmt.Errorf("program: GenConfig.Funcs must be >= 2, got %d", c.Funcs)
	case c.Layers < 2:
		return fmt.Errorf("program: GenConfig.Layers must be >= 2, got %d", c.Layers)
	case c.FanOut <= 0:
		return fmt.Errorf("program: GenConfig.FanOut must be positive, got %g", c.FanOut)
	case c.LoopMean < 1:
		return fmt.Errorf("program: GenConfig.LoopMean must be >= 1, got %g", c.LoopMean)
	case c.BranchProb <= 0 || c.BranchProb > 1:
		return fmt.Errorf("program: GenConfig.BranchProb must be in (0,1], got %g", c.BranchProb)
	}
	return nil
}

// Generate builds a random layered program. Function 0 is the entry; the
// remaining functions are split across layers, and each function's call
// sites target the next layers only.
func Generate(cfg GenConfig) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Program{Funcs: make([]Function, cfg.Funcs), Entry: 0}

	// Layer boundaries over functions 1..Funcs-1.
	layerOf := make([]int, cfg.Funcs)
	rest := cfg.Funcs - 1
	for i := 1; i < cfg.Funcs; i++ {
		layerOf[i] = 1 + (i-1)*(cfg.Layers-1)/rest
	}
	layerStart := make([]int, cfg.Layers+1)
	for l := 1; l <= cfg.Layers; l++ {
		layerStart[l] = cfg.Funcs
		for i := 1; i < cfg.Funcs; i++ {
			if layerOf[i] >= l {
				layerStart[l] = i
				break
			}
		}
	}

	pick := func(minLayer int) int {
		lo := layerStart[minLayer]
		if lo >= cfg.Funcs {
			return -1
		}
		return lo + rng.Intn(cfg.Funcs-lo)
	}

	for i := 0; i < cfg.Funcs; i++ {
		f := &p.Funcs[i]
		f.Name = fmt.Sprintf("fn%04d", i)
		f.Work = 100 + rng.Int63n(1500)
		myLayer := layerOf[i]
		if i == 0 {
			myLayer = 0
		}
		if myLayer >= cfg.Layers-1 && i != 0 {
			continue // leaf layer: no call sites
		}
		sites := 1 + rng.Intn(int(2*cfg.FanOut))
		if i == 0 {
			// The entry calls a spread of "phase roots" in order, each a
			// loop — the program's phase structure. A wide entry keeps most
			// of the program reachable.
			sites = cfg.Layers * 2
			if min := cfg.Funcs / 12; sites < min {
				sites = min
			}
		}
		// Loop trip counts grow toward the leaves (hot inner loops live
		// deep), keeping upper-layer fan-out moderate so no single subtree
		// swallows the whole run.
		depthFactor := float64(myLayer+1) / float64(cfg.Layers)
		countMean := 1 + (cfg.LoopMean-1)*depthFactor*depthFactor
		for s := 0; s < sites; s++ {
			callee := pick(myLayer + 1)
			if callee < 0 {
				break
			}
			// Heavy-tailed trip counts: mostly small, occasionally hot.
			count := 1 + int(rng.ExpFloat64()*(countMean-1))
			if rng.Intn(8) == 0 {
				count *= 2 + rng.Intn(6)
			}
			prob := 1.0
			if rng.Float64() < 0.5 {
				prob = cfg.BranchProb
			}
			f.Body = append(f.Body, CallSite{Callee: callee, Count: count, Prob: prob})
		}
	}

	// Connectivity pass: every function gets at least one unconditional
	// incoming edge from a shallower layer, so the whole program is
	// reachable (dead code would only dilute the function count).
	hasIncoming := make([]bool, cfg.Funcs)
	for _, f := range p.Funcs {
		for _, cs := range f.Body {
			if cs.Prob == 1 {
				hasIncoming[cs.Callee] = true
			}
		}
	}
	for i := 1; i < cfg.Funcs; i++ {
		if hasIncoming[i] {
			continue
		}
		// Choose a caller in a strictly shallower layer (the entry for
		// layer 1).
		caller := 0
		if layerOf[i] > 1 {
			lo, hi := layerStart[layerOf[i]-1], layerStart[layerOf[i]]
			if lo < hi {
				caller = lo + rng.Intn(hi-lo)
			}
		}
		p.Funcs[caller].Body = append(p.Funcs[caller].Body,
			CallSite{Callee: i, Count: 1, Prob: 1})
		hasIncoming[i] = true
	}
	return p, nil
}
