package program

import (
	"testing"

	"repro/internal/trace"
)

func TestInlineDiamondLeaf(t *testing.T) {
	p := diamond()
	q, stats, err := Inline(p, []int{3}) // inline c into a and b
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inlined != 1 || stats.SitesRewritten != 2 {
		t.Errorf("stats = %+v, want 1 inlined / 2 sites", stats)
	}
	// a absorbed 2x c's work (count 2), b absorbed 1x.
	if q.Funcs[1].Work != 20+2*40 {
		t.Errorf("a's work = %d, want 100", q.Funcs[1].Work)
	}
	if q.Funcs[2].Work != 30+40 {
		t.Errorf("b's work = %d, want 70", q.Funcs[2].Work)
	}
	// c no longer appears in collected traces.
	tr, err := Collect(q, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Calls {
		if f == 3 {
			t.Fatal("inlined function still invoked")
		}
	}
	// The trace shrank by c's former invocations (7 of them).
	orig, err := Collect(p, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != orig.Len()-7 {
		t.Errorf("inlined trace has %d calls, want %d", tr.Len(), orig.Len()-7)
	}
}

func TestInlineValidation(t *testing.T) {
	p := diamond()
	if _, _, err := Inline(p, []int{0}); err == nil {
		t.Error("want error for inlining the entry")
	}
	if _, _, err := Inline(p, []int{1}); err == nil {
		t.Error("want error for inlining a non-leaf")
	}
	if _, _, err := Inline(p, []int{9}); err == nil {
		t.Error("want error for out-of-range victim")
	}
	// Duplicates count once.
	_, stats, err := Inline(p, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inlined != 1 {
		t.Errorf("duplicate victim counted twice: %+v", stats)
	}
}

func TestHottestLeaves(t *testing.T) {
	p := diamond()
	// Only leaf is c (function 3).
	hot := HottestLeaves(p, 5)
	if len(hot) != 1 || hot[0] != 3 {
		t.Errorf("hottest leaves = %v, want [3]", hot)
	}

	// On a generated program, the hottest leaf must actually be hot in a
	// collected trace.
	g, err := Generate(GenConfig{Funcs: 120, Layers: 4, FanOut: 3, LoopMean: 4, BranchProb: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hot = HottestLeaves(g, 3)
	if len(hot) == 0 {
		t.Fatal("no leaves found in generated program")
	}
	tr, err := Collect(g, CollectOptions{MaxCalls: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	var totalWork, hotWork int64
	for f, n := range counts {
		totalWork += n * g.Funcs[f].Work
	}
	for _, f := range hot {
		hotWork += counts[f] * g.Funcs[f].Work
	}
	if float64(hotWork) < 0.05*float64(totalWork) {
		t.Errorf("top leaves carry only %.1f%% of work; ranking looks broken",
			100*float64(hotWork)/float64(totalWork))
	}
}

// TestInlinePipeline: inlining shortens traces and shifts work into callers;
// the scheduling pipeline keeps functioning on the transformed program.
func TestInlinePipeline(t *testing.T) {
	g, err := Generate(GenConfig{Funcs: 150, Layers: 4, FanOut: 3, LoopMean: 5, BranchProb: 0.7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Collect(g, CollectOptions{MaxCalls: 150000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	victims := HottestLeaves(g, 10)
	q, stats, err := Inline(g, victims)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SitesRewritten == 0 {
		t.Fatal("nothing was rewritten")
	}
	after, err := Collect(q, CollectOptions{MaxCalls: 150000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() >= before.Len() {
		t.Errorf("inlining did not shorten the trace: %d -> %d", before.Len(), after.Len())
	}
	for _, f := range after.Calls {
		for _, v := range victims {
			if int(f) == v {
				t.Fatalf("victim %d still called", v)
			}
		}
	}
	_ = trace.ComputeStats(after) // exercised for crash-freedom
}
