package program

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// diamond builds a tiny fixed program:
//
//	entry -> a (x3), b (x1)
//	a     -> c (x2)
//	b     -> c (x1)
func diamond() *Program {
	return &Program{
		Entry: 0,
		Funcs: []Function{
			{Name: "entry", Work: 10, Body: []CallSite{
				{Callee: 1, Count: 3, Prob: 1},
				{Callee: 2, Count: 1, Prob: 1},
			}},
			{Name: "a", Work: 20, Body: []CallSite{{Callee: 3, Count: 2, Prob: 1}}},
			{Name: "b", Work: 30, Body: []CallSite{{Callee: 3, Count: 1, Prob: 1}}},
			{Name: "c", Work: 40},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := diamond()
	bad.Entry = 9
	if err := bad.Validate(); err == nil {
		t.Error("want error for bad entry")
	}
	bad = diamond()
	bad.Funcs[1].Body[0].Callee = -1
	if err := bad.Validate(); err == nil {
		t.Error("want error for bad callee")
	}
	bad = diamond()
	bad.Funcs[1].Body[0].Count = -1
	if err := bad.Validate(); err == nil {
		t.Error("want error for negative trip count")
	}
	bad = diamond()
	bad.Funcs[1].Body[0].Prob = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("want error for bad probability")
	}
	if err := (&Program{}).Validate(); err == nil {
		t.Error("want error for empty program")
	}
}

func TestCollectDeterministicWalk(t *testing.T) {
	// entry, then 3x (a, c, c), then b, c.
	want := []trace.FuncID{0, 1, 3, 3, 1, 3, 3, 1, 3, 3, 2, 3}
	tr, err := Collect(diamond(), CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Calls, want) {
		t.Errorf("walk = %v, want %v", tr.Calls, want)
	}
}

func TestCollectRespectsMaxCalls(t *testing.T) {
	tr, err := Collect(diamond(), CollectOptions{MaxCalls: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Errorf("trace length %d, want 5", tr.Len())
	}
	if _, err := Collect(diamond(), CollectOptions{MaxCalls: -1}); err == nil {
		t.Error("want error for negative MaxCalls")
	}
	if _, err := Collect(diamond(), CollectOptions{MaxDepth: -1}); err == nil {
		t.Error("want error for negative MaxDepth")
	}
}

func TestCollectDepthBoundCutsRecursion(t *testing.T) {
	// A self-recursive function would walk forever without the bound.
	p := &Program{
		Entry: 0,
		Funcs: []Function{
			{Name: "rec", Work: 10, Body: []CallSite{{Callee: 0, Count: 1, Prob: 1}}},
		},
	}
	tr, err := Collect(p, CollectOptions{MaxDepth: 10, MaxCalls: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 11 { // depth 0..10 inclusive
		t.Errorf("recursive walk emitted %d calls, want 11", tr.Len())
	}
}

func TestCollectBranchesAreSeeded(t *testing.T) {
	p := diamond()
	p.Funcs[0].Body[0].Prob = 0.5
	a, err := Collect(p, CollectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(p, CollectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Calls, b.Calls) {
		t.Error("same seed produced different walks")
	}
}

func TestSizes(t *testing.T) {
	sizes := diamond().Sizes()
	if len(sizes) != 4 {
		t.Fatalf("got %d sizes", len(sizes))
	}
	for i, s := range sizes {
		if s < 16 {
			t.Errorf("function %d size %d below floor", i, s)
		}
	}
	// Functions with more call sites are bigger at equal work.
	if sizes[0] <= sizes[3]-30 { // entry has 2 sites + work 10; c has none + work 40
		t.Logf("sizes: %v", sizes) // informational; exact relation depends on weights
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Funcs: 1, Layers: 2, FanOut: 1, LoopMean: 1, BranchProb: 1},
		{Funcs: 10, Layers: 1, FanOut: 1, LoopMean: 1, BranchProb: 1},
		{Funcs: 10, Layers: 2, FanOut: 0, LoopMean: 1, BranchProb: 1},
		{Funcs: 10, Layers: 2, FanOut: 1, LoopMean: 0.5, BranchProb: 1},
		{Funcs: 10, Layers: 2, FanOut: 1, LoopMean: 1, BranchProb: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
}

func TestGeneratedProgramsCollectable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := GenConfig{Funcs: 150, Layers: 5, FanOut: 3, LoopMean: 4, BranchProb: 0.6, Seed: seed}
		p, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated program invalid: %v", seed, err)
		}
		tr, err := Collect(p, CollectOptions{MaxCalls: 200000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() < 100 {
			t.Errorf("seed %d: trace too short (%d calls); graph too sparse", seed, tr.Len())
		}
		if err := tr.Validate(len(p.Funcs)); err != nil {
			t.Errorf("seed %d: collected trace invalid: %v", seed, err)
		}
		// The layered DAG never exceeds the layer count in depth, so the
		// walk must terminate on its own well before MaxCalls on most
		// seeds; at minimum it must be deterministic.
		tr2, err := Collect(p, CollectOptions{MaxCalls: 200000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Calls, tr2.Calls) {
			t.Errorf("seed %d: collection not deterministic", seed)
		}
	}
}

// TestEndToEndPipeline runs the full structural pipeline: generate program,
// collect trace, synthesize timing from the program's own sizes, schedule
// with IAR, and simulate.
func TestEndToEndPipeline(t *testing.T) {
	p, err := Generate(GenConfig{Funcs: 200, Layers: 5, FanOut: 3, LoopMean: 5, BranchProb: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Collect(p, CollectOptions{MaxCalls: 100000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.SynthesizeWithSizes(p.Sizes(), profile.DefaultTiming(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := core.IAR(tr, prof, core.IAROptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, prof, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lb := core.ModelLowerBound(tr, prof, profile.NewOracle(prof))
	if res.MakeSpan < lb {
		t.Errorf("make-span %d below lower bound %d", res.MakeSpan, lb)
	}
	if float64(res.MakeSpan) > 1.5*float64(lb) {
		t.Errorf("IAR on collected trace at %.2fx bound; pipeline mis-shapen", float64(res.MakeSpan)/float64(lb))
	}
}
