package program_test

import (
	"fmt"

	"repro/internal/program"
)

// ExampleCollect executes a tiny hand-built program and prints the
// collected call sequence — what a method-entry profiler would record.
func ExampleCollect() {
	p := &program.Program{
		Entry: 0,
		Funcs: []program.Function{
			{Name: "main", Work: 10, Body: []program.CallSite{
				{Callee: 1, Count: 2, Prob: 1},
				{Callee: 2, Count: 1, Prob: 1},
			}},
			{Name: "worker", Work: 50, Body: []program.CallSite{
				{Callee: 2, Count: 1, Prob: 1},
			}},
			{Name: "leaf", Work: 5},
		},
	}
	tr, err := program.Collect(p, program.CollectOptions{})
	if err != nil {
		panic(err)
	}
	for _, f := range tr.Calls {
		fmt.Printf("%s ", p.Funcs[f].Name)
	}
	fmt.Println()
	// Output:
	// main worker leaf worker leaf leaf
}

// ExampleInline merges a hot leaf into its callers: the trace shrinks, the
// callers absorb the work.
func ExampleInline() {
	p := &program.Program{
		Entry: 0,
		Funcs: []program.Function{
			{Name: "main", Work: 10, Body: []program.CallSite{{Callee: 1, Count: 3, Prob: 1}}},
			{Name: "leaf", Work: 40},
		},
	}
	q, stats, err := program.Inline(p, []int{1})
	if err != nil {
		panic(err)
	}
	tr, err := program.Collect(q, program.CollectOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inlined=%d sites=%d mainWork=%d calls=%d\n",
		stats.Inlined, stats.SitesRewritten, q.Funcs[0].Work, tr.Len())
	// Output:
	// inlined=1 sites=1 mainWork=130 calls=1
}
