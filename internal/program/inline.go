package program

import (
	"fmt"
)

// Inlining support for the §8 discussion: "function inlining that happens in
// a run may substantially change the length and execution time of the caller
// function". Inlining a callee into its call sites removes the callee's
// invocation events from collected traces and folds its work (and code size)
// into the callers — exactly the two effects that perturb a
// measured-beforehand profile.

// InlineStats reports what an Inline transformation did.
type InlineStats struct {
	// Inlined is the number of functions merged into their callers.
	Inlined int
	// SitesRewritten is the number of call sites absorbed.
	SitesRewritten int
}

// Inline returns a copy of the program with the given functions merged into
// every call site that targets them. Only functions without call sites of
// their own (leaves) can be inlined — the usual first-order inliner target —
// and the entry function cannot be. The inlined functions remain in the
// function table (their IDs stay valid) but are no longer reachable.
func Inline(p *Program, victims []int) (*Program, InlineStats, error) {
	var stats InlineStats
	if err := p.Validate(); err != nil {
		return nil, stats, err
	}
	inline := make([]bool, len(p.Funcs))
	for _, v := range victims {
		if v < 0 || v >= len(p.Funcs) {
			return nil, stats, fmt.Errorf("program: inline victim %d out of range", v)
		}
		if v == p.Entry {
			return nil, stats, fmt.Errorf("program: cannot inline the entry function")
		}
		if len(p.Funcs[v].Body) != 0 {
			return nil, stats, fmt.Errorf("program: function %d is not a leaf; only leaves inline", v)
		}
		if !inline[v] {
			inline[v] = true
			stats.Inlined++
		}
	}

	q := &Program{Entry: p.Entry, Funcs: make([]Function, len(p.Funcs))}
	for i, f := range p.Funcs {
		nf := Function{Name: f.Name, Work: f.Work}
		for _, cs := range f.Body {
			if inline[cs.Callee] {
				// The callee's body is empty (leaf); absorb its work,
				// scaled by the expected executions of the site.
				expected := float64(cs.Count) * cs.Prob
				nf.Work += int64(expected * float64(p.Funcs[cs.Callee].Work))
				stats.SitesRewritten++
				continue
			}
			nf.Body = append(nf.Body, cs)
		}
		q.Funcs[i] = nf
	}
	return q, stats, nil
}

// HottestLeaves returns up to n leaf functions ranked by their expected
// total work under the program's static structure (expected executions ×
// work), the natural inlining candidates.
func HottestLeaves(p *Program, n int) []int {
	if err := p.Validate(); err != nil {
		return nil
	}
	// Expected invocation counts by a breadth pass: entry executes once;
	// each site contributes count*prob*callerFreq. The layered generator
	// guarantees acyclicity; for hand-built cyclic programs this converges
	// visit-limited.
	freq := make([]float64, len(p.Funcs))
	freq[p.Entry] = 1
	// Process in topological-ish order: repeat passes until stable or a
	// small bound (cycles get an approximation, which is fine for ranking).
	for pass := 0; pass < 8; pass++ {
		next := make([]float64, len(p.Funcs))
		next[p.Entry] = 1
		for i, f := range p.Funcs {
			if freq[i] == 0 {
				continue
			}
			for _, cs := range f.Body {
				next[cs.Callee] += freq[i] * float64(cs.Count) * cs.Prob
			}
		}
		stable := true
		for i := range freq {
			if next[i] != freq[i] {
				stable = false
			}
		}
		freq = next
		if stable {
			break
		}
	}
	type cand struct {
		fn   int
		heat float64
	}
	var cands []cand
	for i, f := range p.Funcs {
		if i == p.Entry || len(f.Body) != 0 || freq[i] == 0 {
			continue
		}
		cands = append(cands, cand{i, freq[i] * float64(f.Work)})
	}
	// Selection sort for the top n keeps this simple.
	out := make([]int, 0, n)
	for len(out) < n && len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].heat > cands[best].heat ||
				(cands[i].heat == cands[best].heat && cands[i].fn < cands[best].fn) {
				best = i
			}
		}
		out = append(out, cands[best].fn)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return out
}
