// Package report renders experiment results as plain-text tables and ASCII
// bar charts, and provides the small statistics helpers the experiment
// harnesses share.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error surfaced at render time.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Style selects a table output format.
type Style int

const (
	// Text is the column-aligned plain-text format.
	Text Style = iota
	// Markdown renders a GitHub-flavoured markdown table.
	Markdown
)

// defaultStyle is the style Render uses; the CLI switches it with SetStyle.
var defaultStyle = Text

// SetStyle selects the style used by Render and returns the previous one.
// It exists for the CLI's output flag; library code should call RenderTo
// with an explicit style instead.
func SetStyle(s Style) Style {
	prev := defaultStyle
	defaultStyle = s
	return prev
}

// Render writes the table to w in the package's current default style.
func (t *Table) Render(w io.Writer) error { return t.RenderTo(w, defaultStyle) }

// RenderTo writes the table in the given style.
func (t *Table) RenderTo(w io.Writer, style Style) error {
	for _, row := range t.rows {
		if len(row) > len(t.Columns) {
			return fmt.Errorf("report: row has %d cells for %d columns", len(row), len(t.Columns))
		}
	}
	if style == Markdown {
		return t.renderMarkdown(w)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderMarkdown writes the GitHub-flavoured form. Callers have validated
// row widths.
func (t *Table) renderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteByte('|')
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean of xs, which must all be positive
// (0 for empty input, NaN if any x <= 0).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Bar renders value as a bar of '#' characters scaled so that max fills
// width runes. Values beyond max are clamped; non-positive values and
// degenerate maxima give an empty bar.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// F2 formats a float with two decimals — the normalized-make-span format
// used throughout the experiment tables.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// F3 formats a float with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }
