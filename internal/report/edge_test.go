package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestStatHelpersDegenerateInputs drives the shared statistics helpers
// through the degenerate shapes an empty benchmark run produces — no
// samples, all-zero samples, zero scale — and checks none of them divides by
// zero or leaks NaN/Inf into a rendered cell.
func TestStatHelpersDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"mean of nothing", Mean(nil), 0},
		{"mean of empty slice", Mean([]float64{}), 0},
		{"mean of zeros", Mean([]float64{0, 0, 0}), 0},
		{"geomean of nothing", Geomean(nil), 0},
		{"geomean of empty slice", Geomean([]float64{}), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.got != c.want {
				t.Errorf("got %v, want %v", c.got, c.want)
			}
			for _, cell := range []string{F2(c.got), F3(c.got)} {
				if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
					t.Errorf("formatted cell %q is not a number", cell)
				}
			}
		})
	}
	// Geomean of a run containing a zero make-span is documented to be NaN —
	// callers must filter — so pin that contract rather than hide it.
	if !math.IsNaN(Geomean([]float64{1, 0, 2})) {
		t.Error("Geomean accepted a non-positive sample")
	}
}

// TestBarDegenerateInputs: bars of empty runs must render as empty strings,
// never panic or divide by zero.
func TestBarDegenerateInputs(t *testing.T) {
	cases := []struct {
		name       string
		value, max float64
		width      int
		want       string
	}{
		{"zero max", 5, 0, 10, ""},
		{"negative max", 5, -1, 10, ""},
		{"zero value", 0, 10, 10, ""},
		{"zero width", 5, 10, 0, ""},
		{"value beyond max clamps", 100, 10, 4, "####"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Bar(c.value, c.max, c.width); got != c.want {
				t.Errorf("Bar(%v, %v, %d) = %q, want %q", c.value, c.max, c.width, got, c.want)
			}
		})
	}
}

// TestEmptyTableRenders: a harness that found nothing to report still
// renders headers in both styles.
func TestEmptyTableRenders(t *testing.T) {
	for _, style := range []Style{Text, Markdown} {
		var b strings.Builder
		tab := NewTable("empty study", "bench", "make-span")
		if err := tab.RenderTo(&b, style); err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
		if !strings.Contains(b.String(), "bench") {
			t.Errorf("style %v output lost the header:\n%s", style, b.String())
		}
	}
}

// TestZeroCallProgramStats runs a zero-call trace through the stats
// pipeline and formats every derived number the experiment tables print;
// none may be NaN or infinite.
func TestZeroCallProgramStats(t *testing.T) {
	st := trace.ComputeStats(trace.New("empty", nil))
	if st.Length != 0 || st.UniqueFuncs != 0 {
		t.Fatalf("empty trace has stats %+v", st)
	}
	cells := []string{
		F2(st.Top10Share * 100),
		F3(Mean([]float64{})),
		F3(Geomean(nil)),
		Bar(float64(st.MaxCount), float64(st.Length), 20),
	}
	for _, cell := range cells {
		if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
			t.Errorf("zero-call program produced non-numeric cell %q", cell)
		}
	}
}
