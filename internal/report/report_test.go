package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("My Title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-longer", "22")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "My Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "value" starts at the same offset in header and rows.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[4], "22"); got != idx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", idx, got, out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestTableShortRowAndOverflow(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only-a")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Errorf("short row should render: %v", err)
	}
	tab.AddRow("1", "2", "3")
	if err := tab.Render(&strings.Builder{}); err == nil {
		t.Error("want error for row wider than columns")
	}
}

func TestMarkdownRender(t *testing.T) {
	tab := NewTable("Title", "a", "b")
	tab.AddRow("x|y", "1")
	var b strings.Builder
	if err := tab.RenderTo(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "**Title**") {
		t.Error("missing bold title")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "|---|---|") {
		t.Errorf("markdown structure wrong:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Error("pipe not escaped")
	}
}

func TestSetStyle(t *testing.T) {
	prev := SetStyle(Markdown)
	defer SetStyle(prev)
	tab := NewTable("", "c")
	tab.AddRow("v")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "| c |") {
		t.Errorf("default style not switched:\n%s", b.String())
	}
	if got := SetStyle(Text); got != Markdown {
		t.Errorf("SetStyle returned %v, want Markdown", got)
	}
	SetStyle(Markdown) // restore for the deferred reset to make sense
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %g", got)
	}
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %g, want 4", got)
	}
	if got := Geomean([]float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("Geomean with zero = %g, want NaN", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("clamped Bar = %q", got)
	}
	if got := Bar(-1, 10, 10); got != "" {
		t.Errorf("negative Bar = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("zero-max Bar = %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formatters broken")
	}
}
