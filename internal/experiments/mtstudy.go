package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MTRow is one benchmark's outcome in the multi-threaded execution study.
type MTRow struct {
	Benchmark string
	Threads   int
	// FIFO and Priority are the default (organizer-batched Jikes) scheme's
	// normalized make-spans under the two queue disciplines, with the given
	// number of execution threads sharing one compilation worker.
	FIFO, Priority float64
	// MaxPending / FirstBehind are the FIFO run's queue-pressure stats.
	MaxPending  int
	FirstBehind int
}

// MTStudy completes the §7 arc: the single-threaded studies found the
// compile queue self-regulates because one blocked executor generates no
// requests. With several execution threads (the common case in the JVMs the
// paper targets), requests keep flowing while any one thread blocks, the
// queue genuinely backs up, and the first-compile-first discipline has
// material to act on.
//
// Each benchmark runs as `threads` per-thread call sequences (thread 0
// carries the warmup) against one compilation worker. Normalization is by
// the busiest thread's execution floor: the maximum over threads of that
// thread's calls at their model-chosen cost-effective levels — the MT
// analogue of the paper's lower bound.
func MTStudy(opts Options, threads int) ([]MTRow, error) {
	if threads == 0 {
		threads = 4
	}
	return perBenchDetail(opts, "multi-threaded execution", fmt.Sprintf("threads=%d", threads),
		func(b dacapo.Benchmark, _ runner.Ctx) (MTRow, error) {
			per, p, err := b.LoadThreads(opts.scale(), threads)
			if err != nil {
				return MTRow{}, err
			}
			model := profile.NewEstimated(p, profile.DefaultEstimatedConfig(int64(len(b.Name))*41+3))
			lb, err := mtLowerBound(per, p, model)
			if err != nil {
				return MTRow{}, err
			}
			row := MTRow{Benchmark: b.Name, Threads: threads}
			for _, d := range []sim.QueueDiscipline{sim.FIFO, sim.FirstCompileFirst} {
				pol, err := policy.NewJikesOrganizer(model, p.NumFuncs(),
					b.SamplePeriod/int64(threads), b.SamplePeriod)
				if err != nil {
					return MTRow{}, err
				}
				res, _, err := sim.RunPolicyMT(per, p, pol,
					sim.Config{CompileWorkers: 1, Discipline: d}, sim.Options{})
				if err != nil {
					return MTRow{}, err
				}
				norm := float64(res.MakeSpan) / lb
				if d == sim.FIFO {
					row.FIFO = norm
					row.MaxPending = res.MaxPending
					row.FirstBehind = res.FirstBehindRecompiles
				} else {
					row.Priority = norm
				}
			}
			return row, nil
		})
}

// mtLowerBound is the busiest-thread execution floor under the model's
// cost-effective levels.
func mtLowerBound(threads []*trace.Trace, p *profile.Profile, model profile.CostModel) (float64, error) {
	// Level choices use global (cross-thread) invocation counts, as a JIT's
	// would.
	merged := &trace.Trace{Name: "union"}
	for _, t := range threads {
		merged.Calls = append(merged.Calls, t.Calls...)
	}
	levels := core.SingleCoreLevels(merged, model)
	var max int64
	for _, t := range threads {
		lb, err := core.LowerBoundAtLevels(t, p, levels)
		if err != nil {
			return 0, err
		}
		if lb > max {
			max = lb
		}
	}
	if max <= 0 {
		return 0, fmt.Errorf("experiments: non-positive MT lower bound")
	}
	return float64(max), nil
}

// RenderMT writes the multi-threaded execution study.
func RenderMT(rows []MTRow, w io.Writer) error {
	t := report.NewTable("Multi-threaded execution study (§7 completed): Jikes scheme, FIFO vs first-compile-first",
		"benchmark", "threads", "FIFO", "first-compile-first", "max queue", "firsts behind recompiles")
	var f, pr []float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, fmt.Sprintf("%d", r.Threads),
			report.F3(r.FIFO), report.F3(r.Priority),
			fmt.Sprintf("%d", r.MaxPending), fmt.Sprintf("%d", r.FirstBehind))
		f = append(f, r.FIFO)
		pr = append(pr, r.Priority)
	}
	t.AddRow("average", "", report.F3(report.Mean(f)), report.F3(report.Mean(pr)), "", "")
	return t.Render(w)
}
