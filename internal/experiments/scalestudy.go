package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// ScaleRow reports the Fig. 5 headline quantities at one trace scale.
type ScaleRow struct {
	// Scale multiplies the benchmarks' default trace lengths.
	Scale float64
	// IAR and Default are suite averages of normalized make-spans.
	IAR, Default float64
}

// ScaleStudy re-runs the Fig. 5 comparison at several trace scales,
// checking that the reproduction's conclusions are not artifacts of the
// scaled-down traces: the default scheme's gap and IAR's near-optimality
// must persist as the sequences grow toward the paper's full lengths.
//
// The scales run in sequence but each Fig5 call fans its benchmarks out on
// opts.Runner; because the scale is part of every job's fingerprint, a
// scale-1 pass reuses (and seeds) the cache of any plain Fig5 run sharing
// the same runner.
func ScaleStudy(opts Options, scales []float64) ([]ScaleRow, error) {
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2, 4}
	}
	rows := make([]ScaleRow, 0, len(scales))
	for _, sc := range scales {
		o := opts
		o.Scale = sc
		res, err := Fig5(o)
		if err != nil {
			return nil, err
		}
		avg := res.Averages()
		rows = append(rows, ScaleRow{
			Scale:   sc,
			IAR:     avg[SchemeIAR],
			Default: avg[SchemeDefault],
		})
	}
	return rows, nil
}

// RenderScale writes the scale-robustness study.
func RenderScale(rows []ScaleRow, w io.Writer) error {
	t := report.NewTable("Scale robustness: Fig. 5 averages as traces grow",
		"scale", "IAR / LB", "default / LB")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%gx", r.Scale), report.F3(r.IAR), report.F3(r.Default))
	}
	return t.Render(w)
}
