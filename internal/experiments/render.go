package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// Render writes a figure experiment as a table of normalized make-spans, one
// row per benchmark plus the cross-benchmark average — the same series the
// paper's bar charts plot.
func (r *FigResult) Render(w io.Writer) error {
	cols := append([]string{"benchmark"}, r.Schemes...)
	t := report.NewTable(r.Name, cols...)
	for _, row := range r.Rows {
		cells := make([]string, 0, len(cols))
		cells = append(cells, row.Benchmark)
		for _, s := range r.Schemes {
			cells = append(cells, report.F2(row.Schemes[s].Normalized))
		}
		t.AddRow(cells...)
	}
	avg := r.Averages()
	cells := []string{"average"}
	for _, s := range r.Schemes {
		cells = append(cells, report.F2(avg[s]))
	}
	t.AddRow(cells...)
	return t.Render(w)
}

// Render writes the Figure 7 experiment: per-benchmark speedups by
// compile-worker count, plus averages.
func (r *Fig7Result) Render(w io.Writer) error {
	cols := []string{"benchmark"}
	for _, wk := range r.Workers {
		cols = append(cols, fmt.Sprintf("%d cores", wk))
	}
	t := report.NewTable("Figure 7: speedup of concurrent JIT under the IAR schedule", cols...)
	for _, row := range r.Rows {
		cells := []string{row.Benchmark}
		for _, wk := range r.Workers {
			cells = append(cells, report.F3(row.SpeedupByWorkers[wk]))
		}
		t.AddRow(cells...)
	}
	avg := r.Averages()
	cells := []string{"average"}
	for _, wk := range r.Workers {
		cells = append(cells, report.F3(avg[wk]))
	}
	t.AddRow(cells...)
	return t.Render(w)
}

// RenderTable1 writes the benchmark-characteristics table: the paper's
// numbers and the generated traces' actual shapes side by side.
func RenderTable1(rows []Table1Row, w io.Writer) error {
	t := report.NewTable("Table 1: benchmarks (paper values + generated-trace shape)",
		"program", "parallelism", "#functions", "call seq (paper)", "time (paper, s)",
		"gen length", "gen #funcs", "gen top-10 %", "sim default (ms)")
	for _, r := range rows {
		par := "seq"
		if r.Parallel {
			par = "parallel"
		}
		t.AddRow(r.Benchmark, par,
			fmt.Sprintf("%d", r.Funcs),
			fmt.Sprintf("%d", r.FullLength),
			fmt.Sprintf("%.1f", r.DefaultSeconds),
			fmt.Sprintf("%d", r.GenLength),
			fmt.Sprintf("%d", r.GenUnique),
			fmt.Sprintf("%.1f", r.GenTop10Pct),
			fmt.Sprintf("%.1f", r.SimDefaultMs),
		)
	}
	return t.Render(w)
}

// RenderTable2 writes the IAR-overhead table.
func RenderTable2(rows []Table2Row, w io.Writer) error {
	t := report.NewTable("Table 2: IAR algorithm time",
		"program", "IAR time (s)", "program time (s)", "overhead (%)")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.4f", r.IARSeconds),
			fmt.Sprintf("%.3f", r.ProgramSeconds),
			fmt.Sprintf("%.2f", r.Percent),
		)
	}
	return t.Render(w)
}

// RenderAStar writes the §6.2.5 feasibility study (A* plus the IDA*
// extension).
func RenderAStar(rows []AStarRow, w io.Writer) error {
	t := report.NewTable("Search feasibility (§6.2.5): A* (memory-bound), IDA* (time-bound), beam (approximate)",
		"algorithm", "unique funcs", "calls", "outcome", "nodes expanded", "stored/depth", "tree paths", "make-span")
	for _, r := range rows {
		outcome, span := aStarOutcome(r)
		algo := r.Algo
		if algo == "" {
			algo = "A*"
		}
		t.AddRow(
			algo,
			fmt.Sprintf("%d", r.UniqueFuncs),
			fmt.Sprintf("%d", r.Calls),
			outcome,
			fmt.Sprintf("%d", r.NodesExpanded),
			fmt.Sprintf("%d", r.NodesAllocated),
			fmt.Sprintf("%.3g", r.PathsTotal),
			span,
		)
	}
	return t.Render(w)
}

// aStarOutcome classifies a feasibility row for rendering.
func aStarOutcome(r AStarRow) (outcome, span string) {
	outcome, span = "optimal found", fmt.Sprintf("%d", r.MakeSpan)
	if !r.Completed {
		switch {
		case r.MakeSpan > 0:
			outcome = "approximate"
		case r.Algo == "IDA*":
			outcome, span = "out of time", "-"
		default:
			outcome, span = "out of memory", "-"
		}
	}
	return outcome, span
}

// RenderSearchFrontier writes the extended feasibility table: the classic
// searches next to branch-and-bound, with BnB's duplicate-state and bound
// pruning counters — the evidence for where (and why) the new memory wall
// sits.
func RenderSearchFrontier(rows []AStarRow, w io.Writer) error {
	t := report.NewTable("Search feasibility frontier: classic searches vs transposition-table branch-and-bound",
		"algorithm", "unique funcs", "calls", "outcome", "nodes expanded", "stored/depth",
		"table hits", "bound pruned", "tree paths", "make-span")
	for _, r := range rows {
		outcome, span := aStarOutcome(r)
		hits, pruned := "-", "-"
		if r.Algo == "bnb" || r.Algo == "exact" {
			hits = fmt.Sprintf("%d", r.TableHits)
			pruned = fmt.Sprintf("%d", r.BoundPruned)
		}
		t.AddRow(
			r.Algo,
			fmt.Sprintf("%d", r.UniqueFuncs),
			fmt.Sprintf("%d", r.Calls),
			outcome,
			fmt.Sprintf("%d", r.NodesExpanded),
			fmt.Sprintf("%d", r.NodesAllocated),
			hits,
			pruned,
			fmt.Sprintf("%.3g", r.PathsTotal),
			span,
		)
	}
	return t.Render(w)
}
