package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the *shape* of the paper's results — who wins,
// by roughly what factor — not absolute numbers (DESIGN.md §4).

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows, want 9 benchmarks", len(res.Rows))
	}
	avg := res.Averages()

	if avg[SchemeLowerBound] != 1.0 {
		t.Errorf("lower bound normalizes to %.3f, want 1.0", avg[SchemeLowerBound])
	}
	// IAR is near-optimal: the paper reports 8.5% average, <=17% per
	// benchmark.
	if avg[SchemeIAR] > 1.17 {
		t.Errorf("IAR average %.3f; paper reports within 8.5%% of bound", avg[SchemeIAR])
	}
	for _, row := range res.Rows {
		if row.Schemes[SchemeIAR].Normalized > 1.20 {
			t.Errorf("%s: IAR at %.3f, beyond the paper's worst-case 17%%",
				row.Benchmark, row.Schemes[SchemeIAR].Normalized)
		}
	}
	// The default scheme leaves a large gap: the paper's headline is a ~1.6x
	// possible speedup, i.e. default around 1.5-2x the bound.
	if avg[SchemeDefault] < 1.35 {
		t.Errorf("default scheme average %.3f; too close to optimal for the paper's conclusion", avg[SchemeDefault])
	}
	if avg[SchemeDefault] > 2.3 {
		t.Errorf("default scheme average %.3f; far beyond the paper's ~1.7", avg[SchemeDefault])
	}
	// Single-level schemes are worse than the default on most programs.
	worseBase, worseOpt := 0, 0
	for _, row := range res.Rows {
		if row.Schemes[SchemeBaseOnly].Normalized > row.Schemes[SchemeDefault].Normalized {
			worseBase++
		}
		if row.Schemes[SchemeOptOnly].Normalized > row.Schemes[SchemeDefault].Normalized {
			worseOpt++
		}
	}
	if worseBase < 5 || worseOpt < 5 {
		t.Errorf("single-level schemes beat default too often (base worse on %d, opt worse on %d of 9)",
			worseBase, worseOpt)
	}
	// And IAR beats every other scheme on every benchmark.
	for _, row := range res.Rows {
		iar := row.Schemes[SchemeIAR].Normalized
		for _, s := range []string{SchemeDefault, SchemeBaseOnly, SchemeOptOnly} {
			if row.Schemes[s].Normalized < iar {
				t.Errorf("%s: %s (%.3f) beat IAR (%.3f)", row.Benchmark, s, row.Schemes[s].Normalized, iar)
			}
		}
	}
}

func TestFig6OracleWidensGap(t *testing.T) {
	f5, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a5, a6 := f5.Averages(), f6.Averages()
	// §6.2.2: with the oracle model the default's gap grows while IAR stays
	// tight (within ~6% more on average).
	gap5 := a5[SchemeDefault] - 1
	gap6 := a6[SchemeDefault] - 1
	if gap6 <= gap5 {
		t.Errorf("oracle model should widen default's gap: %.3f -> %.3f", gap5, gap6)
	}
	if a6[SchemeIAR] > a5[SchemeIAR]+0.06 {
		t.Errorf("IAR gap grew too much under oracle model: %.3f -> %.3f", a5[SchemeIAR], a6[SchemeIAR])
	}
	if a6[SchemeIAR] > 1.17 {
		t.Errorf("IAR under oracle model at %.3f; should remain near-optimal", a6[SchemeIAR])
	}
}

func TestFig7ConcurrencyMarginal(t *testing.T) {
	res, err := Fig7(Options{})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Averages()
	if avg[1] != 1.0 {
		t.Errorf("1-core speedup %.3f, want 1.0", avg[1])
	}
	// §6.2.3: speedups increase with cores but stay minor — the paper
	// reports <=7% average, 13% max.
	for _, w := range []int{2, 4, 8, 16} {
		if avg[w] < 1.0 {
			t.Errorf("%d cores: average slowdown %.3f", w, avg[w])
		}
		if avg[w] > 1.10 {
			t.Errorf("%d cores: average speedup %.3f; too large for the paper's conclusion", w, avg[w])
		}
	}
	if avg[16] < avg[2]-1e-9 {
		t.Errorf("speedup not monotone: 2 cores %.3f, 16 cores %.3f", avg[2], avg[16])
	}
	for _, row := range res.Rows {
		if row.SpeedupByWorkers[16] > 1.15 {
			t.Errorf("%s: 16-core speedup %.3f exceeds the paper's 13%% max regime",
				row.Benchmark, row.SpeedupByWorkers[16])
		}
	}
}

func TestFig8V8Shape(t *testing.T) {
	res, err := Fig8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Averages()
	// §6.2.4: IAR stays near the two-level bound (4% in the paper); the V8
	// scheme leaves a clear gap (61% in the paper) but a smaller one than
	// Jikes showed against its four-level bound.
	if avg[SchemeIAR] > 1.10 {
		t.Errorf("IAR average %.3f on two levels; paper reports ~1.04", avg[SchemeIAR])
	}
	if avg[SchemeV8] < 1.15 || avg[SchemeV8] > 2.2 {
		t.Errorf("V8 average %.3f; paper reports ~1.61", avg[SchemeV8])
	}
	for _, row := range res.Rows {
		if row.Schemes[SchemeV8].Normalized < row.Schemes[SchemeIAR].Normalized {
			t.Errorf("%s: V8 beat IAR", row.Benchmark)
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(Options{Benchmarks: []string{"antlr", "lusearch"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Benchmark != "antlr" || rows[0].Funcs != 1187 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if !rows[1].Parallel {
		t.Error("lusearch should be parallel")
	}
	if rows[0].GenLength == 0 || rows[0].SimDefaultMs <= 0 {
		t.Errorf("generated stats missing: %+v", rows[0])
	}
}

func TestTable2Overhead(t *testing.T) {
	rows, err := Table2(Options{Benchmarks: []string{"antlr", "pmd"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IARSeconds <= 0 || r.ProgramSeconds <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Benchmark, r)
		}
		// The paper reports <=3.4%, mostly <1%. Allow slack for slow CI
		// machines but the linear algorithm must stay cheap.
		if r.Percent > 5 {
			t.Errorf("%s: IAR overhead %.2f%%; expected ~1%%", r.Benchmark, r.Percent)
		}
	}
}

func TestAStarStudyCliff(t *testing.T) {
	rows, err := AStarStudy(AStarOptions{MinFuncs: 3, MaxFuncs: 8, Calls: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // A*, IDA*, and beam per function count
		t.Fatalf("%d rows, want 18", len(rows))
	}
	var lastAStarStored int
	for _, r := range rows {
		switch r.Algo {
		case "A*":
			// §6.2.5: optimal for small instances, out of memory past ~6
			// unique functions.
			if r.UniqueFuncs <= 6 && !r.Completed {
				t.Errorf("A* at %d functions: should complete", r.UniqueFuncs)
			}
			if r.UniqueFuncs >= 7 && r.Completed {
				t.Errorf("A* at %d functions: should exhaust memory", r.UniqueFuncs)
			}
			if r.Completed {
				if r.NodesAllocated < lastAStarStored {
					t.Errorf("A* stored nodes shrank at %d functions", r.UniqueFuncs)
				}
				lastAStarStored = r.NodesAllocated
			}
		case "IDA*":
			// The extension: memory stays at the path depth (tiny) whether
			// or not the search finishes; big instances die on time instead.
			if r.NodesAllocated > 2*r.UniqueFuncs {
				t.Errorf("IDA* at %d functions: stored %d nodes, want <= path depth",
					r.UniqueFuncs, r.NodesAllocated)
			}
			if r.UniqueFuncs >= 8 && r.Completed {
				t.Errorf("IDA* at %d functions: should exhaust time", r.UniqueFuncs)
			}
			if r.UniqueFuncs <= 6 && !r.Completed {
				t.Errorf("IDA* at %d functions: should complete", r.UniqueFuncs)
			}
		case "beam-256":
			// Beam returns a schedule at every size, never a proof.
			if r.Completed {
				t.Errorf("beam at %d functions claims proved optimality", r.UniqueFuncs)
			}
			if r.MakeSpan <= 0 {
				t.Errorf("beam at %d functions returned no schedule", r.UniqueFuncs)
			}
		default:
			t.Fatalf("unknown algorithm %q", r.Algo)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Fig5(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if _, err := AStarStudy(AStarOptions{MinFuncs: 5, MaxFuncs: 2}); err == nil {
		t.Error("want error for inverted function range")
	}
}

func TestRenderers(t *testing.T) {
	opts := Options{Benchmarks: []string{"luindex"}}
	f5, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f5.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "luindex") || !strings.Contains(b.String(), "average") {
		t.Errorf("figure render missing rows:\n%s", b.String())
	}

	f7, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f7.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "16 cores") {
		t.Errorf("fig7 render missing worker columns:\n%s", b.String())
	}

	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := RenderTable1(t1, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "20582610") {
		t.Errorf("table1 render missing paper length:\n%s", b.String())
	}

	rows, err := AStarStudy(AStarOptions{MinFuncs: 3, MaxFuncs: 4})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := RenderAStar(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "optimal found") {
		t.Errorf("astar render missing outcomes:\n%s", b.String())
	}
}
