package experiments

import (
	"strings"
	"testing"
)

func TestInterpreterStudyShape(t *testing.T) {
	rows, err := InterpreterStudy(Options{Benchmarks: []string{"luindex", "pmd"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Adding an interpreter tier hurts the naive IAR configuration
		// (level 0 is now too slow to be the right initial version)...
		if r.InterpIAR <= r.CompiledIAR {
			t.Errorf("%s: interpreter tier should cost naive IAR something: %.3f vs %.3f",
				r.Benchmark, r.InterpIAR, r.CompiledIAR)
		}
		// ...and §8's "extra care" (baseline-compiled initial schedule)
		// recovers most of it.
		if r.BaseIAR >= r.InterpIAR {
			t.Errorf("%s: baseline-init should beat interpreter-init: %.3f vs %.3f",
				r.Benchmark, r.BaseIAR, r.InterpIAR)
		}
		if r.BaseIAR > r.CompiledIAR*1.15 {
			t.Errorf("%s: baseline-init IAR %.3f too far above the compiled-only setting %.3f",
				r.Benchmark, r.BaseIAR, r.CompiledIAR)
		}
		// The default scheme suffers much more: functions stay interpreted
		// until sampled hot.
		if r.DefaultInterp <= r.DefaultCompiled {
			t.Errorf("%s: interpreter tier should hurt the default scheme: %.3f vs %.3f",
				r.Benchmark, r.DefaultInterp, r.DefaultCompiled)
		}
	}
	var b strings.Builder
	if err := RenderInterp(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "base-init") {
		t.Errorf("render missing base-init column:\n%s", b.String())
	}
}

func TestInlineStudyShape(t *testing.T) {
	rows, err := InlineStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	orig, inl := rows[0], rows[1]
	if inl.Calls >= orig.Calls {
		t.Errorf("inlining should shorten the trace: %d -> %d", orig.Calls, inl.Calls)
	}
	// Scheduling keeps working on the transformed program: IAR stays near
	// its bound in both settings.
	for _, r := range rows {
		if r.IAR > 1.25 {
			t.Errorf("%s: IAR at %.3f; pipeline mis-shapen", r.Label, r.IAR)
		}
		if r.Default <= r.IAR {
			t.Errorf("%s: default (%.3f) should trail IAR (%.3f)", r.Label, r.Default, r.IAR)
		}
	}
	var b strings.Builder
	if err := RenderInline(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inlined top 8 leaves") {
		t.Errorf("render missing labels:\n%s", b.String())
	}
}
