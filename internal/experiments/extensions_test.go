package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestPriorityStudySelfRegulation(t *testing.T) {
	rows, err := PriorityStudy(Options{Benchmarks: []string{"antlr", "jython", "luindex"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// At trace-driven loads the discipline's effect is modest and can
		// go either way: jumping the queue avoids blocking but delays hot
		// recompilations. The study's point is the magnitude, not the sign.
		lo, hi := r.FIFO*0.93, r.FIFO*1.07
		if r.Priority < lo || r.Priority > hi {
			t.Errorf("%s: priority effect out of the expected modest range: %.3f vs FIFO %.3f",
				r.Benchmark, r.Priority, r.FIFO)
		}
	}
	var b strings.Builder
	if err := RenderPriority("test", rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max queue") {
		t.Errorf("render missing pressure columns:\n%s", b.String())
	}
}

func TestSaturationStudyShowsOvertakes(t *testing.T) {
	rows, err := SaturationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sawPressure := false
	bubblesShrank := false
	for _, r := range rows {
		if r.MaxPending >= 2 && r.FirstBehind >= 1 {
			sawPressure = true
		}
		if r.PriorityBubble < r.FIFOBubble {
			bubblesShrank = true
		}
		// The reproduction's finding: even under engineered pressure, the
		// make-span effect stays small with one execution thread.
		if diff := r.Priority/r.FIFO - 1; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: make-span effect unexpectedly large: %.3f vs %.3f", r.Benchmark, r.Priority, r.FIFO)
		}
	}
	if !sawPressure {
		t.Error("saturation workload produced no queue pressure (MaxPending/FirstBehind)")
	}
	if !bubblesShrank {
		t.Error("priority discipline never reduced stall time under saturation")
	}
}

func TestVariationStudyRobust(t *testing.T) {
	rows, err := VariationStudy(Options{Benchmarks: []string{"antlr", "lusearch"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		base := r.ByMagnitude[0]
		for _, m := range VariationMagnitudes {
			v := r.ByMagnitude[m]
			if v <= 0 {
				t.Fatalf("%s: missing magnitude %g", r.Benchmark, m)
			}
			// §8's claim: average-based schedules hold up under per-call
			// variation. Allow a few percent of degradation.
			if v > base*1.05 {
				t.Errorf("%s: ±%.0f%% variation degraded IAR from %.3f to %.3f",
					r.Benchmark, m*100, base, v)
			}
		}
	}
	var b strings.Builder
	if err := RenderVariation(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "±60%") {
		t.Errorf("render missing magnitude columns:\n%s", b.String())
	}
}

func TestKSweepInsensitive(t *testing.T) {
	ks := []int64{3, 5, 10}
	rows, err := KSweep(Options{Benchmarks: []string{"fop", "pmd"}}, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		lo, hi := r.ByValue[ks[0]], r.ByValue[ks[0]]
		for _, k := range ks {
			v := r.ByValue[k]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// The paper: K in [3,10] gives quite similar results.
		if hi > lo*1.05 {
			t.Errorf("%s: K sweep spread too wide: [%.3f, %.3f]", r.Benchmark, lo, hi)
		}
	}
}

func TestPeriodSweepMonotoneTrend(t *testing.T) {
	periods := []int64{50000, 500000, 5000000}
	rows, err := PeriodSweep(Options{Benchmarks: []string{"jython"}}, periods)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !(r.ByValue[periods[0]] < r.ByValue[periods[2]]) {
		t.Errorf("coarser sampling should eventually cost: %v", r.ByValue)
	}
	var b strings.Builder
	format := func(v int64) string { return "S=" + strconv.FormatInt(v, 10) }
	if err := RenderSweep("periods", periods, format, rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "jython") {
		t.Errorf("render missing benchmark:\n%s", b.String())
	}
}

func TestScaleStudyStable(t *testing.T) {
	rows, err := ScaleStudy(Options{Benchmarks: []string{"luindex", "antlr"}}, []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		// The conclusions must hold at every scale: IAR near the bound, the
		// default scheme well above it.
		if r.IAR > 1.12 {
			t.Errorf("scale %g: IAR %.3f too far from the bound", r.Scale, r.IAR)
		}
		if r.Default < 1.25 {
			t.Errorf("scale %g: default %.3f too close to the bound", r.Scale, r.Default)
		}
		if r.Default < r.IAR {
			t.Errorf("scale %g: default beat IAR", r.Scale)
		}
	}
	var b strings.Builder
	if err := RenderScale(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.5x") {
		t.Errorf("render missing scales:\n%s", b.String())
	}
}

func TestPredictStudyShape(t *testing.T) {
	rows, err := PredictStudy(Options{Benchmarks: []string{"antlr", "luindex"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		best := r.ByTrainRuns[TrainRunCounts[len(TrainRunCounts)-1]]
		// Predicted-IAR must recover most of the gap: clearly better than
		// the online default, within ~10% of perfect-trace IAR.
		if best >= r.Default {
			t.Errorf("%s: predicted IAR (%.3f) no better than default (%.3f)", r.Benchmark, best, r.Default)
		}
		if best > r.PerfectIAR*1.10 {
			t.Errorf("%s: predicted IAR (%.3f) too far from perfect (%.3f)", r.Benchmark, best, r.PerfectIAR)
		}
		if r.Accuracy.Coverage < 0.9 {
			t.Errorf("%s: prediction coverage %.2f too low", r.Benchmark, r.Accuracy.Coverage)
		}
	}
	var b strings.Builder
	if err := RenderPredict(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "IAR@5 runs") {
		t.Errorf("render missing train-run columns:\n%s", b.String())
	}
}

func TestMTStudyCompletesPriorityArc(t *testing.T) {
	rows, err := MTStudy(Options{Benchmarks: []string{"jython", "eclipse", "luindex"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	helped := 0
	for _, r := range rows {
		// Multiple execution threads create real queue pressure...
		if r.MaxPending < 3 {
			t.Errorf("%s: max queue %d; expected pressure with 4 threads", r.Benchmark, r.MaxPending)
		}
		if r.FirstBehind < 3 {
			t.Errorf("%s: only %d firsts behind recompiles", r.Benchmark, r.FirstBehind)
		}
		if r.Priority < r.FIFO {
			helped++
		}
		// ...and the discipline never hurts much.
		if r.Priority > r.FIFO*1.05 {
			t.Errorf("%s: priority hurt badly: %.3f vs %.3f", r.Benchmark, r.Priority, r.FIFO)
		}
	}
	if helped < 2 {
		t.Errorf("priority helped on only %d of 3 multi-threaded benchmarks", helped)
	}
	var b strings.Builder
	if err := RenderMT(rows, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "threads") {
		t.Errorf("render missing columns:\n%s", b.String())
	}
}
