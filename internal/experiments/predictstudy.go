package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// PredictRow is one benchmark's outcome in the cross-run prediction study:
// IAR driven by a call sequence *predicted from other runs*, evaluated on an
// unseen run, against the idealized (perfect-trace) IAR and the default
// online scheme.
type PredictRow struct {
	Benchmark string
	// ByTrainRuns maps the number of training runs to the normalized
	// make-span of predicted-IAR on the held-out run.
	ByTrainRuns map[int]float64
	// PerfectIAR is IAR with the held-out run's exact trace (the Fig. 5
	// setting); Default is the online Jikes scheme on the held-out run.
	PerfectIAR float64
	Default    float64
	// Accuracy reports the prediction quality at the largest training-run
	// count.
	Accuracy predict.Accuracy
}

// TrainRunCounts are the training-set sizes the study sweeps.
var TrainRunCounts = []int{1, 3, 5}

// PredictStudy implements the §8 deployment path end to end: record call
// sequences from past runs, predict the next run's sequence, compute an IAR
// schedule from the prediction, install it via the Planned policy (with
// on-demand fallback for mispredicted functions), and measure the held-out
// run. The question is how much of IAR's benefit survives imperfect
// knowledge of the future.
func PredictStudy(opts Options) ([]PredictRow, error) {
	maxTrain := 0
	for _, k := range TrainRunCounts {
		if k > maxTrain {
			maxTrain = k
		}
	}
	return perBench(opts, "cross-run prediction", func(b dacapo.Benchmark, _ runner.Ctx) (PredictRow, error) {
		// The held-out evaluation run is run 0 (the default workload);
		// training runs are 1..maxTrain.
		actual, err := b.Load(opts.scale())
		if err != nil {
			return PredictRow{}, err
		}
		model := actual.DefaultModel()
		lb := float64(core.ModelLowerBound(actual.Trace, actual.Profile, model))
		cfg := sim.DefaultConfig()

		row := PredictRow{Benchmark: b.Name, ByTrainRuns: make(map[int]float64, len(TrainRunCounts))}

		perfectSched, err := core.IAR(actual.Trace, actual.Profile, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return PredictRow{}, err
		}
		perfectRes, err := sim.Run(actual.Trace, actual.Profile, perfectSched, cfg, sim.Options{})
		if err != nil {
			return PredictRow{}, err
		}
		row.PerfectIAR = float64(perfectRes.MakeSpan) / lb

		jikes, err := policy.NewJikes(model, actual.Profile.NumFuncs(), b.SamplePeriod)
		if err != nil {
			return PredictRow{}, err
		}
		defRes, err := sim.RunPolicy(actual.Trace, actual.Profile, jikes, cfg, sim.Options{})
		if err != nil {
			return PredictRow{}, err
		}
		row.Default = float64(defRes.MakeSpan) / lb

		repo := predict.NewRepository()
		// One arena serves every predicted-trace replan: each schedule is
		// replayed before the next train-run count recycles it.
		arena := core.NewIARArena()
		for k := 1; k <= maxTrain; k++ {
			train, err := b.LoadRun(opts.scale(), k)
			if err != nil {
				return PredictRow{}, err
			}
			repo.Add(train.Trace)
			if !containsInt(TrainRunCounts, k) {
				continue
			}
			predicted, err := repo.Predict()
			if err != nil {
				return PredictRow{}, err
			}
			sched, err := arena.IAR(predicted, actual.Profile, core.IAROptions{Model: model, K: opts.IARK})
			if err != nil {
				return PredictRow{}, err
			}
			res, err := sim.RunPolicy(actual.Trace, actual.Profile, policy.NewPlanned(sched), cfg, sim.Options{})
			if err != nil {
				return PredictRow{}, err
			}
			row.ByTrainRuns[k] = float64(res.MakeSpan) / lb
			if k == maxTrain {
				row.Accuracy = predict.Evaluate(predicted, actual.Trace)
			}
		}
		return row, nil
	})
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// RenderPredict writes the cross-run prediction study.
func RenderPredict(rows []PredictRow, w io.Writer) error {
	cols := []string{"benchmark"}
	for _, k := range TrainRunCounts {
		cols = append(cols, fmt.Sprintf("IAR@%d runs", k))
	}
	cols = append(cols, "IAR (perfect)", "default", "coverage", "order agr.")
	t := report.NewTable("Cross-run prediction study (§8): predicted-trace IAR on an unseen run", cols...)
	sums := make([]float64, len(TrainRunCounts))
	var perfSum, defSum float64
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for i, k := range TrainRunCounts {
			cells = append(cells, report.F3(r.ByTrainRuns[k]))
			sums[i] += r.ByTrainRuns[k]
		}
		cells = append(cells, report.F3(r.PerfectIAR), report.F3(r.Default),
			fmt.Sprintf("%.0f%%", r.Accuracy.Coverage*100),
			fmt.Sprintf("%.0f%%", r.Accuracy.FirstOrderAgreement*100))
		t.AddRow(cells...)
		perfSum += r.PerfectIAR
		defSum += r.Default
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		cells := []string{"average"}
		for i := range TrainRunCounts {
			cells = append(cells, report.F3(sums[i]/n))
		}
		cells = append(cells, report.F3(perfSum/n), report.F3(defSum/n), "", "")
		t.AddRow(cells...)
	}
	return t.Render(w)
}
