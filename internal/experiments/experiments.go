// Package experiments contains one harness per table and figure of the
// paper's evaluation (§6). Each harness returns a structured result and can
// render the same rows/series the paper reports. The workloads come from
// internal/dacapo; the schemes from internal/core and internal/policy; the
// make-spans from internal/sim.
//
// Normalization follows §6.2.1: make-spans are divided by the lower bound —
// the sum of each call's execution time at the deepest level the experiment's
// cost-benefit model would ever build for its function (so the lower-bound
// bar is 1.0 by construction, and an oracle model lowers the bound as §6.2.2
// describes).
//
// # Parallel evaluation
//
// Every harness submits its per-benchmark work as jobs to an internal/runner
// pool (Options.Runner, or the process-wide runner.Shared() by default).
// Results are collected by submission index and each job is a pure function
// of its inputs, so the output — including row order — is byte-identical to a
// serial run; internal/runner's differential tests hold the package to that.
//
// # Golden files
//
// The package's golden tests compare rendered tables against
// testdata/*.txt. Never hand-edit those files; regenerate them with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff like any other code change.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies each benchmark's default trace length (1.0 if zero).
	Scale float64
	// Benchmarks restricts the run to the named benchmarks (all if empty).
	Benchmarks []string
	// IARK overrides the IAR K constant (5 if zero).
	IARK int64
	// Runner receives the harness's simulation jobs (runner.Shared() if
	// nil). Handing several harnesses one Runner shares its result cache
	// across them.
	Runner *runner.Runner
}

func (o Options) runner() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return runner.Shared()
}

// jobKey builds the runner key for one benchmark's slice of an experiment.
// Scale and the IAR K constant are part of the fingerprint because both
// change every simulated number; extra carries any further
// harness-specific parameters (thread counts, sweep values).
func (o Options) jobKey(experiment, benchmark, extra string) runner.Key {
	detail := fmt.Sprintf("K=%d", o.IARK)
	if extra != "" {
		detail += " " + extra
	}
	return runner.Key{
		Experiment: experiment,
		Benchmark:  benchmark,
		Scale:      o.scale(),
		Detail:     detail,
	}
}

// perBench fans fn out over the selected benchmarks — one runner job per
// benchmark — and returns the per-benchmark results in suite order.
func perBench[T any](opts Options, experiment string, fn func(b dacapo.Benchmark, ctx runner.Ctx) (T, error)) ([]T, error) {
	return perBenchDetail(opts, experiment, "", fn)
}

// perBenchDetail is perBench with extra key detail folded into every job's
// fingerprint.
func perBenchDetail[T any](opts Options, experiment, extra string, fn func(b dacapo.Benchmark, ctx runner.Ctx) (T, error)) ([]T, error) {
	bs, err := opts.benchmarks()
	if err != nil {
		return nil, err
	}
	jobs := make([]runner.Job[T], len(bs))
	for i, b := range bs {
		b := b
		jobs[i] = runner.Job[T]{
			Key: opts.jobKey(experiment, b.Name, extra),
			Fn:  func(ctx runner.Ctx) (T, error) { return fn(b, ctx) },
		}
	}
	return runner.Map(opts.runner(), jobs)
}

func (o Options) scale() float64 {
	if o.Scale == 0 {
		return 1
	}
	return o.Scale
}

func (o Options) benchmarks() ([]dacapo.Benchmark, error) {
	if len(o.Benchmarks) == 0 {
		return dacapo.Suite(), nil
	}
	var bs []dacapo.Benchmark
	for _, name := range o.Benchmarks {
		b, err := dacapo.ByName(name)
		if err != nil {
			return nil, err
		}
		bs = append(bs, b)
	}
	return bs, nil
}

// SchemeResult is one scheme's outcome on one benchmark.
type SchemeResult struct {
	// MakeSpan is in ticks; Normalized divides it by the run's lower bound.
	MakeSpan   int64
	Normalized float64
	// Bubble is the normalized total execution-stall time, available for
	// schemes simulated with detail.
	Bubble float64
}

// BenchResult collects every scheme's outcome on one benchmark.
type BenchResult struct {
	Benchmark  string
	LowerBound int64 // ticks; the normalization denominator
	Schemes    map[string]SchemeResult
}

// Scheme names used across the figure experiments, in the paper's legend
// order.
const (
	SchemeLowerBound = "lower-bound"
	SchemeIAR        = "IAR algorithm"
	SchemeDefault    = "default"
	SchemeBaseOnly   = "base-level only"
	SchemeOptOnly    = "optimizing-level only"
	SchemeV8         = "V8 scheme"
)

// FigResult is the outcome of a Fig. 5 / 6 / 8 style experiment: a set of
// schemes' normalized make-spans per benchmark.
type FigResult struct {
	Name    string
	Schemes []string // column order
	Rows    []BenchResult
}

// Averages returns the arithmetic mean of each scheme's normalized
// make-span across benchmarks, keyed by scheme.
func (r *FigResult) Averages() map[string]float64 {
	avg := make(map[string]float64, len(r.Schemes))
	for _, s := range r.Schemes {
		var sum float64
		n := 0
		for _, row := range r.Rows {
			if sr, ok := row.Schemes[s]; ok {
				sum += sr.Normalized
				n++
			}
		}
		if n > 0 {
			avg[s] = sum / float64(n)
		}
	}
	return avg
}

// runSchemes evaluates the standard scheme set on one workload under the
// given cost-benefit model: lower bound, IAR, the default Jikes scheme, and
// the two single-level approximations.
// One sim.Evaluator per job serves every static-schedule simulation of the
// row, so the per-run arenas are allocated once; each Result is reduced to
// scalars (norm) before the next scheme reuses them. Policy-driven schemes
// still go through sim.RunPolicy.
func runSchemes(w *dacapo.Workload, model profile.CostModel, iarK int64) (BenchResult, error) {
	tr, p := w.Trace, w.Profile
	cfg := sim.DefaultConfig()
	row := BenchResult{Benchmark: w.Bench.Name, Schemes: make(map[string]SchemeResult, 5)}
	row.LowerBound = core.ModelLowerBound(tr, p, model)
	if row.LowerBound <= 0 {
		return row, fmt.Errorf("experiments: %s: non-positive lower bound", w.Bench.Name)
	}
	eval, err := sim.NewEvaluator(tr, p)
	if err != nil {
		return row, err
	}
	norm := func(span, bubble int64) SchemeResult {
		return SchemeResult{
			MakeSpan:   span,
			Normalized: float64(span) / float64(row.LowerBound),
			Bubble:     float64(bubble) / float64(row.LowerBound),
		}
	}
	row.Schemes[SchemeLowerBound] = norm(row.LowerBound, 0)

	iarSched, err := core.IAR(tr, p, core.IAROptions{Model: model, K: iarK})
	if err != nil {
		return row, fmt.Errorf("experiments: %s: IAR: %w", w.Bench.Name, err)
	}
	iarRes, err := eval.Run(iarSched, cfg, sim.Options{})
	if err != nil {
		return row, err
	}
	row.Schemes[SchemeIAR] = norm(iarRes.MakeSpan, iarRes.TotalBubble)

	jikes, err := policy.NewJikes(model, p.NumFuncs(), w.Bench.SamplePeriod)
	if err != nil {
		return row, err
	}
	defRes, err := sim.RunPolicy(tr, p, jikes, cfg, sim.Options{})
	if err != nil {
		return row, err
	}
	row.Schemes[SchemeDefault] = norm(defRes.MakeSpan, defRes.TotalBubble)

	baseRes, err := eval.Run(core.SingleLevelBase(tr), cfg, sim.Options{})
	if err != nil {
		return row, err
	}
	row.Schemes[SchemeBaseOnly] = norm(baseRes.MakeSpan, baseRes.TotalBubble)

	optRes, err := eval.Run(core.SingleLevelOptimizing(tr, model), cfg, sim.Options{})
	if err != nil {
		return row, err
	}
	row.Schemes[SchemeOptOnly] = norm(optRes.MakeSpan, optRes.TotalBubble)
	return row, nil
}

// Fig5 reproduces Figure 5: normalized make-spans of the default Jikes RVM
// scheduling scheme, the IAR schedule, and the single-level approximations,
// all under the default (estimated) cost-benefit model.
func Fig5(opts Options) (*FigResult, error) {
	return figureStudy("Figure 5: normalized make-span, default cost-benefit model", opts,
		func(w *dacapo.Workload) profile.CostModel { return w.DefaultModel() })
}

// Fig6 reproduces Figure 6: the same comparison with an oracle cost-benefit
// model. Better level choices lower the bound, widening the default
// scheme's gap while IAR stays tight.
func Fig6(opts Options) (*FigResult, error) {
	return figureStudy("Figure 6: normalized make-span, oracle cost-benefit model", opts,
		func(w *dacapo.Workload) profile.CostModel { return w.Oracle() })
}

func figureStudy(name string, opts Options, modelOf func(*dacapo.Workload) profile.CostModel) (*FigResult, error) {
	rows, err := perBench(opts, name, func(b dacapo.Benchmark, _ runner.Ctx) (BenchResult, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return BenchResult{}, err
		}
		return runSchemes(w, modelOf(w), opts.IARK)
	})
	if err != nil {
		return nil, err
	}
	return &FigResult{
		Name:    name,
		Schemes: []string{SchemeLowerBound, SchemeIAR, SchemeDefault, SchemeBaseOnly, SchemeOptOnly},
		Rows:    rows,
	}, nil
}

// Fig8 reproduces Figure 8: the V8 scheduling scheme applied to the Java
// call sequences, with the profile restricted to the lowest two levels
// (V8's low/high pair), compared against IAR, the bounds, and the
// single-level schemes on the same two-level profile.
func Fig8(opts Options) (*FigResult, error) {
	const name = "Figure 8: normalized make-span vs the V8 scheduling scheme (two levels)"
	rows, err := perBench(opts, name, func(b dacapo.Benchmark, _ runner.Ctx) (BenchResult, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return BenchResult{}, err
		}
		p2, err := w.Profile.Restrict(0, 1)
		if err != nil {
			return BenchResult{}, err
		}
		tr := w.Trace
		model := profile.NewEstimated(p2, profile.DefaultEstimatedConfig(int64(len(b.Name))*37+11))
		cfg := sim.DefaultConfig()

		eval, err := sim.NewEvaluator(tr, p2)
		if err != nil {
			return BenchResult{}, err
		}
		row := BenchResult{Benchmark: b.Name, Schemes: make(map[string]SchemeResult, 5)}
		row.LowerBound = core.ModelLowerBound(tr, p2, model)
		norm := func(span, bubble int64) SchemeResult {
			return SchemeResult{
				MakeSpan:   span,
				Normalized: float64(span) / float64(row.LowerBound),
				Bubble:     float64(bubble) / float64(row.LowerBound),
			}
		}
		row.Schemes[SchemeLowerBound] = norm(row.LowerBound, 0)

		iarSched, err := core.IAR(tr, p2, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return BenchResult{}, err
		}
		iarRes, err := eval.Run(iarSched, cfg, sim.Options{})
		if err != nil {
			return BenchResult{}, err
		}
		row.Schemes[SchemeIAR] = norm(iarRes.MakeSpan, iarRes.TotalBubble)

		v8, err := policy.NewV8(1)
		if err != nil {
			return BenchResult{}, err
		}
		v8Res, err := sim.RunPolicy(tr, p2, v8, cfg, sim.Options{})
		if err != nil {
			return BenchResult{}, err
		}
		row.Schemes[SchemeV8] = norm(v8Res.MakeSpan, v8Res.TotalBubble)

		baseRes, err := eval.Run(core.SingleLevelBase(tr), cfg, sim.Options{})
		if err != nil {
			return BenchResult{}, err
		}
		row.Schemes[SchemeBaseOnly] = norm(baseRes.MakeSpan, baseRes.TotalBubble)

		optRes, err := eval.Run(core.SingleLevelOptimizing(tr, model), cfg, sim.Options{})
		if err != nil {
			return BenchResult{}, err
		}
		row.Schemes[SchemeOptOnly] = norm(optRes.MakeSpan, optRes.TotalBubble)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &FigResult{
		Name:    name,
		Schemes: []string{SchemeLowerBound, SchemeIAR, SchemeV8, SchemeBaseOnly, SchemeOptOnly},
		Rows:    rows,
	}, nil
}

// Fig7Row is one benchmark's concurrent-JIT speedups under the IAR schedule.
type Fig7Row struct {
	Benchmark string
	// SpeedupByWorkers maps a compile-worker count to make-span(1 worker) /
	// make-span(n workers).
	SpeedupByWorkers map[int]float64
}

// Fig7Result is the outcome of the Figure 7 experiment.
type Fig7Result struct {
	Workers []int
	Rows    []Fig7Row
}

// Averages returns the mean speedup per worker count.
func (r *Fig7Result) Averages() map[int]float64 {
	avg := make(map[int]float64, len(r.Workers))
	for _, wk := range r.Workers {
		var sum float64
		n := 0
		for _, row := range r.Rows {
			if s, ok := row.SpeedupByWorkers[wk]; ok {
				sum += s
				n++
			}
		}
		if n > 0 {
			avg[wk] = sum / float64(n)
		}
	}
	return avg
}

// Fig7 reproduces Figure 7: the speedup concurrent JIT compilation brings
// when the IAR schedule is used, for 1-16 compilation cores, under the
// default cost-benefit model. The paper's conclusion — gains stay minor once
// the schedule is good — is the expected shape.
func Fig7(opts Options) (*Fig7Result, error) {
	workerCounts := []int{1, 2, 4, 8, 16}
	rows, err := perBench(opts, "Figure 7", func(b dacapo.Benchmark, _ runner.Ctx) (Fig7Row, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return Fig7Row{}, err
		}
		model := w.DefaultModel()
		sched, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return Fig7Row{}, err
		}
		eval, err := sim.NewEvaluator(w.Trace, w.Profile)
		if err != nil {
			return Fig7Row{}, err
		}
		row := Fig7Row{Benchmark: b.Name, SpeedupByWorkers: make(map[int]float64, len(workerCounts))}
		// The worker counts stay serial inside the job: each speedup is
		// relative to the same benchmark's 1-worker base, and one evaluator
		// serves the whole sweep.
		var base int64
		for _, workers := range workerCounts {
			r, err := eval.Run(sched, sim.Config{CompileWorkers: workers}, sim.Options{})
			if err != nil {
				return Fig7Row{}, err
			}
			if workers == 1 {
				base = r.MakeSpan
			}
			row.SpeedupByWorkers[workers] = float64(base) / float64(r.MakeSpan)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Workers: workerCounts, Rows: rows}, nil
}

// Table1Row is one benchmark's characteristics (Table 1), for both the
// original trace (from the paper) and the generated one.
type Table1Row struct {
	Benchmark      string
	Parallel       bool
	Funcs          int
	FullLength     int
	DefaultSeconds float64
	// Generated-trace properties at the experiment scale:
	GenLength    int
	GenUnique    int
	GenTop10Pct  float64
	SimDefaultMs float64 // simulated default-scheme make-span, ms at 1 tick = 1 µs
}

// Table1 reproduces Table 1, reporting the paper's numbers alongside the
// generated traces' actual shapes.
func Table1(opts Options) ([]Table1Row, error) {
	return perBench(opts, "Table 1", func(b dacapo.Benchmark, _ runner.Ctx) (Table1Row, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return Table1Row{}, err
		}
		st := trace.ComputeStats(w.Trace)
		jikes, err := policy.NewJikes(w.DefaultModel(), w.Profile.NumFuncs(), b.SamplePeriod)
		if err != nil {
			return Table1Row{}, err
		}
		defRes, err := sim.RunPolicy(w.Trace, w.Profile, jikes, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Benchmark:      b.Name,
			Parallel:       b.Parallel,
			Funcs:          b.Funcs,
			FullLength:     b.FullLength,
			DefaultSeconds: b.DefaultSeconds,
			GenLength:      st.Length,
			GenUnique:      st.UniqueFuncs,
			GenTop10Pct:    st.Top10Share * 100,
			SimDefaultMs:   float64(defRes.MakeSpan) / 1000,
		}, nil
	})
}
