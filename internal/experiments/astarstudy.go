package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/astar"
	"repro/internal/exact"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/trace"
)

// AStarRow reports one search feasibility trial (§6.2.5).
type AStarRow struct {
	// Algo is "A*" (memory-bound), "IDA*" (the time-bound,
	// iterative-deepening extension), "beam-256" (approximate), "bnb"
	// (transposition-table branch-and-bound, the frontier push), or "exact"
	// (the threshold-escalation optimality oracle of internal/exact).
	Algo           string
	UniqueFuncs    int
	Calls          int
	Completed      bool
	NodesExpanded  int
	NodesAllocated int // stored nodes for A*; path depth for IDA*
	PathsTotal     float64
	MakeSpan       int64 // only when Completed
	// TableHits and BoundPruned are the pruning counters of bnb and exact
	// (zero for the other algorithms): candidates cut as exact duplicates of
	// an already-reached state, and candidates whose admissible bound could
	// not beat the incumbent.
	TableHits   int
	BoundPruned int
}

// AStarOptions configures the feasibility study.
type AStarOptions struct {
	// MinFuncs..MaxFuncs is the range of unique-function counts to try
	// (defaults 3..8, bracketing the paper's six-function cliff).
	MinFuncs, MaxFuncs int
	// Calls is the call-sequence length (default 50, as in the paper's
	// example).
	Calls int
	// MaxNodes is the node budget standing in for the paper's 2 GB heap
	// (default astar.DefaultMaxNodes).
	MaxNodes int
	// Seed drives instance generation.
	Seed int64
	// BnBMaxFuncs, when positive, adds a branch-and-bound row at every size
	// up to BnBMaxFuncs — past MaxFuncs the sizes are BnB-only, extending the
	// table beyond the classic searches' memory wall. Zero leaves the study
	// exactly as the paper ran it.
	BnBMaxFuncs int
	// ExactMaxFuncs, when positive, adds an internal/exact oracle row at
	// every size up to ExactMaxFuncs, running under the documented
	// frontierExactMaxNodes budget. Zero leaves the study untouched.
	ExactMaxFuncs int
	// Runner receives the per-size search jobs (runner.Shared() if nil).
	Runner *runner.Runner
}

// AStarStudy reproduces the §6.2.5 feasibility experiment: A*-search finds
// optimal schedules for tiny instances by visiting a vanishing fraction of
// the tree, but the storage requirement explodes with the number of unique
// methods; past roughly six, the budget (memory) runs out.
//
// Each unique-function count is one runner job (the searches dominate the
// cost and are independent across sizes); the three rows a size produces
// stay together so the A*/IDA* cross-check runs inside the job.
func AStarStudy(opts AStarOptions) ([]AStarRow, error) {
	if opts.MinFuncs == 0 {
		opts.MinFuncs = 3
	}
	if opts.MaxFuncs == 0 {
		opts.MaxFuncs = 8
	}
	if opts.Calls == 0 {
		opts.Calls = 50
	}
	if opts.MinFuncs < 1 || opts.MaxFuncs < opts.MinFuncs {
		return nil, errors.New("experiments: invalid A* study function range")
	}

	top := opts.MaxFuncs
	if opts.BnBMaxFuncs > top {
		top = opts.BnBMaxFuncs
	}
	if opts.ExactMaxFuncs > top {
		top = opts.ExactMaxFuncs
	}
	jobs := make([]runner.Job[[]AStarRow], 0, top-opts.MinFuncs+1)
	for nf := opts.MinFuncs; nf <= top; nf++ {
		nf := nf
		detail := fmt.Sprintf("nf=%d calls=%d maxnodes=%d", nf, opts.Calls, opts.MaxNodes)
		if opts.BnBMaxFuncs > 0 {
			// The bnb rows change a job's value, so they must change its
			// cache key too.
			detail += fmt.Sprintf(" bnb=%d", opts.BnBMaxFuncs)
		}
		if opts.ExactMaxFuncs > 0 {
			// Likewise for the exact rows; the marker is absent when the
			// option is off, so historical cache keys are untouched.
			detail += fmt.Sprintf(" exact=%d", opts.ExactMaxFuncs)
		}
		jobs = append(jobs, runner.Job[[]AStarRow]{
			Key: runner.Key{
				Experiment: "astar feasibility",
				Seed:       opts.Seed,
				Detail:     detail,
			},
			Fn: func(_ runner.Ctx) ([]AStarRow, error) { return aStarSize(opts, nf) },
		})
	}
	eng := opts.Runner
	if eng == nil {
		eng = runner.Shared()
	}
	perSize, err := runner.Map(eng, jobs)
	if err != nil {
		return nil, err
	}
	var rows []AStarRow
	for _, rs := range perSize {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// aStarSize runs the search variants on one instance size: the classic trio
// (A*, IDA*, beam) up to MaxFuncs, plus a branch-and-bound row when the size
// is within BnBMaxFuncs.
func aStarSize(opts AStarOptions, nf int) ([]AStarRow, error) {
	var rows []AStarRow
	tr, p := AStarInstance(nf, opts.Calls, opts.Seed+int64(nf))
	if nf <= opts.MaxFuncs {
		res, err := astar.Search(tr, p, astar.Options{MaxNodes: opts.MaxNodes})
		row := AStarRow{
			Algo:           "A*",
			UniqueFuncs:    nf,
			Calls:          tr.Len(),
			NodesExpanded:  res.NodesExpanded,
			NodesAllocated: res.NodesAllocated,
			PathsTotal:     res.PathsTotal,
		}
		switch {
		case err == nil:
			row.Completed = res.Complete
			row.MakeSpan = res.MakeSpan
		case errors.Is(err, astar.ErrBudgetExhausted):
			row.Completed = false
		default:
			return nil, err
		}
		rows = append(rows, row)

		// The IDA* extension: memory bounded by the path, so the budget is
		// expansions (time). It hits the same exponential wall.
		ires, err := astar.IDASearch(tr, p, astar.IDAOptions{})
		irow := AStarRow{
			Algo:           "IDA*",
			UniqueFuncs:    nf,
			Calls:          tr.Len(),
			NodesExpanded:  ires.NodesExpanded,
			NodesAllocated: ires.NodesAllocated,
			PathsTotal:     ires.PathsTotal,
		}
		switch {
		case err == nil:
			irow.Completed = ires.Complete
			irow.MakeSpan = ires.MakeSpan
		case errors.Is(err, astar.ErrTimeExhausted):
			irow.Completed = false
		default:
			return nil, err
		}
		if row.Completed && irow.Completed && row.MakeSpan != irow.MakeSpan {
			return nil, fmt.Errorf("experiments: A* and IDA* disagree at %d functions (%d vs %d)",
				nf, row.MakeSpan, irow.MakeSpan)
		}
		rows = append(rows, irow)

		// Beam search abandons optimality for a width-bounded budget: it
		// returns a (possibly suboptimal) schedule at every size.
		bres, err := astar.BeamSearch(tr, p, astar.BeamOptions{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AStarRow{
			Algo:           "beam-256",
			UniqueFuncs:    nf,
			Calls:          tr.Len(),
			Completed:      false, // never proves optimality
			NodesExpanded:  bres.NodesExpanded,
			NodesAllocated: bres.NodesAllocated,
			PathsTotal:     bres.PathsTotal,
			MakeSpan:       bres.MakeSpan,
		})
	}
	if opts.BnBMaxFuncs > 0 && nf <= opts.BnBMaxFuncs {
		res, err := astar.BnBSearch(tr, p, astar.BnBOptions{MaxNodes: opts.MaxNodes})
		row := AStarRow{
			Algo:           "bnb",
			UniqueFuncs:    nf,
			Calls:          tr.Len(),
			NodesExpanded:  res.NodesExpanded,
			NodesAllocated: res.NodesAllocated,
			PathsTotal:     res.PathsTotal,
			TableHits:      res.TableHits,
			BoundPruned:    res.BoundPruned,
		}
		switch {
		case err == nil:
			row.Completed = res.Complete
			row.MakeSpan = res.MakeSpan
		case errors.Is(err, astar.ErrBudgetExhausted):
			row.Completed = false
		default:
			return nil, err
		}
		// Cross-check against whichever exact search also finished.
		for _, r := range rows {
			if (r.Algo == "A*" || r.Algo == "IDA*") && r.Completed && row.Completed &&
				r.MakeSpan != row.MakeSpan {
				return nil, fmt.Errorf("experiments: %s and bnb disagree at %d functions (%d vs %d)",
					r.Algo, nf, r.MakeSpan, row.MakeSpan)
			}
		}
		rows = append(rows, row)
	}
	if opts.ExactMaxFuncs > 0 && nf <= opts.ExactMaxFuncs {
		res, err := exact.Solve(tr, p, exact.Options{MaxNodes: frontierExactMaxNodes})
		row := AStarRow{
			Algo:        "exact",
			UniqueFuncs: nf,
			Calls:       tr.Len(),
		}
		switch {
		case err == nil:
			row.Completed = res.Complete
			row.MakeSpan = res.MakeSpan
		case errors.Is(err, exact.ErrBudgetExhausted):
			row.Completed = false
		default:
			return nil, err
		}
		// A failed solve still reports its counters.
		row.NodesExpanded = res.NodesExpanded
		row.NodesAllocated = res.NodesAllocated
		row.PathsTotal = res.PathsTotal
		row.TableHits = res.TableHits
		row.BoundPruned = res.BoundPruned
		// The oracle must agree with every optimal search that finished.
		for _, r := range rows {
			if (r.Algo == "A*" || r.Algo == "IDA*" || r.Algo == "bnb") && r.Completed && row.Completed &&
				r.MakeSpan != row.MakeSpan {
				return nil, fmt.Errorf("experiments: %s and exact disagree at %d functions (%d vs %d)",
					r.Algo, nf, r.MakeSpan, row.MakeSpan)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// frontierExactMaxNodes is the documented node budget for the study's exact
// oracle rows: 16x the classic searches' default, the budget under which the
// oracle certifies twelve-function instances (and exposes thirteen as the
// current wall; see testdata/astar_exact.txt).
const frontierExactMaxNodes = 1 << 26

// AStarInstance builds a random two-level OCSP instance in the style of the
// paper's §6.2.5 example: nf unique functions, a mixed-hotness call
// sequence, and per-function level tradeoffs that make ordering matter.
func AStarInstance(nf, calls int, seed int64) (*trace.Trace, *profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	p := &profile.Profile{Levels: 2, Funcs: make([]profile.FuncTimes, nf)}
	for i := range p.Funcs {
		cl := int64(1 + rng.Intn(3))
		ch := cl + 1 + int64(rng.Intn(10))
		eh := int64(1 + rng.Intn(3))
		el := eh + 1 + int64(rng.Intn(10))
		p.Funcs[i] = profile.FuncTimes{Compile: []int64{cl, ch}, Exec: []int64{el, eh}, Size: 1}
	}
	seq := make([]trace.FuncID, calls)
	for i := range seq {
		// A Zipf-ish skew: function j gets weight 1/(j+1).
		r := rng.Float64()
		var total float64
		for j := 0; j < nf; j++ {
			total += 1 / float64(j+1)
		}
		r *= total
		var acc float64
		id := 0
		for j := 0; j < nf; j++ {
			acc += 1 / float64(j+1)
			if r <= acc {
				id = j
				break
			}
		}
		seq[i] = trace.FuncID(id)
	}
	// Guarantee every function appears so the instance truly has nf unique
	// methods.
	for j := 0; j < nf && j < len(seq); j++ {
		seq[j*len(seq)/nf] = trace.FuncID(j)
	}
	return trace.New("astar-study", seq), p
}
