package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OnlineWindows is the lookahead ladder of the regret-vs-window figure,
// narrowest first; 0 means unbounded.
var OnlineWindows = []int{256, 1024, 4096, 16384, 0}

// OnlineSamplePeriod is the Sampled scheduler's tick distance in the study.
const OnlineSamplePeriod = 100

// OnlineSpecs returns the study's pinned streaming corpus: three
// multi-tenant workloads exercising the generator's three arrival
// processes and phase shifts. The specs are part of the golden contract —
// changing them changes testdata/online.txt.
func OnlineSpecs() []*workload.Spec {
	return []*workload.Spec{
		{
			Name: "stream-mix", Seed: 101, Length: 24000,
			Cohorts: []workload.Cohort{
				{Bench: "luindex", Scale: 0.05},
				{Bench: "lusearch", Scale: 0.05},
			},
			Phases: []workload.Phase{
				{Weight: 1, Process: workload.ProcessSteady},
				{Weight: 1, Process: workload.ProcessPoisson},
			},
		},
		{
			Name: "stream-phased", Seed: 202, Length: 24000,
			Cohorts: []workload.Cohort{
				{Bench: "antlr", Scale: 0.05},
				{Bench: "eclipse", Scale: 0.05},
				{Bench: "pmd", Scale: 0.05},
			},
			Phases: []workload.Phase{
				{Weight: 1, Process: workload.ProcessSteady, Mix: []float64{3, 1, 0}},
				{Weight: 1, Process: workload.ProcessPoisson, Mix: []float64{1, 3, 1}},
				{Weight: 1, Process: workload.ProcessSteady, Mix: []float64{0, 1, 3}},
			},
		},
		{
			Name: "stream-bursty", Seed: 303, Length: 24000,
			Cohorts: []workload.Cohort{
				{Bench: "jython", Scale: 0.05},
				{Bench: "hsqldb", Scale: 0.05},
			},
			Phases: []workload.Phase{
				{Weight: 1, Process: workload.ProcessBursty, BurstMean: 16},
			},
		},
	}
}

// OnlineSchedulers names the study's schedulers in render order.
var OnlineSchedulers = []string{"iar", "v8", "sampled"}

// NewOnlineScheduler builds one of the study's schedulers by name over a
// profile — the single construction point the study, the CLI, and the
// scheduling service share.
func NewOnlineScheduler(name string, p *profile.Profile, iarK int64) (online.Scheduler, error) {
	switch name {
	case "iar":
		return online.NewIAR(p, core.IAROptions{K: iarK}, 0), nil
	case "v8":
		return online.NewV8Style(p, profile.Level(p.Levels-1))
	case "sampled":
		return online.NewSampled(p, nil, OnlineSamplePeriod)
	default:
		return nil, fmt.Errorf("experiments: unknown online scheduler %q (have %v)", name, OnlineSchedulers)
	}
}

// OnlineRow is one (workload, scheduler, window) cell of the regret figure.
type OnlineRow struct {
	Spec      string
	Scheduler string
	// Window is the lookahead in calls; 0 means unbounded.
	Window int
	// MakeSpan is the online run's make-span; Offline is offline IAR's on
	// the same workload; Regret is their gap in percent (negative when the
	// online run beats the offline plan).
	MakeSpan int64
	Offline  int64
	Regret   float64
	// Commits counts committed compile events; Forced the on-demand subset.
	Commits int
	Forced  int
}

// onlineSpan is the per-job result of one online run.
type onlineSpan struct {
	MakeSpan int64
	Commits  int
	Forced   int
}

// OnlineStudy runs the regret-vs-window figure: every scheduler crossed
// with every window on the pinned streaming corpus, against offline IAR on
// the same traces. Each cell is one runner job (the render is deterministic,
// so jobs re-render their spec instead of sharing pointers), and rows come
// back in corpus × scheduler × window order regardless of worker count.
func OnlineStudy(opts Options) ([]OnlineRow, error) {
	specs := OnlineSpecs()

	offlineJobs := make([]runner.Job[int64], len(specs))
	for i, s := range specs {
		s := s
		offlineJobs[i] = runner.Job[int64]{
			Key: runner.Key{
				Experiment: "online", Benchmark: s.Name, Scheme: "offline-iar",
				Scale: 1, Detail: fmt.Sprintf("K=%d seed=%d", opts.IARK, s.Seed),
			},
			Fn: func(ctx runner.Ctx) (int64, error) {
				tr, p, err := s.Render()
				if err != nil {
					return 0, err
				}
				sched, err := core.IAR(tr, p, core.IAROptions{K: opts.IARK})
				if err != nil {
					return 0, err
				}
				res, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{
					Interrupt: ctx.Context.Done(),
				})
				if err != nil {
					return 0, err
				}
				return res.MakeSpan, nil
			},
		}
	}
	offline, err := runner.Map(opts.runner(), offlineJobs)
	if err != nil {
		return nil, err
	}

	type cell struct {
		spec  *workload.Spec
		sched string
		win   int
	}
	var cells []cell
	for _, s := range specs {
		for _, sched := range OnlineSchedulers {
			for _, win := range OnlineWindows {
				cells = append(cells, cell{s, sched, win})
			}
		}
	}
	jobs := make([]runner.Job[onlineSpan], len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = runner.Job[onlineSpan]{
			Key: runner.Key{
				Experiment: "online", Benchmark: c.spec.Name, Scheme: c.sched,
				Scale: 1, Detail: fmt.Sprintf("K=%d seed=%d window=%d", opts.IARK, c.spec.Seed, c.win),
			},
			Fn: func(ctx runner.Ctx) (onlineSpan, error) {
				tr, p, err := c.spec.Render()
				if err != nil {
					return onlineSpan{}, err
				}
				sched, err := NewOnlineScheduler(c.sched, p, opts.IARK)
				if err != nil {
					return onlineSpan{}, err
				}
				res, err := online.Run(tr, p, sched, online.Options{
					Window:    c.win,
					Config:    sim.DefaultConfig(),
					Interrupt: ctx.Context.Done(),
					Metrics:   obs.Default(),
				})
				if err != nil {
					return onlineSpan{}, err
				}
				return onlineSpan{
					MakeSpan: res.Sim.MakeSpan,
					Commits:  len(res.Schedule),
					Forced:   res.Forced,
				}, nil
			},
		}
	}
	spans, err := runner.Map(opts.runner(), jobs)
	if err != nil {
		return nil, err
	}

	offlineByName := make(map[string]int64, len(specs))
	for i, s := range specs {
		offlineByName[s.Name] = offline[i]
	}
	rows := make([]OnlineRow, len(cells))
	for i, c := range cells {
		off := offlineByName[c.spec.Name]
		rows[i] = OnlineRow{
			Spec:      c.spec.Name,
			Scheduler: c.sched,
			Window:    c.win,
			MakeSpan:  spans[i].MakeSpan,
			Offline:   off,
			Regret:    online.Regret(spans[i].MakeSpan, off),
			Commits:   spans[i].Commits,
			Forced:    spans[i].Forced,
		}
	}
	return rows, nil
}

// RenderOnline writes the regret-vs-window figure.
func RenderOnline(rows []OnlineRow, w io.Writer) error {
	t := report.NewTable("Online scheduling: regret vs lookahead window (offline IAR = 0%)",
		"workload", "scheduler", "window", "make-span", "regret %", "commits", "forced")
	for _, r := range rows {
		win := fmt.Sprintf("%d", r.Window)
		if r.Window == 0 {
			win = "inf"
		}
		t.AddRow(
			r.Spec,
			r.Scheduler,
			win,
			fmt.Sprintf("%d", r.MakeSpan),
			report.F2(r.Regret),
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Forced),
		)
	}
	return t.Render(w)
}
